// Web-ranking scenario (the paper's Section V-C workflow): rank a web graph
// with PageRank deterministically and nondeterministically, then quantify how
// much the nondeterminism moved the ranking — difference degree, top-k
// agreement, and value error — across several convergence thresholds.
//
//   $ ./example_web_ranking [--scale=64] [--runs=3]

#include <iostream>

#include "nondetgraph.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ndg;
  const CliArgs args(argc, argv);
  const auto scale = static_cast<unsigned>(args.get_int("scale", 64));
  const int runs = static_cast<int>(args.get_int("runs", 3));

  const Dataset d = make_dataset(DatasetId::kWebGoogle, scale);
  std::cout << "ranking " << d.name << " (|V|=" << d.graph.num_vertices()
            << ", |E|=" << d.graph.num_edges() << ")\n\n";

  TextTable table({"eps", "NE run", "diff degree vs DE", "top-100 agree",
                   "max |rank err|"});

  for (const float eps : {1e-2f, 1e-3f, 1e-4f}) {
    // Deterministic baseline.
    PageRankProgram de(eps);
    EdgeDataArray<float> de_edges(d.graph.num_edges());
    de.init(d.graph, de_edges);
    run_deterministic(d.graph, de, de_edges);
    const auto de_values = de.values();
    const auto de_ranking = rank_vertices(de_values);

    for (int i = 0; i < runs; ++i) {
      // One adversarial nondeterministic schedule per seed.
      PageRankProgram ne(eps);
      EdgeDataArray<float> ne_edges(d.graph.num_edges());
      ne.init(d.graph, ne_edges);
      SimOptions opts;
      opts.num_procs = 8;
      opts.delay = 4;
      opts.delay_jitter = 4;
      opts.seed = 100 + static_cast<std::uint64_t>(i);
      run_simulated(d.graph, ne, ne_edges, opts);

      const auto ne_values = ne.values();
      const auto ne_ranking = rank_vertices(ne_values);
      const std::size_t dd = difference_degree(de_ranking, ne_ranking);
      const ValueDelta delta = value_delta(de_values, ne_values);

      // Top-k set agreement (order-insensitive), the practical question for
      // a search product: do the same pages make the front page?
      const std::size_t k = std::min<std::size_t>(100, de_ranking.size());
      std::vector<VertexId> top_de(de_ranking.begin(), de_ranking.begin() + k);
      std::vector<VertexId> top_ne(ne_ranking.begin(), ne_ranking.begin() + k);
      std::sort(top_de.begin(), top_de.end());
      std::sort(top_ne.begin(), top_ne.end());
      std::size_t agree = 0;
      for (std::size_t a = 0, b = 0; a < k && b < k;) {
        if (top_de[a] == top_ne[b]) {
          ++agree;
          ++a;
          ++b;
        } else if (top_de[a] < top_ne[b]) {
          ++a;
        } else {
          ++b;
        }
      }

      table.add_row({TextTable::num(eps, 4), std::to_string(i),
                     std::to_string(dd),
                     std::to_string(agree) + "/" + std::to_string(k),
                     TextTable::num(delta.max_abs, 6)});
    }
  }
  table.print(std::cout);
  std::cout << "\nexpect: smaller eps pushes the first ranking difference to "
               "less significant pages,\nwhile the top of the ranking stays "
               "stable — the paper's usability argument for nondeterministic "
               "PageRank.\n";
  return 0;
}
