// Road-network routing scenario: single-source shortest paths on a grid
// "road network" (the regular-topology class of the paper's cage15), run
// nondeterministically under EVERY atomicity method and verified against
// Dijkstra. Shows that for graph-traversal algorithms the nondeterministic
// results are exact, not approximate — the Theorem 1/2 guarantee that makes
// NE usable for routing.
//
//   $ ./example_road_sssp [--rows=200] [--cols=200] [--threads=4]

#include <iostream>

#include "nondetgraph.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ndg;
  const CliArgs args(argc, argv);
  const auto rows = static_cast<VertexId>(args.get_int("rows", 200));
  const auto cols = static_cast<VertexId>(args.get_int("cols", 200));
  const auto threads = static_cast<std::size_t>(args.get_int("threads", 4));
  constexpr std::uint64_t kWeightSeed = 2026;

  // Two-way streets: symmetrize the grid.
  const Graph g = Graph::build(rows * cols, symmetrize(gen::grid2d(rows, cols)));
  const VertexId depot = 0;  // north-west corner
  std::cout << "road grid " << rows << "x" << cols << " (|V|=" << g.num_vertices()
            << ", |E|=" << g.num_edges() << "), depot at vertex " << depot
            << "\n\n";

  // Ground truth via Dijkstra on identical weights.
  std::vector<float> weights(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    weights[e] = SsspProgram::edge_weight(kWeightSeed, e);
  }
  const auto truth = ref::sssp(g, depot, weights);

  bool all_exact = true;
  TextTable table({"config", "ms", "iters", "exact vs Dijkstra"});
  for (const AtomicityMode mode :
       {AtomicityMode::kLocked, AtomicityMode::kAligned, AtomicityMode::kRelaxed,
        AtomicityMode::kSeqCst}) {
    SsspProgram prog(depot, kWeightSeed);
    EdgeDataArray<SsspEdge> edges(g.num_edges());
    prog.init(g, edges);
    EngineOptions opts;
    opts.mode = mode;
    opts.num_threads = threads;
    const EngineResult r = run_nondeterministic(g, prog, edges, opts);

    std::size_t mismatches = 0;
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      if (prog.distances()[v] != truth[v]) ++mismatches;
    }
    table.add_row({std::string("NE-") + to_string(mode),
                   TextTable::num(r.seconds * 1e3, 1),
                   std::to_string(r.iterations),
                   mismatches == 0 ? "yes"
                                   : std::to_string(mismatches) + " wrong"});
    all_exact = all_exact && mismatches == 0;
  }
  table.print(std::cout);

  // A sample route cost: depot to the south-east corner.
  const VertexId corner = rows * cols - 1;
  std::cout << "\ndistance depot -> opposite corner: " << truth[corner]
            << " (expected ~" << (rows + cols - 2) << " hops x ~5.5 avg "
            << "weight)\n";
  return all_exact ? 0 : 1;
}
