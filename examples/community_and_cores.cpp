// Social-network analysis scenario: run the extension algorithms — label
// propagation (communities), k-core decomposition (engagement shells) and
// MIS (an influence-seeding set) — nondeterministically on a social-graph
// stand-in, verifying the combinatorial outputs against references.
//
//   $ ./example_community_and_cores [--scale=512] [--threads=4]

#include <iostream>
#include <map>

#include "nondetgraph.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ndg;
  const CliArgs args(argc, argv);
  const auto scale = static_cast<unsigned>(args.get_int("scale", 512));
  const auto threads = static_cast<std::size_t>(args.get_int("threads", 4));

  const Dataset d = make_dataset(DatasetId::kSocLiveJournal, scale);
  const Graph& g = d.graph;
  std::cout << "social graph " << d.name << " (|V|=" << g.num_vertices()
            << ", |E|=" << g.num_edges() << ")\n\n";

  EngineOptions opts;
  opts.num_threads = threads;
  opts.mode = AtomicityMode::kRelaxed;
  opts.max_iterations = 2000;

  TextTable table({"analysis", "iters", "updates", "ms", "headline"});
  bool ok = true;

  // 1. Communities via label propagation.
  {
    LabelPropagationProgram prog;
    EdgeDataArray<LabelPropagationProgram::EdgeData> edges(g.num_edges());
    prog.init(g, edges);
    const EngineResult r = run_nondeterministic(g, prog, edges, opts);
    std::map<std::uint32_t, std::size_t> sizes;
    for (const auto l : prog.labels()) ++sizes[l];
    std::size_t biggest = 0;
    for (const auto& [label, count] : sizes) biggest = std::max(biggest, count);
    table.add_row({"label-propagation", std::to_string(r.iterations),
                   std::to_string(r.updates), TextTable::num(r.seconds * 1e3, 1),
                   std::to_string(sizes.size()) + " communities, largest " +
                       std::to_string(biggest)});
  }

  // 2. Core decomposition (verified against peeling).
  {
    KCoreProgram prog;
    EdgeDataArray<DualEdge> edges(g.num_edges());
    prog.init(g, edges);
    const EngineResult r = run_nondeterministic(g, prog, edges, opts);
    const auto expected = ref::kcore(g);
    const bool exact = prog.core_numbers() == expected;
    std::uint32_t kmax = 0;
    for (const auto c : prog.core_numbers()) kmax = std::max(kmax, c);
    table.add_row({"k-core", std::to_string(r.iterations),
                   std::to_string(r.updates), TextTable::num(r.seconds * 1e3, 1),
                   "max core " + std::to_string(kmax) +
                       (exact ? ", exact vs peeling" : ", MISMATCH!")});
    ok = ok && exact;
  }

  // 3. Influence seeding via MIS (verified against greedy).
  {
    MisProgram prog;
    EdgeDataArray<DualEdge> edges(g.num_edges());
    prog.init(g, edges);
    const EngineResult r = run_nondeterministic(g, prog, edges, opts);
    const auto set = prog.independent_set();
    const auto expected = ref::greedy_mis(g);
    std::size_t expected_size = 0;
    for (const auto b : expected) expected_size += b ? 1 : 0;
    const bool exact = set.size() == expected_size;
    table.add_row({"mis", std::to_string(r.iterations),
                   std::to_string(r.updates), TextTable::num(r.seconds * 1e3, 1),
                   std::to_string(set.size()) + " seeds" +
                       (exact ? ", matches greedy MIS" : ", MISMATCH!")});
    ok = ok && exact;
  }

  table.print(std::cout);
  std::cout << "\nall three analyses ran racily (relaxed atomics, " << threads
            << " threads); the combinatorial outputs are exact — Theorem 2 at "
               "work.\n";
  return ok ? 0 : 1;
}
