// Quickstart: build a graph, check an algorithm's eligibility, then run it
// nondeterministically on all cores.
//
//   $ ./example_quickstart
//
// Walks through the library's three core steps:
//   1. build a Graph (here: a small scale-free web graph),
//   2. ask the eligibility analysis whether PageRank may run
//      nondeterministically (Theorems 1 & 2 of the paper),
//   3. run it with the nondeterministic engine + relaxed-atomic edge access
//      and print the top pages.

#include <iostream>
#include <thread>

#include "nondetgraph.hpp"

int main() {
  using namespace ndg;

  // 1. A 10k-vertex scale-free digraph (swap in load_edge_list(path) for a
  //    real SNAP file).
  const VertexId n = 10000;
  const Graph g = Graph::build(n, gen::rmat(n, 80000, /*seed=*/1));
  std::cout << "graph: |V|=" << g.num_vertices() << " |E|=" << g.num_edges()
            << "\n\n";

  // 2. Is PageRank eligible for nondeterministic execution?
  PageRankProgram probe(1e-3f);
  const EligibilityReport report = analyze_eligibility(g, probe);
  std::cout << report.describe() << "\n";
  if (report.verdict == EligibilityVerdict::kNotProven) {
    std::cout << "not proven eligible — falling back to the deterministic "
                 "scheduler would be the safe choice here.\n";
    return 1;
  }

  // 3. Run nondeterministically: every hardware thread, minimal-granularity
  //    atomicity via C++ relaxed atomics (the paper's method 3).
  PageRankProgram pagerank(1e-4f);
  EdgeDataArray<PageRankProgram::EdgeData> edges(g.num_edges());
  pagerank.init(g, edges);

  EngineOptions opts;
  opts.num_threads = std::max(1u, std::thread::hardware_concurrency());
  opts.mode = AtomicityMode::kRelaxed;
  const EngineResult r = run_nondeterministic(g, pagerank, edges, opts);

  std::cout << "nondeterministic run: " << r.iterations << " iterations, "
            << r.updates << " updates, " << r.seconds * 1e3 << " ms on "
            << opts.num_threads << " threads\n\ntop 10 pages:\n";
  const auto ranking = rank_vertices(pagerank.values());
  for (int i = 0; i < 10; ++i) {
    std::cout << "  #" << i + 1 << "  vertex " << ranking[i] << "  rank "
              << pagerank.ranks()[ranking[i]] << "\n";
  }
  return 0;
}
