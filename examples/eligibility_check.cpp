// Eligibility check for a USER-DEFINED algorithm — the paper's title as a
// workflow. Implements a custom vertex program ("max-label propagation", a
// reachability-style traversal the library does not ship) and asks the
// analyzer whether it may run nondeterministically; then demonstrates that
// the verdict is actionable by running it under heavy simulated races and
// comparing with the deterministic result.
//
//   $ ./example_eligibility_check

#include <algorithm>
#include <iostream>
#include <vector>

#include "nondetgraph.hpp"

namespace {

using namespace ndg;

/// Custom algorithm: every vertex learns the MAXIMUM label reachable along
/// undirected paths (the mirror image of WCC's min propagation). Both
/// endpoints write shared edges => write-write conflicts; labels only grow
/// => monotonic. Theorem 2 should license it.
class MaxLabelProgram {
 public:
  using EdgeData = std::uint32_t;
  static constexpr bool kMonotonic = true;

  [[nodiscard]] const char* name() const { return "max-label"; }

  void init(const Graph& g, EdgeDataArray<std::uint32_t>& edges) {
    labels_.resize(g.num_vertices());
    for (VertexId v = 0; v < g.num_vertices(); ++v) labels_[v] = v;
    edges.fill(0);
  }

  [[nodiscard]] std::vector<VertexId> initial_frontier(const Graph& g) const {
    std::vector<VertexId> all(g.num_vertices());
    for (VertexId v = 0; v < g.num_vertices(); ++v) all[v] = v;
    return all;
  }

  template <typename Ctx>
  void update(VertexId v, Ctx& ctx) {
    std::uint32_t m = labels_[v];
    const auto in = ctx.in_edges();
    const auto out = ctx.out_neighbors();
    for (const InEdge& ie : in) m = std::max(m, ctx.read(ie.id));
    for (std::size_t k = 0; k < out.size(); ++k) {
      m = std::max(m, ctx.read(ctx.out_edge_id(k)));
    }
    labels_[v] = m;
    for (const InEdge& ie : in) {
      if (ctx.read(ie.id) < m) ctx.write(ie.id, ie.src, m);
    }
    for (std::size_t k = 0; k < out.size(); ++k) {
      const EdgeId e = ctx.out_edge_id(k);
      if (ctx.read(e) < m) ctx.write(e, out[k], m);
    }
  }

  static double project(std::uint32_t label) { return label; }

  [[nodiscard]] const std::vector<std::uint32_t>& labels() const {
    return labels_;
  }

 private:
  std::vector<std::uint32_t> labels_;
};

}  // namespace

int main() {
  using namespace ndg;
  const Graph g = Graph::build(2000, gen::rmat(2000, 12000, 3));

  // 1. Ask the key-ring question.
  MaxLabelProgram probe;
  const EligibilityReport report = analyze_eligibility(g, probe);
  std::cout << report.describe() << "\n";

  // 2. Trust, but verify: run under an adversarial simulated schedule (8
  //    logical processors, wide race window) and compare with deterministic.
  MaxLabelProgram det;
  EdgeDataArray<std::uint32_t> det_edges(g.num_edges());
  det.init(g, det_edges);
  run_deterministic(g, det, det_edges);

  std::size_t mismatches = 0;
  std::uint64_t total_ww = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    MaxLabelProgram sim;
    EdgeDataArray<std::uint32_t> sim_edges(g.num_edges());
    sim.init(g, sim_edges);
    SimOptions opts;
    opts.num_procs = 8;
    opts.delay = 8;
    opts.seed = seed;
    const SimResult r = run_simulated(g, sim, sim_edges, opts);
    total_ww += r.ww_overlaps;
    if (sim.labels() != det.labels()) ++mismatches;
  }
  std::cout << "10 adversarial schedules: " << total_ww
            << " write-write races observed, " << mismatches
            << " result mismatches vs deterministic run\n";
  std::cout << (mismatches == 0
                    ? "=> Theorem 2 held: corrupted edges were recovered in "
                      "every schedule.\n"
                    : "=> UNEXPECTED divergence — the verdict promised "
                      "otherwise!\n");
  return mismatches == 0 ? 0 : 1;
}
