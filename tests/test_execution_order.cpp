// White-box scheduling tests: a recorder program captures the exact update
// invocation order and asserts each engine's documented discipline —
// ascending labels for DE, interval-major for PSW/OOC, color-major for
// chromatic, block dispatch + small-label-first per thread for NE.

#include <gtest/gtest.h>

#include <filesystem>
#include <mutex>

#include "engine/chromatic.hpp"
#include "engine/deterministic.hpp"
#include "engine/nondeterministic.hpp"
#include "engine/psw.hpp"
#include "graph/generators.hpp"
#include "ooc/ooc_engine.hpp"

namespace ndg {
namespace {

/// Records (vertex, iteration) for every update; runs exactly one iteration
/// (nothing is ever scheduled), so the record is the dispatch order of S_0.
class RecorderProgram {
 public:
  using EdgeData = std::uint32_t;
  static constexpr bool kMonotonic = true;

  [[nodiscard]] const char* name() const { return "recorder"; }

  void init(const Graph& g, EdgeDataArray<std::uint32_t>& edges) {
    edges.fill(0);
    (void)g;
    order.clear();
  }

  [[nodiscard]] std::vector<VertexId> initial_frontier(const Graph& g) const {
    std::vector<VertexId> all(g.num_vertices());
    for (VertexId v = 0; v < g.num_vertices(); ++v) all[v] = v;
    return all;
  }

  template <typename Ctx>
  void update(VertexId v, Ctx&) {
    const std::lock_guard<std::mutex> lock(mu_);
    order.push_back(v);
  }

  static double project(std::uint32_t x) { return x; }

  std::vector<VertexId> order;

 private:
  std::mutex mu_;
};

Graph order_graph() { return Graph::build(64, gen::cycle(64)); }

TEST(ExecutionOrder, DeterministicIsAscendingLabels) {
  const Graph g = order_graph();
  RecorderProgram prog;
  EdgeDataArray<std::uint32_t> edges(g.num_edges());
  prog.init(g, edges);
  run_deterministic(g, prog, edges);
  ASSERT_EQ(prog.order.size(), 64u);
  EXPECT_TRUE(std::is_sorted(prog.order.begin(), prog.order.end()));
}

TEST(ExecutionOrder, PswIsIntervalMajor) {
  const Graph g = order_graph();
  const IntervalPlan plan = make_intervals(g, 4);
  RecorderProgram prog;
  EdgeDataArray<std::uint32_t> edges(g.num_edges());
  prog.init(g, edges);
  EngineOptions opts;
  opts.num_threads = 1;
  run_psw_deterministic(g, prog, edges, plan, opts);
  ASSERT_EQ(prog.order.size(), 64u);
  // Interval ids along the recorded order must be non-decreasing.
  std::size_t prev = 0;
  for (const VertexId v : prog.order) {
    const std::size_t iv = plan.interval_of(v);
    EXPECT_GE(iv, prev) << "v=" << v;
    prev = iv;
  }
}

TEST(ExecutionOrder, OocIsIntervalMajorAndSkipsNothingOnFullFrontier) {
  const Graph g = order_graph();
  const ShardPlan plan = make_shard_plan(g, 4);
  RecorderProgram prog;
  EdgeDataArray<std::uint32_t> edges(g.num_edges());
  prog.init(g, edges);
  const std::string dir = testing::TempDir() + "/ndg_order_ooc";
  std::filesystem::remove_all(dir);
  const OocResult r = run_ooc_deterministic(g, prog, edges, plan, dir);
  ASSERT_EQ(prog.order.size(), 64u);
  EXPECT_EQ(r.intervals_skipped, 0u);
  std::size_t prev = 0;
  for (const VertexId v : prog.order) {
    const std::size_t iv = plan.intervals.interval_of(v);
    EXPECT_GE(iv, prev);
    prev = iv;
  }
}

TEST(ExecutionOrder, ChromaticIsColorMajor) {
  const Graph g = order_graph();
  const Coloring coloring = greedy_color(g);
  RecorderProgram prog;
  EdgeDataArray<std::uint32_t> edges(g.num_edges());
  prog.init(g, edges);
  EngineOptions opts;
  opts.num_threads = 1;
  run_chromatic(g, prog, edges, coloring, opts);
  ASSERT_EQ(prog.order.size(), 64u);
  std::uint32_t prev = 0;
  for (const VertexId v : prog.order) {
    EXPECT_GE(coloring.color[v], prev) << "v=" << v;
    prev = coloring.color[v];
  }
}

TEST(ExecutionOrder, NondeterministicSingleThreadIsAscending) {
  const Graph g = order_graph();
  RecorderProgram prog;
  EdgeDataArray<std::uint32_t> edges(g.num_edges());
  prog.init(g, edges);
  EngineOptions opts;
  opts.num_threads = 1;
  run_nondeterministic(g, prog, edges, opts);
  ASSERT_EQ(prog.order.size(), 64u);
  EXPECT_TRUE(std::is_sorted(prog.order.begin(), prog.order.end()));
}

TEST(ExecutionOrder, NondeterministicThreadsAreSmallLabelFirstPerBlock) {
  // With T threads, each thread's block must be visited ascending. The
  // interleaving ACROSS blocks is the nondeterminism; within a block the
  // Fig. 1 rule fixes the order. Verify per-block subsequences are sorted.
  const Graph g = order_graph();
  RecorderProgram prog;
  EdgeDataArray<std::uint32_t> edges(g.num_edges());
  prog.init(g, edges);
  EngineOptions opts;
  opts.num_threads = 4;
  run_nondeterministic(g, prog, edges, opts);
  ASSERT_EQ(prog.order.size(), 64u);
  for (std::size_t t = 0; t < 4; ++t) {
    const auto [b, e] = static_block(64, 4, t);
    std::vector<VertexId> block_seq;
    for (const VertexId v : prog.order) {
      if (v >= b && v < e) block_seq.push_back(v);
    }
    EXPECT_EQ(block_seq.size(), e - b);
    EXPECT_TRUE(std::is_sorted(block_seq.begin(), block_seq.end()))
        << "thread " << t;
  }
}

TEST(ExecutionOrder, EveryVertexRunsExactlyOncePerIteration) {
  const Graph g = order_graph();
  RecorderProgram prog;
  EdgeDataArray<std::uint32_t> edges(g.num_edges());
  prog.init(g, edges);
  EngineOptions opts;
  opts.num_threads = 3;
  run_nondeterministic(g, prog, edges, opts);
  std::vector<int> seen(64, 0);
  for (const VertexId v : prog.order) ++seen[v];
  for (VertexId v = 0; v < 64; ++v) EXPECT_EQ(seen[v], 1) << "v=" << v;
}

}  // namespace
}  // namespace ndg
