// bin1 framing and fixed-layout codec tests (dyn/wire.hpp "Binary framing",
// dyn/replication.hpp "Binary replication codec"): frame extraction under
// partial reads and hostile lengths, exact round-trips for every payload
// codec (including NaN/inf floats and randomized property sweeps), and the
// malformed-payload rejections that keep a lying header from becoming an
// allocation.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "dyn/replication.hpp"
#include "dyn/wire.hpp"
#include "util/rng.hpp"

namespace ndg::dyn {
namespace {

Frame extract_one(std::string& buf) {
  Frame f;
  std::string err;
  EXPECT_EQ(extract_frame(buf, f, &err), FrameParse::kOk) << err;
  return f;
}

TEST(BinFraming, RoundTripsPayloadsOfEverySize) {
  for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{13},
                              std::size_t{4096}}) {
    std::string payload(n, '\0');
    for (std::size_t i = 0; i < n; ++i) {
      payload[i] = static_cast<char>(i * 31 + 7);
    }
    std::string buf;
    append_frame(buf, FrameType::kJson, payload);
    EXPECT_EQ(buf.size(), kFrameHeaderBytes + n);
    const Frame f = extract_one(buf);
    EXPECT_EQ(f.type, FrameType::kJson);
    EXPECT_EQ(f.payload, payload);
    EXPECT_TRUE(buf.empty());  // consumed from the front
  }
}

TEST(BinFraming, ExtractsBackToBackFramesAndKeepsTheTail) {
  std::string buf;
  append_frame(buf, FrameType::kQuery, encode_query(7));
  append_frame(buf, FrameType::kQuit, "");
  buf += "tail";  // start of a third, incomplete frame
  EXPECT_EQ(extract_one(buf).type, FrameType::kQuery);
  EXPECT_EQ(extract_one(buf).type, FrameType::kQuit);
  Frame f;
  EXPECT_EQ(extract_frame(buf, f), FrameParse::kNeedMore);
  EXPECT_EQ(buf, "tail");  // partial bytes untouched
}

TEST(BinFraming, NeedsMoreOnEveryTruncationPoint) {
  std::string whole;
  append_frame(whole, FrameType::kMutate, encode_mutate(Mutation{}));
  for (std::size_t cut = 0; cut < whole.size(); ++cut) {
    std::string buf = whole.substr(0, cut);
    Frame f;
    EXPECT_EQ(extract_frame(buf, f), FrameParse::kNeedMore) << "cut=" << cut;
    EXPECT_EQ(buf.size(), cut);  // nothing consumed while incomplete
  }
}

TEST(BinFraming, OversizedLengthBreaksTheConnection) {
  std::string buf;
  put_u32(buf, kMaxFrameLen + 1);
  put_u8(buf, static_cast<std::uint8_t>(FrameType::kJson));
  Frame f;
  std::string err;
  EXPECT_EQ(extract_frame(buf, f, &err), FrameParse::kBad);
  EXPECT_FALSE(err.empty());
  // A length of exactly kMaxFrameLen is still legal framing.
  std::string ok;
  put_u32(ok, kMaxFrameLen);
  put_u8(ok, static_cast<std::uint8_t>(FrameType::kJson));
  EXPECT_EQ(extract_frame(ok, f), FrameParse::kNeedMore);
}

TEST(BinCodec, MutateRoundTripsEveryKindAndOddFloats) {
  const float weights[] = {1.0f, -2.5f, 0.0f,
                           std::numeric_limits<float>::infinity(),
                           std::numeric_limits<float>::quiet_NaN()};
  for (const auto kind :
       {MutationKind::kInsertEdge, MutationKind::kDeleteEdge,
        MutationKind::kWeightChange}) {
    for (const float w : weights) {
      Mutation in;
      in.kind = kind;
      in.src = 12345;
      in.dst = 4294967294u;
      in.weight = w;
      Mutation out;
      std::string err;
      ASSERT_TRUE(decode_mutate(encode_mutate(in), out, &err)) << err;
      EXPECT_EQ(out.kind, in.kind);
      EXPECT_EQ(out.src, in.src);
      EXPECT_EQ(out.dst, in.dst);
      if (std::isnan(w)) {
        EXPECT_TRUE(std::isnan(out.weight));
      } else {
        EXPECT_EQ(out.weight, w);
      }
    }
  }
}

TEST(BinCodec, MutateRejectsBadSizeAndBadKind) {
  Mutation out;
  std::string err;
  EXPECT_FALSE(decode_mutate(encode_mutate(Mutation{}) + "x", out, &err));
  EXPECT_FALSE(decode_mutate("", out, &err));
  std::string p = encode_mutate(Mutation{});
  p[0] = '\x07';  // no such MutationKind
  EXPECT_FALSE(decode_mutate(p, out, &err));
  EXPECT_FALSE(err.empty());
}

TEST(BinCodec, MBatchRoundTripsRandomBatches) {
  SplitMix64 rng(2026);
  for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                              std::size_t{513}}) {
    std::vector<Mutation> in(n);
    for (auto& m : in) {
      m.kind = static_cast<MutationKind>(rng.next() % 3);
      m.src = static_cast<VertexId>(rng.next());
      m.dst = static_cast<VertexId>(rng.next());
      m.weight = static_cast<float>(rng.next() % 1000) * 0.25f;
    }
    std::vector<Mutation> out;
    std::string err;
    ASSERT_TRUE(decode_mbatch(encode_mbatch(in), out, &err)) << err;
    ASSERT_EQ(out.size(), in.size());
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(out[i].kind, in[i].kind);
      EXPECT_EQ(out[i].src, in[i].src);
      EXPECT_EQ(out[i].dst, in[i].dst);
      EXPECT_EQ(out[i].weight, in[i].weight);
    }
  }
}

TEST(BinCodec, MBatchRejectsCountPayloadDisagreement) {
  std::vector<Mutation> out;
  std::string err;
  // Count says 2, payload carries 1 mutation: a lying header must be a
  // parse error, never an out-of-bounds read or a giant reserve.
  std::string p;
  put_u32(p, 2);
  p += encode_mutate(Mutation{});
  EXPECT_FALSE(decode_mbatch(p, out, &err));
  EXPECT_NE(err.find("count"), std::string::npos) << err;
  // Count says 4 billion on a 4-byte payload.
  std::string huge;
  put_u32(huge, 0xFFFFFFFFu);
  EXPECT_FALSE(decode_mbatch(huge, out, &err));
  // Truncated below even the count field.
  EXPECT_FALSE(decode_mbatch("ab", out, &err));
}

TEST(BinCodec, AcksRoundTripAndRejectWrongSize) {
  std::uint64_t pending = 0;
  std::string err;
  ASSERT_TRUE(decode_mutate_ack(encode_mutate_ack(987654321012345ull),
                                pending, &err))
      << err;
  EXPECT_EQ(pending, 987654321012345ull);
  EXPECT_FALSE(decode_mutate_ack("short", pending, &err));

  std::uint32_t accepted = 0;
  ASSERT_TRUE(decode_mbatch_ack(encode_mbatch_ack(77, 123456), accepted,
                                pending, &err))
      << err;
  EXPECT_EQ(accepted, 77u);
  EXPECT_EQ(pending, 123456u);
  EXPECT_FALSE(decode_mbatch_ack("", accepted, pending, &err));
}

TEST(BinCodec, QueryReplyRoundTripsEveryFlagCombination) {
  for (const bool has : {false, true}) {
    for (const bool quiescent : {false, true}) {
      QueryReplyBin in;
      in.has_quiescent = has;
      in.quiescent = has && quiescent;
      in.vertex = 8589934592ull;  // > 32 bits
      in.value = -0.12345678901234567;
      in.epoch = 42;
      QueryReplyBin out;
      std::string err;
      ASSERT_TRUE(decode_query_reply(encode_query_reply(in), out, &err))
          << err;
      EXPECT_EQ(out.has_quiescent, in.has_quiescent);
      EXPECT_EQ(out.quiescent, in.quiescent);
      EXPECT_EQ(out.vertex, in.vertex);
      EXPECT_EQ(out.value, in.value);
      EXPECT_EQ(out.epoch, in.epoch);
    }
  }
  QueryReplyBin in;
  in.value = std::numeric_limits<double>::infinity();  // SSSP unreached
  QueryReplyBin out;
  ASSERT_TRUE(decode_query_reply(encode_query_reply(in), out));
  EXPECT_TRUE(std::isinf(out.value));
}

TEST(BinCodec, RecomputeReplyCarriesCountersAndTrailingReason) {
  RecomputeReplyBin in;
  in.epoch = 9;
  in.warm = true;
  in.converged = true;
  in.compacted = false;
  in.applied = 120;
  in.rejected = 7;
  in.seeds = 88;
  in.iterations = 31;
  in.updates = 100000;
  in.live_edges = 262144;
  in.reason = "gate: push-eligible (theorem 1)";
  RecomputeReplyBin out;
  std::string err;
  ASSERT_TRUE(decode_recompute_reply(encode_recompute_reply(in), out, &err))
      << err;
  EXPECT_EQ(out.epoch, in.epoch);
  EXPECT_EQ(out.warm, in.warm);
  EXPECT_EQ(out.converged, in.converged);
  EXPECT_EQ(out.compacted, in.compacted);
  EXPECT_EQ(out.applied, in.applied);
  EXPECT_EQ(out.rejected, in.rejected);
  EXPECT_EQ(out.seeds, in.seeds);
  EXPECT_EQ(out.iterations, in.iterations);
  EXPECT_EQ(out.updates, in.updates);
  EXPECT_EQ(out.live_edges, in.live_edges);
  EXPECT_EQ(out.reason, in.reason);

  in.reason.clear();  // empty trailing text is a valid payload
  ASSERT_TRUE(decode_recompute_reply(encode_recompute_reply(in), out));
  EXPECT_TRUE(out.reason.empty());
}

TEST(BinReplication, RecordRoundTripsBatchAndCompact) {
  SplitMix64 rng(7);
  RepRecord in;
  in.seq = 1234;
  in.kind = RepKind::kBatch;
  in.epoch = 56;
  in.compact_after = true;
  in.muts.resize(19);
  for (auto& m : in.muts) {
    m.kind = static_cast<MutationKind>(rng.next() % 3);
    m.src = static_cast<VertexId>(rng.next());
    m.dst = static_cast<VertexId>(rng.next());
    m.id = rng.next();
    m.weight = static_cast<float>(rng.next() % 97) * 0.5f;
    m.old_weight = static_cast<float>(rng.next() % 97) * 0.5f;
  }
  RepRecord out;
  std::string err;
  ASSERT_TRUE(decode_record_bin(encode_record_bin(in), out, &err)) << err;
  EXPECT_EQ(out.seq, in.seq);
  EXPECT_EQ(out.kind, in.kind);
  EXPECT_EQ(out.epoch, in.epoch);
  EXPECT_EQ(out.compact_after, in.compact_after);
  ASSERT_EQ(out.muts.size(), in.muts.size());
  for (std::size_t i = 0; i < in.muts.size(); ++i) {
    EXPECT_EQ(out.muts[i].kind, in.muts[i].kind);
    EXPECT_EQ(out.muts[i].src, in.muts[i].src);
    EXPECT_EQ(out.muts[i].dst, in.muts[i].dst);
    EXPECT_EQ(out.muts[i].id, in.muts[i].id);
    EXPECT_EQ(out.muts[i].weight, in.muts[i].weight);
    EXPECT_EQ(out.muts[i].old_weight, in.muts[i].old_weight);
  }

  RepRecord fence;
  fence.seq = 1235;
  fence.kind = RepKind::kCompact;
  fence.epoch = 56;
  ASSERT_TRUE(decode_record_bin(encode_record_bin(fence), out));
  EXPECT_EQ(out.kind, RepKind::kCompact);
  EXPECT_TRUE(out.muts.empty());
}

TEST(BinReplication, RecordRejectsLyingCounts) {
  RepRecord rec;
  rec.seq = 1;
  rec.muts.resize(2);
  std::string p = encode_record_bin(rec);
  RepRecord out;
  std::string err;
  EXPECT_FALSE(decode_record_bin(p + "pad", out, &err));
  EXPECT_NE(err.find("size"), std::string::npos) << err;
  // Patch the count field (after seq u64 | kind u8 | epoch u64 | compact u8)
  // to a value past kMaxRecordMuts: rejected on the bound, no allocation.
  std::string bound = p;
  const std::size_t count_off = 8 + 1 + 8 + 1;
  bound[count_off + 0] = '\xFF';
  bound[count_off + 1] = '\xFF';
  bound[count_off + 2] = '\xFF';
  bound[count_off + 3] = '\xFF';
  EXPECT_FALSE(decode_record_bin(bound, out, &err));
  EXPECT_NE(err.find("bound"), std::string::npos) << err;
}

TEST(BinReplication, SnapshotHeaderChunkSyncAckRoundTrip) {
  SnapshotHeader h;
  h.seq = 900;
  h.epoch = 12;
  h.vertices = 4096;
  h.edges = 123456789ull;
  SnapshotHeader hout;
  std::string err;
  ASSERT_TRUE(
      decode_snapshot_header_bin(encode_snapshot_header_bin(h), hout, &err))
      << err;
  EXPECT_EQ(hout.seq, h.seq);
  EXPECT_EQ(hout.epoch, h.epoch);
  EXPECT_EQ(hout.vertices, h.vertices);
  EXPECT_EQ(hout.edges, h.edges);

  SplitMix64 rng(99);
  std::vector<SnapshotEdge> edges(257);
  for (auto& e : edges) {
    e.src = static_cast<VertexId>(rng.next());
    e.dst = static_cast<VertexId>(rng.next());
    e.weight = static_cast<float>(rng.next() % 1009) * 0.125f;
  }
  std::vector<SnapshotEdge> got;
  ASSERT_TRUE(decode_snapshot_chunk(
      encode_snapshot_chunk(edges.data(), edges.size()), got, &err))
      << err;
  ASSERT_EQ(got.size(), edges.size());
  for (std::size_t i = 0; i < edges.size(); ++i) {
    EXPECT_EQ(got[i].src, edges[i].src);
    EXPECT_EQ(got[i].dst, edges[i].dst);
    EXPECT_EQ(got[i].weight, edges[i].weight);
  }
  // decode appends: a second chunk lands after the first.
  ASSERT_TRUE(
      decode_snapshot_chunk(encode_snapshot_chunk(edges.data(), 3), got));
  EXPECT_EQ(got.size(), edges.size() + 3);

  std::uint64_t replica = 0, seq = 0, epoch = 0;
  ASSERT_TRUE(decode_sync_bin(encode_sync_bin(3, 777), replica, seq, &err))
      << err;
  EXPECT_EQ(replica, 3u);
  EXPECT_EQ(seq, 777u);
  ASSERT_TRUE(
      decode_ack_bin(encode_ack_bin(2, 41, 40), replica, seq, epoch, &err))
      << err;
  EXPECT_EQ(replica, 2u);
  EXPECT_EQ(seq, 41u);
  EXPECT_EQ(epoch, 40u);
  EXPECT_FALSE(decode_sync_bin("short", replica, seq, &err));
  EXPECT_FALSE(decode_ack_bin("short", replica, seq, epoch, &err));
}

// Property sweep: random payload bytes never crash a decoder, and the
// decoders only accept when re-encoding reproduces the input exactly (the
// codecs are bijections on their valid payload sets).
TEST(BinCodec, RandomBytesNeverCrashAndAcceptedPayloadsReencodeExactly) {
  SplitMix64 rng(0xD1CEu);
  for (int iter = 0; iter < 2000; ++iter) {
    std::string p(rng.next() % 64, '\0');
    for (auto& ch : p) ch = static_cast<char>(rng.next());
    Mutation m;
    if (decode_mutate(p, m)) {
      EXPECT_EQ(encode_mutate(m), p);
    }
    std::uint64_t vertex = 0;
    if (decode_query(p, vertex)) {
      EXPECT_EQ(encode_query(vertex), p);
    }
    QueryReplyBin qr;
    // Reserved flag bits decode permissively, so the bijection claim only
    // holds for payloads whose flags byte stays within the defined bits.
    if (decode_query_reply(p, qr) && (static_cast<unsigned char>(p[0]) & ~0x03u) == 0) {
      EXPECT_EQ(encode_query_reply(qr), p);
    }
    std::uint64_t pending = 0;
    if (decode_mutate_ack(p, pending)) {
      EXPECT_EQ(encode_mutate_ack(pending), p);
    }
    std::vector<Mutation> ms;
    if (decode_mbatch(p, ms)) {
      EXPECT_EQ(encode_mbatch(ms), p);
    }
  }
}

}  // namespace
}  // namespace ndg::dyn
