// Coverage fill-ins: Barabási–Albert generator, R-MAT options, source
// picking, simulator delay-jitter semantics, interval edge cases, and the
// engine-result invariants not asserted elsewhere.

#include <gtest/gtest.h>

#include "algorithms/pagerank.hpp"
#include "algorithms/wcc.hpp"
#include "engine/deterministic.hpp"
#include "engine/simulator.hpp"
#include "graph/generators.hpp"
#include "graph/graph_stats.hpp"
#include "graph/intervals.hpp"

namespace ndg {
namespace {

TEST(BarabasiAlbert, SizeAndDeterminism) {
  const auto a = gen::barabasi_albert(500, 3, 7);
  const auto b = gen::barabasi_albert(500, 3, 7);
  EXPECT_EQ(a, b);
  // Seed clique (m+1 choose 2 * 2 directed) + (n - m - 1) * m attachments.
  EXPECT_EQ(a.size(), 4u * 3u + (500u - 4u) * 3u);
}

TEST(BarabasiAlbert, ProducesHeavyTail) {
  const Graph g = Graph::build(2000, gen::barabasi_albert(2000, 3, 11));
  const GraphStats s = compute_stats(g);
  // Preferential attachment: early vertices accumulate large in-degree.
  EXPECT_GT(s.max_in_degree, 50u);
}

TEST(Rmat, CustomParametersChangeSkew) {
  // Uniform quadrant probabilities degrade R-MAT to Erdős–Rényi-like.
  gen::RmatOptions uniform;
  uniform.a = uniform.b = uniform.c = 0.25;
  const Graph flat = Graph::build(1024, gen::rmat(1024, 16384, 5, uniform));
  const Graph skewed = Graph::build(1024, gen::rmat(1024, 16384, 5));
  EXPECT_LT(compute_stats(flat).top1pct_out_edge_share,
            compute_stats(skewed).top1pct_out_edge_share);
}

TEST(Rmat, NoPermuteConcentratesLowIds) {
  gen::RmatOptions opts;
  opts.permute = false;
  const Graph g = Graph::build(1024, gen::rmat(1024, 8192, 5, opts));
  // With a = 0.57 the recursion biases toward vertex 0's quadrant.
  EXPECT_GT(g.out_degree(0) + g.in_degree(0), 100u);
}

TEST(GraphStats, MaxOutDegreeVertex) {
  const Graph g = Graph::build(10, gen::star(10));
  EXPECT_EQ(max_out_degree_vertex(g), 0u);
  const Graph chain = Graph::build(4, gen::chain(4));
  EXPECT_EQ(chain.out_degree(max_out_degree_vertex(chain)), 1u);
}

TEST(SimulatorJitter, SameSeedSameResultDifferentSeedsDiverge) {
  const Graph g = Graph::build(512, gen::rmat(512, 3000, 17));
  auto run_pr = [&](std::uint64_t seed) {
    PageRankProgram prog(1e-3f);
    EdgeDataArray<float> edges(g.num_edges());
    prog.init(g, edges);
    SimOptions opts;
    opts.num_procs = 8;
    opts.delay = 4;
    opts.delay_jitter = 4;
    opts.seed = seed;
    EXPECT_TRUE(run_simulated(g, prog, edges, opts).converged);
    return prog.ranks();
  };
  const auto r1 = run_pr(1);
  const auto r1_again = run_pr(1);
  const auto r2 = run_pr(2);
  EXPECT_EQ(r1, r1_again);  // a seed is one reproducible schedule
  EXPECT_NE(r1, r2);        // different seeds are different schedules
}

TEST(SimulatorJitter, IrrelevantOnSingleProc) {
  const Graph g = Graph::build(128, gen::rmat(128, 700, 3));
  auto run_wcc = [&](std::size_t jitter, std::uint64_t seed) {
    WccProgram prog;
    EdgeDataArray<WccProgram::EdgeData> edges(g.num_edges());
    prog.init(g, edges);
    SimOptions opts;
    opts.num_procs = 1;
    opts.delay = 4;
    opts.delay_jitter = jitter;
    opts.seed = seed;
    run_simulated(g, prog, edges, opts);
    return prog.labels();
  };
  EXPECT_EQ(run_wcc(0, 1), run_wcc(8, 99));  // same-proc order dominates
}

TEST(SimulatorJitter, MonotonicAlgorithmsStayExactUnderNoise) {
  const Graph g = Graph::build(256, gen::rmat(256, 1500, 9));
  WccProgram de;
  EdgeDataArray<WccProgram::EdgeData> de_edges(g.num_edges());
  de.init(g, de_edges);
  run_deterministic(g, de, de_edges);

  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    WccProgram prog;
    EdgeDataArray<WccProgram::EdgeData> edges(g.num_edges());
    prog.init(g, edges);
    SimOptions opts;
    opts.num_procs = 8;
    opts.delay = 4;
    opts.delay_jitter = 4;
    opts.seed = seed;
    EXPECT_TRUE(run_simulated(g, prog, edges, opts).converged);
    EXPECT_EQ(prog.labels(), de.labels()) << "seed=" << seed;
  }
}

TEST(Intervals, MoreIntervalsThanVertices) {
  const Graph g = Graph::build(3, gen::cycle(3));
  const IntervalPlan plan = make_intervals(g, 16);
  EXPECT_EQ(plan.num_intervals(), 16u);
  EXPECT_EQ(plan.boundaries.back(), 3u);
  for (VertexId v = 0; v < 3; ++v) {
    const std::size_t i = plan.interval_of(v);
    EXPECT_GE(v, plan.boundaries[i]);
    EXPECT_LT(v, plan.boundaries[i + 1]);
  }
}

TEST(EngineResult, UpdatesEqualFrontierSum) {
  const Graph g = Graph::build(200, gen::rmat(200, 1200, 5));
  PageRankProgram prog(1e-3f);
  EdgeDataArray<float> edges(g.num_edges());
  prog.init(g, edges);
  const EngineResult r = run_deterministic(g, prog, edges);
  std::uint64_t total = 0;
  for (const auto s : r.frontier_sizes) total += s;
  EXPECT_EQ(total, r.updates);
  // Local convergence: frontier shrinks over time (not necessarily
  // monotonically; compare first vs last).
  ASSERT_GE(r.frontier_sizes.size(), 2u);
  EXPECT_LT(r.frontier_sizes.back(), r.frontier_sizes.front());
}

}  // namespace
}  // namespace ndg
