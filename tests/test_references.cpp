// The oracles themselves, validated on hand-computed instances. Every other
// test trusts these references; this file pins them to paper-and-pencil
// ground truth.

#include <gtest/gtest.h>

#include <cmath>

#include "algorithms/reference/references.hpp"
#include "graph/generators.hpp"

namespace ndg {
namespace {

TEST(RefDijkstra, HandComputedDiamond) {
  //   0 --1.0--> 1 --1.0--> 3
  //   0 --5.0--> 2 --1.0--> 3   (via 1: 2.0; via 2: 6.0)
  const Graph g = Graph::build(4, {{0, 1}, {0, 2}, {1, 3}, {2, 3}});
  // Canonical edge ids: (0,1)=0 (0,2)=1 (1,3)=2 (2,3)=3.
  const std::vector<float> w{1.0f, 5.0f, 1.0f, 1.0f};
  const auto dist = ref::sssp(g, 0, w);
  EXPECT_FLOAT_EQ(dist[0], 0.0f);
  EXPECT_FLOAT_EQ(dist[1], 1.0f);
  EXPECT_FLOAT_EQ(dist[2], 5.0f);
  EXPECT_FLOAT_EQ(dist[3], 2.0f);
}

TEST(RefDijkstra, PrefersLongerPathWithSmallerWeight) {
  // 0->2 direct weight 10; 0->1->2 weights 3+3=6.
  const Graph g = Graph::build(3, {{0, 1}, {0, 2}, {1, 2}});
  // ids: (0,1)=0 (0,2)=1 (1,2)=2.
  const std::vector<float> w{3.0f, 10.0f, 3.0f};
  const auto dist = ref::sssp(g, 0, w);
  EXPECT_FLOAT_EQ(dist[2], 6.0f);
}

TEST(RefBfs, LevelsOnBinaryTreeShape) {
  const Graph g = Graph::build(7, {{0, 1}, {0, 2}, {1, 3}, {1, 4}, {2, 5}, {2, 6}});
  const auto levels = ref::bfs(g, 0);
  EXPECT_EQ(levels[0], 0u);
  EXPECT_EQ(levels[1], 1u);
  EXPECT_EQ(levels[2], 1u);
  for (VertexId v = 3; v < 7; ++v) EXPECT_EQ(levels[v], 2u);
}

TEST(RefWcc, MinLabelPerComponent) {
  const Graph g = Graph::build(7, {{5, 2}, {2, 6}, {1, 4}});
  const auto labels = ref::wcc(g);
  EXPECT_EQ(labels[2], 2u);
  EXPECT_EQ(labels[5], 2u);
  EXPECT_EQ(labels[6], 2u);
  EXPECT_EQ(labels[1], 1u);
  EXPECT_EQ(labels[4], 1u);
  EXPECT_EQ(labels[0], 0u);  // isolated
  EXPECT_EQ(labels[3], 3u);  // isolated
}

TEST(RefPageRank, UniformOnRegularCycle) {
  // On a directed cycle every vertex has in/out degree 1: rank = 1 for all.
  const Graph g = Graph::build(8, gen::cycle(8));
  const auto r = ref::pagerank(g, 0.85, 1e-14);
  for (const double x : r) EXPECT_NEAR(x, 1.0, 1e-9);
}

TEST(RefPageRank, SatisfiesFixedPointEquation) {
  const Graph g = Graph::build(64, gen::rmat(64, 300, 4));
  const auto r = ref::pagerank(g, 0.85, 1e-14);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    double sum = 0;
    for (const InEdge& ie : g.in_edges(v)) {
      sum += r[ie.src] / static_cast<double>(g.out_degree(ie.src));
    }
    EXPECT_NEAR(r[v], 0.15 + 0.85 * sum, 1e-8) << "v=" << v;
  }
}

TEST(RefSpmv, SatisfiesLinearSystem) {
  // Fixed point of x = (1-w) + w·Px must satisfy the equation pointwise.
  const Graph g = Graph::build(64, gen::erdos_renyi(64, 300, 6));
  const double w = 0.5;
  const auto x = ref::spmv_fixed_point(g, w, 1e-14);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    double sum = 0;
    for (const InEdge& ie : g.in_edges(v)) {
      sum += x[ie.src] / static_cast<double>(g.out_degree(ie.src));
    }
    EXPECT_NEAR(x[v], (1.0 - w) + w * sum, 1e-9) << "v=" << v;
  }
}

TEST(RefKcore, BowtieHandComputed) {
  // Two triangles sharing vertex 2, symmetrized: every vertex of a triangle
  // has multigraph degree 4 (two undirected neighbours, each counted twice),
  // vertex 2 has 8. The 2-core... peeling over the doubled adjacency gives
  // core 4 for everyone (each undirected neighbour contributes 2).
  EdgeList tri1 = symmetrize({{0, 1}, {1, 2}, {2, 0}});
  EdgeList tri2 = symmetrize({{2, 3}, {3, 4}, {4, 2}});
  tri1.insert(tri1.end(), tri2.begin(), tri2.end());
  const Graph g = Graph::build(5, tri1);
  const auto core = ref::kcore(g);
  for (VertexId v = 0; v < 5; ++v) EXPECT_EQ(core[v], 4u) << "v=" << v;
}

TEST(RefKcore, HubAndSpokes) {
  // Directed star: hub out-degree n-1, leaves degree 1 (multigraph view).
  const Graph g = Graph::build(6, gen::star(6));
  const auto core = ref::kcore(g);
  for (VertexId v = 1; v < 6; ++v) EXPECT_EQ(core[v], 1u);
  EXPECT_EQ(core[0], 1u);  // hub peels once all leaves are gone
}

TEST(RefGreedyMis, HandComputedPath) {
  // Path 0-1-2-3-4 (symmetrized): greedy by id takes {0, 2, 4}.
  const Graph g = Graph::build(5, symmetrize(gen::chain(5)));
  const auto mis = ref::greedy_mis(g);
  EXPECT_TRUE(mis[0]);
  EXPECT_FALSE(mis[1]);
  EXPECT_TRUE(mis[2]);
  EXPECT_FALSE(mis[3]);
  EXPECT_TRUE(mis[4]);
}

TEST(RefGreedyMis, StarTakesHubOnly) {
  const Graph g = Graph::build(6, gen::star(6));
  const auto mis = ref::greedy_mis(g);
  EXPECT_TRUE(mis[0]);
  for (VertexId v = 1; v < 6; ++v) EXPECT_FALSE(mis[v]);
}

}  // namespace
}  // namespace ndg
