// End-to-end tests for the replicated serving tier (docs/TIER.md): a forked
// ndg_tier topology (coordinator + N replica processes over unix sockets in
// a mkdtemp dir), driven through real client connections.
//
// What they pin down:
//  * replicas replay the shipped AppliedMutation stream and answer queries
//    with EXACTLY the coordinator's quiescent values for the monotone
//    programs (SSSP, WCC — Theorem 2 territory, unique fixed point), and
//    within tolerance for PageRank (eps-converged, schedule-dependent tail);
//  * replies carry the epoch watermark so staleness is observable;
//  * a replica held back with --chaos-lag-ms falls past the coordinator's
//    bounded history (--history), is re-seeded with a full snapshot instead
//    of erroring, and converges to the same answers afterwards.
//
// The launcher path arrives via the NDG_TIER_BIN compile definition
// (tools/CMakeLists.txt). Sockets live under mkdtemp(/tmp/...) because
// sun_path caps out around 108 bytes.

#include <gtest/gtest.h>

#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <chrono>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "dyn/replication.hpp"
#include "dyn/wire.hpp"
#include "tier/net.hpp"

namespace {

using Clock = std::chrono::steady_clock;

/// Raw JSON token for `key` in a flat wire line ("" when absent). Numbers
/// and bools only — enough for the fields these tests compare.
std::string field(const std::string& line, const std::string& key) {
  const std::string pat = "\"" + key + "\":";
  std::size_t p = line.find(pat);
  if (p == std::string::npos) return {};
  p += pat.size();
  const std::size_t e = line.find_first_of(",}", p);
  return line.substr(p, e == std::string::npos ? std::string::npos : e - p);
}

double num_field(const std::string& line, const std::string& key) {
  const std::string tok = field(line, key);
  EXPECT_FALSE(tok.empty()) << "missing field " << key << " in " << line;
  return tok.empty() ? 0.0 : std::strtod(tok.c_str(), nullptr);
}

struct Tier {
  pid_t pid = -1;
  std::string dir;  // mkdtemp scratch; sockets live here

  void start(const std::vector<std::string>& extra_args) {
    char tmpl[] = "/tmp/ndg_tier_test_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir = tmpl;
    std::vector<std::string> args = {NDG_TIER_BIN, "--dir=" + dir};
    args.insert(args.end(), extra_args.begin(), extra_args.end());
    pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      std::vector<char*> argv;
      argv.reserve(args.size() + 1);
      for (auto& a : args) argv.push_back(a.data());
      argv.push_back(nullptr);
      ::execv(argv[0], argv.data());
      _exit(127);
    }
  }

  [[nodiscard]] std::string coord_sock() const { return dir + "/coord.sock"; }
  [[nodiscard]] std::string replica_sock(int k) const {
    return dir + "/replica-" + std::to_string(k) + ".sock";
  }

  /// Reaps a tier expected to exit on its own (after shutdown).
  int join(int timeout_ms = 20000) {
    const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
    int status = -1;
    while (Clock::now() < deadline) {
      const pid_t r = ::waitpid(pid, &status, WNOHANG);
      if (r == pid) {
        pid = -1;
        return status;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return -1;  // still running
  }

  void stop() {
    if (pid > 0) {
      // The launcher owns the replica children; SIGKILL would orphan them,
      // so ask politely first is the tests' job — stop() is the teardown
      // hammer for a test that already failed.
      ::kill(pid, SIGKILL);
      ::waitpid(pid, nullptr, 0);
      pid = -1;
    }
  }

  ~Tier() { stop(); }
};

/// Blocking line-oriented client with connect retry and receive deadline.
class Client {
 public:
  void connect(const std::string& path, int timeout_ms = 30000) {
    const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
    while (Clock::now() < deadline) {
      fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
      ASSERT_GE(fd_, 0);
      sockaddr_un addr{};
      addr.sun_family = AF_UNIX;
      std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
      if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                    sizeof(addr)) == 0) {
        return;
      }
      ::close(fd_);
      fd_ = -1;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    FAIL() << "could not connect to " << path;
  }

  void send_line(const std::string& line) {
    const std::string payload = line + "\n";
    std::size_t off = 0;
    while (off < payload.size()) {
      const ssize_t n =
          ::write(fd_, payload.data() + off, payload.size() - off);
      if (n < 0 && errno == EINTR) continue;
      ASSERT_GT(n, 0) << "write failed: " << std::strerror(errno);
      off += static_cast<std::size_t>(n);
    }
  }

  std::string read_line(int timeout_ms = 30000) {
    const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
    for (;;) {
      const std::size_t nl = buf_.find('\n');
      if (nl != std::string::npos) {
        const std::string line = buf_.substr(0, nl);
        buf_.erase(0, nl + 1);
        return line;
      }
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - Clock::now());
      if (left.count() <= 0) {
        ADD_FAILURE() << "timed out waiting for a reply line";
        return {};
      }
      pollfd p{fd_, POLLIN, 0};
      const int rc = ::poll(&p, 1, static_cast<int>(left.count()));
      if (rc < 0 && errno == EINTR) continue;
      if (rc <= 0) {
        ADD_FAILURE() << "timed out waiting for a reply line";
        return {};
      }
      char chunk[4096];
      const ssize_t n = ::read(fd_, chunk, sizeof chunk);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) {
        ADD_FAILURE() << "connection closed while awaiting a reply";
        return {};
      }
      buf_.append(chunk, static_cast<std::size_t>(n));
    }
  }

  /// One request/reply round trip.
  std::string rpc(const std::string& line, int timeout_ms = 30000) {
    send_line(line);
    return read_line(timeout_ms);
  }

  void close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  ~Client() { close(); }

 private:
  int fd_ = -1;
  std::string buf_;
};

bool contains(const std::string& s, const std::string& needle) {
  return s.find(needle) != std::string::npos;
}

/// Polls coordinator stats until `replicas` peers have completed the sync
/// handshake — before that, min_acked_epoch() trivially equals the
/// coordinator epoch and the watermark wait below would pass vacuously.
void wait_for_replicas(Client& coord, int replicas, int timeout_ms = 30000) {
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  while (Clock::now() < deadline) {
    const std::string st = coord.rpc(R"({"op":"stats"})");
    if (num_field(st, "replicas") >= replicas) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  FAIL() << "replicas never completed the sync handshake";
}

/// Polls coordinator stats until every replica has acked the current epoch.
std::string wait_watermark(Client& coord, int timeout_ms = 60000) {
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  std::string st;
  while (Clock::now() < deadline) {
    st = coord.rpc(R"({"op":"stats"})");
    if (!st.empty() &&
        field(st, "epoch_watermark") == field(st, "epoch")) {
      return st;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  ADD_FAILURE() << "replicas never caught up: " << st;
  return st;
}

std::string query(Client& c, int v) {
  return c.rpc(R"({"op":"query","vertex":)" + std::to_string(v) + "}");
}

// Two replicas replaying an SSSP mutation stream answer every sampled query
// with EXACTLY the coordinator's quiescent value (monotone program, unique
// fixed point), and the replies carry the replica's epoch watermark.
TEST(Tier, ReplicasConvergeToCoordinatorAnswersExactly) {
  Tier tier;
  tier.start({"--replicas=2", "--algo=sssp", "--kind=chain",
              "--vertices=400", "--gate=theorem2", "--threads=2"});
  Client coord;
  coord.connect(tier.coord_sock());
  EXPECT_TRUE(contains(coord.read_line(), "\"ready\":true"));
  wait_for_replicas(coord, 2);

  // Two epochs: shortcut edges into the chain, then a deletion epoch.
  for (int i = 0; i < 6; ++i) {
    coord.rpc(R"({"op":"mutate","kind":"insert","src":0,"dst":)" +
              std::to_string(50 * (i + 1)) + R"(,"weight":0.5})");
  }
  EXPECT_TRUE(contains(coord.rpc(R"({"op":"recompute"})"), "\"ok\":true"));
  coord.rpc(R"({"op":"mutate","kind":"delete","src":0,"dst":50})");
  coord.rpc(R"({"op":"mutate","kind":"weight","src":0,"dst":100,)"
            R"("weight":0.25})");
  EXPECT_TRUE(contains(coord.rpc(R"({"op":"recompute"})"), "\"ok\":true"));

  const std::string st = wait_watermark(coord);
  EXPECT_EQ(field(st, "epoch"), "2");

  Client rep0;
  Client rep1;
  rep0.connect(tier.replica_sock(0));
  rep1.connect(tier.replica_sock(1));
  EXPECT_TRUE(contains(rep0.read_line(), "\"role\":\"replica\""));
  EXPECT_TRUE(contains(rep1.read_line(), "\"role\":\"replica\""));

  for (int v = 0; v < 400; v += 13) {
    const std::string qc = query(coord, v);
    const std::string q0 = query(rep0, v);
    const std::string q1 = query(rep1, v);
    EXPECT_EQ(field(qc, "value"), field(q0, "value")) << qc << "\n" << q0;
    EXPECT_EQ(field(qc, "value"), field(q1, "value")) << qc << "\n" << q1;
    // Watermark: both replicas applied epoch 2 before answering.
    EXPECT_EQ(field(q0, "epoch"), "2") << q0;
    EXPECT_EQ(field(q1, "epoch"), "2") << q1;
  }

  EXPECT_TRUE(contains(coord.rpc(R"({"op":"shutdown"})"), "\"bye\":true"));
  const int status = tier.join();
  ASSERT_NE(status, -1) << "tier did not exit after shutdown";
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
}

// A replica held back with --chaos-lag-ms while the coordinator seals epochs
// faster than the 2-record ReplicationLog retains them must fall past the
// bound, get re-seeded with a full snapshot (stats prove it on both sides),
// and end up answering WCC queries exactly like the coordinator.
TEST(Tier, LaggedReplicaSnapshotsAndConvergesExactly) {
  Tier tier;
  tier.start({"--replicas=1", "--algo=wcc", "--kind=er", "--vertices=300",
              "--edges=900", "--seed=7", "--gate=theorem2", "--threads=2",
              "--history=2", "--chaos-lag-ms=300"});
  Client coord;
  coord.connect(tier.coord_sock());
  EXPECT_TRUE(contains(coord.read_line(), "\"ready\":true"));
  wait_for_replicas(coord, 1);

  // Outpace the replica: 6 epochs back-to-back while it sleeps 300 ms per
  // record. With history=2 its cursor must drop off the retained window.
  for (int e = 0; e < 6; ++e) {
    for (int i = 0; i < 4; ++i) {
      coord.rpc(R"({"op":"mutate","kind":"insert","src":)" +
                std::to_string(290 + e) + R"(,"dst":)" +
                std::to_string((e * 37 + i * 11) % 300) + "}");
    }
    EXPECT_TRUE(contains(coord.rpc(R"({"op":"recompute"})"), "\"ok\":true"));
  }

  const std::string st = wait_watermark(coord, 120000);
  EXPECT_GE(num_field(st, "snapshots_served"), 1) << st;

  Client rep;
  rep.connect(tier.replica_sock(0));
  rep.read_line();  // greeting
  const std::string rst = rep.rpc(R"({"op":"stats"})");
  EXPECT_GE(num_field(rst, "snapshots_installed"), 1) << rst;
  EXPECT_EQ(field(rst, "epoch_watermark"), "6") << rst;

  for (int v = 0; v < 300; v += 7) {
    const std::string qc = query(coord, v);
    const std::string qr = query(rep, v);
    EXPECT_EQ(field(qc, "value"), field(qr, "value")) << qc << "\n" << qr;
  }

  EXPECT_TRUE(contains(coord.rpc(R"({"op":"shutdown"})"), "\"bye\":true"));
  const int status = tier.join();
  ASSERT_NE(status, -1) << "tier did not exit after shutdown";
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
}

// --chaos=stale:2 keeps the replica's replication at full speed (it acks
// every record promptly, so the coordinator watermark advances) but serves
// reads from a state two records behind, stamped with that state's honest
// epoch — the bounded per-record staleness mode of docs/DELAY.md.
TEST(Tier, StaleChaosServesBoundedLagWithHonestEpoch) {
  Tier tier;
  tier.start({"--replicas=1", "--algo=wcc", "--kind=er", "--vertices=300",
              "--edges=900", "--seed=7", "--gate=theorem2", "--threads=2",
              "--chaos=stale:2"});
  Client coord;
  coord.connect(tier.coord_sock());
  EXPECT_TRUE(contains(coord.read_line(), "\"ready\":true"));
  wait_for_replicas(coord, 1);

  for (int e = 0; e < 3; ++e) {
    for (int i = 0; i < 4; ++i) {
      coord.rpc(R"({"op":"mutate","kind":"insert","src":)" +
                std::to_string(290 + e) + R"(,"dst":)" +
                std::to_string((e * 37 + i * 11) % 300) + "}");
    }
    EXPECT_TRUE(contains(coord.rpc(R"({"op":"recompute"})"), "\"ok\":true"));
  }
  // Stale serving must not stall replication: the replica still acks
  // everything, so the coordinator watermark reaches epoch 3.
  const std::string st = wait_watermark(coord);
  EXPECT_EQ(field(st, "epoch"), "3");

  Client rep;
  rep.connect(tier.replica_sock(0));
  rep.read_line();  // greeting
  const std::string rst = rep.rpc(R"({"op":"stats"})");
  EXPECT_EQ(field(rst, "epoch_watermark"), "3") << rst;
  EXPECT_EQ(field(rst, "chaos_stale_records"), "2") << rst;
  EXPECT_EQ(field(rst, "serving_lag"), "2") << rst;
  EXPECT_EQ(field(rst, "serving_epoch"), "1") << rst;
  // Query replies are stamped with the SERVED state's epoch, not the
  // applied watermark.
  EXPECT_EQ(field(query(rep, 0), "epoch"), "1");

  // Two more records slide the ring forward: still lag 2, served epoch 3.
  for (int e = 3; e < 5; ++e) {
    coord.rpc(R"({"op":"mutate","kind":"insert","src":)" +
              std::to_string(290 + e) + R"(,"dst":5})");
    EXPECT_TRUE(contains(coord.rpc(R"({"op":"recompute"})"), "\"ok\":true"));
  }
  wait_watermark(coord);
  const std::string rst2 = rep.rpc(R"({"op":"stats"})");
  EXPECT_EQ(field(rst2, "serving_lag"), "2") << rst2;
  EXPECT_EQ(field(rst2, "serving_epoch"), "3") << rst2;
  EXPECT_EQ(field(query(rep, 0), "epoch"), "3");

  EXPECT_TRUE(contains(coord.rpc(R"({"op":"shutdown"})"), "\"bye\":true"));
  const int status = tier.join();
  ASSERT_NE(status, -1) << "tier did not exit after shutdown";
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
}

// --proto=mixed: replica 0 negotiates the bin1 replication stream (records
// and snapshots travel as frames) while replica 1 stays on newline JSON.
// Both are lagged past the 2-record history so each gets re-seeded through
// its own snapshot encoding, and both must converge to EXACTLY the
// coordinator's WCC answers — the two transports are interchangeable down
// to the last bit.
TEST(Tier, MixedProtocolReplicasConvergeExactly) {
  Tier tier;
  tier.start({"--replicas=2", "--proto=mixed", "--algo=wcc", "--kind=er",
              "--vertices=300", "--edges=900", "--seed=7",
              "--gate=theorem2", "--threads=2", "--history=2",
              "--chaos-lag-ms=300"});
  Client coord;
  coord.connect(tier.coord_sock());
  EXPECT_TRUE(contains(coord.read_line(), "\"ready\":true"));
  wait_for_replicas(coord, 2);

  // One replication peer per protocol, visible in the wire counters.
  const std::string st0 = coord.rpc(R"({"op":"stats"})");
  EXPECT_GE(num_field(st0, "conns_bin"), 1) << st0;
  EXPECT_GE(num_field(st0, "conns_json"), 2) << st0;  // peer + this client

  // Outpace both replicas (300 ms per record, history=2): each falls off
  // the retained window and is re-seeded via its protocol's snapshot path.
  for (int e = 0; e < 6; ++e) {
    for (int i = 0; i < 4; ++i) {
      coord.rpc(R"({"op":"mutate","kind":"insert","src":)" +
                std::to_string(290 + e) + R"(,"dst":)" +
                std::to_string((e * 37 + i * 11) % 300) + "}");
    }
    EXPECT_TRUE(contains(coord.rpc(R"({"op":"recompute"})"), "\"ok\":true"));
  }

  const std::string st = wait_watermark(coord, 120000);
  EXPECT_GE(num_field(st, "snapshots_served"), 2) << st;

  Client rep0;
  Client rep1;
  rep0.connect(tier.replica_sock(0));
  rep1.connect(tier.replica_sock(1));
  EXPECT_TRUE(contains(rep0.read_line(), "\"role\":\"replica\""));
  EXPECT_TRUE(contains(rep1.read_line(), "\"role\":\"replica\""));
  const std::string rst0 = rep0.rpc(R"({"op":"stats"})");
  const std::string rst1 = rep1.rpc(R"({"op":"stats"})");
  EXPECT_GE(num_field(rst0, "snapshots_installed"), 1) << rst0;
  EXPECT_GE(num_field(rst1, "snapshots_installed"), 1) << rst1;
  EXPECT_EQ(field(rst0, "epoch_watermark"), "6") << rst0;
  EXPECT_EQ(field(rst1, "epoch_watermark"), "6") << rst1;

  for (int v = 0; v < 300; v += 7) {
    const std::string qc = query(coord, v);
    const std::string q0 = query(rep0, v);
    const std::string q1 = query(rep1, v);
    EXPECT_EQ(field(qc, "value"), field(q0, "value")) << qc << "\n" << q0;
    EXPECT_EQ(field(qc, "value"), field(q1, "value")) << qc << "\n" << q1;
  }

  EXPECT_TRUE(contains(coord.rpc(R"({"op":"shutdown"})"), "\"bye\":true"));
  const int status = tier.join();
  ASSERT_NE(status, -1) << "tier did not exit after shutdown";
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
}

// PageRank is eps-converged, not exact: independent racy runs on identical
// graphs land within a small neighborhood of the same fixed point, so the
// replica's answers must agree with the coordinator's within tolerance.
TEST(Tier, PageRankReplicaAgreesWithinTolerance) {
  Tier tier;
  tier.start({"--replicas=1", "--algo=pagerank", "--kind=rmat",
              "--vertices=512", "--edges=2048", "--gate=theorem1",
              "--threads=2"});
  Client coord;
  coord.connect(tier.coord_sock());
  EXPECT_TRUE(contains(coord.read_line(), "\"ready\":true"));
  wait_for_replicas(coord, 1);

  for (int i = 0; i < 8; ++i) {
    coord.rpc(R"({"op":"mutate","kind":"insert","src":)" +
              std::to_string(i) + R"(,"dst":)" + std::to_string(511 - i) +
              "}");
  }
  EXPECT_TRUE(contains(coord.rpc(R"({"op":"recompute"})"), "\"ok\":true"));
  wait_watermark(coord);

  Client rep;
  rep.connect(tier.replica_sock(0));
  rep.read_line();
  for (int v = 0; v < 512; v += 17) {
    const double a = num_field(query(coord, v), "value");
    const double b = num_field(query(rep, v), "value");
    EXPECT_NEAR(a, b, 1e-2) << "vertex " << v;
  }

  EXPECT_TRUE(contains(coord.rpc(R"({"op":"shutdown"})"), "\"bye\":true"));
  EXPECT_NE(tier.join(), -1);
}

// The edge-id freelist can return overflow_ratio() to exactly 0 (delete an
// edge, reuse its id for a different edge) while the id space is no longer
// canonical. A snapshot served in that state must still compact first —
// otherwise the re-seeded replica's canonically rebuilt ids disagree with
// the coordinator's, and the next id-addressed record (the weight change on
// the reused-id edge below) lands on the wrong edge and SSSP answers
// diverge.
TEST(Tier, SnapshotAfterIdReuseStaysCanonical) {
  Tier tier;
  tier.start({"--replicas=1", "--algo=sssp", "--kind=chain",
              "--vertices=300", "--gate=theorem2", "--threads=2",
              "--history=2", "--chaos-lag-ms=300"});
  Client coord;
  coord.connect(tier.coord_sock());
  EXPECT_TRUE(contains(coord.read_line(), "\"ready\":true"));
  wait_for_replicas(coord, 1);

  // Epoch 1: retire the id of chain edge (5,6). Epoch 2: reuse it for the
  // shortcut (0,7), which sorts far from (5,6) — id space hole-free again,
  // ids out of canonical order.
  coord.rpc(R"({"op":"mutate","kind":"delete","src":5,"dst":6})");
  EXPECT_TRUE(contains(coord.rpc(R"({"op":"recompute"})"), "\"ok\":true"));
  coord.rpc(R"({"op":"mutate","kind":"insert","src":0,"dst":7,)"
            R"("weight":1.0})");
  EXPECT_TRUE(contains(coord.rpc(R"({"op":"recompute"})"), "\"ok\":true"));

  // Epochs 3-6: weight churn on (10,11), sealed faster than the lagged
  // replica (300 ms per record) can replay with only 2 records of history,
  // forcing the snapshot path while the reused id is in place.
  for (int e = 0; e < 4; ++e) {
    coord.rpc(R"({"op":"mutate","kind":"weight","src":10,"dst":11,)"
              R"("weight":)" + std::to_string(1.0 + 0.5 * e) + "}");
    EXPECT_TRUE(contains(coord.rpc(R"({"op":"recompute"})"), "\"ok\":true"));
  }
  {
    const auto deadline = Clock::now() + std::chrono::seconds(60);
    std::string st;
    while (Clock::now() < deadline) {
      st = coord.rpc(R"({"op":"stats"})");
      if (num_field(st, "snapshots_served") >= 1) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    ASSERT_GE(num_field(st, "snapshots_served"), 1) << st;
  }

  // Epoch 7, AFTER the snapshot: reweight the reused-id edge. The record is
  // addressed by the coordinator's id for (0,7); only a canonical snapshot
  // makes the replica agree on what that id names.
  coord.rpc(R"({"op":"mutate","kind":"weight","src":0,"dst":7,)"
            R"("weight":0.25})");
  EXPECT_TRUE(contains(coord.rpc(R"({"op":"recompute"})"), "\"ok\":true"));

  const std::string st = wait_watermark(coord, 120000);
  EXPECT_EQ(field(st, "epoch"), "7") << st;

  Client rep;
  rep.connect(tier.replica_sock(0));
  rep.read_line();  // greeting
  const std::string rst = rep.rpc(R"({"op":"stats"})");
  EXPECT_GE(num_field(rst, "snapshots_installed"), 1) << rst;

  // Monotone program, identical graph + weights: answers must match the
  // coordinator's EXACTLY (including the "inf" tail past the deleted edge).
  for (int v = 0; v < 300; v += 7) {
    const std::string qc = query(coord, v);
    const std::string qr = query(rep, v);
    EXPECT_EQ(field(qc, "value"), field(qr, "value")) << qc << "\n" << qr;
  }

  EXPECT_TRUE(contains(coord.rpc(R"({"op":"shutdown"})"), "\"bye\":true"));
  const int status = tier.join();
  ASSERT_NE(status, -1) << "tier did not exit after shutdown";
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
}

/// Child pids of `parent` (the launcher's children ARE the replicas) via
/// /proc — a reaped child disappears from this list, a zombie does not.
std::vector<pid_t> child_pids(pid_t parent) {
  std::ifstream f("/proc/" + std::to_string(parent) + "/task/" +
                  std::to_string(parent) + "/children");
  std::vector<pid_t> out;
  long long p = 0;
  while (f >> p) out.push_back(static_cast<pid_t>(p));
  return out;
}

/// One non-retrying connect attempt; -1 if nothing is listening.
int try_connect_once(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) == 0) {
    return fd;
  }
  ::close(fd);
  return -1;
}

// Replica-crash regression: SIGKILL one replica while the coordinator is
// actively streaming to it (hold-chaos + a 2-record history keep the
// record/snapshot pump busy, so the death lands mid-chunk). The coordinator
// must notice the dead peer (POLLHUP/EPIPE), retire it, waitpid the child
// (no zombie), count both in stats, and keep serving the tier through the
// surviving replica — then report the crash in the launcher's exit status.
TEST(Tier, ReplicaCrashMidStreamIsReapedAndSurvived) {
  Tier tier;
  tier.start({"--replicas=2", "--algo=wcc", "--kind=er", "--vertices=300",
              "--edges=900", "--seed=7", "--gate=theorem2", "--threads=2",
              "--history=2", "--chaos=hold:200"});
  Client coord;
  coord.connect(tier.coord_sock());
  EXPECT_TRUE(contains(coord.read_line(), "\"ready\":true"));
  wait_for_replicas(coord, 2);
  const std::vector<pid_t> replicas = child_pids(tier.pid);
  ASSERT_EQ(replicas.size(), 2u);

  // Outpace the bounded history (200 ms hold per record, history=2) so the
  // victim is behind — records and/or snapshot chunks in flight — when shot.
  for (int e = 0; e < 3; ++e) {
    for (int i = 0; i < 4; ++i) {
      coord.rpc(R"({"op":"mutate","kind":"insert","src":)" +
                std::to_string(290 + e) + R"(,"dst":)" +
                std::to_string((e * 31 + i * 13) % 300) + "}");
    }
    EXPECT_TRUE(contains(coord.rpc(R"({"op":"recompute"})"), "\"ok\":true"));
  }
  ASSERT_EQ(::kill(replicas[0], SIGKILL), 0);

  // The crash surfaces in stats: peer retired as broken, child reaped.
  const auto deadline = Clock::now() + std::chrono::seconds(30);
  std::string st;
  for (;;) {
    st = coord.rpc(R"({"op":"stats"})");
    if (num_field(st, "replicas_broken") >= 1 &&
        num_field(st, "children_reaped") >= 1) {
      break;
    }
    ASSERT_LT(Clock::now(), deadline) << "crash never surfaced: " << st;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  EXPECT_EQ(field(st, "replicas"), "1") << st;
  // Reaped means gone from the launcher's child list (a zombie would stay).
  for (const pid_t pid : child_pids(tier.pid)) EXPECT_NE(pid, replicas[0]);

  // The tier keeps working: more epochs land, the watermark (which only
  // counts live synced peers) still reaches the coordinator epoch, and the
  // survivor answers queries with the coordinator's exact WCC values.
  for (int i = 0; i < 4; ++i) {
    coord.rpc(R"({"op":"mutate","kind":"insert","src":5,"dst":)" +
              std::to_string(100 + 40 * i) + "}");
  }
  EXPECT_TRUE(contains(coord.rpc(R"({"op":"recompute"})"), "\"ok\":true"));
  wait_watermark(coord, 120000);

  int survivor_fd = -1;
  std::size_t survivor = 0;
  for (std::size_t k = 0; k < 2 && survivor_fd < 0; ++k) {
    survivor_fd = try_connect_once(tier.replica_sock(static_cast<int>(k)));
    if (survivor_fd >= 0) survivor = k;
  }
  ASSERT_GE(survivor_fd, 0) << "no replica left listening";
  ::close(survivor_fd);  // Client does its own connect
  Client rep;
  rep.connect(tier.replica_sock(static_cast<int>(survivor)));
  EXPECT_TRUE(contains(rep.read_line(), "\"role\":\"replica\""));
  for (int v = 0; v < 300; v += 17) {
    const std::string qc = query(coord, v);
    const std::string qr = query(rep, v);
    EXPECT_EQ(field(qc, "value"), field(qr, "value")) << qc << "\n" << qr;
  }

  EXPECT_TRUE(contains(coord.rpc(R"({"op":"shutdown"})"), "\"bye\":true"));
  const int status = tier.join();
  ASSERT_NE(status, -1) << "tier did not exit after shutdown";
  // A crashed replica fails the run: the launcher must exit 1, not 0.
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 1)
      << "status=" << status;
}

// --- Unit tests for the hardened wire/socket layers ---

// A corrupt record header must be a clean parse error, not a huge reserve.
TEST(Replication, RecordHeaderRejectsAbsurdCount) {
  const std::string line =
      R"({"op":"replicate","seq":1,"kind":"batch","epoch":1,)"
      R"("count":1000000000000000000,"compact":false})";
  ndg::dyn::WireMessage msg;
  std::string err;
  ASSERT_TRUE(ndg::dyn::parse_wire(line, msg, &err)) << err;
  ndg::dyn::RepRecord rec;
  std::uint64_t count = 0;
  EXPECT_FALSE(ndg::dyn::parse_record_header(msg, rec, count, &err));
  EXPECT_NE(err.find("count"), std::string::npos) << err;

  // Boundary: the bound itself still parses (reserve is capped separately).
  const std::string ok_line =
      R"({"op":"replicate","seq":1,"kind":"batch","epoch":1,"count":)" +
      std::to_string(ndg::dyn::kMaxRecordMuts) + R"(,"compact":false})";
  ndg::dyn::WireMessage ok_msg;
  ASSERT_TRUE(ndg::dyn::parse_wire(ok_line, ok_msg, &err)) << err;
  EXPECT_TRUE(ndg::dyn::parse_record_header(ok_msg, rec, count, &err)) << err;
  EXPECT_EQ(count, ndg::dyn::kMaxRecordMuts);
}

// A peer that streams bytes with no newline forever must be dropped once
// the unterminated line passes the bound instead of growing server memory.
TEST(TierNet, LineConnBreaksOnOversizeUnterminatedLine) {
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  ndg::tier::set_nonblocking(sv[0]);
  ndg::tier::LineConn conn;
  conn.fd = sv[0];

  const std::string junk(64 * 1024, 'x');  // no newline anywhere
  std::size_t written = 0;
  while (!conn.broken &&
         written <= ndg::tier::LineConn::kMaxLineBytes + junk.size()) {
    std::size_t off = 0;
    while (off < junk.size()) {
      const ssize_t n = ::write(sv[1], junk.data() + off, junk.size() - off);
      if (n < 0 && errno == EINTR) continue;
      ASSERT_GT(n, 0) << std::strerror(errno);
      off += static_cast<std::size_t>(n);
    }
    written += junk.size();
    conn.read_input();  // reader keeps pace, so the writes above can't block
  }
  EXPECT_TRUE(conn.broken);
  EXPECT_TRUE(conn.pending.empty());  // never surfaced a bogus "line"
  ::close(sv[0]);
  ::close(sv[1]);
}

// Newline-terminated traffic of any volume stays healthy: lines surface in
// `pending` and the connection is never marked broken.
TEST(TierNet, LineConnSplitsCompleteLinesUnharmed) {
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  ndg::tier::set_nonblocking(sv[0]);
  ndg::tier::LineConn conn;
  conn.fd = sv[0];

  std::string burst;
  for (int i = 0; i < 2000; ++i) {
    burst += "{\"op\":\"query\",\"vertex\":" + std::to_string(i) + "}\n";
  }
  std::size_t off = 0;
  while (off < burst.size()) {
    const ssize_t n = ::write(sv[1], burst.data() + off, burst.size() - off);
    if (n < 0 && errno == EINTR) continue;
    ASSERT_GT(n, 0) << std::strerror(errno);
    off += static_cast<std::size_t>(n);
    conn.read_input();
  }
  conn.read_input();
  EXPECT_FALSE(conn.broken);
  EXPECT_EQ(conn.pending.size(), 2000u);
  EXPECT_TRUE(conn.in_buf.empty());
  ::close(sv[0]);
  ::close(sv[1]);
}

}  // namespace
