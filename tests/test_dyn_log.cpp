// MutationLog tests: epoch stamping, seal semantics, bounded history, and
// thread-safe concurrent append (the serve command loop is single-threaded,
// but the log's contract allows multi-producer ingest).

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "dyn/mutation_log.hpp"

namespace ndg::dyn {
namespace {

Mutation insert(VertexId u, VertexId v, float w = 1.0f) {
  return Mutation{MutationKind::kInsertEdge, u, v, w};
}

TEST(MutationLog, SealStampsConsecutiveEpochs) {
  MutationLog log;
  EXPECT_EQ(log.epoch(), 0u);
  EXPECT_EQ(log.pending(), 0u);

  log.append(insert(0, 1));
  log.append(insert(1, 2));
  EXPECT_EQ(log.pending(), 2u);

  const MutationBatch b1 = log.seal();
  EXPECT_EQ(b1.epoch, 1u);
  EXPECT_EQ(b1.mutations.size(), 2u);
  EXPECT_EQ(log.pending(), 0u);
  EXPECT_EQ(log.epoch(), 1u);

  log.append(insert(2, 3));
  const MutationBatch b2 = log.seal();
  EXPECT_EQ(b2.epoch, 2u);
  EXPECT_EQ(b2.mutations.size(), 1u);
  EXPECT_EQ(b2.mutations[0].src, 2u);
}

TEST(MutationLog, SealingEmptyTailStillAdvancesEpoch) {
  MutationLog log;
  const MutationBatch b1 = log.seal();
  EXPECT_EQ(b1.epoch, 1u);
  EXPECT_TRUE(b1.mutations.empty());
  const MutationBatch b2 = log.seal();
  EXPECT_EQ(b2.epoch, 2u);
}

TEST(MutationLog, TotalsCountAppendsAndBatches) {
  MutationLog log;
  log.append({insert(0, 1), insert(1, 2), insert(2, 3)});
  (void)log.seal();
  log.append(insert(3, 4));
  (void)log.seal();
  EXPECT_EQ(log.total_appended(), 4u);
  EXPECT_EQ(log.total_sealed_batches(), 2u);
}

TEST(MutationLog, HistoryIsBoundedOldestFirst) {
  MutationLog log(/*history_limit=*/2);
  for (VertexId i = 0; i < 5; ++i) {
    log.append(insert(i, i + 1));
    (void)log.seal();
  }
  const std::vector<MutationBatch> h = log.history();
  ASSERT_EQ(h.size(), 2u);
  EXPECT_EQ(h[0].epoch, 4u);
  EXPECT_EQ(h[1].epoch, 5u);
  EXPECT_EQ(h[1].mutations[0].src, 4u);
}

TEST(MutationLog, ZeroHistoryLimitKeepsNothing) {
  MutationLog log(/*history_limit=*/0);
  log.append(insert(0, 1));
  (void)log.seal();
  EXPECT_TRUE(log.history().empty());
  EXPECT_EQ(log.epoch(), 1u);  // the epoch counter is unaffected
}

TEST(MutationLog, ConcurrentAppendLosesNothing) {
  MutationLog log;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 250;
  std::vector<std::thread> team;
  team.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    team.emplace_back([&log, t] {
      for (int i = 0; i < kPerThread; ++i) {
        log.append(Mutation{MutationKind::kInsertEdge,
                            static_cast<VertexId>(t),
                            static_cast<VertexId>(i + 1), 1.0f});
      }
    });
  }
  for (auto& th : team) th.join();
  const MutationBatch b = log.seal();
  EXPECT_EQ(b.mutations.size(),
            static_cast<std::size_t>(kThreads * kPerThread));
  EXPECT_EQ(log.total_appended(),
            static_cast<std::uint64_t>(kThreads * kPerThread));
}

TEST(MutationLog, KindAndReasonNames) {
  EXPECT_STREQ(to_string(MutationKind::kInsertEdge), "insert");
  EXPECT_STREQ(to_string(MutationKind::kDeleteEdge), "delete");
  EXPECT_STREQ(to_string(MutationKind::kWeightChange), "weight");
  EXPECT_STREQ(to_string(RejectReason::kNone), "none");
  EXPECT_STREQ(to_string(RejectReason::kConflictInBatch), "conflict-in-batch");
}

}  // namespace
}  // namespace ndg::dyn
