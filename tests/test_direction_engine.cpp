// Direction-optimizing engine tests (engine/direction.hpp): exactness of
// pull / push / auto against the sequential references across thread counts
// and frontier-density divisors, the per-iteration direction telemetry, the
// pull-pinning of push-incapable programs, and an intra-iteration MIXED
// pull/push schedule (some vertices pulled, some pushed, concurrently) —
// the schedule the kSwitchable verdict licenses — run racy at 4 threads and
// checked exact, plus manifest-enforced under the merged manifest.

#include <gtest/gtest.h>

#include <vector>

#include "algorithms/bfs.hpp"
#include "algorithms/pagerank.hpp"
#include "algorithms/reference/references.hpp"
#include "algorithms/sssp.hpp"
#include "algorithms/wcc.hpp"
#include "analysis/direction_eligibility.hpp"
#include "analysis/validate.hpp"
#include "engine/direction.hpp"
#include "engine/nondeterministic.hpp"
#include "graph/generators.hpp"

namespace ndg {
namespace {

Graph test_graph() { return Graph::build(256, gen::rmat(256, 2048, 11)); }

template <typename Program, typename... Args>
EngineResult run_dir(const Graph& g, const EngineOptions& opts, Program& prog) {
  EdgeDataArray<typename Program::EdgeData> edges(g.num_edges());
  prog.init(g, edges);
  return run_direction_optimizing(g, prog, edges, opts);
}

EngineOptions make_opts(std::size_t threads, DirectionMode dir,
                        std::size_t divisor = 8) {
  EngineOptions opts;
  opts.num_threads = threads;
  opts.direction = dir;
  opts.frontier_dense_divisor = divisor;
  return opts;
}

TEST(DirectionEngine, BfsExactInEveryDirectionAndThreadCount) {
  const Graph g = test_graph();
  const VertexId source = 0;
  const std::vector<std::uint32_t> expected = ref::bfs(g, source);
  for (const std::size_t threads : {1u, 4u}) {
    for (const DirectionMode dir :
         {DirectionMode::kPull, DirectionMode::kPush, DirectionMode::kAuto}) {
      BfsProgram prog(source);
      const EngineResult r = run_dir(g, make_opts(threads, dir), prog);
      EXPECT_TRUE(r.converged);
      EXPECT_EQ(prog.levels(), expected)
          << "threads=" << threads << " dir=" << to_string(dir);
      // Telemetry invariants.
      ASSERT_EQ(r.direction_push.size(), r.iterations);
      if (dir == DirectionMode::kPull) {
        EXPECT_EQ(r.push_iterations(), 0u);
        EXPECT_EQ(r.direction_switches, 0u);
      }
      if (dir == DirectionMode::kPush) {
        EXPECT_EQ(r.push_iterations(), r.iterations);
        EXPECT_EQ(r.direction_switches, 0u);
      }
      if (dir == DirectionMode::kAuto) {
        // The auto decision IS the density signal, iteration by iteration.
        ASSERT_EQ(r.frontier_dense.size(), r.iterations);
        for (std::size_t i = 0; i < r.iterations; ++i) {
          EXPECT_EQ(r.direction_push[i] == 1, r.frontier_dense[i] == 0) << i;
        }
      }
    }
  }
}

TEST(DirectionEngine, SsspExactInEveryDirection) {
  const Graph g = test_graph();
  const VertexId source = 0;
  const std::uint64_t wseed = 42;
  std::vector<float> weights(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    weights[e] = SsspProgram::edge_weight(wseed, e);
  }
  const std::vector<float> expected = ref::sssp(g, source, weights);
  for (const std::size_t threads : {1u, 4u}) {
    for (const DirectionMode dir :
         {DirectionMode::kPull, DirectionMode::kPush, DirectionMode::kAuto}) {
      SsspProgram prog(source, wseed);
      const EngineResult r = run_dir(g, make_opts(threads, dir), prog);
      EXPECT_TRUE(r.converged);
      EXPECT_EQ(prog.distances(), expected)
          << "threads=" << threads << " dir=" << to_string(dir);
    }
  }
}

TEST(DirectionEngine, WccExactInEveryDirection) {
  const Graph g = test_graph();
  const std::vector<std::uint32_t> expected = ref::wcc(g);
  for (const std::size_t threads : {1u, 4u}) {
    for (const DirectionMode dir :
         {DirectionMode::kPull, DirectionMode::kPush, DirectionMode::kAuto}) {
      WccProgram prog;
      const EngineResult r = run_dir(g, make_opts(threads, dir), prog);
      EXPECT_TRUE(r.converged);
      EXPECT_EQ(prog.labels(), expected)
          << "threads=" << threads << " dir=" << to_string(dir);
    }
  }
}

TEST(DirectionEngine, DivisorMovesTheSwitchPointExactly) {
  // The divisor scales the dense threshold (|S|*divisor > V), so sweeping it
  // moves auto's pull/push split; the committed result must not move at all.
  const Graph g = test_graph();
  const std::vector<std::uint32_t> expected = ref::bfs(g, 0);
  std::vector<std::uint64_t> push_iters;
  for (const std::size_t divisor : {1u, 4u, 64u}) {
    BfsProgram prog(0);
    const EngineResult r =
        run_dir(g, make_opts(4, DirectionMode::kAuto, divisor), prog);
    EXPECT_TRUE(r.converged);
    EXPECT_EQ(prog.levels(), expected) << "divisor=" << divisor;
    push_iters.push_back(r.push_iterations());
  }
  // A larger divisor makes the frontier go dense earlier → no more push
  // iterations than with a smaller divisor (weakly monotone).
  EXPECT_LE(push_iters[2], push_iters[0]);
}

TEST(DirectionEngine, PushIncapableProgramsArePinnedToPull) {
  const Graph g = test_graph();
  PageRankProgram prog(1e-3f);
  const EngineResult r = run_dir(g, make_opts(4, DirectionMode::kAuto), prog);
  EXPECT_TRUE(r.converged);
  ASSERT_EQ(r.direction_push.size(), r.iterations);
  EXPECT_EQ(r.push_iterations(), 0u);
  EXPECT_EQ(r.direction_switches, 0u);
}

// The schedule kSwitchable actually licenses: directions mixed WITHIN one
// iteration. Even vertices run the pull body, odd vertices the push body,
// concurrently on the plain NE engine — the access shape of this schedule is
// exactly the merged manifest, which is what the cross-direction check
// proved a theorem for. Run racy at 4 threads (the TSan CI job executes this
// test), and checked exact.
template <typename P>
class MixedScheduleProgram {
 public:
  using EdgeData = typename P::EdgeData;
  static constexpr bool kMonotonic = P::kMonotonic;
  static constexpr AccessManifest kManifest =
      StaticDirectionEligibility<P>::kMixedManifest;

  template <typename... Args>
  explicit MixedScheduleProgram(Args... args) : inner_(args...) {}

  [[nodiscard]] const char* name() const { return "mixed-schedule"; }

  void init(const Graph& g, EdgeDataArray<EdgeData>& edges) {
    inner_.init(g, edges);
  }

  [[nodiscard]] std::vector<VertexId> initial_frontier(const Graph& g) const {
    return inner_.initial_frontier(g);
  }

  template <typename Ctx>
  void update(VertexId v, Ctx& ctx) {
    if (v % 2 == 0) {
      inner_.update(v, ctx);
    } else {
      inner_.update_push(v, ctx);
    }
  }

  static double project(EdgeData e) { return P::project(e); }

  [[nodiscard]] const P& inner() const { return inner_; }

 private:
  P inner_;
};

TEST(DirectionEngine, IntraIterationMixedScheduleIsExactUnderNE) {
  const Graph g = test_graph();
  const std::vector<std::uint32_t> expected_bfs = ref::bfs(g, 0);
  const std::vector<std::uint32_t> expected_wcc = ref::wcc(g);

  EngineOptions opts;
  opts.num_threads = 4;

  MixedScheduleProgram<BfsProgram> bfs(VertexId{0});
  {
    EdgeDataArray<std::uint32_t> edges(g.num_edges());
    bfs.init(g, edges);
    const EngineResult r = run_nondeterministic(g, bfs, edges, opts);
    EXPECT_TRUE(r.converged);
    EXPECT_EQ(bfs.inner().levels(), expected_bfs);
  }

  MixedScheduleProgram<WccProgram> wcc;
  {
    EdgeDataArray<std::uint32_t> edges(g.num_edges());
    wcc.init(g, edges);
    const EngineResult r = run_nondeterministic(g, wcc, edges, opts);
    EXPECT_TRUE(r.converged);
    EXPECT_EQ(wcc.inner().labels(), expected_wcc);
  }
}

TEST(DirectionEngine, MergedManifestCoversTheMixedSchedule) {
  // The manifest-enforcement bridge for the mixed argument: one
  // deterministic run of the parity-mixed schedule under VerifyingAccess
  // against the MERGED manifest stays violation-free — the union shape
  // really does bound every pull/push pairing.
  const Graph g = test_graph();
  MixedScheduleProgram<BfsProgram> bfs(VertexId{0});
  EXPECT_TRUE(validate_manifest(g, bfs, 1000).ok());
  MixedScheduleProgram<WccProgram> wcc;
  EXPECT_TRUE(validate_manifest(g, wcc, 1000).ok());
}

}  // namespace
}  // namespace ndg
