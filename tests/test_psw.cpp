// PSW deterministic engine tests: interval planning, conflict-free batch
// classification, determinism across thread counts, reference agreement, and
// the quantitative "DE does not scale" observation (tiny parallel fraction
// on skewed graphs).

#include <gtest/gtest.h>

#include "algorithms/bfs.hpp"
#include "algorithms/pagerank.hpp"
#include "algorithms/sssp.hpp"
#include "algorithms/wcc.hpp"
#include "algorithms/reference/references.hpp"
#include "engine/psw.hpp"
#include "graph/generators.hpp"

namespace ndg {
namespace {

TEST(Intervals, BoundariesCoverAndBalance) {
  const Graph g = Graph::build(1000, gen::erdos_renyi(1000, 8000, 2));
  const IntervalPlan plan = make_intervals(g, 4);
  ASSERT_EQ(plan.boundaries.size(), 5u);
  EXPECT_EQ(plan.boundaries.front(), 0u);
  EXPECT_EQ(plan.boundaries.back(), 1000u);
  for (std::size_t i = 0; i + 1 < plan.boundaries.size(); ++i) {
    EXPECT_LE(plan.boundaries[i], plan.boundaries[i + 1]);
  }
  // Edge-mass balance within 2x of fair share on a uniform graph.
  for (std::size_t i = 0; i < 4; ++i) {
    std::uint64_t work = 0;
    for (VertexId v = plan.boundaries[i]; v < plan.boundaries[i + 1]; ++v) {
      work += g.in_degree(v) + g.out_degree(v);
    }
    EXPECT_LT(work, 2 * 2 * g.num_edges() / 4 + g.num_vertices());
  }
}

TEST(Intervals, IntervalOfIsConsistent) {
  const Graph g = Graph::build(100, gen::cycle(100));
  const IntervalPlan plan = make_intervals(g, 7);
  for (VertexId v = 0; v < 100; ++v) {
    const std::size_t i = plan.interval_of(v);
    EXPECT_GE(v, plan.boundaries[i]);
    EXPECT_LT(v, plan.boundaries[i + 1]);
  }
}

TEST(Intervals, IntraNeighborFlagsAreSound) {
  const Graph g = Graph::build(100, gen::cycle(100));
  const IntervalPlan plan = make_intervals(g, 10);
  for (VertexId v = 0; v < 100; ++v) {
    bool has = false;
    const std::size_t iv = plan.interval_of(v);
    for (const VertexId u : g.out_neighbors(v)) {
      has = has || (u != v && plan.interval_of(u) == iv);
    }
    for (const InEdge& ie : g.in_edges(v)) {
      has = has || (ie.src != v && plan.interval_of(ie.src) == iv);
    }
    EXPECT_EQ(plan.has_intra_neighbor[v], has) << "v=" << v;
  }
}

TEST(Intervals, SingleIntervalMarksEveryConnectedVertex) {
  const Graph g = Graph::build(10, gen::chain(10));
  const IntervalPlan plan = make_intervals(g, 1);
  for (VertexId v = 0; v < 10; ++v) EXPECT_TRUE(plan.has_intra_neighbor[v]);
}

TEST(Psw, WccExactAndDeterministicAcrossThreads) {
  const Graph g = Graph::build(512, gen::rmat(512, 3500, 21));
  const IntervalPlan plan = make_intervals(g, 8);
  const auto expected = ref::wcc(g);

  std::vector<std::uint32_t> first_labels;
  for (const std::size_t threads : {1u, 2u, 4u}) {
    WccProgram prog;
    EdgeDataArray<WccProgram::EdgeData> edges(g.num_edges());
    prog.init(g, edges);
    EngineOptions opts;
    opts.num_threads = threads;
    const PswResult r = run_psw_deterministic(g, prog, edges, plan, opts);
    EXPECT_TRUE(r.converged);
    EXPECT_EQ(prog.labels(), expected) << "threads=" << threads;
    if (first_labels.empty()) {
      first_labels = prog.labels();
    } else {
      EXPECT_EQ(prog.labels(), first_labels);
    }
  }
}

TEST(Psw, SsspAndBfsMatchReferences) {
  const Graph g = Graph::build(256, gen::rmat(256, 1500, 33));
  const IntervalPlan plan = make_intervals(g, 4);
  const VertexId src = 0;
  {
    SsspProgram prog(src, 9);
    std::vector<float> weights(g.num_edges());
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      weights[e] = SsspProgram::edge_weight(9, e);
    }
    EdgeDataArray<SsspProgram::EdgeData> edges(g.num_edges());
    prog.init(g, edges);
    EngineOptions opts;
    opts.num_threads = 4;
    EXPECT_TRUE(run_psw_deterministic(g, prog, edges, plan, opts).converged);
    const auto expected = ref::sssp(g, src, weights);
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      EXPECT_FLOAT_EQ(prog.distances()[v], expected[v]);
    }
  }
  {
    BfsProgram prog(src);
    EdgeDataArray<BfsProgram::EdgeData> edges(g.num_edges());
    prog.init(g, edges);
    EngineOptions opts;
    opts.num_threads = 2;
    EXPECT_TRUE(run_psw_deterministic(g, prog, edges, plan, opts).converged);
    EXPECT_EQ(prog.levels(), ref::bfs(g, src));
  }
}

TEST(Psw, PageRankConverges) {
  const Graph g = Graph::build(256, gen::erdos_renyi(256, 1500, 5));
  const IntervalPlan plan = make_intervals(g, 4);
  PageRankProgram prog(1e-4f);
  EdgeDataArray<float> edges(g.num_edges());
  prog.init(g, edges);
  EngineOptions opts;
  opts.num_threads = 4;
  const PswResult r = run_psw_deterministic(g, prog, edges, plan, opts);
  EXPECT_TRUE(r.converged);
  const auto expected = ref::pagerank(g, 0.85, 1e-12);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_NEAR(prog.ranks()[v], expected[v], 0.05 * expected[v] + 0.01);
  }
}

TEST(Psw, ParallelFractionCollapsesOnConnectedGraphs) {
  // The paper's observation, quantified: on a connected skewed graph almost
  // every active vertex has an intra-interval neighbour, so the external
  // deterministic scheduler runs (nearly) everything sequentially.
  const Graph g = Graph::build(1024, gen::rmat(1024, 16384, 3));
  const IntervalPlan plan = make_intervals(g, 4);
  WccProgram prog;
  EdgeDataArray<WccProgram::EdgeData> edges(g.num_edges());
  prog.init(g, edges);
  EngineOptions opts;
  opts.num_threads = 4;
  const PswResult r = run_psw_deterministic(g, prog, edges, plan, opts);
  EXPECT_TRUE(r.converged);
  EXPECT_LT(r.parallel_fraction(), 0.3);
  EXPECT_EQ(r.parallel_updates + r.sequential_updates, r.updates);
}

TEST(Psw, ParallelFractionHighWhenIntervalsCutAllEdges) {
  // Star with many intervals: the hub's interval holds the hub alone in most
  // plans, and all leaves are adjacent only to the hub — with enough
  // intervals, leaves land in hub-free intervals and run in parallel.
  const Graph g = Graph::build(64, gen::star(64));
  const IntervalPlan plan = make_intervals(g, 32);
  WccProgram prog;
  EdgeDataArray<WccProgram::EdgeData> edges(g.num_edges());
  prog.init(g, edges);
  EngineOptions opts;
  opts.num_threads = 4;
  const PswResult r = run_psw_deterministic(g, prog, edges, plan, opts);
  EXPECT_TRUE(r.converged);
  EXPECT_GT(r.parallel_fraction(), 0.5);
}

}  // namespace
}  // namespace ndg
