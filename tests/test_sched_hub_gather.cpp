// Edge-parallel hub gather (perf/hub_gather.hpp): splitting a high-in-degree
// vertex's gather into co-scheduled edge chunks is just another choice of
// schedule, so for eligible programs (Theorems 1 & 2) the fixed point must be
// unchanged under every Section III atomicity method. A star graph is the
// pure hub case — one vertex owns nearly every in-edge — so every round of
// the hub's update exercises the chunk arm/countdown/combine protocol.
// Named test_sched_* so the NDG_TSAN CI job runs this binary; the kAligned
// (deliberate plain access) rows are skipped under TSan because their races
// are the point, not a bug.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "algorithms/pagerank.hpp"
#include "algorithms/reference/references.hpp"
#include "algorithms/sssp.hpp"
#include "engine/nondeterministic.hpp"
#include "engine/pure_async.hpp"
#include "graph/generators.hpp"
#include "perf/hub_gather.hpp"

namespace ndg {
namespace {

#if defined(__SANITIZE_THREAD__)
constexpr bool kTsanActive = true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
constexpr bool kTsanActive = true;
#else
constexpr bool kTsanActive = false;
#endif
#else
constexpr bool kTsanActive = false;
#endif

constexpr VertexId kStarSize = 256;

// Bidirectional star: hub 0 <-> every spoke. gen::star only points outward
// (hub -> spokes), which gives the hub out-degree; hub GATHER needs the
// in-edges, so add the reverse edges too. Hub in-degree = kStarSize - 1.
Graph hub_graph() {
  EdgeList el = gen::star(kStarSize);
  const std::size_t spokes = el.size();
  for (std::size_t e = 0; e < spokes; ++e) {
    el.push_back({el[e].dst, el[e].src});
  }
  return Graph::build(kStarSize, std::move(el));
}

EngineOptions hub_opts(AtomicityMode mode, SchedulerKind kind) {
  EngineOptions opts;
  opts.num_threads = 4;
  opts.mode = mode;
  opts.scheduler = kind;
  opts.hub_threshold = 32;    // hub in-degree 255 >> 32; spokes stay whole
  opts.hub_chunk_edges = 32;  // => 8 chunks per hub round
  return opts;
}

constexpr AtomicityMode kAllModes[] = {AtomicityMode::kLocked,
                                       AtomicityMode::kAligned,
                                       AtomicityMode::kRelaxed,
                                       AtomicityMode::kSeqCst};
// Only shared worklists have a queue to co-schedule chunks on.
constexpr SchedulerKind kSharedKinds[] = {SchedulerKind::kStealing,
                                          SchedulerKind::kBucket};

TEST(SchedHubGather, HubTablePartitionsInEdges) {
  const Graph g = hub_graph();
  const perf::HubTable table(g, /*threshold=*/32, /*chunk_edges=*/32);
  ASSERT_FALSE(table.empty());
  ASSERT_EQ(table.num_hubs(), 1u);
  EXPECT_TRUE(table.is_hub(0));
  EXPECT_FALSE(table.is_hub(1));
  EXPECT_EQ(table.hub_vertex(0), 0u);
  EXPECT_EQ(table.total_chunks(), 8u);  // ceil(255 / 32)
  EXPECT_LE(table.total_chunks(), g.num_edges());  // lock-table coverage
  // The chunk ranges must tile [in_begin, in_end) exactly, in order.
  const auto in = g.in_edges(0);
  std::size_t covered = 0;
  for (std::uint32_t c = 0; c < table.num_chunks(0); ++c) {
    const auto range = table.chunk_range(g, table.chunk_begin(0) + c);
    EXPECT_EQ(range.v, 0u);
    EXPECT_EQ(range.begin, covered);
    EXPECT_GT(range.end, range.begin);
    covered = range.end;
  }
  EXPECT_EQ(covered, in.size());
}

TEST(SchedHubGather, ChunkTokensRoundTrip) {
  EXPECT_FALSE(perf::is_chunk_token(0));
  EXPECT_FALSE(perf::is_chunk_token(perf::kChunkTokenFlag - 1));
  const VertexId tok = perf::make_chunk_token(7);
  EXPECT_TRUE(perf::is_chunk_token(tok));
  EXPECT_EQ(perf::chunk_of_token(tok), 7u);
}

TEST(SchedHubGather, PageRankMatchesUnderEveryModeAndEngine) {
  const Graph g = hub_graph();
  const auto expected = ref::pagerank(g, 0.85, 1e-10);
  for (const AtomicityMode mode : kAllModes) {
    if (kTsanActive && mode == AtomicityMode::kAligned) continue;
    for (const SchedulerKind kind : kSharedKinds) {
      for (const bool async : {false, true}) {
        const std::string label = std::string(to_string(mode)) + "/" +
                                  to_string(kind) + (async ? "/async" : "/ne");
        PageRankProgram prog(1e-4f);
        EdgeDataArray<float> edges(g.num_edges());
        prog.init(g, edges);
        const EngineOptions opts = hub_opts(mode, kind);
        const EngineResult r =
            async ? run_pure_async(g, prog, edges, opts)
                  : run_nondeterministic(g, prog, edges, opts);
        ASSERT_TRUE(r.converged) << label;
        EXPECT_GT(r.hub_splits, 0u) << label;
        EXPECT_GE(r.hub_chunks, 8 * r.hub_splits) << label;
        for (VertexId v = 0; v < g.num_vertices(); ++v) {
          ASSERT_NEAR(prog.ranks()[v], expected[v], 0.05 * expected[v] + 0.01)
              << label << " vertex " << v;
        }
      }
    }
  }
}

TEST(SchedHubGather, SsspExactUnderEveryModeAndEngine) {
  const Graph g = hub_graph();
  const VertexId source = 1;  // a spoke: every path runs through the hub
  std::vector<float> weights(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    weights[e] = SsspProgram::edge_weight(42, e);
  }
  const auto expected = ref::sssp(g, source, weights);
  for (const AtomicityMode mode : kAllModes) {
    if (kTsanActive && mode == AtomicityMode::kAligned) continue;
    for (const SchedulerKind kind : kSharedKinds) {
      for (const bool async : {false, true}) {
        const std::string label = std::string(to_string(mode)) + "/" +
                                  to_string(kind) + (async ? "/async" : "/ne");
        SsspProgram prog(source, 42);
        EdgeDataArray<SsspEdge> edges(g.num_edges());
        prog.init(g, edges);
        const EngineOptions opts = hub_opts(mode, kind);
        const EngineResult r =
            async ? run_pure_async(g, prog, edges, opts)
                  : run_nondeterministic(g, prog, edges, opts);
        ASSERT_TRUE(r.converged) << label;
        EXPECT_GT(r.hub_splits, 0u) << label;
        EXPECT_EQ(prog.distances(), expected) << label;
      }
    }
  }
}

TEST(SchedHubGather, KnobInertOnStaticBlockAndWhenDisabled) {
  const Graph g = hub_graph();
  const auto expected = ref::pagerank(g, 0.85, 1e-10);
  // kStaticBlock has no shared queue to co-schedule chunks on: the knob is
  // documented-inert, results unchanged, telemetry zero.
  {
    PageRankProgram prog(1e-4f);
    EdgeDataArray<float> edges(g.num_edges());
    prog.init(g, edges);
    const EngineResult r = run_nondeterministic(
        g, prog, edges,
        hub_opts(AtomicityMode::kRelaxed, SchedulerKind::kStaticBlock));
    ASSERT_TRUE(r.converged);
    EXPECT_EQ(r.hub_splits, 0u);
    EXPECT_EQ(r.hub_chunks, 0u);
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      ASSERT_NEAR(prog.ranks()[v], expected[v], 0.05 * expected[v] + 0.01);
    }
  }
  // hub_threshold = 0 disables splitting on shared worklists too.
  {
    PageRankProgram prog(1e-4f);
    EdgeDataArray<float> edges(g.num_edges());
    prog.init(g, edges);
    EngineOptions opts =
        hub_opts(AtomicityMode::kRelaxed, SchedulerKind::kStealing);
    opts.hub_threshold = 0;
    const EngineResult r = run_nondeterministic(g, prog, edges, opts);
    ASSERT_TRUE(r.converged);
    EXPECT_EQ(r.hub_splits, 0u);
    EXPECT_EQ(r.hub_chunks, 0u);
  }
}

}  // namespace
}  // namespace ndg
