// Label propagation tests: community recovery, the synchronous-oscillation
// pathology, and the graph-dependence of its eligibility verdict — evidence
// that the paper's Theorem 1 premise ("converges with synchronous model
// execution") is a property of the (algorithm, graph) pair.

#include <gtest/gtest.h>

#include <set>

#include "algorithms/label_propagation.hpp"
#include "core/eligibility.hpp"
#include "engine/bsp.hpp"
#include "engine/deterministic.hpp"
#include "engine/nondeterministic.hpp"
#include "graph/generators.hpp"

namespace ndg {
namespace {

/// Two dense cliques joined by one weak edge: the textbook LP community case.
Graph two_cliques(VertexId k) {
  EdgeList edges;
  auto clique = [&](VertexId base) {
    for (VertexId u = 0; u < k; ++u) {
      for (VertexId v = 0; v < k; ++v) {
        if (u != v) edges.push_back(Edge{base + u, base + v});
      }
    }
  };
  clique(0);
  clique(k);
  edges.push_back(Edge{0, k});
  edges.push_back(Edge{k, 0});
  return Graph::build(2 * k, edges);
}

TEST(LabelPropagation, RecoverTwoCliqueCommunities) {
  const Graph g = two_cliques(8);
  LabelPropagationProgram prog;
  EdgeDataArray<LabelPropagationProgram::EdgeData> edges(g.num_edges());
  prog.init(g, edges);
  const EngineResult r = run_deterministic(g, prog, edges, 1000);
  EXPECT_TRUE(r.converged);
  // Each clique must agree internally.
  std::set<std::uint32_t> left;
  std::set<std::uint32_t> right;
  for (VertexId v = 0; v < 8; ++v) left.insert(prog.labels()[v]);
  for (VertexId v = 8; v < 16; ++v) right.insert(prog.labels()[v]);
  EXPECT_EQ(left.size(), 1u);
  EXPECT_EQ(right.size(), 1u);
}

TEST(LabelPropagation, SynchronousOscillatesOnBipartitePair) {
  // The classic LPA flip-flop: two vertices pointing at each other keep
  // swapping labels under BSP (each adopts the other's previous label).
  const Graph g = Graph::build(2, {{0, 1}, {1, 0}});
  LabelPropagationProgram prog;
  EdgeDataArray<LabelPropagationProgram::EdgeData> edges(g.num_edges());
  prog.init(g, edges);
  const EngineResult r = run_bsp(g, prog, edges, /*max_iterations=*/200);
  EXPECT_FALSE(r.converged);  // oscillation hits the cap
}

TEST(LabelPropagation, AsynchronousConvergesOnTheSamePair) {
  const Graph g = Graph::build(2, {{0, 1}, {1, 0}});
  LabelPropagationProgram prog;
  EdgeDataArray<LabelPropagationProgram::EdgeData> edges(g.num_edges());
  prog.init(g, edges);
  const EngineResult r = run_deterministic(g, prog, edges, 200);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(prog.labels()[0], prog.labels()[1]);
}

TEST(LabelPropagation, EligibilityIsGraphDependent) {
  // On the bipartite pair the Theorem 1 premise (synchronous convergence)
  // fails and LP is non-monotonic: not proven eligible.
  {
    const Graph g = Graph::build(2, {{0, 1}, {1, 0}});
    LabelPropagationProgram prog;
    const EligibilityReport r = analyze_eligibility(g, prog, 200);
    EXPECT_FALSE(r.bsp_converges);
    // On two vertices a single async run can LOOK monotone — which is why
    // Theorem 2 also requires the program's own monotonicity claim.
    EXPECT_FALSE(r.claimed_monotonic);
    EXPECT_EQ(r.verdict, EligibilityVerdict::kNotProven);
  }
  // On the two-clique graph synchronous LP settles: Theorem 1 applies.
  {
    const Graph g = two_cliques(6);
    LabelPropagationProgram prog;
    const EligibilityReport r = analyze_eligibility(g, prog, 2000);
    if (r.bsp_converges) {  // tie-breaking makes this the expected outcome
      EXPECT_EQ(r.conflicts.write_write, 0u);
      EXPECT_EQ(r.verdict, EligibilityVerdict::kTheorem1);
    } else {
      EXPECT_EQ(r.verdict, EligibilityVerdict::kNotProven);
    }
  }
}

TEST(LabelPropagation, ConflictsAreReadWriteOnly) {
  const Graph g = two_cliques(6);
  LabelPropagationProgram prog;
  const EligibilityReport r = analyze_eligibility(g, prog, 2000);
  EXPECT_GT(r.conflicts.read_write, 0u);
  EXPECT_EQ(r.conflicts.write_write, 0u);  // pull mode: one writer per edge
}

TEST(LabelPropagation, NondeterministicRunsProduceValidCommunities) {
  const Graph g = two_cliques(10);
  for (const std::size_t threads : {2u, 4u}) {
    LabelPropagationProgram prog;
    EdgeDataArray<LabelPropagationProgram::EdgeData> edges(g.num_edges());
    prog.init(g, edges);
    EngineOptions opts;
    opts.num_threads = threads;
    opts.mode = AtomicityMode::kRelaxed;
    opts.max_iterations = 1000;
    const EngineResult r = run_nondeterministic(g, prog, edges, opts);
    EXPECT_TRUE(r.converged);
    std::set<std::uint32_t> left;
    std::set<std::uint32_t> right;
    for (VertexId v = 0; v < 10; ++v) left.insert(prog.labels()[v]);
    for (VertexId v = 10; v < 20; ++v) right.insert(prog.labels()[v]);
    EXPECT_EQ(left.size(), 1u) << "threads=" << threads;
    EXPECT_EQ(right.size(), 1u) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace ndg
