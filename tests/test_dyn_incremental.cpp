// IncrementalEngine acceptance tests (docs/DYNAMIC.md):
//
//   * PageRank (Theorem 1): a random insert/delete/reweight batch on an
//     R-MAT graph warm-starts, and the warm result converges to the cold
//     recompute's fixed point within the engines' run tolerance.
//   * SSSP / WCC (Theorem 2): monotone batches (inserts, weight decreases)
//     warm-start and land on the EXACT cold fixed point; a delete in the
//     batch makes the gate refuse warm start and recompute cold.
//   * Ineligible algorithm (push-mode atomic PageRank analyzes to
//     kNotProven): every batch is routed cold.
//   * All of the above across >= 2 atomicity policies, and compaction in the
//     middle of a stream keeps the warm state consistent.

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstring>
#include <thread>
#include <vector>

#include "algorithms/pagerank.hpp"
#include "algorithms/push_pagerank_atomic.hpp"
#include "algorithms/sssp.hpp"
#include "algorithms/wcc.hpp"
#include "dyn/dyn_graph.hpp"
#include "dyn/eligibility_gate.hpp"
#include "dyn/incremental.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace ndg::dyn {
namespace {

constexpr VertexId kV = 256;

Graph base_graph() { return Graph::build(kV, gen::rmat(kV, 1400, 31)); }

EngineOptions make_opts(AtomicityMode mode) {
  EngineOptions opts;
  opts.num_threads = 4;
  opts.mode = mode;
  return opts;
}

/// A mixed batch over the current view: inserts of absent edges plus, when
/// allowed, deletes and weight INCREASES of present ones.
MutationBatch random_batch(const DynGraph& dg, std::uint64_t seed,
                           bool monotone_only, std::uint64_t epoch = 1) {
  MutationBatch batch;
  batch.epoch = epoch;
  SplitMix64 rng(seed);
  const EdgeList live = dg.live_edge_list();
  for (int i = 0; i < 120; ++i) {
    const auto u = static_cast<VertexId>(rng.next() % kV);
    const auto v = static_cast<VertexId>(rng.next() % kV);
    if (u == v) continue;
    if (!dg.has_edge(u, v)) {
      batch.mutations.push_back(
          Mutation{MutationKind::kInsertEdge, u, v,
                   1.0f + static_cast<float>(rng.next() % 8)});
    } else if (monotone_only) {
      // Weight DECREASE stays inside SSSP's monotone envelope (base weights
      // are >= 1, so 0.5 always decreases).
      batch.mutations.push_back(
          Mutation{MutationKind::kWeightChange, u, v, 0.5f});
    } else if (i % 2 == 0) {
      batch.mutations.push_back(Mutation{MutationKind::kDeleteEdge, u, v, 0});
    } else {
      batch.mutations.push_back(
          Mutation{MutationKind::kWeightChange, u, v,
                   1.0f + static_cast<float>(rng.next() % 16)});
    }
  }
  return batch;
}

class DynPolicies : public ::testing::TestWithParam<AtomicityMode> {};

// --- PageRank: Theorem 1 licenses warm start for ANY batch -----------------

TEST_P(DynPolicies, PageRankWarmMatchesColdWithinRunTolerance) {
  DynGraph dg(base_graph());
  PageRankProgram prog(/*epsilon=*/1e-4f);
  // Analyze path: core/eligibility must classify pull PageRank as Theorem 1.
  IncrementalEngine<PageRankProgram> inc(
      dg, prog, EligibilityGate::make(GateMode::kAnalyze, dg.base(), prog),
      make_opts(GetParam()));
  EXPECT_EQ(inc.gate().verdict(), EligibilityVerdict::kTheorem1);
  EXPECT_TRUE(inc.gate().analyzed());

  ASSERT_TRUE(inc.recompute_cold().converged);

  const MutationBatch batch = random_batch(dg, 77, /*monotone_only=*/false);
  const EpochResult r = inc.apply_epoch(batch);
  EXPECT_TRUE(r.warm);
  EXPECT_STREQ(r.gate_reason, "theorem-1");
  EXPECT_GT(r.apply_stats.applied, 50u);
  EXPECT_GT(r.seed_count, 0u);
  ASSERT_TRUE(r.engine.converged);
  const std::vector<float> warm = prog.ranks();

  ASSERT_TRUE(inc.recompute_cold().converged);
  const std::vector<float>& cold = prog.ranks();
  ASSERT_EQ(warm.size(), cold.size());
  for (VertexId v = 0; v < kV; ++v) {
    // Same bound the static NE-vs-reference tests use: local convergence
    // with threshold ε leaves each value within a small multiple of ε.
    EXPECT_NEAR(warm[v], cold[v], 0.05 * cold[v] + 0.01) << "v=" << v;
  }
  EXPECT_EQ(inc.warm_runs(), 1u);
}

// --- SSSP: Theorem 2, exact warm == cold for monotone batches --------------

TEST_P(DynPolicies, SsspWarmMatchesColdExactlyForMonotoneBatch) {
  DynGraphOptions gopts;
  gopts.base_weight = [](EdgeId e) { return SsspProgram::edge_weight(42, e); };
  DynGraph dg(base_graph(), gopts);
  SsspProgram prog(/*source=*/0, /*weight_seed=*/42);
  // Analyze path: SSSP satisfies BOTH theorems' premises; for warm-start
  // licensing the gate must prefer the Theorem 2 (monotone-envelope) route.
  IncrementalEngine<SsspProgram> inc(
      dg, prog, EligibilityGate::make(GateMode::kAnalyze, dg.base(), prog),
      make_opts(GetParam()));
  EXPECT_EQ(inc.gate().verdict(), EligibilityVerdict::kTheorem2);

  ASSERT_TRUE(inc.recompute_cold().converged);

  const MutationBatch batch = random_batch(dg, 13, /*monotone_only=*/true);
  const EpochResult r = inc.apply_epoch(batch);
  EXPECT_TRUE(r.warm);
  EXPECT_STREQ(r.gate_reason, "theorem-2-monotone-batch");
  ASSERT_TRUE(r.engine.converged);
  const std::vector<float> warm = prog.distances();

  ASSERT_TRUE(inc.recompute_cold().converged);
  EXPECT_EQ(warm, prog.distances());  // exact, bit-for-bit
}

TEST_P(DynPolicies, SsspDeleteForcesColdRecompute) {
  DynGraphOptions gopts;
  gopts.base_weight = [](EdgeId e) { return SsspProgram::edge_weight(42, e); };
  DynGraph dg(base_graph(), gopts);
  SsspProgram prog(/*source=*/0, /*weight_seed=*/42);
  IncrementalEngine<SsspProgram> inc(
      dg, prog, EligibilityGate(EligibilityVerdict::kTheorem2),
      make_opts(GetParam()));
  ASSERT_TRUE(inc.recompute_cold().converged);
  const std::uint64_t cold_before = inc.cold_runs();

  const EdgeList live = dg.live_edge_list();
  MutationBatch batch;
  batch.epoch = 1;
  batch.mutations.push_back(Mutation{MutationKind::kInsertEdge, 1, 250, 2.0f});
  batch.mutations.push_back(
      Mutation{MutationKind::kDeleteEdge, live[5].src, live[5].dst, 0});
  const EpochResult r = inc.apply_epoch(batch);
  EXPECT_FALSE(r.warm);
  EXPECT_STREQ(r.gate_reason, "non-monotone-mutation");
  ASSERT_TRUE(r.engine.converged);
  EXPECT_EQ(inc.cold_runs(), cold_before + 1);
  EXPECT_EQ(inc.warm_runs(), 0u);

  // A weight INCREASE is equally outside the monotone envelope.
  MutationBatch up;
  up.epoch = 2;
  up.mutations.push_back(
      Mutation{MutationKind::kWeightChange, live[6].src, live[6].dst, 100.0f});
  const EpochResult r2 = inc.apply_epoch(up);
  EXPECT_FALSE(r2.warm);
  EXPECT_STREQ(r2.gate_reason, "non-monotone-mutation");
}

// --- WCC: Theorem 2, exact warm == cold for insert batches -----------------

TEST_P(DynPolicies, WccWarmMatchesColdExactlyForInsertBatch) {
  DynGraph dg(base_graph());
  WccProgram prog;
  IncrementalEngine<WccProgram> inc(
      dg, prog, EligibilityGate(EligibilityVerdict::kTheorem2),
      make_opts(GetParam()));
  ASSERT_TRUE(inc.recompute_cold().converged);

  MutationBatch batch;
  batch.epoch = 1;
  SplitMix64 rng(5);
  while (batch.mutations.size() < 80) {
    const auto u = static_cast<VertexId>(rng.next() % kV);
    const auto v = static_cast<VertexId>(rng.next() % kV);
    if (u != v && !dg.has_edge(u, v)) {
      batch.mutations.push_back(
          Mutation{MutationKind::kInsertEdge, u, v, 1.0f});
    }
  }
  const EpochResult r = inc.apply_epoch(batch);
  EXPECT_TRUE(r.warm);
  ASSERT_TRUE(r.engine.converged);
  const std::vector<std::uint32_t> warm = prog.labels();

  ASSERT_TRUE(inc.recompute_cold().converged);
  EXPECT_EQ(warm, prog.labels());  // exact, bit-for-bit
}

TEST_P(DynPolicies, WccDeleteForcesColdRecompute) {
  DynGraph dg(base_graph());
  WccProgram prog;
  IncrementalEngine<WccProgram> inc(
      dg, prog, EligibilityGate(EligibilityVerdict::kTheorem2),
      make_opts(GetParam()));
  ASSERT_TRUE(inc.recompute_cold().converged);
  const EdgeList live = dg.live_edge_list();
  MutationBatch batch;
  batch.epoch = 1;
  batch.mutations.push_back(
      Mutation{MutationKind::kDeleteEdge, live[0].src, live[0].dst, 0});
  const EpochResult r = inc.apply_epoch(batch);
  EXPECT_FALSE(r.warm);
  EXPECT_STREQ(r.gate_reason, "non-monotone-mutation");
  ASSERT_TRUE(r.engine.converged);

  // Post-cold state equals a from-scratch run on the mutated view.
  const std::vector<std::uint32_t> after = prog.labels();
  ASSERT_TRUE(inc.recompute_cold().converged);
  EXPECT_EQ(after, prog.labels());
}

// --- Ineligible algorithm: analyze -> kNotProven -> always cold ------------

TEST_P(DynPolicies, IneligibleAlgorithmAlwaysRecomputesCold) {
  DynGraph dg(base_graph());
  AtomicPushPageRankProgram prog(/*epsilon=*/1e-4f);
  IncrementalEngine<AtomicPushPageRankProgram> inc(
      dg, prog, EligibilityGate::make(GateMode::kAnalyze, dg.base(), prog),
      make_opts(GetParam()));
  EXPECT_EQ(inc.gate().verdict(), EligibilityVerdict::kNotProven);

  ASSERT_TRUE(inc.recompute_cold().converged);
  const std::uint64_t cold_before = inc.cold_runs();

  MutationBatch batch;
  batch.epoch = 1;
  batch.mutations.push_back(Mutation{MutationKind::kInsertEdge, 3, 200, 1.0f});
  const EpochResult r = inc.apply_epoch(batch);
  EXPECT_FALSE(r.warm);
  EXPECT_STREQ(r.gate_reason, "not-proven");
  EXPECT_EQ(inc.cold_runs(), cold_before + 1);
  EXPECT_EQ(inc.warm_runs(), 0u);
  EXPECT_TRUE(r.engine.converged);
}

TEST(DynIncremental, GateReportsBlockingMutationIndex) {
  SsspProgram prog(/*source=*/0);
  const EligibilityGate gate(EligibilityVerdict::kTheorem2);
  std::vector<AppliedMutation> applied;
  applied.push_back({MutationKind::kInsertEdge, 0, 1, 10, 1.0f, 1.0f});
  applied.push_back({MutationKind::kWeightChange, 1, 2, 3, 0.5f, 2.0f});
  applied.push_back({MutationKind::kDeleteEdge, 2, 3, 4, 0.0f, 1.0f});
  const GateDecision d = gate.decide(prog, applied);
  EXPECT_FALSE(d.warm);
  EXPECT_STREQ(d.reason, "non-monotone-mutation");
  EXPECT_EQ(d.blocking_mutation, 2u);

  applied.pop_back();
  const GateDecision ok = gate.decide(prog, applied);
  EXPECT_TRUE(ok.warm);
  EXPECT_STREQ(ok.reason, "theorem-2-monotone-batch");
}

// --- Streaming details -----------------------------------------------------

TEST(DynIncremental, EmptyBatchIsAFixedPointNoEngineRun) {
  DynGraph dg(base_graph());
  WccProgram prog;
  IncrementalEngine<WccProgram> inc(
      dg, prog, EligibilityGate(EligibilityVerdict::kTheorem2),
      make_opts(AtomicityMode::kRelaxed));
  ASSERT_TRUE(inc.recompute_cold().converged);
  const EpochResult r = inc.apply_epoch(MutationBatch{1, {}});
  EXPECT_TRUE(r.warm);
  EXPECT_STREQ(r.gate_reason, "empty-batch");
  EXPECT_TRUE(r.engine.converged);
  EXPECT_EQ(r.engine.iterations, 0u);
  EXPECT_EQ(inc.warm_runs(), 0u);
}

TEST(DynIncremental, CompactionMidStreamPreservesWarmState) {
  DynGraphOptions gopts;
  gopts.base_weight = [](EdgeId e) { return SsspProgram::edge_weight(42, e); };
  gopts.compact_threshold = 0.01;  // compact after essentially every batch
  DynGraph dg(base_graph(), gopts);
  SsspProgram prog(/*source=*/0, /*weight_seed=*/42);
  IncrementalEngine<SsspProgram> inc(
      dg, prog, EligibilityGate(EligibilityVerdict::kTheorem2),
      make_opts(AtomicityMode::kSeqCst));
  ASSERT_TRUE(inc.recompute_cold().converged);

  std::uint64_t compactions = 0;
  for (std::uint64_t epoch = 1; epoch <= 4; ++epoch) {
    const MutationBatch batch =
        random_batch(dg, 1000 + epoch, /*monotone_only=*/true, epoch);
    const EpochResult r = inc.apply_epoch(batch);
    EXPECT_TRUE(r.warm) << "epoch " << epoch;
    ASSERT_TRUE(r.engine.converged);
    compactions += r.compacted ? 1 : 0;

    const std::vector<float> warm = prog.distances();
    ASSERT_TRUE(inc.recompute_cold().converged);
    ASSERT_EQ(warm, prog.distances()) << "epoch " << epoch;
  }
  EXPECT_GT(compactions, 0u);  // the threshold really did trigger mid-stream
  EXPECT_EQ(dg.compactions(), compactions);
}

TEST(DynIncremental, PureAsyncEngineWarmMatchesColdExactly) {
  DynGraph dg(base_graph());
  WccProgram prog;
  IncrementalEngine<WccProgram> inc(
      dg, prog, EligibilityGate(EligibilityVerdict::kTheorem2),
      make_opts(AtomicityMode::kRelaxed), DynEngine::kPureAsync);
  ASSERT_TRUE(inc.recompute_cold().converged);

  MutationBatch batch;
  batch.epoch = 1;
  batch.mutations.push_back(Mutation{MutationKind::kInsertEdge, 0, 255, 1.0f});
  batch.mutations.push_back(Mutation{MutationKind::kInsertEdge, 255, 7, 1.0f});
  const EpochResult r = inc.apply_epoch(batch);
  EXPECT_TRUE(r.warm);
  ASSERT_TRUE(r.engine.converged);
  const std::vector<std::uint32_t> warm = prog.labels();
  ASSERT_TRUE(inc.recompute_cold().converged);
  EXPECT_EQ(warm, prog.labels());
}

// --- Live (mid-recompute) vertex reads -------------------------------------

// Compile-time wiring: the three dyn-capable algorithms expose live_value;
// the ineligible push-mode exhibit deliberately does not (its mid-recompute
// queries in ndg_serve degrade to the quiescent barrier).
static_assert(IncrementalEngine<SsspProgram>::kLiveQueryCapable);
static_assert(IncrementalEngine<WccProgram>::kLiveQueryCapable);
static_assert(IncrementalEngine<PageRankProgram>::kLiveQueryCapable);
static_assert(!IncrementalEngine<AtomicPushPageRankProgram>::kLiveQueryCapable);

TEST_P(DynPolicies, SsspLiveValueEqualsQuiescentDistances) {
  DynGraphOptions gopts;
  gopts.base_weight = [](EdgeId e) { return SsspProgram::edge_weight(42, e); };
  DynGraph dg(base_graph(), gopts);
  SsspProgram prog(/*source=*/0, /*weight_seed=*/42);
  IncrementalEngine<SsspProgram> inc(
      dg, prog, EligibilityGate(EligibilityVerdict::kTheorem2),
      make_opts(GetParam()));
  ASSERT_TRUE(inc.recompute_cold().converged);
  ASSERT_TRUE(
      inc.apply_epoch(random_batch(dg, 21, /*monotone_only=*/true))
          .engine.converged);

  // At a quiescent point the edge-only reconstruction must agree EXACTLY:
  // the fixed point satisfies dist(v) = min_in(dist(u) + w) and the scatter
  // leaves dist(v) itself on v's out-edges.
  const std::vector<float>& dists = prog.distances();
  for (VertexId v = 0; v < kV; ++v) {
    const double live = inc.live_value(v);
    if (std::isinf(dists[v])) {
      EXPECT_TRUE(std::isinf(live)) << "v=" << v;
    } else {
      EXPECT_EQ(static_cast<float>(live), dists[v]) << "v=" << v;
    }
  }
}

TEST_P(DynPolicies, WccLiveValueEqualsQuiescentLabels) {
  DynGraph dg(base_graph());
  WccProgram prog;
  IncrementalEngine<WccProgram> inc(
      dg, prog, EligibilityGate(EligibilityVerdict::kTheorem2),
      make_opts(GetParam()));
  ASSERT_TRUE(inc.recompute_cold().converged);
  const std::vector<std::uint32_t>& labels = prog.labels();
  for (VertexId v = 0; v < kV; ++v) {
    EXPECT_EQ(static_cast<std::uint32_t>(inc.live_value(v)), labels[v])
        << "v=" << v;
  }
}

TEST(DynIncremental, PageRankLiveValueAgreesWithinLocalConvergence) {
  DynGraph dg(base_graph());
  PageRankProgram prog(/*epsilon=*/1e-4f);
  IncrementalEngine<PageRankProgram> inc(
      dg, prog, EligibilityGate(EligibilityVerdict::kTheorem1),
      make_opts(AtomicityMode::kRelaxed));
  ASSERT_TRUE(inc.recompute_cold().converged);
  // Local convergence stops scattering below ε, so the re-gathered value can
  // lag the stored rank by the unpublished deltas of the in-neighbors —
  // bounded by in-degree * ε, far under this slack on a 1400-edge graph.
  const std::vector<float>& ranks = prog.ranks();
  for (VertexId v = 0; v < kV; ++v) {
    EXPECT_NEAR(inc.live_value(v), ranks[v], 0.02 + 0.02 * ranks[v])
        << "v=" << v;
  }
}

// The concurrency contract itself: live_value from another thread while
// apply_epoch is inside its (artificially held) engine run. The TSan CI job
// runs this test — the reads go through the atomic edge slots only, never
// the program's plain per-vertex arrays.
TEST(DynIncremental, LiveValueDuringEngineRunIsSafeAndLabeled) {
  DynGraphOptions gopts;
  gopts.base_weight = [](EdgeId e) { return SsspProgram::edge_weight(42, e); };
  DynGraph dg(base_graph(), gopts);
  SsspProgram prog(/*source=*/0, /*weight_seed=*/42);
  IncrementalEngine<SsspProgram> inc(
      dg, prog, EligibilityGate(EligibilityVerdict::kTheorem2),
      make_opts(AtomicityMode::kRelaxed));
  ASSERT_TRUE(inc.recompute_cold().converged);
  EXPECT_EQ(inc.phase(), EpochPhase::kIdle);

  inc.set_run_hold_ms(300);
  const MutationBatch batch = random_batch(dg, 97, /*monotone_only=*/true, 1);
  EpochResult result;
  std::thread epoch([&] { result = inc.apply_epoch(batch); });

  // Wait for the run phase to be published, then hammer live reads inside
  // the licensed window. Values must be plausible distances (the racy read
  // observes SOME prefix of the run), never garbage.
  bool saw_running = false;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (std::chrono::steady_clock::now() < deadline) {
    if (inc.phase() == EpochPhase::kRunning) {
      saw_running = true;
      break;
    }
    std::this_thread::yield();
  }
  EXPECT_TRUE(saw_running);
  if (saw_running) {
    EXPECT_EQ(inc.inflight_epoch(), 1u);
    for (int round = 0; round < 50; ++round) {
      for (VertexId v = 0; v < kV; v += 7) {
        const double live = inc.live_value(v);
        EXPECT_TRUE(live >= 0.0) << "v=" << v << " live=" << live;
      }
      if (inc.phase() != EpochPhase::kRunning) break;
    }
  }

  epoch.join();
  EXPECT_TRUE(result.engine.converged);
  EXPECT_EQ(inc.phase(), EpochPhase::kIdle);
  // Back at quiescence the same reads reproduce the result exactly.
  const std::vector<float>& dists = prog.distances();
  for (VertexId v = 0; v < kV; ++v) {
    if (!std::isinf(dists[v])) {
      EXPECT_EQ(static_cast<float>(inc.live_value(v)), dists[v]) << "v=" << v;
    }
  }
}

// Deferred compaction: apply_epoch(batch, auto_compact=false) leaves the
// overlay in place even past the threshold; compact_now() at the caller's
// own quiescent point finishes the job with the warm state intact. This is
// exactly the hand-off ndg_serve's event loop performs around its worker.
TEST(DynIncremental, DeferredCompactionKeepsWarmState) {
  DynGraphOptions gopts;
  gopts.base_weight = [](EdgeId e) { return SsspProgram::edge_weight(42, e); };
  gopts.compact_threshold = 0.01;
  DynGraph dg(base_graph(), gopts);
  SsspProgram prog(/*source=*/0, /*weight_seed=*/42);
  IncrementalEngine<SsspProgram> inc(
      dg, prog, EligibilityGate(EligibilityVerdict::kTheorem2),
      make_opts(AtomicityMode::kRelaxed));
  ASSERT_TRUE(inc.recompute_cold().converged);

  const MutationBatch batch = random_batch(dg, 55, /*monotone_only=*/true, 1);
  const EpochResult r = inc.apply_epoch(batch, /*auto_compact=*/false);
  ASSERT_TRUE(r.engine.converged);
  EXPECT_FALSE(r.compacted);
  ASSERT_TRUE(dg.should_compact());  // threshold tripped, compaction owed
  const std::vector<float> warm = prog.distances();

  inc.compact_now();
  EXPECT_EQ(dg.compactions(), 1u);
  // Remapped edge data still reconstructs the same distances...
  for (VertexId v = 0; v < kV; ++v) {
    if (!std::isinf(warm[v])) {
      EXPECT_EQ(static_cast<float>(inc.live_value(v)), warm[v]) << "v=" << v;
    }
  }
  // ...and the next epoch still warm-starts onto the exact fixed point.
  const MutationBatch batch2 = random_batch(dg, 56, /*monotone_only=*/true, 2);
  const EpochResult r2 = inc.apply_epoch(batch2);
  EXPECT_TRUE(r2.warm);
  ASSERT_TRUE(r2.engine.converged);
  const std::vector<float> warm2 = prog.distances();
  ASSERT_TRUE(inc.recompute_cold().converged);
  EXPECT_EQ(warm2, prog.distances());
}

// replay_epoch is the replica half of the tier's log shipping
// (docs/TIER.md): a follower engine fed the leader's validated records —
// never the raw batch — must march through the same warm/cold decisions and
// land on the same fixed points, including across an in-stream compaction.
TEST(DynIncremental, ReplayEpochTracksApplyEpochExactly) {
  DynGraphOptions gopts;
  gopts.base_weight = [](EdgeId e) { return SsspProgram::edge_weight(42, e); };
  gopts.compact_threshold = 0.05;  // force a mid-stream compaction epoch
  DynGraph leader_g(base_graph(), gopts);
  DynGraph follower_g(base_graph(), gopts);
  SsspProgram leader_prog(/*source=*/0, /*weight_seed=*/42);
  SsspProgram follower_prog(/*source=*/0, /*weight_seed=*/42);
  IncrementalEngine<SsspProgram> leader(
      leader_g, leader_prog, EligibilityGate(EligibilityVerdict::kTheorem2),
      make_opts(AtomicityMode::kRelaxed));
  IncrementalEngine<SsspProgram> follower(
      follower_g, follower_prog,
      EligibilityGate(EligibilityVerdict::kTheorem2),
      make_opts(AtomicityMode::kRelaxed));
  ASSERT_TRUE(leader.recompute_cold().converged);
  ASSERT_TRUE(follower.recompute_cold().converged);

  bool saw_warm = false;
  bool saw_cold = false;
  bool saw_compact = false;
  for (std::uint64_t epoch = 1; epoch <= 5; ++epoch) {
    // Epoch 3 sneaks in a delete so BOTH gates route that epoch cold.
    MutationBatch batch =
        random_batch(leader_g, 90 + epoch, /*monotone_only=*/epoch != 3,
                     epoch);
    std::vector<AppliedMutation> shipped;
    // Mirror the coordinator: deferred compaction becomes an explicit
    // compact_after marker on the shipped record.
    const EpochResult rl =
        leader.apply_epoch(batch, /*auto_compact=*/false, &shipped);
    bool compact_after = false;
    if (leader_g.should_compact()) {
      leader.compact_now();
      compact_after = true;
    }
    const EpochResult rf = follower.replay_epoch(epoch, shipped,
                                                 compact_after);
    EXPECT_EQ(rl.warm, rf.warm) << "epoch " << epoch;
    EXPECT_STREQ(rl.gate_reason, rf.gate_reason) << "epoch " << epoch;
    EXPECT_EQ(rf.apply_stats.applied, shipped.size());
    EXPECT_EQ(rf.apply_stats.rejected, 0u);
    ASSERT_TRUE(rf.engine.converged);
    EXPECT_EQ(rf.compacted, compact_after);

    // Identical id spaces edge-for-edge, identical exact distances (SSSP's
    // unique fixed point — Theorem 2).
    ASSERT_EQ(leader_g.num_edges(), follower_g.num_edges());
    for (const Edge& e : leader_g.live_edge_list()) {
      ASSERT_EQ(leader_g.find_edge(e.src, e.dst),
                follower_g.find_edge(e.src, e.dst));
    }
    EXPECT_EQ(leader_prog.distances(), follower_prog.distances())
        << "epoch " << epoch;
    saw_warm = saw_warm || rf.warm;
    saw_cold = saw_cold || !rf.warm;
    saw_compact = saw_compact || compact_after;
  }
  // The stream must actually have exercised all three paths.
  EXPECT_TRUE(saw_warm);
  EXPECT_TRUE(saw_cold);
  EXPECT_TRUE(saw_compact);
  EXPECT_GT(follower.warm_runs(), 0u);
}

// The two policies the acceptance criteria require, plus both ends of the
// atomicity spectrum for good measure.
INSTANTIATE_TEST_SUITE_P(Policies, DynPolicies,
                         ::testing::Values(AtomicityMode::kRelaxed,
                                           AtomicityMode::kSeqCst));

}  // namespace
}  // namespace ndg::dyn
