// Speculative engine tests (docs/SPECULATION.md): the rollback engine's whole
// contract is that its parallel result equals the sequential greedy-by-id
// oracle EXACTLY — at every thread count, on every graph shape — and that its
// round/commit/abort telemetry is timing-independent (a function of
// footprints and id order only). Also covers the per-iteration arena and the
// engine's round-cap behaviour.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "algorithms/greedy_coloring.hpp"
#include "algorithms/matching.hpp"
#include "algorithms/mis.hpp"
#include "algorithms/reference/references.hpp"
#include "engine/speculative.hpp"
#include "graph/generators.hpp"
#include "mem/iter_arena.hpp"

namespace ndg {
namespace {

// The three shapes: a scale-free multigraph (hubs, duplicate edges, self
// loops from rmat), a regular planar-ish grid, and a chain (the worst case
// for id-ordered decisions: a single dependency path).
Graph rmat_graph() { return Graph::build(256, gen::rmat(256, 2000, 7)); }
Graph grid_graph() { return Graph::build(12 * 11, gen::grid2d(12, 11)); }
Graph chain_graph() { return Graph::build(96, gen::chain(96)); }

EngineOptions opts_for(std::size_t threads) {
  EngineOptions opts;
  opts.num_threads = threads;
  opts.max_iterations = 500000;
  return opts;
}

template <typename Program>
EngineResult run_spec(const Graph& g, Program& prog, std::size_t threads) {
  EdgeDataArray<typename Program::EdgeData> edges(g.num_edges());
  prog.init(g, edges);
  return run_speculative(g, prog, edges, opts_for(threads));
}

// ---------------------------------------------------------------------------
// Oracle exactness at 1, 4, and 8 threads (pinned), per algorithm x shape.

void expect_matching_exact(const Graph& g, std::size_t threads) {
  MatchingProgram prog;
  const EngineResult r = run_spec(g, prog, threads);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(prog.match(), ref::greedy_matching(g))
      << "threads=" << threads;
}

void expect_coloring_exact(const Graph& g, std::size_t threads) {
  GreedyColoringProgram prog;
  const EngineResult r = run_spec(g, prog, threads);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(prog.colors(), ref::greedy_coloring(g)) << "threads=" << threads;
}

void expect_mis_exact(const Graph& g, std::size_t threads) {
  MisProgram prog;
  const EngineResult r = run_spec(g, prog, threads);
  EXPECT_TRUE(r.converged);
  const auto ref_in = ref::greedy_mis(g);
  ASSERT_EQ(ref_in.size(), g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(prog.states()[v] == MisProgram::kIn, ref_in[v] != 0)
        << "v=" << v << " threads=" << threads;
  }
}

TEST(SpeculativeOracle, MatchingExactAllThreadCounts) {
  for (const std::size_t nt : {1u, 4u, 8u}) {
    expect_matching_exact(rmat_graph(), nt);
    expect_matching_exact(grid_graph(), nt);
    expect_matching_exact(chain_graph(), nt);
  }
}

TEST(SpeculativeOracle, ColoringExactAllThreadCounts) {
  for (const std::size_t nt : {1u, 4u, 8u}) {
    expect_coloring_exact(rmat_graph(), nt);
    expect_coloring_exact(grid_graph(), nt);
    expect_coloring_exact(chain_graph(), nt);
  }
}

TEST(SpeculativeOracle, MisExactAllThreadCounts) {
  for (const std::size_t nt : {1u, 4u, 8u}) {
    expect_mis_exact(rmat_graph(), nt);
    expect_mis_exact(grid_graph(), nt);
    expect_mis_exact(chain_graph(), nt);
  }
}

// ---------------------------------------------------------------------------
// Telemetry is deterministic: rounds, commits, and aborts are decided by
// footprints and id order alone, so every thread count reports the SAME
// numbers — which is what lets CI gate them (unlike wall time).

TEST(SpeculativeTelemetry, RoundsCommitsAbortsThreadCountInvariant) {
  const Graph g = rmat_graph();
  GreedyColoringProgram base;
  const EngineResult ref_r = run_spec(g, base, 1);
  for (const std::size_t nt : {2u, 4u, 8u}) {
    GreedyColoringProgram prog;
    const EngineResult r = run_spec(g, prog, nt);
    EXPECT_EQ(r.iterations, ref_r.iterations) << "threads=" << nt;
    EXPECT_EQ(r.spec_commits, ref_r.spec_commits) << "threads=" << nt;
    EXPECT_EQ(r.spec_aborts, ref_r.spec_aborts) << "threads=" << nt;
  }
}

TEST(SpeculativeTelemetry, CommitsPlusAbortsIsUpdates) {
  const Graph g = grid_graph();
  MatchingProgram prog;
  const EngineResult r = run_spec(g, prog, 4);
  EXPECT_GT(r.spec_commits, 0u);
  // A grid has plenty of adjacent same-round speculation: conflicts (and so
  // aborts) must actually occur, or the conflict detector is dead code.
  EXPECT_GT(r.spec_aborts, 0u);
  EXPECT_EQ(r.spec_commits + r.spec_aborts, r.updates);
  EXPECT_GT(r.abort_rate(), 0.0);
  EXPECT_LT(r.abort_rate(), 1.0);
}

TEST(SpeculativeTelemetry, AbortRateZeroWhenUntouched) {
  const EngineResult r{};
  EXPECT_EQ(r.abort_rate(), 0.0);
}

// The round cap is honoured: one round cannot finish a chain's id-ordered
// decision cascade, so the run reports non-convergence (and still keeps the
// partial telemetry consistent).
TEST(SpeculativeEngine, RoundCapReportsNonConvergence) {
  const Graph g = chain_graph();
  MisProgram prog;
  EdgeDataArray<MisProgram::EdgeData> edges(g.num_edges());
  prog.init(g, edges);
  EngineOptions opts = opts_for(4);
  opts.max_iterations = 1;
  const EngineResult r = run_speculative(g, prog, edges, opts);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.iterations, 1u);
  EXPECT_EQ(r.spec_commits + r.spec_aborts, r.updates);
}

// Smallest-id progress guarantee: even on the pure dependency chain every
// round commits at least one vertex, so the engine terminates in <= |V|-ish
// rounds rather than livelocking on conflicts.
TEST(SpeculativeEngine, ChainTerminatesWithinLinearRounds) {
  const Graph g = chain_graph();
  GreedyColoringProgram prog;
  const EngineResult r = run_spec(g, prog, 8);
  EXPECT_TRUE(r.converged);
  EXPECT_LE(r.iterations, static_cast<std::size_t>(g.num_vertices()) + 2);
}

// Tiny hand-checkable instance: path 0-1-2. Greedy by id: 0 matches 1,
// 2 stays free; colors 0,1,0; MIS {0,2}.
TEST(SpeculativeEngine, HandCheckedPath3) {
  const Graph g = Graph::build(3, gen::chain(3));
  {
    MatchingProgram prog;
    run_spec(g, prog, 4);
    EXPECT_EQ(prog.match()[0], 1u);
    EXPECT_EQ(prog.match()[1], 0u);
    EXPECT_EQ(prog.match()[2], kInvalidVertex);
  }
  {
    GreedyColoringProgram prog;
    run_spec(g, prog, 4);
    const std::vector<std::uint32_t> want{0, 1, 0};
    EXPECT_EQ(prog.colors(), want);
  }
  {
    MisProgram prog;
    run_spec(g, prog, 4);
    EXPECT_EQ(prog.states()[0], MisProgram::kIn);
    EXPECT_EQ(prog.states()[1], MisProgram::kOut);
    EXPECT_EQ(prog.states()[2], MisProgram::kIn);
  }
}

// ---------------------------------------------------------------------------
// IterArena: the per-round bump allocator behind the plan phase's LocalState
// storage. reset() must retain capacity (no steady-state allocation churn)
// and alloc must honour alignment across chunk boundaries.

TEST(IterArena, ResetRetainsCapacity) {
  mem::IterArena arena(256);
  for (int round = 0; round < 3; ++round) {
    arena.reset();
    for (int i = 0; i < 100; ++i) {
      auto* p = arena.alloc<std::uint64_t>();
      *p = 42;  // must be writable
    }
  }
  const std::size_t reserved = arena.bytes_reserved();
  arena.reset();
  EXPECT_EQ(arena.bytes_in_use(), 0u);
  for (int i = 0; i < 100; ++i) (void)arena.alloc<std::uint64_t>();
  EXPECT_EQ(arena.bytes_reserved(), reserved);
}

TEST(IterArena, AlignmentAndOversizeAllocations) {
  mem::IterArena arena(64);
  struct alignas(32) Wide {
    double d[4];
  };
  for (int i = 0; i < 16; ++i) {
    auto* w = arena.alloc<Wide>();
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(w) % alignof(Wide), 0u);
    w->d[0] = 1.0;
  }
  // A request larger than the chunk size gets its own chunk.
  void* big = arena.alloc_bytes(1024, 16);
  ASSERT_NE(big, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(big) % 16, 0u);
  EXPECT_GE(arena.bytes_in_use(), 1024u);
}

}  // namespace
}  // namespace ndg
