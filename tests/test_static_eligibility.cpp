// Static-eligibility tests: the compile-time verdicts (derived from each
// program's AccessManifest alone), their agreement with the measured dynamic
// analysis for every registry algorithm, the VerifyingAccess enforcement of
// lying manifests, and the streaming gate's static fast path.

#include <gtest/gtest.h>

#include "algorithms/bfs.hpp"
#include "algorithms/kcore.hpp"
#include "algorithms/label_propagation.hpp"
#include "algorithms/mis.hpp"
#include "algorithms/pagerank.hpp"
#include "algorithms/push_pagerank.hpp"
#include "algorithms/push_pagerank_atomic.hpp"
#include "algorithms/registry.hpp"
#include "algorithms/spmv.hpp"
#include "algorithms/sssp.hpp"
#include "algorithms/wcc.hpp"
#include "analysis/static_eligibility.hpp"
#include "analysis/validate.hpp"
#include "analysis/verifying_access.hpp"
#include "dyn/eligibility_gate.hpp"
#include "graph/generators.hpp"

namespace ndg {
namespace {

// --- The paper's Table: every verdict is a compile-time constant -----------

static_assert(StaticEligibility<PageRankProgram>::kVerdict ==
              EligibilityVerdict::kTheorem1);
static_assert(StaticEligibility<SpmvProgram>::kVerdict ==
              EligibilityVerdict::kTheorem1);
static_assert(StaticEligibility<SsspProgram>::kVerdict ==
              EligibilityVerdict::kTheorem1);
static_assert(StaticEligibility<BfsProgram>::kVerdict ==
              EligibilityVerdict::kTheorem1);
static_assert(StaticEligibility<WccProgram>::kVerdict ==
              EligibilityVerdict::kTheorem2);
static_assert(StaticEligibility<KCoreProgram>::kVerdict ==
              EligibilityVerdict::kTheorem2);
static_assert(StaticEligibility<MisProgram>::kVerdict ==
              EligibilityVerdict::kTheorem2);
static_assert(StaticEligibility<LabelPropagationProgram>::kVerdict ==
              EligibilityVerdict::kTheorem1);
static_assert(StaticEligibility<PushPageRankProgram>::kVerdict ==
              EligibilityVerdict::kNotProven);
static_assert(StaticEligibility<AtomicPushPageRankProgram>::kVerdict ==
              EligibilityVerdict::kNotProven);

// Conflict classes follow from the access shape alone.
static_assert(!StaticEligibility<PageRankProgram>::kWwPossible);
static_assert(StaticEligibility<PageRankProgram>::kRwPossible);
static_assert(StaticEligibility<WccProgram>::kWwPossible);
static_assert(StaticEligibility<PushPageRankProgram>::kWwPossible);

// Label propagation's Theorem 1 claim is input-conditional (bipartite
// oscillation); everything else claims unconditionally.
static_assert(StaticEligibility<LabelPropagationProgram>::kConditional);
static_assert(!StaticEligibility<PageRankProgram>::kConditional);

// Warm-start licensing prefers Theorem 2 whenever its premises hold: SSSP is
// Theorem 1 for NE-safety but must route through the monotone-envelope check
// for streaming mutations.
static_assert(StaticEligibility<SsspProgram>::kWarmStartVerdict ==
              EligibilityVerdict::kTheorem2);
static_assert(StaticEligibility<PageRankProgram>::kWarmStartVerdict ==
              EligibilityVerdict::kTheorem1);

// Policy compatibility: an RMW manifest rejects method (2) — aligned access
// has no atomic read-modify-write — and accepts the genuine-RMW policies.
static_assert(!StaticEligibility<
              AtomicPushPageRankProgram>::kCompatibleWith<AlignedAccess>);
static_assert(StaticEligibility<
              AtomicPushPageRankProgram>::kCompatibleWith<RelaxedAtomicAccess>);
static_assert(StaticEligibility<
              AtomicPushPageRankProgram>::kCompatibleWith<LockedAccess>);
static_assert(
    StaticEligibility<WccProgram>::kCompatibleWith<AlignedAccess>);

// --- Static vs dynamic agreement over the whole registry -------------------

TEST(StaticEligibility, AgreesWithDynamicForEveryRegistryAlgorithm) {
  const Graph g = Graph::build(64, gen::rmat(64, 300, 1));
  for (const auto& entry : algorithm_registry(/*source=*/0, 50000)) {
    const EligibilityReport r = entry.analyze(g);
    // Like-for-like: the manifest's conflict classes under the OBSERVED
    // convergence premises must yield exactly the dynamic verdict.
    const EligibilityVerdict conditioned = static_verdict_given(
        entry.manifest, r.bsp_converges, r.async_converges);
    EXPECT_EQ(conditioned, r.verdict) << entry.name;
    // On this graph every unconditional claim also holds as-is.
    if (!entry.static_conditional) {
      EXPECT_EQ(entry.static_verdict, r.verdict) << entry.name;
    }
  }
}

TEST(StaticEligibility, EveryRegistryManifestSurvivesEnforcement) {
  const Graph g = Graph::build(64, gen::rmat(64, 300, 1));
  for (const auto& entry : algorithm_registry(/*source=*/0, 50000)) {
    const ManifestCheck check = entry.validate(g);
    EXPECT_GT(check.accesses, 0u) << entry.name;
    EXPECT_TRUE(check.ok()) << entry.name << "\n" << check.describe();
  }
}

TEST(StaticEligibility, ConditionedAgreementOnBipartitePair) {
  // The push-mode-adjacent pathology for the STATIC pass: label propagation
  // claims BSP convergence, but on the bipartite pair the claim fails and
  // the dynamic verdict is kNotProven. Conditioning the manifest on the
  // observed premises restores agreement.
  const Graph g = Graph::build(2, {{0, 1}, {1, 0}});
  LabelPropagationProgram prog;
  const EligibilityReport r = analyze_eligibility(g, prog, 200);
  EXPECT_FALSE(r.bsp_converges);
  EXPECT_EQ(r.verdict, EligibilityVerdict::kNotProven);
  EXPECT_EQ(static_verdict_given(LabelPropagationProgram::kManifest,
                                 r.bsp_converges, r.async_converges),
            r.verdict);
  // The unconditioned claim disagrees here — which is exactly why the
  // evaluator marks it conditional instead of trusting it.
  EXPECT_NE(StaticEligibility<LabelPropagationProgram>::kVerdict, r.verdict);
}

// --- VerifyingAccess: lying manifests are caught at runtime ----------------

/// Claims the PageRank shape (read in-edges, write out-edges) but actually
/// writes its IN-edges too — the static verdict derived from this manifest
/// (Theorem 1, no WW possible) would be unsound, and enforcement must say so.
class LyingWriterProgram {
 public:
  using EdgeData = float;
  static constexpr bool kMonotonic = false;
  static constexpr AccessManifest kManifest{
      .in_edges = SlotAccess::kRead,
      .out_edges = SlotAccess::kWrite,
      .bsp_convergent = true,
      .async_convergent = true,
  };

  [[nodiscard]] const char* name() const { return "lying-writer"; }

  void init(const Graph&, EdgeDataArray<float>& edges) { edges.fill(0.0f); }

  [[nodiscard]] std::vector<VertexId> initial_frontier(const Graph& g) const {
    std::vector<VertexId> all(g.num_vertices());
    for (VertexId v = 0; v < g.num_vertices(); ++v) all[v] = v;
    return all;
  }

  template <typename Ctx>
  void update(VertexId, Ctx& ctx) {
    for (const InEdge& ie : ctx.in_edges()) {
      ctx.write(ie.id, ie.src, 1.0f);  // undeclared: in_edges is read-only
    }
  }

  static double project(float v) { return v; }
};

TEST(VerifyingAccess, FlagsWriteOutsideDeclaredShape) {
  const Graph g = Graph::build(8, gen::cycle(8));
  LyingWriterProgram prog;
  const ManifestCheck check = validate_manifest(g, prog, /*max_iterations=*/3);
  EXPECT_FALSE(check.ok());
  ASSERT_FALSE(check.samples.empty());
  EXPECT_EQ(check.samples.front().kind,
            ManifestViolation::Kind::kUndeclaredWrite);
  EXPECT_NE(check.describe().find("undeclared-write"), std::string::npos);
}

/// Uses ctx.accumulate — a compound RMW — without declaring `.rmw = true`:
/// the AlignedAccess compatibility check would wrongly pass this manifest.
class UndeclaredRmwProgram {
 public:
  using EdgeData = float;
  static constexpr bool kMonotonic = false;
  static constexpr AccessManifest kManifest{
      .in_edges = SlotAccess::kRead,
      .out_edges = SlotAccess::kWrite,  // true about the SIDES, silent on RMW
      .bsp_convergent = true,
  };

  [[nodiscard]] const char* name() const { return "undeclared-rmw"; }

  void init(const Graph&, EdgeDataArray<float>& edges) { edges.fill(0.0f); }

  [[nodiscard]] std::vector<VertexId> initial_frontier(const Graph& g) const {
    std::vector<VertexId> all(g.num_vertices());
    for (VertexId v = 0; v < g.num_vertices(); ++v) all[v] = v;
    return all;
  }

  template <typename Ctx>
  void update(VertexId, Ctx& ctx) {
    const auto out = ctx.out_neighbors();
    for (std::size_t k = 0; k < out.size(); ++k) {
      ctx.accumulate(ctx.out_edge_id(k), out[k],
                     [](float x) { return x + 1.0f; });
    }
  }

  static double project(float v) { return v; }
};

TEST(VerifyingAccess, FlagsUndeclaredRmw) {
  const Graph g = Graph::build(8, gen::cycle(8));
  UndeclaredRmwProgram prog;
  const ManifestCheck check = validate_manifest(g, prog, /*max_iterations=*/2);
  EXPECT_FALSE(check.ok());
  ASSERT_FALSE(check.samples.empty());
  EXPECT_EQ(check.samples.front().kind,
            ManifestViolation::Kind::kUndeclaredRmw);
}

TEST(VerifyingAccess, FlagsRmwUnderNonAtomicPolicy) {
  // The runtime twin of assert_manifest_policy: the manifest declares its
  // RMW honestly, but the wrapped policy (method (2), aligned plain access)
  // cannot make it atomic. Reachable when the policy is picked at runtime.
  const Graph g = Graph::build(2, gen::chain(2));
  constexpr AccessManifest m{.in_edges = SlotAccess::kReadWrite,
                             .out_edges = SlotAccess::kReadWrite,
                             .rmw = true};
  ManifestEnforcer enforcer(g, m);
  VerifyingAccess<AlignedAccess> policy{{}, &enforcer};
  EdgeDataArray<float> edges(g.num_edges());
  edges.fill(0.0f);
  policy.begin_update(0);
  (void)policy.exchange(edges, /*e=*/0, 1.0f);
  const ManifestCheck check = enforcer.result();
  EXPECT_FALSE(check.ok());
  ASSERT_FALSE(check.samples.empty());
  EXPECT_EQ(check.samples.front().kind,
            ManifestViolation::Kind::kRmwNonAtomicPolicy);
}

TEST(VerifyingAccess, FlagsForeignEdge) {
  // chain(3): edge 0 is 0->1, edge 1 is 1->2. Touching edge 1 from an
  // update of vertex 0 violates the Section II update scope.
  const Graph g = Graph::build(3, gen::chain(3));
  constexpr AccessManifest m{.in_edges = SlotAccess::kReadWrite,
                             .out_edges = SlotAccess::kReadWrite};
  ManifestEnforcer enforcer(g, m);
  VerifyingAccess<RelaxedAtomicAccess> policy{{}, &enforcer};
  EdgeDataArray<float> edges(g.num_edges());
  edges.fill(0.0f);
  policy.begin_update(0);
  (void)policy.read(edges, /*e=*/1);
  const ManifestCheck check = enforcer.result();
  EXPECT_EQ(check.violations, 1u);
  ASSERT_FALSE(check.samples.empty());
  EXPECT_EQ(check.samples.front().kind,
            ManifestViolation::Kind::kForeignEdge);
}

// --- Streaming gate: static verdict as a fast path -------------------------

TEST(EligibilityGateStatic, StaticModeSkipsInstrumentedRuns) {
  const Graph g = Graph::build(16, gen::chain(16));
  SsspProgram prog(/*source=*/0, /*weight_seed=*/5);
  const auto gate =
      dyn::EligibilityGate::make(dyn::GateMode::kStatic, g, prog);
  EXPECT_TRUE(gate.from_static());
  EXPECT_FALSE(gate.analyzed());
  // Warm-start priority: Theorem 2 so deletes route through dyn_warm_ok.
  EXPECT_EQ(gate.verdict(), EligibilityVerdict::kTheorem2);
}

TEST(EligibilityGateStatic, ConditionalManifestFallsBackToAnalysis) {
  // Label propagation's convergence claim is input-dependent, so the static
  // fast path refuses it and the gate runs the measured analysis instead.
  const Graph g = Graph::build(16, gen::cycle(16));
  LabelPropagationProgram prog;
  const auto gate =
      dyn::EligibilityGate::make(dyn::GateMode::kStatic, g, prog, 500);
  EXPECT_FALSE(gate.from_static());
  EXPECT_TRUE(gate.analyzed());
}

TEST(EligibilityGateStatic, GateModeStringsIncludeStatic) {
  EXPECT_STREQ(dyn::to_string(dyn::GateMode::kStatic), "static");
}

TEST(StaticEligibility, VerdictShortTokens) {
  EXPECT_STREQ(verdict_short(EligibilityVerdict::kTheorem1), "theorem-1");
  EXPECT_STREQ(verdict_short(EligibilityVerdict::kTheorem2), "theorem-2");
  EXPECT_STREQ(verdict_short(EligibilityVerdict::kNotProven), "not-proven");
}

}  // namespace
}  // namespace ndg
