// Failure-injection tests: transient amnesia faults (writes replaced by the
// edge's initial value — lattice top) followed by one re-activation pass.
// Algorithms with the WCC repair discipline (rewrite your edge whenever it
// disagrees with your state) are SELF-STABILIZING: they recover the exact
// fixed point. This extends Theorem 2's recovery argument beyond the races
// the paper models. SSSP/BFS scatter only on improvement and lack the repair
// discipline, so they are deliberately absent here (documented limitation).

#include <gtest/gtest.h>

#include "algorithms/kcore.hpp"
#include "algorithms/mis.hpp"
#include "algorithms/pagerank.hpp"
#include "algorithms/reference/references.hpp"
#include "algorithms/wcc.hpp"
#include "core/fault_injection.hpp"
#include "engine/deterministic.hpp"
#include "engine/nondeterministic.hpp"
#include "graph/generators.hpp"

namespace ndg {
namespace {

Graph fault_graph() {
  EdgeList edges = gen::rmat(200, 1200, 909);
  auto tail = gen::chain(16);
  edges.insert(edges.end(), tail.begin(), tail.end());
  return Graph::build(200, std::move(edges));
}

TEST(FaultPlan, BudgetAndRateAreRespected) {
  EdgeDataArray<std::uint32_t> initial(4, 7);
  FaultPlan plan(initial, /*budget=*/10, /*rate_percent=*/100, /*seed=*/1);
  std::uint64_t fired = 0;
  for (int i = 0; i < 1000; ++i) fired += plan.should_fault(0) ? 1 : 0;
  EXPECT_EQ(fired, 10u);  // rate 100% but budget caps at 10
  EXPECT_EQ(plan.injected(), 10u);
  EXPECT_EQ(plan.initial_slot(2), detail::to_slot<std::uint32_t>(7));
}

TEST(FaultPlan, ZeroRateNeverFires) {
  EdgeDataArray<std::uint32_t> initial(1, 0);
  FaultPlan plan(initial, 1000, /*rate_percent=*/0, 1);
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(plan.should_fault(0));
}

TEST(AmnesiaAccess, FaultedWriteRestoresInitialValue) {
  EdgeDataArray<std::uint32_t> edges(2, 100);
  FaultPlan plan(edges, /*budget=*/1, /*rate_percent=*/100, /*seed=*/3);
  AmnesiaAccess<RelaxedAtomicAccess> access{RelaxedAtomicAccess{}, &plan};
  access.write(edges, 0, 5u);   // faulted: stays at the initial 100
  access.write(edges, 1, 6u);   // budget exhausted: lands
  EXPECT_EQ(edges.get(0), 100u);
  EXPECT_EQ(edges.get(1), 6u);
}

/// Runs `prog` under heavy transient faults, then one clean re-activation
/// pass, and returns whether injection actually happened.
template <typename Program>
std::uint64_t run_with_faults_then_recover(
    const Graph& g, Program& prog,
    EdgeDataArray<typename Program::EdgeData>& edges) {
  prog.init(g, edges);
  FaultPlan plan(edges, /*budget=*/500, /*rate_percent=*/25, /*seed=*/5);

  EngineOptions opts;
  opts.num_threads = 4;
  const EngineResult faulty = run_nondeterministic_with_policy(
      g, prog, edges,
      AmnesiaAccess<RelaxedAtomicAccess>{RelaxedAtomicAccess{}, &plan}, opts);
  EXPECT_TRUE(faulty.converged);  // faults never livelock the engine

  // Recovery: one full clean pass (the program's initial frontier is "all"
  // for these algorithms; state and edges are NOT re-initialized).
  const EngineResult clean = run_deterministic(g, prog, edges);
  EXPECT_TRUE(clean.converged);
  return plan.injected();
}

TEST(SelfStabilization, WccRecoversExactly) {
  const Graph g = fault_graph();
  WccProgram prog;
  EdgeDataArray<WccProgram::EdgeData> edges(g.num_edges());
  const std::uint64_t injected = run_with_faults_then_recover(g, prog, edges);
  EXPECT_GT(injected, 0u);
  EXPECT_EQ(prog.labels(), ref::wcc(g));
}

TEST(SelfStabilization, KCoreRecoversExactly) {
  const Graph g = fault_graph();
  KCoreProgram prog;
  EdgeDataArray<DualEdge> edges(g.num_edges());
  const std::uint64_t injected = run_with_faults_then_recover(g, prog, edges);
  EXPECT_GT(injected, 0u);
  EXPECT_EQ(prog.core_numbers(), ref::kcore(g));
}

TEST(SelfStabilization, MisRecoversExactly) {
  const Graph g = fault_graph();
  MisProgram prog;
  EdgeDataArray<DualEdge> edges(g.num_edges());
  const std::uint64_t injected = run_with_faults_then_recover(g, prog, edges);
  EXPECT_GT(injected, 0u);
  const auto expected = ref::greedy_mis(g);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(prog.states()[v] == MisProgram::kIn, expected[v]) << "v=" << v;
  }
}

TEST(SelfStabilization, PageRankNeedsStateRepublication) {
  // PageRank lacks the repair discipline: a locally-converged vertex never
  // re-writes its out-edges, so amnesia damage on an edge persists through a
  // clean pass and skews the gather forever. The general repair recipe is to
  // REPUBLISH vertex state onto the edges before re-driving to quiescence —
  // then the fixed point is recovered.
  const Graph g = fault_graph();
  PageRankProgram prog(1e-4f);
  EdgeDataArray<float> edges(g.num_edges());
  prog.init(g, edges);
  FaultPlan plan(edges, /*budget=*/500, /*rate_percent=*/25, /*seed=*/5);
  EngineOptions opts;
  opts.num_threads = 4;
  ASSERT_TRUE(run_nondeterministic_with_policy(
                  g, prog, edges,
                  AmnesiaAccess<RelaxedAtomicAccess>{RelaxedAtomicAccess{},
                                                     &plan},
                  opts)
                  .converged);
  ASSERT_GT(plan.injected(), 0u);

  // Repair: republish every vertex's current rank onto its out-edges.
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const EdgeId deg = g.out_degree(v);
    if (deg == 0) continue;
    const float w = prog.ranks()[v] / static_cast<float>(deg);
    const EdgeId base = g.out_edges_begin(v);
    for (EdgeId k = 0; k < deg; ++k) edges.set(base + k, w);
  }
  ASSERT_TRUE(run_deterministic(g, prog, edges).converged);

  const auto expected = ref::pagerank(g, 0.85, 1e-10);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_NEAR(prog.ranks()[v], expected[v], 0.05 * expected[v] + 0.01);
  }
}

TEST(SelfStabilization, QuiescenceImpliesCorrectnessUnderContinuousFaults) {
  // The repair discipline's strongest consequence: a faulted write still
  // schedules its victim, and the victim repairs — so the system CANNOT
  // quiesce in a damaged state. Under heavy continuous injection the run
  // either hits the iteration cap (still fighting) or, if it quiesced, the
  // answer is already exact with no recovery pass at all.
  const Graph g = fault_graph();
  WccProgram prog;
  EdgeDataArray<WccProgram::EdgeData> edges(g.num_edges());
  prog.init(g, edges);
  FaultPlan plan(edges, /*budget=*/100000, /*rate_percent=*/60, /*seed=*/7);
  EngineOptions opts;
  opts.num_threads = 2;
  opts.max_iterations = 50;
  const EngineResult r = run_nondeterministic_with_policy(
      g, prog, edges,
      AmnesiaAccess<RelaxedAtomicAccess>{RelaxedAtomicAccess{}, &plan}, opts);
  EXPECT_GT(plan.injected(), 0u);
  if (r.converged) {
    EXPECT_EQ(prog.labels(), ref::wcc(g));
  }
}

}  // namespace
}  // namespace ndg
