// Update-context contract tests: scheduling semantics of write vs
// write_silent, observer callbacks, BSP postponed visibility and write-log
// ordering, and edge-id plumbing — checked with purpose-built probe programs.

#include <gtest/gtest.h>

#include <vector>

#include "engine/bsp.hpp"
#include "engine/deterministic.hpp"
#include "engine/frontier.hpp"
#include "engine/observer.hpp"
#include "engine/update_context.hpp"
#include "graph/generators.hpp"

namespace ndg {
namespace {

/// Records every observer event for later inspection.
class RecordingObserver final : public AccessObserver {
 public:
  struct Event {
    bool is_write;
    EdgeId edge;
    VertexId vertex;
    std::uint32_t iteration;
    std::uint64_t value;  // writes only
  };

  void on_read(EdgeId e, VertexId reader, std::uint32_t iter) override {
    events.push_back({false, e, reader, iter, 0});
  }
  void on_write(EdgeId e, VertexId writer, std::uint32_t iter,
                std::uint64_t slot) override {
    events.push_back({true, e, writer, iter, slot});
  }

  std::vector<Event> events;
};

TEST(UpdateContext, WriteSchedulesOtherEndpointWriteSilentDoesNot) {
  const Graph g = Graph::build(3, {{0, 1}, {0, 2}});
  EdgeDataArray<std::uint32_t> edges(g.num_edges(), 0);
  Frontier frontier(3);
  UpdateContext<std::uint32_t, AlignedAccess> ctx(g, edges, AlignedAccess{},
                                                  frontier);
  ctx.begin(0, 0);
  ctx.write(ctx.out_edge_id(0), 1, 7);        // schedules vertex 1
  ctx.write_silent(ctx.out_edge_id(1), 9);    // schedules no one
  frontier.advance();
  EXPECT_EQ(frontier.current(), (std::vector<VertexId>{1}));
  EXPECT_EQ(edges.get(0), 7u);
  EXPECT_EQ(edges.get(1), 9u);
}

TEST(UpdateContext, AccumulateSchedulesAndExchangeDoesNot) {
  const Graph g = Graph::build(3, {{0, 1}, {0, 2}});
  EdgeDataArray<std::uint32_t> edges(g.num_edges(), 10);
  Frontier frontier(3);
  UpdateContext<std::uint32_t, RelaxedAtomicAccess> ctx(
      g, edges, RelaxedAtomicAccess{}, frontier);
  ctx.begin(0, 0);
  ctx.accumulate(ctx.out_edge_id(0), 1, [](std::uint32_t x) { return x + 5; });
  EXPECT_EQ(ctx.exchange(ctx.out_edge_id(1), 99u), 10u);
  frontier.advance();
  EXPECT_EQ(frontier.current(), (std::vector<VertexId>{1}));
  EXPECT_EQ(edges.get(0), 15u);
  EXPECT_EQ(edges.get(1), 99u);
}

TEST(UpdateContext, ObserverSeesReadsAndWritesWithValues) {
  const Graph g = Graph::build(2, {{0, 1}});
  EdgeDataArray<std::uint32_t> edges(g.num_edges(), 3);
  Frontier frontier(2);
  RecordingObserver obs;
  UpdateContext<std::uint32_t, AlignedAccess> ctx(g, edges, AlignedAccess{},
                                                  frontier, &obs);
  ctx.begin(0, 5);
  (void)ctx.read(0);
  ctx.write(0, 1, 42);
  ASSERT_EQ(obs.events.size(), 2u);
  EXPECT_FALSE(obs.events[0].is_write);
  EXPECT_EQ(obs.events[0].vertex, 0u);
  EXPECT_EQ(obs.events[0].iteration, 5u);
  EXPECT_TRUE(obs.events[1].is_write);
  EXPECT_EQ(detail::from_slot<std::uint32_t>(obs.events[1].value), 42u);
}

TEST(UpdateContext, TopologyViewsMatchGraph) {
  const Graph g = Graph::build(4, {{0, 1}, {0, 2}, {3, 0}});
  EdgeDataArray<std::uint32_t> edges(g.num_edges(), 0);
  Frontier frontier(4);
  UpdateContext<std::uint32_t, AlignedAccess> ctx(g, edges, AlignedAccess{},
                                                  frontier);
  ctx.begin(0, 0);
  EXPECT_EQ(ctx.vertex(), 0u);
  ASSERT_EQ(ctx.out_neighbors().size(), 2u);
  EXPECT_EQ(ctx.out_neighbors()[0], 1u);
  EXPECT_EQ(ctx.out_edge_id(0), g.out_edges_begin(0));
  ASSERT_EQ(ctx.in_edges().size(), 1u);
  EXPECT_EQ(ctx.in_edges()[0].src, 3u);
  EXPECT_EQ(&ctx.graph(), &g);
}

// --- BSP context ------------------------------------------------------------

TEST(BspContext, ReadsAreCommittedValuesUntilCommit) {
  const Graph g = Graph::build(2, {{0, 1}});
  EdgeDataArray<std::uint32_t> edges(g.num_edges(), 1);
  Frontier frontier(2);
  detail::BspContext<std::uint32_t> ctx(g, edges, frontier);
  ctx.begin(0, 0);
  ctx.write(0, 1, 50);
  EXPECT_EQ(ctx.read(0), 1u);  // own write not yet visible (BSP semantics)
  EXPECT_EQ(edges.get(0), 1u);
  ctx.commit();
  EXPECT_EQ(ctx.read(0), 50u);
  EXPECT_EQ(edges.get(0), 50u);
}

TEST(BspContext, LastBufferedWriteWins) {
  const Graph g = Graph::build(2, {{0, 1}});
  EdgeDataArray<std::uint32_t> edges(g.num_edges(), 0);
  Frontier frontier(2);
  detail::BspContext<std::uint32_t> ctx(g, edges, frontier);
  ctx.begin(0, 0);
  ctx.write(0, 1, 10);
  ctx.begin(1, 0);
  ctx.write(0, 0, 20);  // later update in program order
  ctx.commit();
  EXPECT_EQ(edges.get(0), 20u);
}

TEST(BspContext, ExchangeReturnsCommittedValue) {
  const Graph g = Graph::build(2, {{0, 1}});
  EdgeDataArray<std::uint32_t> edges(g.num_edges(), 5);
  Frontier frontier(2);
  detail::BspContext<std::uint32_t> ctx(g, edges, frontier);
  ctx.begin(0, 0);
  EXPECT_EQ(ctx.exchange(0, 0u), 5u);
  EXPECT_EQ(ctx.exchange(0, 1u), 5u);  // still committed; BSP drains race
  ctx.commit();
  EXPECT_EQ(edges.get(0), 1u);
}

// --- observer composition -----------------------------------------------------

TEST(CompositeObserver, FansOutToBoth) {
  RecordingObserver a;
  RecordingObserver b;
  CompositeObserver both(&a, &b);
  both.on_read(1, 2, 3);
  both.on_write(4, 5, 6, 7);
  EXPECT_EQ(a.events.size(), 2u);
  EXPECT_EQ(b.events.size(), 2u);
  EXPECT_TRUE(b.events[1].is_write);
  EXPECT_EQ(b.events[1].value, 7u);
}

}  // namespace
}  // namespace ndg
