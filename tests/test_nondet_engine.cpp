// Nondeterministic (threaded) engine tests: the paper's central empirical
// claim, as properties. For every atomicity mode and thread count:
//   * WCC — monotonic, write-write conflicts — must converge to EXACTLY the
//     deterministic result (Theorem 2: "their nondeterministic executions
//     will produce the same final results as their deterministic executions");
//   * SSSP/BFS — read-write conflicts — must converge to the exact shortest
//     distances (absolute convergence conditions);
//   * PageRank — fixed-point iteration — must converge with values close to
//     the deterministic fixed point (approximate convergence; Theorem 1).

#include <gtest/gtest.h>

#include <tuple>

#include "algorithms/bfs.hpp"
#include "algorithms/pagerank.hpp"
#include "algorithms/reference/references.hpp"
#include "algorithms/sssp.hpp"
#include "algorithms/wcc.hpp"
#include "engine/deterministic.hpp"
#include "engine/nondeterministic.hpp"
#include "graph/generators.hpp"

namespace ndg {
namespace {

Graph test_graph() {
  // Skewed digraph with several weakly connected components.
  EdgeList edges = gen::rmat(512, 3000, 1234);
  auto extra = gen::chain(32);  // attach a deep path on low ids
  edges.insert(edges.end(), extra.begin(), extra.end());
  return Graph::build(512, std::move(edges));
}

class NondetParam
    : public ::testing::TestWithParam<std::tuple<AtomicityMode, std::size_t>> {
 protected:
  [[nodiscard]] EngineOptions options() const {
    EngineOptions opts;
    opts.mode = std::get<0>(GetParam());
    opts.num_threads = std::get<1>(GetParam());
    return opts;
  }
};

TEST_P(NondetParam, WccMatchesUnionFindExactly) {
  const Graph g = test_graph();
  const auto expected = ref::wcc(g);

  WccProgram prog;
  EdgeDataArray<WccProgram::EdgeData> edges(g.num_edges());
  prog.init(g, edges);
  const EngineResult r = run_nondeterministic(g, prog, edges, options());
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(prog.labels(), expected);
}

TEST_P(NondetParam, SsspMatchesDijkstraExactly) {
  const Graph g = test_graph();
  SsspProgram prog(/*source=*/0, /*weight_seed=*/7);

  std::vector<float> weights(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    weights[e] = SsspProgram::edge_weight(7, e);
  }
  const auto expected = ref::sssp(g, 0, weights);

  EdgeDataArray<SsspProgram::EdgeData> edges(g.num_edges());
  prog.init(g, edges);
  const EngineResult r = run_nondeterministic(g, prog, edges, options());
  EXPECT_TRUE(r.converged);
  ASSERT_EQ(prog.distances().size(), expected.size());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_FLOAT_EQ(prog.distances()[v], expected[v]) << "v=" << v;
  }
}

TEST_P(NondetParam, BfsMatchesReferenceExactly) {
  const Graph g = test_graph();
  BfsProgram prog(/*source=*/0);
  const auto expected = ref::bfs(g, 0);

  EdgeDataArray<BfsProgram::EdgeData> edges(g.num_edges());
  prog.init(g, edges);
  const EngineResult r = run_nondeterministic(g, prog, edges, options());
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(prog.levels(), expected);
}

TEST_P(NondetParam, PageRankConvergesNearFixedPoint) {
  const Graph g = test_graph();
  const auto expected = ref::pagerank(g, 0.85, 1e-10);

  PageRankProgram prog(/*epsilon=*/1e-4f);
  EdgeDataArray<PageRankProgram::EdgeData> edges(g.num_edges());
  prog.init(g, edges);
  const EngineResult r = run_nondeterministic(g, prog, edges, options());
  EXPECT_TRUE(r.converged);

  // Local convergence with threshold ε leaves each vertex within a small
  // multiple of ε·(in-degree mass); use a generous but meaningful bound.
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_NEAR(prog.ranks()[v], expected[v], 0.05 * expected[v] + 0.01)
        << "v=" << v;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllModesAndThreads, NondetParam,
    ::testing::Combine(::testing::Values(AtomicityMode::kLocked,
                                         AtomicityMode::kAligned,
                                         AtomicityMode::kRelaxed,
                                         AtomicityMode::kSeqCst),
                       ::testing::Values(std::size_t{1}, std::size_t{2},
                                         std::size_t{4}, std::size_t{8})),
    [](const auto& info) {
      return std::string(to_string(std::get<0>(info.param))) + "_t" +
             std::to_string(std::get<1>(info.param));
    });

TEST(NondetEngine, SingleThreadMatchesDeterministicBitwise) {
  // With one thread the NE engine degenerates to the DE schedule.
  const Graph g = test_graph();

  WccProgram de;
  EdgeDataArray<WccProgram::EdgeData> de_edges(g.num_edges());
  de.init(g, de_edges);
  const EngineResult rd = run_deterministic(g, de, de_edges);

  WccProgram ne;
  EdgeDataArray<WccProgram::EdgeData> ne_edges(g.num_edges());
  ne.init(g, ne_edges);
  EngineOptions opts;
  opts.num_threads = 1;
  opts.mode = AtomicityMode::kAligned;
  const EngineResult rn = run_nondeterministic(g, ne, ne_edges, opts);

  EXPECT_EQ(rd.iterations, rn.iterations);
  EXPECT_EQ(rd.updates, rn.updates);
  EXPECT_EQ(de.labels(), ne.labels());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_EQ(de_edges.get(e), ne_edges.get(e));
  }
}

TEST(NondetEngine, EmptyInitialFrontierConvergesImmediately) {
  const Graph g = Graph::build(4, gen::chain(4));
  BfsProgram prog(/*source=*/3);  // sink: no out-neighbors
  EdgeDataArray<BfsProgram::EdgeData> edges(g.num_edges());
  prog.init(g, edges);
  EngineOptions opts;
  opts.num_threads = 4;  // more threads than frontier entries
  const EngineResult r = run_nondeterministic(g, prog, edges, opts);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(prog.levels()[3], 0u);
  EXPECT_EQ(prog.levels()[0], BfsProgram::kUnreached);
}

TEST(NondetEngine, MoreThreadsThanVertices) {
  const Graph g = Graph::build(3, gen::cycle(3));
  WccProgram prog;
  EdgeDataArray<WccProgram::EdgeData> edges(g.num_edges());
  prog.init(g, edges);
  EngineOptions opts;
  opts.num_threads = 16;
  const EngineResult r = run_nondeterministic(g, prog, edges, opts);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(prog.labels(), (std::vector<std::uint32_t>{0, 0, 0}));
}

}  // namespace
}  // namespace ndg
