// AccessObserver plumbing tests: CompositeObserver must fan every event out
// to both children in construction order with identical arguments, and the
// deterministic engine's nullptr-observer fast path must not change results
// (the branch in UpdateContext is the only difference).

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "algorithms/wcc.hpp"
#include "engine/deterministic.hpp"
#include "engine/observer.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"

namespace ndg {
namespace {

struct Event {
  char kind;  // 'r' or 'w'
  EdgeId e;
  VertexId vertex;
  std::uint32_t iter;
  std::uint64_t slot;  // 0 for reads

  bool operator==(const Event&) const = default;
};

/// Appends every event to a shared tape, tagged with which observer saw it —
/// the tape interleaving proves per-event ordering, not just per-stream.
class RecordingObserver final : public AccessObserver {
 public:
  RecordingObserver(std::vector<std::pair<int, Event>>& tape, int tag)
      : tape_(&tape), tag_(tag) {}

  void on_read(EdgeId e, VertexId reader, std::uint32_t iter) override {
    tape_->push_back({tag_, Event{'r', e, reader, iter, 0}});
  }
  void on_write(EdgeId e, VertexId writer, std::uint32_t iter,
                std::uint64_t slot) override {
    tape_->push_back({tag_, Event{'w', e, writer, iter, slot}});
  }

 private:
  std::vector<std::pair<int, Event>>* tape_;
  int tag_;
};

TEST(CompositeObserver, FansOutEveryEventToBothChildrenInOrder) {
  std::vector<std::pair<int, Event>> tape;
  RecordingObserver first(tape, 1);
  RecordingObserver second(tape, 2);
  CompositeObserver fan(&first, &second);

  fan.on_read(3, 7, 0);
  fan.on_write(3, 8, 0, 0xdeadbeefull);
  fan.on_read(4, 7, 1);

  ASSERT_EQ(tape.size(), 6u);
  // Strict alternation: child A sees each event before child B sees it, and
  // both see identical arguments.
  for (std::size_t i = 0; i < tape.size(); i += 2) {
    EXPECT_EQ(tape[i].first, 1) << "event " << i;
    EXPECT_EQ(tape[i + 1].first, 2) << "event " << i;
    EXPECT_EQ(tape[i].second, tape[i + 1].second) << "event " << i;
  }
  EXPECT_EQ(tape[0].second.kind, 'r');
  EXPECT_EQ(tape[2].second.kind, 'w');
  EXPECT_EQ(tape[2].second.slot, 0xdeadbeefull);
}

TEST(CompositeObserver, NestsForMoreThanTwoChildren) {
  std::vector<std::pair<int, Event>> tape;
  RecordingObserver a(tape, 1);
  RecordingObserver b(tape, 2);
  RecordingObserver c(tape, 3);
  CompositeObserver ab(&a, &b);
  CompositeObserver abc(&ab, &c);

  abc.on_write(9, 1, 2, 42);
  ASSERT_EQ(tape.size(), 3u);
  EXPECT_EQ(tape[0].first, 1);
  EXPECT_EQ(tape[1].first, 2);
  EXPECT_EQ(tape[2].first, 3);
}

TEST(DeterministicEngine, ObservedRunMatchesNullptrFastPath) {
  const Graph g = Graph::build(64, gen::rmat(64, 300, 11));

  // Fast path: no observer attached.
  WccProgram plain;
  EdgeDataArray<WccProgram::EdgeData> plain_edges(g.num_edges());
  plain.init(g, plain_edges);
  const EngineResult r0 = run_deterministic(g, plain, plain_edges);
  ASSERT_TRUE(r0.converged);

  // Instrumented: a composite of two recorders, so this also covers the
  // engine -> context -> composite fan-out end to end.
  std::vector<std::pair<int, Event>> tape;
  RecordingObserver first(tape, 1);
  RecordingObserver second(tape, 2);
  CompositeObserver fan(&first, &second);
  WccProgram observed;
  EdgeDataArray<WccProgram::EdgeData> observed_edges(g.num_edges());
  observed.init(g, observed_edges);
  const EngineResult r1 =
      run_deterministic(g, observed, observed_edges, 100000, &fan);
  ASSERT_TRUE(r1.converged);

  // Instrumentation must be observationally transparent.
  EXPECT_EQ(r0.iterations, r1.iterations);
  EXPECT_EQ(r0.updates, r1.updates);
  EXPECT_EQ(plain.labels(), observed.labels());

  // And the observers really saw the run: every event duplicated to both
  // children, reads and writes both present, iterations within range.
  ASSERT_FALSE(tape.empty());
  ASSERT_EQ(tape.size() % 2, 0u);
  bool saw_read = false;
  bool saw_write = false;
  for (std::size_t i = 0; i < tape.size(); i += 2) {
    ASSERT_EQ(tape[i].first, 1);
    ASSERT_EQ(tape[i + 1].first, 2);
    ASSERT_EQ(tape[i].second, tape[i + 1].second);
    saw_read = saw_read || tape[i].second.kind == 'r';
    saw_write = saw_write || tape[i].second.kind == 'w';
    EXPECT_LT(tape[i].second.iter, r1.iterations);
    EXPECT_LT(tape[i].second.e, g.num_edges());
  }
  EXPECT_TRUE(saw_read);
  EXPECT_TRUE(saw_write);
}

}  // namespace
}  // namespace ndg
