// Unit tests for the graph substrate: CSR/CSC construction, canonical edge
// ids, loaders, generators, and structural statistics.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/datasets.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/graph_stats.hpp"
#include "graph/loader.hpp"

namespace ndg {
namespace {

Graph diamond() {
  // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
  return Graph::build(4, {{0, 1}, {0, 2}, {1, 3}, {2, 3}});
}

TEST(Graph, BasicCounts) {
  const Graph g = diamond();
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.out_degree(0), 2u);
  EXPECT_EQ(g.out_degree(3), 0u);
  EXPECT_EQ(g.in_degree(3), 2u);
  EXPECT_EQ(g.in_degree(0), 0u);
}

TEST(Graph, CsrOrderDefinesEdgeIds) {
  const Graph g = diamond();
  // Sorted edge list: (0,1)=id0 (0,2)=id1 (1,3)=id2 (2,3)=id3.
  EXPECT_EQ(g.edge_target(0), 1u);
  EXPECT_EQ(g.edge_target(1), 2u);
  EXPECT_EQ(g.edge_target(2), 3u);
  EXPECT_EQ(g.edge_target(3), 3u);
  EXPECT_EQ(g.out_edges_begin(0), 0u);
  EXPECT_EQ(g.out_edges_begin(1), 2u);
  EXPECT_EQ(g.out_edges_begin(2), 3u);
}

TEST(Graph, EdgeSourceInvertsEdgeIds) {
  const Graph g = diamond();
  EXPECT_EQ(g.edge_source(0), 0u);
  EXPECT_EQ(g.edge_source(1), 0u);
  EXPECT_EQ(g.edge_source(2), 1u);
  EXPECT_EQ(g.edge_source(3), 2u);
}

TEST(Graph, InEdgesCarryCanonicalIds) {
  const Graph g = diamond();
  const auto in3 = g.in_edges(3);
  ASSERT_EQ(in3.size(), 2u);
  // In-edges of 3: from 1 (edge id 2) and from 2 (edge id 3).
  EXPECT_EQ(in3[0].src, 1u);
  EXPECT_EQ(in3[0].id, 2u);
  EXPECT_EQ(in3[1].src, 2u);
  EXPECT_EQ(in3[1].id, 3u);
}

TEST(Graph, InOutViewsShareEdgeIds) {
  // The same edge id reached via CSR and CSC must address the same slot.
  const Graph g = Graph::build(5, gen::erdos_renyi(5, 30, 99));
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (const InEdge& ie : g.in_edges(v)) {
      EXPECT_EQ(g.edge_target(ie.id), v);
      EXPECT_EQ(g.edge_source(ie.id), ie.src);
    }
  }
}

TEST(Graph, BuildRemovesSelfLoopsAndDuplicates) {
  const Graph g = Graph::build(3, {{0, 1}, {0, 1}, {1, 1}, {1, 2}});
  EXPECT_EQ(g.num_edges(), 2u);  // (0,1) deduped, (1,1) dropped
}

TEST(Graph, BuildCanKeepSelfLoopsAndDuplicates) {
  GraphBuildOptions opts;
  opts.remove_self_loops = false;
  opts.remove_duplicate_edges = false;
  const Graph g = Graph::build(3, {{0, 1}, {0, 1}, {1, 1}}, opts);
  EXPECT_EQ(g.num_edges(), 3u);
}

TEST(Graph, EdgeIdsIndependentOfInputOrder) {
  const Graph a = Graph::build(4, {{0, 1}, {2, 3}, {1, 2}});
  const Graph b = Graph::build(4, {{1, 2}, {0, 1}, {2, 3}});
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (EdgeId e = 0; e < a.num_edges(); ++e) {
    EXPECT_EQ(a.edge_target(e), b.edge_target(e));
    EXPECT_EQ(a.edge_source(e), b.edge_source(e));
  }
}

TEST(Graph, SymmetrizeDoublesEdges) {
  const EdgeList sym = symmetrize({{0, 1}, {1, 2}});
  EXPECT_EQ(sym.size(), 4u);
  const Graph g = Graph::build(3, sym);
  EXPECT_EQ(g.out_degree(1), 2u);
  EXPECT_EQ(g.in_degree(1), 2u);
}

TEST(Loader, ParsesSnapFormat) {
  const auto loaded = parse_edge_list(
      "# comment line\n"
      "% other comment\n"
      "0\t1\n"
      "  2 3\n"
      "\n"
      "4 0\n");
  EXPECT_EQ(loaded.edges.size(), 3u);
  EXPECT_EQ(loaded.num_vertices, 5u);
  EXPECT_EQ(loaded.edges[0], (Edge{0, 1}));
  EXPECT_EQ(loaded.edges[1], (Edge{2, 3}));
  EXPECT_EQ(loaded.edges[2], (Edge{4, 0}));
}

TEST(Loader, ThrowsOnMalformedLine) {
  EXPECT_THROW(parse_edge_list("0 x\n"), std::runtime_error);
}

TEST(Loader, ThrowsOnMissingFile) {
  EXPECT_THROW(load_edge_list("/nonexistent/path/file.txt"), std::runtime_error);
}

TEST(Loader, RoundTripsThroughFile) {
  const std::string path = testing::TempDir() + "/ndg_edges.txt";
  const EdgeList edges{{0, 1}, {1, 2}, {2, 0}};
  save_edge_list(path, edges, "test graph");
  const auto loaded = load_edge_list(path);
  EXPECT_EQ(loaded.edges, edges);
  EXPECT_EQ(loaded.num_vertices, 3u);
}

TEST(Generators, ChainCycleStarShapes) {
  const Graph chain = Graph::build(5, gen::chain(5));
  EXPECT_EQ(chain.num_edges(), 4u);
  EXPECT_EQ(chain.out_degree(4), 0u);

  const Graph cyc = Graph::build(5, gen::cycle(5));
  EXPECT_EQ(cyc.num_edges(), 5u);
  for (VertexId v = 0; v < 5; ++v) {
    EXPECT_EQ(cyc.out_degree(v), 1u);
    EXPECT_EQ(cyc.in_degree(v), 1u);
  }

  const Graph st = Graph::build(6, gen::star(6));
  EXPECT_EQ(st.out_degree(0), 5u);
  EXPECT_EQ(st.in_degree(0), 0u);
}

TEST(Generators, CompleteHasAllPairs) {
  const Graph g = Graph::build(4, gen::complete(4));
  EXPECT_EQ(g.num_edges(), 12u);
  for (VertexId v = 0; v < 4; ++v) {
    EXPECT_EQ(g.out_degree(v), 3u);
    EXPECT_EQ(g.in_degree(v), 3u);
  }
}

TEST(Generators, Grid2dDegrees) {
  const Graph g = Graph::build(9, gen::grid2d(3, 3));
  // Interior-ish vertex 0 has right+down; corner 8 has none.
  EXPECT_EQ(g.out_degree(0), 2u);
  EXPECT_EQ(g.out_degree(8), 0u);
  EXPECT_EQ(g.num_edges(), 12u);
}

TEST(Generators, RmatIsDeterministicPerSeed) {
  const auto a = gen::rmat(64, 500, 7);
  const auto b = gen::rmat(64, 500, 7);
  const auto c = gen::rmat(64, 500, 8);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a.size(), 500u);
  for (const Edge& e : a) {
    EXPECT_LT(e.src, 64u);
    EXPECT_LT(e.dst, 64u);
  }
}

TEST(Generators, RmatIsSkewed) {
  // R-MAT with Graph500 parameters must concentrate edges on few vertices.
  const Graph g = Graph::build(1024, gen::rmat(1024, 16384, 5));
  const GraphStats s = compute_stats(g);
  EXPECT_GT(s.top1pct_out_edge_share, 0.08);  // far above the uniform 1%
}

TEST(Generators, ErdosRenyiIsNotSkewed) {
  const Graph g = Graph::build(1024, gen::erdos_renyi(1024, 16384, 5));
  const GraphStats s = compute_stats(g);
  EXPECT_LT(s.top1pct_out_edge_share, 0.08);
}

TEST(Generators, SmallWorldDegreeNearK) {
  const Graph g = Graph::build(500, gen::small_world(500, 4, 0.05, 3));
  // Every vertex emits k = 4 edges (some lost to dedup/self-loop removal).
  const GraphStats s = compute_stats(g);
  EXPECT_NEAR(s.avg_out_degree, 4.0, 0.3);
  EXPECT_LT(s.max_out_degree, 16u);
}

TEST(Generators, RandomDagIsAcyclicByConstruction) {
  const auto edges = gen::random_dag(200, 3.0, 11);
  for (const Edge& e : edges) EXPECT_LT(e.src, e.dst);
}

TEST(GraphStats, CountsSourcesSinksAndEccentricity) {
  const Graph g = Graph::build(5, gen::chain(5));
  const GraphStats s = compute_stats(g, 0);
  EXPECT_EQ(s.num_sources, 1u);
  EXPECT_EQ(s.num_sinks, 1u);
  EXPECT_EQ(s.bfs_eccentricity, 4u);
  EXPECT_EQ(s.max_out_degree, 1u);
}

TEST(GraphStats, ReciprocityDistinguishesSymmetrizedGraphs) {
  const Graph directed = Graph::build(10, gen::chain(10));
  EXPECT_DOUBLE_EQ(compute_stats(directed).reciprocity, 0.0);
  const Graph sym = Graph::build(10, symmetrize(gen::chain(10)));
  EXPECT_DOUBLE_EQ(compute_stats(sym).reciprocity, 1.0);
  // Cycle of 2: both edges reciprocal.
  const Graph pair = Graph::build(2, {{0, 1}, {1, 0}});
  EXPECT_DOUBLE_EQ(compute_stats(pair).reciprocity, 1.0);
}

TEST(GraphStats, DegreeHistogramBucketsCorrectly) {
  // star(9): hub has out-degree 8 (bucket 3), leaves 0 (bucket 0).
  const Graph g = Graph::build(9, gen::star(9));
  const GraphStats s = compute_stats(g);
  ASSERT_EQ(s.out_degree_histogram.size(), 4u);
  EXPECT_EQ(s.out_degree_histogram[0], 8u);  // degrees 0..1
  EXPECT_EQ(s.out_degree_histogram[3], 1u);  // degree 8
  std::uint64_t total = 0;
  for (const auto c : s.out_degree_histogram) total += c;
  EXPECT_EQ(total, 9u);
}

TEST(GraphStats, RmatHistogramHasLongTail) {
  const Graph g = Graph::build(1024, gen::rmat(1024, 16384, 5));
  const GraphStats s = compute_stats(g);
  // Power-law-ish: occupied buckets far beyond the mean degree's bucket.
  EXPECT_GE(s.out_degree_histogram.size(), 7u);  // some vertex with deg >= 64
}

TEST(GraphStats, EccentricityIgnoresDirection) {
  // Probe from the sink: undirected BFS must still span the chain.
  const Graph g = Graph::build(5, gen::chain(5));
  const GraphStats s = compute_stats(g, 4);
  EXPECT_EQ(s.bfs_eccentricity, 4u);
}

TEST(Datasets, AllStandInsBuildAndMatchScaledSizes) {
  for (const DatasetId id : all_datasets()) {
    const Dataset d = make_dataset(id, 256);
    EXPECT_GT(d.graph.num_vertices(), 0u) << d.name;
    EXPECT_GT(d.graph.num_edges(), 0u) << d.name;
  }
  // Scaled |V| tracks the paper's Table I divided by the scale factor.
  const Dataset berk = make_dataset(DatasetId::kWebBerkStan, 256);
  EXPECT_NEAR(static_cast<double>(berk.graph.num_vertices()), 685231.0 / 256, 2.0);
}

TEST(Datasets, Cage15StandInIsNearRegular) {
  const Dataset cage = make_dataset(DatasetId::kCage15, 2048);
  const GraphStats s = compute_stats(cage.graph);
  EXPECT_LT(s.top1pct_out_edge_share, 0.05);
  EXPECT_NEAR(s.avg_out_degree, 18.0, 2.0);
}

TEST(Datasets, WebStandInsAreSkewed) {
  const Dataset web = make_dataset(DatasetId::kWebBerkStan, 256);
  const GraphStats s = compute_stats(web.graph);
  EXPECT_GT(s.top1pct_out_edge_share, 0.08);
}

TEST(Datasets, FromFileMatchesLoader) {
  const std::string path = testing::TempDir() + "/ndg_ds.txt";
  save_edge_list(path, {{0, 1}, {1, 2}});
  const Dataset d = make_dataset_from_file("tiny", path);
  EXPECT_EQ(d.name, "tiny");
  EXPECT_EQ(d.graph.num_vertices(), 3u);
  EXPECT_EQ(d.graph.num_edges(), 2u);
}

}  // namespace
}  // namespace ndg
