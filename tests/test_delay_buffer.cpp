// Unit tests for the delay layer's data structures (docs/DELAY.md):
// DelaySpec parsing and the ThreadDelayQueue invariants — release timing on
// the owner's step clock, read-your-writes, per-edge commit order under
// random holds, forced flushes, and the staleness telemetry.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "delay/delay_buffer.hpp"
#include "delay/delay_spec.hpp"
#include "util/types.hpp"

namespace ndg::delay {
namespace {

/// One committed (edge, slot, endpoint) triple, for order assertions.
struct Committed {
  EdgeId edge;
  std::uint64_t slot;
  VertexId endpoint;
  bool operator==(const Committed&) const = default;
};

struct Recorder {
  std::vector<Committed> out;
  void operator()(EdgeId e, std::uint64_t slot, VertexId endpoint) {
    out.push_back(Committed{e, slot, endpoint});
  }
};

DelaySpec fixed(std::size_t d) {
  DelaySpec spec;
  spec.steps = d;
  return spec;
}

TEST(DelaySpec, ParseKind) {
  DelayKind k = DelayKind::kFixed;
  EXPECT_TRUE(parse_delay_kind("uniform", k));
  EXPECT_EQ(k, DelayKind::kUniform);
  EXPECT_TRUE(parse_delay_kind("per-thread", k));
  EXPECT_EQ(k, DelayKind::kPerThread);
  EXPECT_TRUE(parse_delay_kind("fixed", k));
  EXPECT_EQ(k, DelayKind::kFixed);
  EXPECT_FALSE(parse_delay_kind("bogus", k));
  EXPECT_STREQ(to_string(DelayKind::kPerThread), "per-thread");
}

TEST(DelaySpec, MaxSteps) {
  DelaySpec spec = fixed(4);
  EXPECT_EQ(spec.max_steps(), 4u);
  spec.kind = DelayKind::kUniform;
  EXPECT_EQ(spec.max_steps(), 4u);
  spec.kind = DelayKind::kPerThread;
  spec.jitter = 3;
  EXPECT_EQ(spec.max_steps(), 7u);
  EXPECT_FALSE(DelaySpec{}.enabled());
  EXPECT_TRUE(spec.enabled());
}

TEST(ThreadDelayQueue, FixedHoldReleasesExactlyOnTime) {
  ThreadDelayQueue q(fixed(3), 0);
  Recorder rec;
  q.push(7, 42, 1, rec);
  EXPECT_TRUE(rec.out.empty());
  EXPECT_EQ(q.size(), 1u);
  q.advance(rec);  // step 1
  q.advance(rec);  // step 2
  EXPECT_TRUE(rec.out.empty());
  q.advance(rec);  // step 3: due
  ASSERT_EQ(rec.out.size(), 1u);
  EXPECT_EQ(rec.out[0], (Committed{7, 42, 1}));
  EXPECT_TRUE(q.empty());
}

TEST(ThreadDelayQueue, ReadYourWrites) {
  ThreadDelayQueue q(fixed(4), 0);
  Recorder rec;
  std::uint64_t v = 0;
  EXPECT_FALSE(q.pending_value(3, v));
  q.push(3, 10, kInvalidVertex, rec);
  q.push(3, 11, kInvalidVertex, rec);
  ASSERT_TRUE(q.pending_value(3, v));
  EXPECT_EQ(v, 11u);  // the newest pending value, not the oldest
  q.advance(rec);
  ASSERT_TRUE(q.pending_value(3, v));  // still pending: hold is 4
  q.flush_all(rec);
  EXPECT_FALSE(q.pending_value(3, v));  // committed, now read through policy
}

TEST(ThreadDelayQueue, SameEdgeCommitsInPushOrder) {
  // Uniform holds draw randomly per write; the due-order bump must still
  // commit same-edge writes in program order, and the LAST committed value
  // must be the last pushed one.
  DelaySpec spec = fixed(5);
  spec.kind = DelayKind::kUniform;
  spec.seed = 99;
  ThreadDelayQueue q(spec, 0);
  Recorder rec;
  for (std::uint64_t i = 0; i < 64; ++i) {
    q.push(1, i, kInvalidVertex, rec);
    q.advance(rec);
  }
  q.flush_all(rec);
  ASSERT_EQ(rec.out.size(), 64u);
  for (std::uint64_t i = 0; i < 64; ++i) EXPECT_EQ(rec.out[i].slot, i);
}

TEST(ThreadDelayQueue, ZeroHoldOrdersBehindPendingWrites) {
  // A zero-hold draw may not leapfrog an earlier still-pending write to the
  // same edge. With kUniform and steps=1 some draws are 0, some 1.
  DelaySpec spec = fixed(1);
  spec.kind = DelayKind::kUniform;
  spec.seed = 5;
  ThreadDelayQueue q(spec, 0);
  Recorder rec;
  for (std::uint64_t i = 0; i < 200; ++i) q.push(2, i, kInvalidVertex, rec);
  q.flush_all(rec);
  ASSERT_EQ(rec.out.size(), 200u);
  for (std::uint64_t i = 0; i < 200; ++i) EXPECT_EQ(rec.out[i].slot, i);
}

TEST(ThreadDelayQueue, FlushEdgeIsSelective) {
  ThreadDelayQueue q(fixed(4), 0);
  Recorder rec;
  q.push(1, 100, kInvalidVertex, rec);
  q.push(2, 200, kInvalidVertex, rec);
  q.push(1, 101, kInvalidVertex, rec);
  q.flush_edge(1, rec);
  ASSERT_EQ(rec.out.size(), 2u);
  EXPECT_EQ(rec.out[0].slot, 100u);
  EXPECT_EQ(rec.out[1].slot, 101u);
  EXPECT_EQ(q.size(), 1u);  // edge 2 still parked
  std::uint64_t v = 0;
  EXPECT_TRUE(q.pending_value(2, v));
  EXPECT_FALSE(q.pending_value(1, v));
  q.flush_all(rec);
  ASSERT_EQ(rec.out.size(), 3u);
  EXPECT_EQ(rec.out[2].slot, 200u);
}

TEST(ThreadDelayQueue, TelemetryCountsAndBounds) {
  const std::size_t d = 3;
  ThreadDelayQueue q(fixed(d), 0);
  Recorder rec;
  q.push(1, 1, kInvalidVertex, rec);
  for (int i = 0; i < 3; ++i) q.advance(rec);  // full hold: staleness 3
  q.push(2, 2, kInvalidVertex, rec);
  q.advance(rec);
  q.flush_all(rec);  // early flush: staleness 1
  const DelayTelemetry& t = q.telemetry();
  EXPECT_EQ(t.delayed_writes, 2u);
  EXPECT_EQ(t.max_staleness, 3u);
  EXPECT_EQ(t.staleness_total, 4u);
  ASSERT_EQ(t.hist.size(), d + 1);
  EXPECT_EQ(t.hist[3], 1u);
  EXPECT_EQ(t.hist[1], 1u);
  EXPECT_LE(t.max_staleness, fixed(d).max_steps());
}

TEST(ThreadDelayQueue, PerThreadHoldStaysInJitterBand) {
  DelaySpec spec = fixed(6);
  spec.kind = DelayKind::kPerThread;
  spec.jitter = 2;
  for (std::size_t tid = 0; tid < 16; ++tid) {
    ThreadDelayQueue q(spec, tid);
    Recorder rec;
    q.push(1, 1, kInvalidVertex, rec);
    std::size_t hold = 0;
    while (rec.out.empty()) {
      q.advance(rec);
      ++hold;
      ASSERT_LE(hold, spec.max_steps());
    }
    EXPECT_GE(hold, spec.steps - spec.jitter);
    EXPECT_LE(hold, spec.steps + spec.jitter);
  }
}

TEST(ThreadDelayQueue, MergeTelemetryAggregates) {
  EngineResult r;
  DelayTelemetry a;
  a.delayed_writes = 2;
  a.max_staleness = 3;
  a.staleness_total = 5;
  a.hist = {0, 1, 0, 1};
  DelayTelemetry b;
  b.delayed_writes = 1;
  b.max_staleness = 1;
  b.staleness_total = 1;
  b.hist = {0, 1};
  merge_telemetry(r, a);
  merge_telemetry(r, b);
  EXPECT_EQ(r.delayed_writes, 3u);
  EXPECT_EQ(r.max_staleness, 3u);
  EXPECT_EQ(r.staleness_total, 6u);
  ASSERT_EQ(r.staleness_hist.size(), 4u);
  EXPECT_EQ(r.staleness_hist[1], 2u);
  EXPECT_EQ(r.staleness_hist[3], 1u);
  EXPECT_DOUBLE_EQ(r.mean_staleness(), 2.0);
}

}  // namespace
}  // namespace ndg::delay
