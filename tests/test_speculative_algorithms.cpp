// Tests for the NE-refused algorithm family (matching, greedy coloring):
// structural validity of their outputs, the refusal verdicts the static
// layer hands them, their registry surface, and the post-run edge state
// (every published half must agree with the owner's final decision —
// docs/SPECULATION.md's "commit republishes" rule).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "algorithms/greedy_coloring.hpp"
#include "algorithms/matching.hpp"
#include "algorithms/mis.hpp"
#include "algorithms/reference/references.hpp"
#include "algorithms/registry.hpp"
#include "analysis/static_eligibility.hpp"
#include "engine/speculative.hpp"
#include "graph/generators.hpp"

namespace ndg {
namespace {

Graph test_graph() { return Graph::build(128, gen::rmat(128, 900, 21)); }

std::vector<VertexId> undirected_neighbors(const Graph& g, VertexId v) {
  std::vector<VertexId> nbrs;
  for (const VertexId u : g.out_neighbors(v)) nbrs.push_back(u);
  for (const InEdge& ie : g.in_edges(v)) nbrs.push_back(ie.src);
  std::sort(nbrs.begin(), nbrs.end());
  nbrs.erase(std::unique(nbrs.begin(), nbrs.end()), nbrs.end());
  return nbrs;
}

template <typename Program>
EngineResult run_spec(const Graph& g, Program& prog,
                      EdgeDataArray<typename Program::EdgeData>& edges,
                      std::size_t threads) {
  prog.init(g, edges);
  EngineOptions opts;
  opts.num_threads = threads;
  opts.max_iterations = 500000;
  return run_speculative(g, prog, edges, opts);
}

// ---------------------------------------------------------------------------
// Matching: symmetry, no self-matches, edges exist, and maximality (no edge
// between two free vertices may remain).

TEST(MatchingAlgorithm, ValidMaximalMatching) {
  const Graph g = test_graph();
  MatchingProgram prog;
  EdgeDataArray<DualEdge> edges(g.num_edges());
  const EngineResult r = run_spec(g, prog, edges, 4);
  EXPECT_TRUE(r.converged);
  const auto& match = prog.match();
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (match[v] == kInvalidVertex) continue;
    const VertexId u = match[v];
    EXPECT_NE(u, v) << "self-match at " << v;
    EXPECT_EQ(match[u], v) << "asymmetric match " << v << "<->" << u;
    const auto nbrs = undirected_neighbors(g, v);
    EXPECT_TRUE(std::binary_search(nbrs.begin(), nbrs.end(), u))
        << "matched pair " << v << "," << u << " is not an edge";
  }
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (match[v] != kInvalidVertex) continue;
    for (const VertexId u : undirected_neighbors(g, v)) {
      if (u == v) continue;
      EXPECT_NE(match[u], kInvalidVertex)
          << "free-free edge " << v << "," << u << ": matching not maximal";
    }
  }
}

// Every edge half ends up publishing its owner's final state — the commit
// phase's republish obligation. A stale half would mean a lost write.
TEST(MatchingAlgorithm, EdgeHalvesPublishFinalState) {
  const Graph g = test_graph();
  MatchingProgram prog;
  EdgeDataArray<DualEdge> edges(g.num_edges());
  run_spec(g, prog, edges, 4);
  const auto& match = prog.match();
  const AlignedAccess policy;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto out = g.out_neighbors(v);
    for (std::size_t k = 0; k < out.size(); ++k) {
      const DualEdge e = policy.read(edges, g.out_edge_id(v, k));
      const std::uint32_t want =
          match[v] == kInvalidVertex ? MatchingProgram::kFreeHalf : match[v];
      EXPECT_EQ(own_half(e, /*is_source=*/true), want) << "src half of " << v;
    }
  }
}

// ---------------------------------------------------------------------------
// Coloring: proper (no edge endpoints share a color), every vertex colored,
// and exactly the sequential mex oracle.

TEST(ColoringAlgorithm, ProperAndOracleExact) {
  const Graph g = test_graph();
  GreedyColoringProgram prog;
  EdgeDataArray<DualEdge> edges(g.num_edges());
  const EngineResult r = run_spec(g, prog, edges, 4);
  EXPECT_TRUE(r.converged);
  const auto& colors = prog.colors();
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_NE(colors[v], GreedyColoringProgram::kUncolored) << "v=" << v;
    for (const VertexId u : undirected_neighbors(g, v)) {
      if (u == v) continue;
      EXPECT_NE(colors[v], colors[u]) << "edge " << v << "," << u;
    }
  }
  EXPECT_EQ(colors, ref::greedy_coloring(g));
}

// Greedy-by-id coloring of a complete graph needs exactly n colors, and of a
// star (center 0) exactly 2.
TEST(ColoringAlgorithm, KnownChromaticShapes) {
  {
    const Graph g = Graph::build(6, gen::complete(6));
    GreedyColoringProgram prog;
    EdgeDataArray<DualEdge> edges(g.num_edges());
    run_spec(g, prog, edges, 4);
    std::vector<std::uint32_t> sorted = prog.colors();
    std::sort(sorted.begin(), sorted.end());
    const std::vector<std::uint32_t> want{0, 1, 2, 3, 4, 5};
    EXPECT_EQ(sorted, want);
  }
  {
    const Graph g = Graph::build(16, gen::star(16));
    GreedyColoringProgram prog;
    EdgeDataArray<DualEdge> edges(g.num_edges());
    run_spec(g, prog, edges, 4);
    EXPECT_EQ(prog.colors()[0], 0u);
    for (VertexId v = 1; v < 16; ++v) EXPECT_EQ(prog.colors()[v], 1u);
  }
}

// ---------------------------------------------------------------------------
// Static refusal: the whole reason these programs live behind the rollback
// engine. (The same facts are static_assert-ed in the headers and in the
// compile-fail pair; asserting them here keeps the verdicts visible in test
// output.)

TEST(SpeculativeEligibility, MatchingAndColoringRefusedMisEligible) {
  EXPECT_EQ(StaticEligibility<MatchingProgram>::kVerdict,
            EligibilityVerdict::kNotProven);
  EXPECT_TRUE(StaticEligibility<MatchingProgram>::kWwPossible);
  EXPECT_EQ(StaticEligibility<GreedyColoringProgram>::kVerdict,
            EligibilityVerdict::kNotProven);
  EXPECT_TRUE(StaticEligibility<GreedyColoringProgram>::kWwPossible);
  // The bridge case: MIS is Theorem-2 eligible AND cautious.
  EXPECT_EQ(StaticEligibility<MisProgram>::kVerdict,
            EligibilityVerdict::kTheorem2);
}

// ---------------------------------------------------------------------------
// Registry surface.

TEST(SpeculativeRegistry, ServesRefusedFamilyPlusBridgeCase) {
  const auto entries = speculative_registry();
  ASSERT_EQ(entries.size(), 3u);
  for (const auto& e : entries) {
    ASSERT_TRUE(e.run_speculative != nullptr) << e.name;
    ASSERT_TRUE(e.verify_speculative != nullptr) << e.name;
  }
  EXPECT_EQ(entries[0].name, "matching");
  EXPECT_TRUE(entries[0].speculative_only);
  EXPECT_EQ(entries[1].name, "coloring");
  EXPECT_TRUE(entries[1].speculative_only);
  EXPECT_EQ(entries[2].name, "mis");
  EXPECT_FALSE(entries[2].speculative_only);  // also NE-eligible (Theorem 2)

  const Graph g = test_graph();
  EngineOptions opts;
  opts.num_threads = 4;
  opts.max_iterations = 500000;
  for (const auto& e : entries) {
    const EngineResult r = e.run_speculative(g, opts);
    EXPECT_TRUE(r.converged) << e.name;
    EXPECT_GT(r.spec_commits, 0u) << e.name;
    EXPECT_TRUE(e.verify_speculative(g, opts)) << e.name;
  }
}

TEST(SpeculativeRegistry, MainRegistryExposesCautiousEntriesOnly) {
  bool saw_mis = false;
  bool saw_pagerank = false;
  for (const auto& e : algorithm_registry(0, 1000)) {
    if (e.name == "mis") {
      saw_mis = true;
      // MIS satisfies CautiousProgram, so its main-registry entry also
      // carries the speculative closure...
      EXPECT_TRUE(e.run_speculative != nullptr);
    }
    if (e.name == "pagerank") {
      saw_pagerank = true;
      // ...while a non-cautious program gets none.
      EXPECT_TRUE(e.run_speculative == nullptr);
    }
  }
  EXPECT_TRUE(saw_mis);
  EXPECT_TRUE(saw_pagerank);
}

}  // namespace
}  // namespace ndg
