// Pure asynchronous engine tests (§VII future work): correctness without any
// barrier, quiescence detection, and agreement with the reference results for
// every atomicity mode and thread count.

#include <gtest/gtest.h>

#include <tuple>

#include "algorithms/bfs.hpp"
#include "algorithms/kcore.hpp"
#include "algorithms/mis.hpp"
#include "algorithms/pagerank.hpp"
#include "algorithms/push_pagerank_atomic.hpp"
#include "algorithms/reference/references.hpp"
#include "algorithms/sssp.hpp"
#include "algorithms/wcc.hpp"
#include "engine/pure_async.hpp"
#include "graph/generators.hpp"

namespace ndg {
namespace {

Graph async_graph() {
  EdgeList edges = gen::rmat(256, 1600, 555);
  auto tail = gen::chain(24);
  edges.insert(edges.end(), tail.begin(), tail.end());
  return Graph::build(256, std::move(edges));
}

class PureAsyncParam
    : public ::testing::TestWithParam<std::tuple<AtomicityMode, std::size_t>> {
 protected:
  [[nodiscard]] EngineOptions options() const {
    EngineOptions opts;
    opts.mode = std::get<0>(GetParam());
    opts.num_threads = std::get<1>(GetParam());
    return opts;
  }
};

TEST_P(PureAsyncParam, WccExact) {
  const Graph g = async_graph();
  WccProgram prog;
  EdgeDataArray<WccProgram::EdgeData> edges(g.num_edges());
  prog.init(g, edges);
  const EngineResult r = run_pure_async(g, prog, edges, options());
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(prog.labels(), ref::wcc(g));
}

TEST_P(PureAsyncParam, SsspExact) {
  const Graph g = async_graph();
  SsspProgram prog(0, 21);
  std::vector<float> weights(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    weights[e] = SsspProgram::edge_weight(21, e);
  }
  EdgeDataArray<SsspProgram::EdgeData> edges(g.num_edges());
  prog.init(g, edges);
  const EngineResult r = run_pure_async(g, prog, edges, options());
  EXPECT_TRUE(r.converged);
  const auto expected = ref::sssp(g, 0, weights);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_FLOAT_EQ(prog.distances()[v], expected[v]) << "v=" << v;
  }
}

TEST_P(PureAsyncParam, BfsExact) {
  const Graph g = async_graph();
  BfsProgram prog(0);
  EdgeDataArray<BfsProgram::EdgeData> edges(g.num_edges());
  prog.init(g, edges);
  const EngineResult r = run_pure_async(g, prog, edges, options());
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(prog.levels(), ref::bfs(g, 0));
}

TEST_P(PureAsyncParam, PageRankNearFixedPoint) {
  const Graph g = async_graph();
  const auto expected = ref::pagerank(g, 0.85, 1e-10);
  PageRankProgram prog(1e-4f);
  EdgeDataArray<float> edges(g.num_edges());
  prog.init(g, edges);
  const EngineResult r = run_pure_async(g, prog, edges, options());
  EXPECT_TRUE(r.converged);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_NEAR(prog.ranks()[v], expected[v], 0.05 * expected[v] + 0.01);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ModesAndThreads, PureAsyncParam,
    ::testing::Combine(::testing::Values(AtomicityMode::kLocked,
                                         AtomicityMode::kRelaxed,
                                         AtomicityMode::kSeqCst),
                       ::testing::Values(std::size_t{1}, std::size_t{2},
                                         std::size_t{4})),
    [](const auto& param_info) {
      return std::string(to_string(std::get<0>(param_info.param))) + "_t" +
             std::to_string(std::get<1>(param_info.param));
    });

TEST(PureAsync, AtomicPushPageRankMatchesPullFixedPoint) {
  // The repaired push-mode program must be NE-correct when the policy has
  // real RMW atomicity — even under the barrier-free engine.
  const Graph g = async_graph();
  const auto expected = ref::pagerank(g, 0.85, 1e-10);
  for (const AtomicityMode mode :
       {AtomicityMode::kLocked, AtomicityMode::kRelaxed}) {
    AtomicPushPageRankProgram prog(1e-6f);
    EdgeDataArray<float> edges(g.num_edges());
    prog.init(g, edges);
    EngineOptions opts;
    opts.mode = mode;
    opts.num_threads = 4;
    const EngineResult r = run_pure_async(g, prog, edges, opts);
    EXPECT_TRUE(r.converged);
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      EXPECT_NEAR(prog.ranks()[v], expected[v], 0.02 * expected[v] + 0.005)
          << to_string(mode) << " v=" << v;
    }
  }
}

TEST(PureAsync, DualEdgeAlgorithmsExactWithoutBarriers) {
  // The hardest combination: write-write races on half-owned words with NO
  // iteration boundaries at all — recovery must ride purely on the
  // schedule-on-write rule.
  const Graph g = async_graph();
  EngineOptions opts;
  opts.num_threads = 4;
  opts.mode = AtomicityMode::kRelaxed;
  {
    KCoreProgram prog;
    EdgeDataArray<DualEdge> edges(g.num_edges());
    prog.init(g, edges);
    const EngineResult r = run_pure_async(g, prog, edges, opts);
    EXPECT_TRUE(r.converged);
    EXPECT_EQ(prog.core_numbers(), ref::kcore(g));
  }
  {
    MisProgram prog;
    EdgeDataArray<DualEdge> edges(g.num_edges());
    prog.init(g, edges);
    const EngineResult r = run_pure_async(g, prog, edges, opts);
    EXPECT_TRUE(r.converged);
    const auto expected = ref::greedy_mis(g);
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      EXPECT_EQ(prog.states()[v] == MisProgram::kIn, expected[v]) << v;
    }
  }
}

TEST(PureAsync, EmptyFrontierQuiescesImmediately) {
  const Graph g = Graph::build(8, gen::chain(8));
  BfsProgram prog(7);  // sink
  EdgeDataArray<BfsProgram::EdgeData> edges(g.num_edges());
  prog.init(g, edges);
  EngineOptions opts;
  opts.num_threads = 4;
  const EngineResult r = run_pure_async(g, prog, edges, opts);
  EXPECT_TRUE(r.converged);
  EXPECT_GE(r.updates, 1u);  // the seeded source itself
}

// An algorithm that reschedules itself forever (namespace scope: local
// classes cannot hold the member template the program contract needs).
struct LivelockProgram {
  using EdgeData = std::uint32_t;
  static constexpr bool kMonotonic = false;
  [[nodiscard]] const char* name() const { return "livelock"; }
  void init(const Graph&, EdgeDataArray<std::uint32_t>& e) { e.fill(0); }
  [[nodiscard]] std::vector<VertexId> initial_frontier(const Graph&) const {
    return {0};
  }
  template <typename Ctx>
  void update(VertexId v, Ctx& ctx) {
    ctx.schedule(v);  // forever
  }
  static double project(std::uint32_t x) { return x; }
};

TEST(PureAsync, UpdateCapStopsRunaways) {
  const Graph g = Graph::build(4, gen::cycle(4));
  LivelockProgram prog;
  EdgeDataArray<std::uint32_t> edges(g.num_edges());
  prog.init(g, edges);
  EngineOptions opts;
  opts.num_threads = 2;
  opts.max_iterations = 50;  // cap = 50 * |V| updates
  const EngineResult r = run_pure_async(g, prog, edges, opts);
  EXPECT_FALSE(r.converged);
  EXPECT_GT(r.updates, 0u);
}

TEST(PureAsync, SingleThreadMatchesReferenceResults) {
  const Graph g = Graph::build(64, gen::grid2d(8, 8));
  WccProgram prog;
  EdgeDataArray<WccProgram::EdgeData> edges(g.num_edges());
  prog.init(g, edges);
  EngineOptions opts;
  opts.num_threads = 1;
  const EngineResult r = run_pure_async(g, prog, edges, opts);
  EXPECT_TRUE(r.converged);
  for (const auto label : prog.labels()) EXPECT_EQ(label, 0u);
}

}  // namespace
}  // namespace ndg
