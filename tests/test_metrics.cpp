// Tests for the result-variance metrics (difference degree, value deltas) and
// the monotonicity checker.

#include <gtest/gtest.h>

#include "core/difference_degree.hpp"
#include "core/monotonicity.hpp"
#include "atomics/edge_data.hpp"

namespace ndg {
namespace {

TEST(RankVertices, SortsDescendingWithStableIdTiebreak) {
  const std::vector<double> values{0.5, 2.0, 0.5, 3.0};
  const auto ranking = rank_vertices(values);
  EXPECT_EQ(ranking, (std::vector<VertexId>{3, 1, 0, 2}));
}

TEST(DifferenceDegree, PaperExample) {
  // "suppose we have two results r1 = {1,2,3,5,7} and r2 = {1,2,3,7,5} ...
  //  the difference degree by comparing r1 and r2 is 3."
  const std::vector<VertexId> r1{1, 2, 3, 5, 7};
  const std::vector<VertexId> r2{1, 2, 3, 7, 5};
  EXPECT_EQ(difference_degree(r1, r2), 3u);
}

TEST(DifferenceDegree, IdenticalRankingsReturnSize) {
  const std::vector<VertexId> r{4, 2, 0};
  EXPECT_EQ(difference_degree(r, r), 3u);
}

TEST(DifferenceDegree, FirstElementDiffers) {
  const std::vector<VertexId> a{1, 2};
  const std::vector<VertexId> b{2, 1};
  EXPECT_EQ(difference_degree(a, b), 0u);
}

TEST(DifferenceDegree, FromValues) {
  const std::vector<double> a{1.0, 5.0, 3.0};  // ranking: 1, 2, 0
  const std::vector<double> b{0.9, 5.0, 3.0};  // ranking: 1, 2, 0
  EXPECT_EQ(difference_degree_values(a, b), 3u);
  const std::vector<double> c{9.0, 5.0, 3.0};  // ranking: 0, 1, 2
  EXPECT_EQ(difference_degree_values(a, c), 0u);
}

TEST(ValueDelta, MaxAndMean) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  const std::vector<double> b{1.5, 2.0, 2.0};
  const ValueDelta d = value_delta(a, b);
  EXPECT_DOUBLE_EQ(d.max_abs, 1.0);
  EXPECT_NEAR(d.mean_abs, 0.5, 1e-12);
}

double slot_to_double(std::uint64_t slot) {
  return static_cast<double>(detail::from_slot<std::uint32_t>(slot));
}

TEST(Monotonicity, DetectsNonIncreasing) {
  MonotonicityChecker c(1, slot_to_double);
  c.set_baseline(0, detail::to_slot<std::uint32_t>(100));
  c.on_write(0, 0, 0, detail::to_slot<std::uint32_t>(50));
  c.on_write(0, 0, 1, detail::to_slot<std::uint32_t>(50));  // equal is fine
  c.on_write(0, 0, 2, detail::to_slot<std::uint32_t>(10));
  EXPECT_TRUE(c.monotonic());
  EXPECT_EQ(c.direction(), MonotonicityChecker::Direction::kNonIncreasing);
  EXPECT_EQ(c.increases(), 0u);
  EXPECT_EQ(c.decreases(), 2u);
}

TEST(Monotonicity, DetectsNonDecreasing) {
  MonotonicityChecker c(1, slot_to_double);
  c.set_baseline(0, detail::to_slot<std::uint32_t>(0));
  c.on_write(0, 0, 0, detail::to_slot<std::uint32_t>(5));
  c.on_write(0, 0, 1, detail::to_slot<std::uint32_t>(9));
  EXPECT_EQ(c.direction(), MonotonicityChecker::Direction::kNonDecreasing);
}

TEST(Monotonicity, DetectsOscillation) {
  MonotonicityChecker c(1, slot_to_double);
  c.set_baseline(0, detail::to_slot<std::uint32_t>(5));
  c.on_write(0, 0, 0, detail::to_slot<std::uint32_t>(9));
  c.on_write(0, 0, 1, detail::to_slot<std::uint32_t>(3));
  EXPECT_FALSE(c.monotonic());
  EXPECT_EQ(c.direction(), MonotonicityChecker::Direction::kNone);
}

TEST(Monotonicity, ConstantWritesAreMonotone) {
  MonotonicityChecker c(2, slot_to_double);
  c.set_baseline(0, detail::to_slot<std::uint32_t>(5));
  c.on_write(0, 0, 0, detail::to_slot<std::uint32_t>(5));
  EXPECT_EQ(c.direction(), MonotonicityChecker::Direction::kConstant);
  EXPECT_TRUE(c.monotonic());
}

TEST(Monotonicity, BaselineMatters) {
  // Without the baseline the first write to an edge could hide an increase.
  MonotonicityChecker c(1, slot_to_double);
  c.set_baseline(0, detail::to_slot<std::uint32_t>(10));
  c.on_write(0, 0, 0, detail::to_slot<std::uint32_t>(20));  // above baseline
  c.on_write(0, 0, 1, detail::to_slot<std::uint32_t>(15));
  EXPECT_FALSE(c.monotonic());
}

TEST(Monotonicity, TracksEdgesIndependently) {
  MonotonicityChecker c(2, slot_to_double);
  c.set_baseline(0, detail::to_slot<std::uint32_t>(10));
  c.set_baseline(1, detail::to_slot<std::uint32_t>(10));
  c.on_write(0, 0, 0, detail::to_slot<std::uint32_t>(5));   // edge 0 down
  c.on_write(1, 0, 0, detail::to_slot<std::uint32_t>(20));  // edge 1 up
  EXPECT_FALSE(c.monotonic());  // mixed directions across edges
}

}  // namespace
}  // namespace ndg
