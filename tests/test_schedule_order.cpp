// Property tests for the Definitions 1–3 oracle: trichotomy, duality, the
// paper's π(v) formula on full frontiers, and the d → 0 / d → ∞ limits.

#include <gtest/gtest.h>

#include <numeric>

#include "engine/schedule_order.hpp"

namespace ndg {
namespace {

std::vector<VertexId> full_frontier(VertexId n) {
  std::vector<VertexId> all(n);
  std::iota(all.begin(), all.end(), 0);
  return all;
}

TEST(ScheduleOracle, PaperPiFormulaOnFullFrontier) {
  // Fig. 1 with |V| divisible by P: π(v) = L_v % (V/P), proc = L_v / (V/P).
  constexpr VertexId kV = 16;
  constexpr std::size_t kP = 4;
  const ScheduleOracle oracle(full_frontier(kV), kP, 2);
  for (VertexId v = 0; v < kV; ++v) {
    EXPECT_EQ(oracle.pi(v), v % (kV / kP)) << "v=" << v;
    EXPECT_EQ(oracle.proc(v), v / (kV / kP)) << "v=" << v;
  }
}

TEST(ScheduleOracle, ScheduledMembership) {
  const ScheduleOracle oracle({2, 5, 9}, 2, 1);
  EXPECT_TRUE(oracle.scheduled(5));
  EXPECT_FALSE(oracle.scheduled(3));
}

TEST(ScheduleOracle, SameThreadIsProgramOrder) {
  // 8 vertices on 2 procs: {0..3} on proc 0, {4..7} on proc 1.
  const ScheduleOracle oracle(full_frontier(8), 2, 100);
  EXPECT_EQ(oracle.order(0, 3), UpdateOrder::kPrecedes);
  EXPECT_EQ(oracle.order(3, 0), UpdateOrder::kFollows);
  // Huge delay cannot make same-thread updates concurrent.
  EXPECT_EQ(oracle.order(4, 5), UpdateOrder::kPrecedes);
}

TEST(ScheduleOracle, CrossThreadDelayWindow) {
  // d = 2: proc 0 runs π 0..3 for {0..3}; proc 1 runs π 0..3 for {4..7}.
  const ScheduleOracle oracle(full_frontier(8), 2, 2);
  // π(0)=0, π(6)=2: 2 >= 0+2 -> f(0) ≺ f(6).
  EXPECT_EQ(oracle.order(0, 6), UpdateOrder::kPrecedes);
  EXPECT_EQ(oracle.order(6, 0), UpdateOrder::kFollows);
  // π(0)=0, π(5)=1: |1-0| < 2 -> concurrent both ways.
  EXPECT_EQ(oracle.order(0, 5), UpdateOrder::kConcurrent);
  EXPECT_EQ(oracle.order(5, 0), UpdateOrder::kConcurrent);
}

TEST(ScheduleOracle, DualityAndTrichotomyHoldEverywhere) {
  for (const std::size_t procs : {1u, 2u, 3u, 4u}) {
    for (const std::size_t delay : {0u, 1u, 2u, 5u, 100u}) {
      const ScheduleOracle oracle(full_frontier(12), procs, delay);
      for (VertexId v = 0; v < 12; ++v) {
        for (VertexId u = 0; u < 12; ++u) {
          if (u == v) continue;
          const UpdateOrder vu = oracle.order(v, u);
          const UpdateOrder uv = oracle.order(u, v);
          switch (vu) {
            case UpdateOrder::kPrecedes:
              EXPECT_EQ(uv, UpdateOrder::kFollows);
              break;
            case UpdateOrder::kFollows:
              EXPECT_EQ(uv, UpdateOrder::kPrecedes);
              break;
            case UpdateOrder::kConcurrent:
              EXPECT_EQ(uv, UpdateOrder::kConcurrent);
              break;
          }
        }
      }
    }
  }
}

TEST(ScheduleOracle, ZeroDelayHasNoConcurrency) {
  const ScheduleOracle oracle(full_frontier(12), 4, 0);
  for (VertexId v = 0; v < 12; ++v) {
    for (VertexId u = v + 1; u < 12; ++u) {
      EXPECT_NE(oracle.order(v, u), UpdateOrder::kConcurrent);
    }
  }
}

TEST(ScheduleOracle, HugeDelayMakesCrossThreadPairsConcurrent) {
  const ScheduleOracle oracle(full_frontier(12), 4, 1000);
  std::size_t concurrent = 0;
  std::size_t cross = 0;
  for (VertexId v = 0; v < 12; ++v) {
    for (VertexId u = v + 1; u < 12; ++u) {
      if (oracle.proc(v) != oracle.proc(u)) {
        ++cross;
        if (oracle.order(v, u) == UpdateOrder::kConcurrent) ++concurrent;
      }
    }
  }
  EXPECT_EQ(concurrent, cross);  // every cross-thread pair is ∥
}

TEST(ScheduleOracle, SingleProcIsTotalOrder) {
  const ScheduleOracle oracle(full_frontier(10), 1, 5);
  for (VertexId v = 0; v < 10; ++v) {
    for (VertexId u = v + 1; u < 10; ++u) {
      EXPECT_EQ(oracle.order(v, u), UpdateOrder::kPrecedes);
    }
  }
}

TEST(ScheduleOracle, SparseFrontierUsesRanksNotLabels) {
  // S_n = {10, 20, 30, 40} on 2 procs: {10,20} on proc 0, {30,40} on proc 1.
  const ScheduleOracle oracle({10, 20, 30, 40}, 2, 1);
  EXPECT_EQ(oracle.proc(10), 0u);
  EXPECT_EQ(oracle.proc(40), 1u);
  EXPECT_EQ(oracle.pi(20), 1u);
  EXPECT_EQ(oracle.pi(30), 0u);
  // π(30)=0 < π(20)=1 with d=1: f(30) ≺ f(20).
  EXPECT_EQ(oracle.order(30, 20), UpdateOrder::kPrecedes);
}

TEST(ScheduleOracle, OrderNamesAreDistinct) {
  EXPECT_STRNE(to_string(UpdateOrder::kPrecedes),
               to_string(UpdateOrder::kFollows));
  EXPECT_STRNE(to_string(UpdateOrder::kFollows),
               to_string(UpdateOrder::kConcurrent));
}

}  // namespace
}  // namespace ndg
