// Engine-layer tests: frontier mechanics, conflict tracing, coloring, and the
// semantic contrasts between the deterministic Gauss–Seidel engine, the BSP
// engine, and the chromatic scheduler.

#include <gtest/gtest.h>

#include "algorithms/bfs.hpp"
#include "algorithms/wcc.hpp"
#include "engine/bsp.hpp"
#include "engine/chromatic.hpp"
#include "engine/conflict_tracer.hpp"
#include "engine/coloring.hpp"
#include "engine/deterministic.hpp"
#include "engine/frontier.hpp"
#include "graph/generators.hpp"

namespace ndg {
namespace {

TEST(Frontier, SeedSortsAndDeduplicates) {
  Frontier f(10);
  f.seed({5, 1, 5, 3});
  EXPECT_EQ(f.current(), (std::vector<VertexId>{1, 3, 5}));
  EXPECT_FALSE(f.empty());
}

TEST(Frontier, AdvanceMovesScheduledSetAscending) {
  Frontier f(100);
  f.schedule(42);
  f.schedule(7);
  f.schedule(42);  // duplicate
  f.advance();
  EXPECT_EQ(f.current(), (std::vector<VertexId>{7, 42}));
  f.advance();
  EXPECT_TRUE(f.empty());
}

TEST(ConflictTracer, DetectsReadAfterWrite) {
  ConflictTracer t(2);
  t.on_write(0, /*writer=*/1, /*iter=*/0, 0);
  t.on_read(0, /*reader=*/2, /*iter=*/0);
  EXPECT_EQ(t.report().read_write, 1u);
  EXPECT_EQ(t.report().write_write, 0u);
}

TEST(ConflictTracer, DetectsWriteAfterRead) {
  ConflictTracer t(2);
  t.on_read(0, 2, 0);
  t.on_write(0, 1, 0, 0);
  EXPECT_EQ(t.report().read_write, 1u);
}

TEST(ConflictTracer, DetectsWriteWrite) {
  ConflictTracer t(2);
  t.on_write(0, 1, 0, 0);
  t.on_write(0, 2, 0, 0);
  EXPECT_EQ(t.report().write_write, 1u);
}

TEST(ConflictTracer, IgnoresCrossIterationAndSelfAccess) {
  ConflictTracer t(2);
  t.on_write(0, 1, 0, 0);
  t.on_read(0, 2, 1);  // different iteration: no conflict
  t.on_write(1, 3, 2, 0);
  t.on_read(1, 3, 2);  // same vertex: gather+scatter of one update
  t.on_write(1, 3, 2, 0);
  EXPECT_EQ(t.report().read_write, 0u);
  EXPECT_EQ(t.report().write_write, 0u);
}

TEST(Coloring, ChainIsTwoColorable) {
  const Graph g = Graph::build(10, gen::chain(10));
  const Coloring c = greedy_color(g);
  EXPECT_EQ(c.num_colors, 2u);
  EXPECT_TRUE(is_proper_coloring(g, c));
}

TEST(Coloring, CompleteGraphNeedsNColors) {
  const Graph g = Graph::build(5, gen::complete(5));
  const Coloring c = greedy_color(g);
  EXPECT_EQ(c.num_colors, 5u);
  EXPECT_TRUE(is_proper_coloring(g, c));
}

TEST(Coloring, ProperOnSkewedRandomGraph) {
  const Graph g = Graph::build(256, gen::rmat(256, 2048, 3));
  const Coloring c = greedy_color(g);
  EXPECT_TRUE(is_proper_coloring(g, c));
  EXPECT_GE(c.num_colors, 2u);
}

// --- Semantics: Gauss–Seidel vs BSP iteration counts -----------------------
//
// WCC on a directed chain with all vertices initially scheduled:
//   * asynchronous (GS) execution in ascending label order propagates label 0
//     through the whole chain within the FIRST iteration (immediate
//     visibility), needing O(1) iterations overall;
//   * synchronous (BSP) execution moves the label one hop per iteration,
//     needing O(n) iterations.
// This is the paper's Section I contrast ("synchronous model generally needs
// to conduct more iterations than asynchronous model").

constexpr VertexId kChainLen = 64;

TEST(EngineSemantics, GaussSeidelPropagatesWithinIteration) {
  const Graph g = Graph::build(kChainLen, gen::chain(kChainLen));
  WccProgram prog;
  EdgeDataArray<WccProgram::EdgeData> edges(g.num_edges());
  prog.init(g, edges);
  const EngineResult r = run_deterministic(g, prog, edges);
  EXPECT_TRUE(r.converged);
  EXPECT_LE(r.iterations, 3u);
  for (const auto label : prog.labels()) EXPECT_EQ(label, 0u);
}

TEST(EngineSemantics, BspPropagatesOneHopPerIteration) {
  const Graph g = Graph::build(kChainLen, gen::chain(kChainLen));
  WccProgram prog;
  EdgeDataArray<WccProgram::EdgeData> edges(g.num_edges());
  prog.init(g, edges);
  const EngineResult r = run_bsp(g, prog, edges);
  EXPECT_TRUE(r.converged);
  EXPECT_GE(r.iterations, static_cast<std::size_t>(kChainLen) - 2);
  for (const auto label : prog.labels()) EXPECT_EQ(label, 0u);
}

TEST(EngineSemantics, BspReadsDoNotSeeSameIterationWrites) {
  // Directed edge 1 -> 0: ascending GS processes f(0) BEFORE f(1), so in GS
  // vertex 0 learns label 0 only via its own update; the interesting probe is
  // 0 -> 1 reversed. Build 2-chain 0 <- 1 (edge (1,0)): in BSP, f(0) writes
  // nothing; f(1) reads edge (1,0) and writes it with label... use labels.
  const Graph g = Graph::build(2, {{1, 0}});
  WccProgram prog;
  EdgeDataArray<WccProgram::EdgeData> edges(g.num_edges());
  prog.init(g, edges);
  const EngineResult r = run_bsp(g, prog, edges);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(prog.labels()[0], 0u);
  EXPECT_EQ(prog.labels()[1], 0u);
}

TEST(EngineSemantics, DeterministicEngineCountsUpdates) {
  const Graph g = Graph::build(4, gen::chain(4));
  BfsProgram prog(0);
  EdgeDataArray<BfsProgram::EdgeData> edges(g.num_edges());
  prog.init(g, edges);
  const EngineResult r = run_deterministic(g, prog, edges);
  EXPECT_TRUE(r.converged);
  EXPECT_GT(r.updates, 0u);
  EXPECT_GE(r.seconds, 0.0);
}

TEST(EngineSemantics, MaxIterationCapReportsNotConverged) {
  const Graph g = Graph::build(kChainLen, gen::chain(kChainLen));
  WccProgram prog;
  EdgeDataArray<WccProgram::EdgeData> edges(g.num_edges());
  prog.init(g, edges);
  const EngineResult r = run_bsp(g, prog, edges, /*max_iterations=*/3);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.iterations, 3u);
}

// --- Chromatic scheduler ----------------------------------------------------

TEST(Chromatic, MatchesDeterministicResultOnWcc) {
  const Graph g = Graph::build(512, gen::rmat(512, 4096, 17));
  const Coloring coloring = greedy_color(g);
  ASSERT_TRUE(is_proper_coloring(g, coloring));

  WccProgram de;
  EdgeDataArray<WccProgram::EdgeData> de_edges(g.num_edges());
  de.init(g, de_edges);
  ASSERT_TRUE(run_deterministic(g, de, de_edges).converged);

  for (const std::size_t threads : {1u, 2u, 4u}) {
    WccProgram ch;
    EdgeDataArray<WccProgram::EdgeData> ch_edges(g.num_edges());
    ch.init(g, ch_edges);
    EngineOptions opts;
    opts.num_threads = threads;
    const EngineResult r = run_chromatic(g, ch, ch_edges, coloring, opts);
    EXPECT_TRUE(r.converged);
    EXPECT_EQ(ch.labels(), de.labels()) << "threads=" << threads;
  }
}

TEST(Chromatic, RunsAreDeterministicAcrossThreadCounts) {
  const Graph g = Graph::build(256, gen::erdos_renyi(256, 1500, 5));
  const Coloring coloring = greedy_color(g);

  std::vector<std::uint32_t> first;
  for (const std::size_t threads : {1u, 3u, 4u}) {
    WccProgram prog;
    EdgeDataArray<WccProgram::EdgeData> edges(g.num_edges());
    prog.init(g, edges);
    EngineOptions opts;
    opts.num_threads = threads;
    run_chromatic(g, prog, edges, coloring, opts);
    if (first.empty()) {
      first = prog.labels();
    } else {
      EXPECT_EQ(prog.labels(), first) << "threads=" << threads;
    }
  }
}

}  // namespace
}  // namespace ndg
