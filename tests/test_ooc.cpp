// Out-of-core engine tests: shard planning invariants, the disk store's
// window I/O, and — the headline — bit-identical results with the in-memory
// deterministic engine under real file-backed sliding-window execution.

#include <gtest/gtest.h>

#include <filesystem>

#include "algorithms/bfs.hpp"
#include "algorithms/pagerank.hpp"
#include "algorithms/reference/references.hpp"
#include "algorithms/sssp.hpp"
#include "algorithms/wcc.hpp"
#include "engine/deterministic.hpp"
#include "graph/generators.hpp"
#include "ooc/ooc_engine.hpp"

namespace ndg {
namespace {

std::string fresh_dir(const char* name) {
  const std::string dir = testing::TempDir() + "/ndg_ooc_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

TEST(ShardPlan, ShardsPartitionTheEdgeSet) {
  const Graph g = Graph::build(300, gen::rmat(300, 2000, 44));
  const ShardPlan plan = make_shard_plan(g, 4);
  std::vector<bool> seen(g.num_edges(), false);
  for (std::size_t s = 0; s < plan.num_shards(); ++s) {
    for (const EdgeId e : plan.shard_edges[s]) {
      EXPECT_FALSE(seen[e]);
      seen[e] = true;
      // Membership rule: target in interval s.
      EXPECT_EQ(plan.intervals.interval_of(g.edge_target(e)), s);
    }
    EXPECT_TRUE(std::is_sorted(plan.shard_edges[s].begin(),
                               plan.shard_edges[s].end()));
  }
  for (EdgeId e = 0; e < g.num_edges(); ++e) EXPECT_TRUE(seen[e]);
}

TEST(ShardPlan, WindowsTileEachShardBySourceInterval) {
  const Graph g = Graph::build(200, gen::erdos_renyi(200, 1500, 9));
  const ShardPlan plan = make_shard_plan(g, 5);
  for (std::size_t s = 0; s < 5; ++s) {
    std::size_t expect_begin = 0;
    for (std::size_t j = 0; j < 5; ++j) {
      const auto [b, e] = plan.windows[s][j];
      EXPECT_EQ(b, expect_begin);
      expect_begin = e;
      for (std::size_t k = b; k < e; ++k) {
        EXPECT_EQ(plan.intervals.interval_of(
                      g.edge_source(plan.shard_edges[s][k])),
                  j);
      }
    }
    EXPECT_EQ(expect_begin, plan.shard_edges[s].size());
  }
}

TEST(ShardPlan, PositionInShardInverts) {
  const Graph g = Graph::build(100, gen::rmat(100, 600, 2));
  const ShardPlan plan = make_shard_plan(g, 3);
  for (std::size_t s = 0; s < 3; ++s) {
    for (std::size_t k = 0; k < plan.shard_edges[s].size(); ++k) {
      EXPECT_EQ(plan.position_in_shard(s, plan.shard_edges[s][k]), k);
    }
  }
}

TEST(ShardStore, RoundTripAndWindowUpdates) {
  const Graph g = Graph::build(64, gen::cycle(64));
  const ShardPlan plan = make_shard_plan(g, 4);
  ShardStore store(fresh_dir("roundtrip"), plan);

  std::vector<std::uint64_t> values(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) values[e] = 1000 + e;
  store.write_initial(values);
  EXPECT_EQ(store.bytes_on_disk(), g.num_edges() * sizeof(std::uint64_t));

  // Whole-file round trip.
  std::vector<std::uint64_t> back(g.num_edges(), 0);
  store.read_back(back);
  EXPECT_EQ(back, values);

  // Window update: rewrite one window of shard 0 and check only it changed.
  std::size_t target_shard = 0;
  std::size_t target_window = 0;
  for (std::size_t s = 0; s < 4 && target_window == 0; ++s) {
    for (std::size_t j = 0; j < 4; ++j) {
      const auto [b, e] = plan.windows[s][j];
      if (e - b >= 2) {
        target_shard = s;
        target_window = j;
        break;
      }
    }
  }
  const auto [wb, we] = plan.windows[target_shard][target_window];
  std::vector<std::uint64_t> patch(we - wb, 7777);
  store.store_window(target_shard, wb, patch);
  const auto win = store.load_window(target_shard, wb, we);
  EXPECT_EQ(win, patch);
  store.read_back(back);
  std::size_t changed = 0;
  for (EdgeId e = 0; e < g.num_edges(); ++e) changed += back[e] != values[e];
  EXPECT_EQ(changed, we - wb);
}

template <typename Program, typename Seed>
void expect_bitwise_equal_to_in_memory(const Graph& g, Seed make_prog,
                                       const char* tag) {
  Program in_mem = make_prog();
  EdgeDataArray<typename Program::EdgeData> mem_edges(g.num_edges());
  in_mem.init(g, mem_edges);
  const EngineResult rm = run_deterministic(g, in_mem, mem_edges);

  Program ooc = make_prog();
  EdgeDataArray<typename Program::EdgeData> ooc_edges(g.num_edges());
  ooc.init(g, ooc_edges);
  const ShardPlan plan = make_shard_plan(g, 4);
  const OocResult ro =
      run_ooc_deterministic(g, ooc, ooc_edges, plan, fresh_dir(tag));

  EXPECT_EQ(rm.converged, ro.converged) << tag;
  EXPECT_EQ(rm.iterations, ro.iterations) << tag;
  EXPECT_EQ(rm.updates, ro.updates) << tag;
  EXPECT_GT(ro.bytes_read, 0u) << tag;
  EXPECT_GT(ro.bytes_written, 0u) << tag;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    ASSERT_EQ(mem_edges.slots()[e].load(), ooc_edges.slots()[e].load())
        << tag << " edge " << e;
  }
}

TEST(OocEngine, WccBitwiseEqualToInMemory) {
  const Graph g = Graph::build(400, gen::rmat(400, 2600, 21));
  expect_bitwise_equal_to_in_memory<WccProgram>(
      g, [] { return WccProgram(); }, "wcc");
}

TEST(OocEngine, PageRankBitwiseEqualToInMemory) {
  const Graph g = Graph::build(300, gen::erdos_renyi(300, 1800, 5));
  expect_bitwise_equal_to_in_memory<PageRankProgram>(
      g, [] { return PageRankProgram(1e-3f); }, "pagerank");
}

TEST(OocEngine, SsspBitwiseEqualToInMemory) {
  const Graph g = Graph::build(300, gen::rmat(300, 1800, 33));
  expect_bitwise_equal_to_in_memory<SsspProgram>(
      g, [] { return SsspProgram(0, 5); }, "sssp");
}

TEST(OocEngine, ResultsMatchReferences) {
  const Graph g = Graph::build(350, gen::rmat(350, 2200, 8));
  WccProgram prog;
  EdgeDataArray<WccProgram::EdgeData> edges(g.num_edges());
  prog.init(g, edges);
  const ShardPlan plan = make_shard_plan(g, 6);
  const OocResult r =
      run_ooc_deterministic(g, prog, edges, plan, fresh_dir("refs"));
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(prog.labels(), ref::wcc(g));
}

TEST(OocEngine, SelectiveSchedulingSkipsIdleIntervals) {
  // BFS from one corner of a long chain: most intervals are inactive in most
  // iterations, so the engine must skip far more interval visits than it
  // processes — GraphChi's selective-scheduling I/O win.
  const Graph g = Graph::build(512, gen::chain(512));
  BfsProgram prog(0);
  EdgeDataArray<BfsProgram::EdgeData> edges(g.num_edges());
  prog.init(g, edges);
  const ShardPlan plan = make_shard_plan(g, 8);
  const OocResult r =
      run_ooc_deterministic(g, prog, edges, plan, fresh_dir("skip"));
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(prog.levels(), ref::bfs(g, 0));
  EXPECT_GT(r.intervals_skipped, r.intervals_processed);
}

TEST(OocEngine, SingleShardDegeneratesGracefully) {
  const Graph g = Graph::build(64, gen::cycle(64));
  WccProgram prog;
  EdgeDataArray<WccProgram::EdgeData> edges(g.num_edges());
  prog.init(g, edges);
  const ShardPlan plan = make_shard_plan(g, 1);
  const OocResult r =
      run_ooc_deterministic(g, prog, edges, plan, fresh_dir("one"));
  EXPECT_TRUE(r.converged);
  for (const auto l : prog.labels()) EXPECT_EQ(l, 0u);
}

}  // namespace
}  // namespace ndg
