// End-to-end tests for the multiplexed ndg_serve socket server: two
// concurrent clients interleaving mutate/query/stats with strict per-client
// reply order, quit scoped to its own connection, --live-queries answering a
// mid-recompute query with "quiescent":false, and a bin1-upgraded client
// sharing one server (and one MutationLog) with a newline-JSON client.
//
// The server binary path arrives via the NDG_SERVE_BIN compile definition
// (tools/CMakeLists.txt); each test forks/execs its own server on a fresh
// socket under mkdtemp(/tmp/...) — /tmp because sun_path caps out around
// 108 bytes and build trees routinely blow past that.

#include <gtest/gtest.h>

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "dyn/wire.hpp"

namespace {

using Clock = std::chrono::steady_clock;

struct Server {
  pid_t pid = -1;
  std::string dir;     // mkdtemp scratch, removed in stop()
  std::string socket;  // dir + "/serve.sock"

  void start(const std::vector<std::string>& extra_args) {
    char tmpl[] = "/tmp/ndg_serve_test_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir = tmpl;
    socket = dir + "/serve.sock";
    std::vector<std::string> args = {NDG_SERVE_BIN, "--socket=" + socket};
    args.insert(args.end(), extra_args.begin(), extra_args.end());
    pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      std::vector<char*> argv;
      argv.reserve(args.size() + 1);
      for (auto& a : args) argv.push_back(a.data());
      argv.push_back(nullptr);
      ::execv(argv[0], argv.data());
      _exit(127);  // exec failed
    }
  }

  [[nodiscard]] bool alive() const {
    return pid > 0 && ::waitpid(pid, nullptr, WNOHANG) == 0;
  }

  /// Reaps a server expected to exit on its own; returns its wait status.
  int join(int timeout_ms = 10000) {
    const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
    int status = -1;
    while (Clock::now() < deadline) {
      const pid_t r = ::waitpid(pid, &status, WNOHANG);
      if (r == pid) {
        pid = -1;
        return status;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return -1;  // still running
  }

  void stop() {
    if (pid > 0) {
      ::kill(pid, SIGKILL);
      ::waitpid(pid, nullptr, 0);
      pid = -1;
    }
    if (!socket.empty()) ::unlink(socket.c_str());
    if (!dir.empty()) ::rmdir(dir.c_str());
  }

  ~Server() { stop(); }
};

/// Blocking line-oriented socket client with a receive deadline.
class Client {
 public:
  void connect(const std::string& path, int timeout_ms = 5000) {
    const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
    while (Clock::now() < deadline) {
      fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
      ASSERT_GE(fd_, 0);
      sockaddr_un addr{};
      addr.sun_family = AF_UNIX;
      std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
      if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                    sizeof(addr)) == 0) {
        return;
      }
      ::close(fd_);
      fd_ = -1;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    FAIL() << "could not connect to " << path;
  }

  void send(const std::string& payload) {
    std::size_t off = 0;
    while (off < payload.size()) {
      const ssize_t n =
          ::write(fd_, payload.data() + off, payload.size() - off);
      if (n < 0 && errno == EINTR) continue;
      ASSERT_GT(n, 0) << "write failed: " << std::strerror(errno);
      off += static_cast<std::size_t>(n);
    }
  }

  void send_line(const std::string& line) { send(line + "\n"); }

  /// Next full reply line; fails the test on timeout or early EOF.
  std::string read_line(int timeout_ms = 15000) {
    const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
    for (;;) {
      const std::size_t nl = buf_.find('\n');
      if (nl != std::string::npos) {
        const std::string line = buf_.substr(0, nl);
        buf_.erase(0, nl + 1);
        return line;
      }
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - Clock::now());
      if (left.count() <= 0) {
        ADD_FAILURE() << "timed out waiting for a reply line";
        return {};
      }
      pollfd p{fd_, POLLIN, 0};
      const int rc = ::poll(&p, 1, static_cast<int>(left.count()));
      if (rc < 0 && errno == EINTR) continue;
      if (rc <= 0) {
        ADD_FAILURE() << "timed out waiting for a reply line";
        return {};
      }
      char chunk[4096];
      const ssize_t n = ::read(fd_, chunk, sizeof chunk);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) {
        ADD_FAILURE() << "connection closed while awaiting a reply";
        return {};
      }
      buf_.append(chunk, static_cast<std::size_t>(n));
    }
  }

  void send_frame(ndg::dyn::FrameType type, const std::string& payload) {
    std::string buf;
    ndg::dyn::append_frame(buf, type, payload);
    send(buf);
  }

  /// Next bin1 frame after the connection upgraded; fails on timeout,
  /// early EOF, or corrupt framing.
  ndg::dyn::Frame read_frame(int timeout_ms = 15000) {
    const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
    for (;;) {
      ndg::dyn::Frame f;
      std::string err;
      const auto st = ndg::dyn::extract_frame(buf_, f, &err);
      if (st == ndg::dyn::FrameParse::kOk) return f;
      if (st == ndg::dyn::FrameParse::kBad) {
        ADD_FAILURE() << "corrupt frame from server: " << err;
        return f;
      }
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - Clock::now());
      if (left.count() <= 0) {
        ADD_FAILURE() << "timed out waiting for a frame";
        return f;
      }
      pollfd p{fd_, POLLIN, 0};
      const int rc = ::poll(&p, 1, static_cast<int>(left.count()));
      if (rc < 0 && errno == EINTR) continue;
      if (rc <= 0) {
        ADD_FAILURE() << "timed out waiting for a frame";
        return f;
      }
      char chunk[4096];
      const ssize_t n = ::read(fd_, chunk, sizeof chunk);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) {
        ADD_FAILURE() << "connection closed while awaiting a frame";
        return f;
      }
      buf_.append(chunk, static_cast<std::size_t>(n));
    }
  }

  /// True once the server closes this connection (draining after bye).
  bool wait_eof(int timeout_ms = 5000) {
    const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
    for (;;) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - Clock::now());
      if (left.count() <= 0) return false;
      pollfd p{fd_, POLLIN, 0};
      const int rc = ::poll(&p, 1, static_cast<int>(left.count()));
      if (rc < 0 && errno == EINTR) continue;
      if (rc <= 0) return false;
      char chunk[4096];
      const ssize_t n = ::read(fd_, chunk, sizeof chunk);
      if (n < 0 && errno == EINTR) continue;
      if (n == 0) return true;
      if (n < 0) return false;
      // Stray bytes after bye would be a protocol violation.
      ADD_FAILURE() << "unexpected bytes after quit: "
                    << std::string(chunk, static_cast<std::size_t>(n));
      return false;
    }
  }

  void close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  ~Client() { close(); }

 private:
  int fd_ = -1;
  std::string buf_;
};

bool contains(const std::string& s, const std::string& needle) {
  return s.find(needle) != std::string::npos;
}

// Two clients on one SSSP server: sequenced mutations from both, then a
// pipelined burst from client A whose replies must come back in send order,
// then client B querying the same epoch. quit disconnects only its issuer.
TEST(ServeMultiClient, InterleavedClientsKeepPerClientReplyOrder) {
  Server server;
  server.start({"--algo=sssp", "--kind=chain", "--vertices=300",
                "--gate=theorem2", "--engine=ne", "--threads=2"});
  Client a;
  Client b;
  a.connect(server.socket);
  b.connect(server.socket);

  // Each connection gets its own greeting.
  EXPECT_TRUE(contains(a.read_line(), "\"ready\":true"));
  EXPECT_TRUE(contains(b.read_line(), "\"ready\":true"));

  // Sequenced mutations (reply read before the next client sends) make the
  // shared log's pending counter deterministic: A appends first, then B.
  a.send_line(R"({"op":"mutate","kind":"insert","src":0,"dst":2,"weight":3})");
  EXPECT_TRUE(contains(a.read_line(), "\"ok\":true,\"pending\":1"));
  b.send_line(
      R"({"op":"mutate","kind":"insert","src":0,"dst":102,"weight":3})");
  EXPECT_TRUE(contains(b.read_line(), "\"ok\":true,\"pending\":2"));

  // Pipelined burst from A: recompute + two queries + a parse error + quit,
  // written as one blob. Replies must arrive strictly in send order even
  // though the recompute runs on the worker thread.
  a.send(
      "{\"op\":\"recompute\"}\n"
      "{\"op\":\"query\",\"vertex\":2}\n"
      "{\"op\":\"query\",\"vertex\":102}\n"
      "{\"op\":\"query\",\"vertex\":xyz}\n"
      "{\"op\":\"quit\"}\n");
  const std::string rec = a.read_line();
  EXPECT_TRUE(contains(rec, "\"epoch\":1,\"warm\":true")) << rec;
  EXPECT_TRUE(contains(rec, "\"applied\":2,\"rejected\":0")) << rec;
  // Chain topology pins the values: the only path to the shortcut targets
  // is the inserted weight-3 edge itself.
  EXPECT_TRUE(contains(a.read_line(), "\"vertex\":2,\"value\":3,\"epoch\":1"));
  EXPECT_TRUE(
      contains(a.read_line(), "\"vertex\":102,\"value\":3,\"epoch\":1"));
  const std::string bad = a.read_line();
  EXPECT_TRUE(contains(bad, "\"ok\":false")) << bad;
  EXPECT_TRUE(contains(bad, "bad value for key \\\"vertex\\\"")) << bad;
  EXPECT_TRUE(contains(a.read_line(), "\"bye\":true"));
  EXPECT_TRUE(a.wait_eof()) << "server should close A after its quit";

  // B rides the same server instance: A's quit must not have touched it.
  b.send_line(R"({"op":"query","vertex":2})");
  EXPECT_TRUE(contains(b.read_line(), "\"vertex\":2,\"value\":3,\"epoch\":1"));
  b.send_line(R"({"op":"stats"})");
  const std::string stats = b.read_line();
  EXPECT_TRUE(contains(stats, "\"total_mutations\":2")) << stats;
  EXPECT_TRUE(contains(stats, "\"warm_runs\":1")) << stats;
  b.send_line(R"({"op":"quit"})");
  EXPECT_TRUE(contains(b.read_line(), "\"bye\":true"));
  EXPECT_TRUE(b.wait_eof());

  // Without --allow-shutdown the server outlives every quit: a fresh client
  // still gets a greeting.
  EXPECT_TRUE(server.alive());
  Client c;
  c.connect(server.socket);
  EXPECT_TRUE(contains(c.read_line(), "\"ready\":true"));
  c.close();
  server.stop();
}

// One server, two protocols: client B upgrades to bin1 via the hello
// handshake (pipelined with binary frames in the same write) while client A
// stays on newline JSON. Both feed the same MutationLog and read the same
// epoch; B's malformed frame draws a kError without desyncing the stream,
// and the stats op reports one connection per protocol.
TEST(ServeMultiClient, BinaryAndJsonClientsShareOneServer) {
  namespace dyn = ndg::dyn;
  Server server;
  server.start({"--algo=sssp", "--kind=chain", "--vertices=300",
                "--gate=theorem2", "--engine=ne", "--threads=2"});
  Client a;
  Client b;
  a.connect(server.socket);
  b.connect(server.socket);
  EXPECT_TRUE(contains(a.read_line(), "\"ready\":true"));
  EXPECT_TRUE(contains(b.read_line(), "\"ready\":true"));

  // Hello + the first binary frames in ONE write: the upgrade must split
  // the line from the frame bytes that follow it in the same segment.
  std::vector<dyn::Mutation> muts(2);
  muts[0].kind = dyn::MutationKind::kInsertEdge;
  muts[0].src = 0;
  muts[0].dst = 2;
  muts[0].weight = 3.0f;
  muts[1].kind = dyn::MutationKind::kInsertEdge;
  muts[1].src = 0;
  muts[1].dst = 102;
  muts[1].weight = 3.0f;
  std::string blob = "{\"op\":\"hello\",\"proto\":\"bin1\"}\n";
  dyn::append_frame(blob, dyn::FrameType::kMBatch, dyn::encode_mbatch(muts));
  dyn::append_frame(blob, dyn::FrameType::kRecompute, "");
  dyn::append_frame(blob, dyn::FrameType::kQuery, dyn::encode_query(2));
  b.send(blob);
  const std::string hello = b.read_line();
  EXPECT_TRUE(contains(hello, "\"ok\":true")) << hello;
  EXPECT_TRUE(contains(hello, "\"proto\":\"bin1\"")) << hello;

  const dyn::Frame ack = b.read_frame();
  ASSERT_EQ(ack.type, dyn::FrameType::kMBatchAck);
  std::uint32_t accepted = 0;
  std::uint64_t pending = 0;
  std::string err;
  ASSERT_TRUE(dyn::decode_mbatch_ack(ack.payload, accepted, pending, &err))
      << err;
  EXPECT_EQ(accepted, 2u);
  EXPECT_EQ(pending, 2u);

  const dyn::Frame rec = b.read_frame();
  ASSERT_EQ(rec.type, dyn::FrameType::kRecomputeReply);
  dyn::RecomputeReplyBin rr;
  ASSERT_TRUE(dyn::decode_recompute_reply(rec.payload, rr, &err)) << err;
  EXPECT_EQ(rr.epoch, 1u);
  EXPECT_EQ(rr.applied, 2u);
  EXPECT_EQ(rr.rejected, 0u);
  EXPECT_TRUE(rr.converged);

  // Chain topology pins the shortcut value to the inserted weight-3 edge.
  const dyn::Frame q = b.read_frame();
  ASSERT_EQ(q.type, dyn::FrameType::kQueryReply);
  dyn::QueryReplyBin qr;
  ASSERT_TRUE(dyn::decode_query_reply(q.payload, qr, &err)) << err;
  EXPECT_EQ(qr.vertex, 2u);
  EXPECT_EQ(qr.value, 3.0);
  EXPECT_EQ(qr.epoch, 1u);

  // The JSON client reads the exact same epoch the binary client built.
  a.send_line(R"({"op":"query","vertex":102})");
  EXPECT_TRUE(
      contains(a.read_line(), "\"vertex\":102,\"value\":3,\"epoch\":1"));
  a.send_line(R"({"op":"stats"})");
  const std::string stats = a.read_line();
  EXPECT_TRUE(contains(stats, "\"conns_json\":1")) << stats;
  EXPECT_TRUE(contains(stats, "\"conns_bin\":1")) << stats;
  EXPECT_TRUE(contains(stats, "\"parse_errors\":0")) << stats;

  // A malformed payload (truncated mutate) draws a kError frame and the
  // connection keeps working — framing never desyncs on payload errors.
  b.send_frame(dyn::FrameType::kMutate, "abc");
  const dyn::Frame bad = b.read_frame();
  EXPECT_EQ(bad.type, dyn::FrameType::kError);
  EXPECT_FALSE(bad.payload.empty());
  b.send_frame(dyn::FrameType::kQuery, dyn::encode_query(102));
  const dyn::Frame q2 = b.read_frame();
  ASSERT_EQ(q2.type, dyn::FrameType::kQueryReply);
  ASSERT_TRUE(dyn::decode_query_reply(q2.payload, qr, &err)) << err;
  EXPECT_EQ(qr.vertex, 102u);
  EXPECT_EQ(qr.value, 3.0);

  // The binary stats frame rides kJson and now counts B's parse error.
  b.send_frame(dyn::FrameType::kStats, "");
  const dyn::Frame st = b.read_frame();
  ASSERT_EQ(st.type, dyn::FrameType::kJson);
  EXPECT_TRUE(contains(st.payload, "\"parse_errors\":1")) << st.payload;
  EXPECT_TRUE(contains(st.payload, "\"total_mutations\":2")) << st.payload;

  // kQuit answers kBye and closes only B's connection.
  b.send_frame(dyn::FrameType::kQuit, "");
  EXPECT_EQ(b.read_frame().type, dyn::FrameType::kBye);
  EXPECT_TRUE(b.wait_eof());
  EXPECT_TRUE(server.alive());
  a.send_line(R"({"op":"quit"})");
  EXPECT_TRUE(contains(a.read_line(), "\"bye\":true"));
  server.stop();
}

// --live-queries: while client A's recompute is inside the (artificially
// held) engine run, client B's queries are answered from the live edge
// arrays with "quiescent":false and the in-flight epoch; after the epoch
// lands they return to "quiescent":true. --allow-shutdown then lets B stop
// the whole server cleanly.
TEST(ServeMultiClient, LiveQueriesAnswerMidRecompute) {
  Server server;
  server.start({"--algo=pagerank", "--kind=rmat", "--vertices=4000",
                "--gate=analyze", "--threads=2", "--live-queries",
                "--allow-shutdown", "--epoch-hold-ms=600"});
  Client a;
  Client b;
  a.connect(server.socket);
  b.connect(server.socket);
  EXPECT_TRUE(contains(a.read_line(), "\"verdict\":\"theorem-1\""));
  EXPECT_TRUE(contains(b.read_line(), "\"ready\":true"));

  // Quiescent query before any epoch: labeled quiescent:true, epoch 0.
  b.send_line(R"({"op":"query","vertex":1})");
  EXPECT_TRUE(
      contains(b.read_line(), "\"quiescent\":true,\"epoch\":0"));

  a.send(
      "{\"op\":\"mutate\",\"kind\":\"insert\",\"src\":1,\"dst\":7,"
      "\"weight\":1}\n"
      "{\"op\":\"mutate\",\"kind\":\"insert\",\"src\":7,\"dst\":1,"
      "\"weight\":1}\n"
      "{\"op\":\"recompute\"}\n");
  EXPECT_TRUE(contains(a.read_line(), "\"pending\":1"));
  EXPECT_TRUE(contains(a.read_line(), "\"pending\":2"));

  // Poll with B until a reply lands inside the engine-run window. The
  // 600ms post-convergence hold guarantees the window exists; each reply is
  // still answered in order, so one send -> one read.
  bool saw_live = false;
  const auto deadline = Clock::now() + std::chrono::seconds(20);
  while (Clock::now() < deadline) {
    b.send_line(R"({"op":"query","vertex":1})");
    const std::string r = b.read_line();
    ASSERT_TRUE(contains(r, "\"ok\":true")) << r;
    ASSERT_TRUE(contains(r, "\"quiescent\":")) << r;
    if (contains(r, "\"quiescent\":false")) {
      EXPECT_TRUE(contains(r, "\"epoch\":1")) << r;
      saw_live = true;
      break;
    }
  }
  EXPECT_TRUE(saw_live)
      << "never observed a \"quiescent\":false reply mid-recompute";

  // A's recompute reply arrives once the epoch lands.
  const std::string rec = a.read_line();
  EXPECT_TRUE(contains(rec, "\"epoch\":1")) << rec;
  EXPECT_TRUE(contains(rec, "\"converged\":true")) << rec;

  // Back to the cached-vector path at the quiescent point.
  b.send_line(R"({"op":"query","vertex":1})");
  EXPECT_TRUE(contains(b.read_line(), "\"quiescent\":true,\"epoch\":1"));

  // --allow-shutdown: B's quit stops the whole server, exit code 0.
  b.send_line(R"({"op":"quit"})");
  EXPECT_TRUE(contains(b.read_line(), "\"bye\":true"));
  const int status = server.join();
  ASSERT_NE(status, -1) << "server did not exit after sanctioned quit";
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
      << "status=" << status;
  server.stop();
}

}  // namespace
