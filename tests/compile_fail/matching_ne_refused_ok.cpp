// Positive control for matching_ne_eligible_fail.cpp: the refusal verdicts
// themselves are stable compile-time facts — matching and greedy coloring
// are kNotProven (WW possible, no monotone claim), while MIS (same dual-slot
// edges, but monotone) earns Theorem 2. If this TU ever stops compiling, the
// WILL_FAIL twin is failing for the wrong reason and proves nothing.
#include "algorithms/greedy_coloring.hpp"
#include "algorithms/matching.hpp"
#include "algorithms/mis.hpp"
#include "analysis/static_eligibility.hpp"

static_assert(ndg::StaticEligibility<ndg::MatchingProgram>::kVerdict ==
              ndg::EligibilityVerdict::kNotProven);
static_assert(ndg::StaticEligibility<ndg::MatchingProgram>::kWwPossible);
static_assert(ndg::StaticEligibility<ndg::GreedyColoringProgram>::kVerdict ==
              ndg::EligibilityVerdict::kNotProven);
static_assert(ndg::StaticEligibility<ndg::GreedyColoringProgram>::kWwPossible);
static_assert(ndg::StaticEligibility<ndg::MisProgram>::kVerdict ==
              ndg::EligibilityVerdict::kTheorem2);

int main() { return 0; }
