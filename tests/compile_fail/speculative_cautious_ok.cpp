// Positive control for speculative_noncautious_fail.cpp: run_speculative
// instantiates fine for a CautiousProgram (MIS — the bridge case that is
// both Theorem-2 eligible and cautious). If this TU ever stops compiling,
// the WILL_FAIL twin is failing for the wrong reason and proves nothing.
#include "algorithms/mis.hpp"
#include "engine/speculative.hpp"

static_assert(ndg::CautiousProgram<ndg::MisProgram>);

int main() {
  ndg::Graph g = ndg::Graph::build(2, {{0, 1}});
  ndg::MisProgram prog;
  ndg::EdgeDataArray<ndg::MisProgram::EdgeData> edges(g.num_edges());
  prog.init(g, edges);
  ndg::EngineOptions opts;
  (void)ndg::run_speculative(g, prog, edges, opts);
  return 0;
}
