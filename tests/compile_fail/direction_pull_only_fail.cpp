// Compile-FAIL test (ctest WILL_FAIL, built with -fsyntax-only): statically
// selecting the push direction for a pull-only program — PageRank declares
// no kPushManifest, so its push verdict is kNotProven — must be rejected at
// compile time by assert_direction. The positive-control twin
// (direction_push_ok.cpp) proves the failure comes from the static_assert,
// not from an unrelated breakage in these headers.
#include "algorithms/pagerank.hpp"
#include "analysis/direction_eligibility.hpp"

int main() {
  ndg::assert_direction<ndg::PageRankProgram, ndg::Direction::kPush>();
  return 0;
}
