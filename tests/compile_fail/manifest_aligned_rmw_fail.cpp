// Compile-FAIL test (ctest WILL_FAIL, built with -fsyntax-only): pairing a
// manifest that declares RMW edge access with AlignedAccess — the paper's
// method (2), atomic loads/stores but no atomic read-modify-write — must be
// rejected at compile time by assert_manifest_policy. The positive-control
// twin (manifest_relaxed_rmw_ok.cpp) proves the failure comes from the
// static_assert, not from an unrelated breakage in these headers.
#include "algorithms/push_pagerank_atomic.hpp"
#include "analysis/static_eligibility.hpp"
#include "atomics/access_policy.hpp"

int main() {
  ndg::assert_manifest_policy<ndg::AtomicPushPageRankProgram,
                              ndg::AlignedAccess>();
  return 0;
}
