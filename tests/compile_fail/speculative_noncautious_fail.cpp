// Compile-FAIL test (ctest WILL_FAIL, built with -fsyntax-only): the
// rollback engine is constrained to CautiousProgram — PageRank has no
// plan/commit split, no LocalState, no kCautious, so instantiating
// run_speculative for it must be rejected by the concept. The positive
// control twin (speculative_cautious_ok.cpp) proves the failure comes from
// the constraint, not from an unrelated breakage in these headers.
#include "algorithms/pagerank.hpp"
#include "engine/speculative.hpp"

int main() {
  ndg::Graph g = ndg::Graph::build(2, {{0, 1}});
  ndg::PageRankProgram prog;
  ndg::EdgeDataArray<ndg::PageRankProgram::EdgeData> edges(g.num_edges());
  prog.init(g, edges);
  ndg::EngineOptions opts;
  (void)ndg::run_speculative(g, prog, edges, opts);  // constraint violation
  return 0;
}
