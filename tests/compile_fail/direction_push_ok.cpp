// Positive control for direction_pull_only_fail.cpp: the SAME assertion
// compiles fine for programs whose selected direction (or switchability) is
// statically proven. If this TU ever stops compiling, the WILL_FAIL twin is
// failing for the wrong reason and proves nothing.
#include "algorithms/bfs.hpp"
#include "algorithms/pagerank.hpp"
#include "algorithms/sssp.hpp"
#include "algorithms/wcc.hpp"
#include "analysis/direction_eligibility.hpp"

int main() {
  ndg::assert_direction<ndg::BfsProgram, ndg::Direction::kPull>();
  ndg::assert_direction<ndg::BfsProgram, ndg::Direction::kPush>();
  ndg::assert_direction<ndg::SsspProgram, ndg::Direction::kPush>();
  // Pull stays provable for pull-only programs; only push is refused.
  ndg::assert_direction<ndg::PageRankProgram, ndg::Direction::kPull>();
  // Per-iteration (and intra-iteration) switching: the full three-verdict
  // gate, including the cross-direction interference check.
  ndg::assert_switchable<ndg::BfsProgram>();
  ndg::assert_switchable<ndg::SsspProgram>();
  ndg::assert_switchable<ndg::WccProgram>();
  return 0;
}
