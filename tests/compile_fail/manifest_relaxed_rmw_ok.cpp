// Positive control for manifest_aligned_rmw_fail.cpp: the SAME program and
// the SAME assertion compile fine under a policy with genuine atomic RMW.
// If this TU ever stops compiling, the WILL_FAIL twin is failing for the
// wrong reason and proves nothing.
#include "algorithms/pagerank.hpp"
#include "algorithms/push_pagerank_atomic.hpp"
#include "analysis/static_eligibility.hpp"
#include "atomics/access_policy.hpp"

int main() {
  ndg::assert_manifest_policy<ndg::AtomicPushPageRankProgram,
                              ndg::RelaxedAtomicAccess>();
  ndg::assert_manifest_policy<ndg::AtomicPushPageRankProgram,
                              ndg::LockedAccess>();
  // A non-RMW manifest is compatible with every policy, aligned included.
  ndg::assert_manifest_policy<ndg::PageRankProgram, ndg::AlignedAccess>();
  return 0;
}
