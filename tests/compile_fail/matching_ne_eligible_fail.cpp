// Compile-FAIL test (ctest WILL_FAIL, built with -fsyntax-only): asserting
// that matching IS provably eligible for nondeterministic execution must
// fail — its manifest admits write-write conflicts with no monotone claim,
// so StaticEligibility refuses it (kNotProven). This pins the refusal at
// compile time: if someone "fixes" the verdict without fixing the algorithm,
// this test starts passing-to-compile and ctest flags it. The twin
// (matching_ne_refused_ok.cpp) asserts the refusal itself compiles.
#include "algorithms/matching.hpp"
#include "analysis/static_eligibility.hpp"

static_assert(
    ndg::StaticEligibility<ndg::MatchingProgram>::kVerdict !=
        ndg::EligibilityVerdict::kNotProven,
    "matching must NOT be provably eligible - this assert is meant to fire");

int main() { return 0; }
