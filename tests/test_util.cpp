// Unit tests for the utility substrate: PRNGs, stats, bitsets, barrier,
// static partitioning, CLI parsing, table formatting.

#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>
#include <thread>

#include "util/barrier.hpp"
#include "util/bitset.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/thread_team.hpp"

namespace ndg {
namespace {

TEST(Rng, SplitMixIsDeterministic) {
  SplitMix64 a(123);
  SplitMix64 b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Rng, XoshiroDoubleInUnitInterval) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NextBelowRespectsBound) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
  EXPECT_EQ(rng.next_below(0), 0u);
}

TEST(Rng, RangedDoubleRespectsBounds) {
  Xoshiro256 rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double(1.0, 10.0);
    EXPECT_GE(d, 1.0);
    EXPECT_LT(d, 10.0);
  }
}

TEST(Stats, MeanAndVariance) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Stats, SingleSampleHasZeroVariance) {
  RunningStats s;
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Stats, Percentile) {
  std::vector<double> v{5, 1, 4, 2, 3};
  EXPECT_DOUBLE_EQ(percentile(v, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
}

TEST(DenseBitset, SetTestResetCount) {
  DenseBitset b(130);
  EXPECT_FALSE(b.any());
  b.set(0);
  b.set(64);
  b.set(129);
  EXPECT_TRUE(b.test(0));
  EXPECT_TRUE(b.test(64));
  EXPECT_TRUE(b.test(129));
  EXPECT_FALSE(b.test(1));
  EXPECT_EQ(b.count(), 3u);
  b.reset(64);
  EXPECT_FALSE(b.test(64));
  EXPECT_EQ(b.count(), 2u);
}

TEST(DenseBitset, SetAllMasksTail) {
  DenseBitset b(70);
  b.set_all();
  EXPECT_EQ(b.count(), 70u);
}

TEST(DenseBitset, ForEachVisitsAscending) {
  DenseBitset b(200);
  b.set(5);
  b.set(63);
  b.set(64);
  b.set(199);
  std::vector<std::size_t> seen;
  b.for_each([&](std::size_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, (std::vector<std::size_t>{5, 63, 64, 199}));
}

TEST(AtomicBitset, SetReportsTransition) {
  AtomicBitset b(100);
  EXPECT_TRUE(b.set(42));
  EXPECT_FALSE(b.set(42));  // already set
  EXPECT_TRUE(b.test(42));
  EXPECT_EQ(b.count(), 1u);
  b.clear();
  EXPECT_EQ(b.count(), 0u);
}

TEST(AtomicBitset, ConcurrentSettersCountEachBitOnce) {
  constexpr std::size_t kBits = 4096;
  AtomicBitset b(kBits);
  std::atomic<std::size_t> transitions{0};
  run_team(4, [&](std::size_t) {
    std::size_t local = 0;
    for (std::size_t i = 0; i < kBits; ++i) {
      if (b.set(i)) ++local;
    }
    transitions.fetch_add(local);
  });
  EXPECT_EQ(static_cast<std::size_t>(transitions.load()), kBits);
  EXPECT_EQ(b.count(), kBits);
}

TEST(Barrier, RendezvousOrdersPhases) {
  constexpr std::size_t kThreads = 4;
  constexpr int kRounds = 50;
  SpinBarrier barrier(kThreads);
  std::atomic<int> counter{0};
  std::atomic<bool> failed{false};
  run_team(kThreads, [&](std::size_t) {
    bool sense = false;
    for (int r = 0; r < kRounds; ++r) {
      counter.fetch_add(1);
      barrier.arrive_and_wait(sense);
      // Between barriers every thread must observe the full round's count.
      if (counter.load() != kThreads * (r + 1)) failed.store(true);
      barrier.arrive_and_wait(sense);
    }
  });
  EXPECT_FALSE(failed.load());
}

TEST(StaticBlock, PartitionsExactlyAndContiguously) {
  for (const std::size_t n : {0u, 1u, 7u, 64u, 65u, 1000u}) {
    for (const std::size_t nt : {1u, 2u, 3u, 8u, 16u}) {
      std::size_t covered = 0;
      std::size_t prev_end = 0;
      for (std::size_t t = 0; t < nt; ++t) {
        const auto [b, e] = static_block(n, nt, t);
        EXPECT_EQ(b, prev_end);
        EXPECT_LE(b, e);
        covered += e - b;
        prev_end = e;
      }
      EXPECT_EQ(covered, n);
      EXPECT_EQ(prev_end, n);
    }
  }
}

TEST(StaticBlock, BalancedWithinOne) {
  const std::size_t n = 103;
  const std::size_t nt = 8;
  std::size_t mn = n;
  std::size_t mx = 0;
  for (std::size_t t = 0; t < nt; ++t) {
    const auto [b, e] = static_block(n, nt, t);
    mn = std::min(mn, e - b);
    mx = std::max(mx, e - b);
  }
  EXPECT_LE(mx - mn, 1u);
}

TEST(ParallelForBlocks, CoversRangeOnce) {
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  parallel_for_blocks(kN, 4, [&](std::size_t b, std::size_t e, std::size_t) {
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(Cli, ParsesFlagsAndDefaults) {
  const char* argv[] = {"prog", "--threads=8", "--eps=0.01", "--verbose",
                        "--name=web"};
  CliArgs args(5, const_cast<char**>(argv));
  EXPECT_EQ(args.get_int("threads", 1), 8);
  EXPECT_DOUBLE_EQ(args.get_double("eps", 1.0), 0.01);
  EXPECT_TRUE(args.get_bool("verbose", false));
  EXPECT_EQ(args.get("name", ""), "web");
  EXPECT_EQ(args.get_int("missing", 42), 42);
  EXPECT_FALSE(args.has("missing"));
}

TEST(Cli, BoolFalseSpellings) {
  const char* argv[] = {"prog", "--a=false", "--b=0", "--c=true"};
  CliArgs args(4, const_cast<char**>(argv));
  EXPECT_FALSE(args.get_bool("a", true));
  EXPECT_FALSE(args.get_bool("b", true));
  EXPECT_TRUE(args.get_bool("c", false));
}

TEST(Table, AlignsColumns) {
  TextTable t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer-name", "2.5"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  EXPECT_NE(out.find("| name"), std::string::npos);
  // Every line has the same width.
  std::istringstream lines(out);
  std::string line;
  std::set<std::size_t> widths;
  while (std::getline(lines, line)) widths.insert(line.size());
  EXPECT_EQ(widths.size(), 1u);
}

TEST(Table, NumFormatsPrecision) {
  EXPECT_EQ(TextTable::num(1.23456, 2), "1.23");
  EXPECT_EQ(TextTable::num(2.0, 0), "2");
}

TEST(Table, ToJsonQuotesStringsAndKeepsNumbersBare) {
  TextTable t({"name", "count", "rate"});
  t.add_row({"alpha", "3", "0.25"});
  t.add_row({"be\"ta", "-7", "not-a-number"});
  const std::string json = t.to_json();
  EXPECT_EQ(json,
            "[{\"name\":\"alpha\",\"count\":3,\"rate\":0.25},"
            "{\"name\":\"be\\\"ta\",\"count\":-7,\"rate\":\"not-a-number\"}]");
}

TEST(Table, WriteJsonProducesManifest) {
  TextTable t({"k"});
  t.add_row({"1"});
  const std::string path = testing::TempDir() + "/ndg_table.json";
  t.write_json(path, "{\"experiment\":\"unit\"}");
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content,
            "{\"config\":{\"experiment\":\"unit\"},\"rows\":[{\"k\":1}]}\n");
}

TEST(JsonEscape, HandlesControlAndQuoteCharacters) {
  EXPECT_EQ(json_escape("a\"b\\c\nd\te"), "a\\\"b\\\\c\\nd\\te");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
  EXPECT_EQ(json_escape("plain"), "plain");
}

}  // namespace
}  // namespace ndg
