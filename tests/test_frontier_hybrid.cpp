// Hybrid frontier (engine/frontier.hpp): representation switching must be
// invisible to everything but the clock. Covers the sparse<->dense switch
// points, the ascending-label guarantee in both representations, the
// seed/advance/empty invariants, interval queries for the out-of-core
// engine, and an engine matrix asserting identical converged results across
// every FrontierPolicy.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "algorithms/pagerank.hpp"
#include "algorithms/reference/references.hpp"
#include "algorithms/sssp.hpp"
#include "engine/bsp.hpp"
#include "engine/frontier.hpp"
#include "engine/nondeterministic.hpp"
#include "graph/generators.hpp"
#include "graph/graph_stats.hpp"

namespace ndg {
namespace {

std::vector<VertexId> drain(const Frontier& f) {
  std::vector<VertexId> out;
  f.for_each([&](std::size_t v) { out.push_back(static_cast<VertexId>(v)); });
  return out;
}

TEST(FrontierHybrid, ParsesAndPrintsPolicies) {
  EXPECT_EQ(parse_frontier_policy("sparse"), FrontierPolicy::kSparse);
  EXPECT_EQ(parse_frontier_policy("dense"), FrontierPolicy::kDense);
  EXPECT_EQ(parse_frontier_policy("auto"), FrontierPolicy::kAuto);
  EXPECT_FALSE(parse_frontier_policy("bitmap").has_value());
  EXPECT_STREQ(to_string(FrontierPolicy::kSparse), "sparse");
  EXPECT_STREQ(to_string(FrontierPolicy::kDense), "dense");
  EXPECT_STREQ(to_string(FrontierPolicy::kAuto), "auto");
}

TEST(FrontierHybrid, SeedInvariantsBothRepresentations) {
  for (const FrontierPolicy policy :
       {FrontierPolicy::kSparse, FrontierPolicy::kDense}) {
    Frontier f(100, policy);
    EXPECT_TRUE(f.empty());
    EXPECT_EQ(f.size(), 0u);
    // Duplicates and disorder must be tolerated.
    f.seed({7, 3, 3, 99, 7, 0});
    EXPECT_FALSE(f.empty());
    EXPECT_EQ(f.size(), 4u);
    EXPECT_EQ(f.dense(), policy == FrontierPolicy::kDense);
    EXPECT_EQ(drain(f), (std::vector<VertexId>{0, 3, 7, 99}));
  }
}

TEST(FrontierHybrid, AutoSwitchesAtTheDivisorThreshold) {
  // V = 800, divisor = 8: dense iff |S_n| * 8 > 800, i.e. |S_n| >= 101.
  Frontier f(800, FrontierPolicy::kAuto, 8);

  std::vector<VertexId> small(100);
  for (VertexId v = 0; v < 100; ++v) small[v] = v * 7;
  f.seed(small);
  EXPECT_FALSE(f.dense()) << "|S| * divisor == V must stay sparse";
  EXPECT_EQ(f.size(), 100u);

  std::vector<VertexId> big(101);
  for (VertexId v = 0; v < 101; ++v) big[v] = v * 7;
  f.seed(big);
  EXPECT_TRUE(f.dense()) << "|S| * divisor > V must go dense";
  EXPECT_EQ(f.size(), 101u);

  // And advance() re-decides every iteration: a dense frontier that shrinks
  // must come back sparse.
  f.schedule(42);
  f.advance();
  EXPECT_FALSE(f.dense());
  EXPECT_EQ(drain(f), (std::vector<VertexId>{42}));
}

TEST(FrontierHybrid, AdvanceIsAscendingInBothRepresentations) {
  for (const FrontierPolicy policy :
       {FrontierPolicy::kSparse, FrontierPolicy::kDense}) {
    Frontier f(1000, policy);
    // Schedule in adversarial (descending, straddling word boundaries) order.
    for (const VertexId v : {999u, 64u, 63u, 65u, 0u, 512u, 1u}) {
      f.schedule(v);
    }
    f.advance();
    const auto got = drain(f);
    EXPECT_EQ(got, (std::vector<VertexId>{0, 1, 63, 64, 65, 512, 999}))
        << to_string(policy);
    EXPECT_TRUE(std::is_sorted(got.begin(), got.end())) << to_string(policy);
    // Word-partitioned dense sweeps must concatenate to the same ascending
    // sequence (this is what gives each thread a contiguous label block).
    if (f.dense()) {
      std::vector<VertexId> stitched;
      const std::size_t mid = f.num_words() / 2;
      f.for_each_in_words(0, mid, [&](std::size_t v) {
        stitched.push_back(static_cast<VertexId>(v));
      });
      f.for_each_in_words(mid, f.num_words(), [&](std::size_t v) {
        stitched.push_back(static_cast<VertexId>(v));
      });
      EXPECT_EQ(stitched, got);
    }
  }
}

TEST(FrontierHybrid, AdvanceDrainsToEmpty) {
  for (const FrontierPolicy policy :
       {FrontierPolicy::kSparse, FrontierPolicy::kDense,
        FrontierPolicy::kAuto}) {
    Frontier f(64, policy);
    f.seed({1, 2, 3});
    f.advance();  // nothing scheduled -> S_{n+1} empty
    EXPECT_TRUE(f.empty()) << to_string(policy);
    EXPECT_EQ(f.size(), 0u) << to_string(policy);
    EXPECT_EQ(drain(f), std::vector<VertexId>{}) << to_string(policy);
  }
}

TEST(FrontierHybrid, CollectRangeMatchesBothRepresentations) {
  const std::vector<VertexId> members = {0, 1, 63, 64, 65, 100, 130, 199};
  for (const FrontierPolicy policy :
       {FrontierPolicy::kSparse, FrontierPolicy::kDense}) {
    Frontier f(200, policy);
    for (const VertexId v : members) f.schedule(v);
    f.advance();
    // Interval boundaries chosen to hit word-aligned and unaligned cases.
    const std::pair<VertexId, VertexId> ranges[] = {
        {0, 200}, {0, 64}, {64, 128}, {63, 66}, {101, 130}, {150, 160}};
    for (const auto& [lo, hi] : ranges) {
      std::vector<VertexId> got;
      f.collect_range(lo, hi, got);
      std::vector<VertexId> want;
      for (const VertexId v : members) {
        if (v >= lo && v < hi) want.push_back(v);
      }
      EXPECT_EQ(got, want) << to_string(policy) << " [" << lo << "," << hi
                           << ")";
    }
  }
}

// Engine matrix: PageRank and SSSP must converge to identical fixed points
// under every frontier policy — on NE (multi-threaded, shared worklist too)
// and on BSP (bit-exact because the update order is representation-blind).
TEST(FrontierHybrid, EngineResultsIdenticalAcrossPolicies) {
  EdgeList el = gen::rmat(/*n=*/512, /*m=*/4096, /*seed=*/99);
  const Graph g = Graph::build(512, std::move(el));
  const auto expected_pr = ref::pagerank(g, 0.85, 1e-10);
  const VertexId source = max_out_degree_vertex(g);
  std::vector<float> weights(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    weights[e] = SsspProgram::edge_weight(42, e);
  }
  const auto expected_sssp = ref::sssp(g, source, weights);

  std::vector<float> bsp_baseline_ranks;
  for (const FrontierPolicy policy :
       {FrontierPolicy::kSparse, FrontierPolicy::kDense,
        FrontierPolicy::kAuto}) {
    const std::string label = to_string(policy);
    EngineOptions opts;
    opts.num_threads = 4;
    opts.scheduler = SchedulerKind::kStealing;
    opts.frontier_policy = policy;

    {
      PageRankProgram prog(1e-4f);
      EdgeDataArray<float> edges(g.num_edges());
      prog.init(g, edges);
      const EngineResult r = run_nondeterministic(g, prog, edges, opts);
      ASSERT_TRUE(r.converged) << label;
      ASSERT_EQ(r.frontier_dense.size(), r.frontier_sizes.size()) << label;
      if (policy == FrontierPolicy::kDense) {
        EXPECT_NE(std::count(r.frontier_dense.begin(), r.frontier_dense.end(),
                             std::uint8_t{1}),
                  0)
            << label;
      }
      if (policy == FrontierPolicy::kSparse) {
        EXPECT_EQ(std::count(r.frontier_dense.begin(), r.frontier_dense.end(),
                             std::uint8_t{1}),
                  0)
            << label;
      }
      for (VertexId v = 0; v < g.num_vertices(); ++v) {
        ASSERT_NEAR(prog.ranks()[v], expected_pr[v],
                    0.05 * expected_pr[v] + 0.01)
            << label << " vertex " << v;
      }
    }
    {
      SsspProgram prog(source, 42);
      EdgeDataArray<SsspEdge> edges(g.num_edges());
      prog.init(g, edges);
      const EngineResult r = run_nondeterministic(g, prog, edges, opts);
      ASSERT_TRUE(r.converged) << label;
      EXPECT_EQ(prog.distances(), expected_sssp) << label;
    }
    {
      // BSP is deterministic, so across policies the ranks must be BIT-exact.
      PageRankProgram prog(1e-4f);
      EdgeDataArray<float> edges(g.num_edges());
      prog.init(g, edges);
      EngineOptions bsp_opts;
      bsp_opts.frontier_policy = policy;
      const EngineResult r = run_bsp(g, prog, edges, bsp_opts);
      ASSERT_TRUE(r.converged) << label;
      if (bsp_baseline_ranks.empty()) {
        bsp_baseline_ranks = prog.ranks();
      } else {
        EXPECT_EQ(prog.ranks(), bsp_baseline_ranks) << label;
      }
    }
  }
}

}  // namespace
}  // namespace ndg
