// Push-mode story tests: the RMW policy primitives, mass conservation under
// contention, and the contrast between the broken plain push PageRank and the
// repaired atomic one.

#include <gtest/gtest.h>

#include "algorithms/push_pagerank.hpp"
#include "algorithms/push_pagerank_atomic.hpp"
#include "algorithms/pagerank.hpp"
#include "algorithms/reference/references.hpp"
#include "atomics/access_policy.hpp"
#include "core/eligibility.hpp"
#include "engine/nondeterministic.hpp"
#include "graph/generators.hpp"
#include "util/thread_team.hpp"

namespace ndg {
namespace {

// --- policy RMW primitives ---------------------------------------------------

template <typename Policy>
void exchange_returns_old(Policy policy) {
  EdgeDataArray<float> arr(2, 5.0f);
  EXPECT_EQ(policy.exchange(arr, 0, 9.0f), 5.0f);
  EXPECT_EQ(policy.read(arr, 0), 9.0f);
  EXPECT_EQ(policy.read(arr, 1), 5.0f);  // untouched
}

TEST(Rmw, ExchangeAligned) { exchange_returns_old(AlignedAccess{}); }
TEST(Rmw, ExchangeRelaxed) { exchange_returns_old(RelaxedAtomicAccess{}); }
TEST(Rmw, ExchangeSeqCst) { exchange_returns_old(SeqCstAccess{}); }
TEST(Rmw, ExchangeLocked) {
  EdgeLockTable locks(2);
  exchange_returns_old(LockedAccess{&locks});
}

template <typename Policy>
void accumulate_applies_fn(Policy policy) {
  EdgeDataArray<float> arr(1, 1.5f);
  policy.accumulate(arr, 0, [](float x) { return x + 2.5f; });
  EXPECT_EQ(policy.read(arr, 0), 4.0f);
}

TEST(Rmw, AccumulateAligned) { accumulate_applies_fn(AlignedAccess{}); }
TEST(Rmw, AccumulateRelaxed) { accumulate_applies_fn(RelaxedAtomicAccess{}); }
TEST(Rmw, AccumulateSeqCst) { accumulate_applies_fn(SeqCstAccess{}); }
TEST(Rmw, AccumulateLocked) {
  EdgeLockTable locks(1);
  accumulate_applies_fn(LockedAccess{&locks});
}

/// Atomic accumulate must not lose increments under contention. (Uses an
/// integer datum: float addition would also be order-sensitive.)
template <typename Policy>
void no_lost_updates(Policy policy) {
  EdgeDataArray<std::uint64_t> arr(1, 0);
  constexpr int kPerThread = 50000;
  run_team(4, [&](std::size_t) {
    for (int i = 0; i < kPerThread; ++i) {
      policy.accumulate(arr, 0, [](std::uint64_t x) { return x + 1; });
    }
  });
  EXPECT_EQ(arr.get(0), 4u * kPerThread);
}

TEST(Rmw, NoLostUpdatesRelaxed) { no_lost_updates(RelaxedAtomicAccess{}); }
TEST(Rmw, NoLostUpdatesSeqCst) { no_lost_updates(SeqCstAccess{}); }
TEST(Rmw, NoLostUpdatesLocked) {
  EdgeLockTable locks(1);
  no_lost_updates(LockedAccess{&locks});
}

/// Drain racing accumulate conserves the total: whatever exchange() takes
/// plus what remains equals everything that was added.
template <typename Policy>
void drain_conserves_mass(Policy policy) {
  EdgeDataArray<std::uint64_t> arr(1, 0);
  constexpr std::uint64_t kAdds = 100000;
  std::atomic<std::uint64_t> drained{0};
  std::atomic<bool> done{false};
  run_team(3, [&](std::size_t tid) {
    if (tid == 0) {
      for (std::uint64_t i = 0; i < kAdds; ++i) {
        policy.accumulate(arr, 0, [](std::uint64_t x) { return x + 1; });
      }
      done.store(true);
    } else {
      while (!done.load()) {
        drained.fetch_add(policy.exchange(arr, 0, std::uint64_t{0}));
      }
    }
  });
  drained.fetch_add(policy.exchange(arr, 0, std::uint64_t{0}));
  EXPECT_EQ(drained.load(), kAdds);
}

TEST(Rmw, DrainConservesMassRelaxed) {
  drain_conserves_mass(RelaxedAtomicAccess{});
}
TEST(Rmw, DrainConservesMassLocked) {
  EdgeLockTable locks(1);
  drain_conserves_mass(LockedAccess{&locks});
}

// --- program-level contrast --------------------------------------------------

TEST(PushMode, AtomicVariantCorrectUnderThreadedNondeterminism) {
  const Graph g = Graph::build(200, gen::rmat(200, 1400, 4));
  const auto expected = ref::pagerank(g, 0.85, 1e-12);
  for (const std::size_t threads : {1u, 2u, 4u}) {
    AtomicPushPageRankProgram prog(1e-6f);
    EdgeDataArray<float> edges(g.num_edges());
    prog.init(g, edges);
    EngineOptions opts;
    opts.num_threads = threads;
    opts.mode = AtomicityMode::kRelaxed;
    const EngineResult r = run_nondeterministic(g, prog, edges, opts);
    EXPECT_TRUE(r.converged);
    double total = 0;
    double expected_total = 0;
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      EXPECT_NEAR(prog.ranks()[v], expected[v], 0.02 * expected[v] + 0.005)
          << "threads=" << threads << " v=" << v;
      total += prog.ranks()[v];
      expected_total += expected[v];
    }
    // Residual mass conservation: the collected mass matches the fixed
    // point's total (dangling vertices absorb mass, so this is < |V|).
    EXPECT_NEAR(total, expected_total, 0.01 * expected_total);
  }
}

TEST(PushMode, PlainAndAtomicAgreeDeterministically) {
  // With a sequential schedule both push variants are the same algorithm.
  const Graph g = Graph::build(150, gen::erdos_renyi(150, 900, 7));
  PushPageRankProgram plain(1e-6f);
  AtomicPushPageRankProgram atomic(1e-6f);

  EdgeDataArray<float> e1(g.num_edges());
  plain.init(g, e1);
  EngineOptions opts;
  opts.num_threads = 1;
  ASSERT_TRUE(run_nondeterministic(g, plain, e1, opts).converged);

  EdgeDataArray<float> e2(g.num_edges());
  atomic.init(g, e2);
  ASSERT_TRUE(run_nondeterministic(g, atomic, e2, opts).converged);

  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_NEAR(plain.ranks()[v], atomic.ranks()[v], 1e-4) << "v=" << v;
  }
}

TEST(PushMode, EligibilityDistinguishesTheVariants) {
  // Both variants carry WW conflicts and fail monotonicity, so BOTH are
  // outside the paper's two sufficient conditions — yet the atomic one is
  // empirically safe. This is the library's exhibit that the conditions are
  // sufficient, not necessary (and why §VII asks for more conditions).
  const Graph g = Graph::build(100, gen::rmat(100, 600, 6));

  PushPageRankProgram plain(1e-5f);
  const auto r1 = analyze_eligibility(g, plain, 200000);
  EXPECT_EQ(r1.verdict, EligibilityVerdict::kNotProven);

  AtomicPushPageRankProgram atomic(1e-5f);
  const auto r2 = analyze_eligibility(g, atomic, 200000);
  EXPECT_EQ(r2.verdict, EligibilityVerdict::kNotProven);
  EXPECT_GT(r2.conflicts.write_write, 0u);
}

}  // namespace
}  // namespace ndg
