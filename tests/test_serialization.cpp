// Binary graph format tests: round-trip fidelity, determinism of edge ids,
// and rejection of corrupted/truncated/foreign files.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "graph/generators.hpp"
#include "graph/serialization.hpp"

namespace ndg {
namespace {

std::string tmp_path(const char* name) {
  return testing::TempDir() + "/" + name;
}

TEST(Serialization, RoundTripPreservesTopologyAndEdgeIds) {
  const Graph g = Graph::build(300, gen::rmat(300, 2000, 9));
  const std::string path = tmp_path("roundtrip.ndgb");
  save_binary_graph(path, g);
  const Graph h = load_binary_graph(path);

  ASSERT_EQ(h.num_vertices(), g.num_vertices());
  ASSERT_EQ(h.num_edges(), g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_EQ(h.edge_target(e), g.edge_target(e));
    EXPECT_EQ(h.edge_source(e), g.edge_source(e));
  }
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(h.in_degree(v), g.in_degree(v));
    EXPECT_EQ(h.out_degree(v), g.out_degree(v));
  }
}

TEST(Serialization, RoundTripEmptyGraph) {
  const Graph g = Graph::build(5, EdgeList{});
  const std::string path = tmp_path("empty.ndgb");
  save_binary_graph(path, g);
  const Graph h = load_binary_graph(path);
  EXPECT_EQ(h.num_vertices(), 5u);
  EXPECT_EQ(h.num_edges(), 0u);
}

TEST(Serialization, RejectsBadMagic) {
  const std::string path = tmp_path("badmagic.ndgb");
  std::ofstream(path) << "definitely not a graph file";
  EXPECT_THROW(load_binary_graph(path), std::runtime_error);
}

TEST(Serialization, RejectsTruncation) {
  const Graph g = Graph::build(50, gen::cycle(50));
  const std::string path = tmp_path("trunc.ndgb");
  save_binary_graph(path, g);
  // Chop the file in half.
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  out.close();
  EXPECT_THROW(load_binary_graph(path), std::runtime_error);
}

TEST(Serialization, RejectsBitFlip) {
  const Graph g = Graph::build(50, gen::cycle(50));
  const std::string path = tmp_path("bitflip.ndgb");
  save_binary_graph(path, g);
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  f.seekp(64);
  char c = 0;
  f.seekg(64);
  f.read(&c, 1);
  c = static_cast<char>(c ^ 0x40);
  f.seekp(64);
  f.write(&c, 1);
  f.close();
  EXPECT_THROW(load_binary_graph(path), std::runtime_error);
}

TEST(Serialization, RejectsMissingFile) {
  EXPECT_THROW(load_binary_graph("/nonexistent/nope.ndgb"), std::runtime_error);
}

TEST(Serialization, PreservesSelfLoopFreeCanonicalForm) {
  // What was canonicalized at build time stays exactly as-is on reload.
  const Graph g = Graph::build(10, {{1, 2}, {2, 1}, {1, 2}, {3, 3}});
  ASSERT_EQ(g.num_edges(), 2u);
  const std::string path = tmp_path("canon.ndgb");
  save_binary_graph(path, g);
  const Graph h = load_binary_graph(path);
  EXPECT_EQ(h.num_edges(), 2u);
}

}  // namespace
}  // namespace ndg
