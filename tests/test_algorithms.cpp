// Algorithm correctness under the deterministic engine, against independent
// reference implementations, across a zoo of topologies.

#include <gtest/gtest.h>

#include "algorithms/bfs.hpp"
#include "algorithms/pagerank.hpp"
#include "algorithms/push_pagerank.hpp"
#include "algorithms/reference/references.hpp"
#include "algorithms/spmv.hpp"
#include "algorithms/sssp.hpp"
#include "algorithms/wcc.hpp"
#include "engine/bsp.hpp"
#include "engine/deterministic.hpp"
#include "graph/generators.hpp"

namespace ndg {
namespace {

struct TopologyCase {
  const char* name;
  Graph graph;
};

std::vector<TopologyCase> topologies() {
  std::vector<TopologyCase> cases;
  cases.push_back({"chain", Graph::build(40, gen::chain(40))});
  cases.push_back({"cycle", Graph::build(40, gen::cycle(40))});
  cases.push_back({"star", Graph::build(40, gen::star(40))});
  cases.push_back({"grid", Graph::build(36, gen::grid2d(6, 6))});
  cases.push_back({"complete", Graph::build(12, gen::complete(12))});
  cases.push_back({"rmat", Graph::build(200, gen::rmat(200, 1200, 3))});
  cases.push_back({"er", Graph::build(200, gen::erdos_renyi(200, 900, 4))});
  cases.push_back(
      {"two-components",
       Graph::build(20, {{0, 1}, {1, 2}, {2, 0}, {10, 11}, {11, 12}})});
  cases.push_back({"dag", Graph::build(100, gen::random_dag(100, 2.5, 9))});
  return cases;
}

TEST(AlgorithmsDeterministic, WccMatchesUnionFindEverywhere) {
  for (auto& tc : topologies()) {
    WccProgram prog;
    EdgeDataArray<WccProgram::EdgeData> edges(tc.graph.num_edges());
    prog.init(tc.graph, edges);
    const EngineResult r = run_deterministic(tc.graph, prog, edges);
    EXPECT_TRUE(r.converged) << tc.name;
    EXPECT_EQ(prog.labels(), ref::wcc(tc.graph)) << tc.name;
  }
}

TEST(AlgorithmsDeterministic, BfsMatchesReferenceEverywhere) {
  for (auto& tc : topologies()) {
    BfsProgram prog(0);
    EdgeDataArray<BfsProgram::EdgeData> edges(tc.graph.num_edges());
    prog.init(tc.graph, edges);
    const EngineResult r = run_deterministic(tc.graph, prog, edges);
    EXPECT_TRUE(r.converged) << tc.name;
    EXPECT_EQ(prog.levels(), ref::bfs(tc.graph, 0)) << tc.name;
  }
}

TEST(AlgorithmsDeterministic, SsspMatchesDijkstraEverywhere) {
  for (auto& tc : topologies()) {
    SsspProgram prog(0, /*weight_seed=*/11);
    std::vector<float> weights(tc.graph.num_edges());
    for (EdgeId e = 0; e < tc.graph.num_edges(); ++e) {
      weights[e] = SsspProgram::edge_weight(11, e);
    }
    EdgeDataArray<SsspProgram::EdgeData> edges(tc.graph.num_edges());
    prog.init(tc.graph, edges);
    const EngineResult r = run_deterministic(tc.graph, prog, edges);
    EXPECT_TRUE(r.converged) << tc.name;
    const auto expected = ref::sssp(tc.graph, 0, weights);
    for (VertexId v = 0; v < tc.graph.num_vertices(); ++v) {
      EXPECT_FLOAT_EQ(prog.distances()[v], expected[v])
          << tc.name << " v=" << v;
    }
  }
}

TEST(AlgorithmsDeterministic, SsspWeightsAreInRangeAndStable) {
  for (EdgeId e = 0; e < 1000; ++e) {
    const float w = SsspProgram::edge_weight(3, e);
    EXPECT_GE(w, 1.0f);
    EXPECT_LE(w, 10.0f);
    EXPECT_EQ(w, SsspProgram::edge_weight(3, e));  // pure function of (seed, e)
  }
  EXPECT_NE(SsspProgram::edge_weight(3, 0), SsspProgram::edge_weight(4, 0));
}

TEST(AlgorithmsDeterministic, PageRankMatchesPowerIteration) {
  const Graph g = Graph::build(200, gen::rmat(200, 1200, 6));
  const auto expected = ref::pagerank(g, 0.85, 1e-12);

  PageRankProgram prog(1e-5f);
  EdgeDataArray<PageRankProgram::EdgeData> edges(g.num_edges());
  prog.init(g, edges);
  const EngineResult r = run_deterministic(g, prog, edges);
  EXPECT_TRUE(r.converged);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_NEAR(prog.ranks()[v], expected[v], 0.02 * expected[v] + 0.003);
  }
}

TEST(AlgorithmsDeterministic, PageRankTighterEpsilonGetsCloser) {
  const Graph g = Graph::build(128, gen::erdos_renyi(128, 700, 2));
  const auto expected = ref::pagerank(g, 0.85, 1e-12);

  double coarse_err = 0.0;
  double fine_err = 0.0;
  for (const float eps : {1e-2f, 1e-5f}) {
    PageRankProgram prog(eps);
    EdgeDataArray<PageRankProgram::EdgeData> edges(g.num_edges());
    prog.init(g, edges);
    ASSERT_TRUE(run_deterministic(g, prog, edges).converged);
    double err = 0.0;
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      err = std::max(err, std::abs(prog.ranks()[v] - expected[v]));
    }
    (eps > 1e-3f ? coarse_err : fine_err) = err;
  }
  EXPECT_LT(fine_err, coarse_err);
  EXPECT_LT(fine_err, 1e-3);
}

TEST(AlgorithmsDeterministic, PageRankHandlesSinksAndSources) {
  // star: hub 0 -> leaves (leaves are sinks); chain end is a sink.
  const Graph g = Graph::build(10, gen::star(10));
  PageRankProgram prog(1e-6f);
  EdgeDataArray<PageRankProgram::EdgeData> edges(g.num_edges());
  prog.init(g, edges);
  EXPECT_TRUE(run_deterministic(g, prog, edges).converged);
  // Hub has no in-edges: rank = 1 - damping.
  EXPECT_NEAR(prog.ranks()[0], 0.15, 1e-4);
  // Every leaf receives hub_rank/9 damped.
  EXPECT_NEAR(prog.ranks()[1], 0.15 + 0.85 * 0.15 / 9.0, 1e-4);
}

TEST(AlgorithmsDeterministic, SpmvConverges) {
  const Graph g = Graph::build(128, gen::erdos_renyi(128, 800, 8));
  SpmvProgram prog(1e-4f);
  EdgeDataArray<SpmvProgram::EdgeData> edges(g.num_edges());
  prog.init(g, edges);
  const EngineResult r = run_deterministic(g, prog, edges, 20000);
  EXPECT_TRUE(r.converged);
  // x stays near the stochastic fixed point's scale (started at 1).
  for (const float x : prog.x()) {
    EXPECT_GE(x, -0.01f);
    EXPECT_LT(x, 100.0f);
  }
}

TEST(AlgorithmsDeterministic, SpmvMatchesDenseFixedPoint) {
  const Graph g = Graph::build(150, gen::rmat(150, 900, 14));
  const auto expected = ref::spmv_fixed_point(g, 0.5, 1e-12);
  SpmvProgram prog(1e-5f);
  EdgeDataArray<SpmvProgram::EdgeData> edges(g.num_edges());
  prog.init(g, edges);
  const EngineResult r = run_deterministic(g, prog, edges, 100000);
  EXPECT_TRUE(r.converged);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_NEAR(prog.x()[v], expected[v], 0.05 * std::abs(expected[v]) + 0.01)
        << "v=" << v;
  }
}

TEST(AlgorithmsDeterministic, PushPageRankMatchesPullFixedPoint) {
  const Graph g = Graph::build(150, gen::rmat(150, 900, 8));
  const auto expected = ref::pagerank(g, 0.85, 1e-12);

  PushPageRankProgram prog(1e-6f);
  EdgeDataArray<PushPageRankProgram::EdgeData> edges(g.num_edges());
  prog.init(g, edges);
  const EngineResult r = run_deterministic(g, prog, edges, 100000);
  EXPECT_TRUE(r.converged);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_NEAR(prog.ranks()[v], expected[v], 0.02 * expected[v] + 0.005)
        << "v=" << v;
  }
}

TEST(AlgorithmsDeterministic, WccSingletonAndEmptyGraphs) {
  const Graph g = Graph::build(5, EdgeList{});
  WccProgram prog;
  EdgeDataArray<WccProgram::EdgeData> edges(g.num_edges());
  prog.init(g, edges);
  const EngineResult r = run_deterministic(g, prog, edges);
  EXPECT_TRUE(r.converged);
  for (VertexId v = 0; v < 5; ++v) EXPECT_EQ(prog.labels()[v], v);
}

TEST(AlgorithmsDeterministic, BfsUnreachableStaysUnreached) {
  const Graph g = Graph::build(6, {{0, 1}, {1, 2}, {4, 5}});
  BfsProgram prog(0);
  EdgeDataArray<BfsProgram::EdgeData> edges(g.num_edges());
  prog.init(g, edges);
  EXPECT_TRUE(run_deterministic(g, prog, edges).converged);
  EXPECT_EQ(prog.levels()[2], 2u);
  EXPECT_EQ(prog.levels()[3], BfsProgram::kUnreached);
  EXPECT_EQ(prog.levels()[4], BfsProgram::kUnreached);
}

TEST(AlgorithmsBsp, AllPaperAlgorithmsConvergeSynchronously) {
  // The Theorem 1 premise holds for the paper's fixed-point algorithms, and
  // empirically for the traversal ones too.
  const Graph g = Graph::build(128, gen::rmat(128, 700, 10));

  {
    PageRankProgram prog(1e-3f);
    EdgeDataArray<PageRankProgram::EdgeData> edges(g.num_edges());
    prog.init(g, edges);
    EXPECT_TRUE(run_bsp(g, prog, edges, 20000).converged);
  }
  {
    WccProgram prog;
    EdgeDataArray<WccProgram::EdgeData> edges(g.num_edges());
    prog.init(g, edges);
    EXPECT_TRUE(run_bsp(g, prog, edges).converged);
    EXPECT_EQ(prog.labels(), ref::wcc(g));
  }
  {
    SsspProgram prog(0, 3);
    EdgeDataArray<SsspProgram::EdgeData> edges(g.num_edges());
    prog.init(g, edges);
    EXPECT_TRUE(run_bsp(g, prog, edges).converged);
  }
  {
    BfsProgram prog(0);
    EdgeDataArray<BfsProgram::EdgeData> edges(g.num_edges());
    prog.init(g, edges);
    EXPECT_TRUE(run_bsp(g, prog, edges).converged);
    EXPECT_EQ(prog.levels(), ref::bfs(g, 0));
  }
}

}  // namespace
}  // namespace ndg
