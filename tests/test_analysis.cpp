// Tests for the §VII analysis modules: error-range analysis, convergence
// bounds, and per-iteration frontier telemetry.

#include <gtest/gtest.h>

#include "algorithms/bfs.hpp"
#include "algorithms/pagerank.hpp"
#include "algorithms/wcc.hpp"
#include "core/convergence_bound.hpp"
#include "core/error_analysis.hpp"
#include "engine/bsp.hpp"
#include "engine/deterministic.hpp"
#include "engine/simulator.hpp"
#include "graph/generators.hpp"

namespace ndg {
namespace {

// --- error analysis ----------------------------------------------------------

TEST(ErrorAnalysis, ZeroErrorForIdenticalRuns) {
  const std::vector<double> base{1.0, 2.0, 3.0, 4.0};
  const ErrorAnalysis a = analyze_errors(base, {base, base});
  EXPECT_EQ(a.abs_error.max, 0.0);
  EXPECT_EQ(a.rel_error.max, 0.0);
  EXPECT_EQ(a.max_spread, 0.0);
  EXPECT_EQ(a.exact_vertices, 4u);
}

TEST(ErrorAnalysis, DetectsSpreadAndPercentiles) {
  const std::vector<double> base{10.0, 10.0, 10.0, 10.0};
  const std::vector<double> run1{10.0, 10.5, 10.0, 10.0};
  const std::vector<double> run2{10.0, 9.5, 10.0, 12.0};
  const ErrorAnalysis a = analyze_errors(base, {run1, run2});
  EXPECT_DOUBLE_EQ(a.max_spread, 2.0);     // vertex 3: 12.0 - 10.0
  EXPECT_DOUBLE_EQ(a.abs_error.max, 2.0);  // vertex 3 in run2
  EXPECT_NEAR(a.rel_error.max, 0.2, 1e-12);
  EXPECT_EQ(a.exact_vertices, 2u);  // vertices 0 and 2
}

TEST(ErrorAnalysis, RankBandsFollowBaselineRanking) {
  // 200 vertices; error placed only on the lowest-ranked vertex => tail band.
  std::vector<double> base(200);
  for (std::size_t i = 0; i < 200; ++i) base[i] = 1000.0 - static_cast<double>(i);
  std::vector<double> run = base;
  run[199] += 5.0;  // the smallest value = deepest tail
  const ErrorAnalysis a = analyze_errors(base, {run});
  EXPECT_EQ(a.head_mean_abs, 0.0);
  EXPECT_EQ(a.torso_mean_abs, 0.0);
  EXPECT_GT(a.tail_mean_abs, 0.0);
}

TEST(ErrorAnalysis, EmptyInputs) {
  const ErrorAnalysis a = analyze_errors({}, {});
  EXPECT_EQ(a.abs_error.max, 0.0);
  EXPECT_EQ(a.exact_vertices, 0u);
}

TEST(ErrorAnalysis, NondeterministicPageRankErrorsConcentrateLow) {
  // End-to-end: simulated NE PageRank errors vs the deterministic baseline
  // must be small and must not be concentrated on the head of the ranking —
  // the quantified version of the paper's Section V-C usability argument.
  const Graph g = Graph::build(512, gen::rmat(512, 3000, 31));
  PageRankProgram de(1e-4f);
  EdgeDataArray<float> de_edges(g.num_edges());
  de.init(g, de_edges);
  ASSERT_TRUE(run_deterministic(g, de, de_edges).converged);
  const auto baseline = de.values();

  std::vector<std::vector<double>> runs;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    PageRankProgram ne(1e-4f);
    EdgeDataArray<float> ne_edges(g.num_edges());
    ne.init(g, ne_edges);
    SimOptions opts;
    opts.num_procs = 8;
    opts.delay = 4;
    opts.delay_jitter = 4;
    opts.seed = seed;
    ASSERT_TRUE(run_simulated(g, ne, ne_edges, opts).converged);
    runs.push_back(ne.values());
  }
  const ErrorAnalysis a = analyze_errors(baseline, runs);
  EXPECT_LT(a.rel_error.p99, 0.05);
  EXPECT_GT(a.exact_vertices, 0u);
}

// --- convergence bounds -------------------------------------------------------

TEST(ConvergenceBound, ChainDepths) {
  const Graph g = Graph::build(10, gen::chain(10));
  const ConvergenceBound b = wcc_convergence_bound(g);
  EXPECT_EQ(b.chain_depth, 9u);
  EXPECT_EQ(b.rw_bound, 12u);
  EXPECT_EQ(b.ww_bound, 31u);
  EXPECT_EQ(traversal_chain_depth(g, 0), 9u);
  EXPECT_EQ(traversal_chain_depth(g, 9), 0u);
}

TEST(ConvergenceBound, MultipleComponentsTakeTheMax) {
  // Component {0..4} chain (depth 4) + component {10,11} (depth 1).
  const Graph g =
      Graph::build(12, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {10, 11}});
  const ConvergenceBound b = wcc_convergence_bound(g);
  EXPECT_EQ(b.chain_depth, 4u);
}

TEST(ConvergenceBound, BspWccRespectsRwBound) {
  // Synchronous WCC advances one hop per iteration: iterations <= depth + 2.
  for (const auto& g :
       {Graph::build(40, gen::chain(40)), Graph::build(64, gen::grid2d(8, 8)),
        Graph::build(128, gen::rmat(128, 800, 3))}) {
    const ConvergenceBound b = wcc_convergence_bound(g);
    WccProgram prog;
    EdgeDataArray<WccProgram::EdgeData> edges(g.num_edges());
    prog.init(g, edges);
    const EngineResult r = run_bsp(g, prog, edges);
    EXPECT_TRUE(r.converged);
    EXPECT_LE(r.iterations, b.rw_bound);
  }
}

TEST(ConvergenceBound, SimulatedWccRespectsWwBound) {
  const Graph g = Graph::build(64, gen::cycle(64));
  const ConvergenceBound b = wcc_convergence_bound(g);
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    WccProgram prog;
    EdgeDataArray<WccProgram::EdgeData> edges(g.num_edges());
    prog.init(g, edges);
    SimOptions opts;
    opts.num_procs = 8;
    opts.delay = 8;
    opts.seed = seed;
    const SimResult r = run_simulated(g, prog, edges, opts);
    EXPECT_TRUE(r.converged);
    EXPECT_LE(r.iterations, b.ww_bound) << "seed=" << seed;
  }
}

TEST(ConvergenceBound, BfsIterationsTrackChainDepth) {
  const Graph g = Graph::build(30, gen::chain(30));
  BfsProgram prog(0);
  EdgeDataArray<BfsProgram::EdgeData> edges(g.num_edges());
  prog.init(g, edges);
  const EngineResult r = run_deterministic(g, prog, edges);
  EXPECT_TRUE(r.converged);
  EXPECT_LE(r.iterations, traversal_chain_depth(g, 0) + 3);
}

// --- frontier telemetry --------------------------------------------------------

TEST(Telemetry, FrontierSizesMatchIterationsAndUpdates) {
  const Graph g = Graph::build(128, gen::rmat(128, 700, 5));
  WccProgram prog;
  EdgeDataArray<WccProgram::EdgeData> edges(g.num_edges());
  prog.init(g, edges);
  const EngineResult r = run_deterministic(g, prog, edges);
  ASSERT_EQ(r.frontier_sizes.size(), r.iterations);
  std::uint64_t total = 0;
  for (const auto s : r.frontier_sizes) total += s;
  EXPECT_EQ(total, r.updates);
  EXPECT_EQ(r.frontier_sizes.front(), g.num_vertices());  // all seeded
}

TEST(Telemetry, BspAndSimulatorRecordCurves) {
  const Graph g = Graph::build(32, gen::chain(32));
  {
    WccProgram prog;
    EdgeDataArray<WccProgram::EdgeData> edges(g.num_edges());
    prog.init(g, edges);
    const EngineResult r = run_bsp(g, prog, edges);
    EXPECT_EQ(r.frontier_sizes.size(), r.iterations);
  }
  {
    WccProgram prog;
    EdgeDataArray<WccProgram::EdgeData> edges(g.num_edges());
    prog.init(g, edges);
    SimOptions opts;
    opts.num_procs = 4;
    const SimResult r = run_simulated(g, prog, edges, opts);
    EXPECT_EQ(r.frontier_sizes.size(), r.iterations);
  }
}

}  // namespace
}  // namespace ndg
