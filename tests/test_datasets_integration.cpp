// Cross-dataset integration sweep: for every Table I stand-in, the
// traversal algorithms must produce exact reference results under
// nondeterministic threaded execution — the repo-level version of the
// paper's Figure 3 correctness premise.

#include <gtest/gtest.h>

#include "algorithms/bfs.hpp"
#include "algorithms/reference/references.hpp"
#include "algorithms/sssp.hpp"
#include "algorithms/wcc.hpp"
#include "engine/nondeterministic.hpp"
#include "engine/simulator.hpp"
#include "graph/datasets.hpp"
#include "graph/graph_stats.hpp"

namespace ndg {
namespace {

constexpr unsigned kScale = 1024;  // tiny but structure-preserving

class DatasetSweep : public ::testing::TestWithParam<DatasetId> {
 protected:
  void SetUp() override {
    dataset_ = make_dataset(GetParam(), kScale);
    source_ = max_out_degree_vertex(dataset_.graph);
  }

  Dataset dataset_;
  VertexId source_ = 0;
};

TEST_P(DatasetSweep, WccExactUnderThreadedNe) {
  const Graph& g = dataset_.graph;
  const auto expected = ref::wcc(g);
  WccProgram prog;
  EdgeDataArray<WccProgram::EdgeData> edges(g.num_edges());
  prog.init(g, edges);
  EngineOptions opts;
  opts.num_threads = 4;
  opts.mode = AtomicityMode::kRelaxed;
  const EngineResult r = run_nondeterministic(g, prog, edges, opts);
  EXPECT_TRUE(r.converged) << dataset_.name;
  EXPECT_EQ(prog.labels(), expected) << dataset_.name;
}

TEST_P(DatasetSweep, BfsExactUnderThreadedNe) {
  const Graph& g = dataset_.graph;
  const auto expected = ref::bfs(g, source_);
  BfsProgram prog(source_);
  EdgeDataArray<BfsProgram::EdgeData> edges(g.num_edges());
  prog.init(g, edges);
  EngineOptions opts;
  opts.num_threads = 4;
  opts.mode = AtomicityMode::kAligned;
  const EngineResult r = run_nondeterministic(g, prog, edges, opts);
  EXPECT_TRUE(r.converged) << dataset_.name;
  EXPECT_EQ(prog.levels(), expected) << dataset_.name;
  // Source choice must give nontrivial coverage on every dataset.
  std::size_t reached = 0;
  for (const auto l : prog.levels()) reached += l != BfsProgram::kUnreached;
  EXPECT_GT(reached, g.num_vertices() / 20) << dataset_.name;
}

TEST_P(DatasetSweep, SsspExactUnderSimulatedRaces) {
  const Graph& g = dataset_.graph;
  std::vector<float> weights(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    weights[e] = SsspProgram::edge_weight(13, e);
  }
  const auto expected = ref::sssp(g, source_, weights);

  SsspProgram prog(source_, 13);
  EdgeDataArray<SsspProgram::EdgeData> edges(g.num_edges());
  prog.init(g, edges);
  SimOptions opts;
  opts.num_procs = 8;
  opts.delay = 4;
  opts.seed = 3;
  const SimResult r = run_simulated(g, prog, edges, opts);
  EXPECT_TRUE(r.converged) << dataset_.name;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    ASSERT_FLOAT_EQ(prog.distances()[v], expected[v])
        << dataset_.name << " v=" << v;
  }
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, DatasetSweep,
                         ::testing::ValuesIn(all_datasets()),
                         [](const auto& info) {
                           std::string name = to_string(info.param);
                           for (auto& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace ndg
