// k-core and MIS tests: dual-slot edge mechanics, reference agreement under
// every engine, write-write recovery under simulated races, and eligibility.

#include <gtest/gtest.h>

#include "algorithms/dual_edge.hpp"
#include "algorithms/kcore.hpp"
#include "algorithms/mis.hpp"
#include "algorithms/reference/references.hpp"
#include "core/eligibility.hpp"
#include "engine/chromatic.hpp"
#include "engine/deterministic.hpp"
#include "engine/nondeterministic.hpp"
#include "engine/simulator.hpp"
#include "graph/generators.hpp"

namespace ndg {
namespace {

TEST(DualEdge, HalfAccessors) {
  const DualEdge e{3, 9};
  EXPECT_EQ(own_half(e, true), 3u);
  EXPECT_EQ(own_half(e, false), 9u);
  EXPECT_EQ(peer_half(e, true), 9u);
  EXPECT_EQ(peer_half(e, false), 3u);
  const DualEdge a = with_own_half(e, true, 7);
  EXPECT_EQ(a.src_half, 7u);
  EXPECT_EQ(a.dst_half, 9u);
  const DualEdge b = with_own_half(e, false, 7);
  EXPECT_EQ(b.src_half, 3u);
  EXPECT_EQ(b.dst_half, 7u);
}

Graph core_graph() {
  // A 5-clique (core 4... each clique vertex has degree 8 in the multigraph
  // view since the clique emits both directions) wired to a long tail.
  EdgeList edges = gen::complete(5);
  for (VertexId v = 4; v + 1 < 20; ++v) edges.push_back(Edge{v, v + 1});
  EdgeList rmat = gen::rmat(64, 400, 12);
  for (Edge e : rmat) edges.push_back(Edge{e.src + 20, e.dst + 20});
  return Graph::build(84, edges);
}

TEST(KCore, ReferencePeelingSanity) {
  // Undirected triangle (symmetrized): every vertex has multigraph degree 4,
  // core = 2 per direction pair... verify against hand result on a simple
  // directed cycle: each vertex has in+out degree 2, whole cycle is a 2-core.
  const Graph cyc = Graph::build(6, gen::cycle(6));
  const auto core = ref::kcore(cyc);
  for (VertexId v = 0; v < 6; ++v) EXPECT_EQ(core[v], 2u);

  // Chain: endpoints degree 1, middle degree 2 but peels to 1.
  const Graph chain = Graph::build(5, gen::chain(5));
  const auto chain_core = ref::kcore(chain);
  for (VertexId v = 0; v < 5; ++v) EXPECT_EQ(chain_core[v], 1u);
}

TEST(KCore, DeterministicMatchesPeeling) {
  const Graph g = core_graph();
  KCoreProgram prog;
  EdgeDataArray<DualEdge> edges(g.num_edges());
  prog.init(g, edges);
  const EngineResult r = run_deterministic(g, prog, edges);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(prog.core_numbers(), ref::kcore(g));
}

TEST(KCore, NondeterministicThreadedMatchesPeeling) {
  const Graph g = core_graph();
  const auto expected = ref::kcore(g);
  for (const AtomicityMode mode :
       {AtomicityMode::kLocked, AtomicityMode::kAligned, AtomicityMode::kRelaxed}) {
    for (const std::size_t threads : {2u, 4u}) {
      KCoreProgram prog;
      EdgeDataArray<DualEdge> edges(g.num_edges());
      prog.init(g, edges);
      EngineOptions opts;
      opts.mode = mode;
      opts.num_threads = threads;
      const EngineResult r = run_nondeterministic(g, prog, edges, opts);
      EXPECT_TRUE(r.converged) << to_string(mode) << " t=" << threads;
      EXPECT_EQ(prog.core_numbers(), expected)
          << to_string(mode) << " t=" << threads;
    }
  }
}

TEST(KCore, SimulatedRacesRecoverToExactCores) {
  const Graph g = core_graph();
  const auto expected = ref::kcore(g);
  bool saw_ww = false;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    KCoreProgram prog;
    EdgeDataArray<DualEdge> edges(g.num_edges());
    prog.init(g, edges);
    SimOptions opts;
    opts.num_procs = 8;
    opts.delay = 6;
    opts.seed = seed;
    const SimResult r = run_simulated(g, prog, edges, opts);
    EXPECT_TRUE(r.converged) << "seed=" << seed;
    EXPECT_EQ(prog.core_numbers(), expected) << "seed=" << seed;
    saw_ww = saw_ww || r.ww_overlaps > 0;
  }
  EXPECT_TRUE(saw_ww);  // dual-slot RMWs must actually race
}

TEST(KCore, ChromaticSchedulerMatchesPeeling) {
  // Color classes are independent sets, so within a class no two updates
  // share an edge word — the dual-slot races vanish and plain access is
  // safe; the result must still be the exact core numbers.
  const Graph g = core_graph();
  const Coloring coloring = greedy_color(g);
  KCoreProgram prog;
  EdgeDataArray<DualEdge> edges(g.num_edges());
  prog.init(g, edges);
  EngineOptions opts;
  opts.num_threads = 3;
  const EngineResult r = run_chromatic(g, prog, edges, coloring, opts);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(prog.core_numbers(), ref::kcore(g));
}

TEST(KCore, EligibilityIsTheorem2) {
  const Graph g = core_graph();
  KCoreProgram prog;
  const EligibilityReport r = analyze_eligibility(g, prog);
  EXPECT_GT(r.conflicts.write_write, 0u);
  EXPECT_TRUE(r.observed_monotonic);
  EXPECT_EQ(r.verdict, EligibilityVerdict::kTheorem2);
}

TEST(Mis, ReferenceGreedyIsIndependentAndMaximal) {
  const Graph g = Graph::build(128, symmetrize(gen::rmat(128, 500, 5)));
  const auto in_set = ref::greedy_mis(g);
  // Independence.
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (!in_set[v]) continue;
    for (const VertexId u : g.out_neighbors(v)) EXPECT_FALSE(in_set[u]);
  }
  // Maximality: every excluded vertex has an included neighbour.
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (in_set[v]) continue;
    bool covered = false;
    for (const VertexId u : g.out_neighbors(v)) covered = covered || in_set[u];
    for (const InEdge& ie : g.in_edges(v)) covered = covered || in_set[ie.src];
    EXPECT_TRUE(covered) << "v=" << v;
  }
}

std::vector<bool> states_to_set(const std::vector<std::uint32_t>& states) {
  std::vector<bool> s(states.size());
  for (std::size_t i = 0; i < states.size(); ++i) {
    s[i] = states[i] == MisProgram::kIn;
  }
  return s;
}

TEST(Mis, DeterministicMatchesGreedy) {
  const Graph g = Graph::build(200, gen::rmat(200, 1200, 8));
  MisProgram prog;
  EdgeDataArray<DualEdge> edges(g.num_edges());
  prog.init(g, edges);
  const EngineResult r = run_deterministic(g, prog, edges);
  EXPECT_TRUE(r.converged);
  // Every vertex must have decided.
  for (const auto s : prog.states()) EXPECT_NE(s, MisProgram::kUnknown);
  EXPECT_EQ(states_to_set(prog.states()), ref::greedy_mis(g));
}

TEST(Mis, NondeterministicProducesTheSameLexicographicSet) {
  // The headline property: a nondeterministic execution computing a
  // bit-deterministic combinatorial object.
  const Graph g = Graph::build(200, gen::rmat(200, 1200, 8));
  const auto expected = ref::greedy_mis(g);
  for (const std::size_t threads : {2u, 4u, 8u}) {
    MisProgram prog;
    EdgeDataArray<DualEdge> edges(g.num_edges());
    prog.init(g, edges);
    EngineOptions opts;
    opts.num_threads = threads;
    opts.mode = AtomicityMode::kRelaxed;
    const EngineResult r = run_nondeterministic(g, prog, edges, opts);
    EXPECT_TRUE(r.converged) << "threads=" << threads;
    EXPECT_EQ(states_to_set(prog.states()), expected) << "threads=" << threads;
  }
}

TEST(Mis, SimulatedRacesStillYieldLexicographicSet) {
  const Graph g = Graph::build(150, gen::erdos_renyi(150, 700, 9));
  const auto expected = ref::greedy_mis(g);
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    MisProgram prog;
    EdgeDataArray<DualEdge> edges(g.num_edges());
    prog.init(g, edges);
    SimOptions opts;
    opts.num_procs = 6;
    opts.delay = 5;
    opts.seed = seed;
    const SimResult r = run_simulated(g, prog, edges, opts);
    EXPECT_TRUE(r.converged) << "seed=" << seed;
    EXPECT_EQ(states_to_set(prog.states()), expected) << "seed=" << seed;
  }
}

TEST(Mis, EligibilityIsTheorem2) {
  const Graph g = Graph::build(100, gen::rmat(100, 500, 3));
  MisProgram prog;
  const EligibilityReport r = analyze_eligibility(g, prog);
  EXPECT_TRUE(r.observed_monotonic);
  EXPECT_TRUE(r.theorem2_applies);
  EXPECT_NE(r.verdict, EligibilityVerdict::kNotProven);
}

TEST(Mis, IsolatedVerticesAllEnterTheSet) {
  const Graph g = Graph::build(5, EdgeList{});
  MisProgram prog;
  EdgeDataArray<DualEdge> edges(g.num_edges());
  prog.init(g, edges);
  EXPECT_TRUE(run_deterministic(g, prog, edges).converged);
  EXPECT_EQ(prog.independent_set().size(), 5u);
}

}  // namespace
}  // namespace ndg
