#pragma once
// Seeded lint fixture — this file is DELIBERATELY wrong. It is never
// compiled into any target; it exists so tools/ndg_lint.py --self-test can
// prove the linter still catches every class of policy bypass. If ndg_lint
// stops flagging this file, the lint_self_test ctest fails.
//
// Violations seeded (one per lint rule):
//   raw-slots         update() pokes edges.slots() directly
//   raw-cast          aliases the slot array as float* around the policy
//   missing-manifest  BypassProgram declares no kManifest
//   aligned-rmw       ctx.accumulate() with no `.rmw = true` declaration
//   missing-direction-manifest
//                     update_push() with no kPushManifest declaration

#include <cstdint>

namespace ndg::lint_fixture {

struct BypassProgram {
  using EdgeData = float;

  template <typename Edges>
  void update_raw(Edges& edges, std::uint64_t e, float v) {
    // Writes straight to storage: invisible to the atomicity ablation and
    // to manifest enforcement.
    edges.slots()[e].store(static_cast<std::uint64_t>(v));
    // Aliases the slot array around the AccessPolicy layer.
    auto* raw = reinterpret_cast<float*>(edges.slots());
    raw[e] = v;
  }

  template <typename Ctx>
  void update(Ctx& ctx, std::uint64_t e, float v) {
    // An RMW this program's (missing) manifest would have to declare.
    ctx.accumulate(e, v, [](float a, float b) { return a + b; });
  }

  template <typename Ctx>
  void update_push(Ctx& ctx, std::uint64_t e, float v) {
    // A push entry point with no kPushManifest: the direction analysis
    // cannot derive a push-side verdict for this body.
    ctx.write(e, 0, v);
  }
};

}  // namespace ndg::lint_fixture
