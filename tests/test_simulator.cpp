// Simulator tests: the executable form of the paper's Section II model.
//   * Degeneracy: P = 1 reproduces the deterministic Gauss–Seidel run bitwise.
//   * Fig. 2: the WCC write-write corruption-and-recovery walk-through.
//   * Theorems 1 & 2 as seed-sweep properties: every simulated schedule
//     converges, and monotonic algorithms land on the exact result.

#include <gtest/gtest.h>

#include "algorithms/bfs.hpp"
#include "algorithms/pagerank.hpp"
#include "algorithms/reference/references.hpp"
#include "algorithms/sssp.hpp"
#include "algorithms/wcc.hpp"
#include "engine/deterministic.hpp"
#include "engine/simulator.hpp"
#include "graph/generators.hpp"

namespace ndg {
namespace {

Graph sim_graph() {
  EdgeList edges = gen::rmat(256, 1500, 77);
  auto tail = gen::chain(24);
  edges.insert(edges.end(), tail.begin(), tail.end());
  return Graph::build(256, std::move(edges));
}

TEST(Simulator, SingleProcEqualsDeterministicBitwise) {
  const Graph g = sim_graph();

  WccProgram de;
  EdgeDataArray<WccProgram::EdgeData> de_edges(g.num_edges());
  de.init(g, de_edges);
  const EngineResult rd = run_deterministic(g, de, de_edges);

  WccProgram sim;
  EdgeDataArray<WccProgram::EdgeData> sim_edges(g.num_edges());
  sim.init(g, sim_edges);
  SimOptions opts;
  opts.num_procs = 1;
  opts.delay = 4;  // irrelevant with one proc
  const SimResult rs = run_simulated(g, sim, sim_edges, opts);

  EXPECT_TRUE(rs.converged);
  EXPECT_EQ(rs.iterations, rd.iterations);
  EXPECT_EQ(rs.updates, rd.updates);
  EXPECT_EQ(rs.rw_overlaps, 0u);
  EXPECT_EQ(rs.ww_overlaps, 0u);
  EXPECT_EQ(sim.labels(), de.labels());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_EQ(sim_edges.get(e), de_edges.get(e));
  }
}

TEST(Simulator, ZeroDelayEqualsInstantVisibility) {
  // d = 0: no ∥ window, so no overlaps are possible by definition.
  const Graph g = sim_graph();
  WccProgram prog;
  EdgeDataArray<WccProgram::EdgeData> edges(g.num_edges());
  prog.init(g, edges);
  SimOptions opts;
  opts.num_procs = 8;
  opts.delay = 0;
  const SimResult r = run_simulated(g, prog, edges, opts);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.ww_overlaps, 0u);
  EXPECT_EQ(prog.labels(), ref::wcc(g));
}

// --- Fig. 2: write-write corruption and recovery on one edge ---------------

TEST(Simulator, Fig2WccCorruptionIsRecovered) {
  // Two vertices joined by edge (0 -> 1); initial labels 0 and 1; edge label
  // "infinite". With both updates on different procs inside the ∥ window,
  // iteration 1 produces a write-write conflict; whichever value commits, the
  // algorithm must converge to labels {0, 0} (the paper's walk-through).
  const Graph g = Graph::build(2, {{0, 1}});
  bool saw_conflict = false;
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    WccProgram prog;
    EdgeDataArray<WccProgram::EdgeData> edges(g.num_edges());
    prog.init(g, edges);
    SimOptions opts;
    opts.num_procs = 2;
    opts.delay = 8;  // both updates land in slot 0: fully overlapped
    opts.seed = seed;
    const SimResult r = run_simulated(g, prog, edges, opts);
    EXPECT_TRUE(r.converged) << "seed=" << seed;
    EXPECT_EQ(prog.labels()[0], 0u) << "seed=" << seed;
    EXPECT_EQ(prog.labels()[1], 0u) << "seed=" << seed;
    EXPECT_EQ(edges.get(0), 0u) << "seed=" << seed;
    saw_conflict = saw_conflict || r.ww_overlaps > 0;
  }
  EXPECT_TRUE(saw_conflict) << "the ∥ window never produced the WW conflict";
}

TEST(Simulator, Fig2WrongCommitNeedsExtraIterations) {
  // When update f(1) wins the iteration-1 race the edge commits the corrupted
  // label 2-style value, and recovery costs extra iterations relative to the
  // deterministic schedule (2 iterations). Some seed must exhibit that.
  const Graph g = Graph::build(2, {{0, 1}});

  WccProgram de;
  EdgeDataArray<WccProgram::EdgeData> de_edges(g.num_edges());
  de.init(g, de_edges);
  const std::size_t de_iters = run_deterministic(g, de, de_edges).iterations;

  bool saw_slow_path = false;
  for (std::uint64_t seed = 0; seed < 64 && !saw_slow_path; ++seed) {
    WccProgram prog;
    EdgeDataArray<WccProgram::EdgeData> edges(g.num_edges());
    prog.init(g, edges);
    SimOptions opts;
    opts.num_procs = 2;
    opts.delay = 8;
    opts.seed = seed;
    const SimResult r = run_simulated(g, prog, edges, opts);
    saw_slow_path = r.converged && r.iterations > de_iters;
  }
  EXPECT_TRUE(saw_slow_path);
}

// --- Theorem properties as seed sweeps --------------------------------------

class SimSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimSweep, Theorem2WccExactUnderWriteWriteRaces) {
  const Graph g = sim_graph();
  const auto expected = ref::wcc(g);
  WccProgram prog;
  EdgeDataArray<WccProgram::EdgeData> edges(g.num_edges());
  prog.init(g, edges);
  SimOptions opts;
  opts.num_procs = 8;
  opts.delay = 6;
  opts.seed = GetParam();
  const SimResult r = run_simulated(g, prog, edges, opts);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(prog.labels(), expected);
}

TEST_P(SimSweep, Theorem1SsspExactUnderReadWriteRaces) {
  const Graph g = sim_graph();
  SsspProgram prog(0, /*weight_seed=*/5);
  std::vector<float> weights(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    weights[e] = SsspProgram::edge_weight(5, e);
  }
  const auto expected = ref::sssp(g, 0, weights);

  EdgeDataArray<SsspProgram::EdgeData> edges(g.num_edges());
  prog.init(g, edges);
  SimOptions opts;
  opts.num_procs = 6;
  opts.delay = 5;
  opts.seed = GetParam();
  const SimResult r = run_simulated(g, prog, edges, opts);
  EXPECT_TRUE(r.converged);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_FLOAT_EQ(prog.distances()[v], expected[v]) << "v=" << v;
  }
  // SSSP writes each edge from one endpoint only: no WW races possible.
  EXPECT_EQ(r.ww_overlaps, 0u);
}

TEST_P(SimSweep, Theorem1BfsExact) {
  const Graph g = sim_graph();
  BfsProgram prog(0);
  const auto expected = ref::bfs(g, 0);
  EdgeDataArray<BfsProgram::EdgeData> edges(g.num_edges());
  prog.init(g, edges);
  SimOptions opts;
  opts.num_procs = 4;
  opts.delay = 3;
  opts.seed = GetParam();
  const SimResult r = run_simulated(g, prog, edges, opts);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(prog.levels(), expected);
  EXPECT_EQ(r.ww_overlaps, 0u);
}

TEST_P(SimSweep, Theorem1PageRankConvergesNearFixedPoint) {
  const Graph g = sim_graph();
  const auto expected = ref::pagerank(g, 0.85, 1e-10);
  PageRankProgram prog(1e-4f);
  EdgeDataArray<PageRankProgram::EdgeData> edges(g.num_edges());
  prog.init(g, edges);
  SimOptions opts;
  opts.num_procs = 8;
  opts.delay = 6;
  opts.seed = GetParam();
  const SimResult r = run_simulated(g, prog, edges, opts);
  EXPECT_TRUE(r.converged);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_NEAR(prog.ranks()[v], expected[v], 0.05 * expected[v] + 0.01);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimSweep,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

TEST(Simulator, WccProducesWwOverlapsOnDenseGraph) {
  // Sanity check that the instrumented counters actually fire: WCC on a
  // clique with everything scheduled must race.
  const Graph g = Graph::build(16, gen::complete(16));
  WccProgram prog;
  EdgeDataArray<WccProgram::EdgeData> edges(g.num_edges());
  prog.init(g, edges);
  SimOptions opts;
  opts.num_procs = 8;
  opts.delay = 4;
  const SimResult r = run_simulated(g, prog, edges, opts);
  EXPECT_TRUE(r.converged);
  EXPECT_GT(r.ww_overlaps, 0u);
  EXPECT_GT(r.rw_overlaps, 0u);
}

TEST(Simulator, DelayZeroSingleProcHandlesAllAlgorithms) {
  const Graph g = Graph::build(64, gen::cycle(64));
  PageRankProgram prog(1e-3f);
  EdgeDataArray<PageRankProgram::EdgeData> edges(g.num_edges());
  prog.init(g, edges);
  SimOptions opts;
  opts.num_procs = 1;
  opts.delay = 0;
  const SimResult r = run_simulated(g, prog, edges, opts);
  EXPECT_TRUE(r.converged);
}

}  // namespace
}  // namespace ndg
