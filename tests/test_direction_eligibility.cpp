// Direction-eligibility tests (docs/ANALYSIS.md): the per-direction
// compile-time verdicts, the merged-manifest cross-direction interference
// check behind kSwitchable, the refusal reason strings, resolve_direction's
// runtime gating, the registry's direction surface, and manifest enforcement
// of the push entry point (validate_manifest_push) including a deliberately
// lying push manifest.

#include <gtest/gtest.h>

#include <string>

#include "algorithms/bfs.hpp"
#include "algorithms/kcore.hpp"
#include "algorithms/label_propagation.hpp"
#include "algorithms/mis.hpp"
#include "algorithms/pagerank.hpp"
#include "algorithms/push_pagerank.hpp"
#include "algorithms/push_pagerank_atomic.hpp"
#include "algorithms/registry.hpp"
#include "algorithms/spmv.hpp"
#include "algorithms/sssp.hpp"
#include "algorithms/wcc.hpp"
#include "analysis/direction_eligibility.hpp"
#include "analysis/validate.hpp"
#include "graph/generators.hpp"

namespace ndg {
namespace {

// --- Per-direction verdicts: compile-time constants for every program ------

// BFS/SSSP: RW-only in both directions (the push publish is an RMW fold but
// still only the source side writes) — Theorem 1 each, and the merged
// manifest keeps the shape, so switching is licensed.
static_assert(StaticDirectionEligibility<BfsProgram>::kHasPush);
static_assert(StaticDirectionEligibility<BfsProgram>::kPullVerdict ==
              EligibilityVerdict::kTheorem1);
static_assert(StaticDirectionEligibility<BfsProgram>::kPushVerdict ==
              EligibilityVerdict::kTheorem1);
static_assert(StaticDirectionEligibility<BfsProgram>::kMixedVerdict ==
              EligibilityVerdict::kTheorem1);
static_assert(StaticDirectionEligibility<BfsProgram>::kSwitchable);

static_assert(StaticDirectionEligibility<SsspProgram>::kPullVerdict ==
              EligibilityVerdict::kTheorem1);
static_assert(StaticDirectionEligibility<SsspProgram>::kPushVerdict ==
              EligibilityVerdict::kTheorem1);
static_assert(StaticDirectionEligibility<SsspProgram>::kMixedVerdict ==
              EligibilityVerdict::kTheorem1);
static_assert(StaticDirectionEligibility<SsspProgram>::kSwitchable);

// WCC: both sides write in both directions — Theorem 2 everywhere, and the
// agreeing monotone claim survives the merge, so switching is licensed too.
static_assert(StaticDirectionEligibility<WccProgram>::kPullVerdict ==
              EligibilityVerdict::kTheorem2);
static_assert(StaticDirectionEligibility<WccProgram>::kPushVerdict ==
              EligibilityVerdict::kTheorem2);
static_assert(StaticDirectionEligibility<WccProgram>::kMixedVerdict ==
              EligibilityVerdict::kTheorem2);
static_assert(StaticDirectionEligibility<WccProgram>::kSwitchable);

// Pull-only programs: push side collapses to kNotProven, never switchable.
static_assert(!StaticDirectionEligibility<PageRankProgram>::kHasPush);
static_assert(StaticDirectionEligibility<PageRankProgram>::kPullVerdict ==
              EligibilityVerdict::kTheorem1);
static_assert(StaticDirectionEligibility<PageRankProgram>::kPushVerdict ==
              EligibilityVerdict::kNotProven);
static_assert(!StaticDirectionEligibility<PageRankProgram>::kSwitchable);
static_assert(!StaticDirectionEligibility<SpmvProgram>::kHasPush);
static_assert(!StaticDirectionEligibility<KCoreProgram>::kHasPush);
static_assert(!StaticDirectionEligibility<MisProgram>::kHasPush);
static_assert(!StaticDirectionEligibility<LabelPropagationProgram>::kHasPush);
static_assert(!StaticDirectionEligibility<AtomicPushPageRankProgram>::kHasPush);

// push_pagerank declares a push side — and it is refused: silent drains
// break the task rule and the WW shape has no monotone claim. The ISSUE's
// acceptance case: statically refused for NE in push direction.
static_assert(StaticDirectionEligibility<PushPageRankProgram>::kHasPush);
static_assert(StaticDirectionEligibility<PushPageRankProgram>::kPullVerdict ==
              EligibilityVerdict::kNotProven);
static_assert(StaticDirectionEligibility<PushPageRankProgram>::kPushVerdict ==
              EligibilityVerdict::kNotProven);
static_assert(!StaticDirectionEligibility<PushPageRankProgram>::kSwitchable);

// --- The cross-direction interference check ---------------------------------
// Two directions that are each Theorem 1 alone (writes confined to ONE side
// per direction) but whose mix writes BOTH sides of an edge: per-direction
// verdicts pass, the merged manifest has WW with no monotone recovery, and
// only the mixed-schedule check catches it.

constexpr AccessManifest kCrossPull{
    .in_edges = SlotAccess::kRead,
    .out_edges = SlotAccess::kReadWrite,
    .bsp_convergent = true,
    .async_convergent = true,
};
constexpr AccessManifest kCrossPush{
    .in_edges = SlotAccess::kReadWrite,
    .out_edges = SlotAccess::kRead,
    .bsp_convergent = true,
    .async_convergent = true,
};
constexpr DirectionalManifest kCross{kCrossPull, kCrossPush, true};

static_assert(direction_verdict(kCross, Direction::kPull) ==
              EligibilityVerdict::kTheorem1);
static_assert(direction_verdict(kCross, Direction::kPush) ==
              EligibilityVerdict::kTheorem1);
static_assert(ww_possible(merged_manifest(kCross)));
static_assert(mixed_verdict(kCross) == EligibilityVerdict::kNotProven);
static_assert(!direction_switchable(kCross));

// Monotone disagreement is also interference: min-race vs max-race has no
// recovery envelope, so an agreeing pair is required.
constexpr AccessManifest kDownPull{
    .in_edges = SlotAccess::kReadWrite,
    .out_edges = SlotAccess::kReadWrite,
    .monotone = MonotoneClaim::kNonIncreasing,
    .bsp_convergent = true,
    .async_convergent = true,
};
constexpr AccessManifest kUpPush{
    .in_edges = SlotAccess::kReadWrite,
    .out_edges = SlotAccess::kReadWrite,
    .monotone = MonotoneClaim::kNonDecreasing,
    .bsp_convergent = true,
    .async_convergent = true,
};
constexpr DirectionalManifest kDisagree{kDownPull, kUpPush, true};
static_assert(direction_verdict(kDisagree, Direction::kPull) ==
              EligibilityVerdict::kTheorem2);
static_assert(direction_verdict(kDisagree, Direction::kPush) ==
              EligibilityVerdict::kTheorem2);
static_assert(merged_manifest(kDisagree).monotone == MonotoneClaim::kNone);
static_assert(!direction_switchable(kDisagree));

TEST(DirectionEligibility, RefusalReasonsNameTheFailingPremises) {
  // Pull-only program asked for push.
  constexpr DirectionalManifest pr =
      StaticDirectionEligibility<PageRankProgram>::kManifest;
  const std::string no_push = direction_refusal_reason(pr, Direction::kPush);
  EXPECT_NE(no_push.find("no push-side manifest"), std::string::npos);
  EXPECT_TRUE(direction_refusal_reason(pr, Direction::kPull).empty());

  // push_pagerank: the task rule and the WW/monotone premises both fail.
  constexpr DirectionalManifest ppr =
      StaticDirectionEligibility<PushPageRankProgram>::kManifest;
  const std::string push = direction_refusal_reason(ppr, Direction::kPush);
  EXPECT_NE(push.find("task-generation"), std::string::npos);
  EXPECT_NE(push.find("write-write"), std::string::npos);

  // Cross-direction WW: both isolated directions are clean, so the reason
  // must come from the mixed-schedule check.
  const std::string cross = switchability_refusal_reason(kCross);
  EXPECT_NE(cross.find("cross-direction"), std::string::npos);
  EXPECT_NE(cross.find("write-write"), std::string::npos);

  // Switchable programs have nothing to refuse.
  EXPECT_TRUE(switchability_refusal_reason(
                  StaticDirectionEligibility<BfsProgram>::kManifest)
                  .empty());
}

TEST(DirectionEligibility, ResolveDirectionGatesRequests) {
  constexpr DirectionalManifest bfs =
      StaticDirectionEligibility<BfsProgram>::kManifest;
  constexpr DirectionalManifest pr =
      StaticDirectionEligibility<PageRankProgram>::kManifest;
  constexpr DirectionalManifest ppr =
      StaticDirectionEligibility<PushPageRankProgram>::kManifest;

  // Switchable: every request goes through unchanged.
  for (const DirectionMode m :
       {DirectionMode::kPull, DirectionMode::kPush, DirectionMode::kAuto}) {
    const DirectionResolution r = resolve_direction(bfs, m);
    EXPECT_TRUE(r.ok);
    EXPECT_FALSE(r.pinned);
    EXPECT_EQ(r.effective, m);
  }

  // Pull-only: push refused with the verdict's reason; auto pins to pull.
  const DirectionResolution pr_push = resolve_direction(pr, DirectionMode::kPush);
  EXPECT_FALSE(pr_push.ok);
  EXPECT_NE(pr_push.reason.find("no push-side manifest"), std::string::npos);
  const DirectionResolution pr_auto = resolve_direction(pr, DirectionMode::kAuto);
  EXPECT_TRUE(pr_auto.ok);
  EXPECT_TRUE(pr_auto.pinned);
  EXPECT_EQ(pr_auto.effective, DirectionMode::kPull);
  EXPECT_NE(pr_auto.reason.find("pinned to pull"), std::string::npos);

  // Nothing proven: every request refused.
  for (const DirectionMode m :
       {DirectionMode::kPull, DirectionMode::kPush, DirectionMode::kAuto}) {
    EXPECT_FALSE(resolve_direction(ppr, m).ok);
  }
  EXPECT_NE(resolve_direction(ppr, DirectionMode::kPush)
                .reason.find("task-generation"),
            std::string::npos);

  // Atomicity gate: the push manifests declare RMW, which AlignedAccess
  // (method 2) cannot make atomic — push-admitting modes are refused there,
  // pull is fine.
  EXPECT_FALSE(
      resolve_direction(bfs, DirectionMode::kPush, AtomicityMode::kAligned).ok);
  EXPECT_FALSE(
      resolve_direction(bfs, DirectionMode::kAuto, AtomicityMode::kAligned).ok);
  EXPECT_TRUE(
      resolve_direction(bfs, DirectionMode::kPull, AtomicityMode::kAligned).ok);
  EXPECT_NE(resolve_direction(bfs, DirectionMode::kPush, AtomicityMode::kAligned)
                .reason.find("AlignedAccess"),
            std::string::npos);
}

TEST(DirectionEligibility, RegistryCarriesDirectionSurface) {
  const Graph g = Graph::build(64, gen::erdos_renyi(64, 256, 5));
  for (const auto& entry : algorithm_registry(/*source=*/0, 1000)) {
    // Surface consistency: has_push == (a push validator exists).
    EXPECT_EQ(entry.directional.has_push,
              static_cast<bool>(entry.validate_push))
        << entry.name;
    EXPECT_EQ(entry.dir_switchable, entry.dir_reason.empty()) << entry.name;
    // The pull side IS the classic manifest.
    EXPECT_EQ(entry.directional.pull.in_edges, entry.manifest.in_edges)
        << entry.name;
    // Every entry can run the direction engine; pull-only programs get
    // pinned to pull by the engine itself.
    EngineOptions opts;
    opts.num_threads = 2;
    opts.direction = DirectionMode::kPull;
    const EngineResult r = entry.run_directed(g, opts);
    // Label propagation's convergence is input-dependent by declaration;
    // everything else must drain.
    if (entry.name != "label-propagation") EXPECT_TRUE(r.converged) << entry.name;
    EXPECT_EQ(r.direction_push.size(), r.iterations) << entry.name;
    EXPECT_EQ(r.push_iterations(), 0u) << entry.name;

    if (entry.name == "bfs" || entry.name == "sssp" || entry.name == "wcc") {
      EXPECT_TRUE(entry.dir_switchable) << entry.name;
      // Directed-run tracer: update_push stays inside kPushManifest.
      const ManifestCheck check = entry.validate_push(g);
      EXPECT_TRUE(check.ok()) << entry.name << ": " << check.describe();
    }
    if (entry.name == "pagerank-push") {
      EXPECT_TRUE(entry.directional.has_push);
      EXPECT_EQ(entry.dir_push_verdict, EligibilityVerdict::kNotProven);
      EXPECT_FALSE(entry.dir_switchable);
      EXPECT_FALSE(entry.dir_reason.empty());
    }
    if (entry.name == "pagerank") {
      EXPECT_FALSE(entry.directional.has_push);
      EXPECT_EQ(entry.dir_pull_verdict, EligibilityVerdict::kTheorem1);
    }
  }
}

// A push manifest that LIES about the push entry point's shape: declares
// out-edge writes only, while update_push actually writes in-edges. The
// per-direction static verdict is clean (Theorem 1 shape), but the
// manifest-enforced directed run catches the escape — the runtime bridge
// that keeps the static direction verdicts honest.
class LyingPushProgram {
 public:
  using EdgeData = std::uint32_t;
  static constexpr bool kMonotonic = true;
  static constexpr AccessManifest kManifest{
      .in_edges = SlotAccess::kRead,
      .out_edges = SlotAccess::kReadWrite,
      .monotone = MonotoneClaim::kNonIncreasing,
      .bsp_convergent = true,
      .async_convergent = true,
  };
  static constexpr AccessManifest kPushManifest = kManifest;

  [[nodiscard]] const char* name() const { return "lying-push"; }

  void init(const Graph& g, EdgeDataArray<std::uint32_t>& edges) {
    (void)g;
    edges.fill(1);
  }

  [[nodiscard]] std::vector<VertexId> initial_frontier(const Graph& g) const {
    std::vector<VertexId> all(g.num_vertices());
    for (VertexId v = 0; v < g.num_vertices(); ++v) all[v] = v;
    return all;
  }

  template <typename Ctx>
  void update(VertexId v, Ctx& ctx) {
    (void)v;
    (void)ctx;
  }

  template <typename Ctx>
  void update_push(VertexId v, Ctx& ctx) {
    (void)v;
    // Undeclared: writes the IN side while the manifest declares reads only.
    for (const InEdge& ie : ctx.in_edges()) {
      if (ctx.read(ie.id) != 0) ctx.write(ie.id, ie.src, 0);
    }
  }

  static double project(std::uint32_t x) { return x; }

  [[nodiscard]] std::vector<double> values() const { return {}; }
};

static_assert(PushCapableProgram<LyingPushProgram>);
static_assert(StaticDirectionEligibility<LyingPushProgram>::kSwitchable);

TEST(DirectionEligibility, ValidatePushCatchesLyingManifest) {
  const Graph g = Graph::build(8, gen::chain(8));
  LyingPushProgram prog;
  const ManifestCheck check = validate_manifest_push(g, prog, 100);
  EXPECT_FALSE(check.ok());
  EXPECT_GT(check.violations, 0u);

  // The honest programs pass the same tracer.
  BfsProgram bfs(0);
  EXPECT_TRUE(validate_manifest_push(g, bfs, 100).ok());
  WccProgram wcc;
  EXPECT_TRUE(validate_manifest_push(g, wcc, 100).ok());
}

}  // namespace
}  // namespace ndg
