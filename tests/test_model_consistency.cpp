// Cross-validation of the two implementations of the paper's Section II
// model: the ScheduleOracle (engine/schedule_order.hpp) answers "is f(v) ≺
// f(u)?" symbolically; the SimMachine (engine/simulator.cpp) embeds the same
// rules operationally in its read-visibility logic. For every processor
// count, delay and update pair, a write by f(v) must be visible to a read by
// f(u) exactly when the oracle says f(v) ≺ f(u).

#include <gtest/gtest.h>

#include <numeric>

#include "engine/schedule_order.hpp"
#include "engine/simulator.hpp"

namespace ndg {
namespace {

constexpr std::uint64_t kCommitted = 7;
constexpr std::uint64_t kWritten = 42;

/// One write/read probe on a fresh single-edge machine.
bool machine_sees_write(std::size_t procs, std::size_t delay,
                        std::uint32_t writer_proc, std::uint32_t writer_slot,
                        std::uint32_t reader_proc, std::uint32_t reader_slot) {
  std::atomic<std::uint64_t> slot{kCommitted};
  detail::SimMachine machine(&slot, 1, delay, /*jitter=*/0, /*seed=*/1);
  machine.begin_iteration(0);
  machine.write(0, kWritten, writer_proc, writer_slot);
  (void)procs;
  return machine.read(0, reader_proc, reader_slot) == kWritten;
}

TEST(ModelConsistency, SimulatorVisibilityMatchesOracleOrder) {
  constexpr VertexId kBlock = 4;
  for (const std::size_t procs : {2u, 3u}) {
    const VertexId n = static_cast<VertexId>(procs) * kBlock;
    std::vector<VertexId> frontier(n);
    std::iota(frontier.begin(), frontier.end(), 0);

    for (const std::size_t delay : {0u, 1u, 2u, 5u}) {
      const ScheduleOracle oracle(frontier, procs, delay);
      for (VertexId v = 0; v < n; ++v) {
        for (VertexId u = 0; u < n; ++u) {
          if (u == v) continue;
          const bool sees = machine_sees_write(
              procs, delay, static_cast<std::uint32_t>(oracle.proc(v)),
              static_cast<std::uint32_t>(oracle.pi(v)),
              static_cast<std::uint32_t>(oracle.proc(u)),
              static_cast<std::uint32_t>(oracle.pi(u)));
          const bool precedes = oracle.order(v, u) == UpdateOrder::kPrecedes;
          EXPECT_EQ(sees, precedes)
              << "P=" << procs << " d=" << delay << " v=" << v << " u=" << u
              << " (proc " << oracle.proc(v) << " slot " << oracle.pi(v)
              << " -> proc " << oracle.proc(u) << " slot " << oracle.pi(u)
              << ")";
        }
      }
    }
  }
}

TEST(ModelConsistency, ConcurrentPairsReadTheCommittedValue) {
  // ∥ pairs must observe the pre-iteration value (Lemma 1's "either old or
  // new" resolved to old, since the write is invisible inside the window).
  const std::size_t procs = 2;
  const std::size_t delay = 3;
  const ScheduleOracle oracle({0, 1, 2, 3, 4, 5}, procs, delay);
  for (VertexId v = 0; v < 6; ++v) {
    for (VertexId u = 0; u < 6; ++u) {
      if (u == v || oracle.order(v, u) != UpdateOrder::kConcurrent) continue;
      EXPECT_FALSE(machine_sees_write(
          procs, delay, static_cast<std::uint32_t>(oracle.proc(v)),
          static_cast<std::uint32_t>(oracle.pi(v)),
          static_cast<std::uint32_t>(oracle.proc(u)),
          static_cast<std::uint32_t>(oracle.pi(u))));
    }
  }
}

TEST(ModelConsistency, CommitAlwaysTakesAWrittenValue) {
  // Lemma 2 at the machine level: after two racing writes + commit, the edge
  // holds ONE of the two written values, for every seed.
  for (std::uint64_t seed = 0; seed < 16; ++seed) {
    std::atomic<std::uint64_t> slot{kCommitted};
    detail::SimMachine machine(&slot, 1, /*delay=*/4, /*jitter=*/0, seed);
    machine.begin_iteration(0);
    machine.write(0, 100, /*proc=*/0, /*slot=*/0);
    machine.write(0, 200, /*proc=*/1, /*slot=*/0);
    machine.commit();
    const std::uint64_t committed = slot.load();
    EXPECT_TRUE(committed == 100 || committed == 200) << "seed=" << seed;
  }
}

TEST(ModelConsistency, BothCommitOutcomesOccurAcrossSeeds) {
  bool saw_100 = false;
  bool saw_200 = false;
  for (std::uint64_t seed = 0; seed < 64 && !(saw_100 && saw_200); ++seed) {
    std::atomic<std::uint64_t> slot{kCommitted};
    detail::SimMachine machine(&slot, 1, 4, 0, seed);
    machine.begin_iteration(0);
    machine.write(0, 100, 0, 0);
    machine.write(0, 200, 1, 0);
    machine.commit();
    saw_100 = saw_100 || slot.load() == 100;
    saw_200 = saw_200 || slot.load() == 200;
  }
  EXPECT_TRUE(saw_100);
  EXPECT_TRUE(saw_200);  // the ∥ race genuinely goes both ways
}

}  // namespace
}  // namespace ndg
