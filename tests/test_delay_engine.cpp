// Delayed-engine tests (docs/DELAY.md): d=0 parity with the undelayed
// baselines, exact fixed points under d>0 bounded staleness across atomicity
// modes and thread counts, the staleness ceiling, and registry-wide
// convergence parity between the delayed engine and the logical simulator
// at the same d (the cross-validation that grounds the hardware delay layer
// in the paper's schedule model).

#include <gtest/gtest.h>

#include <cstddef>
#include <tuple>
#include <vector>

#include "algorithms/bfs.hpp"
#include "algorithms/pagerank.hpp"
#include "algorithms/reference/references.hpp"
#include "algorithms/registry.hpp"
#include "algorithms/sssp.hpp"
#include "algorithms/wcc.hpp"
#include "delay/delayed_engine.hpp"
#include "engine/nondeterministic.hpp"
#include "engine/pure_async.hpp"
#include "graph/generators.hpp"

namespace ndg {
namespace {

Graph delay_graph() {
  EdgeList edges = gen::rmat(256, 1500, 77);
  auto tail = gen::chain(24);
  edges.insert(edges.end(), tail.begin(), tail.end());
  return Graph::build(256, std::move(edges));
}

std::vector<float> sssp_weights(const Graph& g, std::uint64_t seed) {
  std::vector<float> w(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    w[e] = SsspProgram::edge_weight(seed, e);
  }
  return w;
}

DelaySpec fixed(std::size_t d) {
  DelaySpec spec;
  spec.steps = d;
  return spec;
}

// --- d = 0 parity: the delayed entry points ARE the baselines ---

TEST(DelayedEngineZero, NeMatchesBaselineExactly) {
  const Graph g = delay_graph();
  EngineOptions opts;
  opts.num_threads = 4;

  WccProgram base_prog;
  EdgeDataArray<WccProgram::EdgeData> base_edges(g.num_edges());
  base_prog.init(g, base_edges);
  const EngineResult base = run_nondeterministic(g, base_prog, base_edges, opts);

  WccProgram del_prog;
  EdgeDataArray<WccProgram::EdgeData> del_edges(g.num_edges());
  del_prog.init(g, del_edges);
  const EngineResult del = delay::run_delayed(g, del_prog, del_edges, opts);

  EXPECT_TRUE(base.converged);
  EXPECT_TRUE(del.converged);
  EXPECT_EQ(del_prog.labels(), base_prog.labels());
  EXPECT_EQ(del.delayed_writes, 0u);
  EXPECT_EQ(del.max_staleness, 0u);
}

TEST(DelayedEngineZero, AsyncMatchesBaselineExactly) {
  const Graph g = delay_graph();
  EngineOptions opts;
  opts.num_threads = 4;

  SsspProgram base_prog(0, 21);
  EdgeDataArray<SsspProgram::EdgeData> base_edges(g.num_edges());
  base_prog.init(g, base_edges);
  const EngineResult base = run_pure_async(g, base_prog, base_edges, opts);

  SsspProgram del_prog(0, 21);
  EdgeDataArray<SsspProgram::EdgeData> del_edges(g.num_edges());
  del_prog.init(g, del_edges);
  const EngineResult del = delay::run_delayed_async(g, del_prog, del_edges, opts);

  EXPECT_TRUE(base.converged);
  EXPECT_TRUE(del.converged);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_FLOAT_EQ(del_prog.distances()[v], base_prog.distances()[v])
        << "v=" << v;
  }
  EXPECT_EQ(del.delayed_writes, 0u);
}

// --- d > 0: staleness slows convergence but never corrupts the fixed point ---

class DelayedParam : public ::testing::TestWithParam<
                         std::tuple<AtomicityMode, std::size_t, std::size_t>> {
 protected:
  [[nodiscard]] EngineOptions options() const {
    EngineOptions opts;
    opts.mode = std::get<0>(GetParam());
    opts.num_threads = std::get<1>(GetParam());
    opts.delay = fixed(std::get<2>(GetParam()));
    return opts;
  }
};

TEST_P(DelayedParam, WccExactUnderDelay) {
  const Graph g = delay_graph();
  WccProgram prog;
  EdgeDataArray<WccProgram::EdgeData> edges(g.num_edges());
  prog.init(g, edges);
  const EngineResult r = delay::run_delayed(g, prog, edges, options());
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(prog.labels(), ref::wcc(g));
  EXPECT_LE(r.max_staleness, options().delay.max_steps());
}

TEST_P(DelayedParam, SsspExactUnderDelay) {
  const Graph g = delay_graph();
  SsspProgram prog(0, 21);
  EdgeDataArray<SsspProgram::EdgeData> edges(g.num_edges());
  prog.init(g, edges);
  const EngineResult r = delay::run_delayed(g, prog, edges, options());
  EXPECT_TRUE(r.converged);
  const auto expected = ref::sssp(g, 0, sssp_weights(g, 21));
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_FLOAT_EQ(prog.distances()[v], expected[v]) << "v=" << v;
  }
}

TEST_P(DelayedParam, BfsExactUnderDelayAsync) {
  const Graph g = delay_graph();
  BfsProgram prog(0);
  EdgeDataArray<BfsProgram::EdgeData> edges(g.num_edges());
  prog.init(g, edges);
  const EngineResult r = delay::run_delayed_async(g, prog, edges, options());
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(prog.levels(), ref::bfs(g, 0));
  EXPECT_LE(r.max_staleness, options().delay.max_steps());
}

TEST_P(DelayedParam, PageRankNearFixedPointUnderDelay) {
  const Graph g = delay_graph();
  const auto expected = ref::pagerank(g, 0.85, 1e-10);
  PageRankProgram prog(1e-4f);
  EdgeDataArray<float> edges(g.num_edges());
  prog.init(g, edges);
  const EngineResult r = delay::run_delayed(g, prog, edges, options());
  EXPECT_TRUE(r.converged);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_NEAR(prog.ranks()[v], expected[v], 0.05 * expected[v] + 0.01);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ModesThreadsDelays, DelayedParam,
    ::testing::Combine(::testing::Values(AtomicityMode::kRelaxed,
                                         AtomicityMode::kLocked),
                       ::testing::Values(std::size_t{1}, std::size_t{4}),
                       ::testing::Values(std::size_t{1}, std::size_t{4})),
    [](const auto& param_info) {
      return std::string(to_string(std::get<0>(param_info.param))) + "_t" +
             std::to_string(std::get<1>(param_info.param)) + "_d" +
             std::to_string(std::get<2>(param_info.param));
    });

// --- Delay policies ---

TEST(DelayedEngine, PoliciesConvergeAndRespectCeiling) {
  const Graph g = delay_graph();
  for (const DelayKind kind :
       {DelayKind::kFixed, DelayKind::kUniform, DelayKind::kPerThread}) {
    DelaySpec spec = fixed(4);
    spec.kind = kind;
    spec.jitter = 2;
    spec.seed = 13;
    EngineOptions opts;
    opts.num_threads = 4;
    opts.delay = spec;
    WccProgram prog;
    EdgeDataArray<WccProgram::EdgeData> edges(g.num_edges());
    prog.init(g, edges);
    const EngineResult r = delay::run_delayed(g, prog, edges, opts);
    EXPECT_TRUE(r.converged) << to_string(kind);
    EXPECT_EQ(prog.labels(), ref::wcc(g)) << to_string(kind);
    EXPECT_LE(r.max_staleness, spec.max_steps()) << to_string(kind);
    EXPECT_GT(r.delayed_writes, 0u) << to_string(kind);
  }
}

TEST(DelayedEngine, TelemetryHistogramAccounts) {
  const Graph g = delay_graph();
  EngineOptions opts;
  opts.num_threads = 4;
  opts.delay = fixed(3);
  PageRankProgram prog(1e-4f);
  EdgeDataArray<float> edges(g.num_edges());
  prog.init(g, edges);
  const EngineResult r = delay::run_delayed(g, prog, edges, opts);
  EXPECT_TRUE(r.converged);
  std::uint64_t hist_sum = 0;
  for (const std::uint64_t c : r.staleness_hist) hist_sum += c;
  EXPECT_EQ(hist_sum, r.delayed_writes);
  EXPECT_GE(r.mean_staleness(), 0.0);
  EXPECT_LE(r.mean_staleness(),
            static_cast<double>(opts.delay.max_steps()));
}

// --- Cross-validation against the logical simulator ---

TEST(DelayedEngine, SimulatorConvergenceParityAcrossRegistry) {
  // The delayed engine and the schedule-model simulator must hand every
  // registry program the same convergence outcome at the same d. For the
  // proven-eligible programs (Theorems 1 & 2) that outcome must be
  // "converged" at every bounded d — the delay-oblivious claim itself.
  const Graph g = delay_graph();
  for (const auto& entry : algorithm_registry(/*source=*/0, 200000)) {
    if (entry.static_verdict == EligibilityVerdict::kNotProven ||
        entry.static_conditional) {
      continue;  // no convergence guarantee to compare on either side
    }
    for (const std::size_t d : {std::size_t{0}, std::size_t{2}, std::size_t{4}}) {
      EngineOptions eopts;
      eopts.num_threads = 4;
      eopts.delay = fixed(d);
      const EngineResult eng = entry.run_delayed(g, eopts);

      SimOptions sopts;
      sopts.num_procs = 4;
      sopts.delay = d;
      sopts.seed = 3;
      const SimResult sim = entry.run_sim(g, sopts);

      EXPECT_TRUE(eng.converged) << entry.name << " d=" << d;
      EXPECT_TRUE(sim.converged) << entry.name << " d=" << d;
      EXPECT_EQ(eng.converged, sim.converged) << entry.name << " d=" << d;
    }
  }
}

}  // namespace
}  // namespace ndg
