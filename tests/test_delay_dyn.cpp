// Delay x dynamic-graph tests (docs/DELAY.md, docs/DYNAMIC.md): warm
// incremental recompute under bounded staleness must land on the same fixed
// point as the undelayed twin, the staleness probe must report a saturated
// budget for Theorem 1/2 programs, the gate must expose the delay-oblivious
// warm-delay bound, and the simulator cross-check must agree with the
// hardware delayed engine.

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "algorithms/mis.hpp"
#include "algorithms/pagerank.hpp"
#include "algorithms/reference/references.hpp"
#include "algorithms/sssp.hpp"
#include "algorithms/wcc.hpp"
#include "delay/delayed_engine.hpp"
#include "delay/staleness_probe.hpp"
#include "dyn/dyn_graph.hpp"
#include "dyn/eligibility_gate.hpp"
#include "dyn/incremental.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace ndg::dyn {
namespace {

constexpr VertexId kV = 256;

Graph base_graph() { return Graph::build(kV, gen::rmat(kV, 1400, 31)); }

EngineOptions make_opts(std::size_t delay_steps = 0) {
  EngineOptions opts;
  opts.num_threads = 4;
  opts.delay.steps = delay_steps;
  return opts;
}

/// Monotone SSSP batch over the current view (inserts + weight decreases).
MutationBatch monotone_batch(const DynGraph& dg, std::uint64_t seed,
                             std::uint64_t epoch) {
  MutationBatch batch;
  batch.epoch = epoch;
  SplitMix64 rng(seed);
  for (int i = 0; i < 80; ++i) {
    const auto u = static_cast<VertexId>(rng.next() % kV);
    const auto v = static_cast<VertexId>(rng.next() % kV);
    if (u == v) continue;
    if (!dg.has_edge(u, v)) {
      batch.mutations.push_back(
          Mutation{MutationKind::kInsertEdge, u, v,
                   1.0f + static_cast<float>(rng.next() % 8)});
    } else {
      batch.mutations.push_back(
          Mutation{MutationKind::kWeightChange, u, v, 0.5f});
    }
  }
  return batch;
}

TEST(DelayDyn, WarmSsspUnderDelayMatchesUndelayedTwinExactly) {
  // Two identical streams, one engine delayed (d=3), one not: every warm
  // epoch must land both on the SAME exact fixed point — staleness slows a
  // Theorem 2 warm start, it cannot bend where it converges to.
  DynGraphOptions gopts;
  gopts.base_weight = [](EdgeId e) { return SsspProgram::edge_weight(42, e); };
  DynGraph dg_plain(base_graph(), gopts);
  DynGraph dg_delay(base_graph(), gopts);
  SsspProgram prog_plain(/*source=*/0, /*weight_seed=*/42);
  SsspProgram prog_delay(/*source=*/0, /*weight_seed=*/42);
  IncrementalEngine<SsspProgram> plain(
      dg_plain, prog_plain, EligibilityGate(EligibilityVerdict::kTheorem2),
      make_opts());
  IncrementalEngine<SsspProgram> delayed(
      dg_delay, prog_delay, EligibilityGate(EligibilityVerdict::kTheorem2),
      make_opts(/*delay_steps=*/3));
  ASSERT_TRUE(plain.recompute_cold().converged);
  ASSERT_TRUE(delayed.recompute_cold().converged);
  EXPECT_EQ(prog_plain.distances(), prog_delay.distances());

  for (std::uint64_t epoch = 1; epoch <= 3; ++epoch) {
    const MutationBatch batch = monotone_batch(dg_plain, 11 * epoch, epoch);
    const EpochResult rp = plain.apply_epoch(batch);
    const EpochResult rd = delayed.apply_epoch(batch);
    ASSERT_TRUE(rp.engine.converged) << "epoch " << epoch;
    ASSERT_TRUE(rd.engine.converged) << "epoch " << epoch;
    EXPECT_TRUE(rp.warm) << "epoch " << epoch;
    EXPECT_TRUE(rd.warm) << "epoch " << epoch;
    EXPECT_GT(rd.engine.delayed_writes, 0u) << "epoch " << epoch;
    EXPECT_LE(rd.engine.max_staleness, 3u) << "epoch " << epoch;
    EXPECT_EQ(prog_plain.distances(), prog_delay.distances())
        << "epoch " << epoch;
  }
  EXPECT_EQ(delayed.warm_runs(), plain.warm_runs());
}

TEST(DelayDyn, SetDelayTakesEffectBetweenEpochs) {
  DynGraph dg(base_graph());
  PageRankProgram prog(/*epsilon=*/1e-4f);
  IncrementalEngine<PageRankProgram> inc(
      dg, prog, EligibilityGate(EligibilityVerdict::kTheorem1), make_opts());
  ASSERT_TRUE(inc.recompute_cold().converged);

  MutationBatch batch;
  batch.epoch = 1;
  SplitMix64 rng(5);
  for (int i = 0; i < 40; ++i) {
    const auto u = static_cast<VertexId>(rng.next() % kV);
    const auto v = static_cast<VertexId>(rng.next() % kV);
    if (u != v && !dg.has_edge(u, v)) {
      batch.mutations.push_back(Mutation{MutationKind::kInsertEdge, u, v, 1});
    }
  }
  const EpochResult undelayed = inc.apply_epoch(batch);
  ASSERT_TRUE(undelayed.engine.converged);
  EXPECT_EQ(undelayed.engine.delayed_writes, 0u);
  const std::vector<float> before = prog.ranks();

  DelaySpec spec;
  spec.steps = 4;
  inc.set_delay(spec);
  MutationBatch batch2 = batch;
  batch2.epoch = 2;
  batch2.mutations.clear();
  for (int i = 0; i < 40; ++i) {
    const auto u = static_cast<VertexId>(rng.next() % kV);
    const auto v = static_cast<VertexId>(rng.next() % kV);
    if (u != v && !dg.has_edge(u, v)) {
      batch2.mutations.push_back(Mutation{MutationKind::kInsertEdge, u, v, 1});
    }
  }
  const EpochResult delayed = inc.apply_epoch(batch2);
  ASSERT_TRUE(delayed.engine.converged);
  EXPECT_TRUE(delayed.warm);
  EXPECT_GT(delayed.engine.delayed_writes, 0u);
  EXPECT_LE(delayed.engine.max_staleness, 4u);
  // The warm-under-delay fixed point still agrees with a cold run.
  const std::vector<float> warm = prog.ranks();
  ASSERT_TRUE(inc.recompute_cold().converged);
  for (VertexId v = 0; v < kV; ++v) {
    EXPECT_NEAR(warm[v], prog.ranks()[v], 0.05 * prog.ranks()[v] + 0.01)
        << "v=" << v;
  }
  (void)before;
}

TEST(DelayDyn, StalenessProbeSaturatesForTheorem2Program) {
  const Graph g = base_graph();
  const std::vector<std::size_t> ds = {0, 1, 2, 4, 8};
  const auto probe = delay::probe_staleness(
      [&g](const DelaySpec& spec, EngineResult& out) {
        WccProgram prog;
        EdgeDataArray<WccProgram::EdgeData> edges(g.num_edges());
        prog.init(g, edges);
        EngineOptions opts;
        opts.num_threads = 4;
        opts.delay = spec;
        out = delay::run_delayed(g, prog, edges, opts);
        return prog.values();
      },
      ds);
  ASSERT_EQ(probe.points.size(), ds.size());
  EXPECT_TRUE(probe.saturated);
  EXPECT_EQ(probe.budget, 8u);
  for (const auto& p : probe.points) {
    EXPECT_TRUE(p.converged) << "d=" << p.d;
    EXPECT_LE(p.max_staleness, p.d) << "d=" << p.d;
    EXPECT_DOUBLE_EQ(p.max_abs_diff, 0.0) << "d=" << p.d;
  }
}

TEST(DelayDyn, GateExposesDelayObliviousWarmBound) {
  EXPECT_EQ(EligibilityGate(EligibilityVerdict::kTheorem1).max_warm_delay(),
            EligibilityGate::kUnboundedDelay);
  EXPECT_EQ(EligibilityGate(EligibilityVerdict::kTheorem2).max_warm_delay(),
            EligibilityGate::kUnboundedDelay);
  EXPECT_EQ(EligibilityGate(EligibilityVerdict::kNotProven).max_warm_delay(),
            0u);
}

TEST(DelayDyn, MisExactUnderEveryDelayPolicyAndThreadCount) {
  // MIS's fixed point is the lexicographically-first (greedy-by-id) set — a
  // single exact answer, not an epsilon ball. Bounded staleness may reorder
  // and delay half-publications arbitrarily within d, but a Theorem 2
  // program's fixed point is schedule-oblivious: every (d, policy, threads)
  // cell must reproduce the sequential oracle bit-for-bit.
  const Graph g = base_graph();
  const auto ref_in = ref::greedy_mis(g);
  for (const std::size_t d : {std::size_t{1}, std::size_t{4}}) {
    for (const DelayKind kind :
         {DelayKind::kFixed, DelayKind::kUniform, DelayKind::kPerThread}) {
      for (const std::size_t nt : {std::size_t{1}, std::size_t{4}}) {
        MisProgram prog;
        EdgeDataArray<MisProgram::EdgeData> edges(g.num_edges());
        prog.init(g, edges);
        EngineOptions opts = make_opts(d);
        opts.num_threads = nt;
        opts.delay.kind = kind;
        const EngineResult r = delay::run_delayed(g, prog, edges, opts);
        ASSERT_TRUE(r.converged)
            << "d=" << d << " kind=" << static_cast<int>(kind) << " nt=" << nt;
        EXPECT_LE(r.max_staleness, d);
        for (VertexId v = 0; v < g.num_vertices(); ++v) {
          ASSERT_EQ(prog.states()[v] == MisProgram::kIn, ref_in[v] != 0)
              << "v=" << v << " d=" << d << " kind=" << static_cast<int>(kind)
              << " nt=" << nt;
        }
      }
    }
  }
}

TEST(DelayDyn, SimulatorCrossCheckAgrees) {
  const Graph g = base_graph();
  EngineOptions opts;
  opts.num_threads = 4;
  for (const std::size_t d : {std::size_t{0}, std::size_t{2}, std::size_t{6}}) {
    const auto check = delay::cross_validate_delay<WccProgram>(
        g, [] { return WccProgram(); }, d, /*procs=*/4, opts);
    EXPECT_TRUE(check.agree()) << "d=" << d;
    EXPECT_TRUE(check.engine_converged) << "d=" << d;
    EXPECT_TRUE(check.sim_converged) << "d=" << d;
  }
}

}  // namespace
}  // namespace ndg::dyn
