// Wire codec tests (dyn/wire.hpp): the flat-JSON line protocol ndg_serve
// speaks. Parse/serialize round-trips, escape handling, typed getters, and
// rejection of everything outside the flat subset.

#include <gtest/gtest.h>

#include <string>

#include "dyn/wire.hpp"

namespace ndg::dyn {
namespace {

WireMessage parse_ok(const std::string& line) {
  WireMessage msg;
  std::string err;
  EXPECT_TRUE(parse_wire(line, msg, &err)) << "line: " << line
                                           << " err: " << err;
  return msg;
}

void expect_reject(const std::string& line) {
  WireMessage msg;
  std::string err;
  EXPECT_FALSE(parse_wire(line, msg, &err)) << "line: " << line;
  EXPECT_FALSE(err.empty());
}

TEST(Wire, ParsesScalarsOfEveryType) {
  const WireMessage m = parse_ok(
      R"({"op":"mutate","src":3,"dst":18446744073709551615,)"
      R"("weight":-2.5e3,"fast":true,"note":"hi","gone":null})");
  std::string s;
  std::uint64_t u = 0;
  double d = 0;
  bool b = false;
  EXPECT_TRUE(m.get_string("op", s));
  EXPECT_EQ(s, "mutate");
  EXPECT_TRUE(m.get_u64("src", u));
  EXPECT_EQ(u, 3u);
  EXPECT_TRUE(m.get_u64("dst", u));
  EXPECT_EQ(u, 18446744073709551615ull);
  EXPECT_TRUE(m.get_double("weight", d));
  EXPECT_DOUBLE_EQ(d, -2500.0);
  EXPECT_TRUE(m.get_bool("fast", b));
  EXPECT_TRUE(b);
  EXPECT_TRUE(m.has("gone"));
  EXPECT_FALSE(m.has("absent"));
}

TEST(Wire, GettersFailOnAbsentOrMistypedFields) {
  const WireMessage m = parse_ok(R"({"name":"abc","n":"12x"})");
  std::uint64_t u = 99;
  double d = 99;
  bool b = true;
  EXPECT_FALSE(m.get_u64("name", u));
  EXPECT_FALSE(m.get_u64("n", u));  // trailing junk is not a number
  EXPECT_FALSE(m.get_double("name", d));
  EXPECT_FALSE(m.get_bool("name", b));
  EXPECT_FALSE(m.get_u64("missing", u));
}

TEST(Wire, UnescapesStringValues) {
  const WireMessage m =
      parse_ok(R"({"a":"line\nbreak","b":"quote\"slash\\","c":"Aé"})");
  std::string s;
  EXPECT_TRUE(m.get_string("a", s));
  EXPECT_EQ(s, "line\nbreak");
  EXPECT_TRUE(m.get_string("b", s));
  EXPECT_EQ(s, "quote\"slash\\");
  EXPECT_TRUE(m.get_string("c", s));
  EXPECT_EQ(s, "A\xc3\xa9");  // é -> UTF-8 é
}

TEST(Wire, AcceptsWhitespaceAndEmptyObject) {
  (void)parse_ok("  { \"a\" : 1 , \"b\" : \"x\" }  ");
  const WireMessage empty = parse_ok("{}");
  EXPECT_TRUE(empty.fields().empty());
}

TEST(Wire, RejectsNestedAndMalformedInput) {
  expect_reject(R"({"a":{"nested":1}})");
  expect_reject(R"({"a":[1,2]})");
  expect_reject(R"({"a":1)");          // truncated
  expect_reject(R"({"a" 1})");         // missing colon
  expect_reject(R"({"a":1} trailing)");
  expect_reject(R"({a:1})");           // unquoted key
  expect_reject("");
  expect_reject("not json at all");
  expect_reject(R"({"a":"unterminated)");
}

TEST(Wire, RejectsNonJsonScalarTokens) {
  // Unquoted values must be one of JSON's scalar spellings; bare words used
  // to be stored verbatim and only blow up later as a misleading
  // "missing field" error from the typed getters.
  expect_reject(R"({"vertex":xyz})");
  expect_reject(R"({"n":01})");    // leading zero
  expect_reject(R"({"n":+5})");    // JSON has no unary plus
  expect_reject(R"({"n":1.})");    // digits required after the point
  expect_reject(R"({"n":.5})");    // ...and before it
  expect_reject(R"({"n":1e})");    // empty exponent
  expect_reject(R"({"n":1e+})");
  expect_reject(R"({"n":nan})");   // IEEE specials are not JSON
  expect_reject(R"({"n":inf})");
  expect_reject(R"({"b":tru})");   // truncated keyword
  expect_reject(R"({"b":True})");  // wrong case
  expect_reject(R"({"n":--1})");
  expect_reject(R"({"n":1 2})");   // whitespace splits the token
}

TEST(Wire, BadScalarErrorNamesTheKey) {
  WireMessage msg;
  std::string err;
  EXPECT_FALSE(parse_wire(R"({"op":"query","vertex":xyz})", msg, &err));
  EXPECT_NE(err.find("\"vertex\""), std::string::npos) << err;
}

TEST(Wire, AcceptsFullJsonNumberGrammar) {
  const WireMessage m = parse_ok(
      R"({"a":-0.5e-2,"b":0,"c":-0,"d":1E+9,"e":0.25,"f":12e0})");
  double d = 0;
  EXPECT_TRUE(m.get_double("a", d));
  EXPECT_DOUBLE_EQ(d, -0.005);
  EXPECT_TRUE(m.get_double("c", d));
  EXPECT_DOUBLE_EQ(d, 0.0);
  EXPECT_TRUE(m.get_double("d", d));
  EXPECT_DOUBLE_EQ(d, 1e9);
  EXPECT_TRUE(m.get_double("f", d));
  EXPECT_DOUBLE_EQ(d, 12.0);
}

TEST(Wire, UnicodeEscapeEdgeCases) {
  const WireMessage m =
      parse_ok("{\"a\":\"\\u0041\",\"b\":\"\\u00e9\",\"c\":\"\\u20AC\"}");
  std::string s;
  EXPECT_TRUE(m.get_string("a", s));
  EXPECT_EQ(s, "A");
  EXPECT_TRUE(m.get_string("b", s));
  EXPECT_EQ(s, "\xc3\xa9");  // 2-byte UTF-8
  EXPECT_TRUE(m.get_string("c", s));
  EXPECT_EQ(s, "\xe2\x82\xac");  // 3-byte UTF-8 (euro sign)

  expect_reject(R"({"a":"\u12"})");    // truncated escape
  expect_reject(R"({"a":"\u12g4"})");  // non-hex digit
  expect_reject(R"({"a":"\x41"})");    // unknown escape
}

TEST(Wire, WriterProducesCanonicalFlatJson) {
  const std::string line = WireWriter()
                               .boolean("ok", true)
                               .str("reason", "theorem-1")
                               .u64("epoch", 7)
                               .i64("delta", -3)
                               .num("value", 1.25)
                               .finish();
  EXPECT_EQ(line,
            R"({"ok":true,"reason":"theorem-1","epoch":7,"delta":-3,"value":1.25})");
}

TEST(Wire, WriterEscapesStrings) {
  const std::string line =
      WireWriter().str("msg", "a\"b\\c\nd").finish();
  EXPECT_EQ(line, R"({"msg":"a\"b\\c\nd"})");
}

TEST(Wire, WriterRoundTripsThroughParser) {
  const std::string line = WireWriter()
                               .str("op", "query é\n")
                               .u64("vertex", 123456789)
                               .num("value", -0.0078125)
                               .boolean("warm", false)
                               .finish();
  const WireMessage m = parse_ok(line);
  std::string s;
  std::uint64_t u = 0;
  double d = 0;
  bool b = true;
  EXPECT_TRUE(m.get_string("op", s));
  EXPECT_EQ(s, "query é\n");
  EXPECT_TRUE(m.get_u64("vertex", u));
  EXPECT_EQ(u, 123456789u);
  EXPECT_TRUE(m.get_double("value", d));
  EXPECT_DOUBLE_EQ(d, -0.0078125);
  EXPECT_TRUE(m.get_bool("warm", b));
  EXPECT_FALSE(b);
}

TEST(Wire, DuplicateKeysFirstOneWinsForGetters) {
  WireMessage m;
  std::string err;
  ASSERT_TRUE(parse_wire(R"({"k":1,"k":2})", m, &err)) << err;
  std::uint64_t u = 0;
  EXPECT_TRUE(m.get_u64("k", u));
  EXPECT_EQ(u, 1u);
}

}  // namespace
}  // namespace ndg::dyn
