// Distributed execution model tests (§VII): partitioning, message plumbing,
// replica divergence and recovery, and reference agreement across machine
// counts, delays, partitions and seeds.

#include <gtest/gtest.h>

#include "algorithms/bfs.hpp"
#include "algorithms/kcore.hpp"
#include "algorithms/mis.hpp"
#include "algorithms/pagerank.hpp"
#include "algorithms/reference/references.hpp"
#include "algorithms/sssp.hpp"
#include "algorithms/wcc.hpp"
#include "engine/distributed.hpp"
#include "graph/generators.hpp"

namespace ndg {
namespace {

Graph dist_graph() {
  EdgeList edges = gen::rmat(256, 1500, 404);
  auto tail = gen::chain(24);
  edges.insert(edges.end(), tail.begin(), tail.end());
  return Graph::build(256, std::move(edges));
}

TEST(Distributed, SingleMachineMatchesLocalSemantics) {
  const Graph g = dist_graph();
  WccProgram prog;
  EdgeDataArray<WccProgram::EdgeData> edges(g.num_edges());
  prog.init(g, edges);
  DistOptions opts;
  opts.num_machines = 1;
  const DistResult r = run_distributed(g, prog, edges, opts);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.messages, 0u);  // nothing ever crosses a machine boundary
  EXPECT_EQ(r.replica_divergences, 0u);
  EXPECT_EQ(prog.labels(), ref::wcc(g));
}

class DistSweep
    : public ::testing::TestWithParam<
          std::tuple<std::size_t, std::size_t, DistOptions::Partition>> {
 protected:
  [[nodiscard]] DistOptions options() const {
    DistOptions opts;
    opts.num_machines = std::get<0>(GetParam());
    opts.network_delay = std::get<1>(GetParam());
    opts.partition = std::get<2>(GetParam());
    return opts;
  }
};

TEST_P(DistSweep, WccExactDespiteReplicaDivergence) {
  const Graph g = dist_graph();
  WccProgram prog;
  EdgeDataArray<WccProgram::EdgeData> edges(g.num_edges());
  prog.init(g, edges);
  const DistResult r = run_distributed(g, prog, edges, options());
  EXPECT_TRUE(r.converged);
  EXPECT_GT(r.messages, 0u);
  EXPECT_EQ(prog.labels(), ref::wcc(g));
}

TEST_P(DistSweep, BfsExact) {
  const Graph g = dist_graph();
  BfsProgram prog(0);
  EdgeDataArray<BfsProgram::EdgeData> edges(g.num_edges());
  prog.init(g, edges);
  const DistResult r = run_distributed(g, prog, edges, options());
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(prog.levels(), ref::bfs(g, 0));
}

TEST_P(DistSweep, SsspExact) {
  const Graph g = dist_graph();
  SsspProgram prog(0, 31);
  std::vector<float> weights(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    weights[e] = SsspProgram::edge_weight(31, e);
  }
  EdgeDataArray<SsspProgram::EdgeData> edges(g.num_edges());
  prog.init(g, edges);
  const DistResult r = run_distributed(g, prog, edges, options());
  EXPECT_TRUE(r.converged);
  const auto expected = ref::sssp(g, 0, weights);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_FLOAT_EQ(prog.distances()[v], expected[v]) << "v=" << v;
  }
}

TEST_P(DistSweep, PageRankNearFixedPoint) {
  const Graph g = dist_graph();
  const auto expected = ref::pagerank(g, 0.85, 1e-10);
  PageRankProgram prog(1e-4f);
  EdgeDataArray<float> edges(g.num_edges());
  prog.init(g, edges);
  const DistResult r = run_distributed(g, prog, edges, options());
  EXPECT_TRUE(r.converged);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_NEAR(prog.ranks()[v], expected[v], 0.05 * expected[v] + 0.01);
  }
}

INSTANTIATE_TEST_SUITE_P(
    MachinesDelaysPartitions, DistSweep,
    ::testing::Combine(::testing::Values(std::size_t{2}, std::size_t{4},
                                         std::size_t{8}),
                       ::testing::Values(std::size_t{1}, std::size_t{3}),
                       ::testing::Values(DistOptions::Partition::kBlock,
                                         DistOptions::Partition::kHash)),
    [](const auto& param_info) {
      return "m" + std::to_string(std::get<0>(param_info.param)) + "_d" +
             std::to_string(std::get<1>(param_info.param)) +
             (std::get<2>(param_info.param) == DistOptions::Partition::kBlock
                  ? "_block"
                  : "_hash");
    });

TEST(Distributed, PartitionsCoverEveryVertex) {
  const Graph g = dist_graph();
  for (const auto partition :
       {DistOptions::Partition::kBlock, DistOptions::Partition::kHash}) {
    DistOptions opts;
    opts.num_machines = 5;
    opts.partition = partition;
    detail::DistMachine machine(g, opts);
    std::vector<std::size_t> count(5, 0);
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      const std::size_t m = machine.machine_of(v);
      ASSERT_LT(m, 5u);
      ++count[m];
    }
    // Every machine owns a nontrivial share (256 vertices over 5 machines).
    for (std::size_t m = 0; m < 5; ++m) {
      EXPECT_GT(count[m], 10u) << "partition "
                               << (partition == DistOptions::Partition::kBlock
                                       ? "block"
                                       : "hash")
                               << " machine " << m;
    }
  }
}

TEST(Distributed, BlockPartitionIsContiguous) {
  const Graph g = dist_graph();
  DistOptions opts;
  opts.num_machines = 4;
  detail::DistMachine machine(g, opts);
  std::size_t prev = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const std::size_t m = machine.machine_of(v);
    EXPECT_GE(m, prev);  // non-decreasing over ascending labels
    prev = m;
  }
}

TEST(Distributed, CrossMachineEdgesGenerateMessages) {
  // Chain split across 2 machines: every boundary write must become a
  // message, and the WCC label must still traverse the network.
  const Graph g = Graph::build(16, gen::chain(16));
  WccProgram prog;
  EdgeDataArray<WccProgram::EdgeData> edges(g.num_edges());
  prog.init(g, edges);
  DistOptions opts;
  opts.num_machines = 2;
  opts.network_delay = 2;
  const DistResult r = run_distributed(g, prog, edges, opts);
  EXPECT_TRUE(r.converged);
  EXPECT_GT(r.messages, 0u);
  for (const auto l : prog.labels()) EXPECT_EQ(l, 0u);
}

TEST(Distributed, LongerDelayCostsRounds) {
  const Graph g = Graph::build(64, gen::chain(64));
  auto rounds_with_delay = [&](std::size_t delay) {
    WccProgram prog;
    EdgeDataArray<WccProgram::EdgeData> edges(g.num_edges());
    prog.init(g, edges);
    DistOptions opts;
    opts.num_machines = 8;
    opts.network_delay = delay;
    const DistResult r = run_distributed(g, prog, edges, opts);
    EXPECT_TRUE(r.converged);
    return r.rounds;
  };
  EXPECT_LT(rounds_with_delay(1), rounds_with_delay(8));
}

TEST(Distributed, DivergenceCounterFiresOnSharedWriters) {
  // WCC writes edges from both endpoints: when the endpoints live on
  // different machines, deliveries routinely find the replicas diverged.
  const Graph g = Graph::build(64, symmetrize(gen::small_world(64, 3, 0.1, 5)));
  WccProgram prog;
  EdgeDataArray<WccProgram::EdgeData> edges(g.num_edges());
  prog.init(g, edges);
  DistOptions opts;
  opts.num_machines = 8;
  opts.network_delay = 2;
  const DistResult r = run_distributed(g, prog, edges, opts);
  EXPECT_TRUE(r.converged);
  EXPECT_GT(r.replica_divergences, 0u);
  EXPECT_EQ(prog.labels(), ref::wcc(g));
}

TEST(Distributed, KCoreExactAcrossTheNetwork) {
  // Dual-slot repair discipline over messages: whole-word remote writes can
  // clobber the peer's half on the peer's own replica; the repair ping-pong
  // must still land on the exact core numbers.
  const Graph g = Graph::build(96, gen::rmat(96, 700, 55));
  const auto expected = ref::kcore(g);
  for (const std::size_t delay : {1u, 3u}) {
    KCoreProgram prog;
    EdgeDataArray<DualEdge> edges(g.num_edges());
    prog.init(g, edges);
    DistOptions opts;
    opts.num_machines = 6;
    opts.network_delay = delay;
    const DistResult r = run_distributed(g, prog, edges, opts);
    EXPECT_TRUE(r.converged) << "delay=" << delay;
    EXPECT_EQ(prog.core_numbers(), expected) << "delay=" << delay;
  }
}

TEST(Distributed, MisLexicographicAcrossTheNetwork) {
  const Graph g = Graph::build(96, gen::erdos_renyi(96, 500, 8));
  const auto expected = ref::greedy_mis(g);
  MisProgram prog;
  EdgeDataArray<DualEdge> edges(g.num_edges());
  prog.init(g, edges);
  DistOptions opts;
  opts.num_machines = 5;
  opts.network_delay = 2;
  const DistResult r = run_distributed(g, prog, edges, opts);
  EXPECT_TRUE(r.converged);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(prog.states()[v] == MisProgram::kIn, expected[v]) << "v=" << v;
  }
}

TEST(Distributed, DeterministicPerSeed) {
  const Graph g = dist_graph();
  auto run_once = [&](std::uint64_t seed) {
    PageRankProgram prog(1e-3f);
    EdgeDataArray<float> edges(g.num_edges());
    prog.init(g, edges);
    DistOptions opts;
    opts.num_machines = 4;
    opts.network_delay = 2;
    opts.seed = seed;
    run_distributed(g, prog, edges, opts);
    return prog.ranks();
  };
  EXPECT_EQ(run_once(7), run_once(7));
}

}  // namespace
}  // namespace ndg
