// The engine-equivalence matrix: every execution configuration the library
// offers — deterministic, PSW, BSP, chromatic, nondeterministic (threaded),
// pure-async, simulated, distributed, out-of-core deterministic and
// out-of-core nondeterministic — must drive WCC to the identical fixed point
// (and SSSP to exact distances) on randomly generated graphs. This is the
// repo-level statement of the paper's thesis: for eligible algorithms, HOW
// you execute does not change WHAT you compute.

#include <gtest/gtest.h>

#include <filesystem>

#include "algorithms/reference/references.hpp"
#include "algorithms/sssp.hpp"
#include "algorithms/wcc.hpp"
#include "engine/bsp.hpp"
#include "engine/chromatic.hpp"
#include "engine/deterministic.hpp"
#include "engine/distributed.hpp"
#include "engine/nondeterministic.hpp"
#include "engine/psw.hpp"
#include "engine/pure_async.hpp"
#include "engine/simulator.hpp"
#include "graph/generators.hpp"
#include "ooc/ooc_nondet.hpp"

namespace ndg {
namespace {

std::string fresh_dir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/ndg_matrix_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

class EngineMatrix : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  void SetUp() override {
    const std::uint64_t seed = GetParam();
    EdgeList edges = gen::rmat(200, 1100, seed);
    auto tail = gen::chain(16);
    edges.insert(edges.end(), tail.begin(), tail.end());
    graph_ = Graph::build(200, std::move(edges));
  }

  template <typename Runner>
  std::vector<std::uint32_t> wcc_labels(Runner&& run) {
    WccProgram prog;
    EdgeDataArray<WccProgram::EdgeData> edges(graph_.num_edges());
    prog.init(graph_, edges);
    const bool converged = run(prog, edges);
    EXPECT_TRUE(converged);
    return prog.labels();
  }

  Graph graph_;
};

TEST_P(EngineMatrix, AllTenConfigurationsAgreeOnWcc) {
  const auto expected = ref::wcc(graph_);
  const std::string tag = std::to_string(GetParam());

  // 1. deterministic (sequential Gauss–Seidel)
  EXPECT_EQ(wcc_labels([&](auto& p, auto& e) {
              return run_deterministic(graph_, p, e).converged;
            }),
            expected)
      << "deterministic";

  // 2. PSW external deterministic scheduler
  const IntervalPlan intervals = make_intervals(graph_, 4);
  EXPECT_EQ(wcc_labels([&](auto& p, auto& e) {
              EngineOptions o;
              o.num_threads = 3;
              return run_psw_deterministic(graph_, p, e, intervals, o).converged;
            }),
            expected)
      << "psw";

  // 3. synchronous (BSP)
  EXPECT_EQ(wcc_labels([&](auto& p, auto& e) {
              return run_bsp(graph_, p, e).converged;
            }),
            expected)
      << "bsp";

  // 4. chromatic deterministic-parallel
  const Coloring coloring = greedy_color(graph_);
  EXPECT_EQ(wcc_labels([&](auto& p, auto& e) {
              EngineOptions o;
              o.num_threads = 3;
              return run_chromatic(graph_, p, e, coloring, o).converged;
            }),
            expected)
      << "chromatic";

  // 5. nondeterministic threaded (relaxed atomics)
  EXPECT_EQ(wcc_labels([&](auto& p, auto& e) {
              EngineOptions o;
              o.num_threads = 4;
              o.mode = AtomicityMode::kRelaxed;
              return run_nondeterministic(graph_, p, e, o).converged;
            }),
            expected)
      << "nondeterministic";

  // 6. pure asynchronous (no barriers)
  EXPECT_EQ(wcc_labels([&](auto& p, auto& e) {
              EngineOptions o;
              o.num_threads = 4;
              return run_pure_async(graph_, p, e, o).converged;
            }),
            expected)
      << "pure-async";

  // 7. logical-processor simulator (adversarial schedule)
  EXPECT_EQ(wcc_labels([&](auto& p, auto& e) {
              SimOptions o;
              o.num_procs = 8;
              o.delay = 6;
              o.seed = GetParam();
              return run_simulated(graph_, p, e, o).converged;
            }),
            expected)
      << "simulator";

  // 8. distributed (4 machines, delay 2)
  EXPECT_EQ(wcc_labels([&](auto& p, auto& e) {
              DistOptions o;
              o.num_machines = 4;
              o.network_delay = 2;
              o.seed = GetParam();
              return run_distributed(graph_, p, e, o).converged;
            }),
            expected)
      << "distributed";

  // 9. out-of-core deterministic (file-backed PSW)
  const ShardPlan shards = make_shard_plan(graph_, 3);
  EXPECT_EQ(wcc_labels([&](auto& p, auto& e) {
              return run_ooc_deterministic(graph_, p, e, shards,
                                           fresh_dir("de_" + tag))
                  .converged;
            }),
            expected)
      << "ooc-deterministic";

  // 10. out-of-core nondeterministic (the paper's patched GraphChi)
  EXPECT_EQ(wcc_labels([&](auto& p, auto& e) {
              EngineOptions o;
              o.num_threads = 4;
              o.mode = AtomicityMode::kRelaxed;
              return run_ooc_nondeterministic(graph_, p, e, shards,
                                              fresh_dir("ne_" + tag), o)
                  .converged;
            }),
            expected)
      << "ooc-nondeterministic";
}

TEST_P(EngineMatrix, SsspExactOnRepresentativeConfigurations) {
  const VertexId src = 0;
  const std::uint64_t wseed = GetParam() + 99;
  std::vector<float> weights(graph_.num_edges());
  for (EdgeId e = 0; e < graph_.num_edges(); ++e) {
    weights[e] = SsspProgram::edge_weight(wseed, e);
  }
  const auto expected = ref::sssp(graph_, src, weights);

  auto check = [&](auto&& run, const char* tag) {
    SsspProgram prog(src, wseed);
    EdgeDataArray<SsspProgram::EdgeData> edges(graph_.num_edges());
    prog.init(graph_, edges);
    EXPECT_TRUE(run(prog, edges)) << tag;
    for (VertexId v = 0; v < graph_.num_vertices(); ++v) {
      ASSERT_FLOAT_EQ(prog.distances()[v], expected[v]) << tag << " v=" << v;
    }
  };

  check([&](auto& p, auto& e) {
    EngineOptions o;
    o.num_threads = 4;
    o.mode = AtomicityMode::kAligned;
    return run_nondeterministic(graph_, p, e, o).converged;
  }, "ne-aligned");
  check([&](auto& p, auto& e) {
    EngineOptions o;
    o.num_threads = 4;
    return run_pure_async(graph_, p, e, o).converged;
  }, "pure-async");
  check([&](auto& p, auto& e) {
    DistOptions o;
    o.num_machines = 3;
    o.network_delay = 2;
    return run_distributed(graph_, p, e, o).converged;
  }, "distributed");
}

INSTANTIATE_TEST_SUITE_P(GraphSeeds, EngineMatrix,
                         ::testing::Values(11u, 22u, 33u, 44u));

}  // namespace
}  // namespace ndg
