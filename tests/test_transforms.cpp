// Graph-transformation tests: transpose, induced subgraphs, largest-WCC
// extraction, degree relabeling — and the invariance of algorithm results
// under relabeling (the schedule changes; the answer must not).

#include <gtest/gtest.h>

#include <algorithm>

#include "algorithms/reference/references.hpp"
#include "algorithms/wcc.hpp"
#include "engine/deterministic.hpp"
#include "graph/generators.hpp"
#include "graph/transforms.hpp"

namespace ndg {
namespace {

TEST(Transpose, ReversesEveryEdge) {
  const Graph g = Graph::build(4, {{0, 1}, {1, 2}, {3, 1}});
  const Graph t = transpose(g);
  EXPECT_EQ(t.num_edges(), 3u);
  EXPECT_EQ(t.out_degree(1), 2u);  // 1->0, 1->3
  EXPECT_EQ(t.in_degree(1), 1u);   // 2->1
  // Double transpose is the identity on topology.
  const Graph tt = transpose(t);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_EQ(tt.edge_source(e), g.edge_source(e));
    EXPECT_EQ(tt.edge_target(e), g.edge_target(e));
  }
}

TEST(InducedSubgraph, KeepsOnlyInternalEdges) {
  const Graph g = Graph::build(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}});
  const Graph sub = induced_subgraph(g, {1, 2, 3});
  EXPECT_EQ(sub.num_vertices(), 3u);
  EXPECT_EQ(sub.num_edges(), 2u);  // 1->2 and 2->3, relabeled 0->1, 1->2
  EXPECT_EQ(sub.out_degree(0), 1u);
  EXPECT_EQ(sub.out_neighbors(0)[0], 1u);
}

TEST(InducedSubgraph, EmptyKeepGivesEmptyGraph) {
  const Graph g = Graph::build(3, gen::cycle(3));
  const Graph sub = induced_subgraph(g, {});
  EXPECT_EQ(sub.num_vertices(), 0u);
  EXPECT_EQ(sub.num_edges(), 0u);
}

TEST(LargestWeakComponent, FindsTheBigOne) {
  // Component A: 0-1-2 (3 vertices); component B: 10..15 chain (6 vertices).
  EdgeList edges{{0, 1}, {1, 2}};
  for (VertexId v = 10; v < 15; ++v) edges.push_back(Edge{v, v + 1});
  const Graph g = Graph::build(16, edges);
  const auto keep = largest_weak_component(g);
  EXPECT_EQ(keep.size(), 6u);
  EXPECT_EQ(keep.front(), 10u);
  EXPECT_TRUE(std::is_sorted(keep.begin(), keep.end()));
}

TEST(LargestWeakComponent, ExtractionIsFullyConnected) {
  const Graph g = Graph::build(300, gen::rmat(300, 900, 77));
  const auto keep = largest_weak_component(g);
  const Graph sub = induced_subgraph(g, keep);
  const auto labels = ref::wcc(sub);
  for (const auto l : labels) EXPECT_EQ(l, 0u);
}

TEST(RelabelByDegree, HubGetsLabelZero) {
  const Graph g = Graph::build(10, gen::star(10));
  const Relabeling r = relabel_by_degree(g);
  EXPECT_EQ(r.old_to_new[0], 0u);  // the hub
  EXPECT_EQ(r.graph.out_degree(0), 9u);
  // Mapping is a permutation.
  std::vector<VertexId> seen(r.old_to_new.begin(), r.old_to_new.end());
  std::sort(seen.begin(), seen.end());
  for (VertexId i = 0; i < 10; ++i) EXPECT_EQ(seen[i], i);
}

TEST(RelabelByDegree, PreservesTopology) {
  const Graph g = Graph::build(100, gen::rmat(100, 400, 8));
  const Relabeling r = relabel_by_degree(g);
  EXPECT_EQ(r.graph.num_edges(), g.num_edges());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(r.graph.out_degree(r.old_to_new[v]), g.out_degree(v));
    EXPECT_EQ(r.graph.in_degree(r.old_to_new[v]), g.in_degree(v));
  }
}

TEST(RelabelByDegree, WccResultInvariantUnderRelabeling) {
  // Relabeling changes the deterministic schedule (labels ARE the order in
  // this model) but must not change which vertices share a component.
  const Graph g = Graph::build(200, gen::rmat(200, 700, 15));
  const Relabeling r = relabel_by_degree(g);

  WccProgram orig;
  EdgeDataArray<WccProgram::EdgeData> e1(g.num_edges());
  orig.init(g, e1);
  run_deterministic(g, orig, e1);

  WccProgram rel;
  EdgeDataArray<WccProgram::EdgeData> e2(r.graph.num_edges());
  rel.init(r.graph, e2);
  run_deterministic(r.graph, rel, e2);

  // Same-component relation must be identical under the mapping.
  for (VertexId a = 0; a < g.num_vertices(); ++a) {
    for (VertexId b = a + 1; b < std::min<VertexId>(g.num_vertices(), a + 10);
         ++b) {
      const bool together_orig = orig.labels()[a] == orig.labels()[b];
      const bool together_rel =
          rel.labels()[r.old_to_new[a]] == rel.labels()[r.old_to_new[b]];
      EXPECT_EQ(together_orig, together_rel) << a << "," << b;
    }
  }
}

}  // namespace
}  // namespace ndg
