// Engine × scheduler matrix: every SchedulerKind must leave the fixed point
// unchanged on both the barriered nondeterministic engine and the pure-async
// engine — the schedule π(v) is a free parameter for eligible algorithms
// (Theorems 1 & 2), so static blocks, randomized stealing, and priority
// buckets all converge to the sequential reference. Runs in
// AtomicityMode::kRelaxed so the NDG_TSAN CI job can execute this binary:
// any race it reports is a scheduler/team bug, not a Section III policy race.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <numeric>
#include <vector>

#include "algorithms/pagerank.hpp"
#include "algorithms/reference/references.hpp"
#include "algorithms/sssp.hpp"
#include "algorithms/wcc.hpp"
#include "engine/nondeterministic.hpp"
#include "engine/pure_async.hpp"
#include "graph/generators.hpp"
#include "graph/graph_stats.hpp"

namespace ndg {
namespace {

Graph test_graph() {
  // Skewed enough that stealing actually steals, small enough for TSan.
  EdgeList el = gen::rmat(/*n=*/512, /*m=*/4096, /*seed=*/99);
  return Graph::build(512, std::move(el));
}

EngineOptions make_opts(SchedulerKind kind, std::size_t threads) {
  EngineOptions opts;
  opts.num_threads = threads;
  opts.mode = AtomicityMode::kRelaxed;
  opts.scheduler = kind;
  return opts;
}

constexpr SchedulerKind kAllKinds[] = {SchedulerKind::kStaticBlock,
                                       SchedulerKind::kStealing,
                                       SchedulerKind::kBucket};
constexpr std::size_t kThreadCounts[] = {1, 4};

void check_telemetry(const EngineResult& r, std::size_t threads,
                     const std::string& label) {
  ASSERT_EQ(r.per_thread_updates.size(), threads) << label;
  const std::uint64_t sum = std::accumulate(r.per_thread_updates.begin(),
                                            r.per_thread_updates.end(),
                                            std::uint64_t{0});
  EXPECT_EQ(sum, r.updates) << label;
  EXPECT_GE(r.load_imbalance(), 1.0) << label;
}

TEST(SchedEngineMatrix, PageRankConvergesUnderEverySchedule) {
  const Graph g = test_graph();
  const auto expected = ref::pagerank(g, 0.85, 1e-10);
  for (const SchedulerKind kind : kAllKinds) {
    for (const std::size_t threads : kThreadCounts) {
      for (const bool async : {false, true}) {
        const std::string label = std::string(to_string(kind)) + "/t" +
                                  std::to_string(threads) +
                                  (async ? "/async" : "/ne");
        PageRankProgram prog(1e-4f);
        EdgeDataArray<float> edges(g.num_edges());
        prog.init(g, edges);
        const EngineOptions opts = make_opts(kind, threads);
        const EngineResult r =
            async ? run_pure_async(g, prog, edges, opts)
                  : run_nondeterministic(g, prog, edges, opts);
        ASSERT_TRUE(r.converged) << label;
        check_telemetry(r, threads, label);
        for (VertexId v = 0; v < g.num_vertices(); ++v) {
          ASSERT_NEAR(prog.ranks()[v], expected[v],
                      0.05 * expected[v] + 0.01)
              << label << " vertex " << v;
        }
      }
    }
  }
}

TEST(SchedEngineMatrix, SsspExactUnderEverySchedule) {
  const Graph g = test_graph();
  const VertexId source = max_out_degree_vertex(g);
  std::vector<float> weights(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    weights[e] = SsspProgram::edge_weight(42, e);
  }
  const auto expected = ref::sssp(g, source, weights);
  for (const SchedulerKind kind : kAllKinds) {
    for (const std::size_t threads : kThreadCounts) {
      for (const bool async : {false, true}) {
        const std::string label = std::string(to_string(kind)) + "/t" +
                                  std::to_string(threads) +
                                  (async ? "/async" : "/ne");
        SsspProgram prog(source, 42);
        EdgeDataArray<SsspEdge> edges(g.num_edges());
        prog.init(g, edges);
        const EngineOptions opts = make_opts(kind, threads);
        const EngineResult r =
            async ? run_pure_async(g, prog, edges, opts)
                  : run_nondeterministic(g, prog, edges, opts);
        ASSERT_TRUE(r.converged) << label;
        check_telemetry(r, threads, label);
        EXPECT_EQ(prog.distances(), expected) << label;
      }
    }
  }
}

TEST(SchedEngineMatrix, WccExactUnderEverySchedule) {
  const Graph g = test_graph();
  const auto expected = ref::wcc(g);
  for (const SchedulerKind kind : kAllKinds) {
    for (const std::size_t threads : kThreadCounts) {
      const std::string label =
          std::string(to_string(kind)) + "/t" + std::to_string(threads);
      WccProgram prog;
      EdgeDataArray<WccProgram::EdgeData> edges(g.num_edges());
      prog.init(g, edges);
      const EngineOptions opts = make_opts(kind, threads);
      const EngineResult r = run_nondeterministic(g, prog, edges, opts);
      ASSERT_TRUE(r.converged) << label;
      check_telemetry(r, threads, label);
      EXPECT_EQ(prog.labels(), expected) << label;
    }
  }
}

TEST(SchedEngineMatrix, StealingReportsStealsOnMultithreadedRuns) {
  const Graph g = test_graph();
  PageRankProgram prog(1e-4f);
  EdgeDataArray<float> edges(g.num_edges());
  prog.init(g, edges);
  const EngineResult r =
      run_nondeterministic(g, prog, edges,
                           make_opts(SchedulerKind::kStealing, 4));
  ASSERT_TRUE(r.converged);
  // With one whole PageRank run over a skewed graph, at least one steal
  // attempt must have happened (threads finish their blocks at different
  // times every iteration).
  EXPECT_GT(r.steal_attempts, 0u);
}

TEST(SchedEngineMatrix, StaticBlockMatchesPreSubsystemSchedule) {
  // The default options must reproduce the original engine behaviour:
  // per-thread update counts under kStaticBlock are the static block sizes.
  const Graph g = test_graph();
  WccProgram prog;
  EdgeDataArray<WccProgram::EdgeData> edges(g.num_edges());
  prog.init(g, edges);
  EngineOptions opts;  // defaults: kStaticBlock
  opts.num_threads = 4;
  opts.mode = AtomicityMode::kRelaxed;
  const EngineResult r = run_nondeterministic(g, prog, edges, opts);
  ASSERT_TRUE(r.converged);
  EXPECT_EQ(r.steals, 0u);
  EXPECT_EQ(r.steal_attempts, 0u);
}

}  // namespace
}  // namespace ndg
