// Eligibility analysis tests: the paper's Theorems 1 & 2 as a decision
// procedure over the shipped algorithms.
//   PageRank / SpMV  -> Theorem 1 (read-write only, BSP-convergent)
//   WCC              -> Theorem 2 (write-write, monotonic)
//   SSSP / BFS       -> Theorem 1 (their conflicts are read-write only)
//   push-PageRank    -> NOT proven (write-write AND non-monotonic)

#include <gtest/gtest.h>

#include "algorithms/bfs.hpp"
#include "algorithms/pagerank.hpp"
#include "algorithms/push_pagerank.hpp"
#include "algorithms/registry.hpp"
#include "algorithms/spmv.hpp"
#include "algorithms/sssp.hpp"
#include "algorithms/wcc.hpp"
#include "core/eligibility.hpp"
#include "graph/generators.hpp"

namespace ndg {
namespace {

Graph analysis_graph() {
  EdgeList edges = gen::rmat(128, 700, 2024);
  auto tail = gen::chain(16);
  edges.insert(edges.end(), tail.begin(), tail.end());
  return Graph::build(128, std::move(edges));
}

TEST(Eligibility, PageRankIsTheorem1) {
  const Graph g = analysis_graph();
  PageRankProgram prog(1e-3f);
  const EligibilityReport r = analyze_eligibility(g, prog);
  EXPECT_TRUE(r.bsp_converges);
  EXPECT_TRUE(r.async_converges);
  EXPECT_GT(r.conflicts.read_write, 0u);
  EXPECT_EQ(r.conflicts.write_write, 0u);
  EXPECT_FALSE(r.observed_monotonic);
  EXPECT_TRUE(r.theorem1_applies);
  EXPECT_FALSE(r.theorem2_applies);
  EXPECT_EQ(r.verdict, EligibilityVerdict::kTheorem1);
}

TEST(Eligibility, SpmvIsTheorem1) {
  const Graph g = analysis_graph();
  SpmvProgram prog(1e-3f);
  const EligibilityReport r = analyze_eligibility(g, prog, 20000);
  EXPECT_EQ(r.conflicts.write_write, 0u);
  EXPECT_EQ(r.verdict, EligibilityVerdict::kTheorem1);
}

TEST(Eligibility, WccIsTheorem2) {
  const Graph g = analysis_graph();
  WccProgram prog;
  const EligibilityReport r = analyze_eligibility(g, prog);
  EXPECT_TRUE(r.async_converges);
  EXPECT_GT(r.conflicts.write_write, 0u);  // both endpoints write edges
  EXPECT_TRUE(r.observed_monotonic);
  EXPECT_EQ(r.direction, MonotonicityChecker::Direction::kNonIncreasing);
  EXPECT_FALSE(r.theorem1_applies);  // WW conflicts rule Theorem 1 out
  EXPECT_TRUE(r.theorem2_applies);
  EXPECT_EQ(r.verdict, EligibilityVerdict::kTheorem2);
}

TEST(Eligibility, SsspIsTheorem1WithMonotonicityAsBonus) {
  const Graph g = analysis_graph();
  SsspProgram prog(0, 5);
  const EligibilityReport r = analyze_eligibility(g, prog);
  EXPECT_GT(r.conflicts.read_write, 0u);
  EXPECT_EQ(r.conflicts.write_write, 0u);
  EXPECT_TRUE(r.observed_monotonic);
  EXPECT_TRUE(r.theorem1_applies);
  EXPECT_TRUE(r.theorem2_applies);  // both sufficient conditions hold
  EXPECT_EQ(r.verdict, EligibilityVerdict::kTheorem1);
}

TEST(Eligibility, BfsIsEligible) {
  const Graph g = analysis_graph();
  BfsProgram prog(0);
  const EligibilityReport r = analyze_eligibility(g, prog);
  EXPECT_EQ(r.conflicts.write_write, 0u);
  EXPECT_TRUE(r.theorem1_applies);
  EXPECT_NE(r.verdict, EligibilityVerdict::kNotProven);
}

TEST(Eligibility, PushPageRankIsNotProven) {
  const Graph g = analysis_graph();
  PushPageRankProgram prog(1e-4f);
  const EligibilityReport r = analyze_eligibility(g, prog, 200000);
  EXPECT_GT(r.conflicts.write_write, 0u);  // drain races push
  EXPECT_FALSE(r.observed_monotonic);      // accumulators rise and fall
  EXPECT_FALSE(r.theorem1_applies);
  EXPECT_FALSE(r.theorem2_applies);
  EXPECT_EQ(r.verdict, EligibilityVerdict::kNotProven);
}

TEST(Eligibility, DescribeMentionsTheVerdict) {
  const Graph g = Graph::build(8, gen::cycle(8));
  WccProgram prog;
  const EligibilityReport r = analyze_eligibility(g, prog);
  const std::string text = r.describe();
  EXPECT_NE(text.find("wcc"), std::string::npos);
  EXPECT_NE(text.find("Theorem 2"), std::string::npos);
  EXPECT_NE(text.find("write-write"), std::string::npos);
}

TEST(Eligibility, RegistryCoversAllShippedAlgorithms) {
  const Graph g = Graph::build(64, gen::rmat(64, 300, 1));
  const auto registry = algorithm_registry(/*source=*/0, /*max_iterations=*/50000);
  ASSERT_EQ(registry.size(), 10u);

  std::map<std::string, EligibilityVerdict> verdicts;
  for (const auto& entry : registry) {
    const EligibilityReport r = entry.analyze(g);
    EXPECT_EQ(r.algorithm, entry.name);
    verdicts[entry.name] = r.verdict;
  }
  EXPECT_EQ(verdicts.at("pagerank"), EligibilityVerdict::kTheorem1);
  EXPECT_EQ(verdicts.at("wcc"), EligibilityVerdict::kTheorem2);
  EXPECT_EQ(verdicts.at("sssp"), EligibilityVerdict::kTheorem1);
  EXPECT_EQ(verdicts.at("bfs"), EligibilityVerdict::kTheorem1);
  EXPECT_EQ(verdicts.at("pagerank-push"), EligibilityVerdict::kNotProven);
  EXPECT_EQ(verdicts.at("pagerank-push-atomic"), EligibilityVerdict::kNotProven);
  EXPECT_EQ(verdicts.at("kcore"), EligibilityVerdict::kTheorem2);
  EXPECT_EQ(verdicts.at("mis"), EligibilityVerdict::kTheorem2);
}

TEST(Eligibility, VerdictStringsAreDistinct) {
  EXPECT_STRNE(to_string(EligibilityVerdict::kTheorem1),
               to_string(EligibilityVerdict::kTheorem2));
  EXPECT_STRNE(to_string(EligibilityVerdict::kTheorem2),
               to_string(EligibilityVerdict::kNotProven));
}

}  // namespace
}  // namespace ndg
