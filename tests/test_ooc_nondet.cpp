// Tests for nondeterministic execution inside the out-of-core PSW engine —
// the paper's actual patched-GraphChi configuration. The correctness
// guarantees must be exactly those of the in-memory NE engine: traversals
// exact, fixed points ε-close, under every atomicity method.

#include <gtest/gtest.h>

#include <filesystem>
#include <tuple>

#include "algorithms/bfs.hpp"
#include "algorithms/kcore.hpp"
#include "algorithms/mis.hpp"
#include "algorithms/pagerank.hpp"
#include "algorithms/reference/references.hpp"
#include "algorithms/sssp.hpp"
#include "algorithms/wcc.hpp"
#include "graph/generators.hpp"
#include "ooc/ooc_nondet.hpp"

namespace ndg {
namespace {

std::string fresh_dir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/ndg_oocne_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

Graph ooc_graph() {
  EdgeList edges = gen::rmat(300, 2000, 616);
  auto tail = gen::chain(20);
  edges.insert(edges.end(), tail.begin(), tail.end());
  return Graph::build(300, std::move(edges));
}

class OocNeParam
    : public ::testing::TestWithParam<std::tuple<AtomicityMode, std::size_t>> {
 protected:
  [[nodiscard]] EngineOptions options() const {
    EngineOptions opts;
    opts.mode = std::get<0>(GetParam());
    opts.num_threads = std::get<1>(GetParam());
    return opts;
  }
  [[nodiscard]] std::string dir(const char* algo) const {
    return fresh_dir(std::string(algo) + "_" +
                     to_string(std::get<0>(GetParam())) + "_" +
                     std::to_string(std::get<1>(GetParam())));
  }
};

TEST_P(OocNeParam, WccExact) {
  const Graph g = ooc_graph();
  WccProgram prog;
  EdgeDataArray<WccProgram::EdgeData> edges(g.num_edges());
  prog.init(g, edges);
  const ShardPlan plan = make_shard_plan(g, 4);
  const OocResult r =
      run_ooc_nondeterministic(g, prog, edges, plan, dir("wcc"), options());
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(prog.labels(), ref::wcc(g));
}

TEST_P(OocNeParam, BfsExact) {
  const Graph g = ooc_graph();
  BfsProgram prog(0);
  EdgeDataArray<BfsProgram::EdgeData> edges(g.num_edges());
  prog.init(g, edges);
  const ShardPlan plan = make_shard_plan(g, 3);
  const OocResult r =
      run_ooc_nondeterministic(g, prog, edges, plan, dir("bfs"), options());
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(prog.levels(), ref::bfs(g, 0));
}

TEST_P(OocNeParam, PageRankNearFixedPoint) {
  const Graph g = ooc_graph();
  const auto expected = ref::pagerank(g, 0.85, 1e-10);
  PageRankProgram prog(1e-4f);
  EdgeDataArray<float> edges(g.num_edges());
  prog.init(g, edges);
  const ShardPlan plan = make_shard_plan(g, 4);
  const OocResult r =
      run_ooc_nondeterministic(g, prog, edges, plan, dir("pr"), options());
  EXPECT_TRUE(r.converged);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_NEAR(prog.ranks()[v], expected[v], 0.05 * expected[v] + 0.01);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ModesAndThreads, OocNeParam,
    ::testing::Combine(::testing::Values(AtomicityMode::kLocked,
                                         AtomicityMode::kAligned,
                                         AtomicityMode::kRelaxed),
                       ::testing::Values(std::size_t{1}, std::size_t{4})),
    [](const auto& param_info) {
      return std::string(to_string(std::get<0>(param_info.param))) + "_t" +
             std::to_string(std::get<1>(param_info.param));
    });

TEST(OocNondet, SsspExactWithSeqCst) {
  const Graph g = ooc_graph();
  SsspProgram prog(0, 77);
  std::vector<float> weights(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    weights[e] = SsspProgram::edge_weight(77, e);
  }
  EdgeDataArray<SsspProgram::EdgeData> edges(g.num_edges());
  prog.init(g, edges);
  const ShardPlan plan = make_shard_plan(g, 4);
  EngineOptions opts;
  opts.mode = AtomicityMode::kSeqCst;
  opts.num_threads = 4;
  const OocResult r =
      run_ooc_nondeterministic(g, prog, edges, plan, fresh_dir("sssp"), opts);
  EXPECT_TRUE(r.converged);
  const auto expected = ref::sssp(g, 0, weights);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_FLOAT_EQ(prog.distances()[v], expected[v]);
  }
}

TEST(OocNondet, DualEdgeAlgorithmsExactUnderRacyPsw) {
  // k-core and MIS race on half-owned edge words inside the loaded windows;
  // the repair discipline must hold under the PSW execution pattern too.
  const Graph g = ooc_graph();
  const ShardPlan plan = make_shard_plan(g, 4);
  EngineOptions opts;
  opts.num_threads = 4;
  opts.mode = AtomicityMode::kRelaxed;
  {
    KCoreProgram prog;
    EdgeDataArray<DualEdge> edges(g.num_edges());
    prog.init(g, edges);
    const OocResult r = run_ooc_nondeterministic(g, prog, edges, plan,
                                                 fresh_dir("kcore"), opts);
    EXPECT_TRUE(r.converged);
    EXPECT_EQ(prog.core_numbers(), ref::kcore(g));
  }
  {
    MisProgram prog;
    EdgeDataArray<DualEdge> edges(g.num_edges());
    prog.init(g, edges);
    const OocResult r = run_ooc_nondeterministic(g, prog, edges, plan,
                                                 fresh_dir("mis"), opts);
    EXPECT_TRUE(r.converged);
    const auto expected = ref::greedy_mis(g);
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      EXPECT_EQ(prog.states()[v] == MisProgram::kIn, expected[v]) << "v=" << v;
    }
  }
}

TEST(OocNondet, SingleThreadEqualsOocDeterministicBitwise) {
  const Graph g = ooc_graph();
  const ShardPlan plan = make_shard_plan(g, 4);

  WccProgram de;
  EdgeDataArray<WccProgram::EdgeData> de_edges(g.num_edges());
  de.init(g, de_edges);
  const OocResult rd =
      run_ooc_deterministic(g, de, de_edges, plan, fresh_dir("de"));

  WccProgram ne;
  EdgeDataArray<WccProgram::EdgeData> ne_edges(g.num_edges());
  ne.init(g, ne_edges);
  EngineOptions opts;
  opts.num_threads = 1;
  opts.mode = AtomicityMode::kAligned;
  const OocResult rn =
      run_ooc_nondeterministic(g, ne, ne_edges, plan, fresh_dir("ne1"), opts);

  EXPECT_EQ(rd.iterations, rn.iterations);
  EXPECT_EQ(rd.updates, rn.updates);
  EXPECT_EQ(de.labels(), ne.labels());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_EQ(de_edges.get(e), ne_edges.get(e));
  }
}

}  // namespace
}  // namespace ndg
