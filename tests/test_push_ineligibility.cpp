// The NEGATIVE result, demonstrated: plain push-mode PageRank — which the
// eligibility analysis refuses to bless — really does corrupt its results
// under racy schedules, while the atomic-RMW variant does not. This is the
// empirical half of the paper's title: run the check, or learn it the hard
// way.
//
// The simulator models exactly the paper's atomicity assumption (individual
// reads and writes are atomic; compound operations are not), so the plain
// variant's drain (read-then-clear) races the pusher's accumulate
// (read-add-write): residual mass is lost or double-counted, and the
// converged ranks drift from the true fixed point by far more than the
// admissible ε-slack.

#include <gtest/gtest.h>

#include <cmath>

#include "algorithms/push_pagerank.hpp"
#include "algorithms/push_pagerank_atomic.hpp"
#include "algorithms/reference/references.hpp"
#include "engine/deterministic.hpp"
#include "engine/simulator.hpp"
#include "graph/generators.hpp"

namespace ndg {
namespace {

Graph dense_graph() {
  // Dense enough that drain/push collisions are frequent.
  return Graph::build(64, gen::erdos_renyi(64, 800, 3));
}

double total_rank_error(const std::vector<float>& got,
                        const std::vector<double>& expected) {
  double err = 0;
  for (std::size_t v = 0; v < got.size(); ++v) {
    err += std::abs(static_cast<double>(got[v]) - expected[v]);
  }
  return err;
}

TEST(PushIneligibility, PlainPushCorruptsUnderRacySchedules) {
  const Graph g = dense_graph();
  const auto expected = ref::pagerank(g, 0.85, 1e-12);

  // Sequential sanity: the algorithm itself is correct.
  {
    PushPageRankProgram prog(1e-5f);
    EdgeDataArray<float> edges(g.num_edges());
    prog.init(g, edges);
    ASSERT_TRUE(run_deterministic(g, prog, edges, 100000).converged);
    EXPECT_LT(total_rank_error(prog.ranks(), expected), 0.05);
  }

  // Racy schedules: some seed must corrupt the total by far more than the
  // ε-slack (|V| * 1e-5 * chain factor << 0.5). Iterations are capped: a
  // run that fails to settle within the cap counts as corrupted too.
  double worst = 0;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    PushPageRankProgram prog(1e-5f);
    EdgeDataArray<float> edges(g.num_edges());
    prog.init(g, edges);
    SimOptions opts;
    opts.num_procs = 8;
    opts.delay = 8;
    opts.seed = seed;
    opts.max_iterations = 3000;
    const SimResult r = run_simulated(g, prog, edges, opts);
    EXPECT_GT(r.ww_overlaps, 0u) << "seed=" << seed;  // drains raced pushes
    if (r.converged) {
      worst = std::max(worst, total_rank_error(prog.ranks(), expected));
    } else {
      worst = 1e9;  // failing to converge is corruption too
    }
  }
  EXPECT_GT(worst, 0.5) << "expected at least one schedule to corrupt ranks";
}

TEST(PushIneligibility, AtomicVariantSurvivesBarrieredSchedules) {
  // Contrast: with atomic drain/combine the same workload is exact — but
  // ONLY on engines whose RMWs are genuinely atomic (the simulator's are
  // deliberately racy, modeling the paper's individual-read/write atoms;
  // the threaded engines provide real CAS — see test_push_mode.cpp).
  const Graph g = dense_graph();
  const auto expected = ref::pagerank(g, 0.85, 1e-12);
  AtomicPushPageRankProgram prog(1e-5f);
  EdgeDataArray<float> edges(g.num_edges());
  prog.init(g, edges);
  ASSERT_TRUE(run_deterministic(g, prog, edges, 100000).converged);
  EXPECT_LT(total_rank_error(prog.ranks(), expected), 0.05);
}

}  // namespace
}  // namespace ndg
