// Unit tests for the atomicity substrate: edge-data storage, slot encoding,
// per-edge locks, and the four access policies (Section III).

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>

#include "atomics/access_policy.hpp"
#include "atomics/edge_data.hpp"
#include "atomics/lock_table.hpp"
#include "util/thread_team.hpp"

namespace ndg {
namespace {

struct PackedPair {
  float a;
  float b;
};
static_assert(EdgePod<PackedPair>);
static_assert(EdgePod<float>);
static_assert(EdgePod<std::uint32_t>);
static_assert(EdgePod<std::uint64_t>);

TEST(EdgeData, SlotRoundTripFloat) {
  const float v = 3.25f;
  EXPECT_EQ(detail::from_slot<float>(detail::to_slot(v)), v);
}

TEST(EdgeData, SlotRoundTripStruct) {
  const PackedPair p{1.5f, -2.0f};
  const PackedPair q = detail::from_slot<PackedPair>(detail::to_slot(p));
  EXPECT_EQ(q.a, p.a);
  EXPECT_EQ(q.b, p.b);
}

TEST(EdgeData, FillAndGetSet) {
  EdgeDataArray<float> arr(10, 7.0f);
  for (EdgeId e = 0; e < 10; ++e) EXPECT_EQ(arr.get(e), 7.0f);
  arr.set(3, 1.0f);
  EXPECT_EQ(arr.get(3), 1.0f);
  arr.fill(0.0f);
  EXPECT_EQ(arr.get(3), 0.0f);
  EXPECT_EQ(arr.size(), 10u);
}

TEST(EdgeData, CloneIsDeepCopy) {
  EdgeDataArray<std::uint32_t> arr(4, 9);
  EdgeDataArray<std::uint32_t> copy = arr.clone();
  arr.set(0, 1);
  EXPECT_EQ(copy.get(0), 9u);
  EXPECT_EQ(arr.get(0), 1u);
}

TEST(LockTable, LockUnlockSingleThread) {
  EdgeLockTable locks(4);
  locks.lock(2);
  locks.unlock(2);
  {
    EdgeLockGuard guard(locks, 2);
  }
  locks.lock(2);  // reacquirable after guard released
  locks.unlock(2);
}

TEST(LockTable, MutualExclusionUnderContention) {
  EdgeLockTable locks(1);
  // A non-atomic counter is only correct if the lock actually excludes.
  std::int64_t counter = 0;
  constexpr int kPerThread = 20000;
  run_team(4, [&](std::size_t) {
    for (int i = 0; i < kPerThread; ++i) {
      EdgeLockGuard guard(locks, 0);
      counter += 1;
    }
  });
  EXPECT_EQ(counter, 4 * kPerThread);
}

TEST(AtomicityMode, Names) {
  EXPECT_STREQ(to_string(AtomicityMode::kLocked), "locked");
  EXPECT_STREQ(to_string(AtomicityMode::kAligned), "aligned");
  EXPECT_STREQ(to_string(AtomicityMode::kRelaxed), "relaxed");
  EXPECT_STREQ(to_string(AtomicityMode::kSeqCst), "seq_cst");
}

template <typename Policy>
void round_trip(Policy policy) {
  EdgeDataArray<PackedPair> arr(3, PackedPair{0, 0});
  policy.write(arr, 1, PackedPair{4.0f, 5.0f});
  const PackedPair got = policy.read(arr, 1);
  EXPECT_EQ(got.a, 4.0f);
  EXPECT_EQ(got.b, 5.0f);
  // Neighbouring slots untouched.
  EXPECT_EQ(policy.read(arr, 0).a, 0.0f);
  EXPECT_EQ(policy.read(arr, 2).b, 0.0f);
}

TEST(Policies, AlignedRoundTrip) { round_trip(AlignedAccess{}); }
TEST(Policies, RelaxedRoundTrip) { round_trip(RelaxedAtomicAccess{}); }
TEST(Policies, SeqCstRoundTrip) { round_trip(SeqCstAccess{}); }

TEST(Policies, LockedRoundTrip) {
  EdgeLockTable locks(3);
  round_trip(LockedAccess{&locks});
}

/// Lemma 1/2 at the machine level: concurrent single-word writes never tear —
/// a reader always observes one of the written values, whole. Exercised for
/// every policy with two writers alternating between two sentinel values.
template <typename Policy>
void no_tearing(Policy policy) {
  EdgeDataArray<PackedPair> arr(1, PackedPair{1.0f, 10.0f});
  const PackedPair kA{1.0f, 10.0f};
  const PackedPair kB{2.0f, 20.0f};
  std::atomic<bool> stop{false};
  std::atomic<int> torn{0};

  run_team(3, [&](std::size_t tid) {
    if (tid < 2) {
      const PackedPair mine = tid == 0 ? kA : kB;
      for (int i = 0; i < 30000 && !stop.load(); ++i) {
        policy.write(arr, 0, mine);
      }
      stop.store(true);
    } else {
      while (!stop.load()) {
        const PackedPair got = policy.read(arr, 0);
        const bool is_a = got.a == kA.a && got.b == kA.b;
        const bool is_b = got.a == kB.a && got.b == kB.b;
        if (!is_a && !is_b) torn.fetch_add(1);
      }
    }
  });
  EXPECT_EQ(torn.load(), 0);
}

TEST(Policies, AlignedNeverTears) { no_tearing(AlignedAccess{}); }
TEST(Policies, RelaxedNeverTears) { no_tearing(RelaxedAtomicAccess{}); }
TEST(Policies, SeqCstNeverTears) { no_tearing(SeqCstAccess{}); }

TEST(Policies, LockedNeverTears) {
  EdgeLockTable locks(1);
  no_tearing(LockedAccess{&locks});
}

}  // namespace
}  // namespace ndg
