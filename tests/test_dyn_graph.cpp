// DynGraph tests: the mutated view must be indistinguishable (adjacency-wise)
// from a CSR rebuilt from scratch over the live edge set, mutations must be
// validated with precise reject reasons, parallel batch apply must equal the
// serial one, and compaction must preserve adjacency + weights under the id
// remap.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <utility>
#include <vector>

#include "dyn/dyn_graph.hpp"
#include "dyn/mutation.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace ndg::dyn {
namespace {

Mutation ins(VertexId u, VertexId v, float w = 1.0f) {
  return Mutation{MutationKind::kInsertEdge, u, v, w};
}
Mutation del(VertexId u, VertexId v) {
  return Mutation{MutationKind::kDeleteEdge, u, v, 0.0f};
}
Mutation rew(VertexId u, VertexId v, float w) {
  return Mutation{MutationKind::kWeightChange, u, v, w};
}

MutationBatch batch_of(std::vector<Mutation> ms, std::uint64_t epoch = 1) {
  return MutationBatch{epoch, std::move(ms)};
}

Graph base_graph() {
  return Graph::build(128, gen::rmat(128, 700, 99));
}

/// The view must agree with a from-scratch CSR over the live edges: same
/// degrees, same sorted neighbor spans, same in-edge sources.
void expect_view_equals_rebuild(const DynGraph& dg) {
  const Graph rebuilt = Graph::build(dg.num_vertices(), dg.live_edge_list());
  ASSERT_EQ(dg.num_live_edges(), rebuilt.num_edges());
  for (VertexId v = 0; v < dg.num_vertices(); ++v) {
    ASSERT_EQ(dg.out_degree(v), rebuilt.out_degree(v)) << "vertex " << v;
    ASSERT_EQ(dg.in_degree(v), rebuilt.in_degree(v)) << "vertex " << v;
    const auto a = dg.out_neighbors(v);
    const auto b = rebuilt.out_neighbors(v);
    ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()))
        << "out-neighbors differ at vertex " << v;
    const auto ia = dg.in_edges(v);
    const auto ib = rebuilt.in_edges(v);
    ASSERT_EQ(ia.size(), ib.size());
    for (std::size_t k = 0; k < ia.size(); ++k) {
      EXPECT_EQ(ia[k].src, ib[k].src) << "in-edge src differs at " << v;
    }
  }
}

/// (src, dst) -> weight over the live edge set, via the public lookup path.
std::map<std::pair<VertexId, VertexId>, float> weight_map(const DynGraph& dg) {
  std::map<std::pair<VertexId, VertexId>, float> out;
  for (const Edge& e : dg.live_edge_list()) {
    const EdgeId id = dg.find_edge(e.src, e.dst);
    EXPECT_NE(id, kInvalidEdge);
    out[{e.src, e.dst}] = dg.edge_weight(id);
  }
  return out;
}

TEST(DynGraph, FreshViewMatchesBase) {
  DynGraph dg(base_graph());
  EXPECT_EQ(dg.num_edges(), dg.base().num_edges());
  EXPECT_EQ(dg.num_live_edges(), dg.base().num_edges());
  expect_view_equals_rebuild(dg);
}

TEST(DynGraph, MixedBatchUpdatesTheView) {
  DynGraph dg(base_graph());
  const EdgeList live = dg.live_edge_list();
  ASSERT_GE(live.size(), 4u);

  std::vector<Mutation> ms;
  // Two deletes of existing edges, a reweight, and inserts (one guaranteed
  // fresh pair per target vertex).
  ms.push_back(del(live[0].src, live[0].dst));
  ms.push_back(del(live[1].src, live[1].dst));
  ms.push_back(rew(live[2].src, live[2].dst, 7.5f));
  for (VertexId v = 0; v < 20; ++v) {
    if (!dg.has_edge(127, v) && v != 127) ms.push_back(ins(127, v, 2.0f));
  }
  ASSERT_GE(ms.size(), 10u);

  ApplyStats stats;
  const auto applied = dg.apply(batch_of(ms), &stats, 2);
  EXPECT_EQ(stats.applied, ms.size());
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(applied.size(), ms.size());

  expect_view_equals_rebuild(dg);
  EXPECT_FALSE(dg.has_edge(live[0].src, live[0].dst));
  const EdgeId rw = dg.find_edge(live[2].src, live[2].dst);
  ASSERT_NE(rw, kInvalidEdge);
  EXPECT_FLOAT_EQ(dg.edge_weight(rw), 7.5f);
  const EdgeId in0 = dg.find_edge(127, 0);
  if (in0 != kInvalidEdge) EXPECT_FLOAT_EQ(dg.edge_weight(in0), 2.0f);
}

TEST(DynGraph, AppliedRecordsCarryIdsAndOldWeights) {
  DynGraph dg(Graph::build(8, EdgeList{{0, 1}, {1, 2}}),
              DynGraphOptions{.base_weight = [](EdgeId) { return 3.0f; }});
  const auto applied = dg.apply(
      batch_of({ins(2, 3, 1.5f), rew(0, 1, 0.5f), del(1, 2)}), nullptr, 1);
  ASSERT_EQ(applied.size(), 3u);

  EXPECT_EQ(applied[0].kind, MutationKind::kInsertEdge);
  EXPECT_EQ(applied[0].id, 2u);  // first id above the 2 base edges
  EXPECT_FLOAT_EQ(applied[0].weight, 1.5f);

  EXPECT_EQ(applied[1].kind, MutationKind::kWeightChange);
  EXPECT_FLOAT_EQ(applied[1].old_weight, 3.0f);
  EXPECT_FLOAT_EQ(applied[1].weight, 0.5f);

  EXPECT_EQ(applied[2].kind, MutationKind::kDeleteEdge);
  EXPECT_EQ(dg.num_live_edges(), 2u);
  EXPECT_EQ(dg.num_edges(), 3u);  // retired id stays allocated until compact
}

TEST(DynGraph, RejectsInvalidMutationsWithPreciseReasons) {
  DynGraph dg(Graph::build(4, EdgeList{{0, 1}, {1, 2}}));
  ApplyStats stats;
  const auto applied = dg.apply(
      batch_of({
          ins(0, 9),        // out-of-range dst
          ins(9, 0),        // out-of-range src
          ins(2, 2),        // self-loop
          ins(0, 1),        // duplicate of a base edge
          del(2, 3),        // missing edge
          rew(3, 0, 1.0f),  // missing edge
          ins(2, 3),        // fine
          del(2, 3),        // conflicts with the insert in this batch
      }),
      &stats, 1);
  EXPECT_EQ(applied.size(), 1u);
  EXPECT_EQ(stats.applied, 1u);
  EXPECT_EQ(stats.rejected, 7u);
  EXPECT_EQ(stats.by_reason[static_cast<int>(RejectReason::kOutOfRange)], 2u);
  EXPECT_EQ(stats.by_reason[static_cast<int>(RejectReason::kSelfLoop)], 1u);
  EXPECT_EQ(stats.by_reason[static_cast<int>(RejectReason::kDuplicateEdge)],
            1u);
  EXPECT_EQ(stats.by_reason[static_cast<int>(RejectReason::kMissingEdge)], 2u);
  EXPECT_EQ(stats.by_reason[static_cast<int>(RejectReason::kConflictInBatch)],
            1u);
  EXPECT_TRUE(dg.has_edge(2, 3));
  expect_view_equals_rebuild(dg);
}

TEST(DynGraph, ParallelApplyEqualsSerialApply) {
  // Same base, same batch, 1 thread vs 4 threads: identical live edge set,
  // identical ids (assigned serially at validation), identical weights.
  std::vector<Mutation> ms;
  SplitMix64 rng(7);
  const Graph proto = base_graph();
  DynGraph a(base_graph());
  DynGraph b(base_graph());
  for (int i = 0; i < 200; ++i) {
    const auto u = static_cast<VertexId>(rng.next() % proto.num_vertices());
    const auto v = static_cast<VertexId>(rng.next() % proto.num_vertices());
    if (u == v) continue;
    if (a.has_edge(u, v)) {
      ms.push_back(i % 2 == 0 ? del(u, v)
                              : rew(u, v, static_cast<float>(i % 9 + 1)));
    } else {
      ms.push_back(ins(u, v, static_cast<float>(i % 5 + 1)));
    }
  }

  ApplyStats sa;
  ApplyStats sb;
  const auto ra = a.apply(batch_of(ms), &sa, 1);
  const auto rb = b.apply(batch_of(ms), &sb, 4);
  EXPECT_EQ(sa.applied, sb.applied);
  EXPECT_EQ(sa.rejected, sb.rejected);
  ASSERT_EQ(ra.size(), rb.size());
  for (std::size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].id, rb[i].id);
    EXPECT_EQ(ra[i].src, rb[i].src);
    EXPECT_EQ(ra[i].dst, rb[i].dst);
  }

  const EdgeList la = a.live_edge_list();
  const EdgeList lb = b.live_edge_list();
  ASSERT_EQ(la.size(), lb.size());
  for (std::size_t i = 0; i < la.size(); ++i) {
    EXPECT_EQ(la[i].src, lb[i].src);
    EXPECT_EQ(la[i].dst, lb[i].dst);
  }
  EXPECT_EQ(weight_map(a), weight_map(b));
  expect_view_equals_rebuild(b);
}

TEST(DynGraph, CompactionPreservesAdjacencyAndWeights) {
  DynGraphOptions opts;
  opts.base_weight = [](EdgeId e) { return static_cast<float>(e % 13) + 1.0f; };
  opts.compact_threshold = 0.05;
  DynGraph dg(base_graph(), opts);

  // Delete-heavy on purpose: inserts drain the freelist before growing the
  // id space, so only the delete surplus leaves retired slots behind and
  // pushes overflow_ratio past the threshold.
  std::vector<Mutation> ms;
  const EdgeList live = dg.live_edge_list();
  for (std::size_t i = 0; i < 60; ++i) {
    ms.push_back(del(live[i * 3].src, live[i * 3].dst));
  }
  for (VertexId v = 100; v < 120; ++v) {
    if (!dg.has_edge(0, v)) ms.push_back(ins(0, v, 4.25f));
  }
  ApplyStats stats;
  (void)dg.apply(batch_of(ms), &stats, 3);
  ASSERT_EQ(stats.rejected, 0u);
  EXPECT_TRUE(dg.should_compact());

  const auto before_adj = dg.live_edge_list();
  const auto before_w = weight_map(dg);
  const EdgeId before_live = dg.num_live_edges();

  const DynGraph::CompactResult r = dg.compact();
  EXPECT_EQ(r.new_num_edges, before_live);
  EXPECT_EQ(r.old_to_new.size(), r.old_edge_bound);

  EXPECT_EQ(dg.num_edges(), dg.num_live_edges());  // id space is exact again
  EXPECT_DOUBLE_EQ(dg.overflow_ratio(), 0.0);
  EXPECT_FALSE(dg.should_compact());
  EXPECT_EQ(dg.compactions(), 1u);

  const auto after_adj = dg.live_edge_list();
  ASSERT_EQ(before_adj.size(), after_adj.size());
  for (std::size_t i = 0; i < before_adj.size(); ++i) {
    EXPECT_EQ(before_adj[i].src, after_adj[i].src);
    EXPECT_EQ(before_adj[i].dst, after_adj[i].dst);
  }
  EXPECT_EQ(before_w, weight_map(dg));
  expect_view_equals_rebuild(dg);

  // The remap table sends every live old id to the id the rebuilt CSR
  // assigns to the same (src, dst) pair, and retired ids to kInvalidEdge.
  for (const auto& [key, w] : before_w) {
    (void)w;
    const EdgeId now = dg.find_edge(key.first, key.second);
    ASSERT_NE(now, kInvalidEdge);
  }
}

TEST(DynGraph, InsertAfterCompactReusesFreshIdSpace) {
  DynGraph dg(Graph::build(4, EdgeList{{0, 1}, {1, 2}, {2, 3}}));
  (void)dg.apply(batch_of({del(1, 2)}), nullptr, 1);
  (void)dg.compact();
  ASSERT_EQ(dg.num_edges(), 2u);
  const auto applied = dg.apply(batch_of({ins(1, 3)}, 2), nullptr, 1);
  ASSERT_EQ(applied.size(), 1u);
  EXPECT_EQ(applied[0].id, 2u);  // bump restarts at the compacted bound
  expect_view_equals_rebuild(dg);
}

TEST(DynGraph, FreelistReusesRetiredIdsMostRecentFirst) {
  DynGraph dg(Graph::build(6, EdgeList{{0, 1}, {1, 2}, {2, 3}, {3, 4}}));
  // Retire ids 1 then 3 across two epochs: the freelist holds them in
  // retirement order and inserts pop the MOST RECENTLY retired id first.
  (void)dg.apply(batch_of({del(1, 2)}, 1), nullptr, 1);
  (void)dg.apply(batch_of({del(3, 4)}, 2), nullptr, 1);
  EXPECT_EQ(dg.freelist_size(), 2u);
  EXPECT_EQ(dg.num_edges(), 4u);  // id-space bound unchanged by deletes

  auto applied = dg.apply(batch_of({ins(0, 5), ins(4, 5)}, 3), nullptr, 1);
  ASSERT_EQ(applied.size(), 2u);
  EXPECT_EQ(applied[0].id, 3u);  // LIFO: last retired, first reused
  EXPECT_EQ(applied[1].id, 1u);
  EXPECT_EQ(dg.freelist_size(), 0u);
  EXPECT_EQ(dg.num_edges(), 4u);  // fully reused: no id-space growth
  EXPECT_FLOAT_EQ(dg.edge_weight(applied[0].id), 1.0f);
  expect_view_equals_rebuild(dg);

  // Freelist empty again: the next insert falls back to the bump counter.
  applied = dg.apply(batch_of({ins(5, 0)}, 4), nullptr, 1);
  EXPECT_EQ(applied[0].id, 4u);
  EXPECT_EQ(dg.num_edges(), 5u);
}

TEST(DynGraph, FreelistDrainsWithinOneBatchAndIsClearedByCompact) {
  DynGraph dg(Graph::build(8, EdgeList{{0, 1}, {1, 2}, {2, 3}}));
  // Delete + inserts in ONE batch: the delete's retired id is visible to
  // the later inserts of the same batch (serial validation in batch order).
  auto applied = dg.apply(
      batch_of({del(1, 2), ins(4, 5), ins(5, 6)}, 1), nullptr, 1);
  ASSERT_EQ(applied.size(), 3u);
  EXPECT_EQ(applied[1].id, 1u);  // reuses the id retired one record earlier
  EXPECT_EQ(applied[2].id, 3u);  // freelist dry: bump counter
  expect_view_equals_rebuild(dg);

  // Compact rebuilds an exact id space — stale freelist entries would alias
  // live canonical ids, so compaction must drop them.
  (void)dg.apply(batch_of({del(4, 5)}, 2), nullptr, 1);
  EXPECT_EQ(dg.freelist_size(), 1u);
  (void)dg.compact();
  EXPECT_EQ(dg.freelist_size(), 0u);
  applied = dg.apply(batch_of({ins(6, 7)}, 3), nullptr, 1);
  EXPECT_EQ(applied[0].id, dg.num_edges() - 1);  // fresh top-of-space id
  expect_view_equals_rebuild(dg);
}

TEST(DynGraph, ApplyReplicatedTracksOriginalAcrossBatchesAndCompaction) {
  // Leader validates + assigns ids; follower replays the shipped records
  // verbatim. After every epoch — including an in-stream compaction fence —
  // the two must agree on adjacency, ids, and weights.
  DynGraph leader(base_graph());
  DynGraph follower(base_graph());
  SplitMix64 rng(21);

  for (std::uint64_t epoch = 1; epoch <= 6; ++epoch) {
    std::vector<Mutation> ms;
    for (int i = 0; i < 40; ++i) {
      const auto u =
          static_cast<VertexId>(rng.next() % leader.num_vertices());
      const auto v =
          static_cast<VertexId>(rng.next() % leader.num_vertices());
      if (u == v) continue;
      if (leader.has_edge(u, v)) {
        ms.push_back(i % 3 == 0 ? rew(u, v, static_cast<float>(i + 1))
                                : del(u, v));
      } else {
        ms.push_back(ins(u, v, static_cast<float>(i % 7 + 1)));
      }
    }
    // Leader validates serially; follower replays with a parallel fan-out —
    // the topology phases must commute with thread count.
    const auto shipped = leader.apply(batch_of(ms, epoch), nullptr, 1);
    const ApplyStats rs = follower.apply_replicated(shipped, 4);
    EXPECT_EQ(rs.applied, shipped.size());
    EXPECT_EQ(rs.rejected, 0u);

    ASSERT_EQ(leader.num_edges(), follower.num_edges());
    ASSERT_EQ(leader.num_live_edges(), follower.num_live_edges());
    EXPECT_EQ(weight_map(leader), weight_map(follower));

    if (epoch == 3) {
      // In-stream compaction: both sides compact at the same point, so the
      // canonical rebuild leaves them with identical id spaces.
      (void)leader.compact();
      (void)follower.compact();
      const EdgeList ll = leader.live_edge_list();
      for (const Edge& e : ll) {
        EXPECT_EQ(leader.find_edge(e.src, e.dst),
                  follower.find_edge(e.src, e.dst));
      }
    }
  }
  expect_view_equals_rebuild(follower);

  // Ids must match edge-for-edge, not just set-wise.
  for (const Edge& e : leader.live_edge_list()) {
    EXPECT_EQ(leader.find_edge(e.src, e.dst),
              follower.find_edge(e.src, e.dst));
  }
}

TEST(DynGraph, OverflowRatioTracksRetiredAndGrownIds) {
  DynGraph dg(base_graph());
  EXPECT_DOUBLE_EQ(dg.overflow_ratio(), 0.0);
  const EdgeList live = dg.live_edge_list();
  (void)dg.apply(batch_of({del(live[0].src, live[0].dst)}), nullptr, 1);
  const double after_del = dg.overflow_ratio();
  EXPECT_GT(after_del, 0.0);
  std::vector<Mutation> more;
  for (VertexId v = 1; v < 10; ++v) {
    if (!dg.has_edge(127, v)) more.push_back(ins(127, v));
  }
  (void)dg.apply(batch_of(more, 2), nullptr, 1);
  EXPECT_GT(dg.overflow_ratio(), after_del);
}

// The canonical-snapshot invariant (edge k of the (src, dst)-sorted live
// list carries id k) is tracked by an explicit flag, NOT inferred from
// overflow_ratio(): a delete whose id a later insert reuses returns the
// ratio to exactly 0 while the reused id sits out of canonical order.
TEST(DynGraph, IdsCanonicalTracksReuseWhereOverflowRatioCannot) {
  DynGraph dg(Graph::build(4, EdgeList{{0, 1}, {1, 2}, {2, 3}}));
  EXPECT_TRUE(dg.ids_canonical());

  // Weight changes never touch ids.
  (void)dg.apply(batch_of({rew(0, 1, 2.5f)}), nullptr, 1);
  EXPECT_TRUE(dg.ids_canonical());

  // Retire id 0 ((0,1) is the canonically-first edge)...
  (void)dg.apply(batch_of({del(0, 1)}), nullptr, 1);
  EXPECT_FALSE(dg.ids_canonical());

  // ...and reuse it for (3, 0), which sorts LAST. Id space is hole-free
  // again (ratio exactly 0) but id 0 no longer matches canonical order.
  (void)dg.apply(batch_of({ins(3, 0)}, 2), nullptr, 1);
  EXPECT_DOUBLE_EQ(dg.overflow_ratio(), 0.0);
  EXPECT_EQ(dg.find_edge(3, 0), 0u);
  EXPECT_FALSE(dg.ids_canonical());

  // compact() restores canonical ids: (1,2) -> 0, (2,3) -> 1, (3,0) -> 2.
  (void)dg.compact();
  EXPECT_TRUE(dg.ids_canonical());
  EXPECT_EQ(dg.find_edge(1, 2), 0u);
  EXPECT_EQ(dg.find_edge(2, 3), 1u);
  EXPECT_EQ(dg.find_edge(3, 0), 2u);
}

}  // namespace
}  // namespace ndg::dyn
