// Worklist subsystem tests (src/sched/): per-implementation semantics plus
// the invariant every implementation must keep under contention — each pushed
// item is popped EXACTLY once, by some thread. The contention tests run under
// the NDG_TSAN CI job, so they double as the data-race proof for the
// worklists themselves.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <numeric>
#include <vector>

#include "sched/bucket.hpp"
#include "sched/scheduler_kind.hpp"
#include "sched/static_block.hpp"
#include "sched/stealing.hpp"
#include "sched/worklist.hpp"
#include "util/barrier.hpp"
#include "util/thread_team.hpp"

namespace ndg {
namespace {

TEST(SchedulerKind, ParseRoundTrips) {
  for (const SchedulerKind k :
       {SchedulerKind::kStaticBlock, SchedulerKind::kStealing,
        SchedulerKind::kBucket}) {
    const auto parsed = parse_scheduler(to_string(k));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, k);
  }
  EXPECT_FALSE(parse_scheduler("omp").has_value());
  EXPECT_FALSE(parse_scheduler("").has_value());
}

TEST(SchedulingPriority, DefaultsToZeroWithoutHook) {
  struct NoPriority {};
  struct WithPriority {
    [[nodiscard]] std::uint64_t priority(VertexId v) const { return v + 7; }
  };
  EXPECT_EQ(scheduling_priority(NoPriority{}, 3), 0u);
  EXPECT_EQ(scheduling_priority(WithPriority{}, 3), 10u);
}

TEST(StaticBlockWorklist, FifoPerThreadAndAutoReset) {
  StaticBlockWorklist wl(2);
  wl.push(0, 10);
  wl.push(0, 11);
  wl.push(1, 20);
  wl.publish(0);
  wl.publish(1);

  VertexId v = 0;
  ASSERT_TRUE(wl.try_pop(0, v));
  EXPECT_EQ(v, 10u);
  ASSERT_TRUE(wl.try_pop(0, v));
  EXPECT_EQ(v, 11u);
  EXPECT_FALSE(wl.try_pop(0, v));  // thread 0 never sees thread 1's items
  ASSERT_TRUE(wl.try_pop(1, v));
  EXPECT_EQ(v, 20u);
  EXPECT_FALSE(wl.try_pop(1, v));

  // The failed pop reset the queue: a refill starts clean.
  wl.push(0, 30);
  ASSERT_TRUE(wl.try_pop(0, v));
  EXPECT_EQ(v, 30u);

  const WorklistStats s = wl.stats();
  EXPECT_EQ(s.pushes, 4u);
  EXPECT_EQ(s.pops, 4u);
  EXPECT_EQ(s.steals, 0u);
}

TEST(StealingWorklist, SingleThreadDrainsInPushOrder) {
  StealingWorklist wl(1, /*chunk_size=*/4);
  for (VertexId v = 0; v < 10; ++v) wl.push(0, v);
  wl.publish(0);

  std::vector<VertexId> popped;
  VertexId v = 0;
  while (wl.try_pop(0, v)) popped.push_back(v);
  // Owner pops front chunks first and walks each chunk in order: FIFO.
  std::vector<VertexId> expected(10);
  std::iota(expected.begin(), expected.end(), 0u);
  EXPECT_EQ(popped, expected);
  EXPECT_EQ(wl.stats().pops, 10u);
}

TEST(StealingWorklist, ImbalancedSeedingTriggersStealsExactlyOnce) {
  constexpr std::size_t kThreads = 4;
  constexpr VertexId kItems = 50000;
  StealingWorklist wl(kThreads, /*chunk_size=*/32);
  // All the work lands on thread 0 — the skewed-frontier scenario.
  for (VertexId v = 0; v < kItems; ++v) wl.push(0, v);
  wl.publish(0);

  std::vector<std::atomic<std::uint32_t>> pop_count(kItems);
  SpinBarrier start(kThreads);  // without it thread 0 drains before the
                                // thieves even spawn and steals stay 0
  run_team(kThreads, [&](std::size_t tid) {
    bool sense = false;
    start.arrive_and_wait(sense);
    VertexId v = 0;
    while (wl.try_pop(tid, v)) {
      pop_count[v].fetch_add(1, std::memory_order_relaxed);
    }
  });

  for (VertexId v = 0; v < kItems; ++v) {
    ASSERT_EQ(pop_count[v].load(), 1u) << "item " << v;
  }
  const WorklistStats s = wl.stats();
  EXPECT_EQ(s.pushes, kItems);
  EXPECT_EQ(s.pops, kItems);
  EXPECT_GT(s.steals, 0u);
  EXPECT_GE(s.steal_attempts, s.steals);
}

TEST(StealingWorklist, ConcurrentProducersConsumersExactlyOnce) {
  constexpr std::size_t kThreads = 4;
  constexpr VertexId kPerThread = 20000;
  StealingWorklist wl(kThreads, /*chunk_size=*/16);
  std::vector<std::atomic<std::uint32_t>> pop_count(kThreads * kPerThread);

  // Each thread interleaves producing its own range with consuming whatever
  // is reachable, then drains until nothing is left anywhere.
  run_team(kThreads, [&](std::size_t tid) {
    VertexId v = 0;
    for (VertexId i = 0; i < kPerThread; ++i) {
      wl.push(tid, static_cast<VertexId>(tid * kPerThread + i));
      if (i % 3 == 0 && wl.try_pop(tid, v)) {
        pop_count[v].fetch_add(1, std::memory_order_relaxed);
      }
    }
    wl.publish(tid);
    while (wl.try_pop(tid, v)) {
      pop_count[v].fetch_add(1, std::memory_order_relaxed);
    }
  });

  // No concurrent producers remain after the team joins, so a final drain by
  // one thread reaches anything the per-thread exits left behind.
  VertexId v = 0;
  while (wl.try_pop(0, v)) pop_count[v].fetch_add(1, std::memory_order_relaxed);

  for (std::size_t i = 0; i < pop_count.size(); ++i) {
    ASSERT_EQ(pop_count[i].load(), 1u) << "item " << i;
  }
  const WorklistStats s = wl.stats();
  EXPECT_EQ(s.pushes, static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(s.pops, s.pushes);
}

TEST(BucketWorklist, PopsInNonDecreasingPriorityOrder) {
  BucketWorklist wl(1, /*num_buckets=*/16);
  // Priorities deliberately pushed out of order.
  const std::vector<std::uint64_t> prios = {9, 2, 14, 0, 7, 2, 9, 5, 0, 12};
  std::vector<std::uint64_t> prio_of(prios.size());
  for (VertexId v = 0; v < prios.size(); ++v) {
    prio_of[v] = prios[v];
    wl.push(0, v, prios[v]);
  }

  std::uint64_t last = 0;
  VertexId v = 0;
  std::size_t popped = 0;
  while (wl.try_pop(0, v)) {
    EXPECT_GE(prio_of[v], last) << "priority inversion at pop " << popped;
    last = prio_of[v];
    ++popped;
  }
  EXPECT_EQ(popped, prios.size());
}

TEST(BucketWorklist, ClampsOverflowPrioritiesToLastBucket) {
  BucketWorklist wl(1, /*num_buckets=*/4);
  wl.push(0, 1, /*prio=*/1u << 20);  // clamps to bucket 3
  wl.push(0, 2, /*prio=*/0);
  VertexId v = 0;
  ASSERT_TRUE(wl.try_pop(0, v));
  EXPECT_EQ(v, 2u);  // bucket 0 drains before the clamped item
  ASSERT_TRUE(wl.try_pop(0, v));
  EXPECT_EQ(v, 1u);
  EXPECT_FALSE(wl.try_pop(0, v));
}

TEST(BucketWorklist, ExactlyOnceUnderContention) {
  constexpr std::size_t kThreads = 4;
  constexpr VertexId kPerThread = 20000;
  BucketWorklist wl(kThreads, /*num_buckets=*/64);
  std::vector<std::atomic<std::uint32_t>> pop_count(kThreads * kPerThread);

  run_team(kThreads, [&](std::size_t tid) {
    VertexId v = 0;
    for (VertexId i = 0; i < kPerThread; ++i) {
      const auto item = static_cast<VertexId>(tid * kPerThread + i);
      wl.push(tid, item, item % 97);  // spread across (and beyond) buckets
      if (i % 2 == 0 && wl.try_pop(tid, v)) {
        pop_count[v].fetch_add(1, std::memory_order_relaxed);
      }
    }
    while (wl.try_pop(tid, v)) {
      pop_count[v].fetch_add(1, std::memory_order_relaxed);
    }
  });
  VertexId v = 0;
  while (wl.try_pop(0, v)) pop_count[v].fetch_add(1, std::memory_order_relaxed);

  for (std::size_t i = 0; i < pop_count.size(); ++i) {
    ASSERT_EQ(pop_count[i].load(), 1u) << "item " << i;
  }
  const WorklistStats s = wl.stats();
  EXPECT_EQ(s.pushes, static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(s.pops, s.pushes);
}

TEST(ThreadTeam, ReusableAcrossRunsWithStableThreadIds) {
  constexpr std::size_t kThreads = 3;
  ThreadTeam team(kThreads);
  for (int round = 0; round < 5; ++round) {
    std::vector<std::atomic<int>> hits(kThreads);
    team.run([&](std::size_t tid) {
      EXPECT_EQ(current_thread_id(), tid);
      hits[tid].fetch_add(1);
    });
    for (std::size_t t = 0; t < kThreads; ++t) EXPECT_EQ(hits[t].load(), 1);
  }
}

}  // namespace
}  // namespace ndg
