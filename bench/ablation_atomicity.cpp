// E5: microbenchmark of the atomicity methods (Section III). Quantifies the
// per-access cost ordering behind Figure 3's policy gap:
//
//   aligned (plain 8-byte access)  ≈  relaxed atomic   <   seq_cst   <<  locked
//
// Two granularities: raw read/write streams over an edge array, and one full
// nondeterministic PageRank iteration per policy (the end-to-end cost).
// Built on google-benchmark.

#include <benchmark/benchmark.h>

#include "algorithms/pagerank.hpp"
#include "atomics/access_policy.hpp"
#include "engine/nondeterministic.hpp"
#include "graph/generators.hpp"

namespace ndg {
namespace {

constexpr EdgeId kEdges = 1 << 16;

template <typename Policy>
void bm_read_stream(benchmark::State& state, Policy policy) {
  EdgeDataArray<float> arr(kEdges, 1.0f);
  for (auto _ : state) {
    float sum = 0.0f;
    for (EdgeId e = 0; e < kEdges; ++e) sum += policy.read(arr, e);
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * kEdges);
}

template <typename Policy>
void bm_write_stream(benchmark::State& state, Policy policy) {
  EdgeDataArray<float> arr(kEdges, 0.0f);
  for (auto _ : state) {
    for (EdgeId e = 0; e < kEdges; ++e) policy.write(arr, e, 2.0f);
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * kEdges);
}

void BM_ReadAligned(benchmark::State& s) { bm_read_stream(s, AlignedAccess{}); }
void BM_ReadRelaxed(benchmark::State& s) {
  bm_read_stream(s, RelaxedAtomicAccess{});
}
void BM_ReadSeqCst(benchmark::State& s) { bm_read_stream(s, SeqCstAccess{}); }
void BM_ReadLocked(benchmark::State& s) {
  EdgeLockTable locks(kEdges);
  bm_read_stream(s, LockedAccess{&locks});
}

void BM_WriteAligned(benchmark::State& s) { bm_write_stream(s, AlignedAccess{}); }
void BM_WriteRelaxed(benchmark::State& s) {
  bm_write_stream(s, RelaxedAtomicAccess{});
}
void BM_WriteSeqCst(benchmark::State& s) { bm_write_stream(s, SeqCstAccess{}); }
void BM_WriteLocked(benchmark::State& s) {
  EdgeLockTable locks(kEdges);
  bm_write_stream(s, LockedAccess{&locks});
}

BENCHMARK(BM_ReadAligned);
BENCHMARK(BM_ReadRelaxed);
BENCHMARK(BM_ReadSeqCst);
BENCHMARK(BM_ReadLocked);
BENCHMARK(BM_WriteAligned);
BENCHMARK(BM_WriteRelaxed);
BENCHMARK(BM_WriteSeqCst);
BENCHMARK(BM_WriteLocked);

/// End-to-end: a complete nondeterministic PageRank run per atomicity mode.
void bm_pagerank(benchmark::State& state, AtomicityMode mode) {
  static const Graph g = Graph::build(4096, gen::rmat(4096, 32768, 13));
  EngineOptions opts;
  opts.mode = mode;
  opts.num_threads = static_cast<std::size_t>(state.range(0));
  std::uint64_t updates = 0;
  for (auto _ : state) {
    PageRankProgram prog(1e-3f);
    EdgeDataArray<float> edges(g.num_edges());
    prog.init(g, edges);
    const EngineResult r = run_nondeterministic(g, prog, edges, opts);
    updates += r.updates;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(updates));
}

void BM_PageRankLocked(benchmark::State& s) {
  bm_pagerank(s, AtomicityMode::kLocked);
}
void BM_PageRankAligned(benchmark::State& s) {
  bm_pagerank(s, AtomicityMode::kAligned);
}
void BM_PageRankRelaxed(benchmark::State& s) {
  bm_pagerank(s, AtomicityMode::kRelaxed);
}
void BM_PageRankSeqCst(benchmark::State& s) {
  bm_pagerank(s, AtomicityMode::kSeqCst);
}

BENCHMARK(BM_PageRankLocked)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PageRankAligned)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PageRankRelaxed)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PageRankSeqCst)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ndg

BENCHMARK_MAIN();
