#pragma once
// Shared plumbing for the table/figure harnesses: dataset construction with a
// --scale flag, comma-list parsing, and run helpers. Every harness prints the
// exact configuration (scale, seeds, thread list) so a row in
// bench_output.txt is reproducible in isolation.

#include <sstream>
#include <string>
#include <vector>

#include "graph/datasets.hpp"
#include "util/cli.hpp"

namespace ndg::bench {

/// Parses "1,2,4,8" into {1,2,4,8}.
inline std::vector<std::size_t> parse_list(const std::string& csv) {
  std::vector<std::size_t> out;
  std::istringstream is(csv);
  std::string tok;
  while (std::getline(is, tok, ',')) {
    if (!tok.empty()) out.push_back(std::stoul(tok));
  }
  return out;
}

/// Builds the Table I stand-ins at the --scale divisor (default 128: the
/// largest graph lands near one million edges, so the full grids run in
/// minutes on one core).
///
/// To run the benches on the REAL SNAP/UFL files instead, replace the loop
/// body with e.g.
///   out.push_back(make_dataset_from_file("web-google",
///                                        "/data/web-Google.txt"));
/// — everything downstream is identical.
inline std::vector<Dataset> make_datasets(const CliArgs& args,
                                          unsigned default_scale = 128) {
  const auto scale = static_cast<unsigned>(args.get_int("scale", default_scale));
  const auto seed = static_cast<std::uint64_t>(args.get_int("graph-seed", 20150707));
  std::vector<Dataset> out;
  for (const DatasetId id : all_datasets()) {
    out.push_back(make_dataset(id, scale, seed));
  }
  return out;
}

}  // namespace ndg::bench
