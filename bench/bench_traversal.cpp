// Traversal/memory-locality bench for the perf layer (docs/PERF.md):
//
//   1. PageRank + SSSP on an UNPERMUTED R-MAT (vertex id correlates with
//      degree, so locality effects are visible) across the new knobs:
//      frontier policy {sparse, dense, auto} × hub splitting {off, on} on the
//      stealing worklist, plus the --mem placement policies on the default
//      engine config.
//   2. Microbenchmarks for the two build-path fixes: edge_source (O(1)
//      inverse array) vs edge_source_search (the old binary search), and
//      Graph::build wall time at exact-size allocation.
//
// Emits a machine-readable manifest (default BENCH_traversal.json) consumed
// by scripts/bench_diff.py in the CI bench-smoke job — keep the `config`
// column values stable, they are the diff keys.
//
// Flags: --n=16384 --m=131072 (R-MAT size; n must be a power of two),
//        --threads=4, --repeats=3, --eps=1e-3, --hub-threshold=64,
//        --json=BENCH_traversal.json

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "algorithms/pagerank.hpp"
#include "algorithms/sssp.hpp"
#include "bench_common.hpp"
#include "engine/nondeterministic.hpp"
#include "graph/generators.hpp"
#include "graph/graph_stats.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace ndg {
namespace {

struct Knobs {
  std::size_t threads = 4;
  int repeats = 3;
  float eps = 1e-3f;
  std::size_t hub_threshold = 64;
};

/// Median seconds over `repeats` runs; `run` re-initializes each time.
template <typename Runner>
double median_secs(const Runner& run, int repeats) {
  std::vector<double> times;
  for (int i = 0; i < repeats; ++i) times.push_back(run());
  return percentile(times, 50);
}

template <typename MakeProgram>
void bench_engine_grid(const Graph& g, const char* algo,
                       MakeProgram make_prog, const Knobs& k,
                       TextTable& table) {
  using Program = decltype(make_prog());
  using ED = typename Program::EdgeData;

  const auto run_with = [&](const EngineOptions& opts, std::string config) {
    Program prog = make_prog();
    EdgeDataArray<ED> edges(g.num_edges(), ED{}, opts.mem);
    EngineResult last;
    const double secs = median_secs(
        [&] {
          prog.init(g, edges);
          last = run_nondeterministic(g, prog, edges, opts);
          return last.seconds;
        },
        k.repeats);
    table.add_row(
        {algo, std::move(config), std::to_string(opts.num_threads),
         TextTable::num(secs * 1e3, 2),
         TextTable::num(static_cast<double>(last.updates) / secs / 1e6, 2),
         std::to_string(last.iterations), std::to_string(last.hub_splits),
         std::to_string(last.hub_chunks), last.converged ? "yes" : "no"});
  };

  // Frontier policy × hub splitting, on the stealing worklist (hub chunks
  // need a shared queue to be co-scheduled on).
  for (const FrontierPolicy policy :
       {FrontierPolicy::kSparse, FrontierPolicy::kDense,
        FrontierPolicy::kAuto}) {
    for (const bool hubs : {false, true}) {
      EngineOptions opts;
      opts.num_threads = k.threads;
      opts.mode = AtomicityMode::kRelaxed;
      opts.scheduler = SchedulerKind::kStealing;
      opts.frontier_policy = policy;
      opts.hub_threshold = hubs ? k.hub_threshold : 0;
      run_with(opts, std::string("frontier-") + to_string(policy) +
                         (hubs ? "+hubs" : ""));
    }
  }

  // Memory placement policies on the default engine config. On hosts
  // without NUMA support these fall back transparently; the row is still
  // emitted so the diff keys are stable.
  for (const MemPolicy mp :
       {MemPolicy::kDefault, MemPolicy::kHugepage, MemPolicy::kInterleave}) {
    EngineOptions opts;
    opts.num_threads = k.threads;
    opts.mode = AtomicityMode::kRelaxed;
    opts.frontier_policy = FrontierPolicy::kAuto;
    opts.mem.policy = mp;
    run_with(opts, std::string("mem-") + to_string(mp));
  }
}

void bench_edge_source(const Graph& g, int repeats, TextTable& table) {
  const EdgeId m = g.num_edges();
  std::uint64_t sink = 0;
  const double direct = median_secs(
      [&] {
        Timer t;
        for (EdgeId e = 0; e < m; ++e) sink += g.edge_source(e);
        return t.seconds();
      },
      repeats);
  const double search = median_secs(
      [&] {
        Timer t;
        for (EdgeId e = 0; e < m; ++e) sink += g.edge_source_search(e);
        return t.seconds();
      },
      repeats);
  // Defeat dead-code elimination of the sweeps.
  if (sink == 0xdeadbeef) std::cerr << "";
  table.add_row({"edge_source", "inverse-array", "1",
                 TextTable::num(direct * 1e3, 3),
                 TextTable::num(static_cast<double>(m) / direct / 1e6, 1), "1",
                 "0", "0", "yes"});
  table.add_row({"edge_source", "binary-search", "1",
                 TextTable::num(search * 1e3, 3),
                 TextTable::num(static_cast<double>(m) / search / 1e6, 1), "1",
                 "0", "0", "yes"});
}

void bench_build(VertexId n, const EdgeList& el, int repeats,
                 TextTable& table) {
  const double secs = median_secs(
      [&] {
        EdgeList copy = el;
        Timer t;
        const Graph g = Graph::build(n, std::move(copy));
        return g.num_edges() ? t.seconds() : t.seconds();
      },
      repeats);
  table.add_row({"graph_build", "exact-alloc", "1",
                 TextTable::num(secs * 1e3, 2),
                 TextTable::num(static_cast<double>(el.size()) / secs / 1e6, 2),
                 "1", "0", "0", "yes"});
}

}  // namespace
}  // namespace ndg

int main(int argc, char** argv) {
  using namespace ndg;
  const CliArgs args(argc, argv);

  const auto n = static_cast<VertexId>(args.get_int("n", 16384));
  const auto m = static_cast<EdgeId>(args.get_int("m", 131072));
  Knobs k;
  k.threads = static_cast<std::size_t>(args.get_int("threads", 4));
  k.repeats = static_cast<int>(args.get_int("repeats", 3));
  k.eps = static_cast<float>(args.get_double("eps", 1e-3));
  k.hub_threshold =
      static_cast<std::size_t>(args.get_int("hub-threshold", 64));

  std::cout << "=== Traversal & memory-locality bench (perf layer) ===\n"
            << "(rmat n=" << n << " m=" << m << " unpermuted, threads="
            << k.threads << ", repeats=" << k.repeats
            << ", hub-threshold=" << k.hub_threshold << ")\n\n";

  gen::RmatOptions rmat_opts;
  rmat_opts.permute = false;  // keep id<->degree correlation: locality shows
  EdgeList el = gen::rmat(n, m, /*seed=*/20150707, rmat_opts);
  const EdgeList el_copy = el;  // for the build microbench
  const Graph g = Graph::build(n, std::move(el));
  const VertexId src = max_out_degree_vertex(g);

  TextTable table({"benchmark", "config", "threads", "ms", "Mitems/s",
                   "iters", "hub_splits", "hub_chunks", "conv"});

  const float eps = k.eps;
  bench_engine_grid(g, "pagerank", [eps] { return PageRankProgram(eps); }, k,
                    table);
  bench_engine_grid(g, "sssp", [src] { return SsspProgram(src, 42); }, k,
                    table);
  bench_edge_source(g, k.repeats, table);
  bench_build(n, el_copy, k.repeats, table);

  table.print(std::cout);

  const std::string json_path = args.get("json", "BENCH_traversal.json");
  const std::string cfg =
      "{\"experiment\":\"traversal\",\"n\":" + std::to_string(n) +
      ",\"m\":" + std::to_string(m) +
      ",\"threads\":" + std::to_string(k.threads) +
      ",\"repeats\":" + std::to_string(k.repeats) +
      ",\"hub_threshold\":" + std::to_string(k.hub_threshold) + "}";
  table.write_json(json_path, cfg);
  std::cout << "\n(json manifest written to " << json_path << ")\n";

  std::cout << "\nshape targets: dense/auto frontier >= sparse on PageRank "
               "(full frontiers); sparse >= dense on SSSP tails; "
               "inverse-array edge_source >> binary-search.\n";
  return 0;
}
