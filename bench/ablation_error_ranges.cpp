// Ablation (§VII future work): "more discussions (e.g., on precision, range
// of errors) on the variations in the results of fixed point iteration
// algorithms by nondeterministic executions."
//
// For PageRank on web-google-sim, across ε and logical core counts, this
// reports the pooled absolute/relative error percentiles of nondeterministic
// runs against the deterministic fixed point, the worst per-vertex spread,
// and where in the ranking the error lives (head / torso / tail bands).
//
// Shape targets: p99 relative error scales with ε; errors concentrate in the
// ranking's tail (the quantitative backbone of Section V-C's "variation
// happens in the pages of less significance").
//
// Flags: --scale=64 --runs=5 --delay=4 --seed=7.

#include <iostream>

#include "algorithms/pagerank.hpp"
#include "bench_common.hpp"
#include "core/error_analysis.hpp"
#include "engine/deterministic.hpp"
#include "engine/simulator.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ndg;
  const CliArgs args(argc, argv);
  const int runs = static_cast<int>(args.get_int("runs", 5));
  const auto delay = static_cast<std::size_t>(args.get_int("delay", 4));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 7));
  const auto scale = static_cast<unsigned>(args.get_int("scale", 64));

  const Dataset d = make_dataset(DatasetId::kWebGoogle, scale);
  std::cout << "=== PageRank nondeterministic error ranges ===\n"
            << "(" << d.name << ", |V|=" << d.graph.num_vertices()
            << ", |E|=" << d.graph.num_edges() << ", " << runs
            << " NE runs per cell, delay=" << delay << "±" << delay << ")\n\n";

  TextTable table({"eps", "P", "abs p50", "abs p99", "rel p99", "max spread",
                   "head err", "torso err", "tail err"});

  for (const float eps : {1e-2f, 1e-3f, 1e-4f}) {
    PageRankProgram de(eps);
    EdgeDataArray<float> de_edges(d.graph.num_edges());
    de.init(d.graph, de_edges);
    run_deterministic(d.graph, de, de_edges);
    const auto baseline = de.values();

    for (const std::size_t procs : {4u, 16u}) {
      std::vector<std::vector<double>> ne_runs;
      for (int i = 0; i < runs; ++i) {
        PageRankProgram ne(eps);
        EdgeDataArray<float> ne_edges(d.graph.num_edges());
        ne.init(d.graph, ne_edges);
        SimOptions opts;
        opts.num_procs = procs;
        opts.delay = delay;
        opts.delay_jitter = delay;
        opts.seed = seed + 7919ULL * static_cast<std::uint64_t>(i) + procs;
        run_simulated(d.graph, ne, ne_edges, opts);
        ne_runs.push_back(ne.values());
      }
      const ErrorAnalysis a = analyze_errors(baseline, ne_runs);
      table.add_row({TextTable::num(eps, 4), std::to_string(procs),
                     TextTable::num(a.abs_error.p50, 6),
                     TextTable::num(a.abs_error.p99, 6),
                     TextTable::num(a.rel_error.p99, 6),
                     TextTable::num(a.max_spread, 6),
                     TextTable::num(a.head_mean_abs, 6),
                     TextTable::num(a.torso_mean_abs, 6),
                     TextTable::num(a.tail_mean_abs, 6)});
    }
  }
  table.print(std::cout);
  std::cout << "\nreading: error percentiles track eps (the convergence "
               "threshold bounds the admissible staleness);\nhead/torso/tail "
               "columns show WHERE the ranking absorbs the error.\n";
  return 0;
}
