// Ablation: the extension algorithms (SpMV, label propagation, k-core, MIS,
// push-PageRank plain & atomic) under DE and NE-relaxed — broadening the
// paper's Figure 3 coverage to every workload in the library, with
// correctness verdicts where an exact reference exists.
//
// Flags: --scale=256 --threads=4.

#include <iostream>

#include "algorithms/kcore.hpp"
#include "algorithms/label_propagation.hpp"
#include "algorithms/mis.hpp"
#include "algorithms/push_pagerank_atomic.hpp"
#include "algorithms/reference/references.hpp"
#include "algorithms/spmv.hpp"
#include "bench_common.hpp"
#include "engine/deterministic.hpp"
#include "engine/nondeterministic.hpp"
#include "util/table.hpp"

namespace ndg {
namespace {

template <typename MakeProgram, typename Verify>
void bench_ext(const Dataset& d, const char* algo, MakeProgram make_prog,
               Verify verify, std::size_t threads, TextTable& table) {
  using Program = decltype(make_prog());
  using ED = typename Program::EdgeData;
  EdgeDataArray<ED> edges(d.graph.num_edges());
  {
    Program prog = make_prog();
    prog.init(d.graph, edges);
    const EngineResult r = run_deterministic(d.graph, prog, edges, 1000000);
    table.add_row({d.name, algo, "DE", std::to_string(r.iterations),
                   TextTable::num(r.seconds * 1e3, 1),
                   r.converged ? verify(prog) : "no-convergence"});
  }
  {
    Program prog = make_prog();
    prog.init(d.graph, edges);
    EngineOptions opts;
    opts.num_threads = threads;
    opts.mode = AtomicityMode::kRelaxed;
    opts.max_iterations = 1000000;
    const EngineResult r = run_nondeterministic(d.graph, prog, edges, opts);
    table.add_row({d.name, algo, "NE-relaxed", std::to_string(r.iterations),
                   TextTable::num(r.seconds * 1e3, 1),
                   r.converged ? verify(prog) : "no-convergence"});
  }
}

}  // namespace
}  // namespace ndg

int main(int argc, char** argv) {
  using namespace ndg;
  const CliArgs args(argc, argv);
  const auto threads = static_cast<std::size_t>(args.get_int("threads", 4));
  const auto scale = static_cast<unsigned>(args.get_int("scale", 256));

  const Dataset d = make_dataset(DatasetId::kWebGoogle, scale);
  std::cout << "=== Extension algorithms under DE vs NE ===\n"
            << "(" << d.name << ", |V|=" << d.graph.num_vertices()
            << ", |E|=" << d.graph.num_edges() << ", threads=" << threads
            << ")\n\n";

  const auto expected_core = ref::kcore(d.graph);
  const auto expected_mis = ref::greedy_mis(d.graph);
  const auto expected_pr = ref::pagerank(d.graph, 0.85, 1e-12);

  TextTable table({"graph", "algorithm", "config", "iters", "ms", "verdict"});

  bench_ext(d, "spmv", [] { return SpmvProgram(1e-3f); },
            [](const SpmvProgram&) { return std::string("converged"); },
            threads, table);
  bench_ext(d, "label-propagation", [] { return LabelPropagationProgram(); },
            [](const LabelPropagationProgram&) {
              return std::string("converged");
            },
            threads, table);
  bench_ext(d, "kcore", [] { return KCoreProgram(); },
            [&](const KCoreProgram& p) {
              return std::string(p.core_numbers() == expected_core
                                     ? "exact vs peeling"
                                     : "MISMATCH");
            },
            threads, table);
  bench_ext(d, "mis", [] { return MisProgram(); },
            [&](const MisProgram& p) {
              std::vector<bool> got(p.states().size());
              for (std::size_t i = 0; i < got.size(); ++i) {
                got[i] = p.states()[i] == MisProgram::kIn;
              }
              return std::string(got == expected_mis ? "lexicographic MIS"
                                                     : "MISMATCH");
            },
            threads, table);
  bench_ext(d, "pagerank-push-atomic",
            [] { return AtomicPushPageRankProgram(1e-5f); },
            [&](const AtomicPushPageRankProgram& p) {
              double err = 0;
              for (VertexId v = 0; v < p.ranks().size(); ++v) {
                err = std::max(err, std::abs(p.ranks()[v] - expected_pr[v]));
              }
              return "max err " + TextTable::num(err, 4);
            },
            threads, table);

  table.print(std::cout);
  std::cout << "\nreading: every Theorem-2 workload is exact under racy "
               "execution; the atomic push variant stays within its epsilon "
               "slack thanks to the RMW drain/combine.\n";
  return 0;
}
