// Speculative-engine ablation (docs/SPECULATION.md): abort rate and speedup
// of the rollback engine over the NE-refused family (matching, coloring) plus
// the MIS bridge case, across thread counts, against the sequential DE-
// equivalent baseline (the same engine at one thread — sequential by
// construction and result-identical by the engine's commit-in-id-order rule).
//
// Shape targets:
//   * every cell's result equals the sequential greedy-by-id oracle EXACTLY
//     (a mismatch exits nonzero — the engine's whole contract);
//   * rounds / commits / aborts are identical across thread counts — the
//     commit rule depends only on footprints and id order, never timing.
//     That makes them deterministic, CI-gateable metrics (unlike ms on a
//     noisy one-core runner): bench_diff.py gates `rounds` and `aborts`.
//
// Flags: --scale=256 --threads=1,2,4,8 --algos=matching,coloring,mis
//        --max-rounds=500000 --json=PATH (BENCH_speculative.json for CI).

#include <iostream>
#include <sstream>

#include "algorithms/registry.hpp"
#include "bench_common.hpp"
#include "util/table.hpp"

namespace {

std::vector<std::string> split_names(const std::string& csv) {
  std::vector<std::string> out;
  std::istringstream is(csv);
  std::string tok;
  while (std::getline(is, tok, ',')) {
    if (!tok.empty()) out.push_back(tok);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ndg;
  const CliArgs args(argc, argv);
  const auto scale = static_cast<unsigned>(args.get_int("scale", 256));
  const auto threads = bench::parse_list(args.get("threads", "1,2,4,8"));
  const auto algos = split_names(args.get("algos", "matching,coloring,mis"));
  const auto max_rounds =
      static_cast<std::size_t>(args.get_int("max-rounds", 500000));

  const Dataset d = make_dataset(DatasetId::kWebGoogle, scale);
  std::cout << "=== Speculative rollback ablation: " << d.name
            << " |V|=" << d.graph.num_vertices()
            << " |E|=" << d.graph.num_edges() << " ===\n\n";

  TextTable table({"algorithm", "threads", "rounds", "commits", "aborts",
                   "abort_rate", "converged", "oracle", "ms", "speedup"});
  bool failed = false;
  for (const auto& entry : speculative_registry()) {
    bool wanted = false;
    for (const auto& name : algos) wanted |= name == entry.name;
    if (!wanted) continue;

    // The sequential baseline: one thread IS the DE schedule (ascending id,
    // every conflict resolved by order), so its wall time anchors speedup.
    double base_seconds = 0.0;
    for (const std::size_t nt : threads) {
      EngineOptions opts;
      opts.num_threads = nt;
      opts.max_iterations = max_rounds;
      const EngineResult r = entry.run_speculative(d.graph, opts);
      const bool exact = entry.verify_speculative(d.graph, opts);
      if (nt == threads.front()) base_seconds = r.seconds;
      if (!r.converged || !exact) failed = true;
      table.add_row(
          {entry.name, std::to_string(nt), std::to_string(r.iterations),
           std::to_string(r.spec_commits), std::to_string(r.spec_aborts),
           TextTable::num(r.abort_rate(), 3), r.converged ? "yes" : "NO",
           exact ? "exact" : "MISMATCH",
           TextTable::num(r.seconds * 1e3, 2),
           TextTable::num(r.seconds > 0 ? base_seconds / r.seconds : 0.0, 2)});
    }
  }
  table.print(std::cout);

  if (args.has("json")) {
    const std::string path = args.get("json", "BENCH_speculative.json");
    table.write_json(path,
                     "{\"bench\":\"ablation_speculative\",\"graph\":\"" +
                         json_escape(d.name) +
                         "\",\"scale\":" + std::to_string(scale) + "}");
    std::cout << "\nwrote " << path << "\n";
  }

  if (failed) {
    std::cerr << "\nERROR: a speculative run missed the sequential oracle or "
                 "the round cap — the rollback guarantee is broken.\n";
    return 1;
  }
  return 0;
}
