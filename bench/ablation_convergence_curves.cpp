// Ablation: per-iteration frontier sizes — the convergence curves behind the
// iteration-count contrast of Section I. For WCC and PageRank on
// web-google-sim it prints |S_n| per iteration for the synchronous (BSP),
// deterministic asynchronous (DE) and nondeterministic (simulator, P=8)
// schedules.
//
// Shape targets: BSP's curve is long and fat (the label/rank information
// crosses one hop per iteration, so vertices keep re-activating); the
// asynchronous curves collapse within a few iterations; the nondeterministic
// curve tracks DE's closely, stretched slightly by stale reads.
//
// Flags: --scale=256 --procs=8 --delay=4 --eps=1e-3 --max-rows=24.

#include <iostream>

#include "algorithms/pagerank.hpp"
#include "algorithms/wcc.hpp"
#include "bench_common.hpp"
#include "engine/bsp.hpp"
#include "engine/deterministic.hpp"
#include "engine/simulator.hpp"
#include "util/table.hpp"

namespace ndg {
namespace {

struct Curves {
  std::vector<std::uint64_t> bsp;
  std::vector<std::uint64_t> de;
  std::vector<std::uint64_t> ne;
};

template <typename MakeProgram>
Curves collect(const Graph& g, MakeProgram make_prog, std::size_t procs,
               std::size_t delay) {
  using Program = decltype(make_prog());
  using ED = typename Program::EdgeData;
  Curves c;
  {
    Program prog = make_prog();
    EdgeDataArray<ED> edges(g.num_edges());
    prog.init(g, edges);
    c.bsp = run_bsp(g, prog, edges, 100000).frontier_sizes;
  }
  {
    Program prog = make_prog();
    EdgeDataArray<ED> edges(g.num_edges());
    prog.init(g, edges);
    c.de = run_deterministic(g, prog, edges).frontier_sizes;
  }
  {
    Program prog = make_prog();
    EdgeDataArray<ED> edges(g.num_edges());
    prog.init(g, edges);
    SimOptions opts;
    opts.num_procs = procs;
    opts.delay = delay;
    c.ne = run_simulated(g, prog, edges, opts).frontier_sizes;
  }
  return c;
}

std::string cell(const std::vector<std::uint64_t>& v, std::size_t i) {
  return i < v.size() ? std::to_string(v[i]) : "-";
}

void print_curves(const char* algo, const Curves& c, std::size_t max_rows) {
  std::cout << "\n--- " << algo << " (|S_n| per iteration) ---\n";
  TextTable table({"iter", "BSP", "DE", "NE (sim)"});
  const std::size_t rows =
      std::min(max_rows, std::max({c.bsp.size(), c.de.size(), c.ne.size()}));
  for (std::size_t i = 0; i < rows; ++i) {
    table.add_row({std::to_string(i), cell(c.bsp, i), cell(c.de, i),
                   cell(c.ne, i)});
  }
  table.print(std::cout);
  if (c.bsp.size() > max_rows) {
    std::cout << "(BSP continues for " << c.bsp.size() << " iterations total)\n";
  }
}

}  // namespace
}  // namespace ndg

int main(int argc, char** argv) {
  using namespace ndg;
  const CliArgs args(argc, argv);
  const auto procs = static_cast<std::size_t>(args.get_int("procs", 8));
  const auto delay = static_cast<std::size_t>(args.get_int("delay", 4));
  const auto eps = static_cast<float>(args.get_double("eps", 1e-3));
  const auto max_rows = static_cast<std::size_t>(args.get_int("max-rows", 24));
  const auto scale = static_cast<unsigned>(args.get_int("scale", 256));

  const Dataset d = make_dataset(DatasetId::kWebGoogle, scale);
  std::cout << "=== Convergence curves: synchronous vs asynchronous vs "
               "nondeterministic ===\n"
            << "(" << d.name << ", |V|=" << d.graph.num_vertices()
            << ", |E|=" << d.graph.num_edges() << ", NE = simulator P=" << procs
            << " d=" << delay << ")\n";

  print_curves("wcc", collect(d.graph, [] { return WccProgram(); }, procs, delay),
               max_rows);
  print_curves("pagerank",
               collect(d.graph, [eps] { return PageRankProgram(eps); }, procs,
                       delay),
               max_rows);
  std::cout << "\nreading: asynchronous frontiers collapse within a few "
               "iterations; the synchronous frontier persists for "
               "chain-depth-many rounds (Section I's iteration-count "
               "argument).\n";
  return 0;
}
