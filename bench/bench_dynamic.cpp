// Streaming-subsystem bench (docs/DYNAMIC.md): what does an epoch cost?
//
//   * batch apply     — DynGraph::apply throughput (mutations/s) at several
//                       thread counts, on mixed insert/delete/reweight
//                       batches over an R-MAT graph;
//   * warm vs cold    — per-epoch recompute latency of IncrementalEngine
//                       with the gate taking the warm path (Theorem 1/2)
//                       versus forced cold re-initialization. The ratio is
//                       the whole point of the subsystem: a small affected
//                       set should re-converge orders of magnitude faster
//                       than a from-scratch run.
//
// Flags: --vertices=16384 --edges=131072 --batch=1024 --epochs=4
//        --threads=1,2,4 --algo=pagerank|sssp|wcc (default all)
//        --json=PATH

#include <iostream>

#include "algorithms/pagerank.hpp"
#include "algorithms/sssp.hpp"
#include "algorithms/wcc.hpp"
#include "bench_common.hpp"
#include "dyn/dyn_graph.hpp"
#include "dyn/eligibility_gate.hpp"
#include "dyn/incremental.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace ndg {
namespace {

struct Config {
  VertexId vertices = 16384;
  EdgeId edges = 131072;
  std::size_t batch = 1024;
  int epochs = 4;
  std::vector<std::size_t> threads;
};

Graph base_graph(const Config& cfg) {
  return Graph::build(cfg.vertices, gen::rmat(cfg.vertices, cfg.edges, 7));
}

/// Monotone batches (inserts + weight decreases) so every algorithm's gate
/// stays on the warm path; the cold row forces the fallback via the
/// kAssumeIneligible gate on an identical stream.
dyn::MutationBatch make_batch(const dyn::DynGraph& dg, SplitMix64& rng,
                              std::size_t size, std::uint64_t epoch) {
  dyn::MutationBatch batch;
  batch.epoch = epoch;
  while (batch.mutations.size() < size) {
    const auto u = static_cast<VertexId>(rng.next() % dg.num_vertices());
    const auto v = static_cast<VertexId>(rng.next() % dg.num_vertices());
    if (u == v) continue;
    if (dg.has_edge(u, v)) {
      batch.mutations.push_back(
          dyn::Mutation{dyn::MutationKind::kWeightChange, u, v, 0.5f});
    } else {
      batch.mutations.push_back(
          dyn::Mutation{dyn::MutationKind::kInsertEdge, u, v,
                        1.0f + static_cast<float>(rng.next() % 8)});
    }
  }
  return batch;
}

void bench_apply(const Config& cfg, TextTable& table) {
  for (const std::size_t threads : cfg.threads) {
    dyn::DynGraph dg(base_graph(cfg));
    SplitMix64 rng(99);
    double seconds = 0;
    std::uint64_t applied = 0;
    for (int e = 1; e <= cfg.epochs; ++e) {
      const dyn::MutationBatch batch =
          make_batch(dg, rng, cfg.batch, static_cast<std::uint64_t>(e));
      dyn::ApplyStats stats;
      Timer timer;
      (void)dg.apply(batch, &stats, threads);
      seconds += timer.seconds();
      applied += stats.applied;
    }
    table.add_row({"batch-apply", "t" + std::to_string(threads),
                   std::to_string(applied),
                   TextTable::num(seconds * 1e3, 3),
                   TextTable::num(static_cast<double>(applied) / seconds, 0),
                   "-"});
  }
}

template <typename Program>
void bench_epochs(const std::string& name, Program prog_proto,
                  const Config& cfg, TextTable& table,
                  const dyn::DynGraphOptions& gopts) {
  for (const bool warm : {true, false}) {
    dyn::DynGraph dg(base_graph(cfg), gopts);
    Program prog = prog_proto;
    EngineOptions opts;
    opts.num_threads = cfg.threads.back();
    // Warm rows assert the theorem the algorithm satisfies; cold rows force
    // the ineligible fallback on the same mutation stream.
    dyn::EligibilityGate gate(warm ? (Program::kMonotonic
                                          ? EligibilityVerdict::kTheorem2
                                          : EligibilityVerdict::kTheorem1)
                                   : EligibilityVerdict::kNotProven);
    dyn::IncrementalEngine<Program> inc(dg, prog, gate, opts);
    (void)inc.recompute_cold();

    SplitMix64 rng(1234);
    double seconds = 0;
    std::uint64_t updates = 0;
    for (int e = 1; e <= cfg.epochs; ++e) {
      const dyn::MutationBatch batch =
          make_batch(dg, rng, cfg.batch, static_cast<std::uint64_t>(e));
      Timer timer;
      const dyn::EpochResult r = inc.apply_epoch(batch);
      seconds += timer.seconds();
      updates += r.engine.updates;
    }
    const double per_epoch_ms = seconds * 1e3 / cfg.epochs;
    table.add_row({name, warm ? "warm" : "cold",
                   std::to_string(cfg.batch * cfg.epochs),
                   TextTable::num(per_epoch_ms, 3), "-",
                   std::to_string(updates)});
  }
}

}  // namespace
}  // namespace ndg

int main(int argc, char** argv) {
  using namespace ndg;
  const CliArgs args(argc, argv);
  Config cfg;
  cfg.vertices = static_cast<VertexId>(args.get_int("vertices", 16384));
  cfg.edges = static_cast<EdgeId>(args.get_int("edges", 131072));
  cfg.batch = static_cast<std::size_t>(args.get_int("batch", 1024));
  cfg.epochs = static_cast<int>(args.get_int("epochs", 4));
  cfg.threads = bench::parse_list(args.get("threads", "1,2,4"));
  const std::string algo = args.get("algo", "all");

  std::cout << "=== Streaming mutations: batch apply + warm vs cold epochs "
               "===\n(|V|=" << cfg.vertices << ", |E|=" << cfg.edges
            << ", batch=" << cfg.batch << ", epochs=" << cfg.epochs << ")\n\n";

  TextTable table({"benchmark", "config", "mutations", "ms", "mut_per_s",
                   "updates"});
  bench_apply(cfg, table);

  if (algo == "all" || algo == "pagerank") {
    bench_epochs("epoch-pagerank", PageRankProgram(1e-4f), cfg, table, {});
  }
  if (algo == "all" || algo == "sssp") {
    dyn::DynGraphOptions gopts;
    gopts.base_weight = [](EdgeId e) {
      return SsspProgram::edge_weight(42, e);
    };
    bench_epochs("epoch-sssp", SsspProgram(0, 42), cfg, table, gopts);
  }
  if (algo == "all" || algo == "wcc") {
    bench_epochs("epoch-wcc", WccProgram(), cfg, table, {});
  }

  table.print(std::cout);
  if (args.has("json")) {
    const std::string path = args.get("json", "bench_dynamic.json");
    table.write_json(path,
                     "{\"bench\":\"bench_dynamic\",\"vertices\":" +
                         std::to_string(cfg.vertices) +
                         ",\"edges\":" + std::to_string(cfg.edges) +
                         ",\"batch\":" + std::to_string(cfg.batch) +
                         ",\"epochs\":" + std::to_string(cfg.epochs) + "}");
    std::cout << "\nwrote " << path << "\n";
  }
  return 0;
}
