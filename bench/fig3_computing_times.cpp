// Reproduces Figure 3: "Computing times of the graph algorithms in different
// scenarios" — the 4×4 grid of {PageRank, WCC, SSSP, BFS} × {web-berkstan,
// web-google, soc-livejournal1, cage15}, comparing
//
//   DE          — GraphChi-style external deterministic scheduler (sequential
//                 by data dependence; the paper shows it with 4 threads and
//                 notes it "does not scale");
//   NE-locked   — nondeterministic execution, per-edge locking      (method 1)
//   NE-aligned  — nondeterministic execution, architecture support  (method 2)
//   NE-relaxed  — nondeterministic execution, C++ relaxed atomics   (method 3)
//
// at several thread counts. Times exclude graph construction, as in the
// paper. NOTE (host caveat, see EXPERIMENTS.md): this container exposes one
// hardware core, so wall-clock time cannot fall as threads rise; the
// policy ordering (aligned ≈ relaxed > locked) is still measurable, and the
// scaling *shape* is reproduced host-independently by
// ablation_simulator_convergence.
//
// Flags: --scale=N (graph size divisor, default 128), --threads=1,2,4,8,
//        --eps=1e-3 (PageRank/SpMV threshold), --repeats=1.

#include <iostream>

#include "algorithms/bfs.hpp"
#include "algorithms/pagerank.hpp"
#include "algorithms/sssp.hpp"
#include "algorithms/wcc.hpp"
#include "bench_common.hpp"
#include "engine/deterministic.hpp"
#include "engine/nondeterministic.hpp"
#include "engine/psw.hpp"
#include "graph/graph_stats.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace ndg {
namespace {

struct Config {
  std::vector<std::size_t> threads;
  std::vector<AtomicityMode> modes;
  int repeats = 1;
};

/// Median compute seconds over `repeats` runs of `run` (re-initializing each
/// time); returns the last EngineResult for the counters.
template <typename Runner>
EngineResult timed(const Runner& run, int repeats, double& median_s) {
  std::vector<double> times;
  EngineResult last;
  for (int i = 0; i < repeats; ++i) {
    last = run();
    times.push_back(last.seconds);
  }
  median_s = percentile(times, 50);
  return last;
}

template <typename MakeProgram>
void bench_algorithm(const Dataset& d, const IntervalPlan& plan,
                     const char* algo, MakeProgram make_prog, const Config& cfg,
                     TextTable& table) {
  using Program = decltype(make_prog());
  using ED = typename Program::EdgeData;

  auto row = [&](const std::string& config, std::size_t threads, double secs,
                 const EngineResult& r, double de_secs) {
    table.add_row({d.name, algo, config, std::to_string(threads),
                   TextTable::num(secs * 1e3, 1),
                   TextTable::num(static_cast<double>(r.updates) / secs / 1e6, 2),
                   std::to_string(r.iterations), r.converged ? "yes" : "no",
                   de_secs > 0 ? TextTable::num(de_secs / secs, 2) : "1.00"});
  };

  // DE baseline.
  double de_secs = 0;
  Program de_prog = make_prog();
  EdgeDataArray<ED> edges(d.graph.num_edges());
  const EngineResult de = timed(
      [&] {
        de_prog.init(d.graph, edges);
        return run_deterministic(d.graph, de_prog, edges);
      },
      cfg.repeats, de_secs);
  row("DE", 1, de_secs, de, 0.0);

  // GraphChi's external deterministic scheduler at 4 threads — the paper's
  // Fig. 3 "DE" configuration (its parallelism collapses by design).
  {
    EngineOptions opts;
    opts.num_threads = 4;
    double psw_secs = 0;
    Program prog = make_prog();
    const EngineResult r = timed(
        [&]() -> EngineResult {
          prog.init(d.graph, edges);
          return run_psw_deterministic(d.graph, prog, edges, plan, opts);
        },
        cfg.repeats, psw_secs);
    row("DE-psw", 4, psw_secs, r, de_secs);
  }

  for (const AtomicityMode mode : cfg.modes) {
    for (const std::size_t threads : cfg.threads) {
      EngineOptions opts;
      opts.mode = mode;
      opts.num_threads = threads;
      double secs = 0;
      Program prog = make_prog();
      const EngineResult r = timed(
          [&] {
            prog.init(d.graph, edges);
            return run_nondeterministic(d.graph, prog, edges, opts);
          },
          cfg.repeats, secs);
      row(std::string("NE-") + to_string(mode), threads, secs, r, de_secs);
    }
  }
}

}  // namespace
}  // namespace ndg

int main(int argc, char** argv) {
  using namespace ndg;
  const CliArgs args(argc, argv);

  Config cfg;
  cfg.threads = bench::parse_list(args.get("threads", "1,2,4,8"));
  cfg.modes = {AtomicityMode::kLocked, AtomicityMode::kAligned,
               AtomicityMode::kRelaxed};
  cfg.repeats = static_cast<int>(args.get_int("repeats", 1));
  const int cfg_repeats_json = cfg.repeats;
  const auto eps = static_cast<float>(args.get_double("eps", 1e-3));

  std::cout << "=== Figure 3: computing times, DE vs NE x atomicity method x "
               "threads ===\n"
            << "(scale=" << args.get_int("scale", 128)
            << ", eps=" << eps << ", repeats=" << cfg.repeats
            << "; times exclude graph loading)\n\n";

  TextTable table({"graph", "algorithm", "config", "threads", "ms",
                   "Mupd/s", "iters", "conv", "speedup-vs-DE"});

  for (const Dataset& d : bench::make_datasets(args)) {
    // Traverse from the highest-out-degree vertex so SSSP/BFS cover a large
    // component (the paper's SNAP graphs are crawl-connected; synthetic
    // stand-ins need the source chosen deliberately).
    const VertexId src = max_out_degree_vertex(d.graph);
    const IntervalPlan plan = make_intervals(d.graph, 4);
    bench_algorithm(d, plan, "pagerank", [eps] { return PageRankProgram(eps); },
                    cfg, table);
    bench_algorithm(d, plan, "wcc", [] { return WccProgram(); }, cfg, table);
    bench_algorithm(d, plan, "sssp", [src] { return SsspProgram(src, 42); },
                    cfg, table);
    bench_algorithm(d, plan, "bfs", [src] { return BfsProgram(src); }, cfg,
                    table);
  }
  table.print(std::cout);

  if (args.has("json")) {
    const std::string cfg = "{\"experiment\":\"fig3\",\"scale\":" +
                            std::to_string(args.get_int("scale", 128)) +
                            ",\"eps\":" + std::to_string(eps) +
                            ",\"repeats\":" + std::to_string(cfg_repeats_json) +
                            "}";
    table.write_json(args.get("json", "fig3.json"), cfg);
    std::cout << "\n(json manifest written to " << args.get("json", "fig3.json")
              << ")\n";
  }

  std::cout << "\npaper shape targets: NE-aligned >= NE-relaxed > NE-locked in "
               "throughput;\nNE speedup-vs-DE grows with threads on multi-core "
               "hosts (up to ~3.3x on the paper's 16-core Xeon).\n";
  return 0;
}
