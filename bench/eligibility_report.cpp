// E7: the paper's title as a tool. Runs the eligibility analysis (Theorems
// 1 & 2, Section IV) over every shipped algorithm and prints the verdicts —
// the "key ring, which tells whether a graph algorithm is eligible for
// nondeterministic executions", that Section VI says is missing from
// existing frameworks. Each algorithm then gets one nondeterministic run so
// the report also surfaces the execution-layer telemetry next to its
// verdict: how often the hybrid frontier went dense, how many hub gathers
// were split into edge chunks, and the degree-weighted load imbalance.
// The dir_pull/dir_push/switchable columns carry the per-direction static
// verdicts (docs/ANALYSIS.md); push-capable programs additionally get a
// manifest-enforced deterministic run of update_push, and any access outside
// the declared push shape fails the report.
//
// Flags: --scale=512 (analysis graph size divisor), --source=0, --threads=4,
//        --hub-threshold=64, --json=PATH (write a machine-readable manifest),
//        --delay=D [--delay-policy=fixed|uniform|per-thread] (run the NE
//        telemetry pass under bounded staleness d, docs/DELAY.md).

#include <iostream>

#include "algorithms/registry.hpp"
#include "analysis/static_eligibility.hpp"
#include "bench_common.hpp"
#include "graph/graph_stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ndg;
  const CliArgs args(argc, argv);
  const auto scale = static_cast<unsigned>(args.get_int("scale", 512));
  const Dataset d = make_dataset(DatasetId::kWebGoogle, scale);
  const auto source = static_cast<VertexId>(
      args.get_int("source", max_out_degree_vertex(d.graph)));
  const auto threads = static_cast<std::size_t>(args.get_int("threads", 4));

  EngineOptions ne_opts;
  ne_opts.num_threads = threads;
  ne_opts.scheduler = SchedulerKind::kStealing;  // shared worklist: hub-capable
  ne_opts.hub_threshold =
      static_cast<std::size_t>(args.get_int("hub-threshold", 64));
  ne_opts.delay.steps = static_cast<std::size_t>(args.get_int("delay", 0));
  if (args.has("delay-policy") &&
      !parse_delay_kind(args.get("delay-policy", "fixed"),
                        ne_opts.delay.kind)) {
    std::cerr << "unknown --delay-policy (expected fixed|uniform|per-thread)\n";
    return 1;
  }

  std::cout << "=== Eligibility report: is your graph algorithm eligible for "
               "nondeterministic execution? ===\n"
            << "(analysis graph: " << d.name << ", |V|=" << d.graph.num_vertices()
            << ", |E|=" << d.graph.num_edges() << "; NE telemetry: "
            << threads << " threads, stealing, hub threshold "
            << ne_opts.hub_threshold << ", delay d=" << ne_opts.delay.steps
            << ")\n\n";

  TextTable table({"algorithm", "BSP conv", "async conv", "RW conflicts",
                   "WW conflicts", "monotonic", "verdict", "static_verdict",
                   "agreement", "dir_pull", "dir_push", "switchable",
                   "speculative", "frontier_dense", "hub_splits",
                   "load_imbalance", "delay_d", "max_staleness"});
  std::vector<std::string> details;
  std::vector<std::string> disagreements;
  std::vector<std::string> direction_violations;
  std::vector<std::string> direction_reasons;
  for (const auto& entry : algorithm_registry(source, 500000)) {
    const EligibilityReport r = entry.analyze(d.graph);
    // Like-for-like comparison: re-evaluate the manifest under the OBSERVED
    // convergence premises, so an input-dependent program (label propagation
    // failing to converge on a bipartite graph) is judged by what actually
    // happened, not by its best-case claim. The claimed verdict is still the
    // one printed/exported; only agreement is conditioned.
    const EligibilityVerdict conditioned = static_verdict_given(
        entry.manifest, r.bsp_converges, r.async_converges);
    const bool agree = conditioned == r.verdict;
    if (!agree) {
      disagreements.push_back(r.algorithm + ": static=" +
                              verdict_short(conditioned) +
                              " dynamic=" + verdict_short(r.verdict));
    }
    // With --delay>0 the telemetry run goes through the delayed wrapper
    // (which never splits hubs); at d=0 run_delayed IS run_ne, but calling
    // run_ne directly keeps the hub-split columns exercised by default.
    const EngineResult ne = ne_opts.delay.enabled()
                                ? entry.run_delayed(d.graph, ne_opts)
                                : entry.run_ne(d.graph, ne_opts);
    std::size_t dense_iters = 0;
    for (const std::uint8_t dense : ne.frontier_dense) dense_iters += dense;
    // Directed-run tracer: one manifest-enforced deterministic run of the
    // push entry point against the push-side manifest. An access outside the
    // declared direction's shape voids the push/mixed verdicts — reported as
    // a hard error below, same contract as the agreement check.
    if (entry.validate_push) {
      const ManifestCheck push_check = entry.validate_push(d.graph);
      if (!push_check.ok()) {
        direction_violations.push_back(r.algorithm + " (push): " +
                                       push_check.describe());
      }
    }
    if (!entry.dir_switchable) {
      direction_reasons.push_back(r.algorithm + ": " + entry.dir_reason);
    }
    table.add_row({r.algorithm, r.bsp_converges ? "yes" : "no",
                   r.async_converges ? "yes" : "no",
                   std::to_string(r.conflicts.read_write),
                   std::to_string(r.conflicts.write_write),
                   r.observed_monotonic ? "yes" : "no", to_string(r.verdict),
                   std::string(verdict_short(entry.static_verdict)) +
                       (entry.static_conditional ? " (conditional)" : ""),
                   agree ? "yes" : "DISAGREE",
                   verdict_short(entry.dir_pull_verdict),
                   entry.directional.has_push
                       ? verdict_short(entry.dir_push_verdict)
                       : "-",
                   entry.dir_switchable ? "yes" : "no",
                   entry.run_speculative ? "served" : "-",
                   std::to_string(dense_iters) + "/" +
                       std::to_string(ne.frontier_dense.size()),
                   std::to_string(ne.hub_splits),
                   TextTable::num(ne.load_imbalance(), 3),
                   std::to_string(ne_opts.delay.steps),
                   std::to_string(ne.max_staleness)});
    details.push_back(r.describe());
  }
  table.print(std::cout);

  // The negative space of the theorems, served anyway: algorithms the static
  // layer REFUSES for NE/async run under the rollback engine
  // (docs/SPECULATION.md), whose result must equal the sequential
  // greedy-by-id oracle exactly. A mismatch, a capped run, or a run with
  // zero commits is a hard error, same contract as the agreement check.
  std::cout << "\n--- refused for NE, served speculatively "
               "(docs/SPECULATION.md) ---\n";
  TextTable spec_table({"algorithm", "static_verdict", "WW possible",
                        "monotone claim", "rounds", "commits", "aborts",
                        "abort_rate", "oracle"});
  std::vector<std::string> spec_errors;
  EngineOptions spec_opts;
  spec_opts.num_threads = threads;
  spec_opts.max_iterations = 500000;
  for (const auto& entry : speculative_registry()) {
    const EngineResult sr = entry.run_speculative(d.graph, spec_opts);
    const bool exact = entry.verify_speculative(d.graph, spec_opts);
    if (!sr.converged) {
      spec_errors.push_back(entry.name + ": speculative run hit the iteration cap");
    }
    if (sr.spec_commits == 0) {
      spec_errors.push_back(entry.name + ": speculative run committed nothing");
    }
    if (!exact) {
      spec_errors.push_back(entry.name +
                            ": result differs from the sequential oracle");
    }
    spec_table.add_row(
        {entry.name,
         std::string(verdict_short(entry.static_verdict)) +
             (entry.speculative_only ? " (refused)" : ""),
         ww_possible(entry.manifest) ? "yes" : "no",
         entry.manifest.monotone == MonotoneClaim::kNone ? "none" : "declared",
         std::to_string(sr.iterations), std::to_string(sr.spec_commits),
         std::to_string(sr.spec_aborts), TextTable::num(sr.abort_rate(), 3),
         exact ? "exact" : "MISMATCH"});
  }
  spec_table.print(std::cout);

  if (args.has("json")) {
    const std::string path = args.get("json", "eligibility_report.json");
    table.write_json(
        path,
        "{\"bench\":\"eligibility_report\",\"graph\":\"" +
            json_escape(d.name) + "\",\"scale\":" + std::to_string(scale) +
            ",\"threads\":" + std::to_string(threads) +
            ",\"hub_threshold\":" + std::to_string(ne_opts.hub_threshold) +
            ",\"scheduler\":\"stealing\",\"delay_d\":" +
            std::to_string(ne_opts.delay.steps) + ",\"delay_policy\":\"" +
            json_escape(to_string(ne_opts.delay.kind)) + "\"}");
    std::cout << "\nwrote " << path << "\n";
  }

  std::cout << "\n--- full reports ---\n";
  for (const auto& text : details) std::cout << "\n" << text;

  std::cout << "\npaper mapping: pagerank/spmv/sssp/bfs -> Theorem 1 (RW "
               "only); wcc -> Theorem 2 (WW but monotonic);\npagerank-push -> "
               "not proven (the cautionary counterexample: WW and "
               "non-monotonic).\n";

  if (!direction_reasons.empty()) {
    std::cout << "\n--- not direction-switchable (docs/ANALYSIS.md) ---\n";
    for (const auto& line : direction_reasons) std::cout << "  " << line << "\n";
  }

  if (!direction_violations.empty()) {
    std::cerr << "\nERROR: directed run escaped the declared direction's "
                 "manifest:\n";
    for (const auto& line : direction_violations) {
      std::cerr << "  " << line << "\n";
    }
    std::cerr << "The push-side manifest misdeclares what update_push touches "
                 "(docs/ANALYSIS.md), voiding the push/mixed verdicts.\n";
    return 1;
  }

  if (!disagreements.empty()) {
    std::cerr << "\nERROR: static (manifest-derived) and dynamic (measured) "
                 "eligibility verdicts disagree:\n";
    for (const auto& line : disagreements) std::cerr << "  " << line << "\n";
    std::cerr << "Either a manifest misdeclares the program's access shape "
                 "(docs/ANALYSIS.md) or the measured analysis regressed.\n";
    return 1;
  }

  if (!spec_errors.empty()) {
    std::cerr << "\nERROR: speculative engine broke its rollback guarantee "
                 "(docs/SPECULATION.md):\n";
    for (const auto& line : spec_errors) std::cerr << "  " << line << "\n";
    std::cerr << "The parallel speculative result must equal the sequential "
                 "greedy-by-id oracle exactly at any thread count.\n";
    return 1;
  }
  return 0;
}
