// E7: the paper's title as a tool. Runs the eligibility analysis (Theorems
// 1 & 2, Section IV) over every shipped algorithm and prints the verdicts —
// the "key ring, which tells whether a graph algorithm is eligible for
// nondeterministic executions", that Section VI says is missing from
// existing frameworks.
//
// Flags: --scale=512 (analysis graph size divisor), --source=0.

#include <iostream>

#include "algorithms/registry.hpp"
#include "bench_common.hpp"
#include "graph/graph_stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ndg;
  const CliArgs args(argc, argv);
  const auto scale = static_cast<unsigned>(args.get_int("scale", 512));
  const Dataset d = make_dataset(DatasetId::kWebGoogle, scale);
  const auto source = static_cast<VertexId>(
      args.get_int("source", max_out_degree_vertex(d.graph)));
  std::cout << "=== Eligibility report: is your graph algorithm eligible for "
               "nondeterministic execution? ===\n"
            << "(analysis graph: " << d.name << ", |V|=" << d.graph.num_vertices()
            << ", |E|=" << d.graph.num_edges() << ")\n\n";

  TextTable table({"algorithm", "BSP conv", "async conv", "RW conflicts",
                   "WW conflicts", "monotonic", "verdict"});
  std::vector<std::string> details;
  for (const auto& entry : algorithm_registry(source, 500000)) {
    const EligibilityReport r = entry.analyze(d.graph);
    table.add_row({r.algorithm, r.bsp_converges ? "yes" : "no",
                   r.async_converges ? "yes" : "no",
                   std::to_string(r.conflicts.read_write),
                   std::to_string(r.conflicts.write_write),
                   r.observed_monotonic ? "yes" : "no", to_string(r.verdict)});
    details.push_back(r.describe());
  }
  table.print(std::cout);

  std::cout << "\n--- full reports ---\n";
  for (const auto& text : details) std::cout << "\n" << text;

  std::cout << "\npaper mapping: pagerank/spmv/sssp/bfs -> Theorem 1 (RW "
               "only); wcc -> Theorem 2 (WW but monotonic);\npagerank-push -> "
               "not proven (the cautionary counterexample: WW and "
               "non-monotonic).\n";
  return 0;
}
