// Ablation (§VII future work): "theoretical analyses of the convergence
// speed (e.g., in amount of iterations) of graph algorithms by
// nondeterministic executions" — measured iterations vs the chain-depth
// bounds of core/convergence_bound.hpp, across topologies, logical core
// counts and propagation delays.
//
// Shape targets: measured <= bound everywhere; nondeterministic iteration
// counts sit close to the deterministic ones (the asynchronous advantage
// survives the races), growing mildly with d.
//
// Flags: --procs=2,8 --delays=1,8 --seeds=5.

#include <iostream>

#include "algorithms/bfs.hpp"
#include "algorithms/wcc.hpp"
#include "bench_common.hpp"
#include "core/convergence_bound.hpp"
#include "engine/bsp.hpp"
#include "engine/deterministic.hpp"
#include "engine/simulator.hpp"
#include "graph/generators.hpp"
#include "util/table.hpp"

namespace ndg {
namespace {

struct Topo {
  std::string name;
  Graph graph;
};

std::vector<Topo> topologies() {
  std::vector<Topo> t;
  t.push_back({"chain-256", Graph::build(256, gen::chain(256))});
  t.push_back({"cycle-256", Graph::build(256, gen::cycle(256))});
  t.push_back({"grid-32x32", Graph::build(1024, gen::grid2d(32, 32))});
  t.push_back({"rmat-4k", Graph::build(4096, gen::rmat(4096, 24576, 7))});
  t.push_back(
      {"smallworld-4k",
       Graph::build(4096, symmetrize(gen::small_world(4096, 3, 0.05, 7)))});
  return t;
}

}  // namespace
}  // namespace ndg

int main(int argc, char** argv) {
  using namespace ndg;
  const CliArgs args(argc, argv);
  const auto procs = bench::parse_list(args.get("procs", "2,8"));
  const auto delays = bench::parse_list(args.get("delays", "1,8"));
  const auto seeds = static_cast<std::uint64_t>(args.get_int("seeds", 5));

  std::cout << "=== WCC convergence speed: measured iterations vs chain-depth "
               "bounds ===\n\n";
  TextTable table({"graph", "depth", "DE iters", "BSP iters", "rw-bound",
                   "config", "NE iters (max over seeds)", "ww-bound", "ok"});

  for (const auto& t : topologies()) {
    const ConvergenceBound b = wcc_convergence_bound(t.graph);

    WccProgram de;
    EdgeDataArray<WccProgram::EdgeData> edges(t.graph.num_edges());
    de.init(t.graph, edges);
    const std::size_t de_iters =
        run_deterministic(t.graph, de, edges).iterations;

    WccProgram bsp;
    bsp.init(t.graph, edges);
    const std::size_t bsp_iters = run_bsp(t.graph, bsp, edges).iterations;

    for (const std::size_t p : procs) {
      for (const std::size_t d : delays) {
        std::size_t worst = 0;
        bool all_converged = true;
        for (std::uint64_t s = 1; s <= seeds; ++s) {
          WccProgram prog;
          prog.init(t.graph, edges);
          SimOptions opts;
          opts.num_procs = p;
          opts.delay = d;
          opts.seed = s;
          const SimResult r = run_simulated(t.graph, prog, edges, opts);
          worst = std::max(worst, r.iterations);
          all_converged = all_converged && r.converged;
        }
        table.add_row(
            {t.name, std::to_string(b.chain_depth), std::to_string(de_iters),
             std::to_string(bsp_iters), std::to_string(b.rw_bound),
             "P=" + std::to_string(p) + ",d=" + std::to_string(d),
             std::to_string(worst), std::to_string(b.ww_bound),
             (all_converged && worst <= b.ww_bound) ? "yes" : "VIOLATION"});
      }
    }
  }
  table.print(std::cout);
  std::cout << "\nreading: BSP pays ~chain-depth iterations; asynchronous "
               "schedules (DE and NE) finish in far fewer on high-diameter "
               "graphs, and the write-write recovery slack never exceeds the "
               "3*depth+4 bound.\n";
  return 0;
}
