// E4: host-independent reproduction of the paper's scaling and convergence
// claims via the logical-processor simulator (Section II model, Definitions
// 1–3). For WCC, PageRank and SSSP on web-google-sim this sweeps
//
//   P (logical processors) x d (cross-processor propagation delay)
//
// and reports, per cell: iterations to convergence, total updates, the
// makespan proxy Σ⌈|S_n|/P⌉ (wave-slots), achieved parallelism
// (updates / wave-slots), and the observed RW/WW race counts.
//
// Shape targets (matching Figure 3 / Section IV):
//   * every cell converges — Theorems 1 & 2 hold under every schedule;
//   * wave-slots FALL as P rises (nondeterministic execution scales), while
//     the deterministic schedule is the P=1 row by construction;
//   * iterations (and total updates) grow mildly with d — stale reads and
//     corrupted-then-recovered edges cost extra rounds, the price the paper
//     accepts for lock-free scalability;
//   * WCC shows WW races (Theorem 2 recovery at work); PageRank/SSSP show RW
//     races only.
//
// Flags: --scale=128 --procs=1,2,4,8,16 --delays=0,1,4,16 --seed=9 --eps=1e-3.

#include <iostream>

#include "algorithms/pagerank.hpp"
#include "algorithms/sssp.hpp"
#include "algorithms/wcc.hpp"
#include "bench_common.hpp"
#include "engine/simulator.hpp"
#include "graph/graph_stats.hpp"
#include "util/table.hpp"

namespace ndg {
namespace {

template <typename MakeProgram>
void sweep(const Dataset& d, const char* algo, MakeProgram make_prog,
           const std::vector<std::size_t>& procs,
           const std::vector<std::size_t>& delays, std::uint64_t seed,
           TextTable& table) {
  using Program = decltype(make_prog());
  for (const std::size_t p : procs) {
    for (const std::size_t delay : delays) {
      Program prog = make_prog();
      EdgeDataArray<typename Program::EdgeData> edges(d.graph.num_edges());
      prog.init(d.graph, edges);
      SimOptions opts;
      opts.num_procs = p;
      opts.delay = delay;
      opts.seed = seed;
      const SimResult r = run_simulated(d.graph, prog, edges, opts);
      table.add_row(
          {algo, std::to_string(p), std::to_string(delay),
           std::to_string(r.iterations), std::to_string(r.updates),
           std::to_string(r.wave_slots),
           TextTable::num(static_cast<double>(r.updates) /
                              static_cast<double>(std::max<std::uint64_t>(
                                  1, r.wave_slots)),
                          2),
           std::to_string(r.rw_overlaps), std::to_string(r.ww_overlaps),
           r.converged ? "yes" : "NO"});
    }
  }
}

}  // namespace
}  // namespace ndg

int main(int argc, char** argv) {
  using namespace ndg;
  const CliArgs args(argc, argv);
  const auto procs = bench::parse_list(args.get("procs", "1,2,4,8,16"));
  const auto delays = bench::parse_list(args.get("delays", "0,1,4,16"));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 9));
  const auto eps = static_cast<float>(args.get_double("eps", 1e-3));
  const auto scale = static_cast<unsigned>(args.get_int("scale", 128));

  const Dataset d = make_dataset(DatasetId::kWebGoogle, scale);
  std::cout << "=== Simulator convergence/scaling sweep (logical P x delay d) "
               "===\n"
            << "(" << d.name << ", |V|=" << d.graph.num_vertices()
            << ", |E|=" << d.graph.num_edges() << ", seed=" << seed << ")\n\n";

  TextTable table({"algorithm", "P", "d", "iters", "updates", "wave-slots",
                   "parallelism", "RW races", "WW races", "conv"});
  const VertexId src = max_out_degree_vertex(d.graph);
  sweep(d, "wcc", [] { return WccProgram(); }, procs, delays, seed, table);
  sweep(d, "pagerank", [eps] { return PageRankProgram(eps); }, procs, delays,
        seed, table);
  sweep(d, "sssp", [src] { return SsspProgram(src, 42); }, procs, delays, seed,
        table);
  table.print(std::cout);

  std::cout << "\nreading: wave-slots is the parallel makespan proxy — it "
               "must fall as P grows (the NE scaling of Fig. 3);\niterations "
               "may rise with d (recovery from stale/corrupted reads), which "
               "is the cost Theorems 1 & 2 prove finite.\n";
  return 0;
}
