// Direction ablation (docs/PERF.md §5, docs/ANALYSIS.md): pull vs push vs
// auto over the direction-optimizing NE engine on an RMAT graph, across
// frontier-density regimes (the --divisors sweep moves the dense/sparse
// switch point of the hybrid frontier, and with it the auto mode's
// per-iteration direction choice).
//
// Shape targets:
//   * every cell converges AND is exact against the pull run of the same
//     (algorithm, divisor) cell — the d=0 pull baseline. Directions are
//     correctness-equivalent for kSwitchable programs; only the schedule
//     differs.
//   * auto's push_iters sits between pull's (0) and push's (all), tracking
//     the density profile: early sparse iterations push, dense middle pulls.
//
// Flags: --vertices=16384 --edges=131072 --seed=7 --threads=4
//        --algos=bfs,sssp,wcc --divisors=1,8,64
//        --json=PATH (BENCH_direction.json for CI gating).

#include <cmath>
#include <iostream>

#include "algorithms/bfs.hpp"
#include "algorithms/sssp.hpp"
#include "algorithms/wcc.hpp"
#include "analysis/direction_eligibility.hpp"
#include "bench_common.hpp"
#include "engine/direction.hpp"
#include "graph/generators.hpp"
#include "graph/graph_stats.hpp"
#include "util/table.hpp"

namespace {

std::vector<std::string> split_names(const std::string& csv) {
  std::vector<std::string> out;
  std::istringstream is(csv);
  std::string tok;
  while (std::getline(is, tok, ',')) {
    if (!tok.empty()) out.push_back(tok);
  }
  return out;
}

struct CellResult {
  ndg::EngineResult engine;
  std::vector<double> values;
};

/// One direction-engine run on fresh program/edge state.
template <typename Program, typename... Args>
CellResult run_cell(const ndg::Graph& g, const ndg::EngineOptions& opts,
                    Args... ctor_args) {
  // Only statically switchable programs belong in this ablation: the mixed
  // schedules auto produces are licensed by exactly this verdict.
  ndg::assert_switchable<Program>();
  Program prog(ctor_args...);
  ndg::EdgeDataArray<typename Program::EdgeData> edges(g.num_edges());
  prog.init(g, edges);
  CellResult cell;
  cell.engine = ndg::run_direction_optimizing(g, prog, edges, opts);
  cell.values = prog.values();
  return cell;
}

bool values_equal(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    // Exact bit-compare modulo NaN/inf encodings: these algorithms commit to
    // one fixed point, not an epsilon band.
    if (a[i] != b[i] && !(std::isnan(a[i]) && std::isnan(b[i]))) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ndg;
  const CliArgs args(argc, argv);
  const auto n = static_cast<VertexId>(args.get_int("vertices", 16384));
  const auto m = static_cast<EdgeId>(args.get_int("edges", 131072));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 7));
  const auto threads = static_cast<std::size_t>(args.get_int("threads", 4));
  const auto algos = split_names(args.get("algos", "bfs,sssp,wcc"));
  const auto divisors = bench::parse_list(args.get("divisors", "1,8,64"));

  const Graph g = Graph::build(n, gen::rmat(n, m, seed));
  const VertexId source = max_out_degree_vertex(g);

  std::cout << "=== Direction ablation: pull vs push vs auto over frontier "
               "densities ===\n"
            << "(rmat |V|=" << g.num_vertices() << ", |E|=" << g.num_edges()
            << ", seed=" << seed << ", threads=" << threads
            << "; auto goes dense — and pulls — when |S|*divisor > V)\n\n";

  TextTable table({"algorithm", "direction", "divisor", "iters", "push_iters",
                   "dense_iters", "switches", "updates", "conv", "exact",
                   "ms"});
  bool all_ok = true;
  for (const std::string& algo : algos) {
    for (const std::size_t divisor : divisors) {
      EngineOptions opts;
      opts.num_threads = threads;
      opts.frontier_dense_divisor = divisor;

      // The pull cell doubles as the baseline every other direction of the
      // same (algorithm, divisor) cell must match exactly.
      std::vector<double> baseline;
      for (const DirectionMode dir :
           {DirectionMode::kPull, DirectionMode::kPush, DirectionMode::kAuto}) {
        opts.direction = dir;
        CellResult cell;
        if (algo == "bfs") {
          cell = run_cell<BfsProgram>(g, opts, source);
        } else if (algo == "sssp") {
          cell = run_cell<SsspProgram>(g, opts, source);
        } else if (algo == "wcc") {
          cell = run_cell<WccProgram>(g, opts);
        } else {
          std::cerr << "unknown --algos entry: " << algo
                    << " (expected bfs|sssp|wcc)\n";
          return 1;
        }
        if (dir == DirectionMode::kPull) baseline = cell.values;
        const bool exact = values_equal(cell.values, baseline);
        all_ok = all_ok && exact && cell.engine.converged;
        std::size_t dense_iters = 0;
        for (const std::uint8_t dense : cell.engine.frontier_dense) {
          dense_iters += dense;
        }
        table.add_row({algo, to_string(dir), std::to_string(divisor),
                       std::to_string(cell.engine.iterations),
                       std::to_string(cell.engine.push_iterations()),
                       std::to_string(dense_iters),
                       std::to_string(cell.engine.direction_switches),
                       std::to_string(cell.engine.updates),
                       cell.engine.converged ? "yes" : "NO",
                       exact ? "yes" : "NO",
                       TextTable::num(cell.engine.seconds * 1e3, 1)});
      }
    }
  }
  table.print(std::cout);

  if (args.has("json")) {
    const std::string path = args.get("json", "BENCH_direction.json");
    table.write_json(
        path, "{\"bench\":\"ablation_direction\",\"vertices\":" +
                  std::to_string(n) + ",\"edges\":" + std::to_string(m) +
                  ",\"seed\":" + std::to_string(seed) +
                  ",\"threads\":" + std::to_string(threads) + "}");
    std::cout << "\nwrote " << path << "\n";
  }

  std::cout << "\nreading: every direction commits to the same fixed point "
               "(exact=yes everywhere); auto's push_iters tracks the sparse "
               "iterations of the density profile.\n";
  if (!all_ok) {
    std::cerr << "ERROR: a directed run failed to converge or diverged from "
                 "the pull baseline\n";
    return 1;
  }
  return 0;
}
