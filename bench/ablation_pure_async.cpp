// Ablation: barriered nondeterministic execution (the paper's "synchronous
// implementation of the asynchronous model") vs pure asynchronous execution
// with no barriers (§VII future work). GRACE [13] — cited by the paper as
// justification for keeping the barriers — found the two comparable; this
// bench makes that comparison reproducible, also reporting total updates
// (pure async may run more, slightly stale, updates in exchange for never
// waiting).
//
// Flags: --scale=128 --threads=4 --eps=1e-3.

#include <iostream>

#include "algorithms/bfs.hpp"
#include "algorithms/pagerank.hpp"
#include "algorithms/sssp.hpp"
#include "algorithms/wcc.hpp"
#include "bench_common.hpp"
#include "engine/nondeterministic.hpp"
#include "engine/pure_async.hpp"
#include "graph/graph_stats.hpp"
#include "util/table.hpp"

namespace ndg {
namespace {

template <typename MakeProgram>
void compare(const Dataset& d, const char* algo, MakeProgram make_prog,
             std::size_t threads, TextTable& table) {
  using Program = decltype(make_prog());
  using ED = typename Program::EdgeData;
  EngineOptions opts;
  opts.num_threads = threads;
  opts.mode = AtomicityMode::kRelaxed;

  EdgeDataArray<ED> edges(d.graph.num_edges());
  {
    Program prog = make_prog();
    prog.init(d.graph, edges);
    const EngineResult r = run_nondeterministic(d.graph, prog, edges, opts);
    table.add_row({d.name, algo, "NE (barriered)", std::to_string(r.updates),
                   TextTable::num(r.seconds * 1e3, 1),
                   r.converged ? "yes" : "NO"});
  }
  {
    Program prog = make_prog();
    prog.init(d.graph, edges);
    const EngineResult r = run_pure_async(d.graph, prog, edges, opts);
    table.add_row({d.name, algo, "pure async", std::to_string(r.updates),
                   TextTable::num(r.seconds * 1e3, 1),
                   r.converged ? "yes" : "NO"});
  }
}

}  // namespace
}  // namespace ndg

int main(int argc, char** argv) {
  using namespace ndg;
  const CliArgs args(argc, argv);
  const auto threads = static_cast<std::size_t>(args.get_int("threads", 4));
  const auto eps = static_cast<float>(args.get_double("eps", 1e-3));

  std::cout << "=== Barriered NE vs pure asynchronous execution ===\n"
            << "(threads=" << threads << ", relaxed atomics; GRACE [13] "
            << "predicts comparable runtimes)\n\n";

  TextTable table({"graph", "algorithm", "engine", "updates", "ms", "conv"});
  for (const Dataset& d : bench::make_datasets(args)) {
    const VertexId src = max_out_degree_vertex(d.graph);
    compare(d, "pagerank", [eps] { return PageRankProgram(eps); }, threads,
            table);
    compare(d, "wcc", [] { return WccProgram(); }, threads, table);
    compare(d, "sssp", [src] { return SsspProgram(src, 42); }, threads, table);
    compare(d, "bfs", [src] { return BfsProgram(src); }, threads, table);
  }
  table.print(std::cout);
  std::cout << "\nreading: comparable wall-clock validates the paper's choice "
               "of the barriered implementation for its study; pure async "
               "trades barrier waits for (possibly) extra stale updates.\n";
  return 0;
}
