// Ablation (§VII future work): the paper's results carried to a
// distributed-memory setting. Sweeps machine count x network delay for WCC
// (monotonic, both-endpoint writers => replica divergence and recovery) and
// PageRank (fixed point) on web-google-sim, reporting rounds to convergence,
// messages, and observed replica divergences.
//
// Shape targets: everything converges (the theorems' recovery argument
// survives message delay); WCC's final labels are exact regardless of
// machines/delay; rounds grow with the network delay (the distributed
// analogue of the simulator's d); message volume tracks cut edges.
//
// Flags: --scale=256 --machines=1,2,4,8 --delays=1,2,4 --eps=1e-3.

#include <iostream>

#include "algorithms/pagerank.hpp"
#include "algorithms/reference/references.hpp"
#include "algorithms/wcc.hpp"
#include "bench_common.hpp"
#include "engine/distributed.hpp"
#include "util/table.hpp"

namespace ndg {
namespace {

template <typename MakeProgram, typename Verify>
void sweep(const Dataset& d, const char* algo, MakeProgram make_prog,
           Verify verify, const std::vector<std::size_t>& machines,
           const std::vector<std::size_t>& delays, TextTable& table) {
  using Program = decltype(make_prog());
  using ED = typename Program::EdgeData;
  for (const std::size_t m : machines) {
    for (const std::size_t delay : delays) {
      Program prog = make_prog();
      EdgeDataArray<ED> edges(d.graph.num_edges());
      prog.init(d.graph, edges);
      DistOptions opts;
      opts.num_machines = m;
      opts.network_delay = delay;
      const DistResult r = run_distributed(d.graph, prog, edges, opts);
      table.add_row({algo, std::to_string(m), std::to_string(delay),
                     std::to_string(r.rounds), std::to_string(r.updates),
                     std::to_string(r.messages),
                     std::to_string(r.replica_divergences),
                     r.converged ? verify(prog) : "NO-CONVERGENCE"});
    }
  }
}

}  // namespace
}  // namespace ndg

int main(int argc, char** argv) {
  using namespace ndg;
  const CliArgs args(argc, argv);
  const auto machines = bench::parse_list(args.get("machines", "1,2,4,8"));
  const auto delays = bench::parse_list(args.get("delays", "1,2,4"));
  const auto eps = static_cast<float>(args.get_double("eps", 1e-3));
  const auto scale = static_cast<unsigned>(args.get_int("scale", 256));

  const Dataset d = make_dataset(DatasetId::kWebGoogle, scale);
  std::cout << "=== Distributed execution sweep (machines x network delay) ==="
            << "\n(" << d.name << ", |V|=" << d.graph.num_vertices()
            << ", |E|=" << d.graph.num_edges() << ", block partition)\n\n";

  const auto expected_wcc = ref::wcc(d.graph);

  TextTable table({"algorithm", "machines", "delay", "rounds", "updates",
                   "messages", "divergences", "verdict"});
  sweep(d, "wcc", [] { return WccProgram(); },
        [&](const WccProgram& p) {
          return std::string(p.labels() == expected_wcc ? "exact" : "MISMATCH");
        },
        machines, delays, table);
  sweep(d, "pagerank", [eps] { return PageRankProgram(eps); },
        [](const PageRankProgram&) { return std::string("converged"); },
        machines, delays, table);
  table.print(std::cout);

  std::cout << "\nreading: monotone algorithms stay exact under replica "
               "divergence (the distributed Theorem 2); rounds grow with the "
               "network delay — the price of asynchrony stretched across "
               "machines.\n";
  return 0;
}
