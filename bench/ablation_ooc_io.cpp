// Ablation: the out-of-core substrate's I/O profile — GraphChi's core
// trade-off measured. For WCC and BFS on web-google-sim, sweeps the shard
// count and reports bytes read/written per iteration, interval skip rate
// (selective scheduling), and wall time, verifying the results stay
// bit-faithful to the in-memory engine.
//
// Shape targets: total I/O ~ O(iterations x |E| x 8B) when everything is
// active (WCC with all vertices scheduled), but the skip rate rockets for
// frontier-localized workloads (BFS on a deep graph), which is exactly why
// GraphChi pairs PSW with selective scheduling.
//
// Flags: --scale=256 --shards=1,2,4,8.

#include <iostream>

#include "algorithms/bfs.hpp"
#include "algorithms/wcc.hpp"
#include "bench_common.hpp"
#include "engine/deterministic.hpp"
#include "graph/graph_stats.hpp"
#include "ooc/ooc_engine.hpp"
#include "ooc/ooc_nondet.hpp"
#include "util/table.hpp"

namespace ndg {
namespace {

template <typename MakeProgram, typename Same>
void sweep(const Dataset& d, const char* algo, MakeProgram make_prog,
           Same same_as_memory, const std::vector<std::size_t>& shard_counts,
           const std::string& dir, TextTable& table) {
  using Program = decltype(make_prog());
  using ED = typename Program::EdgeData;

  for (const std::size_t shards : shard_counts) {
    Program prog = make_prog();
    EdgeDataArray<ED> edges(d.graph.num_edges());
    prog.init(d.graph, edges);
    const ShardPlan plan = make_shard_plan(d.graph, shards);
    const OocResult r = run_ooc_deterministic(
        d.graph, prog, edges, plan, dir + "/" + algo + std::to_string(shards));
    const double mib = 1.0 / (1024.0 * 1024.0);
    table.add_row(
        {algo, std::to_string(shards), std::to_string(r.iterations),
         TextTable::num(static_cast<double>(r.bytes_read) * mib, 1),
         TextTable::num(static_cast<double>(r.bytes_written) * mib, 1),
         std::to_string(r.intervals_processed),
         std::to_string(r.intervals_skipped),
         TextTable::num(r.seconds * 1e3, 1),
         r.converged && same_as_memory(prog) ? "bit-exact" : "MISMATCH"});
  }
}

}  // namespace
}  // namespace ndg

int main(int argc, char** argv) {
  using namespace ndg;
  const CliArgs args(argc, argv);
  const auto shard_counts = bench::parse_list(args.get("shards", "1,2,4,8"));
  const auto scale = static_cast<unsigned>(args.get_int("scale", 256));
  const std::string dir = args.get("dir", "/tmp/ndg_ooc_bench");

  const Dataset d = make_dataset(DatasetId::kWebGoogle, scale);
  const VertexId src = max_out_degree_vertex(d.graph);
  std::cout << "=== Out-of-core (PSW) I/O profile ===\n"
            << "(" << d.name << ", |V|=" << d.graph.num_vertices()
            << ", |E|=" << d.graph.num_edges() << ", edge data "
            << d.graph.num_edges() * 8 / 1024 << " KiB on disk)\n\n";

  // In-memory baselines for the bit-exactness verdicts.
  WccProgram wcc_mem;
  EdgeDataArray<WccProgram::EdgeData> wcc_edges(d.graph.num_edges());
  wcc_mem.init(d.graph, wcc_edges);
  run_deterministic(d.graph, wcc_mem, wcc_edges);

  BfsProgram bfs_mem(src);
  EdgeDataArray<BfsProgram::EdgeData> bfs_edges(d.graph.num_edges());
  bfs_mem.init(d.graph, bfs_edges);
  run_deterministic(d.graph, bfs_mem, bfs_edges);

  TextTable table({"algorithm", "shards", "iters", "MiB read", "MiB written",
                   "intervals run", "intervals skipped", "ms", "verdict"});
  sweep(d, "wcc", [] { return WccProgram(); },
        [&](const WccProgram& p) { return p.labels() == wcc_mem.labels(); },
        shard_counts, dir, table);
  sweep(d, "bfs", [src] { return BfsProgram(src); },
        [&](const BfsProgram& p) { return p.levels() == bfs_mem.levels(); },
        shard_counts, dir, table);
  table.print(std::cout);

  // The paper's actual configuration: NE inside the PSW engine, per
  // atomicity method (intra-interval races on the loaded buffers).
  std::cout << "\n--- nondeterministic PSW (the paper's patched GraphChi), "
               "4 shards, 4 threads ---\n";
  TextTable ne_table({"algorithm", "mode", "iters", "ms", "verdict"});
  const ShardPlan plan = make_shard_plan(d.graph, 4);
  for (const AtomicityMode mode :
       {AtomicityMode::kLocked, AtomicityMode::kAligned,
        AtomicityMode::kRelaxed}) {
    WccProgram prog;
    EdgeDataArray<WccProgram::EdgeData> edges(d.graph.num_edges());
    prog.init(d.graph, edges);
    EngineOptions opts;
    opts.mode = mode;
    opts.num_threads = 4;
    const OocResult r = run_ooc_nondeterministic(
        d.graph, prog, edges, plan, dir + "/ne_" + to_string(mode), opts);
    ne_table.add_row({"wcc", to_string(mode), std::to_string(r.iterations),
                      TextTable::num(r.seconds * 1e3, 1),
                      r.converged && prog.labels() == wcc_mem.labels()
                          ? "exact"
                          : "MISMATCH"});
  }
  ne_table.print(std::cout);

  std::cout << "\nreading: results are bit-identical to the in-memory engine "
               "at every shard count; frontier-localized workloads skip most "
               "interval visits (selective scheduling), cutting I/O; the "
               "racy PSW runs stay exact for the monotonic workload "
               "(Theorem 2 inside GraphChi's own execution pattern).\n";
  return 0;
}
