// Reproduces Table I: "Real-world graphs used in the experiments".
//
// Paper (scale divisor 1):
//   web-berkstan        |V|   685,231   |E|  7,600,595
//   web-google          |V|   916,428   |E|  5,105,039
//   soc-livejournal1    |V| 4,847,571   |E| 68,993,773
//   cage15              |V| 5,154,859   |E| 99,199,551  (~19 nnz/row)
//
// This harness prints the synthetic stand-ins' sizes plus the structural
// evidence that each matches its original's class (degree skew for the web /
// social graphs, near-regularity for cage15). Pass --scale=1 to generate at
// full paper size (needs a few GB of RAM).

#include <iostream>

#include "bench_common.hpp"
#include "graph/graph_stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ndg;
  const CliArgs args(argc, argv);
  const auto scale = args.get_int("scale", 128);

  std::cout << "=== Table I: graphs used in the experiments (scale divisor "
            << scale << ") ===\n";
  TextTable table({"graph", "|V|", "|E|", "avg out-deg", "max out-deg",
                   "top1% edge share", "reciprocity", "ecc(v0)"});
  std::vector<GraphStats> all_stats;
  std::vector<std::string> names;
  for (const Dataset& d : bench::make_datasets(args)) {
    const GraphStats s = compute_stats(d.graph);
    table.add_row({d.name, std::to_string(s.num_vertices),
                   std::to_string(s.num_edges), TextTable::num(s.avg_out_degree, 2),
                   std::to_string(s.max_out_degree),
                   TextTable::num(s.top1pct_out_edge_share, 3),
                   TextTable::num(s.reciprocity, 2),
                   std::to_string(s.bfs_eccentricity)});
    all_stats.push_back(s);
    names.push_back(d.name);
  }
  table.print(std::cout);

  std::cout << "\nout-degree histograms (log2 buckets; power-law tails for "
               "the web/social stand-ins):\n";
  for (std::size_t i = 0; i < all_stats.size(); ++i) {
    std::cout << "  " << names[i] << ":";
    for (std::size_t b = 0; b < all_stats[i].out_degree_histogram.size(); ++b) {
      std::cout << " [2^" << b << ")=" << all_stats[i].out_degree_histogram[b];
    }
    std::cout << "\n";
  }
  std::cout << "\nshape check: web/social stand-ins are skewed (top-1% share "
               ">> 0.01);\ncage15-sim is near-regular (share ~ 0.01, avg "
               "degree ~ 18, like the cage15 matrix's ~19 nnz/row).\n";
  return 0;
}
