// Reproduces Table II: "Average difference degrees of results of the same
// configurations" — PageRank on web-google, 5 runs per configuration,
// averaging the C(5,2) = 10 pairwise difference degrees, for convergence
// thresholds ε ∈ {0.1, 0.01, 0.001}.
//
// Paper shape targets:
//   * DE-vs-DE difference degrees are far larger than NE-vs-NE (here DE is
//     bit-reproducible, so DE rows read |V| = "identical");
//   * more processors  => variance moves to MORE significant pages (smaller
//     difference degree);
//   * smaller ε        => variance moves to LESS significant pages (larger
//     difference degree).
//
// Flags: --scale=32 --runs=5 --delay=4 --threaded=false --seed=1.

#include <iostream>

#include "bench_common.hpp"
#include "pagerank_variance.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ndg;
  const CliArgs args(argc, argv);
  const int runs = static_cast<int>(args.get_int("runs", 5));
  const bool threaded = args.get_bool("threaded", false);
  const auto delay = static_cast<std::size_t>(args.get_int("delay", 4));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const auto scale = static_cast<unsigned>(args.get_int("scale", 32));

  const Dataset d = make_dataset(DatasetId::kWebGoogle, scale);
  std::cout << "=== Table II: avg difference degree within a configuration ===\n"
            << "(pagerank on " << d.name << ", |V|=" << d.graph.num_vertices()
            << ", |E|=" << d.graph.num_edges() << ", " << runs
            << " runs/config, NE = " << (threaded ? "threads" : "simulator")
            << ", delay=" << delay << ")\n\n";

  const std::vector<float> epsilons{0.1f, 0.01f, 0.001f};
  TextTable table({"config", "eps=0.1", "eps=0.01", "eps=0.001"});
  for (const auto& cfg : bench::paper_configs()) {
    std::vector<std::string> row{cfg.name + " vs. " + cfg.name};
    for (const float eps : epsilons) {
      const auto rs =
          bench::collect_runs(d.graph, cfg, eps, runs, threaded, delay, seed);
      const double dd = bench::avg_within(rs);
      row.push_back(cfg.deterministic && dd >= d.graph.num_vertices()
                        ? "identical"
                        : TextTable::num(dd, 1));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);

  std::cout << "\nreading: larger is better (differences confined to less "
               "significant pages);\n'identical' = our sequential DE is "
               "bit-reproducible (the paper's DE residual variance came from "
               "float precision).\n";
  return 0;
}
