// Replicated-serving-tier load generator (docs/TIER.md): measures read
// throughput + latency of a forked ndg_tier topology under a concurrent
// mutation stream, against the single-process baseline (--replicas=0, where
// the coordinator answers every read itself — the ndg_serve-equivalent
// deployment).
//
// For each topology: one writer connection drives `--batch` mutations +
// recompute per epoch against coord.sock in a loop, while `--readers`
// threads hammer point queries — round-robin across the replica sockets in
// the tier run, all against coord.sock in the baseline. After `--seconds`
// of steady state the harness reports reads/s and p50/p99 latency, and the
// tier-to-baseline throughput ratio (the acceptance headline: a 4-replica
// tier should sustain >= 3x the baseline's reads under the same write
// load).
//
// Flags: --vertices=4096 --edges=32768 --replicas=4 --readers=16
//        --seconds=3 --batch=64 --threads=2 --algo=pagerank
//        --json=BENCH_tier.json
//
// The launcher binary path arrives via the NDG_TIER_BIN compile definition
// (tools/CMakeLists.txt).

#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <csignal>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace ndg {
namespace {

using Clock = std::chrono::steady_clock;

struct Config {
  std::int64_t vertices = 4096;
  std::int64_t edges = 32768;
  std::size_t replicas = 4;
  std::size_t readers = 16;  // enough connections to saturate one loop
  double seconds = 3.0;
  std::size_t batch = 64;
  std::size_t threads = 2;
  std::string algo = "pagerank";
};

/// Minimal blocking line client (bench-side; the tier binary is the system
/// under test, so the harness stays libc-only).
class Client {
 public:
  bool connect(const std::string& path, int timeout_ms = 30000) {
    const auto deadline =
        Clock::now() + std::chrono::milliseconds(timeout_ms);
    while (Clock::now() < deadline) {
      fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
      if (fd_ < 0) return false;
      sockaddr_un addr{};
      addr.sun_family = AF_UNIX;
      std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
      if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                    sizeof(addr)) == 0) {
        return true;
      }
      ::close(fd_);
      fd_ = -1;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    return false;
  }

  bool send_line(const std::string& line) {
    const std::string payload = line + "\n";
    std::size_t off = 0;
    while (off < payload.size()) {
      const ssize_t n =
          ::write(fd_, payload.data() + off, payload.size() - off);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return false;
      off += static_cast<std::size_t>(n);
    }
    return true;
  }

  std::string read_line(int timeout_ms = 30000) {
    const auto deadline =
        Clock::now() + std::chrono::milliseconds(timeout_ms);
    for (;;) {
      const std::size_t nl = buf_.find('\n');
      if (nl != std::string::npos) {
        const std::string line = buf_.substr(0, nl);
        buf_.erase(0, nl + 1);
        return line;
      }
      const auto left =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              deadline - Clock::now());
      if (left.count() <= 0) return {};
      pollfd p{fd_, POLLIN, 0};
      const int rc = ::poll(&p, 1, static_cast<int>(left.count()));
      if (rc < 0 && errno == EINTR) continue;
      if (rc <= 0) return {};
      char chunk[4096];
      const ssize_t n = ::read(fd_, chunk, sizeof chunk);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return {};
      buf_.append(chunk, static_cast<std::size_t>(n));
    }
  }

  std::string rpc(const std::string& line) {
    if (!send_line(line)) return {};
    return read_line();
  }

  void close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  ~Client() { close(); }

 private:
  int fd_ = -1;
  std::string buf_;
};

std::string field(const std::string& line, const std::string& key) {
  const std::string pat = "\"" + key + "\":";
  std::size_t p = line.find(pat);
  if (p == std::string::npos) return {};
  p += pat.size();
  const std::size_t e = line.find_first_of(",}", p);
  return line.substr(p, e == std::string::npos ? std::string::npos : e - p);
}

struct RunResult {
  double reads_per_s = 0;
  double p50_us = 0;
  double p99_us = 0;
  std::uint64_t reads = 0;
  std::uint64_t epochs = 0;
};

/// One measured topology: fork the launcher, saturate it, reap it.
RunResult run_topology(const Config& cfg, std::size_t replicas) {
  char tmpl[] = "/tmp/ndg_bench_tier_XXXXXX";
  if (::mkdtemp(tmpl) == nullptr) throw std::runtime_error("mkdtemp failed");
  const std::string dir = tmpl;

  std::vector<std::string> args = {
      NDG_TIER_BIN,
      "--dir=" + dir,
      "--replicas=" + std::to_string(replicas),
      "--algo=" + cfg.algo,
      "--vertices=" + std::to_string(cfg.vertices),
      "--edges=" + std::to_string(cfg.edges),
      "--threads=" + std::to_string(cfg.threads),
      "--gate=theorem1",
  };
  const pid_t pid = ::fork();
  if (pid < 0) throw std::runtime_error("fork failed");
  if (pid == 0) {
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (auto& a : args) argv.push_back(a.data());
    argv.push_back(nullptr);
    ::execv(argv[0], argv.data());
    _exit(127);
  }

  Client coord;
  if (!coord.connect(dir + "/coord.sock")) {
    throw std::runtime_error("could not reach coordinator");
  }
  coord.read_line();  // greeting
  // Wait for every replica to finish its sync handshake before measuring.
  while (replicas > 0) {
    const std::string st = coord.rpc(R"({"op":"stats"})");
    if (field(st, "replicas") == std::to_string(replicas)) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> epochs{0};

  // Writer: `batch` mutations + recompute per epoch, continuously.
  std::thread writer([&] {
    Client w;
    if (!w.connect(dir + "/coord.sock")) return;
    w.read_line();
    SplitMix64 rng(11);
    while (!stop.load(std::memory_order_relaxed)) {
      for (std::size_t i = 0; i < cfg.batch; ++i) {
        const auto u = rng.next() % static_cast<std::uint64_t>(cfg.vertices);
        const auto v = rng.next() % static_cast<std::uint64_t>(cfg.vertices);
        if (u == v) continue;
        w.rpc(R"({"op":"mutate","kind":"insert","src":)" +
              std::to_string(u) + R"(,"dst":)" + std::to_string(v) + "}");
      }
      if (w.rpc(R"({"op":"recompute"})").empty()) return;
      epochs.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  });

  // Readers: point queries, round-robin over the read endpoints.
  std::vector<std::vector<std::uint32_t>> lat_us(cfg.readers);
  std::vector<std::thread> readers;
  const auto t0 = Clock::now();
  const auto t_end =
      t0 + std::chrono::microseconds(
               static_cast<std::int64_t>(cfg.seconds * 1e6));
  for (std::size_t r = 0; r < cfg.readers; ++r) {
    readers.emplace_back([&, r] {
      const std::string sock =
          replicas == 0
              ? dir + "/coord.sock"
              : dir + "/replica-" + std::to_string(r % replicas) + ".sock";
      Client c;
      if (!c.connect(sock)) return;
      c.read_line();
      SplitMix64 rng(100 + r);
      auto& lat = lat_us[r];
      lat.reserve(1 << 16);
      while (Clock::now() < t_end) {
        const auto v = rng.next() % static_cast<std::uint64_t>(cfg.vertices);
        const auto q0 = Clock::now();
        const std::string rep =
            c.rpc(R"({"op":"query","vertex":)" + std::to_string(v) + "}");
        if (rep.empty()) return;  // peer went away: stop measuring
        lat.push_back(static_cast<std::uint32_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                Clock::now() - q0)
                .count()));
      }
    });
  }
  for (auto& t : readers) t.join();
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - t0).count();
  stop.store(true, std::memory_order_relaxed);
  writer.join();

  coord.rpc(R"({"op":"shutdown"})");
  int status = 0;
  while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
  }

  std::vector<std::uint32_t> all;
  for (auto& v : lat_us) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  RunResult out;
  out.reads = all.size();
  out.epochs = epochs.load();
  out.reads_per_s = elapsed > 0 ? static_cast<double>(all.size()) / elapsed
                                : 0.0;
  if (!all.empty()) {
    out.p50_us = all[all.size() / 2];
    out.p99_us = all[all.size() * 99 / 100];
  }
  return out;
}

int bench_main(const CliArgs& args) {
  Config cfg;
  cfg.vertices = args.get_int("vertices", 4096);
  cfg.edges = args.get_int("edges", 32768);
  cfg.replicas = static_cast<std::size_t>(args.get_int("replicas", 4));
  cfg.readers = static_cast<std::size_t>(args.get_int("readers", 8));
  cfg.seconds = args.get_double("seconds", 3.0);
  cfg.batch = static_cast<std::size_t>(args.get_int("batch", 64));
  cfg.threads = static_cast<std::size_t>(args.get_int("threads", 2));
  cfg.algo = args.get("algo", "pagerank");

  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  std::cout << "bench_tier: vertices=" << cfg.vertices
            << " edges=" << cfg.edges << " replicas=" << cfg.replicas
            << " readers=" << cfg.readers << " seconds=" << cfg.seconds
            << " batch=" << cfg.batch << " algo=" << cfg.algo
            << " cores=" << cores << "\n";
  if (cores <= cfg.replicas) {
    std::cout << "bench_tier: note: " << cores << " core(s) for "
              << cfg.replicas
              << " replicas + coordinator; read scaling needs cores > "
                 "replicas, expect ratio <= 1\n";
  }

  const RunResult base = run_topology(cfg, 0);
  const RunResult tier = run_topology(cfg, cfg.replicas);
  const double ratio =
      base.reads_per_s > 0 ? tier.reads_per_s / base.reads_per_s : 0.0;

  TextTable table({"topology", "replicas", "readers", "reads_per_s", "p50_us",
               "p99_us", "reads", "epochs"});
  const auto add = [&](const char* name, std::size_t replicas,
                       const RunResult& r) {
    table.add_row({name, std::to_string(replicas),
                   std::to_string(cfg.readers),
                   std::to_string(static_cast<std::uint64_t>(r.reads_per_s)),
                   std::to_string(static_cast<std::uint64_t>(r.p50_us)),
                   std::to_string(static_cast<std::uint64_t>(r.p99_us)),
                   std::to_string(r.reads), std::to_string(r.epochs)});
  };
  add("single-process", 0, base);
  add("tier", cfg.replicas, tier);
  table.print(std::cout);
  std::cout << "read_scaling_ratio=" << ratio << "\n";

  const std::string json = args.get("json", "");
  if (!json.empty()) {
    table.write_json(
        json, std::string("{\"bench\":\"tier\",\"vertices\":") +
                  std::to_string(cfg.vertices) + ",\"edges\":" +
                  std::to_string(cfg.edges) + ",\"replicas\":" +
                  std::to_string(cfg.replicas) + ",\"readers\":" +
                  std::to_string(cfg.readers) + ",\"seconds\":" +
                  std::to_string(cfg.seconds) + ",\"algo\":\"" +
                  json_escape(cfg.algo) + "\",\"cores\":" +
                  std::to_string(cores) + ",\"read_scaling_ratio\":" +
                  std::to_string(ratio) + "}");
    std::cout << "wrote " << json << "\n";
  }
  return 0;
}

}  // namespace
}  // namespace ndg

int main(int argc, char** argv) {
  std::signal(SIGPIPE, SIG_IGN);
  ndg::CliArgs args(argc, argv);
  try {
    return ndg::bench_main(args);
  } catch (const std::exception& e) {
    std::cerr << "bench_tier: " << e.what() << "\n";
    return 1;
  }
}
