// Reproduces Table III: "Average difference degrees of results between
// different configurations" — PageRank on web-google, pairwise difference
// degrees between the 5-run sets of DE, 4NE, 8NE and 16NE, for
// ε ∈ {0.1, 0.01, 0.001}; plus the paper's closing observation that the
// top-ranked pages are identical across ALL configurations.
//
// Flags: --scale=32 --runs=5 --delay=4 --threaded=false --seed=1.

#include <iostream>

#include "bench_common.hpp"
#include "pagerank_variance.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace ndg;
  const CliArgs args(argc, argv);
  const int runs = static_cast<int>(args.get_int("runs", 5));
  const bool threaded = args.get_bool("threaded", false);
  const auto delay = static_cast<std::size_t>(args.get_int("delay", 4));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const auto scale = static_cast<unsigned>(args.get_int("scale", 32));

  const Dataset d = make_dataset(DatasetId::kWebGoogle, scale);
  std::cout << "=== Table III: avg difference degree between configurations ===\n"
            << "(pagerank on " << d.name << ", |V|=" << d.graph.num_vertices()
            << ", |E|=" << d.graph.num_edges() << ", " << runs
            << " runs/config, NE = " << (threaded ? "threads" : "simulator")
            << ", delay=" << delay << ")\n\n";

  const std::vector<float> epsilons{0.1f, 0.01f, 0.001f};
  const auto configs = bench::paper_configs();

  TextTable table({"pair", "eps=0.1", "eps=0.01", "eps=0.001"});

  // Collect all run sets once per epsilon, then compare pairwise.
  std::vector<std::vector<bench::RunSet>> sets_by_eps;
  for (const float eps : epsilons) {
    std::vector<bench::RunSet> sets;
    for (const auto& cfg : configs) {
      sets.push_back(
          bench::collect_runs(d.graph, cfg, eps, runs, threaded, delay, seed));
    }
    sets_by_eps.push_back(std::move(sets));
  }

  for (std::size_t i = 0; i < configs.size(); ++i) {
    for (std::size_t j = i + 1; j < configs.size(); ++j) {
      std::vector<std::string> row{configs[i].name + " vs. " + configs[j].name};
      for (std::size_t k = 0; k < epsilons.size(); ++k) {
        row.push_back(TextTable::num(
            bench::avg_between(sets_by_eps[k][i], sets_by_eps[k][j]), 1));
      }
      table.add_row(std::move(row));
    }
  }
  table.print(std::cout);

  // Paper: "for the pages with higher rank (e.g., ranking number smaller
  // than 100), the results from all these selected scenarios are identical."
  std::cout << "\ncommon top-ranking prefix across ALL configs and runs:\n";
  for (std::size_t k = 0; k < epsilons.size(); ++k) {
    std::cout << "  eps=" << epsilons[k] << ": first "
              << bench::common_prefix(sets_by_eps[k])
              << " ranks identical everywhere\n";
  }
  std::cout << "\nshape targets: difference degrees grow as eps shrinks; the "
               "top of the ranking agrees across every configuration.\n";
  return 0;
}
