// Ablation: self-stabilization under transient amnesia faults — how much
// damage can nondeterministic execution absorb? Sweeps the injection rate
// for WCC, k-core and MIS, reporting faults injected, extra iterations paid
// during the faulty phase, recovery-pass iterations, and exactness — the
// quantitative footprint of Theorem 2's recovery argument beyond the
// paper's own race model (see DESIGN.md X14).
//
// Flags: --scale=512 --rates=0,10,25,50 --budget=2000 --seed=5 --threads=4.

#include <iostream>

#include "algorithms/kcore.hpp"
#include "algorithms/mis.hpp"
#include "algorithms/reference/references.hpp"
#include "algorithms/wcc.hpp"
#include "bench_common.hpp"
#include "core/fault_injection.hpp"
#include "engine/deterministic.hpp"
#include "engine/nondeterministic.hpp"
#include "util/table.hpp"

namespace ndg {
namespace {

template <typename MakeProgram, typename Exact>
void sweep(const Dataset& d, const char* algo, MakeProgram make_prog,
           Exact exact, const std::vector<std::size_t>& rates,
           std::uint64_t budget, std::uint64_t seed, std::size_t threads,
           TextTable& table) {
  using Program = decltype(make_prog());
  using ED = typename Program::EdgeData;
  for (const std::size_t rate : rates) {
    Program prog = make_prog();
    EdgeDataArray<ED> edges(d.graph.num_edges());
    prog.init(d.graph, edges);
    FaultPlan plan(edges, budget, static_cast<unsigned>(rate), seed);
    EngineOptions opts;
    opts.num_threads = threads;
    const EngineResult faulty = run_nondeterministic_with_policy(
        d.graph, prog, edges,
        AmnesiaAccess<RelaxedAtomicAccess>{RelaxedAtomicAccess{}, &plan}, opts);
    const EngineResult recovery = run_deterministic(d.graph, prog, edges);
    table.add_row({algo, std::to_string(rate) + "%",
                   std::to_string(plan.injected()),
                   std::to_string(faulty.iterations),
                   std::to_string(recovery.iterations),
                   faulty.converged && recovery.converged && exact(prog)
                       ? "exact"
                       : "DAMAGED"});
  }
}

}  // namespace
}  // namespace ndg

int main(int argc, char** argv) {
  using namespace ndg;
  const CliArgs args(argc, argv);
  const auto rates = bench::parse_list(args.get("rates", "0,10,25,50"));
  const auto budget = static_cast<std::uint64_t>(args.get_int("budget", 2000));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 5));
  const auto threads = static_cast<std::size_t>(args.get_int("threads", 4));
  const auto scale = static_cast<unsigned>(args.get_int("scale", 512));

  const Dataset d = make_dataset(DatasetId::kWebGoogle, scale);
  std::cout << "=== Fault tolerance: transient amnesia faults + one recovery "
               "pass ===\n"
            << "(" << d.name << ", |V|=" << d.graph.num_vertices()
            << ", |E|=" << d.graph.num_edges() << ", budget=" << budget
            << " faults)\n\n";

  const auto wcc_expected = ref::wcc(d.graph);
  const auto core_expected = ref::kcore(d.graph);
  const auto mis_expected = ref::greedy_mis(d.graph);

  TextTable table({"algorithm", "fault rate", "injected", "faulty iters",
                   "recovery iters", "verdict"});
  sweep(d, "wcc", [] { return WccProgram(); },
        [&](const WccProgram& p) { return p.labels() == wcc_expected; }, rates,
        budget, seed, threads, table);
  sweep(d, "kcore", [] { return KCoreProgram(); },
        [&](const KCoreProgram& p) {
          return p.core_numbers() == core_expected;
        },
        rates, budget, seed, threads, table);
  sweep(d, "mis", [] { return MisProgram(); },
        [&](const MisProgram& p) {
          for (VertexId v = 0; v < p.states().size(); ++v) {
            if ((p.states()[v] == MisProgram::kIn) != mis_expected[v]) {
              return false;
            }
          }
          return true;
        },
        rates, budget, seed, threads, table);
  table.print(std::cout);

  std::cout << "\nreading: every row ends exact — faulted writes schedule "
               "their victims, and the repair discipline turns scheduling "
               "into healing; higher rates cost extra iterations, not "
               "correctness.\n";
  return 0;
}
