// bench_serve — latency/SLO load generator for ndg_serve's socket front end.
//
// Measures the wire layer itself (docs/DYNAMIC.md "Wire protocol"): per-op
// round-trip latency percentiles (p50/p99/p999), saturation throughput, and
// wire bytes-per-op, for both the newline-JSON protocol and the
// length-prefixed bin1 framing — including the batched-mutation intake path
// (one kMBatch frame carrying --mbatch mutations per round trip).
//
// Scenarios (each against a freshly forked ndg_serve):
//
//   read_json / read_bin       point queries only
//   mixed_json / mixed_bin     --write-pct % single mutates, rest queries
//   intake_json / intake_bin   single-mutation intake (one op per line/frame)
//   intake_mbatch              bin1 batched intake (--mbatch muts per frame)
//
// The client is one poll(2) loop over --conns nonblocking connections, each
// keeping --pipeline requests in flight (closed loop: a reply immediately
// funds the next request, so throughput is the saturation rate). --rate=N
// switches to an open loop that issues N ops/s across all connections on a
// schedule regardless of completions, so queueing delay shows up in the
// percentiles. Replies on one connection arrive strictly in order for both
// protocols, so latency is a per-connection FIFO of send timestamps.
//
// Single-core honesty: the generator and the server share whatever cores the
// machine has (CI runners have one), so absolute numbers are a floor and the
// headline is the *ratio* between protocols measured under identical
// contention — printed as mbatch_vs_json_intake_ratio and recorded in the
// manifest. Run with --json=BENCH_serve.json for the CI gate
// (scripts/bench_diff.py --key=scenario --metric=ops_per_s:higher,...).

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <iostream>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "dyn/wire.hpp"
#include "nondetgraph.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

#ifndef NDG_SERVE_BIN
#error "NDG_SERVE_BIN must point at the ndg_serve binary"
#endif

namespace ndg {
namespace {

using Clock = std::chrono::steady_clock;

struct Config {
  std::int64_t vertices = 4096;
  std::int64_t edges = 32768;
  std::size_t conns = 128;
  std::size_t pipeline = 8;
  std::size_t mbatch = 64;
  double seconds = 2.0;
  double rate = 0.0;  // ops/s across all conns; 0 = closed loop
  int write_pct = 10;
  std::string algo = "pagerank";
};

enum class Mix : std::uint8_t { kRead, kMixed, kIntakeMutate, kIntakeMBatch };

struct Scenario {
  const char* name;
  bool bin;
  Mix mix;
};

constexpr Scenario kScenarios[] = {
    {"read_json", false, Mix::kRead},
    {"read_bin", true, Mix::kRead},
    {"mixed_json", false, Mix::kMixed},
    {"mixed_bin", true, Mix::kMixed},
    {"intake_json", false, Mix::kIntakeMutate},
    {"intake_bin", true, Mix::kIntakeMutate},
    {"intake_mbatch", true, Mix::kIntakeMBatch},
};

/// Minimal blocking line client for setup/control (greeting, hello
/// negotiation, warm-up recompute, stats snapshots, shutdown).
class CtlClient {
 public:
  bool connect(const std::string& path, int timeout_ms = 30000) {
    const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
    while (Clock::now() < deadline) {
      fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
      if (fd_ < 0) return false;
      sockaddr_un addr{};
      addr.sun_family = AF_UNIX;
      std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
      if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                    sizeof(addr)) == 0) {
        return true;
      }
      ::close(fd_);
      fd_ = -1;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    return false;
  }

  bool send_all(const std::string& payload) {
    std::size_t off = 0;
    while (off < payload.size()) {
      const ssize_t n =
          ::write(fd_, payload.data() + off, payload.size() - off);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return false;
      off += static_cast<std::size_t>(n);
    }
    return true;
  }

  std::string read_line(int timeout_ms = 30000) {
    const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
    for (;;) {
      const std::size_t nl = buf_.find('\n');
      if (nl != std::string::npos) {
        const std::string line = buf_.substr(0, nl);
        buf_.erase(0, nl + 1);
        return line;
      }
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - Clock::now());
      if (left.count() <= 0) return {};
      pollfd p{fd_, POLLIN, 0};
      const int rc = ::poll(&p, 1, static_cast<int>(left.count()));
      if (rc < 0 && errno == EINTR) continue;
      if (rc <= 0) return {};
      char chunk[4096];
      const ssize_t n = ::read(fd_, chunk, sizeof chunk);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return {};
      buf_.append(chunk, static_cast<std::size_t>(n));
    }
  }

  std::string rpc(const std::string& line) {
    if (!send_all(line + "\n")) return {};
    return read_line();
  }

  /// Releases the fd to the caller (buffered bytes must be empty).
  int release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }

  [[nodiscard]] bool buffered() const { return !buf_.empty(); }

  void close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  ~CtlClient() { close(); }

 private:
  int fd_ = -1;
  std::string buf_;
};

std::string field(const std::string& line, const std::string& key) {
  const std::string pat = "\"" + key + "\":";
  std::size_t p = line.find(pat);
  if (p == std::string::npos) return {};
  p += pat.size();
  const std::size_t e = line.find_first_of(",}", p);
  return line.substr(p, e == std::string::npos ? std::string::npos : e - p);
}

std::uint64_t field_u64(const std::string& line, const std::string& key) {
  const std::string v = field(line, key);
  return v.empty() ? 0 : std::strtoull(v.c_str(), nullptr, 10);
}

/// One load connection inside the poll loop. Requests are appended to `out`
/// with a timestamp pushed on `inflight`; replies complete FIFO.
struct LoadConn {
  int fd = -1;
  bool bin = false;
  bool dead = false;
  std::string in;
  std::string out;
  std::deque<Clock::time_point> inflight;
  SplitMix64 rng{0};
};

void set_nonblock(int fd) {
  const int fl = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, fl | O_NONBLOCK);
}

struct RunResult {
  std::uint64_t ops = 0;       // completed mutations/queries
  std::uint64_t replies = 0;   // completed round trips (latency samples)
  std::uint64_t errors = 0;    // error lines / kError frames
  double elapsed = 0;
  double ops_per_s = 0;
  double p50_us = 0;
  double p99_us = 0;
  double p999_us = 0;
  double bytes_per_op = 0;
};

class ScenarioRunner {
 public:
  ScenarioRunner(const Config& cfg, const Scenario& sc)
      : cfg_(cfg), sc_(sc) {}

  RunResult run() {
    char tmpl[] = "/tmp/ndg_bench_serve_XXXXXX";
    if (::mkdtemp(tmpl) == nullptr) {
      throw std::runtime_error("mkdtemp failed");
    }
    dir_ = tmpl;
    spawn_server();
    RunResult out;
    try {
      out = drive();
    } catch (...) {
      teardown();
      throw;
    }
    teardown();
    return out;
  }

 private:
  void spawn_server() {
    std::vector<std::string> args = {
        NDG_SERVE_BIN,
        "--socket=" + dir_ + "/serve.sock",
        "--algo=" + cfg_.algo,
        "--vertices=" + std::to_string(cfg_.vertices),
        "--edges=" + std::to_string(cfg_.edges),
        "--threads=2",
        "--allow-shutdown",
    };
    pid_ = ::fork();
    if (pid_ < 0) throw std::runtime_error("fork failed");
    if (pid_ == 0) {
      std::vector<char*> argv;
      argv.reserve(args.size() + 1);
      for (auto& a : args) argv.push_back(a.data());
      argv.push_back(nullptr);
      ::execv(argv[0], argv.data());
      _exit(127);
    }
  }

  void teardown() {
    for (auto& c : conns_) {
      if (c.fd >= 0) ::close(c.fd);
    }
    conns_.clear();
    if (ctl_) {
      ctl_->rpc(R"({"op":"quit"})");  // --allow-shutdown: stops the server
      ctl_.reset();
    }
    if (pid_ > 0) {
      int status = 0;
      while (::waitpid(pid_, &status, 0) < 0 && errno == EINTR) {
      }
      pid_ = -1;
    }
  }

  /// Connects one load connection and runs the (blocking) handshake:
  /// greeting line, then for bin1 the hello upgrade.
  LoadConn open_conn(std::size_t id) {
    CtlClient c;
    if (!c.connect(dir_ + "/serve.sock")) {
      throw std::runtime_error("connect failed for load conn");
    }
    if (c.read_line().empty()) throw std::runtime_error("no greeting");
    if (sc_.bin) {
      const std::string rep = c.rpc(R"({"op":"hello","proto":"bin1"})");
      if (field(rep, "ok") != "true") {
        throw std::runtime_error("hello rejected: " + rep);
      }
    }
    if (c.buffered()) {
      // The handshake is strictly request/reply; anything extra means the
      // framing assumption is broken and latencies would be garbage.
      throw std::runtime_error("unexpected bytes after handshake");
    }
    LoadConn lc;
    lc.fd = c.release();
    lc.bin = sc_.bin;
    lc.rng = SplitMix64(0x9e3779b9u + id);
    set_nonblock(lc.fd);
    return lc;
  }

  void enqueue_op(LoadConn& c) {
    const auto v = static_cast<std::uint64_t>(cfg_.vertices);
    const bool write =
        sc_.mix == Mix::kIntakeMutate || sc_.mix == Mix::kIntakeMBatch ||
        (sc_.mix == Mix::kMixed &&
         c.rng.next() % 100 < static_cast<std::uint64_t>(cfg_.write_pct));
    if (sc_.mix == Mix::kIntakeMBatch) {
      std::vector<dyn::Mutation> ms(cfg_.mbatch);
      for (auto& m : ms) {
        m.kind = dyn::MutationKind::kInsertEdge;
        m.src = static_cast<VertexId>(c.rng.next() % v);
        m.dst = static_cast<VertexId>(c.rng.next() % v);
        if (m.src == m.dst) m.dst = (m.dst + 1) % static_cast<VertexId>(v);
      }
      dyn::append_frame(c.out, dyn::FrameType::kMBatch,
                        dyn::encode_mbatch(ms));
    } else if (write) {
      const auto src = static_cast<VertexId>(c.rng.next() % v);
      auto dst = static_cast<VertexId>(c.rng.next() % v);
      if (src == dst) dst = (dst + 1) % static_cast<VertexId>(v);
      if (c.bin) {
        dyn::Mutation m;
        m.kind = dyn::MutationKind::kInsertEdge;
        m.src = src;
        m.dst = dst;
        dyn::append_frame(c.out, dyn::FrameType::kMutate,
                          dyn::encode_mutate(m));
      } else {
        c.out += R"({"op":"mutate","kind":"insert","src":)" +
                 std::to_string(src) + R"(,"dst":)" + std::to_string(dst) +
                 "}\n";
      }
    } else {
      const std::uint64_t q = c.rng.next() % v;
      if (c.bin) {
        dyn::append_frame(c.out, dyn::FrameType::kQuery, dyn::encode_query(q));
      } else {
        c.out += R"({"op":"query","vertex":)" + std::to_string(q) + "}\n";
      }
    }
    c.inflight.push_back(Clock::now());
  }

  /// Consumes completed replies, recording one latency sample per round
  /// trip. Returns completed op count (mbatch acks count --mbatch ops).
  std::uint64_t harvest(LoadConn& c, std::vector<std::uint32_t>& lat,
                        std::uint64_t& errors) {
    std::uint64_t done = 0;
    const auto complete = [&](bool err) {
      if (c.inflight.empty()) {  // server spoke out of turn
        c.dead = true;
        return;
      }
      lat.push_back(static_cast<std::uint32_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              Clock::now() - c.inflight.front())
              .count()));
      c.inflight.pop_front();
      if (err) ++errors;
      done += sc_.mix == Mix::kIntakeMBatch ? cfg_.mbatch : 1;
    };
    if (c.bin) {
      dyn::Frame f;
      for (;;) {
        const auto st = dyn::extract_frame(c.in, f);
        if (st == dyn::FrameParse::kNeedMore) break;
        if (st == dyn::FrameParse::kBad) {
          c.dead = true;
          break;
        }
        complete(f.type == dyn::FrameType::kError);
      }
    } else {
      for (;;) {
        const std::size_t nl = c.in.find('\n');
        if (nl == std::string::npos) break;
        const bool err = c.in.compare(0, 11, R"({"ok":false)") == 0;
        c.in.erase(0, nl + 1);
        complete(err);
      }
    }
    return done;
  }

  RunResult drive() {
    ctl_ = std::make_unique<CtlClient>();
    if (!ctl_->connect(dir_ + "/serve.sock")) {
      throw std::runtime_error("could not reach " + dir_ + "/serve.sock");
    }
    ctl_->read_line();  // greeting
    // Warm epoch so reads hit stable post-convergence values.
    if (ctl_->rpc(R"({"op":"recompute"})").empty()) {
      throw std::runtime_error("warm-up recompute failed");
    }

    conns_.reserve(cfg_.conns);
    for (std::size_t i = 0; i < cfg_.conns; ++i) conns_.push_back(open_conn(i));

    const std::string stats0 = ctl_->rpc(R"({"op":"stats"})");
    const std::uint64_t in0 = field_u64(stats0, "bytes_in");
    const std::uint64_t out0 = field_u64(stats0, "bytes_out");

    std::vector<std::uint32_t> lat;
    lat.reserve(1u << 20);
    RunResult r;
    std::vector<pollfd> pfds(conns_.size());

    const auto t0 = Clock::now();
    const auto t_end = t0 + std::chrono::microseconds(
                                static_cast<std::int64_t>(cfg_.seconds * 1e6));
    std::uint64_t issued = 0;
    std::size_t rr = 0;  // open-loop round-robin cursor
    bool loading = true;
    for (;;) {
      const auto now = Clock::now();
      if (loading && now >= t_end) loading = false;
      if (loading) {
        if (cfg_.rate > 0) {
          // Open loop: issue on the clock, not on completions.
          const double elapsed = std::chrono::duration<double>(now - t0).count();
          auto due = static_cast<std::uint64_t>(elapsed * cfg_.rate);
          while (issued < due) {
            LoadConn& c = conns_[rr++ % conns_.size()];
            if (!c.dead) enqueue_op(c);
            ++issued;
          }
        } else {
          // Closed loop: top every connection back up to --pipeline.
          for (auto& c : conns_) {
            while (!c.dead && c.inflight.size() < cfg_.pipeline) {
              enqueue_op(c);
              ++issued;
            }
          }
        }
      }

      std::size_t live = 0, waiting = 0;
      for (std::size_t i = 0; i < conns_.size(); ++i) {
        auto& c = conns_[i];
        pfds[i].fd = c.dead ? -1 : c.fd;
        pfds[i].events = 0;
        if (c.dead) continue;
        ++live;
        if (!c.inflight.empty()) {
          pfds[i].events |= POLLIN;
          ++waiting;
        }
        if (!c.out.empty()) pfds[i].events |= POLLOUT;
      }
      if (live == 0) break;
      if (!loading && waiting == 0) break;  // drained: every reply is in
      const int rc = ::poll(pfds.data(), pfds.size(), 50);
      if (rc < 0 && errno != EINTR) break;
      if (!loading &&
          now > t_end + std::chrono::seconds(10)) {  // drain deadline
        break;
      }

      for (std::size_t i = 0; i < conns_.size(); ++i) {
        auto& c = conns_[i];
        if (c.dead) continue;
        if ((pfds[i].revents & (POLLOUT | POLLERR | POLLHUP)) != 0 &&
            !c.out.empty()) {
          const ssize_t n = ::write(c.fd, c.out.data(), c.out.size());
          if (n > 0) {
            c.out.erase(0, static_cast<std::size_t>(n));
          } else if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
                     errno != EINTR) {
            c.dead = true;
            continue;
          }
        }
        if ((pfds[i].revents & (POLLIN | POLLERR | POLLHUP)) != 0) {
          char chunk[1 << 16];
          for (;;) {
            const ssize_t n = ::read(c.fd, chunk, sizeof chunk);
            if (n > 0) {
              c.in.append(chunk, static_cast<std::size_t>(n));
              if (static_cast<std::size_t>(n) < sizeof chunk) break;
              continue;
            }
            if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
            if (n < 0 && errno == EINTR) continue;
            c.dead = true;  // EOF or hard error
            break;
          }
          r.ops += harvest(c, lat, r.errors);
        }
      }
    }
    const double elapsed = std::chrono::duration<double>(
                               std::min(Clock::now(), t_end) - t0)
                               .count();

    const std::string stats1 = ctl_->rpc(R"({"op":"stats"})");
    const std::uint64_t in1 = field_u64(stats1, "bytes_in");
    const std::uint64_t out1 = field_u64(stats1, "bytes_out");

    r.replies = lat.size();
    r.elapsed = elapsed;
    r.ops_per_s = elapsed > 0 ? static_cast<double>(r.ops) / elapsed : 0.0;
    if (r.ops > 0 && in1 >= in0 && out1 >= out0) {
      r.bytes_per_op = static_cast<double>((in1 - in0) + (out1 - out0)) /
                       static_cast<double>(r.ops);
    }
    std::sort(lat.begin(), lat.end());
    if (!lat.empty()) {
      const auto at = [&](std::size_t num, std::size_t den) {
        return static_cast<double>(
            lat[std::min(lat.size() - 1, lat.size() * num / den)]);
      };
      r.p50_us = at(1, 2);
      r.p99_us = at(99, 100);
      r.p999_us = at(999, 1000);
    }
    return r;
  }

  Config cfg_;
  Scenario sc_;
  std::string dir_;
  pid_t pid_ = -1;
  std::unique_ptr<CtlClient> ctl_;
  std::vector<LoadConn> conns_;
};

int bench_main(const CliArgs& args) {
  Config cfg;
  cfg.vertices = args.get_int("vertices", 4096);
  cfg.edges = args.get_int("edges", 32768);
  cfg.conns = static_cast<std::size_t>(args.get_int("conns", 128));
  cfg.pipeline = static_cast<std::size_t>(args.get_int("pipeline", 8));
  cfg.mbatch = static_cast<std::size_t>(args.get_int("mbatch", 64));
  cfg.seconds = args.get_double("seconds", 2.0);
  cfg.rate = args.get_double("rate", 0.0);
  cfg.write_pct = static_cast<int>(args.get_int("write-pct", 10));
  cfg.algo = args.get("algo", "pagerank");
  if (cfg.conns == 0 || cfg.pipeline == 0 || cfg.mbatch == 0) {
    throw std::runtime_error("--conns/--pipeline/--mbatch must be positive");
  }

  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  std::cout << "bench_serve: vertices=" << cfg.vertices
            << " edges=" << cfg.edges << " conns=" << cfg.conns
            << " pipeline=" << cfg.pipeline << " mbatch=" << cfg.mbatch
            << " seconds=" << cfg.seconds << " rate=" << cfg.rate
            << " write_pct=" << cfg.write_pct << " algo=" << cfg.algo
            << " cores=" << cores << "\n";
  if (cores < 2) {
    std::cout << "bench_serve: note: generator and server share " << cores
              << " core(s); absolute rates are a floor, protocol ratios are "
                 "the signal\n";
  }

  TextTable table({"scenario", "proto", "conns", "pipeline", "ops",
                   "ops_per_s", "p50_us", "p99_us", "p999_us",
                   "bytes_per_op", "errors"});
  double json_intake = 0.0, mbatch_intake = 0.0;
  for (const Scenario& sc : kScenarios) {
    const RunResult r = ScenarioRunner(cfg, sc).run();
    if (std::string(sc.name) == "intake_json") json_intake = r.ops_per_s;
    if (std::string(sc.name) == "intake_mbatch") mbatch_intake = r.ops_per_s;
    table.add_row({sc.name, sc.bin ? "bin1" : "json",
                   std::to_string(cfg.conns), std::to_string(cfg.pipeline),
                   std::to_string(r.ops),
                   std::to_string(static_cast<std::uint64_t>(r.ops_per_s)),
                   TextTable::num(r.p50_us, 0), TextTable::num(r.p99_us, 0),
                   TextTable::num(r.p999_us, 0),
                   TextTable::num(r.bytes_per_op, 1),
                   std::to_string(r.errors)});
    std::cout << "  " << sc.name << ": ops=" << r.ops << " ops_per_s="
              << static_cast<std::uint64_t>(r.ops_per_s)
              << " p50_us=" << r.p50_us << " p99_us=" << r.p99_us
              << " p999_us=" << r.p999_us << " bytes_per_op="
              << r.bytes_per_op << " errors=" << r.errors << "\n";
  }
  const double ratio =
      json_intake > 0 ? mbatch_intake / json_intake : 0.0;
  table.print(std::cout);
  std::cout << "mbatch_vs_json_intake_ratio=" << ratio << "\n";

  const std::string json = args.get("json", "");
  if (!json.empty()) {
    table.write_json(
        json,
        std::string("{\"bench\":\"serve\",\"vertices\":") +
            std::to_string(cfg.vertices) + ",\"edges\":" +
            std::to_string(cfg.edges) + ",\"conns\":" +
            std::to_string(cfg.conns) + ",\"pipeline\":" +
            std::to_string(cfg.pipeline) + ",\"mbatch\":" +
            std::to_string(cfg.mbatch) + ",\"seconds\":" +
            std::to_string(cfg.seconds) + ",\"rate\":" +
            std::to_string(cfg.rate) + ",\"write_pct\":" +
            std::to_string(cfg.write_pct) + ",\"algo\":\"" +
            json_escape(cfg.algo) + "\",\"cores\":" + std::to_string(cores) +
            ",\"mbatch_vs_json_intake_ratio\":" + std::to_string(ratio) +
            "}");
    std::cout << "wrote " << json << "\n";
  }
  return 0;
}

}  // namespace
}  // namespace ndg

int main(int argc, char** argv) {
  std::signal(SIGPIPE, SIG_IGN);
  ndg::CliArgs args(argc, argv);
  try {
    return ndg::bench_main(args);
  } catch (const std::exception& e) {
    std::cerr << "bench_serve: " << e.what() << "\n";
    return 1;
  }
}
