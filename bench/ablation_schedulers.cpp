// E6: scheduler ablation — the Section I / Section VI landscape measured on
// one graph. Compares, for WCC and PageRank:
//
//   BSP        — synchronous model: maximal parallelism, most iterations;
//   DE         — deterministic asynchronous (GraphChi external scheduler
//                semantics): fewest iterations, but a sequential schedule;
//   chromatic  — deterministic AND parallel, but pays a barrier per color
//                class per iteration ("huge time overheads" of plotting
//                deterministic execution paths);
//   NE         — nondeterministic asynchronous (relaxed atomics): async
//                iteration counts with barrier-per-iteration parallelism.
//
// Shape targets: iterations(BSP) >> iterations(DE) ≈ iterations(NE);
// chromatic matches DE's result bit-for-bit; NE needs no coloring phase.
//
// Flags: --scale=128 --threads=4 --eps=1e-3.

#include <iostream>

#include "algorithms/pagerank.hpp"
#include "algorithms/wcc.hpp"
#include "bench_common.hpp"
#include "engine/bsp.hpp"
#include "engine/chromatic.hpp"
#include "engine/deterministic.hpp"
#include "engine/nondeterministic.hpp"
#include "engine/psw.hpp"
#include "engine/pure_async.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace ndg {
namespace {

template <typename MakeProgram>
void bench_schedulers(const Dataset& d, const char* algo,
                      MakeProgram make_prog, std::size_t threads,
                      const Coloring& coloring, double color_secs,
                      const IntervalPlan& plan, TextTable& table) {
  using Program = decltype(make_prog());
  using ED = typename Program::EdgeData;

  auto row = [&](const char* sched, const EngineResult& r, double extra = 0) {
    table.add_row({d.name, algo, sched, std::to_string(r.iterations),
                   std::to_string(r.updates),
                   TextTable::num((r.seconds + extra) * 1e3, 1),
                   r.converged ? "yes" : "NO"});
  };

  EdgeDataArray<ED> edges(d.graph.num_edges());
  {
    Program prog = make_prog();
    prog.init(d.graph, edges);
    row("BSP", run_bsp(d.graph, prog, edges, 200000));
  }
  {
    Program prog = make_prog();
    prog.init(d.graph, edges);
    row("DE", run_deterministic(d.graph, prog, edges));
  }
  {
    Program prog = make_prog();
    prog.init(d.graph, edges);
    EngineOptions opts;
    opts.num_threads = threads;
    // The chromatic row charges the one-off coloring cost (the paper's
    // "plotting the execution path" overhead) to the run.
    row("chromatic", run_chromatic(d.graph, prog, edges, coloring, opts),
        color_secs);
  }
  {
    Program prog = make_prog();
    prog.init(d.graph, edges);
    EngineOptions opts;
    opts.num_threads = threads;
    const PswResult r = run_psw_deterministic(d.graph, prog, edges, plan, opts);
    table.add_row({d.name, algo,
                   "DE-psw (par " +
                       TextTable::num(100 * r.parallel_fraction(), 0) + "%)",
                   std::to_string(r.iterations), std::to_string(r.updates),
                   TextTable::num(r.seconds * 1e3, 1),
                   r.converged ? "yes" : "NO"});
  }
  {
    Program prog = make_prog();
    prog.init(d.graph, edges);
    EngineOptions opts;
    opts.num_threads = threads;
    opts.mode = AtomicityMode::kRelaxed;
    row("NE", run_nondeterministic(d.graph, prog, edges, opts));
  }
  {
    Program prog = make_prog();
    prog.init(d.graph, edges);
    EngineOptions opts;
    opts.num_threads = threads;
    opts.mode = AtomicityMode::kRelaxed;
    row("pure-async", run_pure_async(d.graph, prog, edges, opts));
  }
}

}  // namespace
}  // namespace ndg

int main(int argc, char** argv) {
  using namespace ndg;
  const CliArgs args(argc, argv);
  const auto threads = static_cast<std::size_t>(args.get_int("threads", 4));
  const auto eps = static_cast<float>(args.get_double("eps", 1e-3));
  const auto scale = static_cast<unsigned>(args.get_int("scale", 128));

  const Dataset d = make_dataset(DatasetId::kWebGoogle, scale);

  Timer color_timer;
  const Coloring coloring = greedy_color(d.graph);
  const double color_secs = color_timer.seconds();

  std::cout << "=== Scheduler ablation: BSP vs DE vs chromatic vs NE ===\n"
            << "(" << d.name << ", |V|=" << d.graph.num_vertices()
            << ", |E|=" << d.graph.num_edges() << ", threads=" << threads
            << "; coloring used " << coloring.num_colors << " colors, "
            << TextTable::num(color_secs * 1e3, 1) << " ms)\n\n";

  const IntervalPlan plan = make_intervals(d.graph, 4);
  TextTable table(
      {"graph", "algorithm", "scheduler", "iters", "updates", "ms", "conv"});
  bench_schedulers(d, "wcc", [] { return WccProgram(); }, threads, coloring,
                   color_secs, plan, table);
  bench_schedulers(d, "pagerank", [eps] { return PageRankProgram(eps); },
                   threads, coloring, color_secs, plan, table);
  table.print(std::cout);

  std::cout << "\nshape targets: BSP needs far more iterations than the "
               "asynchronous schedulers (Section I);\nchromatic pays the "
               "coloring + per-color barriers that NE avoids (Section VI).\n";
  return 0;
}
