// E6: scheduler ablation — the Section I / Section VI landscape measured on
// one graph. Compares, for WCC and PageRank:
//
//   BSP        — synchronous model: maximal parallelism, most iterations;
//   DE         — deterministic asynchronous (GraphChi external scheduler
//                semantics): fewest iterations, but a sequential schedule;
//   chromatic  — deterministic AND parallel, but pays a barrier per color
//                class per iteration ("huge time overheads" of plotting
//                deterministic execution paths);
//   NE         — nondeterministic asynchronous (relaxed atomics): async
//                iteration counts with barrier-per-iteration parallelism.
//
// Shape targets: iterations(BSP) >> iterations(DE) ≈ iterations(NE);
// chromatic matches DE's result bit-for-bit; NE needs no coloring phase.
//
// A second section ablates the NE engine's *worklist* (src/sched/) on a
// skewed RMAT graph: static blocks vs work stealing vs priority buckets,
// reporting degree-weighted load imbalance (max/mean per-thread work) and
// verifying every schedule against the sequential reference — the schedule
// changes the path, eligibility says it cannot change the answer.
//
// Flags: --scale=128 --threads=4 --eps=1e-3.

#include <algorithm>
#include <cmath>
#include <iostream>

#include "algorithms/pagerank.hpp"
#include "algorithms/reference/references.hpp"
#include "algorithms/sssp.hpp"
#include "algorithms/wcc.hpp"
#include "bench_common.hpp"
#include "engine/bsp.hpp"
#include "engine/chromatic.hpp"
#include "engine/deterministic.hpp"
#include "engine/nondeterministic.hpp"
#include "engine/psw.hpp"
#include "engine/pure_async.hpp"
#include "graph/generators.hpp"
#include "graph/graph_stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace ndg {
namespace {

template <typename MakeProgram>
void bench_schedulers(const Dataset& d, const char* algo,
                      MakeProgram make_prog, std::size_t threads,
                      const Coloring& coloring, double color_secs,
                      const IntervalPlan& plan, TextTable& table) {
  using Program = decltype(make_prog());
  using ED = typename Program::EdgeData;

  auto row = [&](const char* sched, const EngineResult& r, double extra = 0) {
    table.add_row({d.name, algo, sched, std::to_string(r.iterations),
                   std::to_string(r.updates),
                   TextTable::num((r.seconds + extra) * 1e3, 1),
                   TextTable::num(r.load_imbalance(), 2),
                   r.converged ? "yes" : "NO"});
  };

  EdgeDataArray<ED> edges(d.graph.num_edges());
  {
    Program prog = make_prog();
    prog.init(d.graph, edges);
    row("BSP", run_bsp(d.graph, prog, edges, 200000));
  }
  {
    Program prog = make_prog();
    prog.init(d.graph, edges);
    row("DE", run_deterministic(d.graph, prog, edges));
  }
  {
    Program prog = make_prog();
    prog.init(d.graph, edges);
    EngineOptions opts;
    opts.num_threads = threads;
    // The chromatic row charges the one-off coloring cost (the paper's
    // "plotting the execution path" overhead) to the run.
    row("chromatic", run_chromatic(d.graph, prog, edges, coloring, opts),
        color_secs);
  }
  {
    Program prog = make_prog();
    prog.init(d.graph, edges);
    EngineOptions opts;
    opts.num_threads = threads;
    const PswResult r = run_psw_deterministic(d.graph, prog, edges, plan, opts);
    table.add_row({d.name, algo,
                   "DE-psw (par " +
                       TextTable::num(100 * r.parallel_fraction(), 0) + "%)",
                   std::to_string(r.iterations), std::to_string(r.updates),
                   TextTable::num(r.seconds * 1e3, 1),
                   TextTable::num(r.load_imbalance(), 2),
                   r.converged ? "yes" : "NO"});
  }
  {
    Program prog = make_prog();
    prog.init(d.graph, edges);
    EngineOptions opts;
    opts.num_threads = threads;
    opts.mode = AtomicityMode::kRelaxed;
    row("NE", run_nondeterministic(d.graph, prog, edges, opts));
  }
  {
    Program prog = make_prog();
    prog.init(d.graph, edges);
    EngineOptions opts;
    opts.num_threads = threads;
    opts.mode = AtomicityMode::kRelaxed;
    row("pure-async", run_pure_async(d.graph, prog, edges, opts));
  }
}

// Worklist ablation on a skewed graph: RMAT's heavy tail makes a static
// block partition of the label-ordered frontier assign whole hub
// neighbourhoods to single threads, so degree-weighted work diverges even
// though update *counts* are equal by construction. Stealing should pull the
// imbalance toward 1; buckets reorder by π(v) and pay some imbalance back.
void bench_worklists(unsigned scale, std::size_t threads, float eps) {
  // Same --scale convention as the datasets: bigger divisor, smaller graph.
  const VertexId n = std::max<VertexId>(
      256, static_cast<VertexId>((1u << 22) / std::max(1u, scale)));
  // permute=false keeps the RMAT hubs at low labels, so the static block
  // partition of the ascending frontier hands thread 0 nearly all the degree
  // mass — the skew that motivates the stealing worklist. (The permuted
  // default would spread hubs uniformly and hide the effect.)
  gen::RmatOptions rmat_opts;
  rmat_opts.permute = false;
  EdgeList el = gen::rmat(n, static_cast<EdgeId>(16) * n, 20150707, rmat_opts);
  const Graph g = Graph::build(n, std::move(el));
  const VertexId source = max_out_degree_vertex(g);

  std::cout << "\n=== Worklist ablation: NE on skewed RMAT ===\n"
            << "(|V|=" << g.num_vertices() << ", |E|=" << g.num_edges()
            << ", threads=" << threads
            << "; imbal = max/mean degree-weighted per-thread work)\n\n";

  const auto ref_pr = ref::pagerank(g, 0.85, 1e-10);
  std::vector<float> weights(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    weights[e] = SsspProgram::edge_weight(42, e);
  }
  const auto ref_dist = ref::sssp(g, source, weights);

  TextTable table({"algorithm", "worklist", "iters", "updates", "ms", "imbal",
                   "steals", "matches ref"});
  for (const SchedulerKind kind :
       {SchedulerKind::kStaticBlock, SchedulerKind::kStealing,
        SchedulerKind::kBucket}) {
    EngineOptions opts;
    opts.num_threads = threads;
    opts.mode = AtomicityMode::kRelaxed;
    opts.scheduler = kind;
    {
      PageRankProgram prog(eps);
      EdgeDataArray<float> edges(g.num_edges());
      prog.init(g, edges);
      const EngineResult r = run_nondeterministic(g, prog, edges, opts);
      bool ok = r.converged;
      for (VertexId v = 0; ok && v < g.num_vertices(); ++v) {
        ok = std::fabs(prog.ranks()[v] - ref_pr[v]) <= 0.05 * ref_pr[v] + 0.01;
      }
      table.add_row({"pagerank", to_string(kind), std::to_string(r.iterations),
                     std::to_string(r.updates),
                     TextTable::num(r.seconds * 1e3, 1),
                     TextTable::num(r.load_imbalance(), 2),
                     std::to_string(r.steals), ok ? "yes" : "NO"});
    }
    {
      SsspProgram prog(source, 42);
      EdgeDataArray<SsspEdge> edges(g.num_edges());
      prog.init(g, edges);
      const EngineResult r = run_nondeterministic(g, prog, edges, opts);
      const bool ok = r.converged && prog.distances() == ref_dist;
      table.add_row({"sssp", to_string(kind), std::to_string(r.iterations),
                     std::to_string(r.updates),
                     TextTable::num(r.seconds * 1e3, 1),
                     TextTable::num(r.load_imbalance(), 2),
                     std::to_string(r.steals), ok ? "yes" : "NO"});
    }
  }
  table.print(std::cout);
  std::cout << "\nshape targets: stealing's imbal < static's imbal with "
               "steals > 0;\nevery worklist matches the reference (the "
               "schedule is free, the fixed point is not).\n";
}

}  // namespace
}  // namespace ndg

int main(int argc, char** argv) {
  using namespace ndg;
  const CliArgs args(argc, argv);
  const auto threads = static_cast<std::size_t>(args.get_int("threads", 4));
  const auto eps = static_cast<float>(args.get_double("eps", 1e-3));
  const auto scale = static_cast<unsigned>(args.get_int("scale", 128));

  const Dataset d = make_dataset(DatasetId::kWebGoogle, scale);

  Timer color_timer;
  const Coloring coloring = greedy_color(d.graph);
  const double color_secs = color_timer.seconds();

  std::cout << "=== Scheduler ablation: BSP vs DE vs chromatic vs NE ===\n"
            << "(" << d.name << ", |V|=" << d.graph.num_vertices()
            << ", |E|=" << d.graph.num_edges() << ", threads=" << threads
            << "; coloring used " << coloring.num_colors << " colors, "
            << TextTable::num(color_secs * 1e3, 1) << " ms)\n\n";

  const IntervalPlan plan = make_intervals(d.graph, 4);
  TextTable table({"graph", "algorithm", "scheduler", "iters", "updates", "ms",
                   "imbal", "conv"});
  bench_schedulers(d, "wcc", [] { return WccProgram(); }, threads, coloring,
                   color_secs, plan, table);
  bench_schedulers(d, "pagerank", [eps] { return PageRankProgram(eps); },
                   threads, coloring, color_secs, plan, table);
  table.print(std::cout);

  std::cout << "\nshape targets: BSP needs far more iterations than the "
               "asynchronous schedulers (Section I);\nchromatic pays the "
               "coloring + per-color barriers that NE avoids (Section VI).\n";

  bench_worklists(scale, threads, eps);
  return 0;
}
