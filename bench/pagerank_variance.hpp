#pragma once
// Shared machinery for Tables II & III (Section V-C): PageRank result
// variance across deterministic and nondeterministic executions.
//
// The paper runs each configuration 5 times on web-google and compares
// rankings by *difference degree*. Configurations:
//   DE    — external deterministic scheduler (bit-reproducible here, so
//           DE-vs-DE difference degree is |V|; the paper's small residual
//           variance came from float summation order, which our sequential
//           engine fixes);
//   kNE   — nondeterministic execution on k processors. Host-independent
//           reproduction uses the logical-processor simulator with k procs
//           and per-run seeds (each seed = one adversarial schedule); pass
//           threaded=true to use real threads instead (requires a multi-core
//           host for interesting variance).

#include <string>
#include <vector>

#include "algorithms/pagerank.hpp"
#include "core/difference_degree.hpp"
#include "engine/deterministic.hpp"
#include "engine/nondeterministic.hpp"
#include "engine/simulator.hpp"
#include "graph/graph.hpp"

namespace ndg::bench {

struct VarianceConfig {
  std::string name;        // "DE", "4NE", "8NE", "16NE"
  std::size_t procs = 1;   // 0 => deterministic
  bool deterministic = false;
};

inline std::vector<VarianceConfig> paper_configs() {
  return {{"DE", 1, true}, {"4NE", 4, false}, {"8NE", 8, false},
          {"16NE", 16, false}};
}

struct RunSet {
  VarianceConfig config;
  std::vector<std::vector<VertexId>> rankings;  // one per run
};

/// Executes `runs` PageRank runs of one configuration and returns rankings.
inline RunSet collect_runs(const Graph& g, const VarianceConfig& cfg, float eps,
                           int runs, bool threaded, std::size_t delay,
                           std::uint64_t seed_base) {
  RunSet out;
  out.config = cfg;
  for (int i = 0; i < runs; ++i) {
    PageRankProgram prog(eps);
    EdgeDataArray<float> edges(g.num_edges());
    prog.init(g, edges);
    if (cfg.deterministic) {
      run_deterministic(g, prog, edges);
    } else if (threaded) {
      EngineOptions opts;
      opts.num_threads = cfg.procs;
      opts.mode = AtomicityMode::kRelaxed;
      run_nondeterministic(g, prog, edges, opts);
    } else {
      SimOptions opts;
      opts.num_procs = cfg.procs;
      opts.delay = delay;
      // Jitter = d models run-to-run environmental noise (Section V-C); each
      // seed below is one independent noisy schedule.
      opts.delay_jitter = delay;
      opts.seed = seed_base + 1000003ULL * static_cast<std::uint64_t>(i) +
                  31ULL * cfg.procs;
      run_simulated(g, prog, edges, opts);
    }
    out.rankings.push_back(rank_vertices(prog.values()));
  }
  return out;
}

/// Average difference degree over all distinct pairs within one run set
/// (Table II: C(runs, 2) pairs).
inline double avg_within(const RunSet& rs) {
  double sum = 0;
  int n = 0;
  for (std::size_t i = 0; i < rs.rankings.size(); ++i) {
    for (std::size_t j = i + 1; j < rs.rankings.size(); ++j) {
      sum += static_cast<double>(difference_degree(rs.rankings[i], rs.rankings[j]));
      ++n;
    }
  }
  return n ? sum / n : 0.0;
}

/// Average difference degree over all cross pairs (Table III: runs² pairs).
inline double avg_between(const RunSet& a, const RunSet& b) {
  double sum = 0;
  int n = 0;
  for (const auto& ra : a.rankings) {
    for (const auto& rb : b.rankings) {
      sum += static_cast<double>(difference_degree(ra, rb));
      ++n;
    }
  }
  return n ? sum / n : 0.0;
}

/// Length of the ranking prefix on which EVERY run in every set agrees
/// (the paper: "for the pages with higher rank the results from all these
/// selected scenarios are identical").
inline std::size_t common_prefix(const std::vector<RunSet>& sets) {
  const std::vector<VertexId>* first = nullptr;
  std::size_t prefix = ~std::size_t{0};
  for (const RunSet& rs : sets) {
    for (const auto& r : rs.rankings) {
      if (first == nullptr) {
        first = &r;
        prefix = r.size();
      } else {
        prefix = std::min(prefix, difference_degree(*first, r));
      }
    }
  }
  return first ? prefix : 0;
}

}  // namespace ndg::bench
