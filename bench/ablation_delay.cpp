// Delay ablation (docs/DELAY.md): convergence cost of bounded staleness.
// Sweeps the propagation delay d over the registry algorithms on the
// web-google stand-in and reports, per (algorithm, d) cell: iterations to
// convergence, total updates, the staleness telemetry the delayed engine
// records (delayed writes, max/mean observed staleness), and wall time.
//
// Shape targets (Theorems 1 & 2 are delay-oblivious; Section IV):
//   * every cell converges — the verdict survives ANY bounded d;
//   * iterations rise (weakly) with d — staleness slows convergence, it
//     never breaks it. The d=0 row is the undelayed NE baseline by
//     construction (the wrapper dispatches to it).
//
// Flags: --scale=256 --delays=0,1,2,4,8 --algos=sssp,pagerank,wcc
//        --policy=fixed|uniform|per-thread --jitter=J --threads=4 --seed=7
//        --engine=ne|async --json=PATH (BENCH_delay.json for CI gating).

#include <iostream>

#include "algorithms/registry.hpp"
#include "bench_common.hpp"
#include "graph/graph_stats.hpp"
#include "util/table.hpp"

namespace {

std::vector<std::string> split_names(const std::string& csv) {
  std::vector<std::string> out;
  std::istringstream is(csv);
  std::string tok;
  while (std::getline(is, tok, ',')) {
    if (!tok.empty()) out.push_back(tok);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ndg;
  const CliArgs args(argc, argv);
  const auto scale = static_cast<unsigned>(args.get_int("scale", 256));
  const auto delays = bench::parse_list(args.get("delays", "0,1,2,4,8"));
  const auto algos = split_names(args.get("algos", "sssp,pagerank,wcc"));
  const auto threads = static_cast<std::size_t>(args.get_int("threads", 4));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 7));
  const auto jitter = static_cast<std::size_t>(args.get_int("jitter", 0));
  const std::string engine = args.get("engine", "ne");

  DelayKind kind = DelayKind::kFixed;
  if (args.has("policy") && !parse_delay_kind(args.get("policy", "fixed"), kind)) {
    std::cerr << "unknown --policy (expected fixed|uniform|per-thread)\n";
    return 1;
  }
  if (engine != "ne" && engine != "async") {
    std::cerr << "unknown --engine (expected ne|async)\n";
    return 1;
  }

  const Dataset d = make_dataset(DatasetId::kWebGoogle, scale);
  const VertexId source = max_out_degree_vertex(d.graph);

  std::cout << "=== Delay ablation: convergence iterations vs propagation "
               "delay d ===\n"
            << "(" << d.name << ", |V|=" << d.graph.num_vertices()
            << ", |E|=" << d.graph.num_edges() << "; engine=" << engine
            << ", policy=" << to_string(kind) << ", jitter=" << jitter
            << ", threads=" << threads << ", seed=" << seed << ")\n\n";

  TextTable table({"algorithm", "d", "iters", "updates", "conv",
                   "delayed_writes", "max_staleness", "mean_staleness", "ms"});
  bool all_converged = true;
  for (const auto& entry : algorithm_registry(source, 500000)) {
    bool wanted = false;
    for (const auto& name : algos) wanted = wanted || name == entry.name;
    if (!wanted) continue;
    for (const std::size_t delay : delays) {
      EngineOptions opts;
      opts.num_threads = threads;
      opts.delay.steps = delay;
      opts.delay.kind = kind;
      opts.delay.jitter = jitter;
      opts.delay.seed = seed;
      if (engine == "async") opts.scheduler = SchedulerKind::kStealing;
      const EngineResult r = engine == "async"
                                 ? entry.run_delayed_async(d.graph, opts)
                                 : entry.run_delayed(d.graph, opts);
      all_converged = all_converged && r.converged;
      table.add_row({entry.name, std::to_string(delay),
                     std::to_string(r.iterations), std::to_string(r.updates),
                     r.converged ? "yes" : "NO",
                     std::to_string(r.delayed_writes),
                     std::to_string(r.max_staleness),
                     TextTable::num(r.mean_staleness(), 2),
                     TextTable::num(r.seconds * 1e3, 1)});
    }
  }
  table.print(std::cout);

  if (args.has("json")) {
    const std::string path = args.get("json", "BENCH_delay.json");
    table.write_json(
        path, "{\"bench\":\"ablation_delay\",\"graph\":\"" +
                  json_escape(d.name) + "\",\"scale\":" + std::to_string(scale) +
                  ",\"engine\":\"" + json_escape(engine) + "\",\"policy\":\"" +
                  json_escape(to_string(kind)) +
                  "\",\"threads\":" + std::to_string(threads) +
                  ",\"seed\":" + std::to_string(seed) + "}");
    std::cout << "\nwrote " << path << "\n";
  }

  std::cout << "\nreading: iterations may rise with d (stale values cost "
               "extra rounds) but every cell must converge — Theorems 1 & 2 "
               "are delay-oblivious.\n";
  if (!all_converged) {
    std::cerr << "ERROR: a delayed run failed to converge\n";
    return 1;
  }
  return 0;
}
