#!/bin/sh
# End-to-end smoke test for ndg_serve (docs/DYNAMIC.md protocol).
#
# Drives a scripted session over stdin: SSSP on a 300-vertex chain, then
#   epoch 1: 120 shortcut inserts 0->v (weight 3)      -> warm (Theorem 2)
#   epoch 2: 5 weight DECREASES + 1 duplicate insert   -> warm, 1 rejected
#   epoch 3: 1 delete                                  -> gate forces COLD
# and greps the JSON replies for exact distances the chain topology pins
# down (the only path to a shortcut target is the inserted edge itself).
#
# Usage: serve_smoke.sh <path-to-ndg_serve> [workdir]
set -u

SERVE="$1"
WORK="${2:-$(mktemp -d)}"
mkdir -p "$WORK"
SESSION="$WORK/session.jsonl"
OUT="$WORK/serve_out.jsonl"

fail() {
    echo "FAIL: $1" >&2
    echo "--- server output ---" >&2
    cat "$OUT" >&2 2>/dev/null
    exit 1
}

check() {
    grep -q "$1" "$OUT" || fail "expected reply matching: $1"
}

# --- build the scripted session -------------------------------------------
: > "$SESSION"

# Epoch 1: 120 inserts 0->v, v = 2..121, weight 3. The chain path to any of
# these costs >= v-1 >= 1 hops of weight >= 1, so dist(v) becomes exactly 3.
v=2
while [ "$v" -le 121 ]; do
    echo "{\"op\":\"mutate\",\"kind\":\"insert\",\"src\":0,\"dst\":$v,\"weight\":3}" >> "$SESSION"
    v=$((v + 1))
done
cat >> "$SESSION" <<'EOF'
{"op":"recompute"}
{"op":"query","vertex":50}
{"op":"query","vertex":121}
EOF

# Epoch 2: monotone weight decreases (warm under Theorem 2) plus one
# duplicate insert that must be rejected without spoiling the batch.
cat >> "$SESSION" <<'EOF'
{"op":"mutate","kind":"weight","src":0,"dst":50,"weight":1.25}
{"op":"mutate","kind":"weight","src":0,"dst":51,"weight":2}
{"op":"mutate","kind":"weight","src":0,"dst":52,"weight":2}
{"op":"mutate","kind":"weight","src":0,"dst":53,"weight":2}
{"op":"mutate","kind":"weight","src":0,"dst":54,"weight":2}
{"op":"mutate","kind":"insert","src":0,"dst":50,"weight":9}
{"op":"recompute"}
{"op":"query","vertex":50}
{"op":"query","vertex":51}
EOF

# Epoch 3: a delete is outside SSSP's monotone envelope -> cold recompute.
cat >> "$SESSION" <<'EOF'
{"op":"mutate","kind":"delete","src":0,"dst":60}
{"op":"recompute"}
{"op":"query","vertex":50}
{"op":"stats"}
{"op":"quit"}
EOF

# --- run -------------------------------------------------------------------
"$SERVE" --algo=sssp --kind=chain --vertices=300 --gate=theorem2 \
         --engine=ne --threads=4 < "$SESSION" > "$OUT" \
    || fail "ndg_serve exited non-zero"

# --- verify ----------------------------------------------------------------
check '"ready":true'
check '"verdict":"theorem-2"'

# Epoch 1: warm start, all 120 inserts land.
check '"epoch":1,"warm":true,"reason":"theorem-2-monotone-batch","applied":120,"rejected":0'
check '"vertex":50,"value":3,"epoch":1'
check '"vertex":121,"value":3,"epoch":1'

# Epoch 2: still warm; the duplicate insert is rejected, the decrease lands.
check '"epoch":2,"warm":true,"reason":"theorem-2-monotone-batch","applied":5,"rejected":1'
check '"vertex":50,"value":1.25,"epoch":2'
check '"vertex":51,"value":2,"epoch":2'

# Epoch 3: delete forces the cold path; earlier answers stay consistent.
check '"epoch":3,"warm":false,"reason":"non-monotone-mutation"'
check '"vertex":50,"value":1.25,"epoch":3'
check '"total_mutations":127'
check '"warm_runs":2'
check '"bye":true'

grep -q '"converged":false' "$OUT" && fail "an epoch failed to converge"
grep -q '"ok":false' "$OUT" && fail "a command errored"

# --- unix-socket transport (when a python3 client is available) ------------
# Two clients share one server: A stays on newline JSON while B upgrades to
# the bin1 framing ({"op":"hello","proto":"bin1"}, docs/DYNAMIC.md). Both
# feed the same mutation log and read the same epoch, proving the protocols
# interoperate. `quit` over a socket is scoped to the issuing connection; the
# server only stops with it when started with --allow-shutdown (as here).
if command -v python3 > /dev/null 2>&1; then
    SOCK="$WORK/serve.sock"
    "$SERVE" --algo=wcc --kind=chain --vertices=64 --gate=theorem2 \
             --threads=2 --socket="$SOCK" --allow-shutdown &
    SERVER_PID=$!
    i=0
    while [ ! -S "$SOCK" ] && [ "$i" -lt 100 ]; do
        sleep 0.1
        i=$((i + 1))
    done
    [ -S "$SOCK" ] || { kill "$SERVER_PID" 2>/dev/null; fail "socket never appeared"; }

    python3 - "$SOCK" > "$OUT" <<'PYEOF'
import socket, struct, sys

def connect(path):
    s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    s.connect(path)
    return s, [b""]

def read_line(s, buf):
    while b"\n" not in buf[0]:
        chunk = s.recv(4096)
        if not chunk:
            raise SystemExit("connection closed early")
        buf[0] += chunk
    line, buf[0] = buf[0].split(b"\n", 1)
    return line.decode()

def frame(ty, payload=b""):
    return struct.pack("<IB", len(payload), ty) + payload

def read_frame(s, buf):
    while len(buf[0]) < 5:
        buf[0] += s.recv(4096)
    n, ty = struct.unpack("<IB", buf[0][:5])
    while len(buf[0]) < 5 + n:
        buf[0] += s.recv(4096)
    payload, buf[0] = buf[0][5:5 + n], buf[0][5 + n:]
    return ty, payload

a, abuf = connect(sys.argv[1])
b, bbuf = connect(sys.argv[1])
print(read_line(a, abuf))  # greeting A
print(read_line(b, bbuf))  # greeting B

# B upgrades to bin1, pipelining its first frame behind the hello line:
# kMutate (0x02) insert 0 -> 62.
mut = struct.pack("<BIIf", 0, 0, 62, 1.0)
b.sendall(b'{"op":"hello","proto":"bin1"}\n' + frame(0x02, mut))
print(read_line(b, bbuf))  # hello reply: {"ok":true,"proto":"bin1"}
ty, p = read_frame(b, bbuf)
assert ty == 0x03, ty  # kMutateAck
print('bin_mutate_ack pending=%d' % struct.unpack("<Q", p)[0])

# A (JSON) appends to the same log: its ack counts B's mutation too.
a.sendall(b'{"op":"mutate","kind":"insert","src":0,"dst":63,"weight":1}\n'
          b'{"op":"recompute"}\n'
          b'{"op":"query","vertex":63}\n')
print(read_line(a, abuf))  # pending:2
print(read_line(a, abuf))  # recompute epoch 1 (applied:2)
print(read_line(a, abuf))  # query 63

# B reads the epoch A's recompute built, over frames: kQuery (0x06).
b.sendall(frame(0x06, struct.pack("<Q", 62)))
ty, p = read_frame(b, bbuf)
assert ty == 0x07, ty  # kQueryReply
flags, vertex, value, epoch = struct.unpack("<BQdQ", p)
print('bin_query vertex=%d value=%g epoch=%d' % (vertex, value, epoch))

# A leaves with a plain disconnect; B then stops the whole server with a
# kQuit (0x0B) frame -> kBye (0x0C), sanctioned by --allow-shutdown.
a.close()
b.sendall(frame(0x0B))
ty, p = read_frame(b, bbuf)
assert ty == 0x0C, ty
print('bin_bye')
PYEOF
    [ "$?" -eq 0 ] || { kill "$SERVER_PID" 2>/dev/null; fail "socket clients failed"; }
    wait "$SERVER_PID" || fail "socket-mode server exited non-zero"
    check '"ready":true'
    check '"proto":"bin1"'
    check 'bin_mutate_ack pending=1'
    check '"pending":2'
    check '"epoch":1,"warm":true'
    check '"applied":2'
    check '"vertex":63,"value":0,"epoch":1'
    check 'bin_query vertex=62 value=0 epoch=1'
    check 'bin_bye'

    # --- multi-client live-query session (--live-queries) -------------------
    # Client A pipelines mutations + recompute; the engine-run phase is held
    # open for 400ms so client B reliably lands a query INSIDE the racy run
    # and gets a "quiescent":false reply stamped with the in-flight epoch.
    # B's quit then stops the server (sanctioned by --allow-shutdown); the
    # connection-scoped quit behavior is pinned by test_serve_multiclient.
    SOCK2="$WORK/serve_live.sock"
    "$SERVE" --algo=sssp --kind=chain --vertices=2000 --gate=theorem2 \
             --threads=4 --socket="$SOCK2" \
             --live-queries --allow-shutdown --epoch-hold-ms=400 &
    SERVER_PID=$!
    i=0
    while [ ! -S "$SOCK2" ] && [ "$i" -lt 100 ]; do
        sleep 0.1
        i=$((i + 1))
    done
    [ -S "$SOCK2" ] || { kill "$SERVER_PID" 2>/dev/null; fail "live socket never appeared"; }

    python3 - "$SOCK2" > "$OUT" <<'PYEOF'
import socket, sys, time

def connect(path):
    s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    s.connect(path)
    return s, [b""]

def read_line(s, buf, timeout=30.0):
    s.settimeout(timeout)
    while b"\n" not in buf[0]:
        chunk = s.recv(4096)
        if not chunk:
            raise SystemExit("connection closed early")
        buf[0] += chunk
    line, buf[0] = buf[0].split(b"\n", 1)
    return line.decode()

a, abuf = connect(sys.argv[1])
b, bbuf = connect(sys.argv[1])
print(read_line(a, abuf))  # greeting A
print(read_line(b, bbuf))  # greeting B

# A: a burst of shortcut inserts, then recompute, all pipelined.
msgs = []
for v in range(2, 102):
    msgs.append('{"op":"mutate","kind":"insert","src":0,"dst":%d,"weight":3}' % v)
msgs.append('{"op":"recompute"}')
a.sendall(("\n".join(msgs) + "\n").encode())
for _ in range(100):
    read_line(a, abuf)  # mutate acks

# B: poll until a reply lands inside the held engine run.
deadline = time.time() + 20.0
saw_live = False
while time.time() < deadline and not saw_live:
    b.sendall(b'{"op":"query","vertex":50}\n')
    reply = read_line(b, bbuf)
    print(reply)
    saw_live = '"quiescent":false' in reply
if not saw_live:
    raise SystemExit("never saw a quiescent:false reply")

print(read_line(a, abuf))  # A's recompute reply (epoch landed)
a.close()  # plain disconnect: the server just reaps the connection

# B sees the quiescent value at the new epoch, then stops the whole server.
b.sendall(b'{"op":"query","vertex":50}\n{"op":"quit"}\n')
print(read_line(b, bbuf))
print(read_line(b, bbuf))
PYEOF
    [ "$?" -eq 0 ] || { kill "$SERVER_PID" 2>/dev/null; fail "live-query client failed"; }
    wait "$SERVER_PID" || fail "live-query server exited non-zero"
    check '"quiescent":false'
    check '"epoch":1,"warm":true'
    check '"vertex":50,"value":3,"quiescent":true,"epoch":1'
    check '"bye":true'
else
    echo "note: python3 not found; skipping unix-socket transport check"
fi

echo "serve_smoke: OK"
