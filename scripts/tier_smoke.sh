#!/bin/sh
# End-to-end smoke test for the replicated serving tier (docs/TIER.md).
#
# Launches ndg_tier (coordinator + 2 replicas, SSSP on a 400-vertex chain,
# Theorem 2 gate) and drives a mixed read/write session from python3:
#   epoch 1: 40 shortcut inserts 0->v (weight 3)  -> warm, dist(v) = 3
#   epoch 2: 1 weight DECREASE 0->20 (to 1.5)     -> warm, dist(20) = 1.5
# After each epoch the client waits for the replication watermark to reach
# the coordinator's epoch, then asserts both replicas answer point queries
# with exactly the coordinator's values and the right epoch stamp.
#
# Usage: tier_smoke.sh <path-to-ndg_tier> [workdir]
set -u

TIER="$1"
WORK="${2:-$(mktemp -d)}"
mkdir -p "$WORK"
OUT="$WORK/tier_out.txt"

if ! command -v python3 > /dev/null 2>&1; then
    echo "note: python3 not found; skipping tier smoke"
    exit 0
fi

# Sockets live in a fresh /tmp dir: sun_path is ~108 bytes and build trees
# (especially on CI) can push a workdir-based path past it.
DIR=$(mktemp -d /tmp/ndg_tier_smoke_XXXXXX)
trap 'rm -rf "$DIR"' EXIT

fail() {
    echo "FAIL: $1" >&2
    echo "--- client/launcher output ---" >&2
    cat "$OUT" >&2 2>/dev/null
    exit 1
}

check() {
    grep -q "$1" "$OUT" || fail "expected output matching: $1"
}

"$TIER" --dir="$DIR" --replicas=2 --algo=sssp --kind=chain --vertices=400 \
        --gate=theorem2 --threads=2 > "$WORK/launcher.log" 2>&1 &
TIER_PID=$!

python3 - "$DIR" > "$OUT" 2>&1 <<'PYEOF'
import json, socket, sys, time

DIR = sys.argv[1]

def connect(path, timeout=20.0):
    deadline = time.time() + timeout
    while True:
        s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            s.connect(path)
            f = s.makefile("rw")
            f.readline()  # greeting
            return s, f
        except OSError:
            s.close()
            if time.time() > deadline:
                raise SystemExit("could not connect to " + path)
            time.sleep(0.05)

def rpc(f, obj):
    f.write(json.dumps(obj) + "\n")
    f.flush()
    line = f.readline()
    if not line:
        raise SystemExit("connection closed mid-rpc")
    return line.strip()

def field(line, key):
    return json.loads(line).get(key)

coord_s, coord = connect(DIR + "/coord.sock")

# Both replicas must finish their sync handshake before the watermark
# means anything.
deadline = time.time() + 20.0
while field(rpc(coord, {"op": "stats"}), "replicas") != 2:
    if time.time() > deadline:
        raise SystemExit("replicas never synced")
    time.sleep(0.05)

def wait_watermark(epoch):
    deadline = time.time() + 20.0
    while True:
        st = rpc(coord, {"op": "stats"})
        if field(st, "epoch_watermark") == epoch:
            return st
        if time.time() > deadline:
            raise SystemExit("watermark never reached epoch %d: %s" % (epoch, st))
        time.sleep(0.05)

replicas = [connect(DIR + "/replica-%d.sock" % k) for k in (0, 1)]

# Epoch 1: shortcut inserts; chain distances collapse to exactly 3.
for v in range(2, 42):
    rpc(coord, {"op": "mutate", "kind": "insert", "src": 0, "dst": v, "weight": 3})
print("RECOMPUTE1", rpc(coord, {"op": "recompute"}))
print("COORD1", rpc(coord, {"op": "query", "vertex": 20}))
print("STATS1", wait_watermark(1))
for k, (_, f) in enumerate(replicas):
    print("REPLICA%d_E1" % k, rpc(f, {"op": "query", "vertex": 20}))

# Epoch 2: a monotone weight decrease, interleaved with reads on one
# replica BEFORE the recompute (it must still answer at epoch 1).
print("STALE_READ", rpc(replicas[0][1], {"op": "query", "vertex": 30}))
rpc(coord, {"op": "mutate", "kind": "weight", "src": 0, "dst": 20, "weight": 1.5})
print("RECOMPUTE2", rpc(coord, {"op": "recompute"}))
print("STATS2", wait_watermark(2))
for k, (_, f) in enumerate(replicas):
    print("REPLICA%d_E2" % k, rpc(f, {"op": "query", "vertex": 20}))
    print("REPLICA%d_STATS" % k, rpc(f, {"op": "stats"}))

rpc(coord, {"op": "shutdown"})
PYEOF
[ "$?" -eq 0 ] || { kill "$TIER_PID" 2>/dev/null; fail "tier client failed"; }

wait "$TIER_PID" || fail "ndg_tier exited non-zero"
cat "$WORK/launcher.log" >> "$OUT"

check 'RECOMPUTE1 .*"epoch":1,"warm":true'
check 'COORD1 .*"vertex":20,"value":3,"epoch":1'
check 'REPLICA0_E1 .*"vertex":20,"value":3,"epoch":1,"replica":0'
check 'REPLICA1_E1 .*"vertex":20,"value":3,"epoch":1,"replica":1'
check 'STALE_READ .*"vertex":30,"value":3,"epoch":1'
check 'RECOMPUTE2 .*"epoch":2,"warm":true'
check 'REPLICA0_E2 .*"vertex":20,"value":1.5,"epoch":2,"replica":0'
check 'REPLICA1_E2 .*"vertex":20,"value":1.5,"epoch":2,"replica":1'
check 'REPLICA0_STATS .*"records_replayed":2'
check 'REPLICA1_STATS .*"records_replayed":2'

grep -q '"ok":false' "$OUT" && fail "a command errored"

echo "tier_smoke: OK"
