#!/usr/bin/env python3
"""Compare two bench JSON manifests and flag metric regressions.

Usage:  bench_diff.py BASELINE.json CANDIDATE.json [--threshold=0.10]
                      [--metric=ms] [--key=benchmark,config,threads]

Both files must be TextTable::write_json manifests:
    {"config": {...}, "rows": [{"benchmark": ..., "config": ..., "ms": ...}]}

Rows are matched on the key columns (default: benchmark, config, threads).
--metric takes a comma list; each entry may carry a direction suffix:
``ms`` or ``ms:lower`` (lower is better, the default) or
``ops_per_s:higher`` (higher is better). A row regresses when it moves past
the threshold in the bad direction on any listed metric, e.g. for
BENCH_serve.json:

    bench_diff.py base.json BENCH_serve.json --key=scenario \\
        --metric=ops_per_s:higher,p99_us:lower

Rows missing a metric (older manifests, or a scenario that records no
latency) and non-numeric cells are skipped for that metric rather than
failing the diff — the bench grid may grow fields between revisions. Exit
status: 0 clean (including a missing baseline file, which is normal on a
fresh branch), 1 regressions found, 2 usage/parse error.

Timings from the one-core CI runner are noisy; the default 10% threshold is
meant to catch step-function regressions (an accidental O(log V) hot path,
a lost representation switch), not percent-level drift.
"""

import json
import os
import sys


def parse_metrics(spec):
    metrics = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        if ":" in part:
            name, direction = part.split(":", 1)
            if direction not in ("lower", "higher"):
                raise SystemExit(
                    f"bad metric direction in {part!r} "
                    "(expected NAME, NAME:lower, or NAME:higher)")
        else:
            name, direction = part, "lower"
        metrics.append((name, direction))
    if not metrics:
        raise SystemExit("--metric= needs at least one metric name")
    return metrics


def parse_args(argv):
    opts = {"threshold": 0.10, "metrics": [("ms", "lower")],
            "key": ["benchmark", "config", "threads"]}
    files = []
    for arg in argv:
        if arg.startswith("--threshold="):
            opts["threshold"] = float(arg.split("=", 1)[1])
        elif arg.startswith("--metric="):
            opts["metrics"] = parse_metrics(arg.split("=", 1)[1])
        elif arg.startswith("--key="):
            opts["key"] = [c for c in arg.split("=", 1)[1].split(",") if c]
        elif arg.startswith("--"):
            raise SystemExit(f"unknown flag: {arg}")
        else:
            files.append(arg)
    if len(files) != 2:
        raise SystemExit(__doc__)
    return files[0], files[1], opts


def load_rows(path, key_cols):
    """Maps key tuple -> full row dict; metric extraction happens later so
    a row missing one metric still participates in the others."""
    try:
        with open(path) as f:
            manifest = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_diff: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    rows = {}
    for row in manifest.get("rows", []):
        if not isinstance(row, dict):
            continue
        key = tuple(str(row.get(c, "")) for c in key_cols)
        rows[key] = row
    return rows


def metric_value(row, metric):
    """Float value of `metric` in `row`, or None when absent/malformed."""
    v = row.get(metric)
    if v is None or isinstance(v, bool):
        return None
    try:
        return float(v)
    except (TypeError, ValueError):
        return None


def main(argv):
    baseline_path, candidate_path, opts = parse_args(argv)
    # The CANDIDATE manifest is this build's own output: if it is missing or
    # unparseable the bench build/run itself is broken, and the gate must
    # fail loudly (exit 2) rather than pass because the baseline also
    # happened to be absent. Validate it before the missing-baseline check.
    if not os.path.exists(candidate_path):
        print(f"bench_diff: candidate manifest missing: {candidate_path} "
              "(the bench did not produce its JSON — broken build/run?)",
              file=sys.stderr)
        sys.exit(2)
    cand = load_rows(candidate_path, opts["key"])
    if not os.path.exists(baseline_path):
        # First run on a fresh branch/runner: there is nothing to diff
        # against, which is expected, not an error — CI promotes the
        # candidate manifest to become the next baseline.
        print(f"bench_diff: no baseline at {baseline_path}; "
              "nothing to compare (treating as success)")
        return 0
    base = load_rows(baseline_path, opts["key"])

    regressions = []
    improvements = []
    matched = 0
    for key in sorted(base.keys() & cand.keys()):
        matched += 1
        for metric, direction in opts["metrics"]:
            b = metric_value(base[key], metric)
            c = metric_value(cand[key], metric)
            if b is None or c is None or b <= 0:
                continue
            # delta > 0 means the candidate is larger; whether that is a
            # regression depends on the metric's direction.
            delta = c / b - 1.0
            bad = delta > opts["threshold"] if direction == "lower" \
                else delta < -opts["threshold"]
            good = delta < -opts["threshold"] if direction == "lower" \
                else delta > opts["threshold"]
            label = "/".join(key) + f" [{metric}]"
            if bad:
                regressions.append((label, b, c, delta))
            elif good:
                improvements.append((label, b, c, delta))

    only_base = sorted(base.keys() - cand.keys())
    only_cand = sorted(cand.keys() - base.keys())

    names = ",".join(f"{m}:{d}" for m, d in opts["metrics"])
    print(f"bench_diff: {matched} matched rows, "
          f"metrics={names}, threshold={opts['threshold']:.0%}")
    for label, b, c, delta in improvements:
        print(f"  improved   {label}: {b:.3f} -> {c:.3f} ({delta:+.1%})")
    for key in only_base:
        print(f"  baseline-only row: {'/'.join(key)}")
    for key in only_cand:
        print(f"  candidate-only row: {'/'.join(key)}")
    if regressions:
        print(f"FAIL: {len(regressions)} regression(s) past "
              f"{opts['threshold']:.0%}:")
        for label, b, c, delta in regressions:
            print(f"  REGRESSED  {label}: {b:.3f} -> {c:.3f} ({delta:+.1%})")
        return 1
    print("OK: no regressions past threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
