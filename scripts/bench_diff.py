#!/usr/bin/env python3
"""Compare two bench JSON manifests and flag wall-time regressions.

Usage:  bench_diff.py BASELINE.json CANDIDATE.json [--threshold=0.10]
                      [--metric=ms] [--key=benchmark,config,threads]

Both files must be TextTable::write_json manifests:
    {"config": {...}, "rows": [{"benchmark": ..., "config": ..., "ms": ...}]}

Rows are matched on the key columns (default: benchmark, config, threads).
A row regresses when candidate/baseline - 1 > threshold on the metric
(default: ms, lower is better). Exit status: 0 clean (including a missing
baseline file, which is normal on a fresh branch), 1 regressions found,
2 usage/parse error. Rows present on only one side are reported but do not
fail the diff (the bench grid may grow between revisions).

Timings from the one-core CI runner are noisy; the default 10% threshold is
meant to catch step-function regressions (an accidental O(log V) hot path,
a lost representation switch), not percent-level drift.
"""

import json
import os
import sys


def parse_args(argv):
    opts = {"threshold": 0.10, "metric": "ms",
            "key": ["benchmark", "config", "threads"]}
    files = []
    for arg in argv:
        if arg.startswith("--threshold="):
            opts["threshold"] = float(arg.split("=", 1)[1])
        elif arg.startswith("--metric="):
            opts["metric"] = arg.split("=", 1)[1]
        elif arg.startswith("--key="):
            opts["key"] = [c for c in arg.split("=", 1)[1].split(",") if c]
        elif arg.startswith("--"):
            raise SystemExit(f"unknown flag: {arg}")
        else:
            files.append(arg)
    if len(files) != 2:
        raise SystemExit(__doc__)
    return files[0], files[1], opts


def load_rows(path, key_cols, metric):
    try:
        with open(path) as f:
            manifest = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_diff: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    rows = {}
    for row in manifest.get("rows", []):
        if metric not in row:
            continue
        key = tuple(str(row.get(c, "")) for c in key_cols)
        rows[key] = float(row[metric])
    return rows


def main(argv):
    baseline_path, candidate_path, opts = parse_args(argv)
    if not os.path.exists(baseline_path):
        # First run on a fresh branch/runner: there is nothing to diff
        # against, which is expected, not an error — CI promotes the
        # candidate manifest to become the next baseline.
        print(f"bench_diff: no baseline at {baseline_path}; "
              "nothing to compare (treating as success)")
        return 0
    base = load_rows(baseline_path, opts["key"], opts["metric"])
    cand = load_rows(candidate_path, opts["key"], opts["metric"])

    regressions = []
    improvements = []
    for key in sorted(base.keys() & cand.keys()):
        b, c = base[key], cand[key]
        if b <= 0:
            continue
        delta = c / b - 1.0
        label = "/".join(key)
        if delta > opts["threshold"]:
            regressions.append((label, b, c, delta))
        elif delta < -opts["threshold"]:
            improvements.append((label, b, c, delta))

    only_base = sorted(base.keys() - cand.keys())
    only_cand = sorted(cand.keys() - base.keys())

    print(f"bench_diff: {len(base.keys() & cand.keys())} matched rows, "
          f"metric={opts['metric']}, threshold={opts['threshold']:.0%}")
    for label, b, c, delta in improvements:
        print(f"  improved   {label}: {b:.3f} -> {c:.3f} ({delta:+.1%})")
    for key in only_base:
        print(f"  baseline-only row: {'/'.join(key)}")
    for key in only_cand:
        print(f"  candidate-only row: {'/'.join(key)}")
    if regressions:
        print(f"FAIL: {len(regressions)} regression(s) past "
              f"{opts['threshold']:.0%}:")
        for label, b, c, delta in regressions:
            print(f"  REGRESSED  {label}: {b:.3f} -> {c:.3f} ({delta:+.1%})")
        return 1
    print("OK: no regressions past threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
