#!/bin/sh
# Full reproduction pipeline: build, test, run every bench, archive outputs.
set -eu

cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build 2>&1 | tee test_output.txt
for b in build/bench/*; do "$b"; done 2>&1 | tee bench_output.txt

echo
echo "done: test_output.txt + bench_output.txt written."
