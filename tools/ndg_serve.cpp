// ndg_serve — long-running streaming front-end for the dyn/ subsystem
// (docs/DYNAMIC.md). Speaks one flat JSON object per line (dyn/wire.hpp)
// over stdin/stdout or a unix socket (--socket=PATH):
//
//   {"op":"mutate","kind":"insert","src":3,"dst":7,"weight":2.5}
//   {"op":"recompute"}            seal the pending batch as one epoch and
//                                 warm- or cold-recompute behind the gate
//   {"op":"query","vertex":7}     read one vertex result from the live array
//   {"op":"stats"}                log / graph / engine counters
//   {"op":"quit"}
//
// Mutations accumulate in a MutationLog and are batched BY EPOCH: everything
// appended between two `recompute` commands seals into one MutationBatch.
// The command loop is single-threaded and only touches result arrays between
// epochs (the engines have joined their teams), so queries are data-race-free
// by construction — the TSan CI job runs a scripted session over this loop.

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cmath>
#include <csignal>
#include <cstring>
#include <iostream>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "dyn/dyn_graph.hpp"
#include "dyn/eligibility_gate.hpp"
#include "dyn/incremental.hpp"
#include "dyn/mutation_log.hpp"
#include "dyn/wire.hpp"
#include "nondetgraph.hpp"
#include "util/cli.hpp"

namespace ndg {
namespace {

struct ServeConfig {
  dyn::GateMode gate = dyn::GateMode::kAnalyze;
  dyn::DynEngine engine = dyn::DynEngine::kNE;
  EngineOptions engine_opts;
  double compact_threshold = 0.25;
  std::string socket_path;  // empty = stdin/stdout
};

AtomicityMode parse_mode(const std::string& s) {
  if (s == "locked") return AtomicityMode::kLocked;
  if (s == "aligned") return AtomicityMode::kAligned;
  if (s == "seq_cst") return AtomicityMode::kSeqCst;
  return AtomicityMode::kRelaxed;
}

/// Compact wire token for the verdict (core's to_string is a prose line).
const char* verdict_token(EligibilityVerdict v) {
  switch (v) {
    case EligibilityVerdict::kTheorem1: return "theorem-1";
    case EligibilityVerdict::kTheorem2: return "theorem-2";
    case EligibilityVerdict::kNotProven: return "not-proven";
  }
  return "unknown";
}

std::optional<dyn::GateMode> parse_gate(const std::string& s) {
  if (s == "analyze") return dyn::GateMode::kAnalyze;
  if (s == "static") return dyn::GateMode::kStatic;
  if (s == "theorem1") return dyn::GateMode::kAssumeTheorem1;
  if (s == "theorem2") return dyn::GateMode::kAssumeTheorem2;
  if (s == "ineligible") return dyn::GateMode::kAssumeIneligible;
  return std::nullopt;
}

// --- Line transports -------------------------------------------------------

/// stdin/stdout transport.
class StdioTransport {
 public:
  /// Emitted once, immediately (there is exactly one implicit "connection").
  void set_greeting(const std::string& g) { write_line(g); }
  bool read_line(std::string& line) {
    return static_cast<bool>(std::getline(std::cin, line));
  }
  void write_line(const std::string& reply) {
    std::cout << reply << '\n' << std::flush;
  }
};

/// One-connection-at-a-time AF_UNIX stream transport. A client disconnect
/// falls through to the next accept(); only `quit` stops the server.
class UnixSocketTransport {
 public:
  explicit UnixSocketTransport(const std::string& path) : path_(path) {
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) throw std::runtime_error("socket() failed");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
      throw std::runtime_error("socket path too long: " + path);
    }
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    ::unlink(path.c_str());
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listen_fd_, 4) != 0) {
      ::close(listen_fd_);
      throw std::runtime_error("bind/listen failed on " + path);
    }
  }

  ~UnixSocketTransport() {
    if (conn_fd_ >= 0) ::close(conn_fd_);
    if (listen_fd_ >= 0) ::close(listen_fd_);
    ::unlink(path_.c_str());
  }

  /// Replayed to every client on accept, so each connection starts with the
  /// server's ready line.
  void set_greeting(const std::string& g) { greeting_ = g; }

  bool read_line(std::string& line) {
    for (;;) {
      if (conn_fd_ < 0) {
        conn_fd_ = ::accept(listen_fd_, nullptr, nullptr);
        if (conn_fd_ < 0) return false;
        buf_.clear();
        if (!greeting_.empty()) write_line(greeting_);
      }
      const std::size_t nl = buf_.find('\n');
      if (nl != std::string::npos) {
        line.assign(buf_, 0, nl);
        buf_.erase(0, nl + 1);
        return true;
      }
      char chunk[4096];
      const ssize_t n = ::read(conn_fd_, chunk, sizeof(chunk));
      if (n <= 0) {  // client hung up: drain any unterminated tail, re-accept
        ::close(conn_fd_);
        conn_fd_ = -1;
        if (!buf_.empty()) {
          line = std::exchange(buf_, {});
          return true;
        }
        continue;
      }
      buf_.append(chunk, static_cast<std::size_t>(n));
    }
  }

  void write_line(const std::string& reply) {
    if (conn_fd_ < 0) return;
    std::string out = reply + '\n';
    std::size_t off = 0;
    while (off < out.size()) {
      const ssize_t n = ::write(conn_fd_, out.data() + off, out.size() - off);
      if (n <= 0) break;
      off += static_cast<std::size_t>(n);
    }
  }

 private:
  std::string path_;
  std::string greeting_;
  int listen_fd_ = -1;
  int conn_fd_ = -1;
  std::string buf_;
};

// --- Command handling ------------------------------------------------------

std::string error_reply(const std::string& what) {
  return dyn::WireWriter().boolean("ok", false).str("error", what).finish();
}

/// One live algorithm instance: log + graph + gate + incremental engine,
/// plus a result cache refreshed at each quiescent point (cold start and
/// every recompute) so queries never re-copy the whole result vector.
template <typename Program>
class Session {
 public:
  Session(dyn::DynGraph graph, Program prog, const ServeConfig& cfg)
      : g_(std::move(graph)),
        prog_(std::move(prog)),
        inc_(g_, prog_,
             dyn::EligibilityGate::make(cfg.gate, g_.base(), prog_),
             cfg.engine_opts, cfg.engine) {
    inc_.recompute_cold();
    values_ = prog_.values();
  }

  [[nodiscard]] std::string ready_line() const {
    return dyn::WireWriter()
        .boolean("ok", true)
        .boolean("ready", true)
        .str("algo", prog_.name())
        .str("verdict", verdict_token(inc_.gate().verdict()))
        .str("engine", to_string(inc_.engine_kind()))
        .u64("vertices", g_.num_vertices())
        .u64("live_edges", g_.num_live_edges())
        .finish();
  }

  /// Handles one parsed command; sets `quit` on the quit op.
  std::string handle(const dyn::WireMessage& msg, bool& quit) {
    std::string op;
    if (!msg.get_string("op", op)) return error_reply("missing field: op");
    if (op == "mutate") return handle_mutate(msg);
    if (op == "recompute") return handle_recompute();
    if (op == "query") return handle_query(msg);
    if (op == "stats") return handle_stats();
    if (op == "quit") {
      quit = true;
      return dyn::WireWriter().boolean("ok", true).boolean("bye", true)
          .finish();
    }
    return error_reply("unknown op: " + op);
  }

 private:
  std::string handle_mutate(const dyn::WireMessage& msg) {
    std::string kind_s;
    std::uint64_t src = 0;
    std::uint64_t dst = 0;
    if (!msg.get_string("kind", kind_s)) {
      return error_reply("mutate: missing field: kind");
    }
    dyn::MutationKind kind;
    if (kind_s == "insert") {
      kind = dyn::MutationKind::kInsertEdge;
    } else if (kind_s == "delete") {
      kind = dyn::MutationKind::kDeleteEdge;
    } else if (kind_s == "weight") {
      kind = dyn::MutationKind::kWeightChange;
    } else {
      return error_reply("mutate: unknown kind: " + kind_s);
    }
    if (!msg.get_u64("src", src) || !msg.get_u64("dst", dst)) {
      return error_reply("mutate: missing field: src/dst");
    }
    double weight = 1.0;
    msg.get_double("weight", weight);
    log_.append(dyn::Mutation{kind, static_cast<VertexId>(src),
                              static_cast<VertexId>(dst),
                              static_cast<float>(weight)});
    return dyn::WireWriter()
        .boolean("ok", true)
        .u64("pending", log_.pending())
        .finish();
  }

  std::string handle_recompute() {
    const dyn::MutationBatch batch = log_.seal();
    const dyn::EpochResult r = inc_.apply_epoch(batch);
    values_ = prog_.values();  // refresh the quiescent query cache
    return dyn::WireWriter()
        .boolean("ok", true)
        .u64("epoch", r.epoch)
        .boolean("warm", r.warm)
        .str("reason", r.gate_reason)
        .u64("applied", r.apply_stats.applied)
        .u64("rejected", r.apply_stats.rejected)
        .u64("seeds", r.seed_count)
        .u64("iterations", r.engine.iterations)
        .u64("updates", r.engine.updates)
        .boolean("converged", r.engine.converged)
        .boolean("compacted", r.compacted)
        .u64("live_edges", g_.num_live_edges())
        .finish();
  }

  std::string handle_query(const dyn::WireMessage& msg) {
    std::uint64_t v = 0;
    if (!msg.get_u64("vertex", v)) {
      return error_reply("query: missing field: vertex");
    }
    if (v >= values_.size()) {
      return error_reply("query: vertex out of range: " + std::to_string(v));
    }
    dyn::WireWriter w;
    w.boolean("ok", true).u64("vertex", v);
    const double value = values_[v];
    if (std::isfinite(value)) {
      w.num("value", value);
    } else {
      w.str("value", "inf");  // JSON has no infinity literal
    }
    return w.u64("epoch", log_.epoch()).finish();
  }

  std::string handle_stats() {
    return dyn::WireWriter()
        .boolean("ok", true)
        .str("algo", prog_.name())
        .str("verdict", verdict_token(inc_.gate().verdict()))
        .str("engine", to_string(inc_.engine_kind()))
        .u64("epoch", log_.epoch())
        .u64("pending", log_.pending())
        .u64("total_mutations", log_.total_appended())
        .u64("sealed_batches", log_.total_sealed_batches())
        .u64("vertices", g_.num_vertices())
        .u64("live_edges", g_.num_live_edges())
        .u64("edge_bound", g_.num_edges())
        .u64("inserted", g_.total_inserted())
        .u64("deleted", g_.total_deleted())
        .u64("reweighted", g_.total_reweighted())
        .u64("compactions", g_.compactions())
        .num("overflow", g_.overflow_ratio())
        .u64("warm_runs", inc_.warm_runs())
        .u64("cold_runs", inc_.cold_runs())
        .finish();
  }

  dyn::DynGraph g_;
  Program prog_;
  dyn::MutationLog log_;
  dyn::IncrementalEngine<Program> inc_;
  std::vector<double> values_;
};

template <typename Program, typename Transport>
int serve_loop(Session<Program>& session, Transport& io) {
  io.set_greeting(session.ready_line());
  std::string line;
  bool quit = false;
  while (!quit && io.read_line(line)) {
    if (line.empty() || line.find_first_not_of(" \t\r") == std::string::npos) {
      continue;
    }
    dyn::WireMessage msg;
    std::string err;
    if (!parse_wire(line, msg, &err)) {
      io.write_line(error_reply("parse: " + err));
      continue;
    }
    io.write_line(session.handle(msg, quit));
  }
  return 0;
}

template <typename Program>
int serve(Graph base, Program prog, const ServeConfig& cfg) {
  dyn::DynGraphOptions gopts;
  gopts.compact_threshold = cfg.compact_threshold;
  gopts.mem = cfg.engine_opts.mem;
  if constexpr (std::is_same_v<Program, SsspProgram>) {
    // Base edges keep the paper's hash-derived weights so the serve results
    // match the static engines' on the unmutated graph.
    const std::uint64_t seed = prog.weight_seed();
    gopts.base_weight = [seed](EdgeId e) {
      return SsspProgram::edge_weight(seed, e);
    };
  }
  Session<Program> session(dyn::DynGraph(std::move(base), gopts),
                           std::move(prog), cfg);
  if (cfg.socket_path.empty()) {
    StdioTransport io;
    return serve_loop(session, io);
  }
  UnixSocketTransport io(cfg.socket_path);
  return serve_loop(session, io);
}

Graph load_any(const std::string& path) {
  if (path.size() >= 5 && path.compare(path.size() - 5, 5, ".ndgb") == 0) {
    return load_binary_graph(path);
  }
  auto loaded = load_edge_list(path);
  return Graph::build(loaded.num_vertices, std::move(loaded.edges));
}

Graph build_base_graph(const CliArgs& args) {
  if (args.has("graph")) return load_any(args.get("graph", ""));
  const std::string kind = args.get("kind", "rmat");
  const auto n = static_cast<VertexId>(args.get_int("vertices", 1024));
  const auto m = static_cast<EdgeId>(args.get_int("edges", 8 * n));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  EdgeList edges;
  if (kind == "rmat") {
    edges = gen::rmat(n, m, seed);
  } else if (kind == "er") {
    edges = gen::erdos_renyi(n, m, seed);
  } else if (kind == "chain") {
    edges = gen::chain(n);
  } else {
    throw std::runtime_error("unknown --kind: " + kind +
                             " (expected rmat|er|chain)");
  }
  if (args.get_bool("symmetrize", false)) edges = symmetrize(edges);
  return Graph::build(n, edges);
}

int serve_main(const CliArgs& args) {
  ServeConfig cfg;
  cfg.engine_opts.num_threads =
      static_cast<std::size_t>(args.get_int("threads", 4));
  cfg.engine_opts.max_iterations =
      static_cast<std::size_t>(args.get_int("max-iterations", 100000));
  cfg.engine_opts.mode = parse_mode(args.get("mode", "relaxed"));
  cfg.compact_threshold = args.get_double("compact-threshold", 0.25);
  cfg.socket_path = args.get("socket", "");

  const auto gate = parse_gate(args.get("gate", "analyze"));
  if (!gate) {
    std::cerr << "unknown --gate (expected analyze|static|theorem1|theorem2|"
                 "ineligible)\n";
    return 1;
  }
  cfg.gate = *gate;
  const std::string engine = args.get("engine", "ne");
  if (engine == "async") {
    cfg.engine = dyn::DynEngine::kPureAsync;
  } else if (engine == "ne") {
    cfg.engine = dyn::DynEngine::kNE;
  } else {
    std::cerr << "unknown --engine (expected ne|async)\n";
    return 1;
  }

  Graph base = build_base_graph(args);
  const std::string algo = args.get("algo", "pagerank");
  if (algo == "pagerank") {
    return serve(std::move(base),
                 PageRankProgram(static_cast<float>(
                     args.get_double("eps", 1e-4))),
                 cfg);
  }
  if (algo == "sssp") {
    return serve(std::move(base),
                 SsspProgram(static_cast<VertexId>(args.get_int("source", 0)),
                             static_cast<std::uint64_t>(
                                 args.get_int("weight-seed", 42))),
                 cfg);
  }
  if (algo == "wcc") return serve(std::move(base), WccProgram(), cfg);
  if (algo == "pagerank-push-atomic") {
    // Ineligible exhibit: analyzes to kNotProven, so every epoch goes cold.
    return serve(std::move(base),
                 AtomicPushPageRankProgram(static_cast<float>(
                     args.get_double("eps", 1e-4))),
                 cfg);
  }
  std::cerr << "unknown --algo: " << algo
            << " (expected pagerank|sssp|wcc|pagerank-push-atomic)\n";
  return 1;
}

}  // namespace
}  // namespace ndg

int main(int argc, char** argv) {
  // A client vanishing mid-write must not kill the server.
  std::signal(SIGPIPE, SIG_IGN);
  // No subcommand word: flags start at argv[1], which CliArgs's loop skips
  // past argv[0] on its own.
  ndg::CliArgs args(argc, argv);
  try {
    return ndg::serve_main(args);
  } catch (const std::exception& e) {
    std::cerr << "ndg_serve: " << e.what() << "\n";
    return 1;
  }
}
