// ndg_serve — long-running streaming front-end for the dyn/ subsystem
// (docs/DYNAMIC.md). Speaks one flat JSON object per line (dyn/wire.hpp)
// over stdin/stdout or a unix socket (--socket=PATH):
//
//   {"op":"mutate","kind":"insert","src":3,"dst":7,"weight":2.5}
//   {"op":"recompute"}            seal the pending batch as one epoch and
//                                 warm- or cold-recompute behind the gate
//   {"op":"query","vertex":7}     read one vertex result
//   {"op":"stats"}                log / graph / engine counters
//   {"op":"quit"}                 stdio: stop the server; socket: disconnect
//                                 this client (whole-server stop only with
//                                 --allow-shutdown)
//
// Mutations accumulate in a MutationLog and are batched BY EPOCH: everything
// appended between two `recompute` commands seals into one MutationBatch.
//
// Transports:
//  * stdio — the original single-threaded command loop: one implicit client,
//    recompute runs inline, queries are answered between epochs from
//    quiescent arrays. Replies are byte-identical to the pre-multiplex
//    server.
//  * unix socket — a poll() event loop multiplexing N concurrent clients,
//    each with its own input buffer and strictly in-order reply queue.
//    Mutation intake stays funneled through the single mutex-guarded
//    MutationLog, so any client may mutate at any time. `recompute` seals an
//    epoch and hands it to a background worker thread, keeping the event
//    loop responsive; commands that need quiescence (another recompute,
//    stats, plain queries) wait for the in-flight epoch, commands that do
//    not (mutate, quit, parse errors) are answered immediately.
//
// --live-queries (opt-in): a `query` that arrives while the worker is inside
// its racy engine run is answered FROM THE LIVE EDGE ARRAYS through the
// configured relaxed/aligned access policy — the read is licensed by the
// same Lemma 1 argument as the engines' own reads (individual edge reads
// are atomic) — and the reply is labeled "quiescent":false and stamped with
// the in-flight epoch. Quiescent-point queries keep the cached-vector path
// and are labeled "quiescent":true. Without the flag, query replies keep the
// legacy shape (no quiescent field) and queue behind the epoch barrier.

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <condition_variable>
#include <csignal>
#include <cstring>
#include <deque>
#include <iostream>
#include <map>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "dyn/dyn_graph.hpp"
#include "dyn/eligibility_gate.hpp"
#include "dyn/incremental.hpp"
#include "dyn/mutation_log.hpp"
#include "dyn/wire.hpp"
#include "nondetgraph.hpp"
#include "tier/net.hpp"
#include "util/cli.hpp"

namespace ndg {
namespace {

struct ServeConfig {
  dyn::GateMode gate = dyn::GateMode::kAnalyze;
  dyn::DynEngine engine = dyn::DynEngine::kNE;
  EngineOptions engine_opts;
  double compact_threshold = 0.25;
  std::string socket_path;   // empty = stdin/stdout
  bool live_queries = false;  // answer queries mid-recompute (labeled)
  bool allow_shutdown = false;  // socket: let a client's quit stop the server
  std::uint32_t epoch_hold_ms = 0;  // test aid: stretch the engine-run phase
};

AtomicityMode parse_mode(const std::string& s) {
  if (s == "locked") return AtomicityMode::kLocked;
  if (s == "aligned") return AtomicityMode::kAligned;
  if (s == "seq_cst") return AtomicityMode::kSeqCst;
  return AtomicityMode::kRelaxed;
}

/// Compact wire token for the verdict (core's to_string is a prose line).
const char* verdict_token(EligibilityVerdict v) {
  switch (v) {
    case EligibilityVerdict::kTheorem1: return "theorem-1";
    case EligibilityVerdict::kTheorem2: return "theorem-2";
    case EligibilityVerdict::kNotProven: return "not-proven";
  }
  return "unknown";
}

std::optional<dyn::GateMode> parse_gate(const std::string& s) {
  if (s == "analyze") return dyn::GateMode::kAnalyze;
  if (s == "static") return dyn::GateMode::kStatic;
  if (s == "theorem1") return dyn::GateMode::kAssumeTheorem1;
  if (s == "theorem2") return dyn::GateMode::kAssumeTheorem2;
  if (s == "ineligible") return dyn::GateMode::kAssumeIneligible;
  return std::nullopt;
}

// --- Command handling ------------------------------------------------------

std::string error_reply(const std::string& what) {
  return dyn::WireWriter().boolean("ok", false).str("error", what).finish();
}

/// JSON has no literal for the IEEE specials; label them distinctly
/// ("inf" used to swallow NaN because isfinite is false for both).
void add_value_field(dyn::WireWriter& w, double value) {
  if (std::isnan(value)) {
    w.str("value", "nan");
  } else if (std::isinf(value)) {
    w.str("value", value > 0 ? "inf" : "-inf");
  } else {
    w.num("value", value);
  }
}

/// One live algorithm instance: log + graph + gate + incremental engine,
/// plus a result cache refreshed at each quiescent point (cold start and
/// every recompute) so queries never re-copy the whole result vector.
///
/// Threading contract (socket mode): run_epoch_on_worker is the ONLY method
/// called off the event-loop thread, and the event loop calls nothing but
/// handle_mutate (MutationLog is mutex-guarded) and — in live mode, only
/// while engine_running() — live_query_reply while it is in flight.
template <typename Program>
class Session {
 public:
  Session(dyn::DynGraph graph, Program prog, const ServeConfig& cfg)
      : g_(std::move(graph)),
        prog_(std::move(prog)),
        inc_(g_, prog_,
             dyn::EligibilityGate::make(cfg.gate, g_.base(), prog_),
             cfg.engine_opts, cfg.engine),
        live_mode_(cfg.live_queries) {
    inc_.set_run_hold_ms(cfg.epoch_hold_ms);
    inc_.recompute_cold();
    values_ = prog_.values();
  }

  [[nodiscard]] std::string ready_line() const {
    return dyn::WireWriter()
        .boolean("ok", true)
        .boolean("ready", true)
        .str("algo", prog_.name())
        .str("verdict", verdict_token(inc_.gate().verdict()))
        .str("engine", to_string(inc_.engine_kind()))
        .u64("vertices", g_.num_vertices())
        .u64("live_edges", g_.num_live_edges())
        .finish();
  }

  /// Synchronous dispatch (stdio transport): one parsed command in, one
  /// reply out; sets `quit` on the quit op. Recompute runs inline, so every
  /// query observes a quiescent point — the pre-multiplex behavior.
  std::string handle(const dyn::WireMessage& msg, bool& quit,
                     const dyn::WireCounters& wire) {
    std::string op;
    if (!msg.get_string("op", op)) return error_reply("missing field: op");
    if (op == "mutate") return handle_mutate(msg);
    if (op == "recompute") {
      const dyn::MutationBatch batch = log_.seal();
      dyn::EpochResult r = inc_.apply_epoch(batch);
      values_ = prog_.values();  // refresh the quiescent query cache
      return recompute_reply(r);
    }
    if (op == "query") return query_reply(msg);
    if (op == "stats") return stats_reply(wire);
    if (op == "quit") {
      quit = true;
      return bye_reply();
    }
    return error_reply("unknown op: " + op);
  }

  // --- Granular surface for the multiplexed socket server ---

  [[nodiscard]] static std::string bye_reply() {
    return dyn::WireWriter().boolean("ok", true).boolean("bye", true).finish();
  }

  /// Safe from the event loop at any time (MutationLog serializes intake).
  std::string handle_mutate(const dyn::WireMessage& msg) {
    std::string kind_s;
    std::uint64_t src = 0;
    std::uint64_t dst = 0;
    if (!msg.get_string("kind", kind_s)) {
      return error_reply("mutate: missing field: kind");
    }
    dyn::MutationKind kind;
    if (kind_s == "insert") {
      kind = dyn::MutationKind::kInsertEdge;
    } else if (kind_s == "delete") {
      kind = dyn::MutationKind::kDeleteEdge;
    } else if (kind_s == "weight") {
      kind = dyn::MutationKind::kWeightChange;
    } else {
      return error_reply("mutate: unknown kind: " + kind_s);
    }
    if (!msg.get_u64("src", src) || !msg.get_u64("dst", dst)) {
      return error_reply("mutate: missing field: src/dst");
    }
    double weight = 1.0;
    msg.get_double("weight", weight);
    log_.append(dyn::Mutation{kind, static_cast<VertexId>(src),
                              static_cast<VertexId>(dst),
                              static_cast<float>(weight)});
    return dyn::WireWriter()
        .boolean("ok", true)
        .u64("pending", log_.pending())
        .finish();
  }

  /// Binary intake paths: pre-decoded mutations go straight into the log
  /// (same mutex-guarded funnel as handle_mutate). The mbatch overload is
  /// the whole point of the bin1 protocol — one frame, one bulk append.
  std::uint64_t append_mutation(const dyn::Mutation& m) {
    log_.append(m);
    return log_.pending();
  }
  std::uint64_t append_mutations(const std::vector<dyn::Mutation>& ms) {
    log_.append(ms);
    return log_.pending();
  }

  [[nodiscard]] std::uint64_t epoch() const { return log_.epoch(); }
  [[nodiscard]] std::size_t num_values() const { return values_.size(); }
  [[nodiscard]] double quiescent_value(std::uint64_t v) const {
    return values_[v];
  }
  [[nodiscard]] bool live_mode() const { return live_mode_; }

  /// Seals the pending tail into the next epoch's batch (event loop).
  [[nodiscard]] dyn::MutationBatch seal_batch() { return log_.seal(); }

  /// Runs one sealed epoch on the worker thread. Compaction is deferred to
  /// finish_epoch so live readers never race a CSR rebuild.
  [[nodiscard]] dyn::EpochResult run_epoch_on_worker(
      const dyn::MutationBatch& batch) {
    return inc_.apply_epoch(batch, /*auto_compact=*/false);
  }

  /// Event loop, after the worker handed the result back (worker idle):
  /// performs the deferred compaction and refreshes the quiescent cache.
  /// Returns the completed result; the transport formats it for whichever
  /// protocol the issuing client speaks (recompute_reply / recompute_bin).
  dyn::EpochResult finish_epoch(dyn::EpochResult r) {
    if (g_.should_compact()) {
      inc_.compact_now();
      r.compacted = true;
    }
    values_ = prog_.values();
    return r;
  }

  /// Quiescent-point query from the cached vector. In live mode the reply
  /// carries "quiescent":true; without the flag it keeps the legacy shape.
  std::string query_reply(const dyn::WireMessage& msg) {
    std::uint64_t v = 0;
    std::string err;
    if (!parse_query_vertex(msg, v, err)) return error_reply(err);
    dyn::WireWriter w;
    w.boolean("ok", true).u64("vertex", v);
    add_value_field(w, values_[v]);
    if (live_mode_) w.boolean("quiescent", true);
    return w.u64("epoch", log_.epoch()).finish();
  }

  /// Whether the program can reconstruct a vertex value from edge reads.
  [[nodiscard]] static constexpr bool live_capable() {
    return dyn::IncrementalEngine<Program>::kLiveQueryCapable;
  }

  /// True while the in-flight epoch is inside its racy engine run — the only
  /// window in which live reads are licensed (apply/compact phases move the
  /// arrays themselves).
  [[nodiscard]] bool engine_running() const {
    return inc_.phase() == dyn::EpochPhase::kRunning;
  }

  /// Mid-recompute query through the access policy (Lemma 1), labeled
  /// non-quiescent and stamped with the epoch being recomputed. Only called
  /// when live_capable() and engine_running().
  std::string live_query_reply(const dyn::WireMessage& msg,
                               std::uint64_t inflight_epoch) {
    std::uint64_t v = 0;
    std::string err;
    if (!parse_query_vertex(msg, v, err)) return error_reply(err);
    dyn::WireWriter w;
    w.boolean("ok", true).u64("vertex", v);
    if constexpr (live_capable()) {
      add_value_field(w, inc_.live_value(static_cast<VertexId>(v)));
    }
    return w.boolean("quiescent", false).u64("epoch", inflight_epoch)
        .finish();
  }

  std::string recompute_reply(const dyn::EpochResult& r) const {
    return dyn::WireWriter()
        .boolean("ok", true)
        .u64("epoch", r.epoch)
        .boolean("warm", r.warm)
        .str("reason", r.gate_reason)
        .u64("applied", r.apply_stats.applied)
        .u64("rejected", r.apply_stats.rejected)
        .u64("seeds", r.seed_count)
        .u64("iterations", r.engine.iterations)
        .u64("updates", r.engine.updates)
        .boolean("converged", r.engine.converged)
        .boolean("compacted", r.compacted)
        .u64("live_edges", g_.num_live_edges())
        .finish();
  }

  /// Same result, bin1 shape (kRecomputeReply payload struct).
  [[nodiscard]] dyn::RecomputeReplyBin recompute_bin(
      const dyn::EpochResult& r) const {
    dyn::RecomputeReplyBin b;
    b.epoch = r.epoch;
    b.warm = r.warm;
    b.converged = r.engine.converged;
    b.compacted = r.compacted;
    b.applied = r.apply_stats.applied;
    b.rejected = r.apply_stats.rejected;
    b.seeds = r.seed_count;
    b.iterations = r.engine.iterations;
    b.updates = r.engine.updates;
    b.live_edges = g_.num_live_edges();
    b.reason = r.gate_reason;
    return b;
  }

  /// Raw live read for the binary query path; only meaningful when
  /// live_capable() and engine_running() (same license as live_query_reply).
  [[nodiscard]] double live_value(VertexId v) {
    if constexpr (live_capable()) return inc_.live_value(v);
    return 0.0;
  }

  std::string stats_reply(const dyn::WireCounters& wire) {
    return dyn::WireWriter()
        .boolean("ok", true)
        .str("algo", prog_.name())
        .str("verdict", verdict_token(inc_.gate().verdict()))
        .str("engine", to_string(inc_.engine_kind()))
        .u64("epoch", log_.epoch())
        // Single-process serving IS its own watermark (nothing trails it);
        // the field exists so tier-aware clients can read one shape from
        // both ndg_serve and ndg_tier stats (docs/TIER.md).
        .u64("epoch_watermark", log_.epoch())
        .u64("log_history_len", log_.history_size())
        .u64("pending", log_.pending())
        .u64("total_mutations", log_.total_appended())
        .u64("sealed_batches", log_.total_sealed_batches())
        .u64("vertices", g_.num_vertices())
        .u64("live_edges", g_.num_live_edges())
        .u64("edge_bound", g_.num_edges())
        .u64("inserted", g_.total_inserted())
        .u64("deleted", g_.total_deleted())
        .u64("reweighted", g_.total_reweighted())
        .u64("compactions", g_.compactions())
        .num("overflow", g_.overflow_ratio())
        .u64("warm_runs", inc_.warm_runs())
        .u64("cold_runs", inc_.cold_runs())
        // Transport counters (docs/DYNAMIC.md): appended last so the older
        // exact-substring smoke greps keep matching unchanged.
        .u64("bytes_in", wire.bytes_in)
        .u64("bytes_out", wire.bytes_out)
        .u64("parse_errors", wire.parse_errors)
        .u64("conns_json", wire.conns_json)
        .u64("conns_bin", wire.conns_bin)
        .finish();
  }

 private:
  bool parse_query_vertex(const dyn::WireMessage& msg, std::uint64_t& v,
                          std::string& err) const {
    if (!msg.get_u64("vertex", v)) {
      err = "query: missing field: vertex";
      return false;
    }
    if (v >= values_.size()) {
      err = "query: vertex out of range: " + std::to_string(v);
      return false;
    }
    return true;
  }

  dyn::DynGraph g_;
  Program prog_;
  dyn::MutationLog log_;
  dyn::IncrementalEngine<Program> inc_;
  std::vector<double> values_;
  bool live_mode_;
};

// --- stdio transport (single implicit connection, synchronous) -------------

template <typename Program>
int serve_stdio(Session<Program>& session) {
  std::cout << session.ready_line() << '\n' << std::flush;
  std::string line;
  bool quit = false;
  dyn::WireCounters wire;  // stdio is one implicit newline-JSON connection
  wire.conns_json = 1;
  while (!quit && std::getline(std::cin, line)) {
    wire.bytes_in += line.size() + 1;
    if (line.empty() || line.find_first_not_of(" \t\r") == std::string::npos) {
      continue;
    }
    dyn::WireMessage msg;
    std::string err;
    std::string reply;
    if (!parse_wire(line, msg, &err)) {
      reply = error_reply("parse: " + err);
      ++wire.parse_errors;
    } else {
      reply = session.handle(msg, quit, wire);
    }
    wire.bytes_out += reply.size() + 1;
    std::cout << reply << '\n' << std::flush;
  }
  return 0;
}

// --- Multiplexed unix-socket server ----------------------------------------

using tier::set_nonblocking;

/// poll()-driven server: N concurrent clients, per-client input buffers and
/// strictly in-order reply queues, one background worker thread running
/// apply_epoch. Single-threaded event loop; the worker touches nothing but
/// the Session's run_epoch_on_worker (handed exactly one sealed batch at a
/// time) and signals completion through a self-pipe.
///
/// Each client is a tier::LineConn: it starts in newline-JSON and may
/// upgrade to bin1 frames with {"op":"hello","proto":"bin1"}; after the ok
/// line both directions speak frames (docs/DYNAMIC.md). JSON and binary
/// clients coexist on the same loop — protocol is per-connection state, and
/// every command keeps the same epoch-barrier semantics on both transports.
template <typename Program>
class SocketServer {
 public:
  SocketServer(Session<Program>& session, const ServeConfig& cfg)
      : session_(session), cfg_(cfg), path_(cfg.socket_path) {
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) throw std::runtime_error("socket() failed");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path_.size() >= sizeof(addr.sun_path)) {
      ::close(listen_fd_);
      throw std::runtime_error("socket path too long: " + path_);
    }
    std::strncpy(addr.sun_path, path_.c_str(), sizeof(addr.sun_path) - 1);
    ::unlink(path_.c_str());
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listen_fd_, 16) != 0) {
      ::close(listen_fd_);
      throw std::runtime_error("bind/listen failed on " + path_);
    }
    set_nonblocking(listen_fd_);
    int pipe_fds[2];
    if (::pipe(pipe_fds) != 0) {
      ::close(listen_fd_);
      throw std::runtime_error("pipe() failed");
    }
    wake_r_ = pipe_fds[0];
    wake_w_ = pipe_fds[1];
    set_nonblocking(wake_r_);
    set_nonblocking(wake_w_);
    greeting_ = session_.ready_line();
    worker_ = std::thread([this] { worker_main(); });
  }

  ~SocketServer() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      worker_stop_ = true;
    }
    cv_.notify_one();
    worker_.join();
    for (auto& [id, c] : clients_) c.conn.close_fd();
    if (wake_r_ >= 0) ::close(wake_r_);
    if (wake_w_ >= 0) ::close(wake_w_);
    if (listen_fd_ >= 0) ::close(listen_fd_);
    ::unlink(path_.c_str());
  }

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  int run() {
    std::vector<pollfd> pfds;
    std::vector<std::uint64_t> pfd_client;  // parallel to pfds, 0 = not client
    while (!exit_ready()) {
      pfds.clear();
      pfd_client.clear();
      pfds.push_back({wake_r_, POLLIN, 0});
      pfd_client.push_back(0);
      if (!shutdown_) {
        pfds.push_back({listen_fd_, POLLIN, 0});
        pfd_client.push_back(0);
      }
      for (auto& [id, c] : clients_) {
        short events = 0;
        if (!c.conn.eof && !shutdown_) events |= POLLIN;
        if (!c.conn.out_buf.empty()) events |= POLLOUT;
        if (events == 0) continue;
        pfds.push_back({c.conn.fd, events, 0});
        pfd_client.push_back(id);
      }
      // Commands blocked on a phase transition inside the in-flight epoch
      // (live queries waiting for kRunning) have no fd to wake us; poll on a
      // short tick while anything is queued behind the barrier.
      const int timeout = (inflight_ && any_pending()) ? 5 : -1;
      const int rc = ::poll(pfds.data(), pfds.size(), timeout);
      if (rc < 0) {
        if (errno == EINTR) continue;
        std::cerr << "ndg_serve: poll failed: " << std::strerror(errno)
                  << "\n";
        return 1;
      }
      for (std::size_t i = 0; i < pfds.size(); ++i) {
        const short re = pfds[i].revents;
        if (re == 0) continue;
        if (pfds[i].fd == wake_r_) {
          drain_wake_pipe();
        } else if (pfds[i].fd == listen_fd_) {
          accept_clients();
        } else if (auto it = clients_.find(pfd_client[i]);
                   it != clients_.end()) {
          Client& c = it->second;
          if ((re & (POLLIN | POLLHUP | POLLERR)) != 0) c.conn.read_input();
          if ((re & POLLOUT) != 0) c.conn.flush();
        }
      }
      pump_all();
      reap_closed();
    }
    // Shutdown: make a last effort to hand the issuer its bye reply.
    if (auto it = clients_.find(shutdown_client_); it != clients_.end()) {
      it->second.conn.flush();
    }
    return 0;
  }

 private:
  struct Client {
    tier::LineConn conn;
    bool awaiting_epoch = false;  // this client's recompute is in flight
  };

  // --- Worker thread ---

  void worker_main() {
    for (;;) {
      dyn::MutationBatch batch;
      {
        std::unique_lock<std::mutex> lk(mu_);
        cv_.wait(lk, [this] { return worker_stop_ || job_ready_; });
        if (worker_stop_) return;
        batch = std::move(job_batch_);
        job_ready_ = false;
      }
      dyn::EpochResult r = session_.run_epoch_on_worker(batch);
      {
        std::lock_guard<std::mutex> lk(mu_);
        done_result_ = r;
        done_ready_ = true;
      }
      // Self-pipe wakeup; a full pipe already guarantees a pending wake.
      const char b = 1;
      while (::write(wake_w_, &b, 1) < 0 && errno == EINTR) {
      }
    }
  }

  void drain_wake_pipe() {
    char buf[64];
    while (::read(wake_r_, buf, sizeof buf) > 0) {
    }
    bool have_done = false;
    dyn::EpochResult r;
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (done_ready_) {
        r = done_result_;
        done_ready_ = false;
        have_done = true;
      }
    }
    if (!have_done) return;
    // Worker is idle again: safe to compact and refresh the cache here.
    const dyn::EpochResult res = session_.finish_epoch(std::move(r));
    inflight_ = false;
    if (auto it = clients_.find(inflight_client_); it != clients_.end()) {
      Client& c = it->second;
      c.awaiting_epoch = false;
      if (c.conn.proto == dyn::WireProto::kBin) {
        c.conn.queue_frame(
            dyn::FrameType::kRecomputeReply,
            dyn::encode_recompute_reply(session_.recompute_bin(res)));
        c.conn.flush();
      } else {
        queue_reply(c, session_.recompute_reply(res));
      }
    }
    inflight_client_ = 0;
  }

  // --- Event-loop plumbing ---

  void accept_clients() {
    for (;;) {
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EINTR) continue;
        return;  // EAGAIN or transient error: try again on the next POLLIN
      }
      set_nonblocking(fd);
      const std::uint64_t id = ++next_client_id_;
      Client& c = clients_[id];
      c.conn.fd = fd;
      queue_reply(c, greeting_);
    }
  }

  void queue_reply(Client& c, const std::string& reply) {
    c.conn.queue_line(reply);
  }

  /// Binary protocol error reply: framing is intact (the frame was complete,
  /// its payload just failed to decode), so the connection survives — exactly
  /// like a JSON parse error on the line transport.
  void frame_error(Client& c, std::string_view what) {
    ++parse_errors_;
    c.conn.queue_frame(dyn::FrameType::kError, what);
  }

  /// Server-wide transport counters: live connections scanned in place,
  /// closed ones remembered in closed_wire_ at reap time.
  [[nodiscard]] dyn::WireCounters wire_totals() const {
    dyn::WireCounters w = closed_wire_;
    w.parse_errors = parse_errors_;
    for (const auto& [id, c] : clients_) {
      w.bytes_in += c.conn.bytes_in;
      w.bytes_out += c.conn.bytes_out;
      if (c.conn.proto == dyn::WireProto::kBin) {
        ++w.conns_bin;
      } else {
        ++w.conns_json;
      }
    }
    return w;
  }

  [[nodiscard]] bool any_pending() const {
    for (const auto& [id, c] : clients_) {
      if ((!c.conn.pending.empty() || !c.conn.frames.empty()) &&
          !c.awaiting_epoch && !c.conn.draining) {
        return true;
      }
    }
    return false;
  }

  void pump_all() {
    for (auto& [id, c] : clients_) pump(id, c);
  }

  /// Executes the client's queued commands strictly in order, stopping at
  /// the first one that must wait for the in-flight epoch. Replies are
  /// appended to the client's out queue in execution order, so each client
  /// sees exactly one reply per command, in the order it sent them. A hello
  /// upgrade mid-pump switches the same pass from lines to frames; binary
  /// replies are queued without flushing and drained once at the end
  /// (writev-style — one syscall per pump pass, not per reply).
  void pump(std::uint64_t id, Client& c) {
    if (c.conn.proto == dyn::WireProto::kJson) pump_lines(id, c);
    if (c.conn.proto == dyn::WireProto::kBin) pump_frames(id, c);
    c.conn.flush();
  }

  void pump_lines(std::uint64_t id, Client& c) {
    while (!c.awaiting_epoch && !c.conn.draining && !c.conn.broken &&
           !c.conn.pending.empty()) {
      const std::string& line = c.conn.pending.front();
      if (line.empty() ||
          line.find_first_not_of(" \t\r") == std::string::npos) {
        c.conn.pending.pop_front();
        continue;
      }
      dyn::WireMessage msg;
      std::string err;
      if (!parse_wire(line, msg, &err)) {
        ++parse_errors_;
        queue_reply(c, error_reply("parse: " + err));
        c.conn.pending.pop_front();
        continue;
      }
      std::string op;
      if (!msg.get_string("op", op)) {
        queue_reply(c, error_reply("missing field: op"));
        c.conn.pending.pop_front();
        continue;
      }
      if (op == "hello") {
        std::string proto;
        if (!msg.get_string("proto", proto)) {
          queue_reply(c, error_reply("hello: missing field: proto"));
          c.conn.pending.pop_front();
          continue;
        }
        if (proto != dyn::kBinProtoName) {
          queue_reply(c, error_reply("hello: unknown proto: " + proto));
          c.conn.pending.pop_front();
          continue;
        }
        queue_reply(c, dyn::WireWriter()
                           .boolean("ok", true)
                           .str("proto", dyn::kBinProtoName)
                           .finish());
        c.conn.pending.pop_front();
        // Replays any frame bytes the client pipelined behind the hello;
        // pump() falls through to pump_frames for them.
        c.conn.upgrade_to_bin();
        return;
      }
      if (op == "mutate") {
        queue_reply(c, session_.handle_mutate(msg));
        c.conn.pending.pop_front();
        continue;
      }
      if (op == "query") {
        if (!inflight_) {
          queue_reply(c, session_.query_reply(msg));
          c.conn.pending.pop_front();
          continue;
        }
        if (cfg_.live_queries && Session<Program>::live_capable() &&
            session_.engine_running()) {
          queue_reply(c, session_.live_query_reply(msg, inflight_epoch_));
          c.conn.pending.pop_front();
          continue;
        }
        break;  // barrier: answered at the next quiescent point
      }
      if (op == "recompute") {
        if (inflight_) break;  // one epoch at a time; wait our turn
        c.conn.pending.pop_front();
        start_epoch(id, c);
        continue;  // loop exits via awaiting_epoch
      }
      if (op == "stats") {
        if (inflight_) break;  // counters quiesce with the epoch
        queue_reply(c, session_.stats_reply(wire_totals()));
        c.conn.pending.pop_front();
        continue;
      }
      if (op == "quit") {
        queue_reply(c, Session<Program>::bye_reply());
        c.conn.pending.pop_front();
        c.conn.draining = true;  // quit is scoped to THIS connection...
        if (cfg_.allow_shutdown) {  // ...unless the operator opted in
          shutdown_ = true;
          shutdown_client_ = id;
        }
        break;
      }
      queue_reply(c, error_reply("unknown op: " + op));
      c.conn.pending.pop_front();
    }
  }

  /// Frame dispatch mirrors pump_lines op for op: same epoch barrier (query/
  /// recompute/stats wait, mutate/mbatch/quit answer immediately), same
  /// in-order reply guarantee. Barrier waits `return` WITHOUT popping the
  /// frame; handled frames fall out of the switch and are popped below.
  void pump_frames(std::uint64_t id, Client& c) {
    while (!c.awaiting_epoch && !c.conn.draining && !c.conn.broken &&
           !c.conn.frames.empty()) {
      const dyn::Frame& f = c.conn.frames.front();
      std::string err;
      switch (f.type) {
        case dyn::FrameType::kMutate: {
          dyn::Mutation m;
          if (!dyn::decode_mutate(f.payload, m, &err)) {
            frame_error(c, err);
            break;
          }
          c.conn.queue_frame(
              dyn::FrameType::kMutateAck,
              dyn::encode_mutate_ack(session_.append_mutation(m)));
          break;
        }
        case dyn::FrameType::kMBatch: {
          std::vector<dyn::Mutation> ms;
          if (!dyn::decode_mbatch(f.payload, ms, &err)) {
            frame_error(c, err);
            break;
          }
          const std::uint64_t pending = session_.append_mutations(ms);
          c.conn.queue_frame(
              dyn::FrameType::kMBatchAck,
              dyn::encode_mbatch_ack(static_cast<std::uint32_t>(ms.size()),
                                     pending));
          break;
        }
        case dyn::FrameType::kQuery: {
          std::uint64_t v = 0;
          if (!dyn::decode_query(f.payload, v, &err)) {
            frame_error(c, err);
            break;
          }
          if (v >= session_.num_values()) {
            frame_error(c,
                        "query: vertex out of range: " + std::to_string(v));
            break;
          }
          dyn::QueryReplyBin qr;
          qr.vertex = v;
          if (!inflight_) {
            qr.has_quiescent = session_.live_mode();
            qr.quiescent = true;
            qr.value = session_.quiescent_value(v);
            qr.epoch = session_.epoch();
          } else if (cfg_.live_queries && Session<Program>::live_capable() &&
                     session_.engine_running()) {
            qr.has_quiescent = true;
            qr.quiescent = false;
            qr.value = session_.live_value(static_cast<VertexId>(v));
            qr.epoch = inflight_epoch_;
          } else {
            return;  // barrier: answered at the next quiescent point
          }
          c.conn.queue_frame(dyn::FrameType::kQueryReply,
                             dyn::encode_query_reply(qr));
          break;
        }
        case dyn::FrameType::kRecompute: {
          if (inflight_) return;  // one epoch at a time; wait our turn
          start_epoch(id, c);
          break;  // pop the frame; loop exits via awaiting_epoch
        }
        case dyn::FrameType::kStats: {
          if (inflight_) return;  // counters quiesce with the epoch
          c.conn.queue_frame(dyn::FrameType::kJson,
                             session_.stats_reply(wire_totals()));
          break;
        }
        case dyn::FrameType::kQuit: {
          c.conn.queue_frame(dyn::FrameType::kBye, {});
          c.conn.draining = true;
          if (cfg_.allow_shutdown) {
            shutdown_ = true;
            shutdown_client_ = id;
          }
          break;
        }
        default:
          frame_error(c, "unexpected frame type: " +
                             std::to_string(static_cast<unsigned>(f.type)));
          break;
      }
      c.conn.frames.pop_front();
    }
  }

  /// Seals the pending tail and hands it to the worker on behalf of `c`.
  void start_epoch(std::uint64_t id, Client& c) {
    dyn::MutationBatch batch = session_.seal_batch();
    inflight_ = true;
    inflight_client_ = id;
    inflight_epoch_ = batch.epoch;
    c.awaiting_epoch = true;
    {
      std::lock_guard<std::mutex> lk(mu_);
      job_batch_ = std::move(batch);
      job_ready_ = true;
    }
    cv_.notify_one();
  }

  void reap_closed() {
    for (auto it = clients_.begin(); it != clients_.end();) {
      Client& c = it->second;
      const bool drained = c.conn.draining && c.conn.out_buf.empty();
      const bool finished = c.conn.eof && c.conn.pending.empty() &&
                            c.conn.frames.empty() &&
                            c.conn.out_buf.empty() && !c.awaiting_epoch;
      if (c.conn.broken || drained || finished) {
        // Byte totals outlive the connection (stats stays cumulative).
        closed_wire_.bytes_in += c.conn.bytes_in;
        closed_wire_.bytes_out += c.conn.bytes_out;
        c.conn.close_fd();
        it = clients_.erase(it);
      } else {
        ++it;
      }
    }
  }

  /// The loop ends once a sanctioned shutdown has no epoch in flight and the
  /// issuer's bye line is flushed (or the issuer is already gone).
  [[nodiscard]] bool exit_ready() const {
    if (!shutdown_ || inflight_) return false;
    const auto it = clients_.find(shutdown_client_);
    return it == clients_.end() || it->second.conn.out_buf.empty();
  }

  Session<Program>& session_;
  ServeConfig cfg_;
  std::string path_;
  std::string greeting_;
  int listen_fd_ = -1;
  int wake_r_ = -1;
  int wake_w_ = -1;
  std::map<std::uint64_t, Client> clients_;
  std::uint64_t next_client_id_ = 0;
  dyn::WireCounters closed_wire_;   // byte totals of reaped connections
  std::uint64_t parse_errors_ = 0;  // JSON lines + frame payloads that failed

  // In-flight epoch bookkeeping (event-loop thread only).
  bool inflight_ = false;
  std::uint64_t inflight_client_ = 0;
  std::uint64_t inflight_epoch_ = 0;
  bool shutdown_ = false;
  std::uint64_t shutdown_client_ = 0;

  // Worker handshake (guarded by mu_).
  std::thread worker_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool worker_stop_ = false;
  bool job_ready_ = false;
  dyn::MutationBatch job_batch_;
  bool done_ready_ = false;
  dyn::EpochResult done_result_;
};

template <typename Program>
int serve(Graph base, Program prog, const ServeConfig& cfg) {
  dyn::DynGraphOptions gopts;
  gopts.compact_threshold = cfg.compact_threshold;
  gopts.mem = cfg.engine_opts.mem;
  if constexpr (std::is_same_v<Program, SsspProgram>) {
    // Base edges keep the paper's hash-derived weights so the serve results
    // match the static engines' on the unmutated graph.
    const std::uint64_t seed = prog.weight_seed();
    gopts.base_weight = [seed](EdgeId e) {
      return SsspProgram::edge_weight(seed, e);
    };
  }
  Session<Program> session(dyn::DynGraph(std::move(base), gopts),
                           std::move(prog), cfg);
  if (cfg.socket_path.empty()) return serve_stdio(session);
  SocketServer<Program> server(session, cfg);
  return server.run();
}

Graph load_any(const std::string& path) {
  if (path.size() >= 5 && path.compare(path.size() - 5, 5, ".ndgb") == 0) {
    return load_binary_graph(path);
  }
  auto loaded = load_edge_list(path);
  return Graph::build(loaded.num_vertices, std::move(loaded.edges));
}

Graph build_base_graph(const CliArgs& args) {
  if (args.has("graph")) return load_any(args.get("graph", ""));
  const std::string kind = args.get("kind", "rmat");
  // Width matters: the default edge count is 8x the vertex count and must be
  // computed in 64-bit (8 * a 32-bit n overflows past ~536M vertices).
  const std::int64_t n_raw = args.get_int("vertices", 1024);
  const auto n = static_cast<VertexId>(n_raw);
  const auto m = static_cast<EdgeId>(args.get_int("edges", 8 * n_raw));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  EdgeList edges;
  if (kind == "rmat") {
    edges = gen::rmat(n, m, seed);
  } else if (kind == "er") {
    edges = gen::erdos_renyi(n, m, seed);
  } else if (kind == "chain") {
    edges = gen::chain(n);
  } else {
    throw std::runtime_error("unknown --kind: " + kind +
                             " (expected rmat|er|chain)");
  }
  if (args.get_bool("symmetrize", false)) edges = symmetrize(edges);
  return Graph::build(n, edges);
}

int serve_main(const CliArgs& args) {
  ServeConfig cfg;
  cfg.engine_opts.num_threads =
      static_cast<std::size_t>(args.get_int("threads", 4));
  cfg.engine_opts.max_iterations =
      static_cast<std::size_t>(args.get_int("max-iterations", 100000));
  cfg.engine_opts.mode = parse_mode(args.get("mode", "relaxed"));
  cfg.compact_threshold = args.get_double("compact-threshold", 0.25);
  cfg.socket_path = args.get("socket", "");
  cfg.live_queries = args.get_bool("live-queries", false);
  cfg.allow_shutdown = args.get_bool("allow-shutdown", false);
  cfg.epoch_hold_ms =
      static_cast<std::uint32_t>(args.get_int("epoch-hold-ms", 0));

  const auto gate = parse_gate(args.get("gate", "analyze"));
  if (!gate) {
    std::cerr << "unknown --gate (expected analyze|static|theorem1|theorem2|"
                 "ineligible)\n";
    return 1;
  }
  cfg.gate = *gate;
  const std::string engine = args.get("engine", "ne");
  if (engine == "async") {
    cfg.engine = dyn::DynEngine::kPureAsync;
  } else if (engine == "ne") {
    cfg.engine = dyn::DynEngine::kNE;
  } else {
    std::cerr << "unknown --engine (expected ne|async)\n";
    return 1;
  }

  Graph base = build_base_graph(args);
  const std::string algo = args.get("algo", "pagerank");
  if (algo == "pagerank") {
    return serve(std::move(base),
                 PageRankProgram(static_cast<float>(
                     args.get_double("eps", 1e-4))),
                 cfg);
  }
  if (algo == "sssp") {
    return serve(std::move(base),
                 SsspProgram(static_cast<VertexId>(args.get_int("source", 0)),
                             static_cast<std::uint64_t>(
                                 args.get_int("weight-seed", 42))),
                 cfg);
  }
  if (algo == "wcc") return serve(std::move(base), WccProgram(), cfg);
  if (algo == "pagerank-push-atomic") {
    // Ineligible exhibit: analyzes to kNotProven, so every epoch goes cold.
    // No live_value hook either: in --live-queries mode its mid-recompute
    // queries degrade to the quiescent barrier instead of racing.
    return serve(std::move(base),
                 AtomicPushPageRankProgram(static_cast<float>(
                     args.get_double("eps", 1e-4))),
                 cfg);
  }
  std::cerr << "unknown --algo: " << algo
            << " (expected pagerank|sssp|wcc|pagerank-push-atomic)\n";
  return 1;
}

}  // namespace
}  // namespace ndg

int main(int argc, char** argv) {
  // A client vanishing mid-write must not kill the server.
  std::signal(SIGPIPE, SIG_IGN);
  // No subcommand word: flags start at argv[1], which CliArgs's loop skips
  // past argv[0] on its own.
  ndg::CliArgs args(argc, argv);
  try {
    return ndg::serve_main(args);
  } catch (const std::exception& e) {
    std::cerr << "ndg_serve: " << e.what() << "\n";
    return 1;
  }
}
