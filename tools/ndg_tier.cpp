// ndg_tier — launcher for the replicated serving tier (docs/TIER.md).
//
// One invocation spawns the whole topology: N replica processes are forked
// first (each builds its own copy of the base graph from the SAME flags and
// seed, so at epoch 0 every process holds an identical DynGraph and no
// initial snapshot is needed), then the parent becomes the coordinator.
// Sockets live in --dir:
//
//   coord.sock      writes (mutate/recompute) + coordinator-local reads
//   rep.sock        internal replication stream (replicas connect here)
//   replica-K.sock  read endpoint of replica K — clients fan reads out
//                   across these directly, which is where the tier's read
//                   scaling comes from (each replica is its own process
//                   with its own poll loop)
//
//   ndg_tier --dir=/tmp/tier --replicas=4 --algo=pagerank --vertices=2048
//   ndg_tier --dir=/tmp/tier --replicas=0 ...   # single-process baseline
//
// --chaos=hold:<ms> holds each replica that long before applying every
// replication record — the fault-injection hook tests use to push a replica
// past the coordinator's bounded history (--history=M records) and force
// the snapshot path. --chaos=stale:<records> instead applies records at full
// speed but serves reads from a state up to that many records old (bounded
// per-record staleness; docs/DELAY.md). The old --chaos-lag-ms=N flag still
// works as a deprecated alias for --chaos=hold:N. --role=replica --id=K is
// the internal re-entry used by the forked children; it is not meant to be
// invoked by hand.

#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdlib>
#include <iostream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "nondetgraph.hpp"
#include "tier/coordinator.hpp"
#include "tier/replica.hpp"
#include "util/cli.hpp"

namespace ndg {
namespace {

struct TierConfig {
  dyn::GateMode gate = dyn::GateMode::kAnalyze;
  dyn::DynEngine engine = dyn::DynEngine::kNE;
  EngineOptions engine_opts;
  double compact_threshold = 0.5;
  std::string dir;
  std::size_t replicas = 2;
  std::size_t history = 64;
  std::uint32_t chaos_lag_ms = 0;
  std::uint32_t chaos_stale_records = 0;
  /// Replication transport per replica: "json" (default), "bin" (every
  /// replica negotiates bin1), or "mixed" (even ids binary, odd ids JSON —
  /// the interop configuration the tier tests converge exactly under).
  std::string proto = "json";
};

/// Whether replica `id` should speak bin1 under --proto.
bool replica_is_binary(const TierConfig& cfg, std::size_t id) {
  if (cfg.proto == "bin") return true;
  if (cfg.proto == "mixed") return id % 2 == 0;
  return false;
}

AtomicityMode parse_mode(const std::string& s) {
  if (s == "locked") return AtomicityMode::kLocked;
  if (s == "aligned") return AtomicityMode::kAligned;
  if (s == "seq_cst") return AtomicityMode::kSeqCst;
  return AtomicityMode::kRelaxed;
}

dyn::GateMode parse_gate_or_throw(const std::string& s) {
  if (s == "analyze") return dyn::GateMode::kAnalyze;
  if (s == "static") return dyn::GateMode::kStatic;
  if (s == "theorem1") return dyn::GateMode::kAssumeTheorem1;
  if (s == "theorem2") return dyn::GateMode::kAssumeTheorem2;
  if (s == "ineligible") return dyn::GateMode::kAssumeIneligible;
  throw std::runtime_error(
      "unknown --gate (expected analyze|static|theorem1|theorem2|"
      "ineligible)");
}

Graph load_any(const std::string& path) {
  if (path.size() >= 5 && path.compare(path.size() - 5, 5, ".ndgb") == 0) {
    return load_binary_graph(path);
  }
  auto loaded = load_edge_list(path);
  return Graph::build(loaded.num_vertices, std::move(loaded.edges));
}

/// Deterministic in the flags alone — every process of the tier calls this
/// with identical argv and gets a bit-identical base graph, which is what
/// lets replicas start at seq 0 without an initial snapshot.
Graph build_base_graph(const CliArgs& args) {
  if (args.has("graph")) return load_any(args.get("graph", ""));
  const std::string kind = args.get("kind", "rmat");
  const std::int64_t n_raw = args.get_int("vertices", 1024);
  const auto n = static_cast<VertexId>(n_raw);
  const auto m = static_cast<EdgeId>(args.get_int("edges", 8 * n_raw));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  EdgeList edges;
  if (kind == "rmat") {
    edges = gen::rmat(n, m, seed);
  } else if (kind == "er") {
    edges = gen::erdos_renyi(n, m, seed);
  } else if (kind == "chain") {
    edges = gen::chain(n);
  } else {
    throw std::runtime_error("unknown --kind: " + kind +
                             " (expected rmat|er|chain)");
  }
  if (args.get_bool("symmetrize", false)) edges = symmetrize(edges);
  return Graph::build(n, edges);
}

template <typename Program>
dyn::DynGraphOptions make_graph_opts(const Program& prog,
                                     const TierConfig& cfg) {
  dyn::DynGraphOptions gopts;
  gopts.compact_threshold = cfg.compact_threshold;
  gopts.mem = cfg.engine_opts.mem;
  if constexpr (std::is_same_v<Program, SsspProgram>) {
    const std::uint64_t seed = prog.weight_seed();
    gopts.base_weight = [seed](EdgeId e) {
      return SsspProgram::edge_weight(seed, e);
    };
  }
  return gopts;
}

template <typename Program>
int run_coordinator(Graph base, Program prog, const TierConfig& cfg) {
  dyn::DynGraphOptions gopts = make_graph_opts(prog, cfg);
  dyn::DynGraph g(std::move(base), gopts);
  dyn::EligibilityGate gate =
      dyn::EligibilityGate::make(cfg.gate, g.base(), prog);
  tier::CoordinatorOptions copts;
  copts.dir = cfg.dir;
  copts.history = cfg.history;
  // The launcher forks the replicas into this same process's child set, so
  // the coordinator loop is the right place to reap them: a replica that
  // dies mid-stream is collected promptly (and fails the run) instead of
  // sitting as a zombie behind a dead socket until shutdown.
  copts.reap_children = true;
  tier::Coordinator<Program> coord(std::move(g), std::move(prog),
                                   std::move(gate), cfg.engine_opts,
                                   cfg.engine, copts);
  return coord.run();
}

template <typename Program>
int run_replica(Graph base, Program prog, const TierConfig& cfg,
                std::size_t id) {
  dyn::DynGraphOptions gopts = make_graph_opts(prog, cfg);
  dyn::DynGraph g(std::move(base), gopts);
  dyn::EligibilityGate gate =
      dyn::EligibilityGate::make(cfg.gate, g.base(), prog);
  tier::ReplicaOptions ropts;
  ropts.id = id;
  ropts.dir = cfg.dir;
  ropts.chaos_lag_ms = cfg.chaos_lag_ms;
  ropts.chaos_stale_records = cfg.chaos_stale_records;
  ropts.binary = replica_is_binary(cfg, id);
  tier::Replica<Program> rep(std::move(g), std::move(prog), std::move(gate),
                             cfg.engine_opts, cfg.engine, std::move(gopts),
                             ropts);
  return rep.run();
}

/// Runs `role` under the program the --algo flag selects. The coordinator
/// and every replica resolve the same flags to the same program config, so
/// all processes agree on the algorithm, its parameters, and (for SSSP) the
/// hash-derived base weights.
template <typename RoleFn>
int with_program(const CliArgs& args, const TierConfig& cfg, RoleFn&& role) {
  Graph base = build_base_graph(args);
  const std::string algo = args.get("algo", "pagerank");
  if (algo == "pagerank") {
    return role(std::move(base),
                PageRankProgram(
                    static_cast<float>(args.get_double("eps", 1e-4))),
                cfg);
  }
  if (algo == "sssp") {
    return role(
        std::move(base),
        SsspProgram(static_cast<VertexId>(args.get_int("source", 0)),
                    static_cast<std::uint64_t>(
                        args.get_int("weight-seed", 42))),
        cfg);
  }
  if (algo == "wcc") return role(std::move(base), WccProgram(), cfg);
  throw std::runtime_error("unknown --algo: " + algo +
                           " (expected pagerank|sssp|wcc)");
}

int tier_main(const CliArgs& args) {
  TierConfig cfg;
  cfg.engine_opts.num_threads =
      static_cast<std::size_t>(args.get_int("threads", 2));
  cfg.engine_opts.max_iterations =
      static_cast<std::size_t>(args.get_int("max-iterations", 100000));
  cfg.engine_opts.mode = parse_mode(args.get("mode", "relaxed"));
  cfg.compact_threshold = args.get_double("compact-threshold", 0.5);
  cfg.gate = parse_gate_or_throw(args.get("gate", "analyze"));
  cfg.dir = args.get("dir", "");
  cfg.replicas = static_cast<std::size_t>(args.get_int("replicas", 2));
  cfg.history = static_cast<std::size_t>(args.get_int("history", 64));
  if (args.has("chaos-lag-ms")) {
    // Deprecated spelling, kept as an alias so existing harnesses survive.
    std::cerr << "ndg_tier: --chaos-lag-ms is deprecated; use "
                 "--chaos=hold:<ms>\n";
    cfg.chaos_lag_ms =
        static_cast<std::uint32_t>(args.get_int("chaos-lag-ms", 0));
  }
  if (args.has("chaos")) {
    const std::string chaos = args.get("chaos", "");
    const auto colon = chaos.find(':');
    const std::string mode = chaos.substr(0, colon);
    const std::string val =
        colon == std::string::npos ? "" : chaos.substr(colon + 1);
    if (mode == "hold" && !val.empty()) {
      cfg.chaos_lag_ms = static_cast<std::uint32_t>(std::stoul(val));
    } else if (mode == "stale" && !val.empty()) {
      cfg.chaos_stale_records = static_cast<std::uint32_t>(std::stoul(val));
    } else {
      throw std::runtime_error(
          "bad --chaos (expected hold:<ms> or stale:<records>)");
    }
  }
  cfg.proto = args.get("proto", "json");
  if (cfg.proto != "json" && cfg.proto != "bin" && cfg.proto != "mixed") {
    throw std::runtime_error("unknown --proto (expected json|bin|mixed)");
  }
  const std::string engine = args.get("engine", "ne");
  if (engine == "async") {
    cfg.engine = dyn::DynEngine::kPureAsync;
  } else if (engine == "ne") {
    cfg.engine = dyn::DynEngine::kNE;
  } else {
    throw std::runtime_error("unknown --engine (expected ne|async)");
  }
  if (cfg.dir.empty()) {
    throw std::runtime_error("--dir=PATH is required (socket directory)");
  }

  const std::string role = args.get("role", "launch");
  if (role == "replica") {
    const auto id = static_cast<std::size_t>(args.get_int("id", 0));
    return with_program(args, cfg,
                        [id](Graph b, auto prog, const TierConfig& c) {
                          return run_replica(std::move(b), std::move(prog),
                                             c, id);
                        });
  }
  if (role != "launch" && role != "coordinator") {
    throw std::runtime_error("unknown --role (expected launch|replica)");
  }

  // Fork the replicas BEFORE the coordinator builds anything: the parent is
  // still single-threaded here (gate analysis and engine runs spawn teams),
  // so plain fork without exec is safe, and each child constructs its own
  // graph/program/engine from the shared flags.
  std::vector<pid_t> children;
  for (std::size_t k = 0; k < cfg.replicas; ++k) {
    const pid_t pid = ::fork();
    if (pid < 0) throw std::runtime_error("fork failed");
    if (pid == 0) {
      int rc = 1;
      try {
        rc = with_program(args, cfg,
                          [k](Graph b, auto prog, const TierConfig& c) {
                            return run_replica(std::move(b),
                                               std::move(prog), c, k);
                          });
      } catch (const std::exception& e) {
        std::cerr << "ndg_tier: replica " << k << ": " << e.what() << "\n";
      }
      std::_Exit(rc);
    }
    children.push_back(pid);
  }

  int rc = 1;
  try {
    rc = with_program(args, cfg,
                      [](Graph b, auto prog, const TierConfig& c) {
                        return run_coordinator(std::move(b),
                                               std::move(prog), c);
                      });
  } catch (const std::exception& e) {
    std::cerr << "ndg_tier: coordinator: " << e.what() << "\n";
    for (const pid_t pid : children) ::kill(pid, SIGKILL);
  }
  for (const pid_t pid : children) {
    int status = 0;
    pid_t r;
    while ((r = ::waitpid(pid, &status, 0)) < 0 && errno == EINTR) {
    }
    // ECHILD: the coordinator's reap loop already collected this child (and
    // folded any crash into its own return code above).
    if (r < 0) continue;
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) rc = 1;
  }
  return rc;
}

}  // namespace
}  // namespace ndg

int main(int argc, char** argv) {
  // A reader vanishing mid-reply must not kill any tier process.
  std::signal(SIGPIPE, SIG_IGN);
  ndg::CliArgs args(argc, argv);
  try {
    return ndg::tier_main(args);
  } catch (const std::exception& e) {
    std::cerr << "ndg_tier: " << e.what() << "\n";
    return 1;
  }
}
