#!/usr/bin/env python3
"""ndg_lint — policy checker for the NE access-policy layer.

The whole point of src/atomics/ is that EVERY edge-slot access in an
algorithm or engine goes through an AccessPolicy, so the atomicity ablation
(Table III) and the manifest enforcement (docs/ANALYSIS.md) see every access.
A single raw `slots()` poke or `reinterpret_cast` around the policy silently
invalidates both. This linter keeps that contract honest at the source level:

  raw-slots         direct `slots()` access outside src/atomics/ (the one
                    directory allowed to touch raw storage).
  raw-cast          `reinterpret_cast` outside src/atomics/, except casts to
                    byte pointers (char*/unsigned char*/std::byte*) used for
                    binary I/O — those do not alias edge slots.
  missing-manifest  a `*Program` vertex-program class without a
                    `static constexpr AccessManifest kManifest` declaration
                    (the static analyzer needs one per program).
  aligned-rmw       `ctx.accumulate(...)`/`ctx.exchange(...)` in a program
                    file whose manifest does not declare `.rmw = true` —
                    an RMW the manifest hides would wrongly pass the
                    AlignedAccess compatibility check (method 2 has atomic
                    loads/stores but NO atomic read-modify-write).
  missing-direction-manifest
                    a program file declaring a push entry point
                    (`void update_push(...)`) without a
                    `static constexpr AccessManifest kPushManifest` —
                    a push body with no push-side manifest is invisible to
                    the per-direction eligibility verdicts, so the
                    direction-optimizing engine would run an unanalyzed
                    direction.

Suppressions: a `// ndg-lint: allow(<rule>)` comment on the offending line or
the line directly above silences that rule for that line. Every allow is
expected to carry a justification in the surrounding comment.

Engines: `--engine=clang` parses the file with libclang (python bindings)
and checks member-call ASTs; when libclang is unavailable the tool FALLS
BACK to the pattern engine with a notice instead of silently passing —
`--engine=pattern` (the default used in CI) needs nothing but python3.

Self test: `--self-test --repo <path>` checks both directions — src/ must
come back clean AND the seeded fixture under tests/lint_fixtures/ must
trip every rule. A linter that cannot flag the fixture fails its own test.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

RULES = (
    "raw-slots",
    "raw-cast",
    "missing-manifest",
    "aligned-rmw",
    "missing-direction-manifest",
)

# Directory (relative to the scan root) that is allowed to touch raw storage.
EXEMPT_DIR_PARTS = ("atomics",)

SOURCE_SUFFIXES = {".hpp", ".cpp", ".h", ".cc"}

ALLOW_RE = re.compile(r"ndg-lint:\s*allow\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)")
RAW_SLOTS_RE = re.compile(r"\bslots\s*\(\s*\)")
RAW_CAST_RE = re.compile(r"\breinterpret_cast\s*<\s*([^>]+?)\s*>")
# Byte-pointer targets are binary-I/O plumbing, not slot aliasing.
BYTE_CAST_RE = re.compile(
    r"^(?:const\s+)?(?:(?:unsigned\s+|signed\s+)?char|std::byte|std::uint8_t|uint8_t)"
    r"\s*(?:const\s*)?\*+$"
)
PROGRAM_DECL_RE = re.compile(r"\b(?:class|struct)\s+(\w*Program)\b(?!\s*;)")
MANIFEST_RE = re.compile(r"\bstatic\s+constexpr\s+AccessManifest\s+kManifest\b")
RMW_DECL_RE = re.compile(r"\.rmw\s*=\s*true")
UPDATE_PUSH_RE = re.compile(r"\bvoid\s+update_push\s*\(")
PUSH_MANIFEST_RE = re.compile(
    r"\bstatic\s+constexpr\s+AccessManifest\s+kPushManifest\b"
)
RMW_CALL_RE = re.compile(r"\b(?:ctx|context)\s*\.\s*(accumulate|exchange)\s*\(")


class Finding:
    def __init__(self, path: Path, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"

    def to_json(self) -> dict:
        return {
            "file": str(self.path),
            "line": self.line,
            "rule": self.rule,
            "message": self.message,
        }


def allowed_rules(lines: list[str], idx: int) -> set[str]:
    """Rules suppressed for line `idx` (same line or the line above)."""
    rules: set[str] = set()
    for probe in (idx, idx - 1):
        if 0 <= probe < len(lines):
            m = ALLOW_RE.search(lines[probe])
            if m:
                rules.update(r.strip() for r in m.group(1).split(","))
    return rules


def is_exempt(path: Path) -> bool:
    return any(part in EXEMPT_DIR_PARTS for part in path.parts)


def strip_line_comment(line: str) -> str:
    """Drops // comments so commented-out examples don't trip rules.
    (Block comments spanning lines are rare in this codebase; the allow
    annotation mechanism covers any residual false positive.)"""
    pos = line.find("//")
    return line if pos < 0 else line[:pos]


def lint_file_pattern(path: Path) -> list[Finding]:
    try:
        text = path.read_text(encoding="utf-8", errors="replace")
    except OSError as e:
        return [Finding(path, 0, "io", f"unreadable: {e}")]
    lines = text.splitlines()
    findings: list[Finding] = []
    exempt = is_exempt(path)

    program_decls: list[tuple[int, str]] = []
    # File-level facts come from comment-stripped code so a doc comment
    # mentioning `.rmw = true` doesn't satisfy the declaration rule.
    code_text = "\n".join(strip_line_comment(l) for l in lines)
    has_manifest = MANIFEST_RE.search(code_text) is not None
    declares_rmw = RMW_DECL_RE.search(code_text) is not None
    has_push_manifest = PUSH_MANIFEST_RE.search(code_text) is not None
    push_decls: list[int] = []

    for i, raw in enumerate(lines):
        code = strip_line_comment(raw)
        allowed = allowed_rules(lines, i)

        if not exempt and "raw-slots" not in allowed:
            if RAW_SLOTS_RE.search(code):
                findings.append(
                    Finding(
                        path, i + 1, "raw-slots",
                        "direct edge-slot access bypasses the AccessPolicy "
                        "layer (only src/atomics/ may touch raw storage); "
                        "route through the policy or justify with "
                        "`ndg-lint: allow(raw-slots)`",
                    )
                )
        if not exempt and "raw-cast" not in allowed:
            for m in RAW_CAST_RE.finditer(code):
                target = re.sub(r"\s+", " ", m.group(1)).strip()
                if BYTE_CAST_RE.match(target):
                    continue  # binary-I/O byte views are fine
                findings.append(
                    Finding(
                        path, i + 1, "raw-cast",
                        f"reinterpret_cast<{target}> outside src/atomics/ can "
                        "alias edge slots around the policy layer; use the "
                        "policy API or justify with `ndg-lint: allow(raw-cast)`",
                    )
                )
        m = PROGRAM_DECL_RE.search(code)
        if m and "missing-manifest" not in allowed:
            program_decls.append((i + 1, m.group(1)))
        if (
            UPDATE_PUSH_RE.search(code)
            and "missing-direction-manifest" not in allowed
        ):
            push_decls.append(i + 1)
        if (
            program_decls
            and not declares_rmw
            and "aligned-rmw" not in allowed
            and RMW_CALL_RE.search(code)
        ):
            findings.append(
                Finding(
                    path, i + 1, "aligned-rmw",
                    f"ctx.{RMW_CALL_RE.search(code).group(1)}() is a "
                    "read-modify-write but the file's AccessManifest does not "
                    "declare `.rmw = true`; an undeclared RMW defeats the "
                    "AlignedAccess compatibility check (method 2 has no "
                    "atomic RMW)",
                )
            )

    if not exempt and not has_manifest:
        for line_no, name in program_decls:
            findings.append(
                Finding(
                    path, line_no, "missing-manifest",
                    f"vertex program `{name}` declares no "
                    "`static constexpr AccessManifest kManifest`; the static "
                    "eligibility analyzer (docs/ANALYSIS.md) requires one "
                    "per program",
                )
            )
    if not exempt and program_decls and not has_push_manifest:
        for line_no in push_decls:
            findings.append(
                Finding(
                    path, line_no, "missing-direction-manifest",
                    "`update_push` declared but the file has no "
                    "`static constexpr AccessManifest kPushManifest`; a push "
                    "entry point without a push-side manifest gets no "
                    "per-direction verdict, so the direction-optimizing "
                    "engine would run an unanalyzed direction "
                    "(docs/ANALYSIS.md)",
                )
            )
    return findings


# --- clang engine (optional) ------------------------------------------------


def lint_file_clang(path: Path, include_dir: Path) -> list[Finding] | None:
    """AST-based raw-slots/raw-cast check via libclang. Returns None when
    libclang is unavailable so the caller can fall back loudly."""
    try:
        from clang import cindex  # type: ignore
    except ImportError:
        return None
    try:
        index = cindex.Index.create()
    except cindex.LibclangError:
        return None
    tu = index.parse(
        str(path),
        args=["-std=c++20", f"-I{include_dir}", "-x", "c++"],
    )
    lines = path.read_text(encoding="utf-8", errors="replace").splitlines()
    findings: list[Finding] = []
    if is_exempt(path):
        return findings

    def visit(node):
        loc = node.location
        in_this_file = loc.file and Path(loc.file.name) == path
        if in_this_file:
            idx = loc.line - 1
            allowed = allowed_rules(lines, idx)
            if (
                node.kind == cindex.CursorKind.CALL_EXPR
                and node.spelling == "slots"
                and "raw-slots" not in allowed
            ):
                findings.append(
                    Finding(path, loc.line, "raw-slots",
                            "direct edge-slot access bypasses the "
                            "AccessPolicy layer (clang AST)"))
            if (
                node.kind == cindex.CursorKind.CXX_REINTERPRET_CAST_EXPR
                and "raw-cast" not in allowed
            ):
                target = re.sub(r"\s+", " ", node.type.spelling).strip()
                if not BYTE_CAST_RE.match(target):
                    findings.append(
                        Finding(path, loc.line, "raw-cast",
                                f"reinterpret_cast to {target} (clang AST)"))
        for child in node.get_children():
            visit(child)

    visit(tu.cursor)
    # Manifest rules stay pattern-based even under clang (they are
    # declaration-presence checks, not expression checks).
    for f in lint_file_pattern(path):
        if f.rule in (
            "missing-manifest",
            "aligned-rmw",
            "missing-direction-manifest",
        ):
            findings.append(f)
    return findings


# --- driver -----------------------------------------------------------------


def collect_files(paths: list[Path]) -> list[Path]:
    files: list[Path] = []
    for p in paths:
        if p.is_dir():
            files.extend(
                f for f in sorted(p.rglob("*")) if f.suffix in SOURCE_SUFFIXES
            )
        elif p.suffix in SOURCE_SUFFIXES:
            files.append(p)
    return files


def run_lint(paths: list[Path], engine: str, include_dir: Path) -> list[Finding]:
    findings: list[Finding] = []
    clang_ok = engine in ("clang", "auto")
    warned = False
    for f in collect_files(paths):
        result = None
        if clang_ok:
            result = lint_file_clang(f, include_dir)
            if result is None:
                clang_ok = False
                if engine == "clang" and not warned:
                    print(
                        "ndg_lint: libclang unavailable, falling back to the "
                        "pattern engine (NOT silently skipping)",
                        file=sys.stderr,
                    )
                    warned = True
        if result is None:
            result = lint_file_pattern(f)
        findings.extend(result)
    return findings


def self_test(repo: Path, engine: str) -> int:
    src = repo / "src"
    fixture_dir = repo / "tests" / "lint_fixtures"
    include_dir = src
    ok = True

    clean = run_lint([src], engine, include_dir)
    if clean:
        print(f"self-test FAIL: src/ should be clean, found {len(clean)}:")
        for f in clean:
            print(f"  {f}")
        ok = False
    else:
        print(f"self-test: src/ clean ({len(collect_files([src]))} files)")

    flagged = run_lint([fixture_dir], engine, include_dir)
    tripped = {f.rule for f in flagged}
    missing = [r for r in RULES if r not in tripped]
    if missing:
        print(
            "self-test FAIL: fixture under tests/lint_fixtures/ must trip "
            f"every rule; missing {missing} (tripped: {sorted(tripped)})"
        )
        ok = False
    else:
        print(
            f"self-test: fixture tripped all {len(RULES)} rules "
            f"({len(flagged)} findings)"
        )
    return 0 if ok else 1


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("paths", nargs="*", type=Path,
                    help="files or directories to lint (default: <repo>/src)")
    ap.add_argument("--repo", type=Path, default=Path(__file__).resolve().parents[1],
                    help="repository root (for defaults and --self-test)")
    ap.add_argument("--engine", choices=("auto", "pattern", "clang"),
                    default="pattern",
                    help="auto/clang try libclang AST first; pattern (default) "
                         "is pure-regex and dependency-free")
    ap.add_argument("--json", action="store_true",
                    help="emit findings as a JSON array")
    ap.add_argument("--self-test", action="store_true",
                    help="lint <repo>/src (expect clean) and "
                         "<repo>/tests/lint_fixtures (expect every rule)")
    args = ap.parse_args()

    if args.self_test:
        return self_test(args.repo, args.engine)

    paths = args.paths or [args.repo / "src"]
    findings = run_lint(paths, args.engine, args.repo / "src")
    if args.json:
        print(json.dumps([f.to_json() for f in findings], indent=2))
    else:
        for f in findings:
            print(f)
        n_files = len(collect_files(paths))
        print(f"ndg_lint: {len(findings)} finding(s) in {n_files} file(s)")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
