#pragma once
// DynGraph — a mutable overlay over the immutable CSR/CSC Graph.
//
// The engines (and the VertexProgram update functions they drive) only ever
// touch a graph through the span-based adjacency surface: num_vertices /
// out_degree / out_neighbors / out_edge_id / in_edges. DynGraph reproduces
// that surface over base-plus-overlay storage, so every engine templated on
// GraphT (nondeterministic.hpp, pure_async.hpp) runs on a mutated topology
// unchanged — no edge-at-a-time iterator abstraction, no virtual calls.
//
// Representation: unpack-on-write per-vertex segments. A vertex side (out or
// in) starts as a view of the base CSR/CSC arrays; the FIRST mutation that
// touches that side copies the base adjacency into an arena-backed SegVec
// (dyn/seg_vec.hpp) and all later reads serve from the segment. Spans stay
// contiguous and sorted (out by dst, in by src), so binary-search edge lookup
// and the programs' random-access loops both keep working.
//
// Edge ids: base edges keep their canonical CSR ids; inserts reuse the most
// recently retired id from a freelist when one exists and take a fresh id
// from a bump counter at the top of the id space otherwise (num_edges() is
// the id-space BOUND, which is what EdgeDataArray/lock-table sizing needs —
// it counts retired-and-not-yet-reused slots too). Deletes retire the id
// onto the freelist, so delete-heavy streams stop growing id space; the
// holes a pure delete stream leaves are only reclaimed by compact(), which
// rebuilds an exact-size CSR via Graph::build and returns an old-id ->
// new-id remap so callers can carry edge data across. Id assignment happens
// in the serial validation phase in batch order, so it is deterministic —
// replicas replaying the same batch stream assign identical ids.
//
// Thread-safety: apply() is the only mutator and requires quiescence (no
// concurrent engine run); it parallelizes internally over the Worklist
// concept (src/sched/) with each vertex *side* owned by exactly one worker.
// All read accessors are const and safe to share with a running engine
// between batches.

#include <functional>
#include <span>
#include <vector>

#include "dyn/mutation.hpp"
#include "dyn/seg_vec.hpp"
#include "graph/graph.hpp"
#include "util/types.hpp"

namespace ndg::dyn {

struct DynGraphOptions {
  /// Weight assigned to each BASE edge id at construction (inserted edges
  /// carry their mutation's weight). Null = every base edge weighs 1.0. SSSP
  /// passes SsspProgram::edge_weight here so the dynamic view and the static
  /// reference agree on the initial weights.
  std::function<float(EdgeId)> base_weight;
  /// compact() is advised (should_compact()) once overflow_ratio() exceeds
  /// this. <= 0 advises compaction after any mutation. The default was 0.25
  /// before the edge-id freelist; with retired ids reused by later inserts,
  /// mixed streams accumulate holes far more slowly, so fewer stop-the-world
  /// compactions are needed per stream.
  double compact_threshold = 0.5;
  /// Placement for overlay segments and the weight array.
  MemSpec mem{};
};

class DynGraph {
 public:
  DynGraph() = default;
  explicit DynGraph(Graph base, DynGraphOptions opts = {});

  // --- Graph-view surface (what UpdateContext/AsyncContext consume) ---

  [[nodiscard]] VertexId num_vertices() const { return base_.num_vertices(); }

  /// Edge-ID SPACE BOUND, not the live-edge count: every valid edge id is
  /// < num_edges(), but retired (deleted) ids below it stay allocated until
  /// compact(). Size EdgeDataArray / lock tables with this.
  [[nodiscard]] EdgeId num_edges() const { return next_edge_id_; }

  [[nodiscard]] EdgeId num_live_edges() const { return live_edges_; }

  [[nodiscard]] EdgeId out_degree(VertexId v) const {
    const Overlay& o = overlay_[v];
    return o.out_unpacked ? static_cast<EdgeId>(o.out_targets.size())
                          : base_.out_degree(v);
  }
  [[nodiscard]] EdgeId in_degree(VertexId v) const {
    const Overlay& o = overlay_[v];
    return o.in_unpacked ? static_cast<EdgeId>(o.in.size())
                         : base_.in_degree(v);
  }

  [[nodiscard]] std::span<const VertexId> out_neighbors(VertexId v) const {
    const Overlay& o = overlay_[v];
    return o.out_unpacked ? o.out_targets.span() : base_.out_neighbors(v);
  }

  [[nodiscard]] EdgeId out_edge_id(VertexId v, std::size_t k) const {
    const Overlay& o = overlay_[v];
    return o.out_unpacked ? o.out_ids[k] : base_.out_edge_id(v, k);
  }

  [[nodiscard]] std::span<const InEdge> in_edges(VertexId v) const {
    const Overlay& o = overlay_[v];
    return o.in_unpacked ? o.in.span() : base_.in_edges(v);
  }

  /// Current weight of a live edge id (inserted edges carry the mutation's
  /// weight; base edges the construction-time weight; weight-changes the
  /// latest value).
  [[nodiscard]] float edge_weight(EdgeId e) const { return weights_[e]; }

  // --- Lookup ---

  /// Edge id of directed edge (u, v), or kInvalidEdge when absent.
  [[nodiscard]] EdgeId find_edge(VertexId u, VertexId v) const;
  [[nodiscard]] bool has_edge(VertexId u, VertexId v) const {
    return find_edge(u, v) != kInvalidEdge;
  }

  // --- Mutation ---

  /// Applies one sealed batch. Each mutation is validated serially (ids
  /// assigned, conflicts within the batch rejected — at most ONE mutation
  /// per directed edge per epoch), then adjacency updates fan out over a
  /// stealing worklist with `num_threads` workers: out-sides keyed by src,
  /// then in-sides keyed by dst, so no vertex side sees two writers.
  /// Returns the applied records in batch order (rejected ones omitted);
  /// `stats` (optional) receives counts. Requires quiescence.
  std::vector<AppliedMutation> apply(const MutationBatch& batch,
                                     ApplyStats* stats = nullptr,
                                     std::size_t num_threads = 1);

  /// Replays mutations already validated (and id-assigned) by another
  /// DynGraph — the replica side of log shipping (docs/TIER.md). Skips
  /// validation and the freelist entirely: edge ids are taken verbatim from
  /// the records, so the local id space ends up identical to the shipper's
  /// provided both sides started from the same state and replayed the same
  /// record stream in order. Asserts (debug builds) that deletes/reweights
  /// land on the edge the record names. Requires quiescence.
  ApplyStats apply_replicated(const std::vector<AppliedMutation>& muts,
                              std::size_t num_threads = 1);

  // --- Compaction ---

  /// (retired id slots + ids grown past the base CSR) / base edges — the
  /// fraction of edge-id space and overlay work a rebuild would reclaim.
  /// A SIZE measure only: the freelist lets a delete + reuse-insert return
  /// this to exactly 0 while ids no longer follow (src, dst) order — use
  /// ids_canonical() for order questions, never overflow_ratio() == 0.
  [[nodiscard]] double overflow_ratio() const;

  /// True while edge k of the (src, dst)-sorted live edge list is guaranteed
  /// to carry id k — the invariant canonical snapshots (docs/TIER.md) rely
  /// on. Holds from construction (Graph::build assigns ids in canonical
  /// order) until the first applied topology mutation and is restored by
  /// compact(). Conservative: a mutated graph whose ids happen to line up
  /// still reports false. Weight changes never clear it (ids are untouched).
  [[nodiscard]] bool ids_canonical() const { return ids_canonical_; }
  [[nodiscard]] bool should_compact() const {
    return overflow_ratio() > compact_threshold_;
  }

  struct CompactResult {
    /// old edge id -> new edge id; kInvalidEdge for retired ids. Size =
    /// pre-compaction num_edges().
    std::vector<EdgeId> old_to_new;
    /// Pre-compaction id-space bound (== old_to_new.size()).
    EdgeId old_edge_bound = 0;
    /// Post-compaction edge count (== num_edges() afterwards).
    EdgeId new_num_edges = 0;
  };

  /// Rebuilds the base CSR from the live edge set via Graph::build (exact-
  /// size arrays, canonical sorted ids), drops every overlay segment, and
  /// remaps the weight array. Edge data held OUTSIDE the graph must be
  /// remapped by the caller with the returned table (IncrementalEngine does
  /// this). Requires quiescence.
  CompactResult compact();

  /// Live edges as an (unsorted-id, sorted-(src,dst)) edge list — the input
  /// compact() feeds Graph::build, exposed for equivalence tests.
  [[nodiscard]] EdgeList live_edge_list() const;

  [[nodiscard]] const Graph& base() const { return base_; }

  /// Retired ids currently available for reuse by inserts.
  [[nodiscard]] std::size_t freelist_size() const { return free_ids_.size(); }

  /// Lifetime mutation counters (serve `stats` op).
  [[nodiscard]] std::uint64_t total_inserted() const { return inserted_; }
  [[nodiscard]] std::uint64_t total_deleted() const { return deleted_; }
  [[nodiscard]] std::uint64_t total_reweighted() const { return reweighted_; }
  [[nodiscard]] std::uint64_t compactions() const { return compactions_; }

 private:
  struct Overlay {
    SegVec<VertexId> out_targets;  // sorted by target id
    SegVec<EdgeId> out_ids;        // parallel to out_targets
    SegVec<InEdge> in;             // sorted by source id
    bool out_unpacked = false;
    bool in_unpacked = false;
  };

  void ensure_out_unpacked(VertexId v);
  void ensure_in_unpacked(VertexId v);
  /// Parallel adjacency update shared by apply() and apply_replicated():
  /// out-sides keyed by src, then in-sides keyed by dst, over a stealing
  /// worklist with `num_threads` workers.
  void fan_out_topology(std::vector<const AppliedMutation*>& topo,
                        std::size_t num_threads);
  void apply_out_group(VertexId u,
                       const std::vector<const AppliedMutation*>& muts,
                       std::size_t begin, std::size_t end);
  void apply_in_group(VertexId v,
                      const std::vector<const AppliedMutation*>& muts,
                      std::size_t begin, std::size_t end);

  Graph base_;
  std::vector<Overlay> overlay_;
  SegVec<float> weights_;  // indexed by edge id, grows with the id space
  EdgeId next_edge_id_ = 0;
  EdgeId live_edges_ = 0;
  /// Retired edge ids awaiting reuse, most recently retired last (inserts
  /// pop from the back). Cleared by compact() — the rebuilt id space has no
  /// holes — and never consulted by apply_replicated (replicas follow the
  /// shipper's id assignment instead of allocating).
  std::vector<EdgeId> free_ids_;
  /// Cleared by the first applied topology mutation (insert or delete, both
  /// apply() and apply_replicated()), restored by compact().
  bool ids_canonical_ = true;
  double compact_threshold_ = 0.5;
  MemSpec mem_{};
  std::function<float(EdgeId)> base_weight_;
  std::uint64_t inserted_ = 0;
  std::uint64_t deleted_ = 0;
  std::uint64_t reweighted_ = 0;
  std::uint64_t compactions_ = 0;
};

}  // namespace ndg::dyn
