#pragma once
// IncrementalEngine — the epoch loop of the streaming subsystem: apply a
// sealed MutationBatch to the DynGraph, ask the EligibilityGate whether the
// previous result survives as a warm starting state, patch edge data through
// the program's dyn hooks, and re-drive one of the racy engines from the
// affected-vertex seed set (or cold-recompute when the gate says no).
//
// Ownership: the engine owns the EdgeDataArray (the algorithm's persistent
// result state across epochs); the caller owns the DynGraph, the program and
// the gate. Edge ids are stable WITHIN an epoch; when the overlay grows past
// the compaction threshold the engine compacts after the recompute and remaps
// its edge data with the old->new table, so the next epoch starts on a fresh
// exact-size CSR with the warm state intact.
//
// Everything here requires quiescence between calls — ndg_serve's command
// loop provides it by construction (queries are answered between epochs).

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "dyn/dyn_graph.hpp"
#include "dyn/dyn_program.hpp"
#include "dyn/eligibility_gate.hpp"
#include "dyn/mutation.hpp"
#include "engine/nondeterministic.hpp"
#include "engine/pure_async.hpp"

namespace ndg::dyn {

/// Which racy engine re-drives the computation each epoch.
enum class DynEngine {
  kNE,         // barriered nondeterministic engine (Section II model)
  kPureAsync,  // barrier-free engine (§VII future work model)
};

[[nodiscard]] inline const char* to_string(DynEngine e) {
  return e == DynEngine::kNE ? "ne" : "pure-async";
}

/// Per-epoch outcome (ndg_serve's `recompute` reply and the dyn benches).
struct EpochResult {
  std::uint64_t epoch = 0;
  bool warm = false;
  const char* gate_reason = "";
  ApplyStats apply_stats;
  std::size_t seed_count = 0;
  EngineResult engine;
  bool compacted = false;
};

template <VertexProgram Program>
class IncrementalEngine {
 public:
  using EdgeData = typename Program::EdgeData;

  IncrementalEngine(DynGraph& graph, Program& prog, EligibilityGate gate,
                    EngineOptions opts, DynEngine engine = DynEngine::kNE)
      : g_(&graph), prog_(&prog), gate_(std::move(gate)), opts_(opts),
        engine_(engine) {}

  /// Full cold pass on the CURRENT view: re-initializes program and edge
  /// state and runs from the program's own initial frontier. Also the
  /// warm-path fallback.
  EngineResult recompute_cold() {
    edges_ = EdgeDataArray<EdgeData>(g_->num_edges(), EdgeData{}, opts_.mem);
    prog_->init(*g_, edges_);
    ++cold_runs_;
    return run_engine(prog_->initial_frontier(*g_));
  }

  /// Applies one sealed batch and brings the result back to a fixed point.
  EpochResult apply_epoch(const MutationBatch& batch) {
    EpochResult out;
    out.epoch = batch.epoch;

    const std::vector<AppliedMutation> applied =
        g_->apply(batch, &out.apply_stats, opts_.num_threads);

    const GateDecision decision = gate_.decide(*prog_, applied);
    out.warm = decision.warm;
    out.gate_reason = decision.reason;

    if (applied.empty()) {
      // Nothing landed (empty batch or all rejected): state is already a
      // fixed point; no engine run needed.
      out.engine.converged = true;
      out.warm = true;
      out.gate_reason = "empty-batch";
    } else if (decision.warm) {
      // Grow the slot array for freshly assigned ids, patch edge state per
      // mutation, and resume from the affected set.
      edges_.resize(g_->num_edges());
      std::vector<VertexId> seeds;
      if constexpr (DynamicProgram<Program>) {
        for (const AppliedMutation& m : applied) {
          prog_->dyn_apply(*g_, edges_, m, seeds);
        }
      }
      out.seed_count = seeds.size();
      ++warm_runs_;
      out.engine = run_engine(std::move(seeds));
    } else {
      out.engine = recompute_cold();
    }

    if (g_->should_compact()) {
      compact_now();
      out.compacted = true;
    }
    ++epochs_;
    return out;
  }

  /// Rebuilds the CSR and remaps the persistent edge data (warm state
  /// survives under new ids). Exposed for tests; apply_epoch calls it
  /// automatically past the threshold.
  void compact_now() {
    const DynGraph::CompactResult remap = g_->compact();
    EdgeDataArray<EdgeData> packed(remap.new_num_edges, EdgeData{}, opts_.mem);
    const EdgeId bound =
        std::min<EdgeId>(remap.old_edge_bound, edges_.size());
    for (EdgeId e = 0; e < bound; ++e) {
      const EdgeId ne = remap.old_to_new[e];
      if (ne != kInvalidEdge) packed.set(ne, edges_.get(e));
    }
    edges_ = std::move(packed);
  }

  [[nodiscard]] const EdgeDataArray<EdgeData>& edges() const { return edges_; }
  [[nodiscard]] EdgeDataArray<EdgeData>& edges() { return edges_; }
  [[nodiscard]] const EligibilityGate& gate() const { return gate_; }
  [[nodiscard]] const EngineOptions& options() const { return opts_; }
  [[nodiscard]] DynEngine engine_kind() const { return engine_; }
  [[nodiscard]] std::uint64_t epochs() const { return epochs_; }
  [[nodiscard]] std::uint64_t warm_runs() const { return warm_runs_; }
  [[nodiscard]] std::uint64_t cold_runs() const { return cold_runs_; }

 private:
  EngineResult run_engine(std::vector<VertexId> seeds) {
    if (engine_ == DynEngine::kPureAsync) {
      return run_pure_async_from(*g_, *prog_, edges_, std::move(seeds), opts_);
    }
    return run_nondeterministic_from(*g_, *prog_, edges_, std::move(seeds),
                                     opts_);
  }

  DynGraph* g_;
  Program* prog_;
  EligibilityGate gate_;
  EngineOptions opts_;
  DynEngine engine_;
  EdgeDataArray<EdgeData> edges_;
  std::uint64_t epochs_ = 0;
  std::uint64_t warm_runs_ = 0;
  std::uint64_t cold_runs_ = 0;
};

}  // namespace ndg::dyn
