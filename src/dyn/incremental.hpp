#pragma once
// IncrementalEngine — the epoch loop of the streaming subsystem: apply a
// sealed MutationBatch to the DynGraph, ask the EligibilityGate whether the
// previous result survives as a warm starting state, patch edge data through
// the program's dyn hooks, and re-drive one of the racy engines from the
// affected-vertex seed set (or cold-recompute when the gate says no).
//
// Ownership: the engine owns the EdgeDataArray (the algorithm's persistent
// result state across epochs); the caller owns the DynGraph, the program and
// the gate. Edge ids are stable WITHIN an epoch; when the overlay grows past
// the compaction threshold the engine compacts after the recompute and remaps
// its edge data with the old->new table, so the next epoch starts on a fresh
// exact-size CSR with the warm state intact.
//
// Mutating entry points (apply_epoch, compact_now, recompute_cold) still
// require quiescence between calls. What IS allowed concurrently is a
// labeled racy read: while apply_epoch is inside its engine run — and only
// then, see phase() — live_value() may be called from another thread. It
// reconstructs one vertex value purely from individually-atomic edge-slot
// reads routed through the configured access policy, the same Lemma 1
// license the engines' own reads rely on. ndg_serve's --live-queries mode is
// the consumer: queries answered mid-recompute, labeled "quiescent":false.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <utility>
#include <vector>

#include "delay/delayed_engine.hpp"
#include "dyn/dyn_graph.hpp"
#include "dyn/dyn_program.hpp"
#include "dyn/eligibility_gate.hpp"
#include "dyn/mutation.hpp"
#include "engine/nondeterministic.hpp"
#include "engine/pure_async.hpp"

namespace ndg::dyn {

/// Which racy engine re-drives the computation each epoch.
enum class DynEngine {
  kNE,         // barriered nondeterministic engine (Section II model)
  kPureAsync,  // barrier-free engine (§VII future work model)
};

[[nodiscard]] inline const char* to_string(DynEngine e) {
  return e == DynEngine::kNE ? "ne" : "pure-async";
}

/// Where apply_epoch currently is, published for concurrent observers
/// (ndg_serve's event loop). The distinction that matters to a live reader:
/// kRunning means the graph view and the edge-slot ARRAY are structurally
/// frozen (only slot CONTENTS race, through atomic/aligned accesses), so
/// individual edge reads are licensed; kMutating means adjacency overlays
/// and the slot array itself are being resized/rebuilt, so no concurrent
/// access of any kind is safe.
enum class EpochPhase : int {
  kIdle = 0,  // between epochs; everything quiescent
  kMutating,  // batch apply / edge-data resize / cold re-init / compaction
  kRunning,   // racy engine run — live reads licensed (Lemma 1)
};

/// One edge-slot read through the runtime-selected atomicity method. The
/// locked policy's table is private to an engine run, and Lemma 1 needs no
/// lock for an individual word read, so kLocked routes through the relaxed
/// atomic load.
template <EdgePod T>
[[nodiscard]] inline T policy_edge_read(const EdgeDataArray<T>& a, EdgeId e,
                                        AtomicityMode mode) {
  switch (mode) {
    case AtomicityMode::kAligned: return AlignedAccess{}.read(a, e);
    case AtomicityMode::kSeqCst: return SeqCstAccess{}.read(a, e);
    case AtomicityMode::kLocked:
    case AtomicityMode::kRelaxed: break;
  }
  return RelaxedAtomicAccess{}.read(a, e);
}

/// Per-epoch outcome (ndg_serve's `recompute` reply and the dyn benches).
struct EpochResult {
  std::uint64_t epoch = 0;
  bool warm = false;
  const char* gate_reason = "";
  ApplyStats apply_stats;
  std::size_t seed_count = 0;
  EngineResult engine;
  bool compacted = false;
};

template <VertexProgram Program>
class IncrementalEngine {
 public:
  using EdgeData = typename Program::EdgeData;

  /// True when the program can answer live_value() (mid-run vertex reads).
  static constexpr bool kLiveQueryCapable = LiveQueryProgram<Program>;

  IncrementalEngine(DynGraph& graph, Program& prog, EligibilityGate gate,
                    EngineOptions opts, DynEngine engine = DynEngine::kNE)
      : g_(&graph), prog_(&prog), gate_(std::move(gate)), opts_(opts),
        engine_(engine) {}

  /// Full cold pass on the CURRENT view: re-initializes program and edge
  /// state and runs from the program's own initial frontier. Also the
  /// warm-path fallback.
  EngineResult recompute_cold() {
    edges_ = EdgeDataArray<EdgeData>(g_->num_edges(), EdgeData{}, opts_.mem);
    prog_->init(*g_, edges_);
    ++cold_runs_;
    return run_engine(prog_->initial_frontier(*g_));
  }

  /// Applies one sealed batch and brings the result back to a fixed point.
  /// `auto_compact=false` skips the post-run compaction so a caller that
  /// interleaves live reads can run compact_now() itself at a point it
  /// KNOWS is quiescent (ndg_serve's event loop does this after taking the
  /// epoch result off its worker thread). `applied_out` (optional) receives
  /// the validated records in batch order — the tier coordinator ships these
  /// to its replicas (docs/TIER.md).
  EpochResult apply_epoch(const MutationBatch& batch, bool auto_compact = true,
                          std::vector<AppliedMutation>* applied_out = nullptr) {
    EpochResult out;
    out.epoch = batch.epoch;
    inflight_epoch_.store(batch.epoch, std::memory_order_relaxed);
    phase_.store(EpochPhase::kMutating, std::memory_order_release);

    const std::vector<AppliedMutation> applied =
        g_->apply(batch, &out.apply_stats, opts_.num_threads);
    if (applied_out != nullptr) *applied_out = applied;

    const GateDecision decision = gate_.decide(*prog_, applied);
    out.warm = decision.warm;
    out.gate_reason = decision.reason;

    if (applied.empty()) {
      // Nothing landed (empty batch or all rejected): state is already a
      // fixed point; no engine run needed.
      out.engine.converged = true;
      out.warm = true;
      out.gate_reason = "empty-batch";
    } else if (decision.warm) {
      // Grow the slot array for freshly assigned ids, patch edge state per
      // mutation, and resume from the affected set.
      edges_.resize(g_->num_edges());
      std::vector<VertexId> seeds;
      if constexpr (DynamicProgram<Program>) {
        for (const AppliedMutation& m : applied) {
          prog_->dyn_apply(*g_, edges_, m, seeds);
        }
      }
      out.seed_count = seeds.size();
      ++warm_runs_;
      out.engine = run_engine(std::move(seeds));
    } else {
      out.engine = recompute_cold();
    }

    if (auto_compact && g_->should_compact()) {
      compact_now();
      out.compacted = true;
    }
    ++epochs_;
    phase_.store(EpochPhase::kIdle, std::memory_order_release);
    return out;
  }

  /// Replica-side twin of apply_epoch (docs/TIER.md): replays a shipped,
  /// already-validated AppliedMutation batch through
  /// DynGraph::apply_replicated — no re-validation, ids taken verbatim — and
  /// then takes the SAME warm-or-cold decision apply_epoch would, from this
  /// engine's own gate. `compact_after` mirrors the shipper's post-batch
  /// compaction so both id spaces move in lockstep. Requires quiescence.
  EpochResult replay_epoch(std::uint64_t epoch,
                           const std::vector<AppliedMutation>& applied,
                           bool compact_after) {
    EpochResult out;
    out.epoch = epoch;
    inflight_epoch_.store(epoch, std::memory_order_relaxed);
    phase_.store(EpochPhase::kMutating, std::memory_order_release);

    out.apply_stats = g_->apply_replicated(applied, opts_.num_threads);

    const GateDecision decision = gate_.decide(*prog_, applied);
    out.warm = decision.warm;
    out.gate_reason = decision.reason;

    if (applied.empty()) {
      out.engine.converged = true;
      out.warm = true;
      out.gate_reason = "empty-batch";
    } else if (decision.warm) {
      edges_.resize(g_->num_edges());
      std::vector<VertexId> seeds;
      if constexpr (DynamicProgram<Program>) {
        for (const AppliedMutation& m : applied) {
          prog_->dyn_apply(*g_, edges_, m, seeds);
        }
      }
      out.seed_count = seeds.size();
      ++warm_runs_;
      out.engine = run_engine(std::move(seeds));
    } else {
      out.engine = recompute_cold();
    }

    if (compact_after) {
      compact_now();
      out.compacted = true;
    }
    ++epochs_;
    phase_.store(EpochPhase::kIdle, std::memory_order_release);
    return out;
  }

  /// Rebuilds the CSR and remaps the persistent edge data (warm state
  /// survives under new ids). Exposed for tests and for deferred-compaction
  /// callers; apply_epoch calls it automatically past the threshold unless
  /// told not to. Requires quiescence.
  void compact_now() {
    const DynGraph::CompactResult remap = g_->compact();
    EdgeDataArray<EdgeData> packed(remap.new_num_edges, EdgeData{}, opts_.mem);
    const EdgeId bound =
        std::min<EdgeId>(remap.old_edge_bound, edges_.size());
    for (EdgeId e = 0; e < bound; ++e) {
      const EdgeId ne = remap.old_to_new[e];
      if (ne != kInvalidEdge) packed.set(ne, edges_.get(e));
    }
    edges_ = std::move(packed);
  }

  // --- Recompute-in-progress state (safe from any thread) ---

  [[nodiscard]] EpochPhase phase() const {
    return phase_.load(std::memory_order_acquire);
  }
  /// Epoch of the batch apply_epoch is (or was last) working on. Meaningful
  /// as "in-flight" only while phase() != kIdle.
  [[nodiscard]] std::uint64_t inflight_epoch() const {
    return inflight_epoch_.load(std::memory_order_relaxed);
  }
  /// Testing/serving aid: keep phase() == kRunning for this long after the
  /// engine converges, so a concurrent observer gets a deterministic window
  /// in which live reads are licensed. 0 (default) disables the hold.
  void set_run_hold_ms(std::uint32_t ms) { run_hold_ms_ = ms; }

  /// Racy read of vertex v's current value, reconstructed from individual
  /// policy-routed edge reads (Lemma 1). Callable concurrently with
  /// apply_epoch ONLY while phase() == kRunning (the caller must check); at
  /// a quiescent point it is always safe and agrees with the program's own
  /// values() per the LiveQueryProgram contract.
  [[nodiscard]] double live_value(VertexId v) const
    requires LiveQueryProgram<Program>
  {
    return prog_->live_value(
        *g_,
        [this](EdgeId e) { return policy_edge_read(edges_, e, opts_.mode); },
        v);
  }

  [[nodiscard]] const EdgeDataArray<EdgeData>& edges() const { return edges_; }
  [[nodiscard]] EdgeDataArray<EdgeData>& edges() { return edges_; }
  [[nodiscard]] const EligibilityGate& gate() const { return gate_; }
  [[nodiscard]] const EngineOptions& options() const { return opts_; }
  [[nodiscard]] DynEngine engine_kind() const { return engine_; }
  [[nodiscard]] std::uint64_t epochs() const { return epochs_; }
  [[nodiscard]] std::uint64_t warm_runs() const { return warm_runs_; }
  [[nodiscard]] std::uint64_t cold_runs() const { return cold_runs_; }

  /// Adjusts the staleness knob between epochs (docs/DELAY.md): both warm
  /// and cold runs route through the delayed entry points, which are the
  /// undelayed baselines whenever spec.steps == 0. Requires quiescence.
  void set_delay(const DelaySpec& spec) { opts_.delay = spec; }

 private:
  EngineResult run_engine(std::vector<VertexId> seeds) {
    // Publish kRunning only once all structural surgery (apply/resize/init)
    // is done — the release store is what makes those writes visible to a
    // live reader that acquires the phase — and restore the phase we entered
    // with (kMutating inside apply_epoch, kIdle for a standalone cold run).
    const EpochPhase prev = phase_.load(std::memory_order_relaxed);
    phase_.store(EpochPhase::kRunning, std::memory_order_release);
    EngineResult r;
    // The delayed entry points dispatch to the plain engines at d = 0, so
    // this single call site covers both the baseline and the
    // bounded-staleness warm path (the "how much staleness can a warm start
    // absorb" experiments in tests/test_delay_dyn.cpp).
    if (engine_ == DynEngine::kPureAsync) {
      r = delay::run_delayed_async_from(*g_, *prog_, edges_, std::move(seeds),
                                        opts_);
    } else {
      r = delay::run_delayed_from(*g_, *prog_, edges_, std::move(seeds),
                                  opts_);
    }
    if (run_hold_ms_ > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(run_hold_ms_));
    }
    phase_.store(prev, std::memory_order_release);
    return r;
  }

  DynGraph* g_;
  Program* prog_;
  EligibilityGate gate_;
  EngineOptions opts_;
  DynEngine engine_;
  EdgeDataArray<EdgeData> edges_;
  std::uint64_t epochs_ = 0;
  std::uint64_t warm_runs_ = 0;
  std::uint64_t cold_runs_ = 0;
  std::uint32_t run_hold_ms_ = 0;
  std::atomic<EpochPhase> phase_{EpochPhase::kIdle};
  std::atomic<std::uint64_t> inflight_epoch_{0};
};

}  // namespace ndg::dyn
