#pragma once
// MutationLog — the append-only front door of the streaming subsystem.
//
// Producers (ingest threads, the ndg_serve command loop) append mutations
// concurrently; the epoch owner calls seal() to stamp everything accumulated
// since the last seal with the next epoch number and take it out as one
// MutationBatch. The log itself never validates — validation is DynGraph's
// job at apply time, when the adjacency state needed to judge a mutation
// actually exists. A bounded history of sealed batches is kept for replay
// and diagnostics (ndg_serve's `stats` op reports log totals from here).

#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "dyn/mutation.hpp"

namespace ndg::dyn {

class MutationLog {
 public:
  /// `history_limit`: sealed batches retained for replay()/history(); older
  /// batches are dropped front-first. 0 keeps nothing.
  explicit MutationLog(std::size_t history_limit = 64)
      : history_limit_(history_limit) {}

  /// Thread-safe append of one mutation to the open (unsealed) tail.
  void append(const Mutation& m);

  /// Thread-safe bulk append.
  void append(const std::vector<Mutation>& ms);

  /// Seals the open tail into a batch stamped with the next epoch and
  /// returns it; the tail restarts empty. Sealing an empty tail still
  /// advances the epoch (an epoch with no mutations is a valid quiescent
  /// point for ndg_serve's recompute-only commands).
  [[nodiscard]] MutationBatch seal();

  /// Mutations appended since the last seal().
  [[nodiscard]] std::size_t pending() const;

  /// Epoch of the most recently sealed batch (0 = nothing sealed yet).
  [[nodiscard]] std::uint64_t epoch() const;

  /// Totals across the log's lifetime.
  [[nodiscard]] std::uint64_t total_appended() const;
  [[nodiscard]] std::uint64_t total_sealed_batches() const;

  /// Copy of the retained sealed batches, oldest first.
  [[nodiscard]] std::vector<MutationBatch> history() const;

  /// Sealed batches currently retained (<= the history limit) — the lag
  /// window observable from ndg_serve's `stats` reply without copying.
  [[nodiscard]] std::size_t history_size() const;
  [[nodiscard]] std::size_t history_limit() const { return history_limit_; }

 private:
  mutable std::mutex mu_;
  std::vector<Mutation> tail_;
  std::deque<MutationBatch> sealed_;
  std::size_t history_limit_;
  std::uint64_t next_epoch_ = 1;
  std::uint64_t total_appended_ = 0;
  std::uint64_t total_batches_ = 0;
};

}  // namespace ndg::dyn
