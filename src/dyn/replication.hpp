#pragma once
// Log shipping for the replicated serving tier (docs/TIER.md).
//
// The coordinator owns the single MutationLog; after it applies each sealed
// epoch locally it appends one RepRecord — the *validated* AppliedMutation
// batch plus a compact marker — to a bounded ReplicationLog and streams the
// record to every replica. Replicas replay records strictly in sequence
// through DynGraph::apply_replicated, so their id spaces track the
// coordinator's exactly; a replica whose cursor falls behind the bounded
// history is re-seeded with a full Snapshot (canonical live-edge list +
// weights) instead of erroring. Compaction is itself an in-stream event
// (kCompact records, or the compact_after flag on a batch record): every
// replica compacts at the same point in its ordered stream, which is what
// keeps edge ids convergent — DynGraph::compact is deterministic in the
// live edge set.
//
// The wire format reuses dyn/wire.* newline-delimited flat JSON: a record is
// a header line followed by `count` one-mutation lines; a snapshot is a
// header line followed by `edges` one-edge lines in canonical (src, dst)
// order (edge k's id is k after the rebuild, matching the coordinator's
// post-compaction ids).

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "dyn/mutation.hpp"
#include "dyn/wire.hpp"
#include "graph/edge_list.hpp"
#include "util/types.hpp"

namespace ndg::dyn {

enum class RepKind : std::uint8_t {
  kBatch,    // one applied epoch batch (possibly empty), compact_after flag
  kCompact,  // standalone compaction fence (snapshot preparation)
};

/// One replication-stream record. `seq` increases by one per record and is
/// the replica's replay cursor; `epoch` is the MutationLog epoch the record
/// brings a replica up to.
struct RepRecord {
  std::uint64_t seq = 0;
  RepKind kind = RepKind::kBatch;
  std::uint64_t epoch = 0;
  std::vector<AppliedMutation> muts;  // kBatch only
  /// kBatch: coordinator compacted right after applying this batch; the
  /// replica must do the same before touching the next record.
  bool compact_after = false;
};

/// Bounded, single-threaded (coordinator event loop) record history. Records
/// older than `history_limit` are dropped front-first; a replica asking for
/// a dropped seq gets a snapshot instead.
class ReplicationLog {
 public:
  explicit ReplicationLog(std::size_t history_limit = 64)
      : history_limit_(history_limit) {}

  const RepRecord& append_batch(std::uint64_t epoch,
                                std::vector<AppliedMutation> muts,
                                bool compact_after);
  const RepRecord& append_compact(std::uint64_t epoch);

  /// Seq the NEXT appended record will get (== 1 + newest existing seq).
  [[nodiscard]] std::uint64_t next_seq() const { return next_seq_; }
  /// Oldest retained seq; next_seq() when the history is empty.
  [[nodiscard]] std::uint64_t oldest_seq() const;
  [[nodiscard]] bool has(std::uint64_t seq) const;
  [[nodiscard]] const RepRecord& get(std::uint64_t seq) const;
  [[nodiscard]] std::size_t size() const { return records_.size(); }
  [[nodiscard]] std::size_t history_limit() const { return history_limit_; }

 private:
  const RepRecord& push(RepRecord rec);

  std::deque<RepRecord> records_;
  std::size_t history_limit_;
  std::uint64_t next_seq_ = 1;
};

/// One live edge of a snapshot, shipped in canonical (src, dst) order so the
/// k-th edge's id is k on both sides after the rebuild.
struct SnapshotEdge {
  VertexId src = kInvalidVertex;
  VertexId dst = kInvalidVertex;
  float weight = 1.0f;
};

struct SnapshotHeader {
  std::uint64_t seq = 0;    // replica cursor after installing the snapshot
  std::uint64_t epoch = 0;  // epoch watermark the snapshot represents
  VertexId vertices = 0;
  EdgeId edges = 0;
};

// --- Wire encoding (one flat JSON object per line, no trailing newline) ---

[[nodiscard]] std::string encode_record_header(const RepRecord& rec);
[[nodiscard]] std::string encode_applied(const AppliedMutation& m);
[[nodiscard]] std::string encode_snapshot_header(const SnapshotHeader& h);
[[nodiscard]] std::string encode_snapshot_edge(const SnapshotEdge& e);
/// Replica -> coordinator: cursor handshake ("give me records after `seq`").
[[nodiscard]] std::string encode_sync(std::uint64_t replica,
                                      std::uint64_t seq);
/// Replica -> coordinator: record/snapshot applied through `seq`/`epoch`.
[[nodiscard]] std::string encode_ack(std::uint64_t replica, std::uint64_t seq,
                                     std::uint64_t epoch);

/// Hard ceiling on a record header's wire-supplied `count` field — far
/// above any batch a coordinator actually seals, low enough that a corrupt
/// line (count=1e18) is rejected as a parse error instead of driving a
/// multi-gigabyte reserve / bad_alloc.
inline constexpr std::uint64_t kMaxRecordMuts = std::uint64_t{1} << 28;

/// Header parse results. Every parse_* returns false (with a diagnostic in
/// `err` when non-null) on a malformed message; the caller decides whether
/// that is fatal (replicas treat any malformed replication line as fatal).
bool parse_record_header(const WireMessage& msg, RepRecord& out,
                         std::uint64_t& count, std::string* err = nullptr);
bool parse_applied(const WireMessage& msg, AppliedMutation& out,
                   std::string* err = nullptr);
bool parse_snapshot_header(const WireMessage& msg, SnapshotHeader& out,
                           std::string* err = nullptr);
bool parse_snapshot_edge(const WireMessage& msg, SnapshotEdge& out,
                         std::string* err = nullptr);

// ── Binary replication codec (frames, docs/TIER.md) ─────────────────────────
//
// When a replica negotiates bin1 on the replication socket, records and
// snapshots travel as frames instead of line groups:
//
//   kRepRecord  seq u64 | kind u8 | epoch u64 | compact u8 | count u32
//               | count x (kind u8|src u32|dst u32|id u64|weight f32|old f32)
//   kSnapshot   seq u64 | epoch u64 | vertices u32 | edges u64
//   kSnapChunk  count u32 | count x (src u32|dst u32|weight f32)
//   kAck        replica u64 | seq u64 | epoch u64
//   kSync       replica u64 | seq u64
//
// A whole record is ONE frame — one syscall per epoch shipped instead of
// 1 + count line writes — and snapshot chunks are raw 12 B/edge images of
// the coordinator's shared SnapshotData buffer (on little-endian hosts the
// chunk body is a straight memcpy of the SnapshotEdge array). decode_* apply
// the same hardening as the JSON parsers: kMaxRecordMuts on the count field
// and an exact payload-size check, so a lying header is a parse error, not
// an allocation.

[[nodiscard]] std::string encode_record_bin(const RepRecord& rec);
bool decode_record_bin(std::string_view p, RepRecord& out,
                       std::string* err = nullptr);

[[nodiscard]] std::string encode_snapshot_header_bin(const SnapshotHeader& h);
bool decode_snapshot_header_bin(std::string_view p, SnapshotHeader& out,
                                std::string* err = nullptr);

/// Builds one kSnapChunk payload from `count` edges starting at `edges`.
[[nodiscard]] std::string encode_snapshot_chunk(const SnapshotEdge* edges,
                                                std::size_t count);
/// Appends the chunk's edges to `out`; returns false on a malformed payload.
bool decode_snapshot_chunk(std::string_view p, std::vector<SnapshotEdge>& out,
                           std::string* err = nullptr);

[[nodiscard]] std::string encode_sync_bin(std::uint64_t replica,
                                          std::uint64_t seq);
bool decode_sync_bin(std::string_view p, std::uint64_t& replica,
                     std::uint64_t& seq, std::string* err = nullptr);
[[nodiscard]] std::string encode_ack_bin(std::uint64_t replica,
                                         std::uint64_t seq,
                                         std::uint64_t epoch);
bool decode_ack_bin(std::string_view p, std::uint64_t& replica,
                    std::uint64_t& seq, std::uint64_t& epoch,
                    std::string* err = nullptr);

}  // namespace ndg::dyn
