#include "dyn/dyn_graph.hpp"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "sched/stealing.hpp"
#include "util/thread_team.hpp"

namespace ndg::dyn {

DynGraph::DynGraph(Graph base, DynGraphOptions opts)
    : base_(std::move(base)),
      overlay_(base_.num_vertices()),
      weights_(opts.mem),
      next_edge_id_(base_.num_edges()),
      live_edges_(base_.num_edges()),
      compact_threshold_(opts.compact_threshold),
      mem_(opts.mem),
      base_weight_(std::move(opts.base_weight)) {
  weights_.resize(next_edge_id_);
  for (EdgeId e = 0; e < next_edge_id_; ++e) {
    weights_[e] = base_weight_ ? base_weight_(e) : 1.0f;
  }
}

EdgeId DynGraph::find_edge(VertexId u, VertexId v) const {
  if (u >= num_vertices() || v >= num_vertices()) return kInvalidEdge;
  const std::span<const VertexId> nbrs = out_neighbors(u);
  const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), v);
  if (it == nbrs.end() || *it != v) return kInvalidEdge;
  return out_edge_id(u, static_cast<std::size_t>(it - nbrs.begin()));
}

void DynGraph::ensure_out_unpacked(VertexId v) {
  Overlay& o = overlay_[v];
  if (o.out_unpacked) return;
  o.out_targets = SegVec<VertexId>(mem_);
  o.out_ids = SegVec<EdgeId>(mem_);
  o.out_targets.assign(base_.out_neighbors(v));
  const EdgeId deg = base_.out_degree(v);
  o.out_ids.reserve(deg);
  for (EdgeId k = 0; k < deg; ++k) o.out_ids.push_back(base_.out_edge_id(v, k));
  o.out_unpacked = true;
}

void DynGraph::ensure_in_unpacked(VertexId v) {
  Overlay& o = overlay_[v];
  if (o.in_unpacked) return;
  o.in = SegVec<InEdge>(mem_);
  o.in.assign(base_.in_edges(v));
  o.in_unpacked = true;
}

namespace {

/// Contiguous run of applied topology mutations sharing one key vertex.
struct Group {
  VertexId key;
  std::size_t begin;
  std::size_t end;
};

std::vector<Group> group_by(std::vector<const AppliedMutation*>& muts,
                            bool by_src) {
  std::stable_sort(muts.begin(), muts.end(),
                   [by_src](const AppliedMutation* a, const AppliedMutation* b) {
                     const VertexId ka = by_src ? a->src : a->dst;
                     const VertexId kb = by_src ? b->src : b->dst;
                     return ka < kb;
                   });
  std::vector<Group> groups;
  for (std::size_t i = 0; i < muts.size();) {
    const VertexId key = by_src ? muts[i]->src : muts[i]->dst;
    std::size_t j = i;
    while (j < muts.size() && (by_src ? muts[j]->src : muts[j]->dst) == key) {
      ++j;
    }
    groups.push_back({key, i, j});
    i = j;
  }
  return groups;
}

}  // namespace

std::vector<AppliedMutation> DynGraph::apply(const MutationBatch& batch,
                                             ApplyStats* stats,
                                             std::size_t num_threads) {
  ApplyStats local{};
  std::vector<AppliedMutation> applied;
  applied.reserve(batch.size());

  // Serial validation + id assignment. Adjacency is untouched here, so
  // find_edge sees the pre-batch state; the `touched` set enforces the
  // one-mutation-per-edge-per-epoch rule that keeps the parallel phases
  // below free of same-edge ordering questions.
  std::unordered_set<std::uint64_t> touched;
  touched.reserve(batch.size() * 2);
  const auto edge_key = [](VertexId u, VertexId v) {
    return (static_cast<std::uint64_t>(u) << 32) | v;
  };
  for (const Mutation& m : batch.mutations) {
    RejectReason why = RejectReason::kNone;
    if (m.src >= num_vertices() || m.dst >= num_vertices()) {
      why = RejectReason::kOutOfRange;
    } else if (m.src == m.dst) {
      why = RejectReason::kSelfLoop;
    } else if (touched.contains(edge_key(m.src, m.dst))) {
      why = RejectReason::kConflictInBatch;
    } else {
      const EdgeId existing = find_edge(m.src, m.dst);
      switch (m.kind) {
        case MutationKind::kInsertEdge:
          if (existing != kInvalidEdge) {
            why = RejectReason::kDuplicateEdge;
          } else {
            // Reuse the most recently retired id when one exists (LIFO keeps
            // the hot end of the weight/edge-data arrays dense); bump only
            // when the freelist is dry. Both paths are serial and in batch
            // order, so id assignment stays deterministic across replicas.
            EdgeId id;
            if (!free_ids_.empty()) {
              id = free_ids_.back();
              free_ids_.pop_back();
            } else {
              id = next_edge_id_++;
              weights_.resize(next_edge_id_);
            }
            weights_[id] = m.weight;
            applied.push_back(
                {m.kind, m.src, m.dst, id, m.weight, m.weight});
            ++inserted_;
            ++live_edges_;
          }
          break;
        case MutationKind::kDeleteEdge:
          if (existing == kInvalidEdge) {
            why = RejectReason::kMissingEdge;
          } else {
            applied.push_back({m.kind, m.src, m.dst, existing,
                               weights_[existing], weights_[existing]});
            free_ids_.push_back(existing);
            ++deleted_;
            --live_edges_;
          }
          break;
        case MutationKind::kWeightChange:
          if (existing == kInvalidEdge) {
            why = RejectReason::kMissingEdge;
          } else {
            const float old = weights_[existing];
            weights_[existing] = m.weight;
            applied.push_back({m.kind, m.src, m.dst, existing, m.weight, old});
            ++reweighted_;
          }
          break;
      }
    }
    if (why != RejectReason::kNone) {
      ++local.rejected;
      ++local.by_reason[static_cast<std::size_t>(why)];
    } else {
      ++local.applied;
      touched.insert(edge_key(m.src, m.dst));
    }
  }

  // Topology mutations fan out in two phases over the Worklist concept:
  // phase A updates out-sides keyed by src, phase B in-sides keyed by dst.
  // Keys are unique per group and each phase touches one vertex side only,
  // so workers never contend on a segment.
  std::vector<const AppliedMutation*> topo;
  for (const AppliedMutation& am : applied) {
    if (am.kind != MutationKind::kWeightChange) topo.push_back(&am);
  }
  fan_out_topology(topo, num_threads);

  if (stats != nullptr) *stats = local;
  return applied;
}

void DynGraph::fan_out_topology(std::vector<const AppliedMutation*>& topo,
                                std::size_t num_threads) {
  if (topo.empty()) return;
  // Any applied insert/delete may break (src, dst) id order — even one that
  // returns overflow_ratio() to 0 by reusing a freelist id (both apply()
  // and apply_replicated() funnel topology changes through here).
  ids_canonical_ = false;
  const std::size_t nt = std::max<std::size_t>(1, num_threads);
  const auto run_phase = [&](bool by_src) {
    std::vector<Group> groups = group_by(topo, by_src);
    const auto run_group = [&](const Group& grp) {
      if (by_src) {
        apply_out_group(grp.key, topo, grp.begin, grp.end);
      } else {
        apply_in_group(grp.key, topo, grp.begin, grp.end);
      }
    };
    if (nt == 1) {
      for (const Group& grp : groups) run_group(grp);
      return;
    }
    StealingWorklist wl(nt, /*chunk_size=*/4);
    for (std::size_t gi = 0; gi < groups.size(); ++gi) {
      wl.push(0, static_cast<VertexId>(gi), 0);
    }
    wl.publish(0);
    run_team(nt, [&](std::size_t tid) {
      VertexId gi;
      while (wl.try_pop(tid, gi)) run_group(groups[gi]);
    });
  };
  run_phase(/*by_src=*/true);
  run_phase(/*by_src=*/false);
}

void DynGraph::apply_out_group(
    VertexId u, const std::vector<const AppliedMutation*>& muts,
    std::size_t begin, std::size_t end) {
  ensure_out_unpacked(u);
  Overlay& o = overlay_[u];
  for (std::size_t i = begin; i < end; ++i) {
    const AppliedMutation& m = *muts[i];
    const VertexId* first = o.out_targets.data();
    const std::size_t pos = static_cast<std::size_t>(
        std::lower_bound(first, first + o.out_targets.size(), m.dst) - first);
    if (m.kind == MutationKind::kInsertEdge) {
      o.out_targets.insert_at(pos, m.dst);
      o.out_ids.insert_at(pos, m.id);
    } else {
      NDG_ASSERT(pos < o.out_targets.size() && o.out_targets[pos] == m.dst);
      o.out_targets.erase_at(pos);
      o.out_ids.erase_at(pos);
    }
  }
}

void DynGraph::apply_in_group(
    VertexId v, const std::vector<const AppliedMutation*>& muts,
    std::size_t begin, std::size_t end) {
  ensure_in_unpacked(v);
  Overlay& o = overlay_[v];
  for (std::size_t i = begin; i < end; ++i) {
    const AppliedMutation& m = *muts[i];
    const InEdge* first = o.in.data();
    const std::size_t pos = static_cast<std::size_t>(
        std::lower_bound(first, first + o.in.size(), m.src,
                         [](const InEdge& e, VertexId s) { return e.src < s; }) -
        first);
    if (m.kind == MutationKind::kInsertEdge) {
      o.in.insert_at(pos, InEdge{m.src, m.id});
    } else {
      NDG_ASSERT(pos < o.in.size() && o.in[pos].src == m.src);
      o.in.erase_at(pos);
    }
  }
}

ApplyStats DynGraph::apply_replicated(
    const std::vector<AppliedMutation>& muts, std::size_t num_threads) {
  ApplyStats local{};
  // Serial phase: trust the shipper's validation and id assignment. Weights
  // and counters update here; adjacency fans out below through the same
  // parallel group helpers apply() uses.
  for (const AppliedMutation& m : muts) {
    switch (m.kind) {
      case MutationKind::kInsertEdge:
        if (m.id >= next_edge_id_) {
          next_edge_id_ = m.id + 1;
          weights_.resize(next_edge_id_);
        }
        weights_[m.id] = m.weight;
        ++inserted_;
        ++live_edges_;
        break;
      case MutationKind::kDeleteEdge:
        NDG_ASSERT(find_edge(m.src, m.dst) == m.id);
        ++deleted_;
        --live_edges_;
        break;
      case MutationKind::kWeightChange:
        NDG_ASSERT(find_edge(m.src, m.dst) == m.id);
        weights_[m.id] = m.weight;
        ++reweighted_;
        break;
    }
    ++local.applied;
  }

  std::vector<const AppliedMutation*> topo;
  for (const AppliedMutation& am : muts) {
    if (am.kind != MutationKind::kWeightChange) topo.push_back(&am);
  }
  fan_out_topology(topo, num_threads);
  return local;
}

double DynGraph::overflow_ratio() const {
  const EdgeId retired = next_edge_id_ - live_edges_;
  const EdgeId grown =
      next_edge_id_ > base_.num_edges() ? next_edge_id_ - base_.num_edges() : 0;
  const double denom =
      static_cast<double>(std::max<EdgeId>(1, base_.num_edges()));
  return static_cast<double>(retired + grown) / denom;
}

EdgeList DynGraph::live_edge_list() const {
  EdgeList edges;
  edges.reserve(live_edges_);
  for (VertexId v = 0; v < num_vertices(); ++v) {
    const auto nbrs = out_neighbors(v);
    for (const VertexId u : nbrs) edges.push_back({v, u});
  }
  return edges;
}

DynGraph::CompactResult DynGraph::compact() {
  CompactResult res;
  res.old_edge_bound = next_edge_id_;
  res.old_to_new.assign(next_edge_id_, kInvalidEdge);

  const VertexId nv = num_vertices();
  EdgeList edges;
  edges.reserve(live_edges_);
  SegVec<float> new_weights(mem_);
  new_weights.reserve(live_edges_);
  // Live edges emitted vertex-major with sorted targets == (src, dst) sorted
  // order, which is exactly the canonical order Graph::build assigns ids in,
  // so the new id of the k-th emitted edge is k.
  EdgeId pos = 0;
  for (VertexId v = 0; v < nv; ++v) {
    const auto nbrs = out_neighbors(v);
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      const EdgeId old_id = out_edge_id(v, k);
      res.old_to_new[old_id] = pos++;
      new_weights.push_back(weights_[old_id]);
      edges.push_back({v, nbrs[k]});
    }
  }

  GraphBuildOptions gopts;
  gopts.mem = mem_;
  base_ = Graph::build(nv, std::move(edges), gopts);
  std::vector<Overlay>(nv).swap(overlay_);
  weights_ = std::move(new_weights);
  free_ids_.clear();  // the rebuilt id space is exact: nothing to reuse
  ids_canonical_ = true;
  next_edge_id_ = base_.num_edges();
  live_edges_ = base_.num_edges();
  ++compactions_;
  res.new_num_edges = next_edge_id_;
  return res;
}

}  // namespace ndg::dyn
