#pragma once
// SegVec — a minimal growable POD array on top of mem::Buffer, used for the
// dynamic graph's per-vertex overflow adjacency segments and its per-edge
// weight array. It exists so overlay storage rides the same arena (hugepage /
// NUMA placement, docs/PERF.md) as the base CSR instead of the general-
// purpose heap: segments are read on the engines' hot gather path, where the
// base topology already gets placement treatment. Growth is geometric through
// Buffer::resized (one allocation + one memcpy). Not thread-safe; the batch
// applier guarantees each segment is touched by exactly one worker.

#include <cstddef>
#include <span>

#include "mem/numa_arena.hpp"
#include "util/assert.hpp"

namespace ndg::dyn {

template <typename T>
class SegVec {
 public:
  SegVec() = default;
  explicit SegVec(const MemSpec& spec) : spec_(spec) {}

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t capacity() const { return buf_.size(); }

  [[nodiscard]] T* data() { return buf_.data(); }
  [[nodiscard]] const T* data() const { return buf_.data(); }

  [[nodiscard]] T& operator[](std::size_t i) {
    NDG_ASSERT(i < size_);
    return buf_.data()[i];
  }
  [[nodiscard]] const T& operator[](std::size_t i) const {
    NDG_ASSERT(i < size_);
    return buf_.data()[i];
  }

  [[nodiscard]] std::span<const T> span() const { return {data(), size_}; }

  void reserve(std::size_t n) {
    if (n <= buf_.size()) return;
    if (buf_.empty()) {
      // First allocation: adopt this SegVec's placement spec (resized() keeps
      // the spec of the buffer it grows, which for an empty one is default).
      mem::Buffer<T> fresh(grow_to(n), spec_);
      buf_ = std::move(fresh);
    } else {
      buf_ = buf_.resized(grow_to(n));
    }
  }

  void push_back(T v) {
    reserve(size_ + 1);
    buf_.data()[size_++] = v;
  }

  /// Inserts v at `pos`, shifting [pos, size) right — the sorted-adjacency
  /// maintenance primitive (O(segment) per insert; segments are one vertex's
  /// adjacency, so this is bounded by degree).
  void insert_at(std::size_t pos, T v) {
    NDG_ASSERT(pos <= size_);
    reserve(size_ + 1);
    T* d = buf_.data();
    for (std::size_t i = size_; i > pos; --i) d[i] = d[i - 1];
    d[pos] = v;
    ++size_;
  }

  void erase_at(std::size_t pos) {
    NDG_ASSERT(pos < size_);
    T* d = buf_.data();
    for (std::size_t i = pos + 1; i < size_; ++i) d[i - 1] = d[i];
    --size_;
  }

  void assign(std::span<const T> src) {
    reserve(src.size());
    T* d = buf_.data();
    for (std::size_t i = 0; i < src.size(); ++i) d[i] = src[i];
    size_ = src.size();
  }

  /// Grows (zero-filling new elements) or shrinks the logical size.
  void resize(std::size_t n) {
    reserve(n);
    T* d = buf_.data();
    for (std::size_t i = size_; i < n; ++i) d[i] = T{};
    size_ = n;
  }

  void clear() { size_ = 0; }

 private:
  [[nodiscard]] std::size_t grow_to(std::size_t n) const {
    std::size_t cap = buf_.size() < 4 ? 4 : buf_.size();
    while (cap < n) cap += cap / 2 + 1;
    return cap;
  }

  mem::Buffer<T> buf_;
  std::size_t size_ = 0;
  MemSpec spec_{};
};

}  // namespace ndg::dyn
