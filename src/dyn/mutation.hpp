#pragma once
// Mutation vocabulary of the streaming subsystem (docs/DYNAMIC.md).
//
// A Mutation is one requested topology/weight change; a MutationBatch is the
// unit of application — everything stamped with the same epoch lands on the
// graph between two quiescent points, so engines never observe a half-applied
// batch. AppliedMutation is the validated, id-assigned record DynGraph hands
// back: the incremental driver replays these through the algorithms' dyn
// hooks to patch edge state and derive the affected-vertex seed set.

#include <cstdint>
#include <vector>

#include "util/types.hpp"

namespace ndg::dyn {

enum class MutationKind : std::uint8_t {
  kInsertEdge,    // add directed edge (src, dst) with `weight`
  kDeleteEdge,    // remove directed edge (src, dst)
  kWeightChange,  // set weight of existing edge (src, dst) to `weight`
};

[[nodiscard]] const char* to_string(MutationKind k);

struct Mutation {
  MutationKind kind = MutationKind::kInsertEdge;
  VertexId src = kInvalidVertex;
  VertexId dst = kInvalidVertex;
  /// New edge weight for kInsertEdge / kWeightChange; ignored for deletes.
  float weight = 1.0f;
};

/// Why a mutation was refused. Batches are all-or-nothing per *mutation*, not
/// per batch: rejected mutations are skipped and reported, accepted ones
/// apply. kConflictInBatch is the documented simplification that keeps batch
/// application embarrassingly parallel: at most one mutation per directed
/// edge per epoch (resubmit the loser next epoch).
enum class RejectReason : std::uint8_t {
  kNone = 0,
  kOutOfRange,        // endpoint >= num_vertices
  kSelfLoop,          // src == dst (the CSR builder strips these too)
  kDuplicateEdge,     // insert of an edge that already exists
  kMissingEdge,       // delete/weight-change of an edge that does not exist
  kConflictInBatch,   // another mutation in this batch touches the same edge
};

[[nodiscard]] const char* to_string(RejectReason r);

/// One validated, applied mutation. `id` is the canonical edge id the change
/// landed on: for inserts a freshly assigned id (>= the pre-batch edge-id
/// bound, so EdgeDataArray::resize makes room without disturbing old slots);
/// for deletes the retired id; for weight changes the existing id.
struct AppliedMutation {
  MutationKind kind;
  VertexId src;
  VertexId dst;
  EdgeId id;
  float weight;      // post-mutation weight (undefined for deletes)
  float old_weight;  // pre-mutation weight (== weight for inserts)
};

struct MutationBatch {
  std::uint64_t epoch = 0;
  std::vector<Mutation> mutations;

  [[nodiscard]] bool empty() const { return mutations.empty(); }
  [[nodiscard]] std::size_t size() const { return mutations.size(); }
};

/// Per-batch application telemetry (DynGraph::apply).
struct ApplyStats {
  std::uint64_t applied = 0;
  std::uint64_t rejected = 0;
  /// Rejections by reason, indexed by RejectReason's underlying value.
  std::uint64_t by_reason[6] = {};
};

}  // namespace ndg::dyn
