#include "dyn/mutation_log.hpp"

namespace ndg::dyn {

const char* to_string(MutationKind k) {
  switch (k) {
    case MutationKind::kInsertEdge: return "insert";
    case MutationKind::kDeleteEdge: return "delete";
    case MutationKind::kWeightChange: return "weight";
  }
  return "?";
}

const char* to_string(RejectReason r) {
  switch (r) {
    case RejectReason::kNone: return "none";
    case RejectReason::kOutOfRange: return "out-of-range";
    case RejectReason::kSelfLoop: return "self-loop";
    case RejectReason::kDuplicateEdge: return "duplicate-edge";
    case RejectReason::kMissingEdge: return "missing-edge";
    case RejectReason::kConflictInBatch: return "conflict-in-batch";
  }
  return "?";
}

void MutationLog::append(const Mutation& m) {
  std::lock_guard<std::mutex> lock(mu_);
  tail_.push_back(m);
  ++total_appended_;
}

void MutationLog::append(const std::vector<Mutation>& ms) {
  std::lock_guard<std::mutex> lock(mu_);
  tail_.insert(tail_.end(), ms.begin(), ms.end());
  total_appended_ += ms.size();
}

MutationBatch MutationLog::seal() {
  std::lock_guard<std::mutex> lock(mu_);
  MutationBatch batch;
  batch.epoch = next_epoch_++;
  batch.mutations = std::move(tail_);
  tail_.clear();
  ++total_batches_;
  if (history_limit_ > 0) {
    sealed_.push_back(batch);
    while (sealed_.size() > history_limit_) sealed_.pop_front();
  }
  return batch;
}

std::size_t MutationLog::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tail_.size();
}

std::uint64_t MutationLog::epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_epoch_ - 1;
}

std::uint64_t MutationLog::total_appended() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_appended_;
}

std::uint64_t MutationLog::total_sealed_batches() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_batches_;
}

std::vector<MutationBatch> MutationLog::history() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {sealed_.begin(), sealed_.end()};
}

std::size_t MutationLog::history_size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sealed_.size();
}

}  // namespace ndg::dyn
