#pragma once
// EligibilityGate — decides, per mutation batch, whether incremental
// recompute may WARM-start (seed the affected set into the frontier and keep
// the previous edge state) or must fall back to a COLD re-initialization.
//
// The decision is grounded in the paper's two theorems (docs/DYNAMIC.md):
//
//   Theorem 1 (BSP-convergent, read-write conflicts only — PageRank-style
//   fixed-point iteration): the algorithm contracts to its fixed point from
//   ANY starting state, so the post-mutation state "previous result + patched
//   edges" is just another starting state. Warm start is licensed for every
//   mutation kind.
//
//   Theorem 2 (async-convergent + monotonic — SSSP/WCC-style traversal):
//   convergence relies on edge values only ever moving one direction. A
//   mutation that could move the true fixed point AGAINST that direction
//   (deleting an edge can RAISE distances/labels; increasing a weight can
//   RAISE distances) invalidates the previous state as a sound intermediate,
//   so the gate asks the program (dyn_warm_ok) whether each applied mutation
//   stays inside the monotone envelope and forces cold otherwise.
//
//   kNotProven: no guarantee from the paper — always cold.
//
// The verdict itself comes from core/eligibility's measured analysis on the
// BASE graph (GateMode::kAnalyze) or from the caller's assertion (the
// kAssume* modes, for tools that cannot afford the two instrumented runs).

#include <cstddef>
#include <string>

#include "analysis/static_eligibility.hpp"
#include "core/eligibility.hpp"
#include "dyn/dyn_program.hpp"
#include "dyn/mutation.hpp"

namespace ndg::dyn {

enum class GateMode {
  kAnalyze,           // run analyze_eligibility on the base graph
  kStatic,            // derive the verdict from the program's AccessManifest
                      // at compile time — no instrumented runs at all
  kAssumeTheorem1,    // caller asserts a Theorem 1 algorithm
  kAssumeTheorem2,    // caller asserts a Theorem 2 algorithm
  kAssumeIneligible,  // force cold recompute always
};

[[nodiscard]] const char* to_string(GateMode m);

/// One warm-or-cold ruling for a batch.
struct GateDecision {
  bool warm = false;
  /// Why (static string): "theorem-1", "theorem-2-monotone-batch",
  /// "not-proven", "non-monotone-mutation", "no-dyn-hooks", "forced-cold".
  const char* reason = "";
  /// Index into the applied batch of the first mutation that vetoed warm
  /// start (only meaningful when !warm and reason=="non-monotone-mutation").
  std::size_t blocking_mutation = static_cast<std::size_t>(-1);
};

class EligibilityGate {
 public:
  /// Gate that trusts the supplied verdict (the kAssume* constructors).
  explicit EligibilityGate(EligibilityVerdict verdict)
      : verdict_(verdict) {}

  /// Builds the gate per `mode`. For kAnalyze this runs the full measured
  /// analysis (two instrumented engine runs) on `base` — call it once at
  /// startup, not per batch; the verdict is then fixed for the stream's
  /// lifetime (mutation batches do not change an algorithm's conflict
  /// pattern or monotone direction, only its data).
  template <VertexProgram Program>
  static EligibilityGate make(GateMode mode, const Graph& base, Program& prog,
                              std::size_t max_iterations = 100000) {
    switch (mode) {
      case GateMode::kAssumeTheorem1:
        return EligibilityGate(EligibilityVerdict::kTheorem1);
      case GateMode::kAssumeTheorem2:
        return EligibilityGate(EligibilityVerdict::kTheorem2);
      case GateMode::kAssumeIneligible:
        return EligibilityGate(EligibilityVerdict::kNotProven);
      case GateMode::kStatic:
        // Fast path: the manifest-derived verdict, no instrumented runs.
        // StaticEligibility already encodes the warm-start priority below
        // (kWarmStartVerdict prefers Theorem 2 whenever its premises hold).
        // Programs with input-dependent convergence claims fall back to the
        // measured analysis — their static verdict is conditional on this
        // very graph's behaviour — as do unmanifested programs.
        if constexpr (ManifestedProgram<Program>) {
          if constexpr (!StaticEligibility<Program>::kConditional) {
            EligibilityGate gate(StaticEligibility<Program>::kWarmStartVerdict);
            gate.static_ = true;
            return gate;
          }
        }
        break;  // fall through to the measured analysis
      case GateMode::kAnalyze:
        break;
    }
    const EligibilityReport rep =
        analyze_eligibility(base, prog, max_iterations);
    // Warm-start licensing is NOT the same question as NE-safety, so the
    // verdict priority differs from core's: whenever the Theorem 2 premises
    // hold (monotonic + async-convergent) the gate routes through the
    // monotone-envelope check even if Theorem 1 also applies. A monotone
    // program (SSSP analyzes to Theorem 1 — conflicts are read-write only)
    // can never RAISE its state, so restarting it from a state below the
    // new fixed point (a delete) would silently under-converge; only a
    // genuine contraction (PageRank-style, where Theorem 2 does not apply)
    // re-converges from arbitrary states.
    EligibilityGate gate(rep.theorem2_applies ? EligibilityVerdict::kTheorem2
                                              : rep.verdict);
    gate.analyzed_ = true;
    return gate;
  }

  [[nodiscard]] EligibilityVerdict verdict() const { return verdict_; }
  [[nodiscard]] bool analyzed() const { return analyzed_; }
  /// True when the verdict came from the compile-time manifest evaluation
  /// (GateMode::kStatic) rather than a measured or asserted source.
  [[nodiscard]] bool from_static() const { return static_; }

  /// "No finite bound": any bounded propagation delay keeps the verdict.
  static constexpr std::size_t kUnboundedDelay =
      static_cast<std::size_t>(-1);

  /// The staleness bound under which a warm start keeps its theorem license
  /// (docs/DELAY.md). Theorems 1 and 2 are delay-OBLIVIOUS — their premises
  /// only require every update's result to become visible after some finite
  /// number of steps — so a Theorem 1/2 verdict survives ANY bounded d
  /// (kUnboundedDelay); what degrades as d grows is convergence SPEED,
  /// measured empirically by delay::probe_staleness. kNotProven has no
  /// license at any staleness, including d = 0.
  [[nodiscard]] std::size_t max_warm_delay() const {
    return verdict_ == EligibilityVerdict::kNotProven ? 0 : kUnboundedDelay;
  }

  /// Rules on one applied batch. Pure function of the verdict, the program's
  /// dyn hooks, and the mutations; no engine state involved.
  template <typename Program>
  [[nodiscard]] GateDecision decide(
      const Program& prog, const std::vector<AppliedMutation>& batch) const {
    GateDecision d;
    switch (verdict_) {
      case EligibilityVerdict::kNotProven:
        d.warm = false;
        d.reason = "not-proven";
        return d;
      case EligibilityVerdict::kTheorem1:
        if constexpr (DynamicProgram<Program>) {
          d.warm = true;
          d.reason = "theorem-1";
        } else {
          d.warm = false;
          d.reason = "no-dyn-hooks";
        }
        return d;
      case EligibilityVerdict::kTheorem2:
        break;
    }
    if constexpr (DynamicProgram<Program>) {
      for (std::size_t i = 0; i < batch.size(); ++i) {
        if (!prog.dyn_warm_ok(batch[i])) {
          d.warm = false;
          d.reason = "non-monotone-mutation";
          d.blocking_mutation = i;
          return d;
        }
      }
      d.warm = true;
      d.reason = "theorem-2-monotone-batch";
    } else {
      d.warm = false;
      d.reason = "no-dyn-hooks";
    }
    return d;
  }

 private:
  EligibilityVerdict verdict_;
  bool analyzed_ = false;
  bool static_ = false;
};

}  // namespace ndg::dyn
