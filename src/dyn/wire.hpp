#pragma once
// Wire codec for ndg_serve: one newline-delimited FLAT JSON object per
// command/reply. Flat means every value is a scalar (string / number / bool /
// null) — nested objects and arrays are rejected. That restriction is what
// keeps the parser ~100 lines with no dependency, and the protocol
// (docs/DYNAMIC.md) needs nothing more: a mutate is {"op":"mutate",
// "kind":"insert","src":3,"dst":7,"weight":2.5}, a query reply is
// {"ok":true,"vertex":7,"value":0.173}.
//
// Parsed values are kept as text; typed getters convert on demand so the
// server can give precise error messages naming the offending field.
// Unquoted values must still SPELL like JSON scalars (strict number grammar,
// true/false/null) — a bare word like {"vertex":xyz} is a parse error that
// names the key, not a value that limps along until a getter fails.
//
// Newline-JSON is the DEFAULT transport; a connection may upgrade once to
// the length-prefixed binary framing below ({"op":"hello","proto":"bin1"})
// for the high-frequency messages. Scripts, smoke tests and old clients
// never see a frame unless they ask for one.

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "dyn/mutation.hpp"

namespace ndg::dyn {

class WireMessage {
 public:
  /// Raw text of `key`'s value (unescaped for strings, literal spelling for
  /// numbers/bools), or nullptr when absent.
  [[nodiscard]] const std::string* find(std::string_view key) const;

  [[nodiscard]] bool has(std::string_view key) const {
    return find(key) != nullptr;
  }

  /// Typed getters: false when the key is absent or does not parse.
  bool get_string(std::string_view key, std::string& out) const;
  bool get_u64(std::string_view key, std::uint64_t& out) const;
  bool get_double(std::string_view key, double& out) const;
  bool get_bool(std::string_view key, bool& out) const;

  void add(std::string key, std::string value) {
    fields_.emplace_back(std::move(key), std::move(value));
  }

  [[nodiscard]] const std::vector<std::pair<std::string, std::string>>&
  fields() const {
    return fields_;
  }

 private:
  std::vector<std::pair<std::string, std::string>> fields_;
};

/// Parses one flat JSON object. On failure returns false and sets `err` (if
/// non-null) to a one-line diagnostic. Duplicate keys are kept in order and
/// find() returns the first (the server never sends duplicates).
bool parse_wire(std::string_view line, WireMessage& out,
                std::string* err = nullptr);

/// Reply builder producing one flat JSON object (no trailing newline).
/// Values added with the typed methods are emitted with correct JSON
/// spelling; strings are escaped.
class WireWriter {
 public:
  WireWriter& str(std::string_view key, std::string_view value);
  WireWriter& u64(std::string_view key, std::uint64_t value);
  WireWriter& i64(std::string_view key, std::int64_t value);
  WireWriter& num(std::string_view key, double value);
  WireWriter& boolean(std::string_view key, bool value);

  [[nodiscard]] std::string finish() const;

 private:
  std::vector<std::pair<std::string, std::string>> parts_;  // key -> raw json
};

// ── Binary framing ("bin1", docs/DYNAMIC.md) ────────────────────────────────
//
// A connection starts in newline-JSON and may upgrade exactly once with
// {"op":"hello","proto":"bin1"}. The server answers with a JSON ok line and
// from then on BOTH directions speak length-prefixed frames:
//
//   u32 len (LE, payload bytes) | u8 type | payload[len]
//
// Payloads are fixed-layout little-endian structs (field tables in
// docs/DYNAMIC.md); floats travel as IEEE-754 bit patterns, so NaN/inf need
// no string spelling on this path. kMaxFrameLen mirrors the kMaxRecordMuts
// hardening: a hostile length field is a protocol error that breaks the
// connection, never a multi-gigabyte allocation.

/// Which transport a connection is currently speaking.
enum class WireProto : std::uint8_t { kJson, kBin };

/// Protocol token a client sends in the hello upgrade.
inline constexpr std::string_view kBinProtoName = "bin1";

/// u32 length + u8 type.
inline constexpr std::size_t kFrameHeaderBytes = 5;

/// Upper bound on a single frame's payload (64 MiB). Large enough for a
/// replication record of ~2.6M applied mutations or a full snapshot chunk,
/// small enough that a corrupt/hostile length can never drive a giant
/// reserve. A peer announcing more is broken, not buffered.
inline constexpr std::uint32_t kMaxFrameLen = 1u << 26;

enum class FrameType : std::uint8_t {
  // Client <-> server (ndg_serve / coordinator / replica read path).
  kError = 0x00,       // payload: utf-8 message (reply to a bad frame)
  kJson = 0x01,        // payload: one flat JSON object (stats replies etc.)
  kMutate = 0x02,      // kind u8 | src u32 | dst u32 | weight f32
  kMutateAck = 0x03,   // pending u64
  kMBatch = 0x04,      // count u32 | count x (kind u8|src u32|dst u32|w f32)
  kMBatchAck = 0x05,   // accepted u32 | pending u64
  kQuery = 0x06,       // vertex u64
  kQueryReply = 0x07,  // flags u8 | vertex u64 | value f64 | epoch u64
  kRecompute = 0x08,   // (empty)
  kRecomputeReply = 0x09,  // fixed stats block + trailing reason text
  kStats = 0x0A,       // (empty; reply rides a kJson frame)
  kQuit = 0x0B,        // (empty)
  kBye = 0x0C,         // (empty)
  // Replication stream (docs/TIER.md; layouts in dyn/replication.hpp).
  kRepRecord = 0x10,
  kSnapshot = 0x11,
  kSnapChunk = 0x12,
  kAck = 0x13,
  kSync = 0x14,
  kShutdown = 0x15,
};

struct Frame {
  FrameType type = FrameType::kError;
  std::string payload;
};

// Little-endian scalar append/read helpers. Explicit byte shifts keep the
// layout host-endian independent; floats travel as their IEEE bit patterns.
inline void put_u8(std::string& s, std::uint8_t v) {
  s.push_back(static_cast<char>(v));
}
inline void put_u32(std::string& s, std::uint32_t v) {
  for (int k = 0; k < 4; ++k) {
    s.push_back(static_cast<char>((v >> (8 * k)) & 0xFF));
  }
}
inline void put_u64(std::string& s, std::uint64_t v) {
  for (int k = 0; k < 8; ++k) {
    s.push_back(static_cast<char>((v >> (8 * k)) & 0xFF));
  }
}
inline void put_f32(std::string& s, float v) {
  put_u32(s, std::bit_cast<std::uint32_t>(v));
}
inline void put_f64(std::string& s, double v) {
  put_u64(s, std::bit_cast<std::uint64_t>(v));
}

inline bool get_u8(std::string_view s, std::size_t& off, std::uint8_t& v) {
  if (off + 1 > s.size()) return false;
  v = static_cast<std::uint8_t>(s[off]);
  off += 1;
  return true;
}
inline bool get_u32(std::string_view s, std::size_t& off, std::uint32_t& v) {
  if (off + 4 > s.size()) return false;
  v = 0;
  for (int k = 0; k < 4; ++k) {
    v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(s[off + k]))
         << (8 * k);
  }
  off += 4;
  return true;
}
inline bool get_u64(std::string_view s, std::size_t& off, std::uint64_t& v) {
  if (off + 8 > s.size()) return false;
  v = 0;
  for (int k = 0; k < 8; ++k) {
    v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(s[off + k]))
         << (8 * k);
  }
  off += 8;
  return true;
}
inline bool get_f32(std::string_view s, std::size_t& off, float& v) {
  std::uint32_t bits = 0;
  if (!get_u32(s, off, bits)) return false;
  v = std::bit_cast<float>(bits);
  return true;
}
inline bool get_f64(std::string_view s, std::size_t& off, double& v) {
  std::uint64_t bits = 0;
  if (!get_u64(s, off, bits)) return false;
  v = std::bit_cast<double>(bits);
  return true;
}

/// Appends one complete frame (header + payload) to `out`.
void append_frame(std::string& out, FrameType type, std::string_view payload);

enum class FrameParse : std::uint8_t {
  kNeedMore,  // buffer holds a prefix of a frame; read more bytes
  kOk,        // one frame extracted and consumed from the buffer front
  kBad,       // length field exceeds kMaxFrameLen — connection is broken
};

/// Incremental frame reader: consumes one complete frame from the front of
/// `buf`. kBad is unrecoverable (there is no way to resynchronize a framed
/// stream after a corrupt length); the caller drops the connection.
FrameParse extract_frame(std::string& buf, Frame& out,
                         std::string* err = nullptr);

// ── Fixed-layout payload codecs for the serve ops ───────────────────────────
// Every decode_* validates the exact payload size and every enum byte, and
// reports one-line diagnostics like the JSON parser does.

[[nodiscard]] std::string encode_mutate(const Mutation& m);
bool decode_mutate(std::string_view p, Mutation& out,
                   std::string* err = nullptr);

/// One frame carrying a whole intake batch: feeds MutationLog::append(vector)
/// in a single syscall instead of `count` line round-trips.
[[nodiscard]] std::string encode_mbatch(const std::vector<Mutation>& ms);
bool decode_mbatch(std::string_view p, std::vector<Mutation>& out,
                   std::string* err = nullptr);

[[nodiscard]] std::string encode_mutate_ack(std::uint64_t pending);
bool decode_mutate_ack(std::string_view p, std::uint64_t& pending,
                       std::string* err = nullptr);
[[nodiscard]] std::string encode_mbatch_ack(std::uint32_t accepted,
                                            std::uint64_t pending);
bool decode_mbatch_ack(std::string_view p, std::uint32_t& accepted,
                       std::uint64_t& pending, std::string* err = nullptr);

[[nodiscard]] std::string encode_query(std::uint64_t vertex);
bool decode_query(std::string_view p, std::uint64_t& vertex,
                  std::string* err = nullptr);

/// flags bit 0: the quiescent field is present (live-query servers);
/// flags bit 1: the value IS quiescent (meaningful only when bit 0 is set).
struct QueryReplyBin {
  bool has_quiescent = false;
  bool quiescent = false;
  std::uint64_t vertex = 0;
  double value = 0.0;
  std::uint64_t epoch = 0;
};
[[nodiscard]] std::string encode_query_reply(const QueryReplyBin& r);
bool decode_query_reply(std::string_view p, QueryReplyBin& out,
                        std::string* err = nullptr);

/// Binary shape of the recompute reply: the fixed counters, then the gate
/// reason as trailing text (variable length, rest of the payload).
struct RecomputeReplyBin {
  std::uint64_t epoch = 0;
  bool warm = false;
  bool converged = false;
  bool compacted = false;
  std::uint64_t applied = 0;
  std::uint64_t rejected = 0;
  std::uint64_t seeds = 0;
  std::uint64_t iterations = 0;
  std::uint64_t updates = 0;
  std::uint64_t live_edges = 0;
  std::string reason;
};
[[nodiscard]] std::string encode_recompute_reply(const RecomputeReplyBin& r);
bool decode_recompute_reply(std::string_view p, RecomputeReplyBin& out,
                            std::string* err = nullptr);

/// Wire-level counters a transport keeps per server (exposed via `stats`):
/// byte totals, messages that failed to parse, and how many connections
/// negotiated each protocol.
struct WireCounters {
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t parse_errors = 0;
  std::uint64_t conns_json = 0;  // currently open, still newline-JSON
  std::uint64_t conns_bin = 0;   // currently open, upgraded to bin1

  void add(const WireCounters& o) {
    bytes_in += o.bytes_in;
    bytes_out += o.bytes_out;
    parse_errors += o.parse_errors;
    conns_json += o.conns_json;
    conns_bin += o.conns_bin;
  }
};

}  // namespace ndg::dyn
