#pragma once
// Wire codec for ndg_serve: one newline-delimited FLAT JSON object per
// command/reply. Flat means every value is a scalar (string / number / bool /
// null) — nested objects and arrays are rejected. That restriction is what
// keeps the parser ~100 lines with no dependency, and the protocol
// (docs/DYNAMIC.md) needs nothing more: a mutate is {"op":"mutate",
// "kind":"insert","src":3,"dst":7,"weight":2.5}, a query reply is
// {"ok":true,"vertex":7,"value":0.173}.
//
// Parsed values are kept as text; typed getters convert on demand so the
// server can give precise error messages naming the offending field.
// Unquoted values must still SPELL like JSON scalars (strict number grammar,
// true/false/null) — a bare word like {"vertex":xyz} is a parse error that
// names the key, not a value that limps along until a getter fails.

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ndg::dyn {

class WireMessage {
 public:
  /// Raw text of `key`'s value (unescaped for strings, literal spelling for
  /// numbers/bools), or nullptr when absent.
  [[nodiscard]] const std::string* find(std::string_view key) const;

  [[nodiscard]] bool has(std::string_view key) const {
    return find(key) != nullptr;
  }

  /// Typed getters: false when the key is absent or does not parse.
  bool get_string(std::string_view key, std::string& out) const;
  bool get_u64(std::string_view key, std::uint64_t& out) const;
  bool get_double(std::string_view key, double& out) const;
  bool get_bool(std::string_view key, bool& out) const;

  void add(std::string key, std::string value) {
    fields_.emplace_back(std::move(key), std::move(value));
  }

  [[nodiscard]] const std::vector<std::pair<std::string, std::string>>&
  fields() const {
    return fields_;
  }

 private:
  std::vector<std::pair<std::string, std::string>> fields_;
};

/// Parses one flat JSON object. On failure returns false and sets `err` (if
/// non-null) to a one-line diagnostic. Duplicate keys are kept in order and
/// find() returns the first (the server never sends duplicates).
bool parse_wire(std::string_view line, WireMessage& out,
                std::string* err = nullptr);

/// Reply builder producing one flat JSON object (no trailing newline).
/// Values added with the typed methods are emitted with correct JSON
/// spelling; strings are escaped.
class WireWriter {
 public:
  WireWriter& str(std::string_view key, std::string_view value);
  WireWriter& u64(std::string_view key, std::uint64_t value);
  WireWriter& i64(std::string_view key, std::int64_t value);
  WireWriter& num(std::string_view key, double value);
  WireWriter& boolean(std::string_view key, bool value);

  [[nodiscard]] std::string finish() const;

 private:
  std::vector<std::pair<std::string, std::string>> parts_;  // key -> raw json
};

}  // namespace ndg::dyn
