#include "dyn/wire.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <cstdlib>

#include "util/table.hpp"

namespace ndg::dyn {

namespace {

struct Cursor {
  std::string_view s;
  std::size_t i = 0;

  [[nodiscard]] bool done() const { return i >= s.size(); }
  [[nodiscard]] char peek() const { return s[i]; }
  void skip_ws() {
    while (!done() && (s[i] == ' ' || s[i] == '\t' || s[i] == '\r' ||
                       s[i] == '\n')) {
      ++i;
    }
  }
};

bool fail(std::string* err, const std::string& what) {
  if (err != nullptr) *err = what;
  return false;
}

/// Parses a JSON string (cursor on the opening quote), unescaping into out.
bool parse_string(Cursor& c, std::string& out, std::string* err) {
  ++c.i;  // opening quote
  out.clear();
  while (!c.done()) {
    const char ch = c.s[c.i];
    if (ch == '"') {
      ++c.i;
      return true;
    }
    if (ch == '\\') {
      ++c.i;
      if (c.done()) break;
      const char esc = c.s[c.i];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (c.i + 4 >= c.s.size()) return fail(err, "truncated \\u escape");
          unsigned code = 0;
          for (int k = 1; k <= 4; ++k) {
            const char h = c.s[c.i + k];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return fail(err, "bad hex digit in \\u escape");
          }
          c.i += 4;
          // UTF-8 encode (BMP only; surrogate pairs land as two 3-byte
          // sequences, fine for the ASCII-only protocol fields).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return fail(err, "unknown escape");
      }
      ++c.i;
      continue;
    }
    out.push_back(ch);
    ++c.i;
  }
  return fail(err, "unterminated string");
}

/// Parses a scalar (number / true / false / null), storing its literal text.
bool parse_scalar(Cursor& c, std::string& out, std::string* err) {
  const std::size_t start = c.i;
  while (!c.done()) {
    const char ch = c.s[c.i];
    if (ch == ',' || ch == '}' || ch == ' ' || ch == '\t' || ch == '\r' ||
        ch == '\n') {
      break;
    }
    if (ch == '{' || ch == '[') return fail(err, "nested values not allowed");
    ++c.i;
  }
  if (c.i == start) return fail(err, "empty value");
  out.assign(c.s.substr(start, c.i - start));
  return true;
}

/// JSON number grammar: -?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?.
bool is_json_number(std::string_view t) {
  std::size_t i = 0;
  if (i < t.size() && t[i] == '-') ++i;
  if (i >= t.size()) return false;
  if (t[i] == '0') {
    ++i;
  } else if (t[i] >= '1' && t[i] <= '9') {
    while (i < t.size() && t[i] >= '0' && t[i] <= '9') ++i;
  } else {
    return false;
  }
  if (i < t.size() && t[i] == '.') {
    ++i;
    if (i >= t.size() || t[i] < '0' || t[i] > '9') return false;
    while (i < t.size() && t[i] >= '0' && t[i] <= '9') ++i;
  }
  if (i < t.size() && (t[i] == 'e' || t[i] == 'E')) {
    ++i;
    if (i < t.size() && (t[i] == '+' || t[i] == '-')) ++i;
    if (i >= t.size() || t[i] < '0' || t[i] > '9') return false;
    while (i < t.size() && t[i] >= '0' && t[i] <= '9') ++i;
  }
  return i == t.size();
}

/// Unquoted values must be one of JSON's scalar spellings. Anything else
/// (e.g. {"vertex":xyz}) used to be accepted verbatim and then surface
/// downstream as a misleading "missing field" error; reject it here, naming
/// the key it was attached to.
bool scalar_token_ok(std::string_view t) {
  return t == "true" || t == "false" || t == "null" || is_json_number(t);
}

}  // namespace

const std::string* WireMessage::find(std::string_view key) const {
  for (const auto& [k, v] : fields_) {
    if (k == key) return &v;
  }
  return nullptr;
}

bool WireMessage::get_string(std::string_view key, std::string& out) const {
  const std::string* v = find(key);
  if (v == nullptr) return false;
  out = *v;
  return true;
}

bool WireMessage::get_u64(std::string_view key, std::uint64_t& out) const {
  const std::string* v = find(key);
  if (v == nullptr || v->empty()) return false;
  const auto [ptr, ec] =
      std::from_chars(v->data(), v->data() + v->size(), out);
  return ec == std::errc{} && ptr == v->data() + v->size();
}

bool WireMessage::get_double(std::string_view key, double& out) const {
  const std::string* v = find(key);
  if (v == nullptr || v->empty()) return false;
  char* end = nullptr;
  out = std::strtod(v->c_str(), &end);
  return end == v->c_str() + v->size();
}

bool WireMessage::get_bool(std::string_view key, bool& out) const {
  const std::string* v = find(key);
  if (v == nullptr) return false;
  if (*v == "true") { out = true; return true; }
  if (*v == "false") { out = false; return true; }
  return false;
}

bool parse_wire(std::string_view line, WireMessage& out, std::string* err) {
  out = WireMessage{};
  Cursor c{line};
  c.skip_ws();
  if (c.done() || c.peek() != '{') return fail(err, "expected '{'");
  ++c.i;
  c.skip_ws();
  if (!c.done() && c.peek() == '}') {
    ++c.i;
    return true;  // empty object
  }
  while (true) {
    c.skip_ws();
    if (c.done() || c.peek() != '"') return fail(err, "expected key string");
    std::string key;
    if (!parse_string(c, key, err)) return false;
    c.skip_ws();
    if (c.done() || c.peek() != ':') return fail(err, "expected ':'");
    ++c.i;
    c.skip_ws();
    if (c.done()) return fail(err, "expected value");
    std::string value;
    if (c.peek() == '"') {
      if (!parse_string(c, value, err)) return false;
    } else {
      if (!parse_scalar(c, value, err)) return false;
      if (!scalar_token_ok(value)) {
        return fail(err, "bad value for key \"" + key +
                             "\" (expected number, true, false or null)");
      }
    }
    out.add(std::move(key), std::move(value));
    c.skip_ws();
    if (c.done()) return fail(err, "unterminated object");
    if (c.peek() == ',') {
      ++c.i;
      continue;
    }
    if (c.peek() == '}') {
      ++c.i;
      c.skip_ws();
      if (!c.done()) return fail(err, "trailing characters after object");
      return true;
    }
    return fail(err, "expected ',' or '}'");
  }
}

WireWriter& WireWriter::str(std::string_view key, std::string_view value) {
  parts_.emplace_back(std::string(key),
                      "\"" + json_escape(std::string(value)) + "\"");
  return *this;
}

WireWriter& WireWriter::u64(std::string_view key, std::uint64_t value) {
  parts_.emplace_back(std::string(key), std::to_string(value));
  return *this;
}

WireWriter& WireWriter::i64(std::string_view key, std::int64_t value) {
  parts_.emplace_back(std::string(key), std::to_string(value));
  return *this;
}

WireWriter& WireWriter::num(std::string_view key, double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", value);
  parts_.emplace_back(std::string(key), buf);
  return *this;
}

WireWriter& WireWriter::boolean(std::string_view key, bool value) {
  parts_.emplace_back(std::string(key), value ? "true" : "false");
  return *this;
}

std::string WireWriter::finish() const {
  std::string out = "{";
  for (std::size_t i = 0; i < parts_.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"" + json_escape(parts_[i].first) + "\":" + parts_[i].second;
  }
  out += "}";
  return out;
}

}  // namespace ndg::dyn
