#include "dyn/wire.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <cstdlib>

#include "util/table.hpp"

namespace ndg::dyn {

namespace {

struct Cursor {
  std::string_view s;
  std::size_t i = 0;

  [[nodiscard]] bool done() const { return i >= s.size(); }
  [[nodiscard]] char peek() const { return s[i]; }
  void skip_ws() {
    while (!done() && (s[i] == ' ' || s[i] == '\t' || s[i] == '\r' ||
                       s[i] == '\n')) {
      ++i;
    }
  }
};

bool fail(std::string* err, const std::string& what) {
  if (err != nullptr) *err = what;
  return false;
}

/// Parses a JSON string (cursor on the opening quote), unescaping into out.
bool parse_string(Cursor& c, std::string& out, std::string* err) {
  ++c.i;  // opening quote
  out.clear();
  while (!c.done()) {
    const char ch = c.s[c.i];
    if (ch == '"') {
      ++c.i;
      return true;
    }
    if (ch == '\\') {
      ++c.i;
      if (c.done()) break;
      const char esc = c.s[c.i];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (c.i + 4 >= c.s.size()) return fail(err, "truncated \\u escape");
          unsigned code = 0;
          for (int k = 1; k <= 4; ++k) {
            const char h = c.s[c.i + k];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return fail(err, "bad hex digit in \\u escape");
          }
          c.i += 4;
          // UTF-8 encode (BMP only; surrogate pairs land as two 3-byte
          // sequences, fine for the ASCII-only protocol fields).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return fail(err, "unknown escape");
      }
      ++c.i;
      continue;
    }
    out.push_back(ch);
    ++c.i;
  }
  return fail(err, "unterminated string");
}

/// Parses a scalar (number / true / false / null), storing its literal text.
bool parse_scalar(Cursor& c, std::string& out, std::string* err) {
  const std::size_t start = c.i;
  while (!c.done()) {
    const char ch = c.s[c.i];
    if (ch == ',' || ch == '}' || ch == ' ' || ch == '\t' || ch == '\r' ||
        ch == '\n') {
      break;
    }
    if (ch == '{' || ch == '[') return fail(err, "nested values not allowed");
    ++c.i;
  }
  if (c.i == start) return fail(err, "empty value");
  out.assign(c.s.substr(start, c.i - start));
  return true;
}

/// JSON number grammar: -?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?.
bool is_json_number(std::string_view t) {
  std::size_t i = 0;
  if (i < t.size() && t[i] == '-') ++i;
  if (i >= t.size()) return false;
  if (t[i] == '0') {
    ++i;
  } else if (t[i] >= '1' && t[i] <= '9') {
    while (i < t.size() && t[i] >= '0' && t[i] <= '9') ++i;
  } else {
    return false;
  }
  if (i < t.size() && t[i] == '.') {
    ++i;
    if (i >= t.size() || t[i] < '0' || t[i] > '9') return false;
    while (i < t.size() && t[i] >= '0' && t[i] <= '9') ++i;
  }
  if (i < t.size() && (t[i] == 'e' || t[i] == 'E')) {
    ++i;
    if (i < t.size() && (t[i] == '+' || t[i] == '-')) ++i;
    if (i >= t.size() || t[i] < '0' || t[i] > '9') return false;
    while (i < t.size() && t[i] >= '0' && t[i] <= '9') ++i;
  }
  return i == t.size();
}

/// Unquoted values must be one of JSON's scalar spellings. Anything else
/// (e.g. {"vertex":xyz}) used to be accepted verbatim and then surface
/// downstream as a misleading "missing field" error; reject it here, naming
/// the key it was attached to.
bool scalar_token_ok(std::string_view t) {
  return t == "true" || t == "false" || t == "null" || is_json_number(t);
}

}  // namespace

const std::string* WireMessage::find(std::string_view key) const {
  for (const auto& [k, v] : fields_) {
    if (k == key) return &v;
  }
  return nullptr;
}

bool WireMessage::get_string(std::string_view key, std::string& out) const {
  const std::string* v = find(key);
  if (v == nullptr) return false;
  out = *v;
  return true;
}

bool WireMessage::get_u64(std::string_view key, std::uint64_t& out) const {
  const std::string* v = find(key);
  if (v == nullptr || v->empty()) return false;
  const auto [ptr, ec] =
      std::from_chars(v->data(), v->data() + v->size(), out);
  return ec == std::errc{} && ptr == v->data() + v->size();
}

bool WireMessage::get_double(std::string_view key, double& out) const {
  const std::string* v = find(key);
  if (v == nullptr || v->empty()) return false;
  char* end = nullptr;
  out = std::strtod(v->c_str(), &end);
  return end == v->c_str() + v->size();
}

bool WireMessage::get_bool(std::string_view key, bool& out) const {
  const std::string* v = find(key);
  if (v == nullptr) return false;
  if (*v == "true") { out = true; return true; }
  if (*v == "false") { out = false; return true; }
  return false;
}

bool parse_wire(std::string_view line, WireMessage& out, std::string* err) {
  out = WireMessage{};
  Cursor c{line};
  c.skip_ws();
  if (c.done() || c.peek() != '{') return fail(err, "expected '{'");
  ++c.i;
  c.skip_ws();
  if (!c.done() && c.peek() == '}') {
    ++c.i;
    return true;  // empty object
  }
  while (true) {
    c.skip_ws();
    if (c.done() || c.peek() != '"') return fail(err, "expected key string");
    std::string key;
    if (!parse_string(c, key, err)) return false;
    c.skip_ws();
    if (c.done() || c.peek() != ':') return fail(err, "expected ':'");
    ++c.i;
    c.skip_ws();
    if (c.done()) return fail(err, "expected value");
    std::string value;
    if (c.peek() == '"') {
      if (!parse_string(c, value, err)) return false;
    } else {
      if (!parse_scalar(c, value, err)) return false;
      if (!scalar_token_ok(value)) {
        return fail(err, "bad value for key \"" + key +
                             "\" (expected number, true, false or null)");
      }
    }
    out.add(std::move(key), std::move(value));
    c.skip_ws();
    if (c.done()) return fail(err, "unterminated object");
    if (c.peek() == ',') {
      ++c.i;
      continue;
    }
    if (c.peek() == '}') {
      ++c.i;
      c.skip_ws();
      if (!c.done()) return fail(err, "trailing characters after object");
      return true;
    }
    return fail(err, "expected ',' or '}'");
  }
}

WireWriter& WireWriter::str(std::string_view key, std::string_view value) {
  parts_.emplace_back(std::string(key),
                      "\"" + json_escape(std::string(value)) + "\"");
  return *this;
}

WireWriter& WireWriter::u64(std::string_view key, std::uint64_t value) {
  parts_.emplace_back(std::string(key), std::to_string(value));
  return *this;
}

WireWriter& WireWriter::i64(std::string_view key, std::int64_t value) {
  parts_.emplace_back(std::string(key), std::to_string(value));
  return *this;
}

WireWriter& WireWriter::num(std::string_view key, double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", value);
  parts_.emplace_back(std::string(key), buf);
  return *this;
}

WireWriter& WireWriter::boolean(std::string_view key, bool value) {
  parts_.emplace_back(std::string(key), value ? "true" : "false");
  return *this;
}

std::string WireWriter::finish() const {
  std::string out = "{";
  for (std::size_t i = 0; i < parts_.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"" + json_escape(parts_[i].first) + "\":" + parts_[i].second;
  }
  out += "}";
  return out;
}

// ── Binary framing ──────────────────────────────────────────────────────────

void append_frame(std::string& out, FrameType type, std::string_view payload) {
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  put_u8(out, static_cast<std::uint8_t>(type));
  out.append(payload.data(), payload.size());
}

FrameParse extract_frame(std::string& buf, Frame& out, std::string* err) {
  if (buf.size() < kFrameHeaderBytes) return FrameParse::kNeedMore;
  std::size_t off = 0;
  std::uint32_t len = 0;
  get_u32(buf, off, len);
  if (len > kMaxFrameLen) {
    fail(err, "frame length " + std::to_string(len) + " exceeds bound " +
                  std::to_string(kMaxFrameLen));
    return FrameParse::kBad;
  }
  if (buf.size() < kFrameHeaderBytes + len) return FrameParse::kNeedMore;
  out.type = static_cast<FrameType>(
      static_cast<std::uint8_t>(buf[kFrameHeaderBytes - 1]));
  out.payload.assign(buf, kFrameHeaderBytes, len);
  buf.erase(0, kFrameHeaderBytes + len);
  return FrameParse::kOk;
}

namespace {

constexpr std::size_t kMutateBytes = 13;  // kind u8 | src u32 | dst u32 | f32

void put_mutation(std::string& s, const Mutation& m) {
  put_u8(s, static_cast<std::uint8_t>(m.kind));
  put_u32(s, m.src);
  put_u32(s, m.dst);
  put_f32(s, m.weight);
}

bool get_mutation(std::string_view s, std::size_t& off, Mutation& m,
                  std::string* err) {
  std::uint8_t kind = 0;
  if (!get_u8(s, off, kind) || !get_u32(s, off, m.src) ||
      !get_u32(s, off, m.dst) || !get_f32(s, off, m.weight)) {
    return fail(err, "mutate: truncated payload");
  }
  if (kind > static_cast<std::uint8_t>(MutationKind::kWeightChange)) {
    return fail(err, "mutate: unknown kind byte");
  }
  m.kind = static_cast<MutationKind>(kind);
  return true;
}

bool expect_consumed(std::string_view p, std::size_t off, const char* what,
                     std::string* err) {
  if (off == p.size()) return true;
  return fail(err, std::string(what) + ": payload size mismatch");
}

}  // namespace

std::string encode_mutate(const Mutation& m) {
  std::string s;
  s.reserve(kMutateBytes);
  put_mutation(s, m);
  return s;
}

bool decode_mutate(std::string_view p, Mutation& out, std::string* err) {
  std::size_t off = 0;
  if (!get_mutation(p, off, out, err)) return false;
  return expect_consumed(p, off, "mutate", err);
}

std::string encode_mbatch(const std::vector<Mutation>& ms) {
  std::string s;
  s.reserve(4 + ms.size() * kMutateBytes);
  put_u32(s, static_cast<std::uint32_t>(ms.size()));
  for (const Mutation& m : ms) put_mutation(s, m);
  return s;
}

bool decode_mbatch(std::string_view p, std::vector<Mutation>& out,
                   std::string* err) {
  std::size_t off = 0;
  std::uint32_t count = 0;
  if (!get_u32(p, off, count)) return fail(err, "mbatch: truncated payload");
  // The exact-size check makes a lying count a parse error; the frame bound
  // already caps count * kMutateBytes well under any allocation hazard.
  if (p.size() != 4 + static_cast<std::uint64_t>(count) * kMutateBytes) {
    return fail(err, "mbatch: count disagrees with payload size");
  }
  out.clear();
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    Mutation m;
    if (!get_mutation(p, off, m, err)) return false;
    out.push_back(m);
  }
  return true;
}

std::string encode_mutate_ack(std::uint64_t pending) {
  std::string s;
  put_u64(s, pending);
  return s;
}

bool decode_mutate_ack(std::string_view p, std::uint64_t& pending,
                       std::string* err) {
  std::size_t off = 0;
  if (!get_u64(p, off, pending)) return fail(err, "ack: truncated payload");
  return expect_consumed(p, off, "ack", err);
}

std::string encode_mbatch_ack(std::uint32_t accepted, std::uint64_t pending) {
  std::string s;
  put_u32(s, accepted);
  put_u64(s, pending);
  return s;
}

bool decode_mbatch_ack(std::string_view p, std::uint32_t& accepted,
                       std::uint64_t& pending, std::string* err) {
  std::size_t off = 0;
  if (!get_u32(p, off, accepted) || !get_u64(p, off, pending)) {
    return fail(err, "mbatch-ack: truncated payload");
  }
  return expect_consumed(p, off, "mbatch-ack", err);
}

std::string encode_query(std::uint64_t vertex) {
  std::string s;
  put_u64(s, vertex);
  return s;
}

bool decode_query(std::string_view p, std::uint64_t& vertex,
                  std::string* err) {
  std::size_t off = 0;
  if (!get_u64(p, off, vertex)) return fail(err, "query: truncated payload");
  return expect_consumed(p, off, "query", err);
}

std::string encode_query_reply(const QueryReplyBin& r) {
  std::string s;
  std::uint8_t flags = 0;
  if (r.has_quiescent) flags |= 1u;
  if (r.quiescent) flags |= 2u;
  put_u8(s, flags);
  put_u64(s, r.vertex);
  put_f64(s, r.value);
  put_u64(s, r.epoch);
  return s;
}

bool decode_query_reply(std::string_view p, QueryReplyBin& out,
                        std::string* err) {
  std::size_t off = 0;
  std::uint8_t flags = 0;
  if (!get_u8(p, off, flags) || !get_u64(p, off, out.vertex) ||
      !get_f64(p, off, out.value) || !get_u64(p, off, out.epoch)) {
    return fail(err, "query-reply: truncated payload");
  }
  out.has_quiescent = (flags & 1u) != 0;
  out.quiescent = (flags & 2u) != 0;
  return expect_consumed(p, off, "query-reply", err);
}

std::string encode_recompute_reply(const RecomputeReplyBin& r) {
  std::string s;
  put_u64(s, r.epoch);
  std::uint8_t flags = 0;
  if (r.warm) flags |= 1u;
  if (r.converged) flags |= 2u;
  if (r.compacted) flags |= 4u;
  put_u8(s, flags);
  put_u64(s, r.applied);
  put_u64(s, r.rejected);
  put_u64(s, r.seeds);
  put_u64(s, r.iterations);
  put_u64(s, r.updates);
  put_u64(s, r.live_edges);
  s.append(r.reason);  // trailing text: the rest of the payload
  return s;
}

bool decode_recompute_reply(std::string_view p, RecomputeReplyBin& out,
                            std::string* err) {
  std::size_t off = 0;
  std::uint8_t flags = 0;
  if (!get_u64(p, off, out.epoch) || !get_u8(p, off, flags) ||
      !get_u64(p, off, out.applied) || !get_u64(p, off, out.rejected) ||
      !get_u64(p, off, out.seeds) || !get_u64(p, off, out.iterations) ||
      !get_u64(p, off, out.updates) || !get_u64(p, off, out.live_edges)) {
    return fail(err, "recompute-reply: truncated payload");
  }
  out.warm = (flags & 1u) != 0;
  out.converged = (flags & 2u) != 0;
  out.compacted = (flags & 4u) != 0;
  out.reason.assign(p.substr(off));
  return true;
}

}  // namespace ndg::dyn
