#pragma once
// The dynamic extension of the vertex-program contract (docs/DYNAMIC.md).
//
// A program opts into warm-started incremental recompute by adding two hooks
// on top of the VertexProgram surface:
//
//   bool dyn_warm_ok(const AppliedMutation&) const;
//       // Is THIS mutation inside the program's warm-start envelope? Only
//       // consulted when the program's eligibility verdict is Theorem 2:
//       // a monotone algorithm may warm-start only from mutations that move
//       // edge state in its monotone direction (SSSP: inserts and weight
//       // DECREASES; WCC: inserts). Theorem 1 programs converge to their
//       // fixed point from any state, so the gate never asks them.
//
//   template <typename ViewT>
//   void dyn_apply(const ViewT& g, EdgeDataArray<EdgeData>& edges,
//                  const AppliedMutation& m, std::vector<VertexId>& seeds);
//       // Patch edge state for one applied mutation so the pre-mutation
//       // result becomes a VALID intermediate state of the algorithm on the
//       // mutated graph, and append the vertices whose update functions must
//       // re-run (the affected set — they become S_0 of the warm run). The
//       // adjacency in `g` is already post-mutation; `m.id` slots already
//       // exist in `edges` (the driver resizes first).
//
// Programs without the hooks still work through IncrementalEngine — every
// batch is a cold recompute, which is also the fallback the eligibility gate
// forces for kNotProven verdicts.

#include <concepts>
#include <vector>

#include "atomics/edge_data.hpp"
#include "dyn/dyn_graph.hpp"
#include "dyn/mutation.hpp"
#include "util/types.hpp"

namespace ndg::dyn {

/// The statically checkable half of the contract (dyn_apply is a template,
/// so it is checked at instantiation against the concrete view type).
template <typename P>
concept MutationAwareProgram =
    requires(const P p, const AppliedMutation& m) {
      { p.dyn_warm_ok(m) } -> std::convertible_to<bool>;
    };

/// Full check against a concrete graph-view type.
template <typename P, typename ViewT = DynGraph>
concept DynamicProgram =
    MutationAwareProgram<P> &&
    requires(P p, const ViewT& g, EdgeDataArray<typename P::EdgeData>& edges,
             const AppliedMutation& m, std::vector<VertexId>& seeds) {
      { p.dyn_apply(g, edges, m, seeds) };
    };

}  // namespace ndg::dyn
