#pragma once
// The dynamic extension of the vertex-program contract (docs/DYNAMIC.md).
//
// A program opts into warm-started incremental recompute by adding two hooks
// on top of the VertexProgram surface:
//
//   bool dyn_warm_ok(const AppliedMutation&) const;
//       // Is THIS mutation inside the program's warm-start envelope? Only
//       // consulted when the program's eligibility verdict is Theorem 2:
//       // a monotone algorithm may warm-start only from mutations that move
//       // edge state in its monotone direction (SSSP: inserts and weight
//       // DECREASES; WCC: inserts). Theorem 1 programs converge to their
//       // fixed point from any state, so the gate never asks them.
//
//   template <typename ViewT>
//   void dyn_apply(const ViewT& g, EdgeDataArray<EdgeData>& edges,
//                  const AppliedMutation& m, std::vector<VertexId>& seeds);
//       // Patch edge state for one applied mutation so the pre-mutation
//       // result becomes a VALID intermediate state of the algorithm on the
//       // mutated graph, and append the vertices whose update functions must
//       // re-run (the affected set — they become S_0 of the warm run). The
//       // adjacency in `g` is already post-mutation; `m.id` slots already
//       // exist in `edges` (the driver resizes first).
//
// Programs without the hooks still work through IncrementalEngine — every
// batch is a cold recompute, which is also the fallback the eligibility gate
// forces for kNotProven verdicts.

#include <concepts>
#include <vector>

#include "atomics/edge_data.hpp"
#include "dyn/dyn_graph.hpp"
#include "dyn/mutation.hpp"
#include "util/types.hpp"

namespace ndg::dyn {

/// The statically checkable half of the contract (dyn_apply is a template,
/// so it is checked at instantiation against the concrete view type).
template <typename P>
concept MutationAwareProgram =
    requires(const P p, const AppliedMutation& m) {
      { p.dyn_warm_ok(m) } -> std::convertible_to<bool>;
    };

/// Full check against a concrete graph-view type.
template <typename P, typename ViewT = DynGraph>
concept DynamicProgram =
    MutationAwareProgram<P> &&
    requires(P p, const ViewT& g, EdgeDataArray<typename P::EdgeData>& edges,
             const AppliedMutation& m, std::vector<VertexId>& seeds) {
      { p.dyn_apply(g, edges, m, seeds) };
    };

namespace detail {

/// Stand-in reader for the LiveQueryProgram concept check: callable with the
/// same EdgeId -> EdgeData shape as the policy-routed reader the engine
/// passes to live_value at runtime.
template <typename EdgeDataT>
struct ProbeEdgeReader {
  EdgeDataT operator()(EdgeId) const;
};

}  // namespace detail

/// A program opts into LIVE (mid-recompute) vertex queries by deriving a
/// vertex value from individual edge reads only:
///
///   template <typename ViewT, typename ReadFn>
///   double live_value(const ViewT& g, ReadFn&& read_edge, VertexId v) const;
///       // Reconstruct v's current value purely from `read_edge(e)` calls
///       // (each one an individually-atomic edge read — Lemma 1) and from
///       // immutable program parameters. MUST NOT touch the program's
///       // per-vertex scratch arrays: those are plain (non-atomic) state the
///       // racy engines write concurrently. At a quiescent point the result
///       // agrees with values()[v] (exactly for monotone fixed points,
///       // within the run tolerance for contraction-style programs).
template <typename P, typename ViewT = DynGraph>
concept LiveQueryProgram =
    requires(const P p, const ViewT& g, VertexId v,
             detail::ProbeEdgeReader<typename P::EdgeData> read) {
      { p.live_value(g, read, v) } -> std::convertible_to<double>;
    };

}  // namespace ndg::dyn
