#include "dyn/eligibility_gate.hpp"

namespace ndg::dyn {

const char* to_string(GateMode m) {
  switch (m) {
    case GateMode::kAnalyze: return "analyze";
    case GateMode::kStatic: return "static";
    case GateMode::kAssumeTheorem1: return "assume-theorem-1";
    case GateMode::kAssumeTheorem2: return "assume-theorem-2";
    case GateMode::kAssumeIneligible: return "assume-ineligible";
  }
  return "?";
}

}  // namespace ndg::dyn
