#include "dyn/replication.hpp"

#include <algorithm>
#include <utility>

namespace ndg::dyn {

namespace {

bool fail(std::string* err, const char* what) {
  if (err != nullptr) *err = what;
  return false;
}

bool parse_kind(const std::string& s, MutationKind& out) {
  if (s == "insert") {
    out = MutationKind::kInsertEdge;
  } else if (s == "delete") {
    out = MutationKind::kDeleteEdge;
  } else if (s == "weight") {
    out = MutationKind::kWeightChange;
  } else {
    return false;
  }
  return true;
}

}  // namespace

const RepRecord& ReplicationLog::push(RepRecord rec) {
  rec.seq = next_seq_++;
  records_.push_back(std::move(rec));
  while (records_.size() > history_limit_) records_.pop_front();
  return records_.back();
}

const RepRecord& ReplicationLog::append_batch(
    std::uint64_t epoch, std::vector<AppliedMutation> muts,
    bool compact_after) {
  RepRecord rec;
  rec.kind = RepKind::kBatch;
  rec.epoch = epoch;
  rec.muts = std::move(muts);
  rec.compact_after = compact_after;
  return push(std::move(rec));
}

const RepRecord& ReplicationLog::append_compact(std::uint64_t epoch) {
  RepRecord rec;
  rec.kind = RepKind::kCompact;
  rec.epoch = epoch;
  return push(std::move(rec));
}

std::uint64_t ReplicationLog::oldest_seq() const {
  return records_.empty() ? next_seq_ : records_.front().seq;
}

bool ReplicationLog::has(std::uint64_t seq) const {
  return !records_.empty() && seq >= records_.front().seq &&
         seq < next_seq_;
}

const RepRecord& ReplicationLog::get(std::uint64_t seq) const {
  return records_[seq - records_.front().seq];
}

std::string encode_record_header(const RepRecord& rec) {
  return WireWriter()
      .str("op", "replicate")
      .u64("seq", rec.seq)
      .str("kind", rec.kind == RepKind::kBatch ? "batch" : "compact")
      .u64("epoch", rec.epoch)
      .u64("count", rec.muts.size())
      .boolean("compact", rec.compact_after)
      .finish();
}

std::string encode_applied(const AppliedMutation& m) {
  return WireWriter()
      .str("op", "rmut")
      .str("kind", to_string(m.kind))
      .u64("src", m.src)
      .u64("dst", m.dst)
      .u64("id", m.id)
      .num("weight", m.weight)
      .num("old", m.old_weight)
      .finish();
}

std::string encode_snapshot_header(const SnapshotHeader& h) {
  return WireWriter()
      .str("op", "snapshot")
      .u64("seq", h.seq)
      .u64("epoch", h.epoch)
      .u64("vertices", h.vertices)
      .u64("edges", h.edges)
      .finish();
}

std::string encode_snapshot_edge(const SnapshotEdge& e) {
  return WireWriter()
      .str("op", "sedge")
      .u64("src", e.src)
      .u64("dst", e.dst)
      .num("weight", e.weight)
      .finish();
}

std::string encode_sync(std::uint64_t replica, std::uint64_t seq) {
  return WireWriter()
      .str("op", "sync")
      .u64("replica", replica)
      .u64("seq", seq)
      .finish();
}

std::string encode_ack(std::uint64_t replica, std::uint64_t seq,
                       std::uint64_t epoch) {
  return WireWriter()
      .str("op", "ack")
      .u64("replica", replica)
      .u64("seq", seq)
      .u64("epoch", epoch)
      .finish();
}

bool parse_record_header(const WireMessage& msg, RepRecord& out,
                         std::uint64_t& count, std::string* err) {
  std::string kind;
  if (!msg.get_string("kind", kind)) {
    return fail(err, "replicate: missing field: kind");
  }
  if (kind == "batch") {
    out.kind = RepKind::kBatch;
  } else if (kind == "compact") {
    out.kind = RepKind::kCompact;
  } else {
    return fail(err, "replicate: unknown kind");
  }
  if (!msg.get_u64("seq", out.seq) || !msg.get_u64("epoch", out.epoch) ||
      !msg.get_u64("count", count)) {
    return fail(err, "replicate: missing field: seq/epoch/count");
  }
  if (count > kMaxRecordMuts) {
    return fail(err, "replicate: count exceeds record bound");
  }
  out.compact_after = false;
  msg.get_bool("compact", out.compact_after);
  out.muts.clear();
  // The count is wire data: trust it for scheduling but not for allocation —
  // reserve a modest floor and let push_back grow the rare giant record.
  out.muts.reserve(std::min<std::uint64_t>(count, 1u << 16));
  return true;
}

bool parse_applied(const WireMessage& msg, AppliedMutation& out,
                   std::string* err) {
  std::string kind;
  std::uint64_t src = 0;
  std::uint64_t dst = 0;
  std::uint64_t id = 0;
  double weight = 0.0;
  double old_weight = 0.0;
  if (!msg.get_string("kind", kind) || !parse_kind(kind, out.kind)) {
    return fail(err, "rmut: bad field: kind");
  }
  if (!msg.get_u64("src", src) || !msg.get_u64("dst", dst) ||
      !msg.get_u64("id", id) || !msg.get_double("weight", weight) ||
      !msg.get_double("old", old_weight)) {
    return fail(err, "rmut: missing field: src/dst/id/weight/old");
  }
  out.src = static_cast<VertexId>(src);
  out.dst = static_cast<VertexId>(dst);
  out.id = static_cast<EdgeId>(id);
  out.weight = static_cast<float>(weight);
  out.old_weight = static_cast<float>(old_weight);
  return true;
}

bool parse_snapshot_header(const WireMessage& msg, SnapshotHeader& out,
                           std::string* err) {
  std::uint64_t vertices = 0;
  std::uint64_t edges = 0;
  if (!msg.get_u64("seq", out.seq) || !msg.get_u64("epoch", out.epoch) ||
      !msg.get_u64("vertices", vertices) || !msg.get_u64("edges", edges)) {
    return fail(err, "snapshot: missing field: seq/epoch/vertices/edges");
  }
  out.vertices = static_cast<VertexId>(vertices);
  out.edges = static_cast<EdgeId>(edges);
  return true;
}

bool parse_snapshot_edge(const WireMessage& msg, SnapshotEdge& out,
                         std::string* err) {
  std::uint64_t src = 0;
  std::uint64_t dst = 0;
  double weight = 1.0;
  if (!msg.get_u64("src", src) || !msg.get_u64("dst", dst) ||
      !msg.get_double("weight", weight)) {
    return fail(err, "sedge: missing field: src/dst/weight");
  }
  out.src = static_cast<VertexId>(src);
  out.dst = static_cast<VertexId>(dst);
  out.weight = static_cast<float>(weight);
  return true;
}

}  // namespace ndg::dyn
