#include "dyn/replication.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <utility>

namespace ndg::dyn {

namespace {

bool fail(std::string* err, const char* what) {
  if (err != nullptr) *err = what;
  return false;
}

bool parse_kind(const std::string& s, MutationKind& out) {
  if (s == "insert") {
    out = MutationKind::kInsertEdge;
  } else if (s == "delete") {
    out = MutationKind::kDeleteEdge;
  } else if (s == "weight") {
    out = MutationKind::kWeightChange;
  } else {
    return false;
  }
  return true;
}

}  // namespace

const RepRecord& ReplicationLog::push(RepRecord rec) {
  rec.seq = next_seq_++;
  records_.push_back(std::move(rec));
  while (records_.size() > history_limit_) records_.pop_front();
  return records_.back();
}

const RepRecord& ReplicationLog::append_batch(
    std::uint64_t epoch, std::vector<AppliedMutation> muts,
    bool compact_after) {
  RepRecord rec;
  rec.kind = RepKind::kBatch;
  rec.epoch = epoch;
  rec.muts = std::move(muts);
  rec.compact_after = compact_after;
  return push(std::move(rec));
}

const RepRecord& ReplicationLog::append_compact(std::uint64_t epoch) {
  RepRecord rec;
  rec.kind = RepKind::kCompact;
  rec.epoch = epoch;
  return push(std::move(rec));
}

std::uint64_t ReplicationLog::oldest_seq() const {
  return records_.empty() ? next_seq_ : records_.front().seq;
}

bool ReplicationLog::has(std::uint64_t seq) const {
  return !records_.empty() && seq >= records_.front().seq &&
         seq < next_seq_;
}

const RepRecord& ReplicationLog::get(std::uint64_t seq) const {
  return records_[seq - records_.front().seq];
}

std::string encode_record_header(const RepRecord& rec) {
  return WireWriter()
      .str("op", "replicate")
      .u64("seq", rec.seq)
      .str("kind", rec.kind == RepKind::kBatch ? "batch" : "compact")
      .u64("epoch", rec.epoch)
      .u64("count", rec.muts.size())
      .boolean("compact", rec.compact_after)
      .finish();
}

std::string encode_applied(const AppliedMutation& m) {
  return WireWriter()
      .str("op", "rmut")
      .str("kind", to_string(m.kind))
      .u64("src", m.src)
      .u64("dst", m.dst)
      .u64("id", m.id)
      .num("weight", m.weight)
      .num("old", m.old_weight)
      .finish();
}

std::string encode_snapshot_header(const SnapshotHeader& h) {
  return WireWriter()
      .str("op", "snapshot")
      .u64("seq", h.seq)
      .u64("epoch", h.epoch)
      .u64("vertices", h.vertices)
      .u64("edges", h.edges)
      .finish();
}

std::string encode_snapshot_edge(const SnapshotEdge& e) {
  return WireWriter()
      .str("op", "sedge")
      .u64("src", e.src)
      .u64("dst", e.dst)
      .num("weight", e.weight)
      .finish();
}

std::string encode_sync(std::uint64_t replica, std::uint64_t seq) {
  return WireWriter()
      .str("op", "sync")
      .u64("replica", replica)
      .u64("seq", seq)
      .finish();
}

std::string encode_ack(std::uint64_t replica, std::uint64_t seq,
                       std::uint64_t epoch) {
  return WireWriter()
      .str("op", "ack")
      .u64("replica", replica)
      .u64("seq", seq)
      .u64("epoch", epoch)
      .finish();
}

bool parse_record_header(const WireMessage& msg, RepRecord& out,
                         std::uint64_t& count, std::string* err) {
  std::string kind;
  if (!msg.get_string("kind", kind)) {
    return fail(err, "replicate: missing field: kind");
  }
  if (kind == "batch") {
    out.kind = RepKind::kBatch;
  } else if (kind == "compact") {
    out.kind = RepKind::kCompact;
  } else {
    return fail(err, "replicate: unknown kind");
  }
  if (!msg.get_u64("seq", out.seq) || !msg.get_u64("epoch", out.epoch) ||
      !msg.get_u64("count", count)) {
    return fail(err, "replicate: missing field: seq/epoch/count");
  }
  if (count > kMaxRecordMuts) {
    return fail(err, "replicate: count exceeds record bound");
  }
  out.compact_after = false;
  msg.get_bool("compact", out.compact_after);
  out.muts.clear();
  // The count is wire data: trust it for scheduling but not for allocation —
  // reserve a modest floor and let push_back grow the rare giant record.
  out.muts.reserve(std::min<std::uint64_t>(count, 1u << 16));
  return true;
}

bool parse_applied(const WireMessage& msg, AppliedMutation& out,
                   std::string* err) {
  std::string kind;
  std::uint64_t src = 0;
  std::uint64_t dst = 0;
  std::uint64_t id = 0;
  double weight = 0.0;
  double old_weight = 0.0;
  if (!msg.get_string("kind", kind) || !parse_kind(kind, out.kind)) {
    return fail(err, "rmut: bad field: kind");
  }
  if (!msg.get_u64("src", src) || !msg.get_u64("dst", dst) ||
      !msg.get_u64("id", id) || !msg.get_double("weight", weight) ||
      !msg.get_double("old", old_weight)) {
    return fail(err, "rmut: missing field: src/dst/id/weight/old");
  }
  out.src = static_cast<VertexId>(src);
  out.dst = static_cast<VertexId>(dst);
  out.id = static_cast<EdgeId>(id);
  out.weight = static_cast<float>(weight);
  out.old_weight = static_cast<float>(old_weight);
  return true;
}

bool parse_snapshot_header(const WireMessage& msg, SnapshotHeader& out,
                           std::string* err) {
  std::uint64_t vertices = 0;
  std::uint64_t edges = 0;
  if (!msg.get_u64("seq", out.seq) || !msg.get_u64("epoch", out.epoch) ||
      !msg.get_u64("vertices", vertices) || !msg.get_u64("edges", edges)) {
    return fail(err, "snapshot: missing field: seq/epoch/vertices/edges");
  }
  out.vertices = static_cast<VertexId>(vertices);
  out.edges = static_cast<EdgeId>(edges);
  return true;
}

bool parse_snapshot_edge(const WireMessage& msg, SnapshotEdge& out,
                         std::string* err) {
  std::uint64_t src = 0;
  std::uint64_t dst = 0;
  double weight = 1.0;
  if (!msg.get_u64("src", src) || !msg.get_u64("dst", dst) ||
      !msg.get_double("weight", weight)) {
    return fail(err, "sedge: missing field: src/dst/weight");
  }
  out.src = static_cast<VertexId>(src);
  out.dst = static_cast<VertexId>(dst);
  out.weight = static_cast<float>(weight);
  return true;
}

// ── Binary codec ────────────────────────────────────────────────────────────

namespace {

constexpr std::size_t kAppliedBytes = 25;  // kind|src|dst|id|weight|old
constexpr std::size_t kSnapEdgeBytes = 12;  // src u32 | dst u32 | weight f32

bool fail_s(std::string* err, const std::string& what) {
  if (err != nullptr) *err = what;
  return false;
}

}  // namespace

std::string encode_record_bin(const RepRecord& rec) {
  std::string s;
  s.reserve(8 + 1 + 8 + 1 + 4 + rec.muts.size() * kAppliedBytes);
  put_u64(s, rec.seq);
  put_u8(s, static_cast<std::uint8_t>(rec.kind));
  put_u64(s, rec.epoch);
  put_u8(s, rec.compact_after ? 1 : 0);
  put_u32(s, static_cast<std::uint32_t>(rec.muts.size()));
  for (const AppliedMutation& m : rec.muts) {
    put_u8(s, static_cast<std::uint8_t>(m.kind));
    put_u32(s, m.src);
    put_u32(s, m.dst);
    put_u64(s, m.id);
    put_f32(s, m.weight);
    put_f32(s, m.old_weight);
  }
  return s;
}

bool decode_record_bin(std::string_view p, RepRecord& out, std::string* err) {
  std::size_t off = 0;
  std::uint8_t kind = 0;
  std::uint8_t compact = 0;
  std::uint32_t count = 0;
  if (!get_u64(p, off, out.seq) || !get_u8(p, off, kind) ||
      !get_u64(p, off, out.epoch) || !get_u8(p, off, compact) ||
      !get_u32(p, off, count)) {
    return fail_s(err, "replicate: truncated record header");
  }
  if (kind > static_cast<std::uint8_t>(RepKind::kCompact)) {
    return fail_s(err, "replicate: unknown kind byte");
  }
  out.kind = static_cast<RepKind>(kind);
  out.compact_after = compact != 0;
  // Same hardening as the JSON header path: a wire count above the record
  // bound is a parse error, and the exact-size check below makes any count
  // that disagrees with the frame a parse error too (never a bad reserve —
  // kMaxFrameLen already bounds what can reach this function).
  if (count > kMaxRecordMuts) {
    return fail_s(err, "replicate: count exceeds record bound");
  }
  if (p.size() != off + static_cast<std::uint64_t>(count) * kAppliedBytes) {
    return fail_s(err, "replicate: count disagrees with payload size");
  }
  out.muts.clear();
  out.muts.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    AppliedMutation m{};
    std::uint8_t mk = 0;
    get_u8(p, off, mk);
    get_u32(p, off, m.src);
    get_u32(p, off, m.dst);
    std::uint64_t id = 0;
    get_u64(p, off, id);
    m.id = static_cast<EdgeId>(id);
    get_f32(p, off, m.weight);
    get_f32(p, off, m.old_weight);
    if (mk > static_cast<std::uint8_t>(MutationKind::kWeightChange)) {
      return fail_s(err, "rmut: unknown kind byte");
    }
    m.kind = static_cast<MutationKind>(mk);
    out.muts.push_back(m);
  }
  return true;
}

std::string encode_snapshot_header_bin(const SnapshotHeader& h) {
  std::string s;
  put_u64(s, h.seq);
  put_u64(s, h.epoch);
  put_u32(s, h.vertices);
  put_u64(s, h.edges);
  return s;
}

bool decode_snapshot_header_bin(std::string_view p, SnapshotHeader& out,
                                std::string* err) {
  std::size_t off = 0;
  std::uint64_t edges = 0;
  if (!get_u64(p, off, out.seq) || !get_u64(p, off, out.epoch) ||
      !get_u32(p, off, out.vertices) || !get_u64(p, off, edges) ||
      off != p.size()) {
    return fail_s(err, "snapshot: malformed header payload");
  }
  out.edges = static_cast<EdgeId>(edges);
  return true;
}

std::string encode_snapshot_chunk(const SnapshotEdge* edges,
                                  std::size_t count) {
  std::string s;
  s.reserve(4 + count * kSnapEdgeBytes);
  put_u32(s, static_cast<std::uint32_t>(count));
  static_assert(sizeof(SnapshotEdge) == kSnapEdgeBytes,
                "SnapshotEdge must stay a packed 12-byte triple");
  if constexpr (std::endian::native == std::endian::little) {
    // The in-memory array IS the wire image: ship the coordinator's shared
    // snapshot buffer directly instead of re-encoding per edge.
    s.append(reinterpret_cast<const char*>(edges),  // ndg-lint: allow(raw-cast)
             count * kSnapEdgeBytes);
  } else {
    for (std::size_t i = 0; i < count; ++i) {
      put_u32(s, edges[i].src);
      put_u32(s, edges[i].dst);
      put_f32(s, edges[i].weight);
    }
  }
  return s;
}

bool decode_snapshot_chunk(std::string_view p, std::vector<SnapshotEdge>& out,
                           std::string* err) {
  std::size_t off = 0;
  std::uint32_t count = 0;
  if (!get_u32(p, off, count)) {
    return fail_s(err, "sedge: truncated chunk payload");
  }
  if (p.size() != 4 + static_cast<std::uint64_t>(count) * kSnapEdgeBytes) {
    return fail_s(err, "sedge: count disagrees with payload size");
  }
  out.reserve(out.size() + count);
  if constexpr (std::endian::native == std::endian::little) {
    const std::size_t base = out.size();
    out.resize(base + count);
    std::memcpy(out.data() + base, p.data() + off, count * kSnapEdgeBytes);
  } else {
    for (std::uint32_t i = 0; i < count; ++i) {
      SnapshotEdge e;
      get_u32(p, off, e.src);
      get_u32(p, off, e.dst);
      get_f32(p, off, e.weight);
      out.push_back(e);
    }
  }
  return true;
}

std::string encode_sync_bin(std::uint64_t replica, std::uint64_t seq) {
  std::string s;
  put_u64(s, replica);
  put_u64(s, seq);
  return s;
}

bool decode_sync_bin(std::string_view p, std::uint64_t& replica,
                     std::uint64_t& seq, std::string* err) {
  std::size_t off = 0;
  if (!get_u64(p, off, replica) || !get_u64(p, off, seq) ||
      off != p.size()) {
    return fail_s(err, "sync: malformed payload");
  }
  return true;
}

std::string encode_ack_bin(std::uint64_t replica, std::uint64_t seq,
                           std::uint64_t epoch) {
  std::string s;
  put_u64(s, replica);
  put_u64(s, seq);
  put_u64(s, epoch);
  return s;
}

bool decode_ack_bin(std::string_view p, std::uint64_t& replica,
                    std::uint64_t& seq, std::uint64_t& epoch,
                    std::string* err) {
  std::size_t off = 0;
  if (!get_u64(p, off, replica) || !get_u64(p, off, seq) ||
      !get_u64(p, off, epoch) || off != p.size()) {
    return fail_s(err, "ack: malformed payload");
  }
  return true;
}

}  // namespace ndg::dyn
