#pragma once
// Breadth-First Search — "a special case of SSSP, where the weight values of
// the edges are all ones" (Section V-A). The edge datum is the level of the
// edge's source endpoint; conflicts under nondeterministic execution are
// read-write only, and levels are monotonically non-increasing.

#include <algorithm>
#include <vector>

#include "analysis/access_manifest.hpp"
#include "engine/vertex_program.hpp"

namespace ndg {

class BfsProgram {
 public:
  using EdgeData = std::uint32_t;  // level of the edge's source endpoint
  static constexpr bool kMonotonic = true;
  /// SSSP with unit weights: same declared shape.
  static constexpr AccessManifest kManifest{
      .in_edges = SlotAccess::kRead,
      .out_edges = SlotAccess::kReadWrite,
      .monotone = MonotoneClaim::kNonIncreasing,
      .bsp_convergent = true,
      .async_convergent = true,
  };
  /// Push direction (update_push): same slots — the edge datum is still
  /// "source's level" in both directions, which is what keeps a MIXED
  /// pull/push schedule exact — but the publish is an atomic-min accumulate,
  /// so the shape declares RMW. accumulate() schedules the other endpoint,
  /// so the task rule holds (unlike push_pagerank's silent drains).
  static constexpr AccessManifest kPushManifest{
      .in_edges = SlotAccess::kRead,
      .out_edges = SlotAccess::kReadWrite,
      .rmw = true,
      .monotone = MonotoneClaim::kNonIncreasing,
      .bsp_convergent = true,
      .async_convergent = true,
  };
  static constexpr std::uint32_t kUnreached = 0xffffffffu;

  explicit BfsProgram(VertexId source) : source_(source) {}

  [[nodiscard]] const char* name() const { return "bfs"; }

  void init(const Graph& g, EdgeDataArray<std::uint32_t>& edges) {
    levels_.assign(g.num_vertices(), kUnreached);
    levels_[source_] = 0;
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      const EdgeId base = g.out_edges_begin(v);
      const EdgeId deg = g.out_degree(v);
      for (EdgeId k = 0; k < deg; ++k) edges.set(base + k, levels_[v]);
    }
  }

  [[nodiscard]] std::vector<VertexId> initial_frontier(const Graph& g) const {
    std::vector<VertexId> seeds{source_};
    for (const VertexId u : g.out_neighbors(source_)) seeds.push_back(u);
    return seeds;
  }

  template <typename Ctx>
  void update(VertexId v, Ctx& ctx) {
    std::uint32_t lvl = levels_[v];
    for (const InEdge& ie : ctx.in_edges()) {
      const std::uint32_t src_lvl = ctx.read(ie.id);
      if (src_lvl != kUnreached) lvl = std::min(lvl, src_lvl + 1);
    }
    if (lvl >= levels_[v]) return;
    levels_[v] = lvl;

    const auto neighbors = ctx.out_neighbors();
    for (std::size_t k = 0; k < neighbors.size(); ++k) {
      const EdgeId eid = ctx.out_edge_id(k);
      if (ctx.read(eid) > lvl) ctx.write(eid, neighbors[k], lvl);
    }
  }

  /// Push entry point (engine/direction.hpp): absorb in-edge improvements as
  /// in pull — the edge datum invariant is direction-independent — then
  /// publish the improved level with an atomic-min fold instead of a plain
  /// conditional write. The fold commutes with concurrent folds, so the
  /// publish survives the WW races a mixed schedule can produce; the read
  /// guard only skips no-improvement publishes (and their redundant
  /// scheduling) — a stale guard read is benign because the fold is min.
  template <typename Ctx>
  void update_push(VertexId v, Ctx& ctx) {
    std::uint32_t lvl = levels_[v];
    for (const InEdge& ie : ctx.in_edges()) {
      const std::uint32_t src_lvl = ctx.read(ie.id);
      if (src_lvl != kUnreached) lvl = std::min(lvl, src_lvl + 1);
    }
    if (lvl >= levels_[v]) return;
    levels_[v] = lvl;

    const auto neighbors = ctx.out_neighbors();
    for (std::size_t k = 0; k < neighbors.size(); ++k) {
      const EdgeId eid = ctx.out_edge_id(k);
      if (ctx.read(eid) > lvl) {
        ctx.accumulate(eid, neighbors[k],
                       [lvl](std::uint32_t x) { return std::min(x, lvl); });
      }
    }
  }

  static double project(std::uint32_t lvl) { return lvl; }

  [[nodiscard]] const std::vector<std::uint32_t>& levels() const {
    return levels_;
  }

  [[nodiscard]] std::vector<double> values() const {
    return {levels_.begin(), levels_.end()};
  }

  [[nodiscard]] VertexId source() const { return source_; }

 private:
  VertexId source_;
  std::vector<std::uint32_t> levels_;
};

}  // namespace ndg
