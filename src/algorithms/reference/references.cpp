#include "algorithms/reference/references.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <queue>

#include "util/assert.hpp"

namespace ndg::ref {

std::vector<double> pagerank(const Graph& g, double damping, double tol,
                             std::size_t max_iter) {
  const VertexId n = g.num_vertices();
  std::vector<double> r(n, 1.0);
  std::vector<double> next(n);
  for (std::size_t it = 0; it < max_iter; ++it) {
    double max_delta = 0.0;
    for (VertexId v = 0; v < n; ++v) {
      double sum = 0.0;
      for (const InEdge& ie : g.in_edges(v)) {
        const double deg = static_cast<double>(g.out_degree(ie.src));
        sum += r[ie.src] / deg;  // deg >= 1: ie.src has at least this edge
      }
      next[v] = (1.0 - damping) + damping * sum;
      max_delta = std::max(max_delta, std::abs(next[v] - r[v]));
    }
    r.swap(next);
    if (max_delta < tol) break;
  }
  return r;
}

namespace {

class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  std::uint32_t find(std::uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];  // path halving
      x = parent_[x];
    }
    return x;
  }

  void unite(std::uint32_t a, std::uint32_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return;
    // Union by smaller root id, so every root is its component's minimum.
    if (a < b) {
      parent_[b] = a;
    } else {
      parent_[a] = b;
    }
  }

 private:
  std::vector<std::uint32_t> parent_;
};

}  // namespace

std::vector<std::uint32_t> wcc(const Graph& g) {
  UnionFind uf(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (const VertexId u : g.out_neighbors(v)) uf.unite(v, u);
  }
  std::vector<std::uint32_t> labels(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) labels[v] = uf.find(v);
  return labels;
}

std::vector<float> sssp(const Graph& g, VertexId source,
                        const std::vector<float>& weights) {
  NDG_ASSERT(weights.size() == g.num_edges());
  constexpr float kInf = std::numeric_limits<float>::infinity();
  std::vector<float> dist(g.num_vertices(), kInf);
  dist[source] = 0.0f;

  using Item = std::pair<float, VertexId>;  // (distance, vertex)
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  pq.emplace(0.0f, source);
  while (!pq.empty()) {
    const auto [d, v] = pq.top();
    pq.pop();
    if (d > dist[v]) continue;  // stale entry
    const EdgeId base = g.out_edges_begin(v);
    const auto neighbors = g.out_neighbors(v);
    for (std::size_t k = 0; k < neighbors.size(); ++k) {
      const float nd = d + weights[base + k];
      if (nd < dist[neighbors[k]]) {
        dist[neighbors[k]] = nd;
        pq.emplace(nd, neighbors[k]);
      }
    }
  }
  return dist;
}

std::vector<std::uint32_t> bfs(const Graph& g, VertexId source) {
  constexpr std::uint32_t kUnreached = 0xffffffffu;
  std::vector<std::uint32_t> level(g.num_vertices(), kUnreached);
  level[source] = 0;
  std::queue<VertexId> q;
  q.push(source);
  while (!q.empty()) {
    const VertexId v = q.front();
    q.pop();
    for (const VertexId u : g.out_neighbors(v)) {
      if (level[u] == kUnreached) {
        level[u] = level[v] + 1;
        q.push(u);
      }
    }
  }
  return level;
}

std::vector<std::uint32_t> kcore(const Graph& g) {
  const VertexId n = g.num_vertices();
  // Undirected multigraph adjacency (out ∪ in), matching KCoreProgram.
  std::vector<std::vector<VertexId>> adj(n);
  for (VertexId v = 0; v < n; ++v) {
    for (const VertexId u : g.out_neighbors(v)) {
      adj[v].push_back(u);
      adj[u].push_back(v);
    }
  }

  std::vector<std::uint32_t> degree(n);
  std::uint32_t max_degree = 0;
  for (VertexId v = 0; v < n; ++v) {
    degree[v] = static_cast<std::uint32_t>(adj[v].size());
    max_degree = std::max(max_degree, degree[v]);
  }

  // Bucket sort vertices by degree, then peel in nondecreasing order.
  std::vector<std::vector<VertexId>> buckets(max_degree + 1);
  for (VertexId v = 0; v < n; ++v) buckets[degree[v]].push_back(v);

  std::vector<std::uint32_t> core(n, 0);
  std::vector<bool> removed(n, false);
  std::uint32_t current = 0;
  for (std::uint32_t d = 0; d <= max_degree; ++d) {
    // Buckets can grow below d as neighbours are peeled; re-scan from d.
    for (std::size_t i = 0; i < buckets[d].size(); ++i) {
      const VertexId v = buckets[d][i];
      if (removed[v] || degree[v] != d) continue;
      current = std::max(current, d);
      core[v] = current;
      removed[v] = true;
      for (const VertexId u : adj[v]) {
        if (!removed[u] && degree[u] > d) {
          --degree[u];
          buckets[degree[u]].push_back(u);
        }
      }
    }
  }
  return core;
}

std::vector<double> spmv_fixed_point(const Graph& g, double omega, double tol,
                                     std::size_t max_iter) {
  const VertexId n = g.num_vertices();
  std::vector<double> x(n, 1.0);
  std::vector<double> next(n);
  for (std::size_t it = 0; it < max_iter; ++it) {
    double max_delta = 0.0;
    for (VertexId v = 0; v < n; ++v) {
      double sum = 0.0;
      for (const InEdge& ie : g.in_edges(v)) {
        sum += x[ie.src] / static_cast<double>(g.out_degree(ie.src));
      }
      next[v] = (1.0 - omega) + omega * sum;
      max_delta = std::max(max_delta, std::abs(next[v] - x[v]));
    }
    x.swap(next);
    if (max_delta < tol) break;
  }
  return x;
}

std::vector<bool> greedy_mis(const Graph& g) {
  const VertexId n = g.num_vertices();
  std::vector<bool> in_set(n, false);
  std::vector<bool> blocked(n, false);
  for (VertexId v = 0; v < n; ++v) {
    if (blocked[v]) continue;
    in_set[v] = true;
    for (const VertexId u : g.out_neighbors(v)) blocked[u] = true;
    for (const InEdge& ie : g.in_edges(v)) blocked[ie.src] = true;
  }
  return in_set;
}

std::vector<VertexId> greedy_matching(const Graph& g) {
  const VertexId n = g.num_vertices();
  std::vector<VertexId> match(n, kInvalidVertex);
  std::vector<VertexId> nbrs;
  for (VertexId v = 0; v < n; ++v) {
    if (match[v] != kInvalidVertex) continue;
    // Sorted-deduped undirected neighbourhood, so "smallest free neighbour"
    // is well-defined regardless of adjacency-array order (MatchingProgram
    // scans the same way).
    nbrs.clear();
    for (const VertexId u : g.out_neighbors(v)) nbrs.push_back(u);
    for (const InEdge& ie : g.in_edges(v)) nbrs.push_back(ie.src);
    std::sort(nbrs.begin(), nbrs.end());
    nbrs.erase(std::unique(nbrs.begin(), nbrs.end()), nbrs.end());
    for (const VertexId u : nbrs) {
      if (u == v) continue;
      if (match[u] == kInvalidVertex) {
        match[v] = u;
        match[u] = v;
        break;
      }
    }
  }
  return match;
}

std::vector<std::uint32_t> greedy_coloring(const Graph& g) {
  constexpr std::uint32_t kUncolored = 0xffffffffu;
  const VertexId n = g.num_vertices();
  std::vector<std::uint32_t> color(n, kUncolored);
  std::vector<std::uint32_t> taken;
  for (VertexId v = 0; v < n; ++v) {
    taken.clear();
    auto consider = [&](VertexId u) {
      if (u < v) taken.push_back(color[u]);
    };
    for (const VertexId u : g.out_neighbors(v)) consider(u);
    for (const InEdge& ie : g.in_edges(v)) consider(ie.src);
    std::sort(taken.begin(), taken.end());
    std::uint32_t mex = 0;
    for (const std::uint32_t c : taken) {
      if (c == mex) {
        ++mex;
      } else if (c > mex) {
        break;
      }
    }
    color[v] = mex;
  }
  return color;
}

}  // namespace ndg::ref
