#pragma once
// Textbook sequential implementations used as test oracles for the
// vertex-centric programs. They share nothing with the engines — independent
// code paths, so agreement is meaningful evidence.

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace ndg::ref {

/// Dense power iteration of r = (1-δ)·1 + δ·Aᵀ_norm·r to tolerance `tol`
/// (L∞ between successive iterates).
std::vector<double> pagerank(const Graph& g, double damping = 0.85,
                             double tol = 1e-9, std::size_t max_iter = 10000);

/// Weakly connected components via union-find; labels[v] = min vertex id in
/// v's component (matching WccProgram's fixed point).
std::vector<std::uint32_t> wcc(const Graph& g);

/// Dijkstra over canonical-edge-id weights; weights[e] must align with the
/// Graph's edge ids (use SsspProgram::edge_weight for parity).
std::vector<float> sssp(const Graph& g, VertexId source,
                        const std::vector<float>& weights);

/// BFS levels (0xffffffff for unreachable), following out-edges.
std::vector<std::uint32_t> bfs(const Graph& g, VertexId source);

/// Core numbers by Batagelj–Zaveršnik bucket peeling over the undirected
/// multigraph view (neighbourhood = out-neighbours ∪ in-neighbours, matching
/// KCoreProgram's adjacency).
std::vector<std::uint32_t> kcore(const Graph& g);

/// Lexicographically-first maximal independent set (greedy by ascending id
/// over the undirected view); result[v] is true iff v is in the set.
std::vector<bool> greedy_mis(const Graph& g);

/// Greedy maximal matching by ascending id: each free vertex matches its
/// smallest free neighbour (undirected view, self-loops skipped). result[v]
/// is the partner id or kInvalidVertex — the oracle MatchingProgram must
/// reproduce under the speculative engine.
std::vector<VertexId> greedy_matching(const Graph& g);

/// Greedy coloring by ascending id: color[v] = mex{color[u] : u ∈ N(v),
/// u < v} — the oracle GreedyColoringProgram must reproduce under the
/// speculative engine.
std::vector<std::uint32_t> greedy_coloring(const Graph& g);

/// Dense Richardson iteration x' = (1-omega) + omega·(Aᵀ_row-norm · x) from
/// x = 1 — the unique fixed point SpmvProgram approximates (contraction for
/// omega < 1).
std::vector<double> spmv_fixed_point(const Graph& g, double omega = 0.5,
                                     double tol = 1e-12,
                                     std::size_t max_iter = 100000);

}  // namespace ndg::ref
