#pragma once
// Weakly Connected Components by minimum-label propagation — the paper's
// write-write-conflict representative (Section IV, Fig. 2, and the GraphChi
// example the paper patched):
//
//   "The update function in this example first compares the label values of
//    its corresponding vertex and those of its incident edges, computes the
//    minimal label value, and then updates the label value of its
//    corresponding vertex and its incident edges to the minimal value."
//
// Both endpoints of an edge write it, so nondeterministic execution produces
// write-write conflicts; labels only ever decrease (monotonic), so Theorem 2
// guarantees convergence — corrupted edge labels are re-corrected in later
// iterations, and the final result is bit-identical to the deterministic run.

#include <algorithm>
#include <vector>

#include "analysis/access_manifest.hpp"
#include "dyn/mutation.hpp"
#include "engine/vertex_program.hpp"

namespace ndg {

class WccProgram {
 public:
  using EdgeData = std::uint32_t;  // component label carried by the edge
  static constexpr bool kMonotonic = true;
  /// Both endpoints read AND write every incident edge (Fig. 2), so
  /// write-write conflicts are possible and Theorem 1 is off the table; the
  /// non-increasing labels carry Theorem 2.
  static constexpr AccessManifest kManifest{
      .in_edges = SlotAccess::kReadWrite,
      .out_edges = SlotAccess::kReadWrite,
      .monotone = MonotoneClaim::kNonIncreasing,
      .bsp_convergent = true,
      .async_convergent = true,
  };
  /// Push direction (update_push): the same both-sides RW shape — WCC writes
  /// every incident edge in either direction — but published via atomic-min
  /// folds, hence .rmw. Still Theorem 2 (WW possible, labels non-increasing);
  /// the RMW publish just removes lost-update windows a mixed schedule would
  /// otherwise have to recover from over extra iterations.
  static constexpr AccessManifest kPushManifest{
      .in_edges = SlotAccess::kReadWrite,
      .out_edges = SlotAccess::kReadWrite,
      .rmw = true,
      .monotone = MonotoneClaim::kNonIncreasing,
      .bsp_convergent = true,
      .async_convergent = true,
  };
  /// Fig. 2: "the initial label value of the edge (v->u) is infinite".
  static constexpr std::uint32_t kInfiniteLabel = 0xffffffffu;

  [[nodiscard]] const char* name() const { return "wcc"; }

  template <typename GraphT>
  void init(const GraphT& g, EdgeDataArray<std::uint32_t>& edges) {
    labels_.resize(g.num_vertices());
    for (VertexId v = 0; v < g.num_vertices(); ++v) labels_[v] = v;
    edges.fill(kInfiniteLabel);
  }

  template <typename GraphT>
  [[nodiscard]] std::vector<VertexId> initial_frontier(const GraphT& g) const {
    std::vector<VertexId> all(g.num_vertices());
    for (VertexId v = 0; v < g.num_vertices(); ++v) all[v] = v;
    return all;
  }

  // --- Dynamic hooks (src/dyn/, docs/DYNAMIC.md) ---
  // Theorem 2 algorithm: labels only DECREASE. An insert can only merge
  // components (labels fall further — warm-safe); a delete can split one
  // (labels would need to RISE — cold). Weights are irrelevant to WCC, so
  // weight changes warm-start as no-ops.
  [[nodiscard]] bool dyn_warm_ok(const dyn::AppliedMutation& m) const {
    return m.kind != dyn::MutationKind::kDeleteEdge;
  }

  /// New edges start at the infinite label exactly as in Fig. 2 init; the
  /// endpoints re-run and propagate the smaller component label across.
  template <typename ViewT>
  void dyn_apply(const ViewT& g, EdgeDataArray<std::uint32_t>& edges,
                 const dyn::AppliedMutation& m, std::vector<VertexId>& seeds) {
    (void)g;
    if (m.kind == dyn::MutationKind::kInsertEdge) {
      edges.set(m.id, kInfiniteLabel);
      seeds.push_back(m.src);
      seeds.push_back(m.dst);
    } else if (m.kind == dyn::MutationKind::kDeleteEdge) {
      seeds.push_back(m.src);  // defensive: gate forces cold for deletes
      seeds.push_back(m.dst);
    }
  }

  /// Live (mid-recompute) vertex read for ndg_serve's --live-queries mode:
  /// min over v's own id and every incident edge label, each read
  /// individually atomic (Lemma 1). Never touches labels_ (plain state the
  /// engine threads write); labels_[v] starts at v and the scatter pushes
  /// every improvement onto v's incident edges, so at a quiescent point this
  /// min IS labels_[v]. Infinite (not-yet-written) edge labels are ignored
  /// the same way Fig. 2's init value is.
  template <typename ViewT, typename ReadFn>
  [[nodiscard]] double live_value(const ViewT& g, ReadFn&& read,
                                  VertexId v) const {
    std::uint32_t m = v;
    for (const InEdge& ie : g.in_edges(v)) m = std::min(m, read(ie.id));
    const EdgeId odeg = g.out_degree(v);
    for (EdgeId k = 0; k < odeg; ++k) {
      m = std::min(m, read(g.out_edge_id(v, k)));
    }
    return m;
  }

  template <typename Ctx>
  void update(VertexId v, Ctx& ctx) {
    // Gather: minimum over the vertex label and every incident edge label.
    std::uint32_t m = labels_[v];
    const auto in = ctx.in_edges();
    const auto out = ctx.out_neighbors();
    for (const InEdge& ie : in) m = std::min(m, ctx.read(ie.id));
    for (std::size_t k = 0; k < out.size(); ++k) {
      m = std::min(m, ctx.read(ctx.out_edge_id(k)));
    }

    labels_[v] = m;

    // Scatter: push the minimum to every incident edge that is still above
    // it (the "if e satisfies some criteria" predicate of Algorithm 1).
    for (const InEdge& ie : in) {
      if (ctx.read(ie.id) > m) ctx.write(ie.id, ie.src, m);
    }
    for (std::size_t k = 0; k < out.size(); ++k) {
      const EdgeId e = ctx.out_edge_id(k);
      if (ctx.read(e) > m) ctx.write(e, out[k], m);
    }
  }

  /// Push entry point (engine/direction.hpp): same gather-min over the
  /// vertex and incident edge labels, but the scatter folds the minimum in
  /// with atomic-min accumulates. Both endpoint sides still write (WCC's
  /// defining WW shape), but racing folds commute, so a mixed pull/push
  /// schedule loses no label improvements; Theorem 2 covers the rest.
  template <typename Ctx>
  void update_push(VertexId v, Ctx& ctx) {
    std::uint32_t m = labels_[v];
    const auto in = ctx.in_edges();
    const auto out = ctx.out_neighbors();
    for (const InEdge& ie : in) m = std::min(m, ctx.read(ie.id));
    for (std::size_t k = 0; k < out.size(); ++k) {
      m = std::min(m, ctx.read(ctx.out_edge_id(k)));
    }

    labels_[v] = m;

    const auto fold = [m](std::uint32_t x) { return std::min(x, m); };
    for (const InEdge& ie : in) {
      if (ctx.read(ie.id) > m) ctx.accumulate(ie.id, ie.src, fold);
    }
    for (std::size_t k = 0; k < out.size(); ++k) {
      const EdgeId e = ctx.out_edge_id(k);
      if (ctx.read(e) > m) ctx.accumulate(e, out[k], fold);
    }
  }

  static double project(std::uint32_t label) { return label; }

  /// labels()[v] converges to the minimum vertex id in v's weakly connected
  /// component.
  [[nodiscard]] const std::vector<std::uint32_t>& labels() const {
    return labels_;
  }

  [[nodiscard]] std::vector<double> values() const {
    return {labels_.begin(), labels_.end()};
  }

 private:
  std::vector<std::uint32_t> labels_;
};

}  // namespace ndg
