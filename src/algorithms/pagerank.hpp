#pragma once
// PageRank with local convergence — the paper's fixed-point-iteration
// representative (Section V-A):
//
//   "we implement the algorithm by the concept of local convergence ...
//    Each vertex stores an initial float type weight value of 1 and each edge
//    also stores a float type weight value, whose initial value is 1 divided
//    by the out-degree of the vertex. The update function will read in all
//    weight values of the incoming edges, add them to the weight value of its
//    corresponding vertex, and then divide the summation by the out-degree.
//    The weight values of the out-going edges are finally updated by the
//    quotient from the division."
//
// We use the standard damped recurrence r_v = (1-δ) + δ·Σ_in (as in
// GraphChi's shipped PageRank) so the fixed point exists on every topology.
// Under nondeterministic execution the update reads in-edges that neighbour
// updates are concurrently writing: read-write conflicts only, so Theorem 1
// applies. The algorithm is NOT monotonic — ranks oscillate toward the fixed
// point — so Theorem 2 does not.

#include <atomic>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "analysis/access_manifest.hpp"
#include "dyn/mutation.hpp"
#include "engine/vertex_program.hpp"
#include "perf/prefetch.hpp"

namespace ndg {

class PageRankProgram {
 public:
  using EdgeData = float;  // rank mass flowing along the edge
  static constexpr bool kMonotonic = false;
  /// Pull mode: gather reads own in-edges, scatter writes own out-edges —
  /// single writer per edge (its source), so conflicts are RW-only and the
  /// damped recurrence's BSP convergence gives Theorem 1.
  static constexpr AccessManifest kManifest{
      .in_edges = SlotAccess::kRead,
      .out_edges = SlotAccess::kWrite,
      .bsp_convergent = true,
      .async_convergent = true,
  };

  explicit PageRankProgram(float epsilon = 1e-3f, float damping = 0.85f)
      : epsilon_(epsilon), damping_(damping) {}

  [[nodiscard]] const char* name() const { return "pagerank"; }

  template <typename GraphT>
  void init(const GraphT& g, EdgeDataArray<float>& edges) {
    ranks_.assign(g.num_vertices(), 1.0f);
    deltas_.assign(g.num_vertices(), 1.0f);  // everyone starts "far" from fix
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      const EdgeId deg = g.out_degree(v);
      const float w = deg > 0 ? 1.0f / static_cast<float>(deg) : 0.0f;
      for (EdgeId k = 0; k < deg; ++k) edges.set(g.out_edge_id(v, k), w);
    }
  }

  template <typename GraphT>
  [[nodiscard]] std::vector<VertexId> initial_frontier(const GraphT& g) const {
    std::vector<VertexId> all(g.num_vertices());
    for (VertexId v = 0; v < g.num_vertices(); ++v) all[v] = v;
    return all;
  }

  // --- Dynamic hooks (src/dyn/, docs/DYNAMIC.md) ---
  // Theorem 1 algorithm: the damped recurrence contracts to its fixed point
  // from ANY starting state, so every mutation kind warm-starts.
  [[nodiscard]] bool dyn_warm_ok(const dyn::AppliedMutation&) const {
    return true;
  }

  /// A mutation at (u, v) changes u's out-degree, so the mass invariant
  /// "out-edge value == rank(u) / out_degree(u)" breaks on ALL of u's
  /// out-edges, not only the touched one — rewrite them all, then seed u,
  /// its out-neighbors (their gather sums changed) and the detached target
  /// of a delete (its sum lost a term without appearing in u's adjacency).
  template <typename ViewT>
  void dyn_apply(const ViewT& g, EdgeDataArray<float>& edges,
                 const dyn::AppliedMutation& m, std::vector<VertexId>& seeds) {
    const VertexId u = m.src;
    const auto nbrs = g.out_neighbors(u);
    const float w =
        nbrs.empty() ? 0.0f : ranks_[u] / static_cast<float>(nbrs.size());
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      edges.set(g.out_edge_id(u, k), w);
    }
    seeds.push_back(u);
    seeds.insert(seeds.end(), nbrs.begin(), nbrs.end());
    if (m.kind == dyn::MutationKind::kDeleteEdge) seeds.push_back(m.dst);
  }

  /// Live (mid-recompute) vertex read for ndg_serve's --live-queries mode:
  /// recompute the damped recurrence from the in-edge mass currently parked
  /// on the wire — exactly the gather an engine thread would perform, each
  /// edge read individually atomic (Lemma 1). Never touches ranks_ (plain
  /// state the engine threads write). At a quiescent point this agrees with
  /// values()[v] up to the local-convergence tolerance: a vertex stops
  /// scattering once its rank moves by less than epsilon.
  template <typename ViewT, typename ReadFn>
  [[nodiscard]] double live_value(const ViewT& g, ReadFn&& read,
                                  VertexId v) const {
    float sum = 0.0f;
    for (const InEdge& ie : g.in_edges(v)) sum += read(ie.id);
    return (1.0f - damping_) + damping_ * sum;
  }

  // Gather / Combine / Apply decomposition (perf/hub_gather.hpp): the gather
  // is a sum over in-edge reads, so it splits into edge chunks whose partial
  // sums recombine associatively. update() below routes through the same
  // pieces, so whole-vertex and edge-parallel execution run identical code.
  using GatherData = float;
  static GatherData gather_identity() { return 0.0f; }
  static GatherData combine(GatherData a, GatherData b) { return a + b; }

  template <typename Ctx>
  GatherData gather_edge(const InEdge& ie, Ctx& ctx) const {
    return ctx.read(ie.id);
  }

  template <typename Ctx>
  void apply(VertexId v, GatherData sum, Ctx& ctx) {
    const float new_rank = (1.0f - damping_) + damping_ * sum;  // Compute
    const float old_rank = ranks_[v];
    ranks_[v] = new_rank;
    // Residual for the priority schedule; atomic_ref because priority(v) is
    // read from other threads while this update runs.
    std::atomic_ref<float>(deltas_[v])
        .store(std::fabs(new_rank - old_rank), std::memory_order_relaxed);

    // Scatter under local convergence: propagate only while still moving by
    // at least ε; the targets are scheduled by ctx.write (Section II rule).
    if (std::fabs(new_rank - old_rank) >= epsilon_) {
      const auto neighbors = ctx.out_neighbors();
      if (!neighbors.empty()) {
        const float out_w = new_rank / static_cast<float>(neighbors.size());
        for (std::size_t k = 0; k < neighbors.size(); ++k) {
          ctx.write(ctx.out_edge_id(k), neighbors[k], out_w);
        }
      }
    }
  }

  template <typename Ctx>
  void update(VertexId v, Ctx& ctx) {
    float sum = gather_identity();
    const auto in = ctx.in_edges();
    for (std::size_t i = 0; i < in.size(); ++i) {  // Gather
      if (i + perf::kGatherPrefetchDistance < in.size()) {
        prefetch_edge(ctx, in[i + perf::kGatherPrefetchDistance].id);
      }
      sum = combine(sum, gather_edge(in[i], ctx));
    }
    apply(v, sum, ctx);
  }

  /// Scheduling priority for the bucket worklist: vertices whose rank is
  /// still moving the most go first (residual-driven, à la PrIter / Galois
  /// priority PageRank). Bucket = negated binary exponent of the residual,
  /// so residual ≥ 1 → 0, ~0.5 → 1, ... converged/zero → worst bucket.
  [[nodiscard]] std::uint64_t priority(VertexId v) const {
    const float r = std::atomic_ref<float>(const_cast<float&>(deltas_[v]))
                        .load(std::memory_order_relaxed);
    if (!(r > 0.0f)) return 64;  // fully converged (or NaN): schedule last
    if (r >= 1.0f) return 0;
    const int bucket = -std::ilogb(r);
    return static_cast<std::uint64_t>(bucket > 64 ? 64 : bucket);
  }

  static double project(float w) { return w; }

  [[nodiscard]] const std::vector<float>& ranks() const { return ranks_; }

  /// Result vector for the difference-degree experiments (Tables II & III).
  [[nodiscard]] std::vector<double> values() const {
    return {ranks_.begin(), ranks_.end()};
  }

  [[nodiscard]] float epsilon() const { return epsilon_; }

 private:
  float epsilon_;
  float damping_;
  std::vector<float> ranks_;
  std::vector<float> deltas_;  // |last rank change|, feeds priority()
};

}  // namespace ndg
