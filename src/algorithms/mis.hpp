#pragma once
// Maximal Independent Set — the lexicographically-first MIS via asynchronous
// state propagation. Vertex states move monotonically from UNKNOWN to IN or
// OUT: a vertex enters the set once every smaller-id neighbour is OUT, and
// leaves once any smaller-id neighbour is IN. The fixed point equals the
// sequential greedy-by-id MIS — a *deterministic* result computed by a
// nondeterministic execution, which makes it a sharp correctness probe: any
// lost or mis-ordered propagation changes the output set.
//
// States travel in dual-slot edges (each endpoint owns one half), so like
// k-core this algorithm exhibits write-write conflicts with Fig. 2-style
// recovery, and is monotone (states never revert) — Theorem 2 territory.
// Independence is with respect to the underlying undirected graph
// (neighbourhood = in-edges ∪ out-edges).

#include <vector>

#include "algorithms/dual_edge.hpp"
#include "analysis/access_manifest.hpp"
#include "engine/vertex_program.hpp"

namespace ndg {

class MisProgram {
 public:
  using EdgeData = DualEdge;
  static constexpr bool kMonotonic = true;
  /// Also a cautious operator (engine/speculative.hpp): the decision logic
  /// reads every smaller neighbour before any publication write, so it splits
  /// cleanly into plan (decide) / commit (publish). MIS is the family's
  /// bridge case — eligible for async execution by Theorem 2 AND servable by
  /// the rollback engine, where its result is the same greedy-by-id set.
  static constexpr bool kCautious = true;
  /// Dual-slot edges as in k-core (WW possible); states only move
  /// kUnknown -> {kIn, kOut}, so the projected sum is non-decreasing —
  /// Theorem 2.
  static constexpr AccessManifest kManifest{
      .in_edges = SlotAccess::kReadWrite,
      .out_edges = SlotAccess::kReadWrite,
      .monotone = MonotoneClaim::kNonDecreasing,
      .bsp_convergent = true,
      .async_convergent = true,
  };

  enum State : std::uint32_t { kUnknown = 0, kIn = 1, kOut = 2 };

  [[nodiscard]] const char* name() const { return "mis"; }

  void init(const Graph& g, EdgeDataArray<DualEdge>& edges) {
    state_.assign(g.num_vertices(), kUnknown);
    edges.fill(DualEdge{kUnknown, kUnknown});
  }

  [[nodiscard]] std::vector<VertexId> initial_frontier(const Graph& g) const {
    std::vector<VertexId> all(g.num_vertices());
    for (VertexId v = 0; v < g.num_vertices(); ++v) all[v] = v;
    return all;
  }

  template <typename Ctx>
  void update(VertexId v, Ctx& ctx) {
    const auto in = ctx.in_edges();
    const auto out = ctx.out_neighbors();

    if (state_[v] == kUnknown) {
      // Decide from the smaller-id neighbours' published states.
      bool all_smaller_out = true;
      bool some_smaller_in = false;
      auto consider = [&](VertexId u, std::uint32_t peer_state) {
        if (u >= v) return;
        if (peer_state == kIn) some_smaller_in = true;
        if (peer_state != kOut) all_smaller_out = false;
      };
      for (const InEdge& ie : in) {
        consider(ie.src, peer_half(ctx.read(ie.id), /*is_source=*/false));
      }
      for (std::size_t k = 0; k < out.size(); ++k) {
        consider(out[k],
                 peer_half(ctx.read(ctx.out_edge_id(k)), /*is_source=*/true));
      }
      if (some_smaller_in) {
        state_[v] = kOut;
      } else if (all_smaller_out) {
        state_[v] = kIn;
      }
      // else: stay kUnknown; a deciding neighbour's write will wake us.
    }

    // Publish/repair our half wherever the edge disagrees with our state
    // (covers first publication, progress, and racy-RMW corruption).
    const std::uint32_t s = state_[v];
    if (s == kUnknown) return;
    for (const InEdge& ie : in) {
      const DualEdge cur = ctx.read(ie.id);
      if (own_half(cur, false) != s) {
        ctx.write(ie.id, ie.src, with_own_half(cur, false, s));
      }
    }
    for (std::size_t k = 0; k < out.size(); ++k) {
      const EdgeId eid = ctx.out_edge_id(k);
      const DualEdge cur = ctx.read(eid);
      if (own_half(cur, true) != s) {
        ctx.write(eid, out[k], with_own_half(cur, true, s));
      }
    }
  }

  struct LocalState {
    std::uint32_t next;  // kUnknown = no decision (and nothing to publish)
  };

  /// Cautious twin of update(): the same smaller-neighbour decision, reads
  /// only, with every publication declared as a write intent.
  template <typename PlanCtx>
  void plan(VertexId v, PlanCtx& ctx, LocalState& ls) {
    const auto in = ctx.in_edges();
    const auto out = ctx.out_neighbors();

    ls.next = state_[v];
    if (ls.next == kUnknown) {
      bool all_smaller_out = true;
      bool some_smaller_in = false;
      auto consider = [&](VertexId u, std::uint32_t peer_state) {
        if (u >= v) return;
        if (peer_state == kIn) some_smaller_in = true;
        if (peer_state != kOut) all_smaller_out = false;
      };
      for (const InEdge& ie : in) {
        consider(ie.src, peer_half(ctx.read(ie.id, ie.src), false));
      }
      for (std::size_t k = 0; k < out.size(); ++k) {
        consider(out[k], peer_half(ctx.read(ctx.out_edge_id(k), out[k]),
                                   /*is_source=*/true));
      }
      if (some_smaller_in) {
        ls.next = kOut;
      } else if (all_smaller_out) {
        ls.next = kIn;
      }
      // else: stay kUnknown; a deciding neighbour's commit write wakes us.
    }
    if (ls.next == kUnknown) return;

    bool stale = false;
    for (const InEdge& ie : in) {
      if (own_half(ctx.read(ie.id, ie.src), false) != ls.next) {
        stale = true;
        ctx.will_write(ie.id, ie.src);
      }
    }
    for (std::size_t k = 0; k < out.size(); ++k) {
      if (own_half(ctx.read(ctx.out_edge_id(k), out[k]), true) != ls.next) {
        stale = true;
        ctx.will_write(ctx.out_edge_id(k), out[k]);
      }
    }
    // A re-woken, already-published vertex is a true no-op: declaring no
    // writes lets it commit without dirtying anyone (a spurious self-write
    // here cascades aborts through every neighbour that read us).
    if (ls.next == state_[v] && !stale) {
      ls.next = kUnknown;
      return;
    }
    ctx.will_write_vertex(v);
  }

  template <typename CommitCtx>
  void commit(VertexId v, CommitCtx& ctx, const LocalState& ls) {
    if (ls.next == kUnknown) return;
    state_[v] = ls.next;
    const auto in = ctx.in_edges();
    const auto out = ctx.out_neighbors();
    for (const InEdge& ie : in) {
      const DualEdge cur = ctx.read(ie.id);
      if (own_half(cur, false) != ls.next) {
        ctx.write(ie.id, ie.src, with_own_half(cur, false, ls.next));
      }
    }
    for (std::size_t k = 0; k < out.size(); ++k) {
      const EdgeId eid = ctx.out_edge_id(k);
      const DualEdge cur = ctx.read(eid);
      if (own_half(cur, true) != ls.next) {
        ctx.write(eid, out[k], with_own_half(cur, true, ls.next));
      }
    }
  }

  static double project(DualEdge e) {
    return static_cast<double>(e.src_half) + static_cast<double>(e.dst_half);
  }

  [[nodiscard]] const std::vector<std::uint32_t>& states() const {
    return state_;
  }

  [[nodiscard]] std::vector<VertexId> independent_set() const {
    std::vector<VertexId> set;
    for (VertexId v = 0; v < state_.size(); ++v) {
      if (state_[v] == kIn) set.push_back(v);
    }
    return set;
  }

  [[nodiscard]] std::vector<double> values() const {
    return {state_.begin(), state_.end()};
  }

 private:
  std::vector<std::uint32_t> state_;
};

}  // namespace ndg
