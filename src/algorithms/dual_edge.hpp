#pragma once
// Dual-slot edge datum: both endpoints of an edge publish a value to the
// SAME 8-byte edge word — the source endpoint owns the low half, the target
// the high half. Writing "my half" is a read-modify-write of the whole word,
// so under nondeterministic execution the two owners race and one can
// resurrect a stale copy of the other's half: a write-write conflict with
// exactly the corrupt-then-recover dynamics of the paper's Fig. 2. Programs
// using DualEdge must therefore follow the WCC discipline — rewrite your
// half whenever the edge disagrees with your state — to stay inside
// Theorem 2's recovery argument (k-core and MIS below do).

#include <cstdint>

#include "atomics/edge_data.hpp"

namespace ndg {

struct DualEdge {
  std::uint32_t src_half;
  std::uint32_t dst_half;
};
static_assert(sizeof(DualEdge) == 8);
static_assert(EdgePod<DualEdge>);

/// The half of `e` owned by this endpoint (is_source selects src_half).
inline std::uint32_t own_half(DualEdge e, bool is_source) {
  return is_source ? e.src_half : e.dst_half;
}

/// The other endpoint's half.
inline std::uint32_t peer_half(DualEdge e, bool is_source) {
  return is_source ? e.dst_half : e.src_half;
}

/// Returns `e` with this endpoint's half replaced by v.
inline DualEdge with_own_half(DualEdge e, bool is_source, std::uint32_t v) {
  if (is_source) {
    e.src_half = v;
  } else {
    e.dst_half = v;
  }
  return e;
}

}  // namespace ndg
