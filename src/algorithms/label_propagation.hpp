#pragma once
// Community detection by (asynchronous) label propagation — an extension
// algorithm whose eligibility is GRAPH-DEPENDENT, demonstrating that the
// paper's sufficient conditions are properties of an (algorithm, input)
// pair, not of code alone:
//
//   * conflicts are read–write only (pull mode: each edge is written by its
//     source endpoint's update exclusively), and
//   * on most graphs synchronous execution converges => Theorem 1 applies;
//   * but on bipartite-ish structures synchronous label propagation
//     oscillates (the classic LPA two-coloring flip-flop), the Theorem 1
//     premise fails, and — since label frequencies are not monotonic —
//     neither theorem licenses nondeterministic execution.
//
// The update adopts the most frequent label among in-neighbours, with ties
// broken toward the current label and then the smallest label (both choices
// reduce flip-flopping).

#include <algorithm>
#include <vector>

#include "analysis/access_manifest.hpp"
#include "engine/vertex_program.hpp"

namespace ndg {

class LabelPropagationProgram {
 public:
  using EdgeData = std::uint32_t;  // label of the edge's source endpoint
  static constexpr bool kMonotonic = false;
  /// Pull mode, single writer per edge — RW-only — but convergence is
  /// INPUT-DEPENDENT (bipartite-ish graphs oscillate under BSP), so the
  /// Theorem 1 verdict is conditional on the measured premise: the static
  /// pass can prove the conflict class, never the convergence.
  static constexpr AccessManifest kManifest{
      .in_edges = SlotAccess::kRead,
      .out_edges = SlotAccess::kWrite,
      .bsp_convergent = true,
      .async_convergent = true,
      .input_dependent_convergence = true,
  };

  [[nodiscard]] const char* name() const { return "label-propagation"; }

  void init(const Graph& g, EdgeDataArray<std::uint32_t>& edges) {
    labels_.resize(g.num_vertices());
    for (VertexId v = 0; v < g.num_vertices(); ++v) labels_[v] = v;
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      const EdgeId base = g.out_edges_begin(v);
      const EdgeId deg = g.out_degree(v);
      for (EdgeId k = 0; k < deg; ++k) edges.set(base + k, labels_[v]);
    }
  }

  [[nodiscard]] std::vector<VertexId> initial_frontier(const Graph& g) const {
    std::vector<VertexId> all(g.num_vertices());
    for (VertexId v = 0; v < g.num_vertices(); ++v) all[v] = v;
    return all;
  }

  template <typename Ctx>
  void update(VertexId v, Ctx& ctx) {
    const auto in = ctx.in_edges();
    if (in.empty()) return;

    // Gather: histogram of in-neighbour labels. The scratch buffer must be
    // per-thread: updates run concurrently under the nondeterministic
    // engines, and only vertex-owned state may be shared-written.
    static thread_local std::vector<std::uint32_t> scratch;
    scratch.clear();
    for (const InEdge& ie : in) scratch.push_back(ctx.read(ie.id));
    std::sort(scratch.begin(), scratch.end());

    std::uint32_t best_label = labels_[v];
    std::size_t best_count = 0;
    for (std::size_t i = 0; i < scratch.size();) {
      std::size_t j = i;
      while (j < scratch.size() && scratch[j] == scratch[i]) ++j;
      const std::size_t count = j - i;
      const bool wins =
          count > best_count ||
          (count == best_count &&
           (scratch[i] == labels_[v] ||
            (best_label != labels_[v] && scratch[i] < best_label)));
      if (wins) {
        best_label = scratch[i];
        best_count = count;
      }
      i = j;
    }

    if (best_label == labels_[v]) return;
    labels_[v] = best_label;

    const auto neighbors = ctx.out_neighbors();
    for (std::size_t k = 0; k < neighbors.size(); ++k) {
      ctx.write(ctx.out_edge_id(k), neighbors[k], best_label);
    }
  }

  static double project(std::uint32_t label) { return label; }

  [[nodiscard]] const std::vector<std::uint32_t>& labels() const {
    return labels_;
  }

  [[nodiscard]] std::vector<double> values() const {
    return {labels_.begin(), labels_.end()};
  }

 private:
  std::vector<std::uint32_t> labels_;
};

}  // namespace ndg
