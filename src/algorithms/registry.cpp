#include "algorithms/registry.hpp"

#include "algorithms/bfs.hpp"
#include "algorithms/kcore.hpp"
#include "algorithms/label_propagation.hpp"
#include "algorithms/mis.hpp"
#include "algorithms/pagerank.hpp"
#include "algorithms/push_pagerank.hpp"
#include "algorithms/push_pagerank_atomic.hpp"
#include "algorithms/spmv.hpp"
#include "algorithms/sssp.hpp"
#include "algorithms/wcc.hpp"

namespace ndg {

std::vector<AlgorithmEntry> algorithm_registry(VertexId source,
                                               std::size_t max_iterations) {
  std::vector<AlgorithmEntry> entries;

  entries.push_back({"pagerank", [max_iterations](const Graph& g) {
                       PageRankProgram prog;
                       return analyze_eligibility(g, prog, max_iterations);
                     }});
  entries.push_back({"spmv", [max_iterations](const Graph& g) {
                       SpmvProgram prog;
                       return analyze_eligibility(g, prog, max_iterations);
                     }});
  entries.push_back({"wcc", [max_iterations](const Graph& g) {
                       WccProgram prog;
                       return analyze_eligibility(g, prog, max_iterations);
                     }});
  entries.push_back({"sssp", [source, max_iterations](const Graph& g) {
                       SsspProgram prog(source);
                       return analyze_eligibility(g, prog, max_iterations);
                     }});
  entries.push_back({"bfs", [source, max_iterations](const Graph& g) {
                       BfsProgram prog(source);
                       return analyze_eligibility(g, prog, max_iterations);
                     }});
  entries.push_back({"pagerank-push", [max_iterations](const Graph& g) {
                       PushPageRankProgram prog;
                       return analyze_eligibility(g, prog, max_iterations);
                     }});
  entries.push_back({"pagerank-push-atomic", [max_iterations](const Graph& g) {
                       AtomicPushPageRankProgram prog;
                       return analyze_eligibility(g, prog, max_iterations);
                     }});
  entries.push_back({"label-propagation", [max_iterations](const Graph& g) {
                       LabelPropagationProgram prog;
                       return analyze_eligibility(g, prog, max_iterations);
                     }});
  entries.push_back({"kcore", [max_iterations](const Graph& g) {
                       KCoreProgram prog;
                       return analyze_eligibility(g, prog, max_iterations);
                     }});
  entries.push_back({"mis", [max_iterations](const Graph& g) {
                       MisProgram prog;
                       return analyze_eligibility(g, prog, max_iterations);
                     }});

  return entries;
}

}  // namespace ndg
