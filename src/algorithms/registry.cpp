#include "algorithms/registry.hpp"

#include "algorithms/bfs.hpp"
#include "algorithms/greedy_coloring.hpp"
#include "algorithms/kcore.hpp"
#include "algorithms/label_propagation.hpp"
#include "algorithms/matching.hpp"
#include "algorithms/mis.hpp"
#include "algorithms/pagerank.hpp"
#include "algorithms/push_pagerank.hpp"
#include "algorithms/push_pagerank_atomic.hpp"
#include "algorithms/reference/references.hpp"
#include "algorithms/spmv.hpp"
#include "algorithms/sssp.hpp"
#include "algorithms/wcc.hpp"
#include "analysis/direction_eligibility.hpp"
#include "analysis/static_eligibility.hpp"
#include "analysis/validate.hpp"
#include "delay/delayed_engine.hpp"
#include "engine/direction.hpp"
#include "engine/nondeterministic.hpp"
#include "engine/simulator.hpp"
#include "engine/speculative.hpp"

namespace ndg {

namespace {

/// Builds both closures of an entry from the program's constructor args (the
/// args are captured by value, so every invocation starts a fresh program).
/// Every registered program must carry an AccessManifest: the static half of
/// the analysis (and ndg_lint's missing-manifest rule) covers the whole
/// registry by construction.
template <typename Program, typename... Args>
  requires ManifestedProgram<Program>
AlgorithmEntry make_entry(std::string name, std::size_t max_iterations,
                          Args... ctor_args) {
  AlgorithmEntry entry;
  entry.name = std::move(name);
  entry.analyze = [max_iterations, ctor_args...](const Graph& g) {
    Program prog(ctor_args...);
    return analyze_eligibility(g, prog, max_iterations);
  };
  entry.run_ne = [ctor_args...](const Graph& g, const EngineOptions& opts) {
    Program prog(ctor_args...);
    EdgeDataArray<typename Program::EdgeData> edges(g.num_edges());
    prog.init(g, edges);
    return run_nondeterministic(g, prog, edges, opts);
  };
  entry.run_delayed = [ctor_args...](const Graph& g,
                                     const EngineOptions& opts) {
    Program prog(ctor_args...);
    EdgeDataArray<typename Program::EdgeData> edges(g.num_edges());
    prog.init(g, edges);
    return delay::run_delayed(g, prog, edges, opts);
  };
  entry.run_delayed_async = [ctor_args...](const Graph& g,
                                           const EngineOptions& opts) {
    Program prog(ctor_args...);
    EdgeDataArray<typename Program::EdgeData> edges(g.num_edges());
    prog.init(g, edges);
    return delay::run_delayed_async(g, prog, edges, opts);
  };
  entry.run_sim = [ctor_args...](const Graph& g, const SimOptions& opts) {
    Program prog(ctor_args...);
    EdgeDataArray<typename Program::EdgeData> edges(g.num_edges());
    prog.init(g, edges);
    return run_simulated(g, prog, edges, opts);
  };
  entry.manifest = Program::kManifest;
  entry.static_verdict = StaticEligibility<Program>::kVerdict;
  entry.static_conditional = StaticEligibility<Program>::kConditional;
  entry.validate = [max_iterations, ctor_args...](const Graph& g) {
    Program prog(ctor_args...);
    return validate_manifest(g, prog, max_iterations);
  };
  using DirElig = StaticDirectionEligibility<Program>;
  entry.directional = DirElig::kManifest;
  entry.dir_pull_verdict = DirElig::kPullVerdict;
  entry.dir_push_verdict = DirElig::kPushVerdict;
  entry.dir_switchable = DirElig::kSwitchable;
  entry.dir_reason = switchability_refusal_reason(DirElig::kManifest);
  entry.run_directed = [ctor_args...](const Graph& g,
                                      const EngineOptions& opts) {
    Program prog(ctor_args...);
    EdgeDataArray<typename Program::EdgeData> edges(g.num_edges());
    prog.init(g, edges);
    return run_direction_optimizing(g, prog, edges, opts);
  };
  if constexpr (PushCapableProgram<Program>) {
    entry.validate_push = [max_iterations, ctor_args...](const Graph& g) {
      Program prog(ctor_args...);
      return validate_manifest_push(g, prog, max_iterations);
    };
  }
  if constexpr (CautiousProgram<Program>) {
    entry.run_speculative = [ctor_args...](const Graph& g,
                                           const EngineOptions& opts) {
      Program prog(ctor_args...);
      EdgeDataArray<typename Program::EdgeData> edges(g.num_edges());
      prog.init(g, edges);
      return run_speculative(g, prog, edges, opts);
    };
  }
  return entry;
}

/// Entry for the speculative-only family: the static-analysis surface plus
/// the speculative closures, everything else null (the program has no
/// update(), so the NE-era closures cannot even instantiate). `verify`
/// compares the finished program against its sequential oracle.
template <typename Program, typename Verify>
  requires CautiousProgram<Program>
AlgorithmEntry make_speculative_entry(std::string name, Verify verify) {
  AlgorithmEntry entry;
  entry.name = std::move(name);
  entry.manifest = Program::kManifest;
  entry.static_verdict = StaticEligibility<Program>::kVerdict;
  entry.static_conditional = StaticEligibility<Program>::kConditional;
  entry.speculative_only = true;
  entry.run_speculative = [](const Graph& g, const EngineOptions& opts) {
    Program prog;
    EdgeDataArray<typename Program::EdgeData> edges(g.num_edges());
    prog.init(g, edges);
    return run_speculative(g, prog, edges, opts);
  };
  entry.verify_speculative = [verify](const Graph& g,
                                      const EngineOptions& opts) {
    Program prog;
    EdgeDataArray<typename Program::EdgeData> edges(g.num_edges());
    prog.init(g, edges);
    const EngineResult r = run_speculative(g, prog, edges, opts);
    return r.converged && verify(g, prog);
  };
  return entry;
}

}  // namespace

std::vector<AlgorithmEntry> algorithm_registry(VertexId source,
                                               std::size_t max_iterations) {
  std::vector<AlgorithmEntry> entries;
  entries.push_back(make_entry<PageRankProgram>("pagerank", max_iterations));
  entries.push_back(make_entry<SpmvProgram>("spmv", max_iterations));
  entries.push_back(make_entry<WccProgram>("wcc", max_iterations));
  entries.push_back(make_entry<SsspProgram>("sssp", max_iterations, source));
  entries.push_back(make_entry<BfsProgram>("bfs", max_iterations, source));
  entries.push_back(
      make_entry<PushPageRankProgram>("pagerank-push", max_iterations));
  entries.push_back(make_entry<AtomicPushPageRankProgram>(
      "pagerank-push-atomic", max_iterations));
  entries.push_back(make_entry<LabelPropagationProgram>("label-propagation",
                                                        max_iterations));
  entries.push_back(make_entry<KCoreProgram>("kcore", max_iterations));
  entries.push_back(make_entry<MisProgram>("mis", max_iterations));
  return entries;
}

std::vector<AlgorithmEntry> speculative_registry() {
  std::vector<AlgorithmEntry> entries;
  entries.push_back(make_speculative_entry<MatchingProgram>(
      "matching", [](const Graph& g, const MatchingProgram& p) {
        return p.match() == ref::greedy_matching(g);
      }));
  entries.push_back(make_speculative_entry<GreedyColoringProgram>(
      "coloring", [](const Graph& g, const GreedyColoringProgram& p) {
        return p.colors() == ref::greedy_coloring(g);
      }));
  // MIS is not speculative_only — it also lives in algorithm_registry() with
  // the full NE surface (Theorem 2). Here it is the control row: eligible
  // AND servable, same greedy-by-id result either way.
  AlgorithmEntry mis = make_speculative_entry<MisProgram>(
      "mis", [](const Graph& g, const MisProgram& p) {
        const std::vector<bool> oracle = ref::greedy_mis(g);
        for (VertexId v = 0; v < g.num_vertices(); ++v) {
          if ((p.states()[v] == MisProgram::kIn) != oracle[v]) return false;
        }
        return true;
      });
  mis.speculative_only = false;
  entries.push_back(std::move(mis));
  return entries;
}

}  // namespace ndg
