#include "algorithms/registry.hpp"

#include "algorithms/bfs.hpp"
#include "algorithms/kcore.hpp"
#include "algorithms/label_propagation.hpp"
#include "algorithms/mis.hpp"
#include "algorithms/pagerank.hpp"
#include "algorithms/push_pagerank.hpp"
#include "algorithms/push_pagerank_atomic.hpp"
#include "algorithms/spmv.hpp"
#include "algorithms/sssp.hpp"
#include "algorithms/wcc.hpp"
#include "analysis/direction_eligibility.hpp"
#include "analysis/static_eligibility.hpp"
#include "analysis/validate.hpp"
#include "delay/delayed_engine.hpp"
#include "engine/direction.hpp"
#include "engine/nondeterministic.hpp"
#include "engine/simulator.hpp"

namespace ndg {

namespace {

/// Builds both closures of an entry from the program's constructor args (the
/// args are captured by value, so every invocation starts a fresh program).
/// Every registered program must carry an AccessManifest: the static half of
/// the analysis (and ndg_lint's missing-manifest rule) covers the whole
/// registry by construction.
template <typename Program, typename... Args>
  requires ManifestedProgram<Program>
AlgorithmEntry make_entry(std::string name, std::size_t max_iterations,
                          Args... ctor_args) {
  AlgorithmEntry entry;
  entry.name = std::move(name);
  entry.analyze = [max_iterations, ctor_args...](const Graph& g) {
    Program prog(ctor_args...);
    return analyze_eligibility(g, prog, max_iterations);
  };
  entry.run_ne = [ctor_args...](const Graph& g, const EngineOptions& opts) {
    Program prog(ctor_args...);
    EdgeDataArray<typename Program::EdgeData> edges(g.num_edges());
    prog.init(g, edges);
    return run_nondeterministic(g, prog, edges, opts);
  };
  entry.run_delayed = [ctor_args...](const Graph& g,
                                     const EngineOptions& opts) {
    Program prog(ctor_args...);
    EdgeDataArray<typename Program::EdgeData> edges(g.num_edges());
    prog.init(g, edges);
    return delay::run_delayed(g, prog, edges, opts);
  };
  entry.run_delayed_async = [ctor_args...](const Graph& g,
                                           const EngineOptions& opts) {
    Program prog(ctor_args...);
    EdgeDataArray<typename Program::EdgeData> edges(g.num_edges());
    prog.init(g, edges);
    return delay::run_delayed_async(g, prog, edges, opts);
  };
  entry.run_sim = [ctor_args...](const Graph& g, const SimOptions& opts) {
    Program prog(ctor_args...);
    EdgeDataArray<typename Program::EdgeData> edges(g.num_edges());
    prog.init(g, edges);
    return run_simulated(g, prog, edges, opts);
  };
  entry.manifest = Program::kManifest;
  entry.static_verdict = StaticEligibility<Program>::kVerdict;
  entry.static_conditional = StaticEligibility<Program>::kConditional;
  entry.validate = [max_iterations, ctor_args...](const Graph& g) {
    Program prog(ctor_args...);
    return validate_manifest(g, prog, max_iterations);
  };
  using DirElig = StaticDirectionEligibility<Program>;
  entry.directional = DirElig::kManifest;
  entry.dir_pull_verdict = DirElig::kPullVerdict;
  entry.dir_push_verdict = DirElig::kPushVerdict;
  entry.dir_switchable = DirElig::kSwitchable;
  entry.dir_reason = switchability_refusal_reason(DirElig::kManifest);
  entry.run_directed = [ctor_args...](const Graph& g,
                                      const EngineOptions& opts) {
    Program prog(ctor_args...);
    EdgeDataArray<typename Program::EdgeData> edges(g.num_edges());
    prog.init(g, edges);
    return run_direction_optimizing(g, prog, edges, opts);
  };
  if constexpr (PushCapableProgram<Program>) {
    entry.validate_push = [max_iterations, ctor_args...](const Graph& g) {
      Program prog(ctor_args...);
      return validate_manifest_push(g, prog, max_iterations);
    };
  }
  return entry;
}

}  // namespace

std::vector<AlgorithmEntry> algorithm_registry(VertexId source,
                                               std::size_t max_iterations) {
  std::vector<AlgorithmEntry> entries;
  entries.push_back(make_entry<PageRankProgram>("pagerank", max_iterations));
  entries.push_back(make_entry<SpmvProgram>("spmv", max_iterations));
  entries.push_back(make_entry<WccProgram>("wcc", max_iterations));
  entries.push_back(make_entry<SsspProgram>("sssp", max_iterations, source));
  entries.push_back(make_entry<BfsProgram>("bfs", max_iterations, source));
  entries.push_back(
      make_entry<PushPageRankProgram>("pagerank-push", max_iterations));
  entries.push_back(make_entry<AtomicPushPageRankProgram>(
      "pagerank-push-atomic", max_iterations));
  entries.push_back(make_entry<LabelPropagationProgram>("label-propagation",
                                                        max_iterations));
  entries.push_back(make_entry<KCoreProgram>("kcore", max_iterations));
  entries.push_back(make_entry<MisProgram>("mis", max_iterations));
  return entries;
}

}  // namespace ndg
