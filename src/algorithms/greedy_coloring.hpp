#pragma once
// Greedy vertex coloring by ascending id — the second member of the
// mutual-exclusion family excluded by the paper's theorems. A vertex takes
// the smallest color absent among its already-colored smaller-id neighbours
// (the "mex"); under nondeterministic execution two adjacent vertices can
// decide concurrently from stale published colors and pick the same one, and
// nothing in the per-edge dynamics repairs that — the conflict is on the
// *joint* choice, not a monotone scalar. The manifest declares dual-slot
// read-write edges (WW possible), no monotone claim and no convergence
// claims, so StaticEligibility refuses it for both NE and async
// (static_assert below; tests/compile_fail pins the refusal).
//
// Like MatchingProgram it ships without update(): only the speculative
// engine's commit-in-id-order rule may run it, and the parallel result then
// equals ref::greedy_coloring — color[v] = mex{color[u] : u ∈ N(v), u < v} —
// exactly, at any thread count.
//
// Colors travel in dual-slot edges (own half = own color) and every commit
// write follows the Section II task rule, so a waiting vertex (some smaller
// neighbour still uncolored) is woken by exactly that neighbour's deciding
// write.

#include <algorithm>
#include <vector>

#include "algorithms/dual_edge.hpp"
#include "analysis/access_manifest.hpp"
#include "analysis/static_eligibility.hpp"
#include "engine/vertex_program.hpp"

namespace ndg {

class GreedyColoringProgram {
 public:
  using EdgeData = DualEdge;
  static constexpr bool kMonotonic = false;
  static constexpr bool kCautious = true;
  static constexpr std::uint32_t kUncolored = 0xffffffffu;

  /// Dual-slot RW edges => WW possible; the joint color choice has no
  /// monotone projection and no NE/async convergence claim, so both
  /// theorems' premises fail: kNotProven, by design.
  static constexpr AccessManifest kManifest{
      .in_edges = SlotAccess::kReadWrite,
      .out_edges = SlotAccess::kReadWrite,
  };

  struct LocalState {
    std::uint32_t color;  // kUncolored = no decision this round
  };

  [[nodiscard]] const char* name() const { return "coloring"; }

  void init(const Graph& g, EdgeDataArray<DualEdge>& edges) {
    color_.assign(g.num_vertices(), kUncolored);
    edges.fill(DualEdge{kUncolored, kUncolored});
  }

  [[nodiscard]] std::vector<VertexId> initial_frontier(const Graph& g) const {
    std::vector<VertexId> all(g.num_vertices());
    for (VertexId v = 0; v < g.num_vertices(); ++v) all[v] = v;
    return all;
  }

  template <typename PlanCtx>
  void plan(VertexId v, PlanCtx& ctx, LocalState& ls) {
    ls.color = kUncolored;
    if (color_[v] != kUncolored) return;  // decided earlier: final, no-op

    // Gather the published colors of smaller-id neighbours from the edge
    // halves. Any still-uncolored smaller neighbour means we cannot decide
    // yet — its deciding write will wake us (task rule) or abort us (same
    // round), so committing a no-op now is safe.
    const auto in = ctx.in_edges();
    const auto out = ctx.out_neighbors();
    thread_local std::vector<std::uint32_t> taken;
    taken.clear();
    bool blocked = false;
    auto consider = [&](VertexId u, std::uint32_t peer_color) {
      if (u >= v) return;
      if (peer_color == kUncolored) {
        blocked = true;
      } else {
        taken.push_back(peer_color);
      }
    };
    for (const InEdge& ie : in) {
      consider(ie.src, peer_half(ctx.read(ie.id, ie.src), false));
    }
    for (std::size_t k = 0; k < out.size(); ++k) {
      consider(out[k],
               peer_half(ctx.read(ctx.out_edge_id(k), out[k]), true));
    }
    if (blocked) return;

    // mex of the taken set.
    std::sort(taken.begin(), taken.end());
    std::uint32_t mex = 0;
    for (const std::uint32_t c : taken) {
      if (c == mex) {
        ++mex;
      } else if (c > mex) {
        break;
      }
    }
    ls.color = mex;

    // Commit writes our state and our half of every incident edge.
    ctx.will_write_vertex(v);
    for (const InEdge& ie : in) ctx.will_write(ie.id, ie.src);
    for (std::size_t k = 0; k < out.size(); ++k) {
      ctx.will_write(ctx.out_edge_id(k), out[k]);
    }
  }

  template <typename CommitCtx>
  void commit(VertexId v, CommitCtx& ctx, const LocalState& ls) {
    if (ls.color == kUncolored) return;
    color_[v] = ls.color;
    const auto in = ctx.in_edges();
    const auto out = ctx.out_neighbors();
    for (const InEdge& ie : in) {
      const DualEdge cur = ctx.read(ie.id);
      ctx.write(ie.id, ie.src, with_own_half(cur, false, ls.color));
    }
    for (std::size_t k = 0; k < out.size(); ++k) {
      const EdgeId eid = ctx.out_edge_id(k);
      const DualEdge cur = ctx.read(eid);
      ctx.write(eid, out[k], with_own_half(cur, true, ls.color));
    }
  }

  static double project(DualEdge e) {
    return static_cast<double>(e.src_half) + static_cast<double>(e.dst_half);
  }

  /// colors()[v] is v's color (kUncolored only if the run was capped).
  [[nodiscard]] const std::vector<std::uint32_t>& colors() const {
    return color_;
  }

  [[nodiscard]] std::vector<double> values() const {
    return {color_.begin(), color_.end()};
  }

 private:
  std::vector<std::uint32_t> color_;
};

static_assert(StaticEligibility<GreedyColoringProgram>::kVerdict ==
                  EligibilityVerdict::kNotProven,
              "greedy coloring must be refused for NE/async execution");
static_assert(StaticEligibility<GreedyColoringProgram>::kWwPossible,
              "dual-slot color edges imply possible WW conflicts");

}  // namespace ndg
