#pragma once
// Push-mode (delta) PageRank — the deliberately NOT-eligible example, built to
// exercise the paper's future-work item "more sufficient conditions (e.g.,
// those considering the push mode)".
//
// Each edge carries a residual accumulator. An update drains its in-edge
// accumulators (writing zero back — a write to in-edges), folds the residual
// into its rank, and pushes δ·res/outdeg onto each out-edge accumulator via a
// read-modify-write. Under nondeterministic execution both endpoints write
// the same edge (drain vs. accumulate) — write-write conflicts — AND the
// committed value is not monotone (accumulators rise and fall), so neither
// Theorem 1 nor Theorem 2 applies: racing drains lose residual mass
// permanently. The eligibility analysis classifies it kNotProven, and the
// ablation bench shows its nondeterministic results drifting far beyond ε —
// the cautionary tale the paper's title asks about.
//
// Deterministically (sequential or BSP or chromatic) it is a correct delta
// PageRank and converges to the same fixed point as the pull-mode program.

#include <cmath>
#include <vector>

#include "analysis/access_manifest.hpp"
#include "engine/vertex_program.hpp"

namespace ndg {

class PushPageRankProgram {
 public:
  using EdgeData = float;  // residual mass parked on the edge
  static constexpr bool kMonotonic = false;
  /// Push mode: the drain writes own IN-edges (zeroing accumulators, via
  /// write_silent — outside the Section II task rule) while pushes write own
  /// out-edges: WW possible, non-monotonic, rule broken — kNotProven from
  /// the manifest alone, before any trace is taken.
  static constexpr AccessManifest kManifest{
      .in_edges = SlotAccess::kReadWrite,
      .out_edges = SlotAccess::kReadWrite,
      .follows_task_rule = false,
      .bsp_convergent = true,
      .async_convergent = true,
  };
  /// Direction eligibility: the update IS the push shape already, so the
  /// push-side declaration is the same manifest — and it fails the theorems
  /// in push direction for the same reasons (silent drains break the task
  /// rule; WW with no monotone claim). The direction analysis refuses
  /// --direction=push (and auto never unpins) with exactly that story.
  static constexpr AccessManifest kPushManifest = kManifest;

  explicit PushPageRankProgram(float epsilon = 1e-4f, float damping = 0.85f)
      : epsilon_(epsilon), damping_(damping) {}

  [[nodiscard]] const char* name() const { return "pagerank-push"; }

  void init(const Graph& g, EdgeDataArray<float>& edges) {
    ranks_.assign(g.num_vertices(), 0.0f);
    seed_residual_.assign(g.num_vertices(), 1.0f - damping_);
    edges.fill(0.0f);
  }

  [[nodiscard]] std::vector<VertexId> initial_frontier(const Graph& g) const {
    std::vector<VertexId> all(g.num_vertices());
    for (VertexId v = 0; v < g.num_vertices(); ++v) all[v] = v;
    return all;
  }

  template <typename Ctx>
  void update(VertexId v, Ctx& ctx) {
    // Drain: collect residual parked on in-edges and zero the accumulators.
    float res = seed_residual_[v];
    seed_residual_[v] = 0.0f;
    for (const InEdge& ie : ctx.in_edges()) {
      const float a = ctx.read(ie.id);
      if (a != 0.0f) {
        res += a;
        ctx.write_silent(ie.id, 0.0f);  // must NOT reschedule the pusher
      }
    }
    if (res < epsilon_) {
      seed_residual_[v] += res;  // keep sub-threshold mass for later
      return;
    }
    ranks_[v] += res;

    // Push: read-modify-write on each out-edge accumulator.
    const auto neighbors = ctx.out_neighbors();
    if (neighbors.empty()) return;
    const float push = damping_ * res / static_cast<float>(neighbors.size());
    for (std::size_t k = 0; k < neighbors.size(); ++k) {
      const EdgeId eid = ctx.out_edge_id(k);
      const float cur = ctx.read(eid);
      ctx.write(eid, neighbors[k], cur + push);
    }
  }

  /// Push entry point: the pull entry point is already the push-mode
  /// algorithm, so both directions run the same body. Declared so the
  /// direction analysis has a push side to judge (and refuse).
  template <typename Ctx>
  void update_push(VertexId v, Ctx& ctx) {
    update(v, ctx);
  }

  static double project(float a) { return a; }

  [[nodiscard]] const std::vector<float>& ranks() const { return ranks_; }

  [[nodiscard]] std::vector<double> values() const {
    return {ranks_.begin(), ranks_.end()};
  }

 private:
  float epsilon_;
  float damping_;
  std::vector<float> ranks_;
  std::vector<float> seed_residual_;
};

}  // namespace ndg
