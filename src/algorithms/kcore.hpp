#pragma once
// k-core decomposition by iterated h-index refinement (Eppstein/Lu–Lakshmanan
// style): every vertex repeatedly sets its core estimate to the h-index of
// its neighbours' estimates, starting from its degree; the unique fixed point
// is the core number. Estimates are monotonically non-increasing, so this is
// a Theorem 2 workload — and because both endpoints publish their estimate
// into the same dual-slot edge word, nondeterministic execution produces
// write-write conflicts whose corruption/recovery follows the Fig. 2 pattern
// (the update rewrites its half whenever the edge disagrees with its state).
//
// Direction is ignored (cores are defined on the undirected graph): a
// vertex's neighbourhood is its in-edges plus out-edges.

#include <algorithm>
#include <vector>

#include "algorithms/dual_edge.hpp"
#include "analysis/access_manifest.hpp"
#include "engine/vertex_program.hpp"

namespace ndg {

class KCoreProgram {
 public:
  using EdgeData = DualEdge;
  static constexpr bool kMonotonic = true;
  /// Dual-slot edges: both endpoints publish their half into the same word,
  /// so WW conflicts are possible (Fig. 2 corrupt-then-recover dynamics);
  /// h-index estimates only fall — Theorem 2.
  static constexpr AccessManifest kManifest{
      .in_edges = SlotAccess::kReadWrite,
      .out_edges = SlotAccess::kReadWrite,
      .monotone = MonotoneClaim::kNonIncreasing,
      .bsp_convergent = true,
      .async_convergent = true,
  };

  [[nodiscard]] const char* name() const { return "kcore"; }

  void init(const Graph& g, EdgeDataArray<DualEdge>& edges) {
    core_.resize(g.num_vertices());
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      core_[v] = static_cast<std::uint32_t>(g.in_degree(v) + g.out_degree(v));
    }
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      const EdgeId base = g.out_edges_begin(v);
      const auto out = g.out_neighbors(v);
      for (std::size_t k = 0; k < out.size(); ++k) {
        edges.set(base + k, DualEdge{core_[v], core_[out[k]]});
      }
    }
  }

  [[nodiscard]] std::vector<VertexId> initial_frontier(const Graph& g) const {
    std::vector<VertexId> all(g.num_vertices());
    for (VertexId v = 0; v < g.num_vertices(); ++v) all[v] = v;
    return all;
  }

  template <typename Ctx>
  void update(VertexId v, Ctx& ctx) {
    const auto in = ctx.in_edges();
    const auto out = ctx.out_neighbors();

    // Gather: neighbour estimates (the peer half of each incident edge).
    // Thread-local scratch: updates run concurrently under the
    // nondeterministic engines; only vertex-owned state may be shared.
    static thread_local std::vector<std::uint32_t> scratch;
    scratch.clear();
    for (const InEdge& ie : in) {
      scratch.push_back(peer_half(ctx.read(ie.id), /*is_source=*/false));
    }
    for (std::size_t k = 0; k < out.size(); ++k) {
      scratch.push_back(
          peer_half(ctx.read(ctx.out_edge_id(k)), /*is_source=*/true));
    }

    // Compute: h-index of the estimates, capped by the current estimate.
    std::sort(scratch.begin(), scratch.end(), std::greater<>());
    std::uint32_t h = 0;
    while (h < scratch.size() && scratch[h] >= h + 1) ++h;
    const std::uint32_t next = std::min(core_[v], h);
    core_[v] = next;

    // Scatter: republish our half wherever the edge disagrees (covers both a
    // genuine decrease and recovery of a half corrupted by a racing RMW).
    for (const InEdge& ie : in) {
      const DualEdge cur = ctx.read(ie.id);
      if (own_half(cur, false) != next) {
        ctx.write(ie.id, ie.src, with_own_half(cur, false, next));
      }
    }
    for (std::size_t k = 0; k < out.size(); ++k) {
      const EdgeId eid = ctx.out_edge_id(k);
      const DualEdge cur = ctx.read(eid);
      if (own_half(cur, true) != next) {
        ctx.write(eid, out[k], with_own_half(cur, true, next));
      }
    }
  }

  /// Projection for the monotonicity checker: the halves only decrease, so
  /// their sum only decreases on any conflict-free schedule.
  static double project(DualEdge e) {
    return static_cast<double>(e.src_half) + static_cast<double>(e.dst_half);
  }

  [[nodiscard]] const std::vector<std::uint32_t>& core_numbers() const {
    return core_;
  }

  [[nodiscard]] std::vector<double> values() const {
    return {core_.begin(), core_.end()};
  }

 private:
  std::vector<std::uint32_t> core_;
};

}  // namespace ndg
