#pragma once
// Maximal matching — greedy by ascending id, the canonical member of the
// mutual-exclusion family the paper's theorems deliberately exclude from
// nondeterministic execution. A free vertex matches its smallest free
// neighbour; both endpoints flip from free to matched *together*, an atomic
// pairwise decision with no monotone per-edge recovery story: a lost race
// doesn't self-heal the way WCC's Fig. 2 dynamics do, it produces a vertex
// matched to a partner that believes otherwise. The manifest below says so —
// dual-slot read-write edges (WW possible), no monotone claim, no convergence
// claims — and StaticEligibility provably refuses it for both NE and async
// (static_assert at the bottom; tests/compile_fail pins the refusal).
//
// The program therefore ships *without* an update() entry point: it can only
// run under the speculative engine (engine/speculative.hpp), whose
// commit-in-id-order rule makes the parallel result exactly equal to
// ref::greedy_matching, the sequential greedy-by-id oracle.
//
// Matched partners are also published into the dual-slot edges (own half =
// partner id) so the decision is visible to edge-level tooling; the matched
// edge is written with the task-generation rule (waking the partner to
// republish its own edges), the remaining publications are silent — nobody's
// decision depends on them, and the manifest's follows_task_rule = false
// records that honestly.

#include <algorithm>
#include <vector>

#include "algorithms/dual_edge.hpp"
#include "analysis/access_manifest.hpp"
#include "analysis/static_eligibility.hpp"
#include "engine/vertex_program.hpp"

namespace ndg {

class MatchingProgram {
 public:
  using EdgeData = DualEdge;
  static constexpr bool kMonotonic = false;
  static constexpr bool kCautious = true;
  /// A free half publishes kFreeHalf; a matched half the partner's id.
  static constexpr std::uint32_t kFreeHalf = 0xffffffffu;

  /// Dual-slot RW edges => WW possible; pairwise matching has no monotone
  /// projection and no NE/async convergence claim, and the silent
  /// publications step outside the Section II task rule: every premise of
  /// both theorems fails, so the static verdict is kNotProven — by design.
  static constexpr AccessManifest kManifest{
      .in_edges = SlotAccess::kReadWrite,
      .out_edges = SlotAccess::kReadWrite,
      .follows_task_rule = false,
  };

  struct LocalState {
    VertexId partner;   // kInvalidVertex = no action this round
    std::uint8_t mode;  // kNone / kMatch / kRepublish
  };
  enum : std::uint8_t { kNone = 0, kMatch = 1, kRepublish = 2 };

  [[nodiscard]] const char* name() const { return "matching"; }

  void init(const Graph& g, EdgeDataArray<DualEdge>& edges) {
    match_.assign(g.num_vertices(), kInvalidVertex);
    edges.fill(DualEdge{kFreeHalf, kFreeHalf});
  }

  [[nodiscard]] std::vector<VertexId> initial_frontier(const Graph& g) const {
    std::vector<VertexId> all(g.num_vertices());
    for (VertexId v = 0; v < g.num_vertices(); ++v) all[v] = v;
    return all;
  }

  template <typename PlanCtx>
  void plan(VertexId v, PlanCtx& ctx, LocalState& ls) {
    ls.partner = kInvalidVertex;
    ls.mode = kNone;
    const auto in = ctx.in_edges();
    const auto out = ctx.out_neighbors();

    if (match_[v] != kInvalidVertex) {
      // Already matched (our partner's commit set match_[v] and scheduled
      // us): republish our half on any edge that still reads free/stale.
      ctx.read_vertex(v);
      bool stale = false;
      for (const InEdge& ie : in) {
        if (own_half(ctx.read(ie.id, ie.src), false) != match_[v]) {
          stale = true;
          ctx.will_write(ie.id, ie.src);
        }
      }
      for (std::size_t k = 0; k < out.size(); ++k) {
        if (own_half(ctx.read(ctx.out_edge_id(k), out[k]), true) !=
            match_[v]) {
          stale = true;
          ctx.will_write(ctx.out_edge_id(k), out[k]);
        }
      }
      if (stale) ls.mode = kRepublish;
      return;
    }

    // Free: the greedy rule — match the smallest free neighbour. The merged
    // ascending scan (mirrored exactly by ref::greedy_matching) makes the
    // choice well-defined even if the adjacency arrays were unsorted.
    thread_local std::vector<VertexId> nbrs;
    nbrs.clear();
    for (const InEdge& ie : in) nbrs.push_back(ie.src);
    for (const VertexId u : out) nbrs.push_back(u);
    std::sort(nbrs.begin(), nbrs.end());
    nbrs.erase(std::unique(nbrs.begin(), nbrs.end()), nbrs.end());
    for (const VertexId u : nbrs) {
      if (u == v) continue;  // self-loops never match
      ctx.read_vertex(u);
      if (match_[u] == kInvalidVertex) {
        ls.partner = u;
        ls.mode = kMatch;
        break;
      }
    }
    if (ls.mode != kMatch) return;  // no free neighbour: stay free, final

    // Commit will write both vertices' match state, our half on every
    // incident edge, and both halves of the matched edge.
    ctx.will_write_vertex(v);
    ctx.will_write_vertex(ls.partner);
    for (const InEdge& ie : in) ctx.will_write(ie.id, ie.src);
    for (std::size_t k = 0; k < out.size(); ++k) {
      ctx.will_write(ctx.out_edge_id(k), out[k]);
    }
  }

  template <typename CommitCtx>
  void commit(VertexId v, CommitCtx& ctx, const LocalState& ls) {
    if (ls.mode == kNone) return;
    const auto in = ctx.in_edges();
    const auto out = ctx.out_neighbors();
    if (ls.mode == kMatch) {
      const VertexId u = ls.partner;
      match_[v] = u;
      match_[u] = v;
      // Publish "taken by u" on all our edges. The matched edge itself uses
      // the scheduling write so u wakes up and republishes its own edges;
      // the rest are silent (no neighbour's decision reads them — free
      // vertices consult match_ directly, which is current at commit time).
      for (const InEdge& ie : in) {
        const DualEdge cur = ctx.read(ie.id);
        const DualEdge val = with_own_half(cur, false, u);
        if (ie.src == u) {
          ctx.write(ie.id, ie.src, val);
        } else {
          ctx.write_silent(ie.id, val);
        }
      }
      for (std::size_t k = 0; k < out.size(); ++k) {
        const EdgeId eid = ctx.out_edge_id(k);
        const DualEdge cur = ctx.read(eid);
        const DualEdge val = with_own_half(cur, true, u);
        if (out[k] == u) {
          ctx.write(eid, out[k], val);
        } else {
          ctx.write_silent(eid, val);
        }
      }
      return;
    }
    // kRepublish: repair our half wherever it disagrees (recomputed from the
    // same edge values plan saw — the engine guarantees them unchanged).
    const std::uint32_t mine = match_[v];
    for (const InEdge& ie : in) {
      const DualEdge cur = ctx.read(ie.id);
      if (own_half(cur, false) != mine) {
        ctx.write_silent(ie.id, with_own_half(cur, false, mine));
      }
    }
    for (std::size_t k = 0; k < out.size(); ++k) {
      const EdgeId eid = ctx.out_edge_id(k);
      const DualEdge cur = ctx.read(eid);
      if (own_half(cur, true) != mine) {
        ctx.write_silent(eid, with_own_half(cur, true, mine));
      }
    }
  }

  static double project(DualEdge e) {
    return static_cast<double>(e.src_half) + static_cast<double>(e.dst_half);
  }

  /// match()[v] is the partner id, or kInvalidVertex when v is unmatched.
  [[nodiscard]] const std::vector<VertexId>& match() const { return match_; }

  [[nodiscard]] std::vector<double> values() const {
    return {match_.begin(), match_.end()};
  }

 private:
  std::vector<VertexId> match_;
};

// The point of this program: the static layer must *refuse* it. A parallel
// run is only legal under the speculative engine's rollback guarantee.
static_assert(StaticEligibility<MatchingProgram>::kVerdict ==
                  EligibilityVerdict::kNotProven,
              "matching must be refused for NE/async execution");
static_assert(StaticEligibility<MatchingProgram>::kWwPossible,
              "dual-slot matching edges imply possible WW conflicts");

}  // namespace ndg
