#pragma once
// Single-Source Shortest Path — graph-traversal representative (Section V-A):
//
//   "each vertex stores a distance value ... Each edge stores an initial
//    fixed weight value, which is a random value (between 1 and 10) generated
//    during initialization, and a distance value, which is initially set to
//    be the same as the distance value of its source vertex. The updates pass
//    the computing results via the edges, and when executing
//    nondeterministically, only read-write conflicts happen in the edges."
//
// The 8-byte edge datum packs {weight, candidate distance}. Only the source
// endpoint of an edge ever writes it (scatter to out-edges), so conflicts are
// read-write only — Theorem 1 territory — and distances are monotonically
// non-increasing, so Theorem 2 applies as well.

#include <algorithm>
#include <atomic>
#include <concepts>
#include <cstdint>
#include <limits>
#include <vector>

#include "analysis/access_manifest.hpp"
#include "dyn/mutation.hpp"
#include "engine/vertex_program.hpp"
#include "perf/prefetch.hpp"
#include "util/rng.hpp"

namespace ndg {

struct SsspEdge {
  float weight;  // fixed after init
  float dist;    // candidate distance of the edge's source endpoint
};
static_assert(sizeof(SsspEdge) == 8);

class SsspProgram {
 public:
  using EdgeData = SsspEdge;
  static constexpr bool kMonotonic = true;
  /// Out-edges are read back before writing (to preserve the co-located
  /// weight and skip no-op writes) but only the source endpoint ever writes
  /// an edge: RW-only (Theorem 1), with non-increasing distances as the
  /// Theorem 2 bonus.
  static constexpr AccessManifest kManifest{
      .in_edges = SlotAccess::kRead,
      .out_edges = SlotAccess::kReadWrite,
      .monotone = MonotoneClaim::kNonIncreasing,
      .bsp_convergent = true,
      .async_convergent = true,
  };
  /// Push direction (update_push): same slots and invariant (the edge datum
  /// carries the source's candidate distance in both directions), but the
  /// publish folds the improved distance in with an atomic RMW that
  /// preserves the co-located weight — robust to the WW races of a mixed
  /// schedule, hence the .rmw declaration. accumulate() schedules, so the
  /// task rule holds.
  static constexpr AccessManifest kPushManifest{
      .in_edges = SlotAccess::kRead,
      .out_edges = SlotAccess::kReadWrite,
      .rmw = true,
      .monotone = MonotoneClaim::kNonIncreasing,
      .bsp_convergent = true,
      .async_convergent = true,
  };
  static constexpr float kInf = std::numeric_limits<float>::infinity();

  explicit SsspProgram(VertexId source, std::uint64_t weight_seed = 42)
      : source_(source), weight_seed_(weight_seed) {}

  [[nodiscard]] const char* name() const { return "sssp"; }

  /// The weight of canonical edge e, derived from (seed, e) so that the
  /// Dijkstra reference and every engine see identical weights.
  static float edge_weight(std::uint64_t seed, EdgeId e) {
    SplitMix64 sm(seed ^ (e * 0x9e3779b97f4a7c15ULL + 1));
    // "a random value (between 1 and 10)"
    return 1.0f + 9.0f * static_cast<float>(sm.next() >> 40) /
                      static_cast<float>(1 << 24);
  }

  /// Weight of edge id e as seen through graph view GraphT: dynamic views
  /// carry an explicit per-edge weight array (mutations change weights, and
  /// inserted ids would collide with the hash), the static Graph derives the
  /// weight from (seed, e) as in the paper's setup.
  template <typename GraphT>
  [[nodiscard]] float view_weight(const GraphT& g, EdgeId e) const {
    if constexpr (requires(const GraphT& gg, EdgeId ee) {
                    { gg.edge_weight(ee) } -> std::convertible_to<float>;
                  }) {
      return g.edge_weight(e);
    } else {
      (void)g;
      return edge_weight(weight_seed_, e);
    }
  }

  template <typename GraphT>
  void init(const GraphT& g, EdgeDataArray<SsspEdge>& edges) {
    dists_.assign(g.num_vertices(), kInf);
    dists_[source_] = 0.0f;
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      const EdgeId deg = g.out_degree(v);
      for (EdgeId k = 0; k < deg; ++k) {
        const EdgeId e = g.out_edge_id(v, k);
        edges.set(e, SsspEdge{view_weight(g, e), dists_[v]});
      }
    }
  }

  template <typename GraphT>
  [[nodiscard]] std::vector<VertexId> initial_frontier(const GraphT& g) const {
    // init() already placed the source's distance on its out-edges, so the
    // first updates that make progress are the source's successors.
    std::vector<VertexId> seeds{source_};
    for (const VertexId u : g.out_neighbors(source_)) seeds.push_back(u);
    return seeds;
  }

  // --- Dynamic hooks (src/dyn/, docs/DYNAMIC.md) ---
  // Theorem 2 algorithm: distances only ever DECREASE, so a warm start is
  // sound exactly when the mutation cannot raise any true distance — edge
  // inserts (new paths only shorten) and weight decreases. Deletes and
  // weight increases can raise the fixed point above the current state; the
  // gate falls back to cold recompute for those.
  [[nodiscard]] bool dyn_warm_ok(const dyn::AppliedMutation& m) const {
    switch (m.kind) {
      case dyn::MutationKind::kInsertEdge: return true;
      case dyn::MutationKind::kWeightChange: return m.weight <= m.old_weight;
      case dyn::MutationKind::kDeleteEdge: return false;
    }
    return false;
  }

  /// Stamp the (new) weight and the source's current tentative distance on
  /// the touched edge, then seed the target (its gather gained a candidate)
  /// and the source (cheap, and re-checks the source's own fixed point).
  template <typename ViewT>
  void dyn_apply(const ViewT& g, EdgeDataArray<SsspEdge>& edges,
                 const dyn::AppliedMutation& m, std::vector<VertexId>& seeds) {
    if (m.kind == dyn::MutationKind::kDeleteEdge) {
      seeds.push_back(m.dst);  // defensive: gate forces cold for deletes
      return;
    }
    edges.set(m.id, SsspEdge{view_weight(g, m.id), dists_[m.src]});
    seeds.push_back(m.src);
    seeds.push_back(m.dst);
  }

  /// Live (mid-recompute) vertex read for ndg_serve's --live-queries mode:
  /// v's last PUBLISHED tentative distance rides on its out-edges (scatter
  /// writes dist there), and fresher candidates arrive on its in-edges — so
  /// the min over individually-atomic edge reads is a value some serial
  /// order of the racy run could have produced (Lemma 1). Never touches
  /// dists_ (plain state the engine threads write). At a quiescent point
  /// this IS dists_[v]: the fixed point satisfies
  /// dist(v) = min_in(dist(u) + w) for every reachable non-source vertex.
  template <typename ViewT, typename ReadFn>
  [[nodiscard]] double live_value(const ViewT& g, ReadFn&& read,
                                  VertexId v) const {
    float best = (v == source_) ? 0.0f : kInf;
    if (g.out_degree(v) > 0) {
      best = std::min(best, read(g.out_edge_id(v, 0)).dist);
    }
    for (const InEdge& ie : g.in_edges(v)) {
      const SsspEdge e = read(ie.id);
      best = std::min(best, e.dist + e.weight);
    }
    return best;
  }

  // Gather / Combine / Apply decomposition (perf/hub_gather.hpp): the gather
  // is a min over in-edge candidate distances — associative, so a hub's
  // in-edges split into chunks whose partial minima recombine exactly.
  using GatherData = float;
  static GatherData gather_identity() { return kInf; }
  static GatherData combine(GatherData a, GatherData b) {
    return std::min(a, b);
  }

  template <typename Ctx>
  GatherData gather_edge(const InEdge& ie, Ctx& ctx) const {
    const SsspEdge e = ctx.read(ie.id);
    return e.dist + e.weight;
  }

  template <typename Ctx>
  void apply(VertexId v, GatherData best, Ctx& ctx) {
    // The distance cell is accessed through atomic_ref because priority(v)
    // reads it from other threads while this update runs (updates of v
    // itself are serialized by the engines).
    const float cur_dist =
        std::atomic_ref<float>(dists_[v]).load(std::memory_order_relaxed);
    if (best >= cur_dist) return;  // no improvement; nothing new to scatter
    const float d = best;
    std::atomic_ref<float>(dists_[v]).store(d, std::memory_order_relaxed);

    // Scatter: publish the improved distance on the out-edges (reading first
    // to preserve the co-located weight and to skip no-op writes).
    const auto neighbors = ctx.out_neighbors();
    for (std::size_t k = 0; k < neighbors.size(); ++k) {
      const EdgeId eid = ctx.out_edge_id(k);
      const SsspEdge cur = ctx.read(eid);
      if (cur.dist > d) ctx.write(eid, neighbors[k], SsspEdge{cur.weight, d});
    }
  }

  template <typename Ctx>
  void update(VertexId v, Ctx& ctx) {
    float best = gather_identity();
    const auto in = ctx.in_edges();
    for (std::size_t i = 0; i < in.size(); ++i) {  // Gather
      if (i + perf::kGatherPrefetchDistance < in.size()) {
        prefetch_edge(ctx, in[i + perf::kGatherPrefetchDistance].id);
      }
      best = combine(best, gather_edge(in[i], ctx));
    }
    apply(v, best, ctx);
  }

  /// Push entry point (engine/direction.hpp): same gather, but the improved
  /// distance is published with an atomic min-fold that keeps the co-located
  /// weight — so two racing publishes of the same edge (possible in a mixed
  /// pull/push schedule) commit the smaller distance instead of tearing. The
  /// guard read only skips no-improvement publishes; staleness there is
  /// benign because the fold is min.
  template <typename Ctx>
  void update_push(VertexId v, Ctx& ctx) {
    float best = gather_identity();
    const auto in = ctx.in_edges();
    for (std::size_t i = 0; i < in.size(); ++i) {
      if (i + perf::kGatherPrefetchDistance < in.size()) {
        prefetch_edge(ctx, in[i + perf::kGatherPrefetchDistance].id);
      }
      best = combine(best, gather_edge(in[i], ctx));
    }

    const float cur_dist =
        std::atomic_ref<float>(dists_[v]).load(std::memory_order_relaxed);
    if (best >= cur_dist) return;
    const float d = best;
    std::atomic_ref<float>(dists_[v]).store(d, std::memory_order_relaxed);

    const auto neighbors = ctx.out_neighbors();
    for (std::size_t k = 0; k < neighbors.size(); ++k) {
      const EdgeId eid = ctx.out_edge_id(k);
      if (ctx.read(eid).dist > d) {
        ctx.accumulate(eid, neighbors[k], [d](SsspEdge e) {
          if (e.dist > d) e.dist = d;
          return e;
        });
      }
    }
  }

  /// Scheduling priority for the bucket worklist: delta-stepping with Δ = 2
  /// over the tentative distance (weights are 1–10), so closer vertices
  /// settle first and the NE schedule approximates label-correcting order.
  /// Unreached vertices sort last (the worklist clamps to its final bucket).
  [[nodiscard]] std::uint64_t priority(VertexId v) const {
    // atomic_ref<const T> arrives only in C++26; const_cast for the load.
    const float d = std::atomic_ref<float>(const_cast<float&>(dists_[v]))
                        .load(std::memory_order_relaxed);
    if (!(d < kInf)) return std::numeric_limits<std::uint64_t>::max();
    return static_cast<std::uint64_t>(d / 2.0f);
  }

  static double project(SsspEdge e) { return e.dist; }

  [[nodiscard]] const std::vector<float>& distances() const { return dists_; }

  [[nodiscard]] std::vector<double> values() const {
    return {dists_.begin(), dists_.end()};
  }

  [[nodiscard]] VertexId source() const { return source_; }
  [[nodiscard]] std::uint64_t weight_seed() const { return weight_seed_; }

 private:
  VertexId source_;
  std::uint64_t weight_seed_;
  std::vector<float> dists_;
};

}  // namespace ndg
