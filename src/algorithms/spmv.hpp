#pragma once
// Iterative SpMV — the paper's other named fixed-point-iteration example
// (Section IV cites "PageRank, Sparse Matrix-Vector Multiplication (SpMV)
// and many others"). We run the Richardson/Jacobi iteration for the linear
// system (I − ω·Aᵀ_row-norm)·x = b:
//
//     x' = b + ω·(Aᵀ_row-norm · x),   started from x = 1, b = 1 − ω,
//
// whose iteration matrix has spectral radius ≤ ω < 1, so a unique fixed
// point exists on every topology and local-ε convergence lands in its
// ε-neighbourhood (verified against a dense solve). Read-write conflicts
// only; not monotonic — a second Theorem 1 exemplar with different mixing
// behaviour than PageRank (no rank-mass semantics, pure linear algebra).

#include <cmath>
#include <vector>

#include "analysis/access_manifest.hpp"
#include "engine/vertex_program.hpp"

namespace ndg {

class SpmvProgram {
 public:
  using EdgeData = float;
  static constexpr bool kMonotonic = false;
  /// Pull-mode Richardson iteration: same shape as PageRank — RW-only,
  /// BSP-convergent (spectral radius < 1), Theorem 1.
  static constexpr AccessManifest kManifest{
      .in_edges = SlotAccess::kRead,
      .out_edges = SlotAccess::kWrite,
      .bsp_convergent = true,
      .async_convergent = true,
  };

  explicit SpmvProgram(float epsilon = 1e-3f, float omega = 0.5f)
      : epsilon_(epsilon), omega_(omega) {}

  [[nodiscard]] const char* name() const { return "spmv"; }

  void init(const Graph& g, EdgeDataArray<float>& edges) {
    x_.assign(g.num_vertices(), 1.0f);
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      const EdgeId deg = g.out_degree(v);
      const float w = deg > 0 ? 1.0f / static_cast<float>(deg) : 0.0f;
      const EdgeId base = g.out_edges_begin(v);
      for (EdgeId k = 0; k < deg; ++k) edges.set(base + k, w);
    }
  }

  [[nodiscard]] std::vector<VertexId> initial_frontier(const Graph& g) const {
    std::vector<VertexId> all(g.num_vertices());
    for (VertexId v = 0; v < g.num_vertices(); ++v) all[v] = v;
    return all;
  }

  template <typename Ctx>
  void update(VertexId v, Ctx& ctx) {
    float sum = 0.0f;
    for (const InEdge& ie : ctx.in_edges()) sum += ctx.read(ie.id);
    const float nx = (1.0f - omega_) + omega_ * sum;  // b = 1 - omega
    const float old = x_[v];
    x_[v] = nx;
    if (std::fabs(nx - old) >= epsilon_) {
      const auto neighbors = ctx.out_neighbors();
      if (!neighbors.empty()) {
        const float out_w = nx / static_cast<float>(neighbors.size());
        for (std::size_t k = 0; k < neighbors.size(); ++k) {
          ctx.write(ctx.out_edge_id(k), neighbors[k], out_w);
        }
      }
    }
  }

  static double project(float w) { return w; }

  [[nodiscard]] const std::vector<float>& x() const { return x_; }

  [[nodiscard]] std::vector<double> values() const {
    return {x_.begin(), x_.end()};
  }

 private:
  float epsilon_;
  float omega_;
  std::vector<float> x_;
};

}  // namespace ndg
