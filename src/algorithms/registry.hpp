#pragma once
// Type-erased registry over the shipped vertex programs, so harnesses
// (eligibility bench, examples) can iterate "every algorithm" without
// spelling out the heterogeneous program types.

#include <functional>
#include <string>
#include <vector>

#include "analysis/access_manifest.hpp"
#include "analysis/directional_manifest.hpp"
#include "analysis/verifying_access.hpp"
#include "core/eligibility.hpp"
#include "engine/options.hpp"
#include "engine/simulator.hpp"
#include "graph/graph.hpp"

namespace ndg {

struct AlgorithmEntry {
  std::string name;
  /// Runs the full eligibility analysis for this algorithm on g.
  std::function<EligibilityReport(const Graph& g)> analyze;
  /// One nondeterministic run on a fresh program/edge state, returning the
  /// full EngineResult (frontier representation choices, hub splits, steal
  /// and load-balance telemetry) — the eligibility report surfaces these
  /// alongside the verdicts.
  std::function<EngineResult(const Graph& g, const EngineOptions& opts)> run_ne;
  /// One bounded-staleness run (src/delay/, docs/DELAY.md) on a fresh
  /// program/edge state, honoring opts.delay. With opts.delay.steps == 0
  /// this IS run_ne modulo hub splitting (the delayed engine never splits).
  std::function<EngineResult(const Graph& g, const EngineOptions& opts)>
      run_delayed;
  /// Same, over the pure-async sweep engine (run_pure_async at d == 0).
  std::function<EngineResult(const Graph& g, const EngineOptions& opts)>
      run_delayed_async;
  /// One logical-simulator run (engine/simulator.hpp) on fresh state — the
  /// schedule-model twin the delayed engine is cross-validated against.
  std::function<SimResult(const Graph& g, const SimOptions& opts)> run_sim;

  // --- Static-analysis surface (docs/ANALYSIS.md) ---
  /// The program's declared access shape.
  AccessManifest manifest{};
  /// StaticEligibility verdict under the manifest's own convergence claims.
  EligibilityVerdict static_verdict = EligibilityVerdict::kNotProven;
  /// True when the convergence claims are input-dependent (the static
  /// verdict is conditional; compare via static_verdict_given with the
  /// measured premises).
  bool static_conditional = false;
  /// One manifest-enforced deterministic run (analysis/validate.hpp): a
  /// clean result means every executed access stayed inside the declared
  /// shape, grounding the static verdict for this graph.
  std::function<ManifestCheck(const Graph& g)> validate;

  // --- Direction-eligibility surface (docs/ANALYSIS.md) ---
  /// Pull + push manifest pair (has_push == false for pull-only programs).
  DirectionalManifest directional{};
  /// Independent per-direction Theorem 1/2 verdicts.
  EligibilityVerdict dir_pull_verdict = EligibilityVerdict::kNotProven;
  EligibilityVerdict dir_push_verdict = EligibilityVerdict::kNotProven;
  /// Both directions AND the merged (mixed-schedule) manifest proven.
  bool dir_switchable = false;
  /// switchability_refusal_reason() when !dir_switchable; empty otherwise.
  std::string dir_reason;
  /// One run of the direction-optimizing engine (engine/direction.hpp),
  /// honoring opts.direction. Always present; pull-only programs are pinned
  /// to pull by the engine regardless of the requested mode — gate requests
  /// through resolve_direction(directional, ...) first.
  std::function<EngineResult(const Graph& g, const EngineOptions& opts)>
      run_directed;
  /// Push-direction twin of validate (validate_manifest_push): a manifest-
  /// enforced deterministic run of update_push against the push manifest.
  /// Null for pull-only programs.
  std::function<ManifestCheck(const Graph& g)> validate_push;

  // --- Speculative surface (docs/SPECULATION.md) ---
  /// One run under the rollback engine (engine/speculative.hpp) on fresh
  /// state; commit/abort telemetry lands in EngineResult::spec_commits /
  /// spec_aborts. Null for programs without the CautiousProgram plan/commit
  /// split.
  std::function<EngineResult(const Graph& g, const EngineOptions& opts)>
      run_speculative;
  /// True for the NE-refused mutual-exclusion family (matching, coloring):
  /// the program has no update() entry point, so every non-speculative
  /// closure above is null — the speculative engine is its only legal
  /// executor.
  bool speculative_only = false;
  /// Self-contained exactness check: one speculative run compared against
  /// the sequential greedy-by-id oracle (algorithms/reference). Null when no
  /// oracle applies.
  std::function<bool(const Graph& g, const EngineOptions& opts)>
      verify_speculative;
};

/// All shipped algorithms. `source` seeds SSSP/BFS; `max_iterations` caps the
/// analysis runs.
std::vector<AlgorithmEntry> algorithm_registry(VertexId source = 0,
                                               std::size_t max_iterations = 5000);

/// The speculative family: programs served by the rollback engine, with
/// oracle checks. matching and coloring are speculative_only (refused for
/// NE/async by StaticEligibility — the refusal the engine exists to answer);
/// mis rides along as the bridge case that is BOTH Theorem-2 eligible and
/// cautious. Entries carry the static-analysis surface plus run_speculative /
/// verify_speculative; the NE-era closures are null for speculative_only
/// entries.
std::vector<AlgorithmEntry> speculative_registry();

}  // namespace ndg
