#pragma once
// Type-erased registry over the shipped vertex programs, so harnesses
// (eligibility bench, examples) can iterate "every algorithm" without
// spelling out the heterogeneous program types.

#include <functional>
#include <string>
#include <vector>

#include "core/eligibility.hpp"
#include "engine/options.hpp"
#include "graph/graph.hpp"

namespace ndg {

struct AlgorithmEntry {
  std::string name;
  /// Runs the full eligibility analysis for this algorithm on g.
  std::function<EligibilityReport(const Graph& g)> analyze;
  /// One nondeterministic run on a fresh program/edge state, returning the
  /// full EngineResult (frontier representation choices, hub splits, steal
  /// and load-balance telemetry) — the eligibility report surfaces these
  /// alongside the verdicts.
  std::function<EngineResult(const Graph& g, const EngineOptions& opts)> run_ne;
};

/// All shipped algorithms. `source` seeds SSSP/BFS; `max_iterations` caps the
/// analysis runs.
std::vector<AlgorithmEntry> algorithm_registry(VertexId source = 0,
                                               std::size_t max_iterations = 5000);

}  // namespace ndg
