#pragma once
// Push-mode (delta) PageRank with ATOMIC drain/combine — the constructive
// half of the push-mode story (the paper's §VII future work).
//
// push_pagerank.hpp shows that plain push-mode delta PageRank is NOT covered
// by Theorems 1 or 2 (write-write conflicts, non-monotonic) and really does
// corrupt results under races: the drain (read-then-clear) and the combine
// (read-add-write) are compound operations, and Section III's minimal
// atomicity — atomic individual reads and writes — cannot make a compound
// operation atomic.
//
// This variant repairs it with the policies' RMW primitives:
//     drain   = ctx.exchange(e, 0)          — atomically take all parked mass
//     combine = ctx.accumulate(e, +push)    — atomically add
// Residual mass is then conserved under ANY interleaving, so nondeterministic
// execution converges to the pull-mode fixed point — even though the paper's
// two sufficient conditions still do not apply (the eligibility analysis says
// kNotProven; the conditions are sufficient, not necessary). This is the
// library's concrete exhibit for "more sufficient conditions (e.g., those
// considering the push mode)": mass-conserving atomic accumulate/drain is
// such a condition.
//
// NOTE: correctness requires a policy with real RMW atomicity (locked,
// relaxed, seq_cst). Under AlignedAccess the RMWs decay to plain read+write
// and this program is exactly as broken as push_pagerank.hpp — the ablation
// bench measures that gap.

#include <cmath>
#include <vector>

#include "analysis/access_manifest.hpp"
#include "engine/vertex_program.hpp"

namespace ndg {

class AtomicPushPageRankProgram {
 public:
  using EdgeData = float;  // residual mass parked on the edge
  static constexpr bool kMonotonic = false;
  /// Push mode with compound RMWs (exchange drain / accumulate combine):
  /// still kNotProven by the paper's theorems, and the .rmw declaration
  /// makes pairing this program with AlignedAccess a COMPILE error
  /// (assert_manifest_policy) — method (2) cannot make accumulate atomic.
  static constexpr AccessManifest kManifest{
      .in_edges = SlotAccess::kReadWrite,
      .out_edges = SlotAccess::kReadWrite,
      .rmw = true,
      .follows_task_rule = false,
      .bsp_convergent = true,
      .async_convergent = true,
  };

  explicit AtomicPushPageRankProgram(float epsilon = 1e-4f,
                                     float damping = 0.85f)
      : epsilon_(epsilon), damping_(damping) {}

  [[nodiscard]] const char* name() const { return "pagerank-push-atomic"; }

  template <typename GraphT>
  void init(const GraphT& g, EdgeDataArray<float>& edges) {
    ranks_.assign(g.num_vertices(), 0.0f);
    seed_residual_.assign(g.num_vertices(), 1.0f - damping_);
    edges.fill(0.0f);
  }

  template <typename GraphT>
  [[nodiscard]] std::vector<VertexId> initial_frontier(const GraphT& g) const {
    std::vector<VertexId> all(g.num_vertices());
    for (VertexId v = 0; v < g.num_vertices(); ++v) all[v] = v;
    return all;
  }

  // No dyn hooks on purpose: this program analyzes to kNotProven, so the
  // streaming gate must route every batch to cold recompute — it is the
  // ineligible-fallback exhibit in tests/test_dyn_incremental.cpp.

  template <typename Ctx>
  void update(VertexId v, Ctx& ctx) {
    // Drain: atomically take the residual parked on every in-edge.
    float res = seed_residual_[v];
    seed_residual_[v] = 0.0f;
    for (const InEdge& ie : ctx.in_edges()) {
      res += ctx.exchange(ie.id, 0.0f);
    }
    if (res < epsilon_) {
      seed_residual_[v] += res;  // park sub-threshold mass for a later wake-up
      return;
    }
    ranks_[v] += res;

    // Push: atomically combine into each out-edge accumulator.
    const auto neighbors = ctx.out_neighbors();
    if (neighbors.empty()) return;
    const float push = damping_ * res / static_cast<float>(neighbors.size());
    for (std::size_t k = 0; k < neighbors.size(); ++k) {
      ctx.accumulate(ctx.out_edge_id(k), neighbors[k],
                     [push](float cur) { return cur + push; });
    }
  }

  static double project(float a) { return a; }

  [[nodiscard]] const std::vector<float>& ranks() const { return ranks_; }

  [[nodiscard]] std::vector<double> values() const {
    return {ranks_.begin(), ranks_.end()};
  }

 private:
  float epsilon_;
  float damping_;
  std::vector<float> ranks_;
  std::vector<float> seed_residual_;
};

}  // namespace ndg
