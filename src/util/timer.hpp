#pragma once
// Wall-clock timing for the benchmark harnesses. The paper reports "computing
// times (excluding the I/O times spent on graph loading)"; callers start the
// timer after the graph is built.

#include <chrono>

namespace ndg {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace ndg
