#include "util/cli.hpp"

#include <cstdlib>
#include <string_view>

namespace ndg {

CliArgs::CliArgs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (!arg.starts_with("--")) continue;
    arg.remove_prefix(2);
    const auto eq = arg.find('=');
    if (eq == std::string_view::npos) {
      kv_.emplace(std::string(arg), "true");
    } else {
      kv_.emplace(std::string(arg.substr(0, eq)), std::string(arg.substr(eq + 1)));
    }
  }
}

bool CliArgs::has(const std::string& key) const { return kv_.contains(key); }

std::string CliArgs::get(const std::string& key, std::string def) const {
  const auto it = kv_.find(key);
  return it == kv_.end() ? std::move(def) : it->second;
}

std::int64_t CliArgs::get_int(const std::string& key, std::int64_t def) const {
  const auto it = kv_.find(key);
  return it == kv_.end() ? def : std::strtoll(it->second.c_str(), nullptr, 10);
}

double CliArgs::get_double(const std::string& key, double def) const {
  const auto it = kv_.find(key);
  return it == kv_.end() ? def : std::strtod(it->second.c_str(), nullptr);
}

bool CliArgs::get_bool(const std::string& key, bool def) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return def;
  return it->second != "false" && it->second != "0";
}

}  // namespace ndg
