#pragma once
// Always-on invariant checks. Unlike <cassert> these survive release builds:
// corrupt scheduling state in a racy engine is exactly the kind of bug that
// only shows up under optimization.

#include <cstdio>
#include <cstdlib>

namespace ndg::detail {
[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line,
                                     const char* msg) {
  std::fprintf(stderr, "NDG_ASSERT failed: %s\n  at %s:%d\n  %s\n", expr, file, line,
               msg ? msg : "");
  std::abort();
}
}  // namespace ndg::detail

#define NDG_ASSERT(expr)                                                       \
  ((expr) ? (void)0                                                            \
          : ::ndg::detail::assert_fail(#expr, __FILE__, __LINE__, nullptr))

#define NDG_ASSERT_MSG(expr, msg)                                              \
  ((expr) ? (void)0 : ::ndg::detail::assert_fail(#expr, __FILE__, __LINE__, msg))
