#pragma once
// Deterministic, seedable PRNGs. Every stochastic component of the library
// (graph generators, SSSP weights, simulated race winners) draws from these so
// that experiments are reproducible from a printed 64-bit seed.

#include <cstdint>

namespace ndg {

/// SplitMix64: used to expand a user seed into stream seeds.
/// Reference: Steele, Lea & Flood, "Fast splittable pseudorandom number
/// generators", OOPSLA 2014.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: the workhorse generator. Fast, high quality, tiny state.
/// Reference: Blackman & Vigna, "Scrambled linear pseudorandom number
/// generators", ACM TOMS 2021.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Lemire-style rejection-free mapping is
  /// overkill here; 64-bit modulo bias is negligible for our bounds.
  std::uint64_t next_below(std::uint64_t bound) { return bound ? next() % bound : 0; }

  /// Uniform double in [0, 1).
  double next_double() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double next_double(double lo, double hi) { return lo + (hi - lo) * next_double(); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4];
};

}  // namespace ndg
