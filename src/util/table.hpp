#pragma once
// Fixed-width text table printer. The benchmark harnesses print paper-style
// rows (Figure 3 series, Tables II/III) through this so that bench_output.txt
// lines up for side-by-side comparison with the paper.

#include <iosfwd>
#include <string>
#include <vector>

namespace ndg {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 3);

  void print(std::ostream& os) const;

  /// Machine-readable form: a JSON array of row objects keyed by the header
  /// (numeric-looking cells stay unquoted). Used by the benches' --json flag
  /// to emit reproducibility manifests alongside the human tables.
  [[nodiscard]] std::string to_json() const;

  /// Writes `{"config": <config_json>, "rows": <to_json()>}` to `path`.
  /// `config_json` must already be valid JSON (use json_escape for values).
  void write_json(const std::string& path, const std::string& config_json) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Escapes a string for inclusion inside JSON double quotes.
std::string json_escape(const std::string& s);

}  // namespace ndg
