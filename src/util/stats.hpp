#pragma once
// Small statistics helpers used by the result-variance experiments
// (Tables II & III) and the benchmark harnesses.

#include <cstddef>
#include <vector>

namespace ndg {

/// Streaming mean/variance/min/max (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exact percentile of a sample set (nearest-rank method). `p` in [0, 100].
double percentile(std::vector<double> samples, double p);

}  // namespace ndg
