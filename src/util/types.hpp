#pragma once
// Fundamental identifier types shared by every subsystem.

#include <cstdint>
#include <limits>

namespace ndg {

/// Vertex identifier; vertices are dense in [0, num_vertices).
/// The paper calls this the vertex *label* L_v (Section II): a unique value in
/// [0, |V|-1] that also defines the deterministic scheduling order.
using VertexId = std::uint32_t;

/// Edge identifier; edges are dense in [0, num_edges) in CSR (source-major) order.
using EdgeId = std::uint64_t;

inline constexpr VertexId kInvalidVertex = std::numeric_limits<VertexId>::max();
inline constexpr EdgeId kInvalidEdge = std::numeric_limits<EdgeId>::max();

}  // namespace ndg
