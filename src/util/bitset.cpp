#include "util/bitset.hpp"

#include <bit>

namespace ndg {

void DenseBitset::set_all() {
  std::fill(words_.begin(), words_.end(), ~0ULL);
  // Mask the tail so count() stays exact.
  const std::size_t tail = num_bits_ & 63;
  if (tail != 0 && !words_.empty()) {
    words_.back() = (1ULL << tail) - 1;
  }
}

std::size_t DenseBitset::count() const {
  std::size_t c = 0;
  for (const auto w : words_) c += static_cast<std::size_t>(std::popcount(w));
  return c;
}

bool DenseBitset::any() const {
  for (const auto w : words_) {
    if (w != 0) return true;
  }
  return false;
}

std::size_t AtomicBitset::count() const {
  std::size_t c = 0;
  for (const auto& w : words_) {
    c += static_cast<std::size_t>(std::popcount(w.load(std::memory_order_relaxed)));
  }
  return c;
}

}  // namespace ndg
