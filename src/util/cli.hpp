#pragma once
// Minimal --flag=value command-line parser for the bench and example binaries.

#include <cstdint>
#include <map>
#include <string>

namespace ndg {

class CliArgs {
 public:
  CliArgs(int argc, char** argv);

  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] std::string get(const std::string& key, std::string def) const;
  [[nodiscard]] std::int64_t get_int(const std::string& key, std::int64_t def) const;
  [[nodiscard]] double get_double(const std::string& key, double def) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool def) const;

 private:
  std::map<std::string, std::string> kv_;
};

}  // namespace ndg
