#include "util/thread_team.hpp"

namespace ndg {

ThreadTeam::ThreadTeam(std::size_t num_threads) {
  NDG_ASSERT(num_threads >= 1);
  threads_.reserve(num_threads);
  for (std::size_t t = 0; t < num_threads; ++t) {
    threads_.emplace_back([this, t] { worker(t); });
  }
}

ThreadTeam::~ThreadTeam() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (auto& th : threads_) th.join();
}

void ThreadTeam::run(const std::function<void(std::size_t)>& fn) {
  std::unique_lock<std::mutex> lock(mu_);
  NDG_ASSERT(remaining_ == 0);  // no overlapping runs
  fn_ = &fn;
  remaining_ = threads_.size();
  ++epoch_;
  start_cv_.notify_all();
  done_cv_.wait(lock, [this] { return remaining_ == 0; });
  fn_ = nullptr;
}

void ThreadTeam::worker(std::size_t tid) {
  detail::tls_thread_id = tid;
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(std::size_t)>* fn = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      start_cv_.wait(lock, [&] { return stop_ || epoch_ != seen; });
      if (stop_) return;
      seen = epoch_;
      fn = fn_;
    }
    (*fn)(tid);
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (--remaining_ == 0) done_cv_.notify_one();
    }
  }
}

}  // namespace ndg
