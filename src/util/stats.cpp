#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace ndg {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double percentile(std::vector<double> samples, double p) {
  NDG_ASSERT_MSG(!samples.empty(), "percentile of empty sample set");
  NDG_ASSERT(p >= 0.0 && p <= 100.0);
  std::sort(samples.begin(), samples.end());
  const auto n = samples.size();
  // Nearest-rank: smallest value such that at least p% of samples are <= it.
  std::size_t rank = static_cast<std::size_t>(std::ceil(p / 100.0 * static_cast<double>(n)));
  if (rank == 0) rank = 1;
  return samples[rank - 1];
}

}  // namespace ndg
