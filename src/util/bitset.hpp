#pragma once
// Dense bitsets over vertex ids. Two flavours:
//   * DenseBitset     — single-writer, used by sequential engines.
//   * AtomicBitset    — multi-writer, used by the nondeterministic engine's
//                       next-iteration frontier (the task-generation rule of
//                       Section II is executed concurrently by all threads).

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/assert.hpp"

namespace ndg {

class DenseBitset {
 public:
  DenseBitset() = default;
  explicit DenseBitset(std::size_t num_bits)
      : num_bits_(num_bits), words_((num_bits + 63) / 64, 0) {}

  [[nodiscard]] std::size_t size() const { return num_bits_; }

  void set(std::size_t i) {
    NDG_ASSERT(i < num_bits_);
    words_[i >> 6] |= (1ULL << (i & 63));
  }

  void reset(std::size_t i) {
    NDG_ASSERT(i < num_bits_);
    words_[i >> 6] &= ~(1ULL << (i & 63));
  }

  [[nodiscard]] bool test(std::size_t i) const {
    NDG_ASSERT(i < num_bits_);
    return (words_[i >> 6] >> (i & 63)) & 1ULL;
  }

  void clear() { std::fill(words_.begin(), words_.end(), 0); }
  void set_all();

  [[nodiscard]] std::size_t count() const;
  [[nodiscard]] bool any() const;

  [[nodiscard]] std::size_t num_words() const { return words_.size(); }

  /// Calls fn(i) for every set bit, ascending.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for_each_in_words(0, words_.size(), fn);
  }

  /// Calls fn(i) for every set bit whose word index lies in [word_begin,
  /// word_end), ascending — the unit the dense frontier partitions across
  /// threads (a word boundary is a vertex-label multiple of 64).
  template <typename Fn>
  void for_each_in_words(std::size_t word_begin, std::size_t word_end,
                         Fn&& fn) const {
    for (std::size_t w = word_begin; w < word_end; ++w) {
      std::uint64_t word = words_[w];
      while (word) {
        const int bit = __builtin_ctzll(word);
        fn(w * 64 + static_cast<std::size_t>(bit));
        word &= word - 1;
      }
    }
  }

  /// Calls fn(i) for every set bit in [lo, hi), ascending. Masks the partial
  /// boundary words so interval scans stay word-at-a-time.
  template <typename Fn>
  void for_each_in_range(std::size_t lo, std::size_t hi, Fn&& fn) const {
    if (lo >= hi) return;
    const std::size_t wb = lo >> 6;
    const std::size_t we = (hi + 63) >> 6;
    for (std::size_t w = wb; w < we; ++w) {
      std::uint64_t word = words_[w];
      if (w == wb) word &= ~0ULL << (lo & 63);
      if (w == (hi - 1) >> 6 && (hi & 63) != 0) {
        word &= (1ULL << (hi & 63)) - 1;
      }
      while (word) {
        const int bit = __builtin_ctzll(word);
        fn(w * 64 + static_cast<std::size_t>(bit));
        word &= word - 1;
      }
    }
  }

  /// Number of set bits in [lo, hi).
  [[nodiscard]] std::size_t count_in_range(std::size_t lo,
                                           std::size_t hi) const {
    std::size_t n = 0;
    for_each_in_range(lo, hi, [&n](std::size_t) { ++n; });
    return n;
  }

 private:
  friend class AtomicBitset;  // snapshot_into writes words_ directly

  std::size_t num_bits_ = 0;
  std::vector<std::uint64_t> words_;
};

class AtomicBitset {
 public:
  AtomicBitset() = default;
  explicit AtomicBitset(std::size_t num_bits)
      : num_bits_(num_bits), words_((num_bits + 63) / 64) {
    clear();
  }

  [[nodiscard]] std::size_t size() const { return num_bits_; }

  /// Sets bit i; returns true if this call changed it from 0 to 1.
  /// Acq_rel ordering: the release half makes everything the setter wrote
  /// before scheduling a vertex visible to whoever claims the bit with
  /// clear_bit() — the happens-before edge the pure-async engine relies on
  /// (barrier engines get the same edge from their barriers and don't care).
  /// The acquire half lets a 0->1 winner act as a lock acquisition, which the
  /// pure-async engine uses for its per-vertex running bit.
  bool set(std::size_t i) {
    NDG_ASSERT(i < num_bits_);
    const std::uint64_t mask = 1ULL << (i & 63);
    // fetch_or is idempotent under races: exactly one concurrent setter sees
    // the 0->1 transition, which lets callers count distinct activations.
    const std::uint64_t prev =
        words_[i >> 6].fetch_or(mask, std::memory_order_acq_rel);
    return (prev & mask) == 0;
  }

  /// Clears bit i; returns true if this call changed it from 1 to 0 (i.e.
  /// the caller won the claim). Acq_rel: the acquire half pairs with set()'s
  /// release (claim sees the scheduler's writes), the release half publishes
  /// the claimer's writes to the next 0->1 winner (lock-release semantics for
  /// the running bit).
  bool clear_bit(std::size_t i) {
    NDG_ASSERT(i < num_bits_);
    const std::uint64_t mask = 1ULL << (i & 63);
    const std::uint64_t prev =
        words_[i >> 6].fetch_and(~mask, std::memory_order_acq_rel);
    return (prev & mask) != 0;
  }

  [[nodiscard]] bool test(std::size_t i) const {
    NDG_ASSERT(i < num_bits_);
    return (words_[i >> 6].load(std::memory_order_relaxed) >> (i & 63)) & 1ULL;
  }

  void clear() {
    for (auto& w : words_) w.store(0, std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t count() const;

  [[nodiscard]] std::size_t num_words() const { return words_.size(); }

  /// Relaxed word read — only meaningful between iterations, after a barrier
  /// has ordered all set() calls before the reader.
  [[nodiscard]] std::uint64_t word_relaxed(std::size_t w) const {
    NDG_ASSERT(w < words_.size());
    return words_[w].load(std::memory_order_relaxed);
  }

  /// Copies the current bits into a same-sized DenseBitset. Single-threaded,
  /// post-barrier: this is how the hybrid frontier materializes its dense
  /// representation without touching atomics during the sweep.
  void snapshot_into(DenseBitset& out) const {
    NDG_ASSERT(out.num_bits_ == num_bits_);
    for (std::size_t w = 0; w < words_.size(); ++w) {
      out.words_[w] = words_[w].load(std::memory_order_relaxed);
    }
  }

  /// Single-threaded traversal (called between iterations, after the barrier).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t word = words_[w].load(std::memory_order_relaxed);
      while (word) {
        const int bit = __builtin_ctzll(word);
        fn(w * 64 + static_cast<std::size_t>(bit));
        word &= word - 1;
      }
    }
  }

 private:
  std::size_t num_bits_ = 0;
  std::vector<std::atomic<std::uint64_t>> words_;
};

}  // namespace ndg
