#pragma once
// Thread-team helpers. The engines follow an SPMD structure: spawn T workers
// once per run, keep them alive across iterations (synchronizing on a
// SpinBarrier), and join at the end. That matches the paper's system model,
// where the same P threads persist for all N iterations.

#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

#include "util/assert.hpp"

namespace ndg {

/// Runs fn(thread_id) on `num_threads` threads and joins them all.
/// thread_id 0 runs on a spawned thread too, so the caller's thread is free
/// (and so that all workers have symmetric scheduling behaviour).
template <typename Fn>
void run_team(std::size_t num_threads, Fn&& fn) {
  NDG_ASSERT(num_threads >= 1);
  std::vector<std::thread> team;
  team.reserve(num_threads);
  for (std::size_t t = 0; t < num_threads; ++t) {
    team.emplace_back([&fn, t] { fn(t); });
  }
  for (auto& th : team) th.join();
}

/// Static block partition of [0, n): returns [begin, end) for `tid` of `nt`.
/// This is the "static scheduling by the OpenMP runtime" dispatch the paper's
/// Fig. 1 describes: thread t owns one contiguous block of labels.
struct BlockRange {
  std::size_t begin;
  std::size_t end;
};

inline BlockRange static_block(std::size_t n, std::size_t nt, std::size_t tid) {
  NDG_ASSERT(tid < nt);
  const std::size_t base = n / nt;
  const std::size_t extra = n % nt;
  // The first `extra` threads get one extra element; keeps blocks contiguous.
  const std::size_t begin = tid * base + std::min(tid, extra);
  const std::size_t len = base + (tid < extra ? 1 : 0);
  return {begin, begin + len};
}

/// Data-parallel loop over [0, n) with static block partitioning.
/// fn(begin, end, tid) is invoked once per thread.
template <typename Fn>
void parallel_for_blocks(std::size_t n, std::size_t num_threads, Fn&& fn) {
  if (num_threads <= 1 || n == 0) {
    fn(std::size_t{0}, n, std::size_t{0});
    return;
  }
  run_team(num_threads, [&](std::size_t tid) {
    const auto [begin, end] = static_block(n, num_threads, tid);
    fn(begin, end, tid);
  });
}

}  // namespace ndg
