#pragma once
// Thread-team helpers. The engines follow an SPMD structure: spawn T workers
// once per run, keep them alive across iterations (synchronizing on a
// SpinBarrier), and join at the end. That matches the paper's system model,
// where the same P threads persist for all N iterations.
//
// Engines that need a data-parallel region *inside* an iteration loop (PSW's
// per-interval batches, the OOC engine's per-shard dispatch) should hoist one
// ThreadTeam out of the loop and reuse it: ThreadTeam parks its workers on a
// condition variable between run() calls, which replaces a thread
// spawn+join per call site (~tens of µs) with a notify+wake (~µs).

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/assert.hpp"

namespace ndg {

namespace detail {
/// The worker index within the innermost run_team/ThreadTeam region, for code
/// (allocator shims, tracing) that cannot thread a tid parameter through.
/// 0 on threads outside any team region.
inline thread_local std::size_t tls_thread_id = 0;
}  // namespace detail

/// Thread id of the calling worker within its team (0 outside a team).
[[nodiscard]] inline std::size_t current_thread_id() {
  return detail::tls_thread_id;
}

/// A persistent worker pool: spawns `num_threads` workers once, then each
/// run(fn) dispatches fn(thread_id) to every worker and blocks until all
/// return. Workers park on a condition variable between runs. Not reentrant:
/// one run() at a time, and run() must not be called from inside fn.
class ThreadTeam {
 public:
  explicit ThreadTeam(std::size_t num_threads);
  ~ThreadTeam();

  ThreadTeam(const ThreadTeam&) = delete;
  ThreadTeam& operator=(const ThreadTeam&) = delete;

  [[nodiscard]] std::size_t size() const { return threads_.size(); }

  /// Runs fn(tid) on all workers and waits for completion. Exceptions thrown
  /// by fn terminate (workers run fn directly), matching run_team.
  void run(const std::function<void(std::size_t)>& fn);

 private:
  void worker(std::size_t tid);

  std::mutex mu_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::size_t)>* fn_ = nullptr;  // valid during a run
  std::uint64_t epoch_ = 0;   // bumped per run(); workers wait for a new epoch
  std::size_t remaining_ = 0;  // workers still executing the current run
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

/// Runs fn(thread_id) on `num_threads` threads and joins them all.
/// thread_id 0 runs on a spawned thread too, so the caller's thread is free
/// (and so that all workers have symmetric scheduling behaviour). For a
/// one-shot region this is fine; inside an iteration loop, prefer a hoisted
/// ThreadTeam (see above).
template <typename Fn>
void run_team(std::size_t num_threads, Fn&& fn) {
  NDG_ASSERT(num_threads >= 1);
  std::vector<std::thread> team;
  team.reserve(num_threads);
  for (std::size_t t = 0; t < num_threads; ++t) {
    team.emplace_back([&fn, t] {
      detail::tls_thread_id = t;
      fn(t);
      detail::tls_thread_id = 0;
    });
  }
  for (auto& th : team) th.join();
}

/// Static block partition of [0, n): returns [begin, end) for `tid` of `nt`.
/// This is the "static scheduling by the OpenMP runtime" dispatch the paper's
/// Fig. 1 describes: thread t owns one contiguous block of labels.
struct BlockRange {
  std::size_t begin;
  std::size_t end;
};

inline BlockRange static_block(std::size_t n, std::size_t nt, std::size_t tid) {
  NDG_ASSERT(tid < nt);
  const std::size_t base = n / nt;
  const std::size_t extra = n % nt;
  // The first `extra` threads get one extra element; keeps blocks contiguous.
  const std::size_t begin = tid * base + std::min(tid, extra);
  const std::size_t len = base + (tid < extra ? 1 : 0);
  return {begin, begin + len};
}

/// Data-parallel loop over [0, n) with static block partitioning.
/// fn(begin, end, tid) is invoked once per thread.
template <typename Fn>
void parallel_for_blocks(std::size_t n, std::size_t num_threads, Fn&& fn) {
  if (num_threads <= 1 || n == 0) {
    fn(std::size_t{0}, n, std::size_t{0});
    return;
  }
  run_team(num_threads, [&](std::size_t tid) {
    const auto [begin, end] = static_block(n, num_threads, tid);
    fn(begin, end, tid);
  });
}

/// Same loop on a persistent team — the per-iteration-loop variant.
template <typename Fn>
void parallel_for_blocks(std::size_t n, ThreadTeam& team, Fn&& fn) {
  if (team.size() <= 1 || n == 0) {
    fn(std::size_t{0}, n, std::size_t{0});
    return;
  }
  team.run([&](std::size_t tid) {
    const auto [begin, end] = static_block(n, team.size(), tid);
    fn(begin, end, tid);
  });
}

}  // namespace ndg
