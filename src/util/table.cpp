#include "util/table.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/assert.hpp"

namespace ndg {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  NDG_ASSERT_MSG(cells.size() == header_.size(), "row width mismatch");
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << row[c] << std::string(width[c] - row[c].size(), ' ');
    }
    os << " |\n";
  };
  print_row(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << (c == 0 ? "|-" : "-|-") << std::string(width[c], '-');
  }
  os << "-|\n";
  for (const auto& row : rows_) print_row(row);
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

/// True if the cell parses completely as a JSON-safe number.
bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  char* end = nullptr;
  std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size()) return false;
  // Reject inf/nan spellings (valid for strtod, invalid JSON) and leading
  // '+' or stray whitespace.
  for (const char c : s) {
    if (!(std::isdigit(static_cast<unsigned char>(c)) || c == '-' ||
          c == '+' || c == '.' || c == 'e' || c == 'E')) {
      return false;
    }
  }
  return true;
}

}  // namespace

std::string TextTable::to_json() const {
  std::ostringstream os;
  os << "[";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    os << (r == 0 ? "" : ",") << "{";
    for (std::size_t c = 0; c < header_.size(); ++c) {
      os << (c == 0 ? "" : ",") << '"' << json_escape(header_[c]) << "\":";
      if (looks_numeric(rows_[r][c])) {
        os << rows_[r][c];
      } else {
        os << '"' << json_escape(rows_[r][c]) << '"';
      }
    }
    os << "}";
  }
  os << "]";
  return os.str();
}

void TextTable::write_json(const std::string& path,
                           const std::string& config_json) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write json: " + path);
  out << "{\"config\":" << config_json << ",\"rows\":" << to_json() << "}\n";
}

}  // namespace ndg
