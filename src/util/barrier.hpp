#pragma once
// Sense-reversing spin barrier. The nondeterministic engine runs the
// "synchronous implementation of the asynchronous model" (Section II): all
// threads must rendezvous between iterations so that edge values commit to one
// predictable value at iteration boundaries. Iterations are short, so a spin
// barrier beats std::barrier's futex path on this workload.

#include <atomic>
#include <cstddef>
#include <thread>

#include "util/assert.hpp"

namespace ndg {

class SpinBarrier {
 public:
  explicit SpinBarrier(std::size_t num_threads)
      : num_threads_(num_threads), waiting_(0), sense_(false) {
    NDG_ASSERT(num_threads >= 1);
  }

  SpinBarrier(const SpinBarrier&) = delete;
  SpinBarrier& operator=(const SpinBarrier&) = delete;

  /// Blocks until all num_threads have arrived. Each thread keeps its own
  /// local sense; pass the same bool& every call.
  void arrive_and_wait(bool& local_sense) {
    local_sense = !local_sense;
    if (waiting_.fetch_add(1, std::memory_order_acq_rel) + 1 == num_threads_) {
      waiting_.store(0, std::memory_order_relaxed);
      // Release: all pre-barrier writes become visible to waiters.
      sense_.store(local_sense, std::memory_order_release);
    } else {
      // Spin briefly, then yield: on oversubscribed hosts (more threads than
      // cores) a pure spin burns whole scheduler quanta per barrier while the
      // straggler waits for a core.
      int spins = 0;
      while (sense_.load(std::memory_order_acquire) != local_sense) {
        if (++spins < 1024) {
#if defined(__x86_64__) || defined(__i386__)
          __builtin_ia32_pause();
#endif
        } else {
          std::this_thread::yield();
        }
      }
    }
  }

 private:
  const std::size_t num_threads_;
  std::atomic<std::size_t> waiting_;
  std::atomic<bool> sense_;
};

}  // namespace ndg
