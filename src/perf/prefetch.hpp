#pragma once
// Software prefetch for the gather loop. The CSC in-edge scan is sequential
// (the hardware prefetcher handles it) but each in-edge triggers a dependent
// random read into the edge-data slot array — the classic miss-per-edge
// pattern of pull-mode analytics. Issuing the slot address a fixed lookahead
// ahead of the consuming read overlaps those misses (docs/PERF.md).
//
// Contexts opt in by exposing `prefetch(EdgeId)`; programs call the free
// function prefetch_edge(ctx, e), which degrades to a no-op on contexts
// without slot storage (simulator, deterministic tracer, distributed), so a
// single program source runs unchanged on every engine.

#include <cstddef>

#include "util/types.hpp"

namespace ndg {

namespace perf {

/// In-edges to run ahead of the current gather position. Far enough to cover
/// DRAM latency at one miss per edge, small enough to stay inside the span.
inline constexpr std::size_t kGatherPrefetchDistance = 8;

/// Read-intent prefetch with low temporal locality (gathered slots are
/// touched once per update).
inline void prefetch_read(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, 0, 1);
#else
  (void)p;
#endif
}

}  // namespace perf

/// A context that can translate an edge id to a slot address.
template <typename Ctx>
concept HasSlotPrefetch = requires(Ctx& c, EdgeId e) { c.prefetch(e); };

/// Prefetches edge e's data slot when the context supports it; no-op
/// otherwise.
template <typename Ctx>
inline void prefetch_edge(Ctx& ctx, EdgeId e) {
  if constexpr (HasSlotPrefetch<Ctx>) {
    ctx.prefetch(e);
  } else {
    (void)ctx;
    (void)e;
  }
}

}  // namespace ndg
