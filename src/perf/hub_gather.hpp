#pragma once
// Edge-parallel gather for hub vertices (docs/PERF.md).
//
// Under the paper's dispatch one update owns all of its in-edges: a
// million-degree R-MAT hub is a single task, and the thread that draws it
// serializes the whole gather while its siblings go idle. This layer splits a
// hub's gather into fixed-size edge chunks co-scheduled across the shared
// worklist as ordinary work items.
//
// Eligibility is preserved (the Theorems 1/2 argument, spelled out in
// docs/PERF.md): chunk gathers only *read* edge data — through the same
// atomicity policy as a whole-vertex gather, so every individual read is
// still minimal-granularity atomic (Lemma 1) and sees some committed value
// (Lemma 2). Each chunk's partial lands in a private single-word slot written
// via the policy; a release countdown hands all partials to the last
// finisher, which combines them sequentially and runs the program's apply —
// the same read-set/compute/scatter a whole-vertex update would have
// performed, just with the gather reads reordered. NE already permits
// arbitrary interleavings of those reads with neighbour writes, so the split
// introduces no interleaving the paper's model does not already contain.
//
// Programs opt in by declaring the gather/combine/apply decomposition (the
// GAS shape) checked by EdgeParallelGatherProgram below. Work items for
// chunks are encoded in VertexId space with the top bit set, so they flow
// through the Worklist concept unchanged; this caps splittable graphs at
// 2^31 vertices (asserted at HubTable build).

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <vector>

#include "atomics/edge_data.hpp"
#include "graph/graph.hpp"
#include "util/assert.hpp"
#include "util/types.hpp"

namespace ndg {

/// A program whose update decomposes as Gather / Combine / Apply over an
/// EdgePod accumulator:
///   GatherData gather_identity()            — neutral element;
///   GatherData gather_edge(ie, ctx)         — one in-edge's contribution
///                                             (reads via ctx only);
///   GatherData combine(a, b)                — associative merge;
///   void apply(v, total, ctx)               — compute + scatter, given the
///                                             combined gather result.
/// update(v, ctx) must be equivalent to
///   apply(v, fold(combine, identity, map(gather_edge, in_edges(v))), ctx).
template <typename P>
concept EdgeParallelGatherProgram =
    requires(P p, VertexId v, const InEdge& ie) {
      typename P::GatherData;
      requires EdgePod<typename P::GatherData>;
      { P::gather_identity() } -> std::same_as<typename P::GatherData>;
      {
        P::combine(P::gather_identity(), P::gather_identity())
      } -> std::same_as<typename P::GatherData>;
    };

namespace detail {

/// Program::GatherData when the program is decomposable, a placeholder
/// otherwise — lets engines declare hub state unconditionally and gate its
/// use behind `if constexpr`.
template <typename P>
struct GatherDataOf {
  using type = std::uint64_t;
};
template <EdgeParallelGatherProgram P>
struct GatherDataOf<P> {
  using type = typename P::GatherData;
};

}  // namespace detail

namespace perf {

/// Chunk work items ride the worklist in VertexId space with this bit set.
inline constexpr VertexId kChunkTokenFlag = 1u << 31;

[[nodiscard]] inline bool is_chunk_token(VertexId v) {
  return (v & kChunkTokenFlag) != 0;
}
[[nodiscard]] inline VertexId make_chunk_token(std::uint32_t chunk) {
  return kChunkTokenFlag | chunk;
}
[[nodiscard]] inline std::uint32_t chunk_of_token(VertexId token) {
  return token & ~kChunkTokenFlag;
}

/// Immutable hub/chunk geometry for one (graph, threshold, chunk size)
/// triple. Chunk ids are dense in [0, total_chunks()): hub h owns the range
/// [chunk_begin(h), chunk_begin(h+1)), each chunk covering `chunk_edges`
/// consecutive entries of the hub's in-edge span. Every chunk covers at
/// least one in-edge, so total_chunks() <= num_edges — which is what lets a
/// per-run EdgeLockTable sized for the edge array also cover partial slots.
class HubTable {
 public:
  HubTable() = default;

  HubTable(const Graph& g, std::size_t threshold, std::size_t chunk_edges)
      : chunk_edges_(chunk_edges == 0 ? 1 : chunk_edges) {
    NDG_ASSERT_MSG(g.num_vertices() < kChunkTokenFlag,
                   "hub gather needs the top VertexId bit for chunk tokens");
    hub_of_.assign(g.num_vertices(), kNoHub);
    chunk_begin_.push_back(0);
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      const EdgeId deg = g.in_degree(v);
      if (deg <= threshold) continue;
      const auto chunks =
          static_cast<std::uint32_t>((deg + chunk_edges_ - 1) / chunk_edges_);
      hub_of_[v] = static_cast<std::uint32_t>(hubs_.size());
      hubs_.push_back(v);
      chunk_begin_.push_back(chunk_begin_.back() + chunks);
      for (std::uint32_t c = 0; c < chunks; ++c) {
        chunk_hub_.push_back(hub_of_[v]);
      }
    }
  }

  [[nodiscard]] bool empty() const { return hubs_.empty(); }
  [[nodiscard]] std::size_t num_hubs() const { return hubs_.size(); }
  [[nodiscard]] std::uint32_t total_chunks() const {
    return chunk_begin_.empty() ? 0 : chunk_begin_.back();
  }

  [[nodiscard]] bool is_hub(VertexId v) const {
    return !hub_of_.empty() && hub_of_[v] != kNoHub;
  }
  [[nodiscard]] std::uint32_t hub_index(VertexId v) const {
    NDG_ASSERT(is_hub(v));
    return hub_of_[v];
  }
  [[nodiscard]] VertexId hub_vertex(std::uint32_t h) const { return hubs_[h]; }
  [[nodiscard]] std::uint32_t chunk_begin(std::uint32_t h) const {
    return chunk_begin_[h];
  }
  [[nodiscard]] std::uint32_t num_chunks(std::uint32_t h) const {
    return chunk_begin_[h + 1] - chunk_begin_[h];
  }

  /// The slice of hub_vertex's in-edge span a chunk covers.
  struct ChunkRange {
    VertexId v;
    std::size_t begin;  // indices into g.in_edges(v)
    std::size_t end;
  };

  [[nodiscard]] ChunkRange chunk_range(const Graph& g,
                                       std::uint32_t chunk) const {
    const std::uint32_t h = chunk_hub_[chunk];
    const VertexId v = hubs_[h];
    const std::size_t local = chunk - chunk_begin_[h];
    const std::size_t deg = g.in_edges(v).size();
    const std::size_t begin = local * chunk_edges_;
    const std::size_t end = std::min(begin + chunk_edges_, deg);
    return {v, begin, end};
  }

 private:
  static constexpr std::uint32_t kNoHub = 0xffffffffu;

  std::size_t chunk_edges_ = 1;
  std::vector<std::uint32_t> hub_of_;       // V entries; kNoHub for non-hubs
  std::vector<VertexId> hubs_;              // hub index -> vertex
  std::vector<std::uint32_t> chunk_begin_;  // num_hubs+1 prefix sum
  std::vector<std::uint32_t> chunk_hub_;    // chunk id -> hub index
};

/// Per-run mutable hub state. Partials reuse EdgeDataArray so chunk results
/// are written and read through the SAME atomicity policy as edge data —
/// Section III is exercised, not bypassed. Correctness does not hinge on the
/// policy though: each partial slot has exactly one writer per round, and the
/// acq_rel countdown orders every partial write before the combining read, so
/// even AlignedAccess (plain aligned stores) is race-free here.
template <EdgePod GD>
class HubGatherState {
 public:
  HubGatherState() = default;

  explicit HubGatherState(const HubTable& table)
      : partials_(table.total_chunks()), remaining_(table.num_hubs()) {}

  /// Called by the thread that drew hub h from the frontier, BEFORE pushing
  /// the chunk tokens. Release pairs with the acquire in finish_chunk so a
  /// fresh round never observes the previous round's countdown.
  void arm(std::uint32_t h, std::uint32_t chunks) {
    remaining_[h].store(chunks, std::memory_order_release);
  }

  /// Stores a chunk's partial through the policy. Single writer per slot per
  /// round; visibility to the combiner comes from finish_chunk's ordering.
  template <typename Policy>
  void store_partial(Policy& policy, std::uint32_t chunk, GD value) {
    policy.write(partials_, static_cast<EdgeId>(chunk), value);
  }

  /// Decrements hub h's countdown; returns true for the last finisher, which
  /// then owns the combine+apply. acq_rel: release publishes this chunk's
  /// partial, acquire pulls in every other chunk's.
  [[nodiscard]] bool finish_chunk(std::uint32_t h) {
    return remaining_[h].fetch_sub(1, std::memory_order_acq_rel) == 1;
  }

  template <typename Policy>
  [[nodiscard]] GD read_partial(Policy& policy, std::uint32_t chunk) const {
    return policy.read(partials_, static_cast<EdgeId>(chunk));
  }

 private:
  EdgeDataArray<GD> partials_;
  std::vector<std::atomic<std::uint32_t>> remaining_;
};

}  // namespace perf
}  // namespace ndg
