#include "atomics/access_policy.hpp"

namespace ndg {

const char* to_string(AtomicityMode mode) {
  switch (mode) {
    case AtomicityMode::kLocked:
      return "locked";
    case AtomicityMode::kAligned:
      return "aligned";
    case AtomicityMode::kRelaxed:
      return "relaxed";
    case AtomicityMode::kSeqCst:
      return "seq_cst";
  }
  return "?";
}

}  // namespace ndg
