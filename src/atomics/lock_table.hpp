#pragma once
// Per-edge spinlocks for the paper's atomicity method (1): "a lock is defined
// for each edge, and an access to the edge must first acquire the lock and
// release the lock when finished accessing". One byte per edge keeps the
// table small enough to define a lock per edge rather than striping.

#include <atomic>
#include <memory>
#include <thread>

#include "util/assert.hpp"
#include "util/types.hpp"

namespace ndg {

class EdgeLockTable {
 public:
  EdgeLockTable() = default;

  explicit EdgeLockTable(EdgeId num_edges)
      : size_(num_edges), locks_(std::make_unique<std::atomic<std::uint8_t>[]>(num_edges)) {
    for (EdgeId e = 0; e < num_edges; ++e) {
      locks_[e].store(0, std::memory_order_relaxed);
    }
  }

  [[nodiscard]] EdgeId size() const { return size_; }

  void lock(EdgeId e) {
    NDG_ASSERT(e < size_);
    auto& l = locks_[e];
    for (;;) {
      std::uint8_t expected = 0;
      if (l.compare_exchange_weak(expected, 1, std::memory_order_acquire,
                                  std::memory_order_relaxed)) {
        return;
      }
      // Test before test-and-set to avoid cache-line ping-pong while waiting;
      // yield after a short spin so an oversubscribed host can run the owner.
      int spins = 0;
      while (l.load(std::memory_order_relaxed) != 0) {
        if (++spins < 256) {
#if defined(__x86_64__) || defined(__i386__)
          __builtin_ia32_pause();
#endif
        } else {
          std::this_thread::yield();
        }
      }
    }
  }

  void unlock(EdgeId e) {
    NDG_ASSERT(e < size_);
    locks_[e].store(0, std::memory_order_release);
  }

 private:
  EdgeId size_ = 0;
  std::unique_ptr<std::atomic<std::uint8_t>[]> locks_;
};

/// RAII guard, so update functions can't leak a held edge lock on early exit.
class EdgeLockGuard {
 public:
  EdgeLockGuard(EdgeLockTable& table, EdgeId e) : table_(table), e_(e) {
    table_.lock(e_);
  }
  ~EdgeLockGuard() { table_.unlock(e_); }
  EdgeLockGuard(const EdgeLockGuard&) = delete;
  EdgeLockGuard& operator=(const EdgeLockGuard&) = delete;

 private:
  EdgeLockTable& table_;
  EdgeId e_;
};

}  // namespace ndg
