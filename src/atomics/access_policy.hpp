#pragma once
// The three atomicity-guaranteeing methods of Section III (plus a seq_cst
// ablation), expressed as interchangeable access policies over an
// EdgeDataArray. Engines are templated on the policy so the hot loop pays no
// per-access dispatch; the runtime AtomicityMode enum is resolved to a policy
// once per engine run (see engine/dispatch.hpp).
//
//  * LockedAccess  — method (1): explicit per-edge lock around each read/write.
//  * AlignedAccess — method (2): plain 8-byte-aligned loads/stores, relying on
//    the architecture transferring an aligned word atomically. NOTE: per the
//    C++ memory model this is a data race (formally UB); it is implemented
//    deliberately and only here, because reproducing the paper's method (2)
//    *is* the experiment (the paper leans on Boehm's "benign race" analysis
//    [19]). On x86-64/AArch64 an aligned 8-byte MOV/LDR is single-copy atomic,
//    which is the property the paper exploits. Everything else in this
//    library is standard-conforming.
//  * RelaxedAtomicAccess — method (3): C++ std::atomic with
//    memory_order_relaxed ("the relaxed atomic primitives of C++").
//  * SeqCstAccess  — ablation: the maximally ordered atomic flavour, to
//    quantify what the paper's relaxed choice saves.

#include <atomic>
#include <cstdint>

#include "atomics/edge_data.hpp"
#include "atomics/lock_table.hpp"
#include "util/types.hpp"

namespace ndg {

/// Runtime selector for the policy set below.
enum class AtomicityMode {
  kLocked,   // Section III method (1)
  kAligned,  // Section III method (2)
  kRelaxed,  // Section III method (3)
  kSeqCst,   // ablation
};

[[nodiscard]] const char* to_string(AtomicityMode mode);

// Beyond single reads/writes, each policy also provides two read-modify-write
// primitives, used by push-mode algorithms (the paper's §VII future work):
//   exchange(a, e, v)      — swap in v, return the old value (drain);
//   accumulate(a, e, fn)   — atomically replace x with fn(x) (combine).
// Lock/atomic policies make these atomic; AlignedAccess CANNOT — an aligned
// plain word gives atomic loads and stores but no atomic RMW, which is
// exactly why the paper's method (2) suffices for Lemmas 1 & 2 yet cannot
// rescue an accumulate-style algorithm (see algorithms/push_pagerank*.hpp).

struct AlignedAccess {
  /// Method (2) gives atomic individual loads/stores only — no atomic RMW
  /// (see analysis/static_eligibility.hpp, which rejects RMW manifests
  /// paired with this policy at compile time).
  static constexpr bool kAtomicRmw = false;

  template <EdgePod T>
  [[nodiscard]] T read(const EdgeDataArray<T>& a, EdgeId e) const {
    // Plain load through the raw word. Layout compatibility is asserted in
    // EdgeDataArray; see the file comment for why this intentional race exists.
    // NOLINTNEXTLINE(bugprone-casting-through-void): deliberate atomic->raw
    // reinterpretation — reproducing the paper's method (2) IS the experiment.
    const auto* raw = reinterpret_cast<const volatile std::uint64_t*>(a.slots());
    return detail::from_slot<T>(raw[e]);
  }

  template <EdgePod T>
  void write(EdgeDataArray<T>& a, EdgeId e, T v) const {
    // NOLINTNEXTLINE(bugprone-casting-through-void): see read() above.
    auto* raw = reinterpret_cast<volatile std::uint64_t*>(a.slots());
    raw[e] = detail::to_slot(v);
  }

  /// NOT atomic: racing exchanges/accumulates can lose updates (the point of
  /// the push-mode counterexample).
  template <EdgePod T>
  T exchange(EdgeDataArray<T>& a, EdgeId e, T v) const {
    const T old = read(a, e);
    write(a, e, v);
    return old;
  }

  template <EdgePod T, typename Fn>
  void accumulate(EdgeDataArray<T>& a, EdgeId e, Fn fn) const {
    write(a, e, fn(read(a, e)));
  }
};

namespace detail {

/// Shared CAS-loop RMW for the two atomic policies.
template <EdgePod T, typename Fn>
void atomic_accumulate(EdgeDataArray<T>& a, EdgeId e, Fn fn,
                       std::memory_order order) {
  auto& slot = a.slots()[e];
  std::uint64_t cur = slot.load(std::memory_order_relaxed);
  while (!slot.compare_exchange_weak(
      cur, to_slot(fn(from_slot<T>(cur))), order, std::memory_order_relaxed)) {
  }
}

}  // namespace detail

struct RelaxedAtomicAccess {
  static constexpr bool kAtomicRmw = true;  // CAS-loop accumulate, atomic exchange

  template <EdgePod T>
  [[nodiscard]] T read(const EdgeDataArray<T>& a, EdgeId e) const {
    return detail::from_slot<T>(a.slots()[e].load(std::memory_order_relaxed));
  }

  template <EdgePod T>
  void write(EdgeDataArray<T>& a, EdgeId e, T v) const {
    a.slots()[e].store(detail::to_slot(v), std::memory_order_relaxed);
  }

  template <EdgePod T>
  T exchange(EdgeDataArray<T>& a, EdgeId e, T v) const {
    return detail::from_slot<T>(
        a.slots()[e].exchange(detail::to_slot(v), std::memory_order_relaxed));
  }

  template <EdgePod T, typename Fn>
  void accumulate(EdgeDataArray<T>& a, EdgeId e, Fn fn) const {
    detail::atomic_accumulate(a, e, fn, std::memory_order_relaxed);
  }
};

struct SeqCstAccess {
  static constexpr bool kAtomicRmw = true;

  template <EdgePod T>
  [[nodiscard]] T read(const EdgeDataArray<T>& a, EdgeId e) const {
    return detail::from_slot<T>(a.slots()[e].load(std::memory_order_seq_cst));
  }

  template <EdgePod T>
  void write(EdgeDataArray<T>& a, EdgeId e, T v) const {
    a.slots()[e].store(detail::to_slot(v), std::memory_order_seq_cst);
  }

  template <EdgePod T>
  T exchange(EdgeDataArray<T>& a, EdgeId e, T v) const {
    return detail::from_slot<T>(
        a.slots()[e].exchange(detail::to_slot(v), std::memory_order_seq_cst));
  }

  template <EdgePod T, typename Fn>
  void accumulate(EdgeDataArray<T>& a, EdgeId e, Fn fn) const {
    detail::atomic_accumulate(a, e, fn, std::memory_order_seq_cst);
  }
};

struct LockedAccess {
  static constexpr bool kAtomicRmw = true;  // RMWs run under the edge lock

  EdgeLockTable* locks = nullptr;

  template <EdgePod T>
  [[nodiscard]] T read(const EdgeDataArray<T>& a, EdgeId e) const {
    EdgeLockGuard guard(*locks, e);
    return detail::from_slot<T>(a.slots()[e].load(std::memory_order_relaxed));
  }

  template <EdgePod T>
  void write(EdgeDataArray<T>& a, EdgeId e, T v) const {
    EdgeLockGuard guard(*locks, e);
    a.slots()[e].store(detail::to_slot(v), std::memory_order_relaxed);
  }

  template <EdgePod T>
  T exchange(EdgeDataArray<T>& a, EdgeId e, T v) const {
    EdgeLockGuard guard(*locks, e);
    auto& slot = a.slots()[e];
    const T old = detail::from_slot<T>(slot.load(std::memory_order_relaxed));
    slot.store(detail::to_slot(v), std::memory_order_relaxed);
    return old;
  }

  template <EdgePod T, typename Fn>
  void accumulate(EdgeDataArray<T>& a, EdgeId e, Fn fn) const {
    EdgeLockGuard guard(*locks, e);
    auto& slot = a.slots()[e];
    const T old = detail::from_slot<T>(slot.load(std::memory_order_relaxed));
    slot.store(detail::to_slot(fn(old)), std::memory_order_relaxed);
  }
};

}  // namespace ndg
