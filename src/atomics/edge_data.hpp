#pragma once
// Per-edge algorithm data, stored out-of-band from the Graph topology and
// indexed by canonical edge id.
//
// The paper's Section III restricts edge data to structures that fit in one
// 8-byte, 8-byte-aligned machine word ("we align the edge data structures of
// the above algorithms to 8 bytes, such that they are stored in a single
// cache line"). We enforce that contract at compile time with the EdgePod
// concept, and store every edge datum in an 8-byte slot so that all three of
// the paper's atomicity methods (locking, aligned plain access, C++ atomics)
// can operate on the *same* storage.

#include <atomic>
#include <cstring>
#include <type_traits>

#include "mem/numa_arena.hpp"
#include "util/assert.hpp"
#include "util/types.hpp"

namespace ndg {

/// Edge data must be trivially copyable and fit one machine word; this is the
/// precondition for Lemmas 1 & 2 (individual reads/writes can be atomic).
template <typename T>
concept EdgePod = std::is_trivially_copyable_v<T> && sizeof(T) <= 8;

namespace detail {

template <EdgePod T>
inline std::uint64_t to_slot(T v) {
  std::uint64_t s = 0;
  std::memcpy(&s, &v, sizeof(T));
  return s;
}

template <EdgePod T>
inline T from_slot(std::uint64_t s) {
  T v;
  std::memcpy(&v, &s, sizeof(T));
  return v;
}

}  // namespace detail

template <EdgePod T>
class EdgeDataArray {
 public:
  using value_type = T;

  EdgeDataArray() = default;

  /// `spec` places the slot array (hugepages / NUMA — docs/PERF.md): the
  /// random gather reads into this array are the dominant misses of pull-mode
  /// programs, so it gets the same placement controls as the topology.
  explicit EdgeDataArray(EdgeId n, T init = T{}, const MemSpec& spec = {})
      : size_(n), raw_(n, spec) {
    fill(init);
  }

  [[nodiscard]] EdgeId size() const { return size_; }

  void fill(T v) {
    const std::uint64_t s = detail::to_slot(v);
    for (EdgeId e = 0; e < size_; ++e) {
      slots()[e].store(s, std::memory_order_relaxed);
    }
  }

  /// Unsynchronized accessors for single-threaded phases (init, verification).
  [[nodiscard]] T get(EdgeId e) const {
    NDG_ASSERT(e < size_);
    return detail::from_slot<T>(slots()[e].load(std::memory_order_relaxed));
  }
  void set(EdgeId e, T v) {
    NDG_ASSERT(e < size_);
    slots()[e].store(detail::to_slot(v), std::memory_order_relaxed);
  }

  /// Raw slot storage; the access policies in access_policy.hpp go through
  /// this. std::atomic<uint64_t> is lock-free and 8-byte aligned on every
  /// platform we target (checked below), which is what makes the paper's
  /// "architecture support" method possible. Storage is a plain-uint64 arena
  /// buffer (std::atomic is not trivially copyable, so it cannot live in a
  /// Buffer directly); the layout static_asserts below are what make this
  /// view the same game AlignedAccess already plays in the other direction.
  [[nodiscard]] std::atomic<std::uint64_t>* slots() {
    return reinterpret_cast<std::atomic<std::uint64_t>*>(raw_.data());
  }
  [[nodiscard]] const std::atomic<std::uint64_t>* slots() const {
    return reinterpret_cast<const std::atomic<std::uint64_t>*>(raw_.data());
  }

  /// Grows the slot array to `n` edges, preserving existing data (edge ids
  /// are stable across growth). New slots hold `init`. Shrinking is a no-op:
  /// the dynamic-graph layer only ever retires ids at compaction, which
  /// rebuilds the array wholesale. Callers must be quiescent (no concurrent
  /// readers/writers) — growth happens between epochs in src/dyn/.
  void resize(EdgeId n, T init = T{}) {
    if (n <= size_) return;
    raw_ = raw_.resized(n);
    const std::uint64_t s = detail::to_slot(init);
    for (EdgeId e = size_; e < n; ++e) {
      slots()[e].store(s, std::memory_order_relaxed);
    }
    size_ = n;
  }

  /// Deep copy (used by the BSP engine's double buffering and by the
  /// result-variance experiments to snapshot runs). Keeps the placement spec.
  [[nodiscard]] EdgeDataArray clone() const {
    EdgeDataArray copy(size_, T{}, raw_.spec());
    for (EdgeId e = 0; e < size_; ++e) {
      copy.slots()[e].store(slots()[e].load(std::memory_order_relaxed),
                            std::memory_order_relaxed);
    }
    return copy;
  }

 private:
  static_assert(std::atomic<std::uint64_t>::is_always_lock_free,
                "edge slots must be natively atomic");
  static_assert(sizeof(std::atomic<std::uint64_t>) == sizeof(std::uint64_t) &&
                    alignof(std::atomic<std::uint64_t>) == alignof(std::uint64_t),
                "atomic slot layout must match raw uint64 for AlignedAccess");

  EdgeId size_ = 0;
  mem::Buffer<std::uint64_t> raw_;
};

}  // namespace ndg
