#include "core/convergence_bound.hpp"

#include <queue>
#include <vector>

namespace ndg {

ConvergenceBound wcc_convergence_bound(const Graph& g) {
  ConvergenceBound out;
  const VertexId n = g.num_vertices();
  std::vector<bool> visited(n, false);
  std::vector<VertexId> depth(n, 0);
  std::queue<VertexId> q;

  // Ascending scan: the first unvisited vertex of a component IS its minimum
  // label, so one pass gives every component's value origin for free.
  for (VertexId root = 0; root < n; ++root) {
    if (visited[root]) continue;
    visited[root] = true;
    depth[root] = 0;
    q.push(root);
    std::size_t comp_depth = 0;
    while (!q.empty()) {
      const VertexId u = q.front();
      q.pop();
      comp_depth = std::max<std::size_t>(comp_depth, depth[u]);
      auto visit = [&](VertexId w) {
        if (!visited[w]) {
          visited[w] = true;
          depth[w] = depth[u] + 1;
          q.push(w);
        }
      };
      for (const VertexId w : g.out_neighbors(u)) visit(w);
      for (const InEdge& ie : g.in_edges(u)) visit(ie.src);
    }
    out.chain_depth = std::max(out.chain_depth, comp_depth);
  }
  out.rw_bound = out.chain_depth + 3;
  out.ww_bound = 3 * out.chain_depth + 4;
  return out;
}

std::size_t traversal_chain_depth(const Graph& g, VertexId source) {
  std::vector<VertexId> depth(g.num_vertices(), kInvalidVertex);
  std::queue<VertexId> q;
  depth[source] = 0;
  q.push(source);
  std::size_t max_depth = 0;
  while (!q.empty()) {
    const VertexId u = q.front();
    q.pop();
    max_depth = std::max<std::size_t>(max_depth, depth[u]);
    for (const VertexId w : g.out_neighbors(u)) {
      if (depth[w] == kInvalidVertex) {
        depth[w] = depth[u] + 1;
        q.push(w);
      }
    }
  }
  return max_depth;
}

}  // namespace ndg
