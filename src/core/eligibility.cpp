#include "core/eligibility.hpp"

#include <sstream>

namespace ndg {

const char* to_string(EligibilityVerdict v) {
  switch (v) {
    case EligibilityVerdict::kTheorem1:
      return "ELIGIBLE (Theorem 1: read-write conflicts only)";
    case EligibilityVerdict::kTheorem2:
      return "ELIGIBLE (Theorem 2: monotonic, tolerates write-write)";
    case EligibilityVerdict::kNotProven:
      return "NOT PROVEN ELIGIBLE (no sufficient condition applies)";
  }
  return "?";
}

const char* verdict_short(EligibilityVerdict v) {
  switch (v) {
    case EligibilityVerdict::kTheorem1: return "theorem-1";
    case EligibilityVerdict::kTheorem2: return "theorem-2";
    case EligibilityVerdict::kNotProven: return "not-proven";
  }
  return "?";
}

namespace detail {

EligibilityVerdict decide(EligibilityReport& r) {
  r.theorem1_applies = r.bsp_converges && !r.conflicts.has_write_write();
  // Theorem 2 requires monotonicity as an ALGORITHM property. The checker
  // only witnesses one run, which can look monotone by accident (e.g. label
  // propagation on a two-vertex graph), so the program must also claim it;
  // the observation then validates the claim rather than replacing it.
  r.theorem2_applies =
      r.async_converges && r.claimed_monotonic && r.observed_monotonic;
  if (r.theorem1_applies) return EligibilityVerdict::kTheorem1;
  if (r.theorem2_applies) return EligibilityVerdict::kTheorem2;
  return EligibilityVerdict::kNotProven;
}

}  // namespace detail

std::string EligibilityReport::describe() const {
  auto dir = [](MonotonicityChecker::Direction d) {
    switch (d) {
      case MonotonicityChecker::Direction::kConstant:
        return "constant";
      case MonotonicityChecker::Direction::kNonIncreasing:
        return "non-increasing";
      case MonotonicityChecker::Direction::kNonDecreasing:
        return "non-decreasing";
      case MonotonicityChecker::Direction::kNone:
        return "non-monotonic";
    }
    return "?";
  };

  std::ostringstream os;
  os << "algorithm: " << algorithm << "\n"
     << "  converges under synchronous (BSP) model:        "
     << (bsp_converges ? "yes" : "no") << "\n"
     << "  converges under deterministic asynchronous run: "
     << (async_converges ? "yes" : "no") << "\n"
     << "  edge conflicts: read-write=" << conflicts.read_write
     << " write-write=" << conflicts.write_write << "\n"
     << "  monotonicity: claimed=" << (claimed_monotonic ? "yes" : "no")
     << " observed=" << dir(direction) << "\n"
     << "  Theorem 1 applies: " << (theorem1_applies ? "yes" : "no") << "\n"
     << "  Theorem 2 applies: " << (theorem2_applies ? "yes" : "no") << "\n"
     << "  verdict: " << to_string(verdict) << "\n";
  return os.str();
}

}  // namespace ndg
